# Tier-1 flow: build + vet + tests, plus a short-mode race pass over the
# packages with real concurrency (engine cache, HTTP server).
.PHONY: all build vet test race race-full check

all: check

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Short-mode race run over the concurrent packages; part of `make check`.
race:
	go test -race -short ./internal/core ./internal/server

# Full race run over everything; slower, run before cutting a release.
race-full:
	go test -race ./...

check: vet build test race
