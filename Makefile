# Tier-1 flow: build + vet + tests, plus a short-mode race pass over the
# packages with real concurrency (engine cache, HTTP server, parallel
# SpGEMM, metrics registry).
.PHONY: all build vet test race race-full check obs-selftest chaos bench-json

all: check

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Short-mode race run over the concurrent packages; part of `make check`.
race:
	go test -race -short ./internal/core ./internal/server ./internal/sparse ./internal/obs

# Full race run over everything; slower, run before cutting a release.
race-full:
	go test -race ./...

# Sanity-check the default metric histogram buckets (finite, strictly
# increasing, non-empty) and the exposition format; part of `make check`.
obs-selftest:
	go test -run 'TestSelfTest|TestValidateBuckets|TestHandlerServesValidExposition' ./internal/obs

# Fault-injection recovery matrix under the race detector: kill-mid-write
# at every byte offset, ENOSPC, torn renames, failed fsyncs, at-rest
# corruption sweeps, and hot-reload under concurrent query load. Short
# mode keeps the corruption sweeps seeded-sample-sized; part of `make check`.
chaos:
	go test -race -short ./internal/snapshot ./internal/chaos
	go test -race -short -run 'TestHotReload|TestReload|TestWarmStart' ./internal/server

check: vet build test race obs-selftest chaos

# Regenerate the committed benchmark baseline: every paper-table and
# figure benchmark plus the snapshot warm-vs-cold boot comparison, with
# allocation stats, as JSON.
bench-json:
	go test -run '^$$' -bench 'BenchmarkTable|BenchmarkFig|BenchmarkSnapshot' -benchmem . | go run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json
