# Tier-1 flow: build + vet + tests, plus a short-mode race pass over the
# packages with real concurrency (engine cache, HTTP server, parallel
# SpGEMM, metrics registry).
.PHONY: all build vet test race race-full check obs-selftest chaos properties bench-json staticcheck govulncheck

all: check

build:
	go build ./...

vet:
	go vet ./...

# Deeper static analysis when a checker is on PATH; a plain `go vet` box
# (like CI bootstrap images) skips it rather than failing the build.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "staticcheck/golangci-lint not installed; skipping"; \
	fi

# Known-vulnerability scan when the scanner is on PATH; offline boxes skip
# it rather than failing the build (same gating as staticcheck).
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

test:
	go test ./...

# Short-mode race run over the concurrent packages; part of `make check`.
race:
	go test -race -short ./internal/core ./internal/relevance ./internal/server ./internal/sparse ./internal/obs ./internal/router ./internal/embed

# Full race run over everything; slower, run before cutting a release.
race-full:
	go test -race ./...

# Sanity-check the default metric histogram buckets (finite, strictly
# increasing, non-empty) and the exposition format; part of `make check`.
obs-selftest:
	go test -run 'TestSelfTest|TestValidateBuckets|TestHandlerServesValidExposition' ./internal/obs

# Fault-injection recovery matrix under the race detector: kill-mid-write
# at every byte offset, ENOSPC, torn renames, failed fsyncs, at-rest
# corruption sweeps, WAL torn-tail / duplicate-replay / crash-window
# recovery, hot-reload with concurrent queries and mutations, and the
# replication suite (follower convergence/resync, primary kill mid-write
# -stream, divergence detection). Short mode keeps the corruption sweeps
# seeded-sample-sized; part of `make check`.
chaos:
	go test -race -short ./internal/snapshot ./internal/chaos ./internal/wal
	go test -race -short -run 'TestHotReload|TestReload|TestWarmStart|TestMutate|TestCompaction|TestAppliedKey|TestFollow' ./internal/server
	go test -race -short -run 'TestClusterKillMidBatch|TestWarmFromSnapshot|TestFetchSnapshotTornStream|TestRelevancePartialFailure|TestFailover|TestFollow|TestDivergence' ./internal/router

# Paper-property suite under the race detector: randomized symmetry /
# self-maximum / semi-metric / indiscernibles checks (Properties 3-5)
# plus the differential top-k and Monte Carlo cross-checks, run twice so
# per-run seeding shenanigans can't hide order dependence; part of
# `make check`.
properties:
	go test -race -count=2 -run 'TestPropertyRandom|TestDifferential' ./internal/core

check: vet staticcheck govulncheck build test race obs-selftest chaos properties

# Regenerate the committed benchmark baseline: every paper-table and
# figure benchmark, the snapshot warm-vs-cold boot comparison, the
# batch scheduler's sequential-vs-batched amortization run, the
# query-optimizer auto-vs-forced plan comparison, the incremental
# mutation apply-vs-rematerialize comparison, the auto-relevance
# ensemble-vs-solo-paths comparison, and the approximate top-k
# exact-vs-embedding comparison, with allocation stats, as JSON.
bench-json:
	go test -run '^$$' -bench 'BenchmarkTable|BenchmarkFig|BenchmarkSnapshot|BenchmarkBatch|BenchmarkPlan|BenchmarkIncremental|BenchmarkRelevance|BenchmarkTopK' -benchmem . | go run ./cmd/benchjson > BENCH_core.json
	@echo wrote BENCH_core.json
