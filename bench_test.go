// Package hetesim's top-level benchmark harness: one benchmark per table
// and figure of the paper's evaluation section (regenerating the same
// rows/series via the internal/exp drivers), the Section 4.6 complexity
// comparison against SimRank, and ablation benches for the design choices
// DESIGN.md calls out (path cache, query plans, pruning, literal edge
// objects). Run with:
//
//	go test -bench=. -benchmem
package hetesim

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"hetesim/internal/baseline"
	"hetesim/internal/core"
	"hetesim/internal/datagen"
	"hetesim/internal/exp"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/relevance"
	"hetesim/internal/snapshot"
)

// benchCtx shares one experiment context (and thus one pair of generated
// datasets) across all paper-table benchmarks.
var benchCtx = sync.OnceValue(func() *exp.Context {
	return exp.NewContext(benchConfig())
})

// benchConfig scales the benchmark datasets so the full suite runs in
// seconds while preserving the planted structure; use cmd/experiments
// -scale full for the paper-scale run recorded in EXPERIMENTS.md.
func benchConfig() exp.Config {
	cfg := exp.SmallConfig()
	cfg.ACM = datagen.ACMConfig{
		Papers: 3000, Authors: 3000, Affiliations: 300,
		Terms: 500, Subjects: 40, Years: 8, Seed: 1,
	}
	cfg.DBLP = datagen.DBLPConfig{
		Papers: 2000, Authors: 2000, Terms: 800,
		LabeledAuthors: 500, LabeledPapers: 100, Seed: 1,
	}
	cfg.TopAuthors = 200
	cfg.ClusterRuns = 2
	cfg.ClusterAuthors = 300
	return cfg
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	ctx := benchCtx()
	// Generate datasets and warm caches outside the timed region.
	if _, err := exp.Run(ctx, id); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Run(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1AuthorProfile(b *testing.B)       { benchExperiment(b, "table1") }
func BenchmarkTable2ConfProfile(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkTable3SymmetryStudy(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkTable4RelatedAuthors(b *testing.B)      { benchExperiment(b, "table4") }
func BenchmarkTable5QueryAUC(b *testing.B)            { benchExperiment(b, "table5") }
func BenchmarkTable6ClusteringNMI(b *testing.B)       { benchExperiment(b, "table6") }
func BenchmarkTable7PathSemantics(b *testing.B)       { benchExperiment(b, "table7") }
func BenchmarkFig6RankDifference(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7ReachableDistribution(b *testing.B) { benchExperiment(b, "fig7") }

// complexityGraph builds a small two-type network with n nodes per type for
// the HeteSim-vs-SimRank comparison: SimRank's whole-network state is
// (T·n)², HeteSim's is n² along one path (Section 4.6).
func complexityGraph(n int) *datagen.Dataset {
	ds, err := datagen.DBLP(datagen.DBLPConfig{
		Papers: n, Authors: n, Terms: n / 2,
		LabeledAuthors: 0, LabeledPapers: 0, Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	return ds
}

// BenchmarkComplexityHeteSimVsSimRank regenerates the Section 4.6
// complexity comparison: HeteSim's single-path relevance matrix versus
// whole-network SimRank at matched sizes.
func BenchmarkComplexityHeteSimVsSimRank(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		ds := complexityGraph(n)
		g := ds.Graph
		p := metapath.MustParse(g.Schema(), "APCPA")
		b.Run(fmt.Sprintf("HeteSim/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := core.NewEngine(g) // cold engine: full computation
				if _, err := e.AllPairs(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("SimRank/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				baseline.SimRankHIN(g, 0.8, 5)
			}
		})
	}
}

// BenchmarkAblationPathCache measures the Section 4.6 materialization
// speedup: single-source queries against cold and warmed path caches.
func BenchmarkAblationPathCache(b *testing.B) {
	ds := complexityGraph(1500)
	g := ds.Graph
	p := metapath.MustParse(g.Schema(), "APCPA")
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(g)
			if _, err := e.SingleSourceByIndex(context.Background(), p, i%g.NodeCount("author")); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e := core.NewEngine(g)
		if err := e.Precompute(context.Background(), p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.SingleSourceByIndex(context.Background(), p, i%g.NodeCount("author")); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationQueryPlans compares the three query plans for the same
// quantity: pair (two sparse vector chains), single-source (vector against
// a materialized half), and all-pairs (full relevance matrix).
func BenchmarkAblationQueryPlans(b *testing.B) {
	ds := complexityGraph(1000)
	g := ds.Graph
	p := metapath.MustParse(g.Schema(), "APCPA")
	e := core.NewEngine(g)
	if err := e.Precompute(context.Background(), p); err != nil {
		b.Fatal(err)
	}
	n := g.NodeCount("author")
	b.Run("pair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.PairByIndex(context.Background(), p, i%n, (i*7)%n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("single-source", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.SingleSourceByIndex(context.Background(), p, i%n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("all-pairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.AllPairs(context.Background(), p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPruning measures the Section 4.6 truncation speedup:
// exact versus pruned reachable probability chains.
func BenchmarkAblationPruning(b *testing.B) {
	ds := complexityGraph(2000)
	g := ds.Graph
	p := metapath.MustParse(g.Schema(), "APCPAPCPA") // long chain: pruning matters
	for _, eps := range []float64{0, 1e-4} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := core.NewEngine(g, core.WithPruning(eps))
				if _, err := e.SingleSourceByIndex(context.Background(), p, i%g.NodeCount("author")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNormalization measures the cost of the cosine
// normalization (Definition 10) on top of the raw meeting probability.
func BenchmarkAblationNormalization(b *testing.B) {
	ds := complexityGraph(1500)
	g := ds.Graph
	p := metapath.MustParse(g.Schema(), "CPAPC")
	for _, normalized := range []bool{true, false} {
		name := "normalized"
		if !normalized {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := core.NewEngine(g, core.WithNormalization(normalized))
				if _, err := e.AllPairs(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOddPathEdgeObjects measures the cost of the edge-object
// decomposition (Definition 6) by comparing an odd path against an even
// path of similar work.
func BenchmarkAblationOddPathEdgeObjects(b *testing.B) {
	ds := complexityGraph(1500)
	g := ds.Graph
	odd := metapath.MustParse(g.Schema(), "CPA")   // decomposes through edge objects
	even := metapath.MustParse(g.Schema(), "CPAP") // meets at a node type
	for name, p := range map[string]*metapath.Path{"odd-CPA": odd, "even-CPAP": even} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := core.NewEngine(g)
				if _, err := e.AllPairs(context.Background(), p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMonteCarlo compares an exact cold pair query against the
// Section 4.6 Monte Carlo approximation at fixed sample counts.
func BenchmarkAblationMonteCarlo(b *testing.B) {
	ds := complexityGraph(2000)
	g := ds.Graph
	p := metapath.MustParse(g.Schema(), "APCPA")
	b.Run("exact-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(g, core.WithCaching(false))
			if _, err := e.PairByIndex(context.Background(), p, i%g.NodeCount("author"), (i*13)%g.NodeCount("author")); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, walks := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("montecarlo-%d", walks), func(b *testing.B) {
			e := core.NewEngine(g)
			for i := 0; i < b.N; i++ {
				if _, err := e.PairMonteCarlo(context.Background(), p, i%g.NodeCount("author"), (i*13)%g.NodeCount("author"), walks, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTopKSearch compares the full single-source scan against
// the candidate-restricted pruned top-k search.
func BenchmarkAblationTopKSearch(b *testing.B) {
	ds := complexityGraph(2000)
	g := ds.Graph
	// APA meets at the large paper type: each author's middle support is
	// tiny, so candidate restriction skips almost every target — the
	// pruned search's winning case.
	p := metapath.MustParse(g.Schema(), "APA")
	e := core.NewEngine(g)
	if err := e.Precompute(context.Background(), p); err != nil {
		b.Fatal(err)
	}
	if _, err := e.TopKSearch(context.Background(), p, 0, 10, 0); err != nil { // warm transpose cache
		b.Fatal(err)
	}
	n := g.NodeCount("author")
	b.Run("single-source-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.SingleSourceByIndex(context.Background(), p, i%n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("topk-pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.TopKSearch(context.Background(), p, i%n, 10, 1e-3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTopKApprox is the acceptance benchmark of the low-rank
// approximate top-k plan: 100k target authors related through only 20
// conferences, so the exact candidate-restricted scan still touches nearly
// every author (dense conference-mediated overlap — its worst case), while
// the approximate plan scores rank-r embeddings and exact-re-ranks an
// over-fetched candidate set. "cold" pays the one-time factorization (plus
// chain materialization) inside the timed region; "warm" is the steady
// state the plan is for, and must beat the exact scan by ≥5×.
func BenchmarkTopKApprox(b *testing.B) {
	ds := complexityGraph(100000)
	g := ds.Graph
	p := metapath.MustParse(g.Schema(), "APCPA")
	ctx := context.Background()
	e := core.NewEngine(g)
	if err := e.Precompute(ctx, p); err != nil {
		b.Fatal(err)
	}
	if _, err := e.TopKSearch(ctx, p, 0, 10, 0); err != nil { // warm transpose cache
		b.Fatal(err)
	}
	n := g.NodeCount("author")
	b.Run("exact-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.TopKSearch(ctx, p, i%n, 10, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("approx-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cold := core.NewEngine(g)
			if _, _, err := cold.TopKSearchWithPlan(ctx, p, i%n, 10, 0,
				core.PlanOptions{Force: core.PlanTopKApprox}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, _, err := e.TopKSearchWithPlan(ctx, p, 0, 10, 0,
		core.PlanOptions{Force: core.PlanTopKApprox}); err != nil { // warm the embedding
		b.Fatal(err)
	}
	b.Run("approx-warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := e.TopKSearchWithPlan(ctx, p, i%n, 10, 0,
				core.PlanOptions{Force: core.PlanTopKApprox}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// batchBenchQueries builds the 64 same-path pair queries of the batch
// amortization benchmark: a 16-source × 4-target block of the relevance
// matrix, the shape a recommendation or profile page issues per render.
func batchBenchQueries(g interface{ NodeCount(string) int }, p *metapath.Path) []core.BatchQuery {
	nA := g.NodeCount("author")
	qs := make([]core.BatchQuery, 0, 64)
	for s := 0; s < 16; s++ {
		for d := 0; d < 4; d++ {
			qs = append(qs, core.BatchQuery{
				Kind: core.BatchPair, Path: p,
				Src: (s * 37) % nA, Dst: (d*113 + 19) % nA,
			})
		}
	}
	return qs
}

// BenchmarkBatchPairAmortization is the batch scheduler's acceptance
// benchmark: 64 pair queries on one relevance path, answered sequentially
// (each pays its own vector propagations) versus as one batch (the group
// propagates each distinct source and target row once — Property 2's
// factorization shared 64 ways). Engines are cold per iteration, so the
// ratio isolates the scheduler's amortization, not cache warmth; the warm
// variant shows the residual per-batch cost once chains are cached.
func BenchmarkBatchPairAmortization(b *testing.B) {
	ds := complexityGraph(20000)
	g := ds.Graph
	// The long even path's half-chains (A→P→C→P→A) fan out through the
	// conference type, so each solo pair query pays two genuinely expensive
	// vector propagations — the workload Property 2's factorization is for.
	p := metapath.MustParse(g.Schema(), "APCPAPCPA")
	qs := batchBenchQueries(g, p)
	b.Run("sequential-64-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(g)
			for _, q := range qs {
				if _, err := e.PairByIndex(context.Background(), p, q.Src, q.Dst); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch-64-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(g)
			results, _, err := e.ExecuteBatch(context.Background(), qs, core.BatchOptions{})
			if err != nil {
				b.Fatal(err)
			}
			for _, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
			}
		}
	})
	b.Run("batch-64-warm", func(b *testing.B) {
		e := core.NewEngine(g)
		if err := e.Precompute(context.Background(), p); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.ExecuteBatch(context.Background(), qs, core.BatchOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelevanceAuto is the auto-relevance subsystem's acceptance
// benchmark: one conference pair scored over an ensemble of three meta
// paths that share the published_in⁻¹ prefix (CPC, CPAPC, CPTPC),
// answered naively (each path is a solo Pair query paying its own
// half-chain propagations — including the dense conference→papers fanout
// three times) versus through relevance.Pair (the batch side planner
// materializes the shared two-row prefix once and resumes the longer
// chains from it). Engines are cold per iteration so the ratio isolates
// cross-path amortization; the warm variant shows the steady-state
// ensemble cost once chains are cached.
func BenchmarkRelevanceAuto(b *testing.B) {
	ds := complexityGraph(20000)
	g := ds.Graph
	specs := []string{"CPC", "CPAPC", "CPTPC"}
	paths := make([]*metapath.Path, len(specs))
	for i, s := range specs {
		paths[i] = metapath.MustParse(g.Schema(), s)
	}
	nC := g.NodeCount("conference")
	src, dst := 3%nC, 11%nC
	opts := relevance.Options{Paths: specs, MaxPaths: len(specs)}
	b.Run("solo-paths-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(g)
			var sum float64
			for _, p := range paths {
				s, err := e.PairByIndex(context.Background(), p, src, dst)
				if err != nil {
					b.Fatal(err)
				}
				sum += s / float64(len(paths))
			}
			_ = sum
		}
	})
	b.Run("ensemble-cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(g)
			if _, err := relevance.Pair(context.Background(), e, "conference", src, "conference", dst, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ensemble-warm", func(b *testing.B) {
		e := core.NewEngine(g)
		for _, p := range paths {
			if err := e.Precompute(context.Background(), p); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := relevance.Pair(context.Background(), e, "conference", src, "conference", dst, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshotBoot measures what the durability layer buys at boot.
// "cold" materializes the working-set chain matrices from the raw graph —
// the Section 4.6 offline computation a fresh process must repeat.
// "warm" restores the same matrices from a snapshot: parse and checksum
// the container, validate the graph fingerprint, decode the sparse
// matrices, and import them into a fresh engine — the path hetesimd takes
// at startup when -snapshot-path names a matching snapshot.
func BenchmarkSnapshotBoot(b *testing.B) {
	ds := complexityGraph(3000)
	g := ds.Graph
	// The working set that makes warm starts matter: the long chain's
	// materialization is real SpGEMM work, not a few sparse products.
	paths := []*metapath.Path{
		metapath.MustParse(g.Schema(), "APCPA"),
		metapath.MustParse(g.Schema(), "APCPAPCPA"),
	}
	precompute := func(e *core.Engine) {
		for _, p := range paths {
			if err := e.Precompute(context.Background(), p); err != nil {
				b.Fatal(err)
			}
		}
	}

	// Build the snapshot once, outside every timed region.
	fingerprint := g.Fingerprint()
	donor := core.NewEngine(g)
	precompute(donor)
	snap := &snapshot.Snapshot{Fingerprint: fingerprint, PruneEps: donor.PruneEps()}
	if err := snapshot.EncodeChains(snap, donor.ExportChains()); err != nil {
		b.Fatal(err)
	}
	var blob bytes.Buffer
	if err := snapshot.Write(&blob, snap); err != nil {
		b.Fatal(err)
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			precompute(core.NewEngine(g))
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.SetBytes(int64(blob.Len()))
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(g)
			s, err := snapshot.Read(bytes.NewReader(blob.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			if err := s.CheckCompat(fingerprint, e.PruneEps()); err != nil {
				b.Fatal(err)
			}
			chains, err := snapshot.DecodeChains(s)
			if err != nil {
				b.Fatal(err)
			}
			if n := e.ImportChains(chains); n == 0 {
				b.Fatal("warm boot imported no chains")
			}
		}
	})
}

// BenchmarkIncrementalApply is the mutation path's acceptance benchmark.
// A warmed engine serves a bibliographic working set — author relevance
// through conferences (APC, APCPA, and the long APCPAPCPA whose
// conference round-trips make SpGEMM genuinely expensive) and through
// terms (APTPA) — when a tag-edit delta lands: two papers gain a term.
// By Property 2 the delta perturbs only the mentions transition rows of
// those papers, so RewarmFrom recomputes just the co-author rows of the
// term chains and carries every conference chain bit-identically at zero
// multiplication cost, while the baseline rematerializes the whole
// working set from the raw graph — what every mutation would cost if a
// write invalidated the cache. The committed ratio is the "don't rebuild
// the world per edge" guarantee of the admin mutation endpoint.
func BenchmarkIncrementalApply(b *testing.B) {
	ds := complexityGraph(8000)
	g := ds.Graph
	paths := []*metapath.Path{
		metapath.MustParse(g.Schema(), "APC"),
		metapath.MustParse(g.Schema(), "APTPA"),
		metapath.MustParse(g.Schema(), "APCPA"),
		metapath.MustParse(g.Schema(), "APCPAPCPA"),
	}
	warm := func(e *core.Engine) {
		for _, p := range paths {
			if err := e.Precompute(context.Background(), p); err != nil {
				b.Fatal(err)
			}
		}
	}
	old := core.NewEngine(g)
	warm(old)

	ops := []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "mentions", Src: "paper0042", Dst: "term0007", Weight: 1},
		{Kind: hin.OpUpsertEdge, Relation: "mentions", Src: "paper0311", Dst: "term0019", Weight: 1},
	}
	ng, dirty, err := g.Apply(ops)
	if err != nil {
		b.Fatal(err)
	}

	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := core.NewEngine(ng)
			st, err := e.RewarmFrom(context.Background(), old, dirty)
			if err != nil {
				b.Fatal(err)
			}
			if st.RowPatched == 0 || st.Carried == 0 {
				b.Fatalf("rewarm did not row-patch and carry: %s", st)
			}
		}
	})
	b.Run("full-rematerialize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			warm(core.NewEngine(ng))
		}
	})
}

// BenchmarkPlanAuto races the cost-based optimizer against every static
// plan it chooses between, on a mixed pair workload. Cold, auto should
// track pair-vectors (no materialization for a handful of queries); after
// Precompute warms the half-chains, auto should flip to all-pairs row
// lookups. The committed baseline therefore shows auto no slower than the
// best static plan in either regime.
func BenchmarkPlanAuto(b *testing.B) {
	ds := complexityGraph(1000)
	g := ds.Graph
	p := metapath.MustParse(g.Schema(), "APCPA")
	n := g.NodeCount("author")
	plans := []core.PlanKind{core.PlanAuto, core.PlanPairVectors, core.PlanSingleVsMatrix, core.PlanAllPairs}
	for _, kind := range plans {
		b.Run("cold/"+string(kind), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := core.NewEngine(g)
				if _, _, err := e.PairWithPlan(context.Background(), p, i%n, (i*7)%n,
					core.PlanOptions{Force: kind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, kind := range plans {
		b.Run("warm/"+string(kind), func(b *testing.B) {
			e := core.NewEngine(g)
			if err := e.Precompute(context.Background(), p); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.PairWithPlan(context.Background(), p, i%n, (i*7)%n,
					core.PlanOptions{Force: kind}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
