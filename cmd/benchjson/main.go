// Command benchjson converts `go test -bench` text output on stdin into a
// JSON benchmark baseline on stdout, so benchmark numbers can be committed
// and diffed across changes (make bench-json writes BENCH_core.json).
//
// Usage:
//
//	go test -run '^$' -bench 'Table|Fig' -benchmem . | benchjson > BENCH_core.json
//
// Each benchmark line becomes an object with ns/op, and when -benchmem was
// on, B/op and allocs/op. Lines that are not benchmark results (the goos/
// goarch preamble, PASS, ok) pass through to stderr so the terminal still
// shows the run's outcome.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"benchmarks": results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkTable1AuthorProfile-8  1766  659087 ns/op  889531 B/op  568 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	name, procs := splitProcs(fields[0])
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: name, Procs: procs, Iterations: iters}
	seen := false
	// Values come in "<number> <unit>" pairs after the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return r, seen
}

// splitProcs separates the -N GOMAXPROCS suffix from a benchmark name.
func splitProcs(s string) (string, int) {
	i := strings.LastIndex(s, "-")
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil {
		return s, 1
	}
	return s[:i], n
}
