// Command datagen generates a synthetic bibliographic heterogeneous
// network (the ACM- or DBLP-style networks of the paper's Section 5.1) and
// writes it as JSON, with an optional labels sidecar.
//
// Usage:
//
//	datagen -dataset acm|dblp [-scale small|full] [-seed n] -o graph.json [-labels labels.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"hetesim/internal/datagen"
	"hetesim/internal/hin"
)

func main() {
	var (
		dataset = flag.String("dataset", "acm", "dataset family: acm | dblp")
		scale   = flag.String("scale", "small", "scale: small | full")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("o", "", "output graph path (default: stdout)")
		labels  = flag.String("labels", "", "optional path for the area-labels sidecar")
	)
	flag.Parse()

	ds, err := generate(*dataset, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := hin.Write(w, ds.Graph); err != nil {
		fmt.Fprintln(os.Stderr, "datagen: writing graph:", err)
		os.Exit(1)
	}
	if *labels != "" {
		f, err := os.Create(*labels)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		side := struct {
			AreaNames []string         `json:"area_names"`
			Labels    map[string][]int `json:"labels"`
		}{ds.AreaNames, ds.Labels}
		if err := json.NewEncoder(f).Encode(side); err != nil {
			fmt.Fprintln(os.Stderr, "datagen: writing labels:", err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, "datagen:", ds.Graph.Stats())
}

func generate(dataset, scale string, seed int64) (*datagen.Dataset, error) {
	switch dataset {
	case "acm":
		cfg := datagen.SmallACMConfig()
		if scale == "full" {
			cfg = datagen.DefaultACMConfig()
		} else if scale != "small" {
			return nil, fmt.Errorf("unknown scale %q", scale)
		}
		cfg.Seed = seed
		return datagen.ACM(cfg)
	case "dblp":
		cfg := datagen.SmallDBLPConfig()
		if scale == "full" {
			cfg = datagen.DefaultDBLPConfig()
		} else if scale != "small" {
			return nil, fmt.Errorf("unknown scale %q", scale)
		}
		cfg.Seed = seed
		return datagen.DBLP(cfg)
	default:
		return nil, fmt.Errorf("unknown dataset %q (want acm or dblp)", dataset)
	}
}
