// Command experiments regenerates every table and figure of the paper's
// evaluation section (Tables 1–7, Figures 6–7) on the synthetic ACM and
// DBLP networks.
//
// Usage:
//
//	experiments [-run id[,id...]] [-list] [-scale small|full] [-seed n]
//
// Without -run, the whole suite runs in the paper's presentation order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hetesim/internal/exp"
)

func main() {
	var (
		runIDs = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		scale  = flag.String("scale", "full", "dataset scale: small | full")
		seed   = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	if *list {
		for _, e := range exp.Registry() {
			fmt.Printf("%-8s %s\n", e.ID, e.Description)
		}
		return
	}

	var cfg exp.Config
	switch *scale {
	case "small":
		cfg = exp.SmallConfig()
	case "full":
		cfg = exp.DefaultConfig()
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want small or full)\n", *scale)
		os.Exit(2)
	}
	cfg.Seed = *seed
	cfg.ACM.Seed = *seed
	cfg.DBLP.Seed = *seed
	ctx := exp.NewContext(cfg)

	ids := exp.IDs()
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		res, err := exp.Run(ctx, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s (%.2fs)\n\n%s\n", id, time.Since(start).Seconds(), res.Render())
	}
}
