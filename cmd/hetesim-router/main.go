// Command hetesim-router fronts a fleet of hetesimd replicas with
// fault-tolerant, cache-affine routing (see internal/router).
//
// Usage:
//
//	hetesim-router -replicas http://a:8080,http://b:8080,http://c:8080
//	               [-addr :8090] [-health-interval 2s]
//	               [-retries 3] [-retry-base 50ms] [-retry-max-wait 2s]
//	               [-hedge] [-hedge-min 10ms] [-hedge-max 500ms]
//	               [-breaker-threshold 5] [-breaker-cooldown 2s]
//	               [-upstream-timeout 30s] [-shutdown-grace 15s]
//	               [-primary http://a:8080] [-max-read-lag 30s]
//	               [-relevance-max-len 4] [-relevance-max-paths 16]
//	               [-path-weights weights.json]
//
// The router consistent-hashes pair/topk/batch/relevance traffic across
// the replicas by canonical relevance-path key, so each replica's chain
// cache stays hot on a disjoint path set. Batch requests are split per
// path group, fanned out, and re-assembled slot-for-slot; a group whose
// replicas are all down fails per-slot, never the whole request. Upstream
// failures are retried with exponential backoff + jitter (Retry-After
// honored), -hedge races a second replica once the first is slower than
// its p99, and per-replica circuit breakers shed a replica after
// -breaker-threshold consecutive failures until a half-open probe
// succeeds. GET /metrics aggregates per-replica health, retries, hedges,
// breaker transitions, and routing decisions; GET /v1/admin/replicas is
// the operator view of the fleet.
//
// Writes: POST /v1/admin/edges relays to the fleet's single write primary
// — -primary pins it to a named replica, otherwise the router elects the
// healthiest caught-up replica and publishes it at GET /v1/admin/primary
// (which -follow'ing replicas poll). During failover windows writes
// answer 503 with Retry-After; acks carry the committed WAL sequence in
// X-Hetesim-WAL-Seq, and a client that echoes it back as X-Min-WAL-Seq on
// reads gets read-your-writes (only replicas at or past that sequence are
// picked). Replicas lagging more than -max-read-lag, or whose fingerprint
// diverges from the fleet's at the same sequence, are deprioritized for
// reads; divergence is surfaced in /v1/admin/replicas and as the
// hetesim_router_fingerprint_divergence gauge.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetesim/internal/relevance"
	"hetesim/internal/router"
)

func main() {
	var (
		replicas      = flag.String("replicas", "", "comma-separated hetesimd base URLs (required)")
		addr          = flag.String("addr", ":8090", "listen address")
		healthEvery   = flag.Duration("health-interval", 2*time.Second, "how often each replica's /readyz is probed")
		retries       = flag.Int("retries", 3, "upstream retry attempts beyond the first (0 disables)")
		retryBase     = flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff step")
		retryMaxWait  = flag.Duration("retry-max-wait", 2*time.Second, "cap on any single retry wait, including Retry-After")
		hedge         = flag.Bool("hedge", false, "race a second replica when the first exceeds its p99 latency")
		hedgeMin      = flag.Duration("hedge-min", 10*time.Millisecond, "lower clamp on the hedge delay")
		hedgeMax      = flag.Duration("hedge-max", 500*time.Millisecond, "upper clamp on the hedge delay")
		brkThreshold  = flag.Int("breaker-threshold", 5, "consecutive failures that open a replica's circuit breaker (0 disables)")
		brkCooldown   = flag.Duration("breaker-cooldown", 2*time.Second, "how long an open breaker waits before a half-open probe")
		upTimeout     = flag.Duration("upstream-timeout", 30*time.Second, "per-attempt upstream request timeout")
		shutdownGrace = flag.Duration("shutdown-grace", 15*time.Second, "drain window on SIGINT/SIGTERM")
		primary       = flag.String("primary", "", "pin the write primary to this replica URL instead of electing one (must be a -replicas member)")
		maxReadLag    = flag.Duration("max-read-lag", 30*time.Second, "replication lag beyond which a follower is deprioritized for reads")
		relMaxLen     = flag.Int("relevance-max-len", 4, "longest meta path enumerated for scattered /v1/relevance queries")
		relMaxPaths   = flag.Int("relevance-max-paths", 16, "candidate-path cap for scattered /v1/relevance queries")
		pathWeights   = flag.String("path-weights", "", "JSON file of learned path weights enabling the learned weighting mode of scattered /v1/relevance")
	)
	flag.Parse()
	if *replicas == "" {
		flag.Usage()
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*replicas, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	var learned map[string]float64
	if *pathWeights != "" {
		var err error
		learned, err = relevance.LoadWeightsFile(*pathWeights)
		if err != nil {
			log.Fatal("hetesim-router: -path-weights: ", err)
		}
	}

	opts := []router.Option{
		router.WithClient(&http.Client{Timeout: *upTimeout}),
		router.WithRetryPolicy(router.RetryPolicy{Retries: *retries, Base: *retryBase, MaxWait: *retryMaxWait}),
		router.WithBreaker(*brkThreshold, *brkCooldown),
		router.WithHealthInterval(*healthEvery),
		router.WithRelevanceLimits(*relMaxLen, *relMaxPaths),
		router.WithPathWeights(learned),
		router.WithMaxReadLag(*maxReadLag),
		router.WithLogf(log.Printf),
	}
	if *primary != "" {
		opts = append(opts, router.WithPrimary(*primary))
	}
	if *hedge {
		opts = append(opts, router.WithHedging(*hedgeMin, *hedgeMax))
	}
	rt, err := router.New(urls, opts...)
	if err != nil {
		log.Fatal("hetesim-router: ", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("hetesim-router: fronting %d replicas on %s", len(urls), *addr)

	select {
	case err := <-errc:
		log.Fatal("hetesim-router: ", err)
	case <-ctx.Done():
		stop()
		log.Printf("hetesim-router: shutting down, draining for up to %s", *shutdownGrace)
		drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("hetesim-router: drain incomplete: %v", err)
			httpSrv.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("hetesim-router: %v", err)
		}
		log.Print("hetesim-router: bye")
	}
}
