package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// The -batch file format mirrors the POST /v1/batch request and response
// bodies, so a workload file works against the CLI and the daemon alike.

type batchFileRequest struct {
	Queries []batchFileQuery `json:"queries"`
}

type batchFileQuery struct {
	Kind   string  `json:"kind"`
	Path   string  `json:"path"`
	Source string  `json:"source"`
	Target string  `json:"target,omitempty"`
	K      int     `json:"k,omitempty"`
	Eps    float64 `json:"eps,omitempty"`
	Raw    bool    `json:"raw,omitempty"`
}

type batchFileResult struct {
	Kind    string     `json:"kind,omitempty"`
	Path    string     `json:"path,omitempty"`
	Source  string     `json:"source,omitempty"`
	Target  string     `json:"target,omitempty"`
	Score   *float64   `json:"score,omitempty"`
	Scores  []float64  `json:"scores,omitempty"`
	Results []batchHit `json:"results,omitempty"`
	Shared  bool       `json:"shared,omitempty"`
	Error   string     `json:"error,omitempty"`
}

type batchHit struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

type batchFileStats struct {
	Queries       int     `json:"queries"`
	Groups        int     `json:"groups"`
	SharedQueries int     `json:"shared_queries"`
	ChainBuilds   int     `json:"chain_builds"`
	Amortization  float64 `json:"amortization"`
}

func runBatch(graphPath, file string) error {
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	var in io.Reader = os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var req batchFileRequest
	if err := json.NewDecoder(in).Decode(&req); err != nil {
		return fmt.Errorf("batch file: %w", err)
	}
	if len(req.Queries) == 0 {
		return fmt.Errorf("batch file: no queries")
	}

	out := make([]batchFileResult, len(req.Queries))
	paths := make([]*metapath.Path, len(req.Queries))
	var normQ, rawQ []core.BatchQuery
	var normPos, rawPos []int
	for i, qb := range req.Queries {
		out[i] = batchFileResult{Kind: qb.Kind, Path: qb.Path, Source: qb.Source, Target: qb.Target}
		cq, err := decodeFileQuery(g, qb)
		if err != nil {
			out[i].Error = err.Error()
			continue
		}
		paths[i] = cq.Path
		out[i].Path = cq.Path.String()
		if qb.Raw {
			rawQ, rawPos = append(rawQ, cq), append(rawPos, i)
		} else {
			normQ, normPos = append(normQ, cq), append(normPos, i)
		}
	}

	var total batchFileStats
	total.Queries = len(req.Queries)
	run := func(e *core.Engine, qs []core.BatchQuery, pos []int) error {
		if len(qs) == 0 {
			return nil
		}
		results, stats, err := e.ExecuteBatch(context.Background(), qs, core.BatchOptions{})
		if err != nil {
			return err
		}
		for k, res := range results {
			fillFileResult(g, &out[pos[k]], paths[pos[k]], res)
		}
		total.Groups += stats.Groups
		total.SharedQueries += stats.SharedQueries
		total.ChainBuilds += stats.ChainBuilds
		return nil
	}
	if err := run(core.NewEngine(g), normQ, normPos); err != nil {
		return err
	}
	if err := run(core.NewEngine(g, core.WithNormalization(false)), rawQ, rawPos); err != nil {
		return err
	}
	if total.Groups > 0 {
		total.Amortization = float64(len(normQ)+len(rawQ)) / float64(total.Groups)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"results": out, "stats": total})
}

func decodeFileQuery(g *hin.Graph, qb batchFileQuery) (core.BatchQuery, error) {
	var cq core.BatchQuery
	if qb.Path == "" {
		return cq, fmt.Errorf("missing path")
	}
	p, err := metapath.Parse(g.Schema(), qb.Path)
	if err != nil {
		return cq, err
	}
	if qb.Source == "" {
		return cq, fmt.Errorf("missing source")
	}
	src, err := g.NodeIndex(p.Source(), qb.Source)
	if err != nil {
		return cq, err
	}
	cq.Path, cq.Src = p, src
	switch qb.Kind {
	case "pair":
		cq.Kind = core.BatchPair
		if qb.Target == "" {
			return cq, fmt.Errorf("missing target")
		}
		cq.Dst, err = g.NodeIndex(p.Target(), qb.Target)
		if err != nil {
			return cq, err
		}
	case "single_source":
		cq.Kind = core.BatchSingleSource
	case "topk":
		cq.Kind = core.BatchTopK
		cq.K, cq.Eps = qb.K, qb.Eps
		if cq.K == 0 {
			cq.K = 10
		}
	default:
		return cq, fmt.Errorf("unknown kind %q (want pair, single_source, or topk)", qb.Kind)
	}
	return cq, nil
}

func fillFileResult(g *hin.Graph, slot *batchFileResult, p *metapath.Path, res core.BatchResult) {
	slot.Shared = res.Shared
	if res.Err != nil {
		slot.Error = res.Err.Error()
		return
	}
	switch slot.Kind {
	case "pair":
		score := res.Score
		slot.Score = &score
	case "single_source":
		slot.Scores = res.Scores
	case "topk":
		ids := g.NodeIDs(p.Target())
		slot.Results = make([]batchHit, 0, len(res.TopK))
		for _, hit := range res.TopK {
			slot.Results = append(slot.Results, batchHit{ID: ids[hit.Index], Score: hit.Score})
		}
	}
}
