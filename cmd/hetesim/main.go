// Command hetesim answers relevance queries over a heterogeneous network
// stored in the JSON format of package hin (produce one with cmd/datagen).
//
// Usage:
//
//	hetesim -graph g.json -path APVC -source <id> [-target <id>] [-k 10]
//	        [-measure hetesim|pcrw|pathsim] [-raw] [-montecarlo walks]
//	hetesim -graph g.json -enumerate author,conference [-maxlen 4]
//	hetesim -graph g.json -relevance -source <id> -source-type author
//	        [-target <id>] -target-type author [-k 10] [-maxlen 4]
//	        [-maxpaths 16] [-weighting uniform|degree|learned]
//	        [-weights weights.json] [-raw]
//	hetesim -graph g.json -batch queries.json
//	hetesim -graph g.json -apply deltas.json [-out g2.json]
//	hetesim -server http://host:8090 -path APC -source <id> [-target <id>]
//	        [-retries 3] [-retry-max-wait 5s]
//
// With -target it prints the pair's relevance; without, the top-k most
// related objects of the path's target type. -montecarlo estimates a pair
// by sampled walks instead of exact propagation (Section 4.6 of the
// paper). -plan forces a physical query plan instead of letting the
// cost-based optimizer choose (the chosen plan is reported on stderr);
// -explain prints the optimizer's cost model for a path. -enumerate
// lists the candidate relevance paths between two types, the input to
// path selection. -v dumps the process metrics (Prometheus text format)
// to stderr after the query, showing what the kernels and caches did
// for it.
//
// -batch runs many queries from a JSON file ("-" reads stdin) through the
// path-group batch scheduler — the same request shape as POST /v1/batch:
// {"queries": [{"kind": "pair"|"single_source"|"topk", "path": "...",
// "source": "...", "target": "...", "k": 10, "eps": 0, "raw": false}]}.
// Results (one per query, each with its own error) and the amortization
// stats are printed as JSON.
//
// -relevance answers without a path: it enumerates every schema-valid meta
// path between -source-type and -target-type (up to -maxlen steps and
// -maxpaths candidates), scores them all through the batch scheduler so
// paths with common prefixes share chain propagation, and prints the
// weighted ensemble with each path's contribution. With -target it scores
// the pair; without, it ranks the top -k objects of -target-type.
// -weighting learned needs -weights, a JSON file of per-path weights
// (e.g. exported from a learn.PathWeights fit).
//
// -apply is the offline counterpart of the daemon's POST /v1/admin/edges:
// it applies a batch of mutation ops from a JSON file ("-" reads stdin;
// {"ops": [{"op": "upsert_edge"|"delete_edge"|"add_node", ...}]}) to the
// graph all-or-nothing and writes the mutated graph to -out ("-" = stdout,
// the default). The batch's dirty summary is reported on stderr.
//
// -server skips the local graph entirely and sends the query to a running
// hetesimd (or a hetesim-router fronting a fleet): -path/-source/-target
// hit /v1/pair, /v1/topk, or /v1/why, -batch posts to /v1/batch,
// -relevance posts to /v1/relevance, and -apply posts the mutation batch
// to POST /v1/admin/edges — through a router it lands on the elected
// write primary and replicates to the fleet; the file may carry an
// optional "key" (idempotency key) so a retried command never
// double-applies. Shed responses (429/503 and friends)
// are retried with exponential backoff honoring the server's Retry-After;
// -retries and -retry-max-wait bound the persistence, so a draining or
// briefly overloaded server costs a short wait instead of a hard failure.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hetesim/internal/baseline"
	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/obs"
	"hetesim/internal/rank"
	"hetesim/internal/relevance"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph JSON file (required)")
		pathSpec   = flag.String("path", "", "relevance path, e.g. APVC or author>paper>venue")
		source     = flag.String("source", "", "source object id")
		target     = flag.String("target", "", "target object id (optional: pair query)")
		k          = flag.Int("k", 10, "top-k for list queries")
		measure    = flag.String("measure", "hetesim", "measure: hetesim | pcrw | pathsim")
		raw        = flag.Bool("raw", false, "report unnormalized HeteSim (meeting probability)")
		montecarlo = flag.Int("montecarlo", 0, "approximate a pair with this many sampled walks")
		batchFile  = flag.String("batch", "", "run the JSON batch request in this file (\"-\" = stdin) through the batch scheduler")
		applyFile  = flag.String("apply", "", "apply the JSON mutation batch in this file (\"-\" = stdin) and write the mutated graph")
		outFile    = flag.String("out", "-", "output file for -apply (\"-\" = stdout)")
		enumerate  = flag.String("enumerate", "", "list relevance paths between two comma-separated types")
		maxLen     = flag.Int("maxlen", 4, "maximum path length for -enumerate and -relevance")
		relevanceQ = flag.Bool("relevance", false, "auto relevance: enumerate paths between -source-type and -target-type and combine them into a weighted ensemble")
		sourceType = flag.String("source-type", "", "source object type for -relevance")
		targetType = flag.String("target-type", "", "target object type for -relevance")
		weighting  = flag.String("weighting", "uniform", "ensemble weighting for -relevance: uniform | degree | learned")
		weightsF   = flag.String("weights", "", "learned path-weights JSON file for -relevance ({\"weights\": {\"APA\": 0.6, ...}})")
		maxPaths   = flag.Int("maxpaths", 16, "candidate-path cap for -relevance")
		explain    = flag.Int("explain", 0, "print the query plans for -path amortized over this many queries")
		planName   = flag.String("plan", "", "force a hetesim physical plan: auto | pair-vectors | single-vs-matrix | all-pairs | monte-carlo (walks from -montecarlo)")
		why        = flag.Int("why", 0, "with -target: show this many top meeting-object contributions")
		verbose    = flag.Bool("v", false, "dump process metrics to stderr after the query")
		serverURL  = flag.String("server", "", "query a running hetesimd/hetesim-router at this base URL instead of loading -graph")
		retries    = flag.Int("retries", 3, "with -server: retry attempts for shed responses (429/502/503/504)")
		retryMax   = flag.Duration("retry-max-wait", 5*time.Second, "with -server: cap on any single retry wait, including the server's Retry-After")
	)
	flag.Parse()
	if *serverURL != "" {
		rc := newRemoteClient(*serverURL, *retries, *retryMax)
		if err := runRemote(rc, *pathSpec, *source, *target, *measure, *k, *raw,
			*batchFile, *applyFile, *relevanceQ, *sourceType, *targetType, *weighting, *maxLen, *maxPaths, *why); err != nil {
			fmt.Fprintln(os.Stderr, "hetesim:", err)
			os.Exit(1)
		}
		return
	}
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	switch {
	case *applyFile != "":
		err = runApply(*graphPath, *applyFile, *outFile)
	case *batchFile != "":
		err = runBatch(*graphPath, *batchFile)
	case *relevanceQ:
		err = runRelevance(*graphPath, *source, *sourceType, *target, *targetType,
			*weighting, *weightsF, *k, *maxLen, *maxPaths, *raw)
	case *enumerate != "":
		err = runEnumerate(*graphPath, *enumerate, *maxLen)
	case *explain > 0 && *pathSpec != "":
		err = runExplain(*graphPath, *pathSpec, *explain)
	case *why > 0 && *pathSpec != "" && *source != "" && *target != "":
		err = runWhy(*graphPath, *pathSpec, *source, *target, *why, *raw)
	case *pathSpec != "" && *source != "":
		err = run(*graphPath, *pathSpec, *source, *target, *measure, *planName, *k, *raw, *montecarlo)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetesim:", err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintln(os.Stderr, "--- metrics ---")
		obs.Default().WritePrometheus(os.Stderr)
	}
}

func runEnumerate(graphPath, spec string, maxLen int) error {
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-enumerate wants from,to (got %q)", spec)
	}
	paths, err := metapath.Enumerate(g.Schema(), strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), maxLen, 200)
	if err != nil {
		return err
	}
	fmt.Printf("%d relevance paths from %s to %s (maxlen %d):\n", len(paths), parts[0], parts[1], maxLen)
	for _, p := range paths {
		note := ""
		if p.IsSymmetric() {
			note = "  (symmetric)"
		}
		fmt.Printf("  %s%s\n", p, note)
	}
	return nil
}

// runRelevance is the CLI face of the auto-relevance ensemble: same
// enumeration, scoring, and weighting as POST /v1/relevance.
func runRelevance(graphPath, source, sourceType, target, targetType, weighting, weightsFile string, k, maxLen, maxPaths int, raw bool) error {
	if source == "" || sourceType == "" || targetType == "" {
		return fmt.Errorf("-relevance needs -source, -source-type and -target-type")
	}
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	opts := []core.Option{}
	if raw {
		opts = append(opts, core.WithNormalization(false))
	}
	e := core.NewEngine(g, opts...)
	src, err := g.NodeIndex(sourceType, source)
	if err != nil {
		return err
	}
	o := relevance.Options{MaxLen: maxLen, MaxPaths: maxPaths, Weighting: weighting}
	if weightsFile != "" {
		if o.Learned, err = relevance.LoadWeightsFile(weightsFile); err != nil {
			return err
		}
	}
	report := func(res *relevance.Result, pair bool) {
		for _, ps := range res.Paths {
			if ps.Err != "" {
				fmt.Fprintf(os.Stderr, "  %-12s w=%.4f FAILED: %s\n", ps.Path, ps.Weight, ps.Err)
				continue
			}
			approx := ""
			if ps.Approximate {
				approx = " (approximate)"
			}
			// Top-k paths contribute a score vector, not a scalar.
			score := ""
			if pair {
				score = fmt.Sprintf(" score=%.6f", ps.Score)
			}
			fmt.Fprintf(os.Stderr, "  %-12s w=%.4f%s plan=%s%s\n",
				ps.Path, ps.Weight, score, ps.Plan, approx)
		}
		fmt.Fprintf(os.Stderr, "  shared %d/%d path queries; %d row-steps vs %d naive\n",
			res.Stats.SharedQueries, len(res.Paths), res.Stats.RowSteps, res.Stats.NaiveRowSteps)
	}
	if target != "" {
		dst, err := g.NodeIndex(targetType, target)
		if err != nil {
			return err
		}
		res, err := relevance.Pair(context.Background(), e, sourceType, src, targetType, dst, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "ensemble of %d %s→%s paths (%s weighting):\n",
			len(res.Paths), sourceType, targetType, weighting)
		report(res, true)
		fmt.Printf("relevance(%s, %s) = %.6f\n", source, target, res.Score)
		return nil
	}
	res, ranked, err := relevance.TopK(context.Background(), e, sourceType, src, targetType, k, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "ensemble of %d %s→%s paths (%s weighting):\n",
		len(res.Paths), sourceType, targetType, weighting)
	report(res, false)
	fmt.Printf("top %d %s objects related to %s (auto relevance):\n", len(ranked), targetType, source)
	for i, hit := range ranked {
		fmt.Printf("  %2d. %-24s %.6f\n", i+1, hit.ID, hit.Score)
	}
	return nil
}

func runExplain(graphPath, pathSpec string, queries int) error {
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	p, err := metapath.Parse(g.Schema(), pathSpec)
	if err != nil {
		return err
	}
	out, _, err := core.NewEngine(g).Explain(p, queries)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func runWhy(graphPath, pathSpec, source, target string, k int, raw bool) error {
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	p, err := metapath.Parse(g.Schema(), pathSpec)
	if err != nil {
		return err
	}
	opts := []core.Option{}
	if raw {
		opts = append(opts, core.WithNormalization(false))
	}
	e := core.NewEngine(g, opts...)
	src, err := g.NodeIndex(p.Source(), source)
	if err != nil {
		return err
	}
	dst, err := g.NodeIndex(p.Target(), target)
	if err != nil {
		return err
	}
	score, contribs, err := e.PairContributions(context.Background(), p, src, dst, k)
	if err != nil {
		return err
	}
	fmt.Printf("hetesim(%s, %s | %s) = %.6f; top meeting objects:\n", source, target, p, score)
	for _, c := range contribs {
		fmt.Printf("  %-24s %.6f (%.1f%%)\n", c.Label, c.Value, 100*c.Fraction)
	}
	return nil
}

// reportPlan tells the operator what the optimizer chose, on stderr so the
// score on stdout stays machine-readable.
func reportPlan(d core.PlanDecision, err error) {
	if err != nil || d.Kind == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "plan: %s (est %.3g flops, %s)\n", d.Kind, d.Est.Flops, d.Reason)
}

// runApply applies a mutation batch to the graph offline and writes the
// result — the bulk-edit path for operators who stage graph changes in
// files rather than through the daemon's mutation endpoint.
func runApply(graphPath, applyFile, outFile string) error {
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	in := os.Stdin
	if applyFile != "-" {
		if in, err = os.Open(applyFile); err != nil {
			return err
		}
		defer in.Close()
	}
	var batch struct {
		Ops []hin.Op `json:"ops"`
	}
	dec := json.NewDecoder(in)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		return fmt.Errorf("decoding mutation batch: %w", err)
	}
	ng, dirty, err := g.Apply(batch.Ops)
	if err != nil {
		return err
	}
	out := os.Stdout
	if outFile != "-" {
		if out, err = os.Create(outFile); err != nil {
			return err
		}
		defer out.Close()
	}
	if err := hin.Write(out, ng); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "applied %d ops: %s -> %s (fingerprint %016x)\n",
		len(batch.Ops), g.Stats(), ng.Stats(), ng.Fingerprint())
	for rel := range dirty.EdgesChanged {
		fmt.Fprintf(os.Stderr, "  %s: %d source rows, %d target rows perturbed\n",
			rel, len(dirty.Rows[rel]), len(dirty.Cols[rel]))
	}
	return nil
}

func loadGraph(graphPath string) (*hin.Graph, error) {
	f, err := os.Open(graphPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hin.Read(f)
}

func run(graphPath, pathSpec, source, target, measure, planName string, k int, raw bool, montecarlo int) error {
	g, err := loadGraph(graphPath)
	if err != nil {
		return err
	}
	p, err := metapath.Parse(g.Schema(), pathSpec)
	if err != nil {
		return err
	}
	force, err := core.ParsePlanKind(planName)
	if err != nil {
		return err
	}
	if force != core.PlanAuto && measure != "hetesim" {
		return fmt.Errorf("-plan applies only to the hetesim measure")
	}
	if montecarlo > 0 && force == core.PlanAuto {
		if target == "" || measure != "hetesim" {
			return fmt.Errorf("-montecarlo needs -target and the hetesim measure")
		}
		opts := []core.Option{}
		if raw {
			opts = append(opts, core.WithNormalization(false))
		}
		e := core.NewEngine(g, opts...)
		src, err := g.NodeIndex(p.Source(), source)
		if err != nil {
			return err
		}
		dst, err := g.NodeIndex(p.Target(), target)
		if err != nil {
			return err
		}
		res, err := e.PairMonteCarlo(context.Background(), p, src, dst, montecarlo, 1)
		if err != nil {
			return err
		}
		fmt.Printf("hetesim~mc(%s, %s | %s) = %.6f (%d walks per endpoint)\n",
			source, target, p, res.Score, res.Walks)
		return nil
	}

	var single func(string) ([]float64, error)
	var pair func(string, string) (float64, error)
	switch measure {
	case "hetesim":
		opts := []core.Option{}
		if raw {
			opts = append(opts, core.WithNormalization(false))
		}
		e := core.NewEngine(g, opts...)
		po := core.PlanOptions{Force: force, Walks: montecarlo}
		single = func(s string) ([]float64, error) {
			src, err := g.NodeIndex(p.Source(), s)
			if err != nil {
				return nil, err
			}
			scores, d, err := e.SingleSourceWithPlan(context.Background(), p, src, po)
			reportPlan(d, err)
			return scores, err
		}
		pair = func(s, t string) (float64, error) {
			src, err := g.NodeIndex(p.Source(), s)
			if err != nil {
				return 0, err
			}
			dst, err := g.NodeIndex(p.Target(), t)
			if err != nil {
				return 0, err
			}
			v, d, err := e.PairWithPlan(context.Background(), p, src, dst, po)
			reportPlan(d, err)
			return v, err
		}
	case "pcrw":
		m := baseline.NewPCRW(g)
		single = func(s string) ([]float64, error) { return m.SingleSource(context.Background(), p, s) }
		pair = func(s, t string) (float64, error) { return m.Pair(context.Background(), p, s, t) }
	case "pathsim":
		m := baseline.NewPathSim(g)
		single = func(s string) ([]float64, error) { return m.SingleSource(context.Background(), p, s) }
		pair = func(s, t string) (float64, error) { return m.Pair(context.Background(), p, s, t) }
	default:
		return fmt.Errorf("unknown measure %q", measure)
	}

	if target != "" {
		v, err := pair(source, target)
		if err != nil {
			return err
		}
		fmt.Printf("%s(%s, %s | %s) = %.6f\n", measure, source, target, p, v)
		return nil
	}
	scores, err := single(source)
	if err != nil {
		return err
	}
	items, err := rank.List(scores, g.NodeIDs(p.Target()), k)
	if err != nil {
		return err
	}
	fmt.Printf("top %d %s objects related to %s along %s (%s):\n", len(items), p.Target(), source, p, measure)
	fmt.Print(rank.Format(items))
	return nil
}
