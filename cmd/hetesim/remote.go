package main

// Remote mode: -server points the CLI at a running hetesimd (or a
// hetesim-router fronting a fleet) instead of loading -graph locally. The
// same query flags drive the HTTP surface: -path/-source/-target becomes
// GET /v1/pair or /v1/topk, -batch posts to /v1/batch, -relevance posts to
// /v1/relevance. Shed responses (429/503, and the other retryable statuses)
// are retried with exponential backoff, honoring the server's Retry-After,
// so a briefly overloaded or restarting server degrades a query into a
// short wait instead of a hard failure. -retries and -retry-max-wait bound
// the persistence.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/router"
)

type remoteClient struct {
	base   string
	policy router.RetryPolicy
	client *http.Client
}

func newRemoteClient(base string, retries int, maxWait time.Duration) *remoteClient {
	return &remoteClient{
		base:   strings.TrimRight(base, "/"),
		policy: router.RetryPolicy{Retries: retries, Base: 100 * time.Millisecond, MaxWait: maxWait},
		client: &http.Client{Timeout: 2 * time.Minute},
	}
}

// call sends one request (rebuilt per attempt so bodies replay), retrying
// retryable statuses, and decodes the final response. Non-2xx final
// statuses become errors carrying the server's error body.
func (rc *remoteClient) call(method, path string, query url.Values, body []byte) (json.RawMessage, error) {
	u := rc.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	resp, err := rc.policy.Do(context.Background(), rc.client, func() (*http.Request, error) {
		var rd io.Reader
		if body != nil {
			rd = strings.NewReader(string(body))
		}
		req, err := http.NewRequest(method, u, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		return req, nil
	})
	if err != nil {
		return nil, fmt.Errorf("%s %s: %w", method, u, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("%s %s: reading response: %w", method, u, err)
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(raw))
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		if router.RetryableStatus(resp.StatusCode) {
			return nil, fmt.Errorf("%s %s: server still shedding after retries (%d): %s", method, u, resp.StatusCode, msg)
		}
		return nil, fmt.Errorf("%s %s: %d: %s", method, u, resp.StatusCode, msg)
	}
	return raw, nil
}

// printJSON re-indents the server's response for the terminal.
func printJSON(raw json.RawMessage) error {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		_, werr := os.Stdout.Write(raw)
		return werr
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// runRemote dispatches the CLI's query flags against the server.
// -enumerate/-explain stay local-graph operations; -apply posts the batch
// to the fleet's mutation endpoint (through a router it lands on the
// elected primary and replicates from there).
func runRemote(rc *remoteClient, pathSpec, source, target, measure string, k int, raw bool,
	batchFile, applyFile string, relevanceQ bool, sourceType, targetType, weighting string, maxLen, maxPaths int, why int) error {
	switch {
	case applyFile != "":
		return runRemoteApply(rc, applyFile)

	case batchFile != "":
		body, err := readFileOrStdin(batchFile)
		if err != nil {
			return err
		}
		out, err := rc.call(http.MethodPost, "/v1/batch", nil, body)
		if err != nil {
			return err
		}
		return printJSON(out)

	case relevanceQ:
		if source == "" || sourceType == "" || targetType == "" {
			return fmt.Errorf("-relevance needs -source, -source-type and -target-type")
		}
		req := map[string]any{
			"source": source, "source_type": sourceType,
			"target_type": targetType, "weighting": weighting, "raw": raw,
		}
		if target != "" {
			req["target"] = target
		} else {
			req["k"] = k
		}
		if maxLen > 0 {
			req["max_len"] = maxLen
		}
		if maxPaths > 0 {
			req["max_paths"] = maxPaths
		}
		body, _ := json.Marshal(req)
		out, err := rc.call(http.MethodPost, "/v1/relevance", nil, body)
		if err != nil {
			return err
		}
		return printJSON(out)

	case pathSpec != "" && source != "" && target != "" && why > 0:
		q := url.Values{"path": {pathSpec}, "source": {source}, "target": {target}, "k": {strconv.Itoa(why)}}
		if raw {
			q.Set("raw", "true")
		}
		out, err := rc.call(http.MethodGet, "/v1/why", q, nil)
		if err != nil {
			return err
		}
		return printJSON(out)

	case pathSpec != "" && source != "":
		q := url.Values{"path": {pathSpec}, "source": {source}}
		if measure != "" && measure != "hetesim" {
			q.Set("measure", measure)
		}
		if raw {
			q.Set("raw", "true")
		}
		endpoint := "/v1/topk"
		if target != "" {
			endpoint = "/v1/pair"
			q.Set("target", target)
		} else {
			q.Set("k", strconv.Itoa(k))
		}
		out, err := rc.call(http.MethodGet, endpoint, q, nil)
		if err != nil {
			return err
		}
		return printJSON(out)

	default:
		return fmt.Errorf("-server supports -path queries, -batch, -relevance, and -apply (local-only modes: -enumerate, -explain)")
	}
}

// runRemoteApply posts a mutation batch file to POST /v1/admin/edges. The
// file is the local -apply format plus an optional "key" — an idempotency
// key the server dedups on, so re-running the command after a dropped
// connection cannot double-apply the batch. The file is validated locally
// before anything is sent: a typo'd field fails here, not after a network
// round trip.
func runRemoteApply(rc *remoteClient, applyFile string) error {
	raw, err := readFileOrStdin(applyFile)
	if err != nil {
		return err
	}
	var batch struct {
		Key string   `json:"key,omitempty"`
		Ops []hin.Op `json:"ops"`
	}
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&batch); err != nil {
		return fmt.Errorf("decoding mutation batch %s: %w", applyFile, err)
	}
	if len(batch.Ops) == 0 {
		return fmt.Errorf("mutation batch %s has no ops", applyFile)
	}
	body, err := json.Marshal(batch)
	if err != nil {
		return err
	}
	out, err := rc.call(http.MethodPost, "/v1/admin/edges", nil, body)
	if err != nil {
		return err
	}
	return printJSON(out)
}

func readFileOrStdin(name string) ([]byte, error) {
	if name == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(name)
}
