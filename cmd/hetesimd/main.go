// Command hetesimd serves relevance search over a heterogeneous network as
// an HTTP JSON API (see internal/server for the endpoints).
//
// Usage:
//
//	hetesimd -graph g.json [-addr :8080] [-precompute APVC,CVPA]
//	         [-query-timeout 10s] [-max-inflight 256] [-shutdown-grace 15s]
//	         [-max-body-bytes 1048576] [-degrade-walks 20000] [-cache-limit 0]
//	         [-batch-max-queries 1024] [-batch-workers 0]
//	         [-slowlog-threshold 1s] [-slowlog-size 128] [-debug-addr ""]
//	         [-snapshot-path chains.snap] [-snapshot-save-interval 5m]
//	         [-warm-from http://peer:8080]
//	         [-wal-path edges.wal] [-wal-compact-bytes 16777216]
//	         [-follow http://primary:8080] [-follow-interval 1s]
//	         [-advertise http://me:8080]
//	         [-relevance-max-len 4] [-relevance-max-paths 16]
//	         [-path-weights weights.json]
//
// -precompute materializes the listed relevance paths in the background at
// startup (the offline materialization of Section 4.6 of the paper);
// /readyz answers 503 until materialization finishes, while /healthz is
// pure liveness. Queries are bounded by -query-timeout, load beyond
// -max-inflight concurrent queries is shed with 429, and a timed-out
// exact hetesim query degrades to -degrade-walks Monte Carlo walks
// (response marked "approximate": true; 0 disables the fallback).
// SIGINT/SIGTERM drain in-flight requests for up to -shutdown-grace.
//
// POST /v1/batch accepts up to -batch-max-queries queries per request and
// executes them on -batch-workers goroutines via the path-group scheduler;
// the -query-timeout budget applies to each query in the batch
// individually, not to the batch as a whole.
//
// POST /v1/relevance answers path-free relevance: it enumerates every
// schema-valid meta path between the endpoint types (at most
// -relevance-max-len steps, at most -relevance-max-paths candidates),
// scores all of them through the batch scheduler, and combines them into a
// weighted ensemble. -path-weights loads learned per-path weights (the
// LoadWeightsFile JSON format) and enables "weighting": "learned"; a
// malformed weights file fails startup.
//
// Durability: -snapshot-path names a checksummed snapshot of the engine's
// materialized chain matrices. At boot the daemon warm-starts from it when
// it matches the graph (a corrupt or mismatched snapshot is rejected and
// logged, never served); it is rewritten crash-safely after startup
// materialization, every -snapshot-save-interval, and on shutdown.
// SIGHUP (or POST /v1/admin/reload) re-reads -graph and swaps the new
// graph in atomically — in-flight queries finish on the old graph, not
// one request fails, and a bad replacement leaves the old graph serving.
//
// Mutations: -wal-path enables POST /v1/admin/edges, which applies batches
// of edge/node deltas without a restart. Every batch is fsynced to the
// write-ahead log before it is acked, so acked mutations survive a crash:
// at boot the log is replayed over -graph (readyz reports "replaying")
// through the same incremental cache maintenance the live path uses. When
// the log outgrows -wal-compact-bytes it is folded into a crash-safely
// rewritten -graph file. During shutdown drain, mutations and reloads
// answer 409.
//
// Replication: -follow turns the daemon into a read replica of another
// hetesimd (or of the primary a hetesim-router elects). It polls the
// primary's WAL tail (GET /v1/admin/wal) every -follow-interval, logs and
// applies each delta exactly as a local write would, and reports its
// position, lag, and the primary it follows in /readyz; direct mutations
// answer 503 with the primary's address. When the primary's compaction
// outruns the follower — or the follower's fingerprint diverges from the
// primary's at the same sequence — it resyncs from the primary's full
// graph (GET /v1/admin/graph) and re-follows. With -follow pointed at a
// router, -advertise identifies this daemon in the router's election:
// when elected it stands down as follower and accepts writes.
//
// Observability: Prometheus metrics are served at GET /metrics on the
// main listener, queries slower than -slowlog-threshold are retained
// (newest -slowlog-size) with per-stage traces at GET /v1/slowlog, and
// -debug-addr (opt-in, keep it private) serves net/http/pprof profiles
// on a separate listener.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/relevance"
	"hetesim/internal/router"
	"hetesim/internal/server"
	"hetesim/internal/snapshot"
)

func main() {
	var (
		graphPath     = flag.String("graph", "", "graph JSON file (required)")
		addr          = flag.String("addr", ":8080", "listen address")
		precompute    = flag.String("precompute", "", "comma-separated relevance paths to materialize at startup")
		queryTimeout  = flag.Duration("query-timeout", 10*time.Second, "per-request deadline for /v1 queries (0 disables)")
		maxInflight   = flag.Int("max-inflight", 256, "concurrent /v1 queries before shedding with 429 (0 disables)")
		shutdownGrace = flag.Duration("shutdown-grace", 15*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
		maxBodyBytes  = flag.Int64("max-body-bytes", 1<<20, "request body size cap in bytes (0 disables)")
		degradeWalks  = flag.Int("degrade-walks", 20000, "Monte Carlo walks answering a timed-out exact query (0 disables)")
		forcePlan     = flag.String("force-plan", "", "default physical plan for hetesim queries without an explicit ?plan= (auto | pair-vectors | single-vs-matrix | all-pairs | monte-carlo | topk-approx)")
		topKBudget    = flag.Float64("topk-error-budget", 0, "default error budget in (0,1) for the topk-approx plan when a /v1/topk request has no ?error_budget= (0 = engine default)")
		cacheLimit    = flag.Int("cache-limit", 0, "max materialized chain matrices kept per engine (0 = unbounded)")
		batchMax      = flag.Int("batch-max-queries", 1024, "max queries accepted per POST /v1/batch request (0 = unlimited)")
		batchWorkers  = flag.Int("batch-workers", 0, "concurrent batch-scheduler workers (0 = runtime default)")
		slowThreshold = flag.Duration("slowlog-threshold", time.Second, "retain /v1 queries slower than this in the slow-query log (0 disables)")
		slowSize      = flag.Int("slowlog-size", 128, "slow-query log ring capacity")
		debugAddr     = flag.String("debug-addr", "", "listen address for net/http/pprof (empty disables; do not expose publicly)")
		snapshotPath  = flag.String("snapshot-path", "", "chain-cache snapshot file for warm starts (empty disables)")
		warmFrom      = flag.String("warm-from", "", "base URL of a peer hetesimd to fetch a chain-cache snapshot from at boot (empty disables)")
		snapshotEvery = flag.Duration("snapshot-save-interval", 5*time.Minute, "how often to persist the chain cache (0 disables the periodic save)")
		walPath       = flag.String("wal-path", "", "edge-delta write-ahead log enabling POST /v1/admin/edges (empty disables mutations)")
		walCompact    = flag.Int64("wal-compact-bytes", 16<<20, "fold the WAL into a rewritten -graph file when it outgrows this many bytes (0 never compacts on size)")
		follow        = flag.String("follow", "", "base URL of the write primary (or of a hetesim-router that elects one) to replicate WAL deltas from; makes this daemon a read replica that 503s direct mutations")
		followEvery   = flag.Duration("follow-interval", time.Second, "how often a follower polls the primary's WAL tail")
		advertise     = flag.String("advertise", "", "this daemon's own base URL as the fleet sees it; with -follow pointed at a router, matching the router's elected primary promotes this daemon to accept writes")
		relMaxPaths   = flag.Int("relevance-max-paths", 16, "candidate-path cap for POST /v1/relevance ensembles")
		relMaxLen     = flag.Int("relevance-max-len", 4, "longest meta path enumerated by POST /v1/relevance")
		pathWeights   = flag.String("path-weights", "", "JSON file of learned path weights ({\"weights\": {\"APA\": 0.6, ...}}) enabling the learned weighting mode of POST /v1/relevance")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal("hetesimd: ", err)
	}
	g, err := hin.Read(f)
	f.Close()
	if err != nil {
		log.Fatal("hetesimd: ", err)
	}
	log.Printf("hetesimd: loaded %s", g.Stats())

	defaultPlan, err := core.ParsePlanKind(*forcePlan)
	if err != nil {
		log.Fatal("hetesimd: -force-plan: ", err)
	}
	if b := *topKBudget; b < 0 || b >= 1 {
		log.Fatalf("hetesimd: -topk-error-budget %v outside [0,1)", b)
	}

	// Learned ensemble weights are a boot-time artifact (typically written
	// from a learn.PathWeights fit): a malformed file is a deployment bug,
	// so fail loudly instead of serving with learned mode silently off.
	var learned map[string]float64
	if *pathWeights != "" {
		learned, err = relevance.LoadWeightsFile(*pathWeights)
		if err != nil {
			log.Fatal("hetesimd: -path-weights: ", err)
		}
		log.Printf("hetesimd: learned weights for %d paths from %s", len(learned), *pathWeights)
	}

	srv := server.New(g,
		server.WithDefaultPlan(defaultPlan),
		server.WithTopKErrorBudget(*topKBudget),
		server.WithQueryTimeout(*queryTimeout),
		server.WithMaxInflight(*maxInflight),
		server.WithMaxBodyBytes(*maxBodyBytes),
		server.WithDegradedTopK(*degradeWalks),
		server.WithEngineOptions(core.WithCacheLimit(*cacheLimit)),
		server.WithBatchLimits(*batchMax, *batchWorkers),
		server.WithSlowLog(*slowThreshold, *slowSize),
		server.WithSnapshotPath(*snapshotPath),
		server.WithReloadFrom(*graphPath),
		server.WithWALPath(*walPath),
		server.WithWALCompactBytes(*walCompact),
		server.WithRelevanceLimits(*relMaxLen, *relMaxPaths),
		server.WithPathWeights(learned),
	)

	// Warm-start from the snapshot before materialization kicks off: paths
	// already in the snapshot then cost nothing to "materialize" again. A
	// bad snapshot is logged and skipped — recompute is always correct.
	if *snapshotPath != "" {
		if warm, err := srv.WarmStart(); err != nil {
			log.Printf("hetesimd: snapshot rejected, starting cold: %v", err)
		} else if warm {
			log.Printf("hetesimd: warm start from %s", *snapshotPath)
		}
	}

	// Snapshot shipping: a fresh replica joins warm by pulling a peer's
	// chain cache over HTTP (resumable, CRC-validated end to end) instead of
	// rematerializing. Any failure here is tolerated — the local snapshot
	// (if any) already warmed what it could, and cold is always correct.
	if *warmFrom != "" {
		fctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		snap, err := router.FetchSnapshot(fctx, nil, *warmFrom, 5)
		cancel()
		if err != nil {
			log.Printf("hetesimd: -warm-from %s failed, continuing cold: %v", *warmFrom, err)
		} else if n, err := srv.ImportSnapshot(snap); err != nil {
			log.Printf("hetesimd: -warm-from snapshot rejected: %v", err)
		} else {
			log.Printf("hetesimd: warmed %d chains from %s", n, *warmFrom)
		}
	}

	// Open the write-ahead log after the snapshot warm start: replay runs
	// through the incremental maintenance path, so snapshot-warmed chains
	// are carried forward row-by-row instead of recomputed. /readyz reports
	// "replaying" for the duration.
	if *walPath != "" {
		st, err := srv.OpenWAL()
		if err != nil {
			log.Fatal("hetesimd: opening wal: ", err)
		}
		if st.Replayed > 0 || st.TruncatedBytes > 0 || st.SetAside != "" {
			log.Printf("hetesimd: wal replay: %d batches re-applied, %d torn bytes discarded, set aside %q",
				st.Replayed, st.TruncatedBytes, st.SetAside)
		}
	}

	var specs []string
	for _, spec := range strings.Split(*precompute, ",") {
		if spec = strings.TrimSpace(spec); spec != "" {
			specs = append(specs, spec)
		}
	}
	// Materialization runs in the background; /readyz flips to 200 once it
	// finishes (immediately with no paths). A malformed path still fails
	// startup here.
	if err := srv.PrecomputeBackground(specs, log.Printf); err != nil {
		log.Fatal("hetesimd: ", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// pprof lives on its own opt-in listener, never the public mux: the
	// profiles expose internals (and profiling CPU costs) no query client
	// should reach.
	if *debugAddr != "" {
		debugMux := http.NewServeMux()
		debugMux.HandleFunc("/debug/pprof/", pprof.Index)
		debugMux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		debugMux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugMux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		debugMux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv := &http.Server{Addr: *debugAddr, Handler: debugMux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			log.Printf("hetesimd: pprof on %s/debug/pprof/", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("hetesimd: debug listener: %v", err)
			}
		}()
		defer debugSrv.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// SIGHUP hot-reloads the graph file: the replacement is validated off
	// to the side and swapped in atomically, so a bad file (or a crash
	// mid-rewrite of it) leaves the old graph serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Printf("hetesimd: SIGHUP: reloading %s", *graphPath)
			res, err := srv.Reload(context.Background())
			if err != nil {
				log.Printf("hetesimd: reload failed, old graph keeps serving: %v", err)
				continue
			}
			log.Printf("hetesimd: reloaded %d nodes, %d edges (fingerprint %s, %d warm chains) in %s",
				res.Nodes, res.Edges, res.Fingerprint, res.WarmChains, res.Duration.Round(time.Millisecond))
		}
	}()

	// Periodic snapshot saves bound the materialization work lost to a
	// crash to one interval.
	if *snapshotPath != "" && *snapshotEvery > 0 {
		go srv.RunSnapshotSaver(ctx, *snapshotEvery, log.Printf)
	}

	// Follower mode: replicate the primary's WAL tail into this process,
	// applying each batch through the same incremental maintenance path as
	// a local write. After a full resync (compaction outran us, or we
	// diverged) the chain cache re-warms from the primary's snapshot
	// endpoint instead of recomputing.
	if *follow != "" {
		if *walPath == "" {
			log.Fatal("hetesimd: -follow requires -wal-path (replicated deltas must be durable before they are acked upstream)")
		}
		go srv.RunFollower(ctx, server.FollowerOptions{
			Target:   strings.TrimRight(*follow, "/"),
			Self:     strings.TrimRight(*advertise, "/"),
			Interval: *followEvery,
			FetchSnapshot: func(fctx context.Context, base string) (*snapshot.Snapshot, error) {
				return router.FetchSnapshot(fctx, nil, base, 3)
			},
			Logf: log.Printf,
		})
		log.Printf("hetesimd: following %s (interval %s)", *follow, *followEvery)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("hetesimd: listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatal("hetesimd: ", err)
	case <-ctx.Done():
		stop()
		log.Printf("hetesimd: shutting down, draining for up to %s", *shutdownGrace)
		// Refuse mutations and reloads before the HTTP drain starts: no
		// graph swap may race the shutdown, and a client whose mutation is
		// 409ed here knows to retry against the replacement process.
		srv.BeginDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		drainErr := httpSrv.Shutdown(drainCtx)
		if err := srv.CloseWAL(); err != nil {
			log.Printf("hetesimd: closing wal: %v", err)
		}
		if *snapshotPath != "" {
			if err := srv.SaveSnapshot(); err != nil {
				log.Printf("hetesimd: final snapshot save: %v", err)
			} else {
				log.Printf("hetesimd: chain cache saved to %s", *snapshotPath)
			}
		}
		if drainErr != nil {
			log.Printf("hetesimd: drain incomplete: %v", drainErr)
			httpSrv.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("hetesimd: %v", err)
		}
		log.Print("hetesimd: bye")
	}
}
