// Command hetesimd serves relevance search over a heterogeneous network as
// an HTTP JSON API (see internal/server for the endpoints).
//
// Usage:
//
//	hetesimd -graph g.json [-addr :8080] [-precompute APVC,CVPA]
//
// -precompute materializes the listed relevance paths at startup so their
// queries are served from cached reaching distributions (the offline
// materialization of Section 4.6 of the paper).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"hetesim/internal/hin"
	"hetesim/internal/server"
)

func main() {
	var (
		graphPath  = flag.String("graph", "", "graph JSON file (required)")
		addr       = flag.String("addr", ":8080", "listen address")
		precompute = flag.String("precompute", "", "comma-separated relevance paths to materialize at startup")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal("hetesimd: ", err)
	}
	g, err := hin.Read(f)
	f.Close()
	if err != nil {
		log.Fatal("hetesimd: ", err)
	}
	log.Printf("hetesimd: loaded %s", g.Stats())

	srv := server.New(g)
	if *precompute != "" {
		for _, spec := range strings.Split(*precompute, ",") {
			spec = strings.TrimSpace(spec)
			if err := srv.Precompute(spec); err != nil {
				log.Fatalf("hetesimd: precomputing %s: %v", spec, err)
			}
			log.Printf("hetesimd: materialized %s", spec)
		}
	}
	fmt.Printf("hetesimd: listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.Handler()))
}
