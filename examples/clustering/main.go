// Clustering: the Table 6 application of the paper. Because HeteSim is
// symmetric and semi-metric, its relevance matrix can feed a clustering
// algorithm directly: we build HeteSim similarity over DBLP conferences
// (path CPAPC) and authors (path APCPA), run Normalized Cut, and score the
// recovered research areas with NMI against the planted labels.
package main

import (
	"context"
	"fmt"
	"log"

	"hetesim/internal/cluster"
	"hetesim/internal/core"
	"hetesim/internal/datagen"
	"hetesim/internal/eval"
	"hetesim/internal/metapath"
)

func main() {
	ds, err := datagen.DBLP(datagen.SmallDBLPConfig())
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	engine := core.NewEngine(g)
	k := len(ds.AreaNames)

	// Task 1: cluster the 20 conferences by shared authors (CPAPC).
	confIdx := ds.LabeledIndices("conference")
	cpapc := metapath.MustParse(g.Schema(), "CPAPC")
	sim, err := engine.PairsSubset(context.Background(), cpapc, confIdx, confIdx)
	if err != nil {
		log.Fatal(err)
	}
	assign, err := cluster.NormalizedCut(sim, k, 1)
	if err != nil {
		log.Fatal(err)
	}
	truth := make([]int, len(confIdx))
	for i, c := range confIdx {
		truth[i] = ds.AreaOf("conference", c)
	}
	nmi, err := eval.NMI(truth, assign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conference clustering (CPAPC): NMI = %.4f\n\n", nmi)
	for _, c := range confIdx {
		name, _ := g.NodeID("conference", c)
		fmt.Printf("  %-8s cluster %d   (true area: %s)\n",
			name, assign[c], ds.AreaNames[ds.AreaOf("conference", c)])
	}

	// Task 2: cluster labeled authors by publication venues (APCPA).
	authorIdx := ds.LabeledIndices("author")
	apcpa := metapath.MustParse(g.Schema(), "APCPA")
	asim, err := engine.PairsSubset(context.Background(), apcpa, authorIdx, authorIdx)
	if err != nil {
		log.Fatal(err)
	}
	aassign, err := cluster.NormalizedCut(asim, k, 1)
	if err != nil {
		log.Fatal(err)
	}
	atruth := make([]int, len(authorIdx))
	for i, a := range authorIdx {
		atruth[i] = ds.AreaOf("author", a)
	}
	anmi, err := eval.NMI(atruth, aassign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauthor clustering (APCPA, %d labeled authors): NMI = %.4f\n", len(authorIdx), anmi)
}
