// Expert finding: the relative-importance application of Table 3 in the
// paper. HeteSim's symmetry lets scores of different author–conference
// pairs be compared directly: knowing one area's expert, similar HeteSim
// scores identify experts of other areas. PCRW's direction-dependent
// scores cannot support the same inference — the two directions disagree.
package main

import (
	"context"
	"fmt"
	"log"

	"hetesim/internal/baseline"
	"hetesim/internal/core"
	"hetesim/internal/datagen"
	"hetesim/internal/metapath"
)

func main() {
	ds, err := datagen.ACM(datagen.SmallACMConfig())
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	engine := core.NewEngine(g)
	pcrw := baseline.NewPCRWFromEngine(engine)
	apvc := metapath.MustParse(g.Schema(), "APVC")
	cvpa := apvc.Reverse()

	// The most prolific author of each conference, across research areas.
	writes, _ := g.Adjacency("writes")
	pub, _ := g.Adjacency("published_in")
	part, _ := g.Adjacency("part_of")
	counts := writes.Mul(pub).Mul(part)
	topOf := func(conf string) string {
		c, err := g.NodeIndex("conference", conf)
		if err != nil {
			log.Fatal(err)
		}
		best, bv := 0, -1.0
		for a := 0; a < counts.Rows(); a++ {
			if v := counts.At(a, c); v > bv {
				best, bv = a, v
			}
		}
		id, _ := g.NodeID("author", best)
		return id
	}

	fmt.Println("relative importance of top authors to their home conferences (path APVC):")
	fmt.Printf("\n  %-24s %-9s %-10s %-10s\n", "pair", "HeteSim", "PCRW A→C", "PCRW C→A")
	for _, conf := range []string{"KDD", "SIGMOD", "SIGIR", "SODA", "SIGCOMM"} {
		author := topOf(conf)
		hs, err := engine.Pair(context.Background(), apvc, author, conf)
		if err != nil {
			log.Fatal(err)
		}
		fw, err := pcrw.Pair(context.Background(), apvc, author, conf)
		if err != nil {
			log.Fatal(err)
		}
		bw, err := pcrw.Pair(context.Background(), cvpa, conf, author)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-24s %-9.4f %-10.4f %-10.4f\n", author+" / "+conf, hs, fw, bw)
	}

	fmt.Println(`
Reading the table: the HeteSim column is comparable across rows — similar
scores mean similar standing in the respective community, so known experts
in one area reveal experts in others. The two PCRW columns are on different
scales and tell conflicting stories, which is exactly the asymmetry problem
Section 1 of the paper illustrates with W. B. Croft and J. F. Naughton.`)
}
