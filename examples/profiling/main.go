// Profiling: the automatic object profiling application of Tables 1–2 in
// the paper. Generates a synthetic ACM-style network, finds the most
// prolific KDD author, and extracts their academic profile — plus the
// profile of the KDD conference itself — by running single-source HeteSim
// along paths with different semantics.
package main

import (
	"context"
	"fmt"
	"log"

	"hetesim/internal/core"
	"hetesim/internal/datagen"
	"hetesim/internal/metapath"
	"hetesim/internal/rank"
)

func main() {
	ds, err := datagen.ACM(datagen.SmallACMConfig())
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	engine := core.NewEngine(g)

	// Locate the star author: the most prolific KDD publisher (the role
	// C. Faloutsos plays in the paper's Table 1).
	writes, _ := g.Adjacency("writes")
	pub, _ := g.Adjacency("published_in")
	part, _ := g.Adjacency("part_of")
	counts := writes.Mul(pub).Mul(part)
	kdd, _ := g.NodeIndex("conference", "KDD")
	star, bestCount := 0, -1.0
	for a := 0; a < counts.Rows(); a++ {
		if v := counts.At(a, kdd); v > bestCount {
			star, bestCount = a, v
		}
	}
	starID, _ := g.NodeID("author", star)
	fmt.Printf("star author: %s (%d KDD papers)\n", starID, int(bestCount))

	profile := func(srcID string, specs map[string]string) {
		for spec, what := range specs {
			p := metapath.MustParse(g.Schema(), spec)
			scores, err := engine.SingleSource(context.Background(), p, srcID)
			if err != nil {
				log.Fatal(err)
			}
			items, err := rank.List(scores, g.NodeIDs(p.Target()), 5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\n%s — %s:\n%s", spec, what, rank.Format(items))
		}
	}

	fmt.Println("\n== author profile (Table 1 of the paper)")
	profile(starID, map[string]string{
		"APVC": "conferences the author participates in",
		"APT":  "research-interest terms",
		"APS":  "subject areas",
		"APA":  "closest co-authors (self scores 1)",
	})

	fmt.Println("\n== conference profile of KDD (Table 2 of the paper)")
	profile("KDD", map[string]string{
		"CVPA":    "most active authors",
		"CVPAF":   "most related affiliations",
		"CVPS":    "conference topics",
		"CVPAPVC": "similar conferences via shared authors",
	})
}
