// Quickstart: build a tiny bibliographic network by hand (the Fig. 4
// example of the paper), define relevance paths, and run HeteSim queries —
// pair scores, symmetry, and a top-k search.
package main

import (
	"context"
	"fmt"
	"log"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/rank"
)

func main() {
	// 1. Declare the schema: authors write papers, papers are published
	// in conferences.
	schema := hin.NewSchema()
	schema.MustAddType("author", 'A')
	schema.MustAddType("paper", 'P')
	schema.MustAddType("conference", 'C')
	schema.MustAddRelation("writes", "author", "paper")
	schema.MustAddRelation("published_in", "paper", "conference")

	// 2. Build the Fig. 4 network: all of Tom's papers are in KDD.
	b := hin.NewBuilder(schema)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("writes", "Bob", "p4")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	b.AddEdge("published_in", "p4", "SIGMOD")
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 3. A relevance path gives the query its semantics: APC relates
	// authors to the conferences that publish their papers.
	apc := metapath.MustParse(schema, "APC")
	engine := core.NewEngine(g)

	score, err := engine.Pair(context.Background(), apc, "Tom", "KDD")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HeteSim(Tom, KDD | APC)    = %.4f\n", score)

	// Symmetry (Property 3): the reverse path gives the same score.
	back, err := engine.Pair(context.Background(), apc.Reverse(), "KDD", "Tom")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HeteSim(KDD, Tom | CPA)    = %.4f (symmetric)\n", back)

	// The raw meeting probability of Example 2 in the paper is 0.5.
	rawEngine := core.NewEngine(g, core.WithNormalization(false))
	raw, err := rawEngine.Pair(context.Background(), apc, "Tom", "KDD")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unnormalized meeting prob  = %.4f (Example 2 of the paper)\n", raw)

	// 4. Top-k search: which conferences matter most to Mary?
	scores, err := engine.SingleSource(context.Background(), apc, "Mary")
	if err != nil {
		log.Fatal(err)
	}
	items, err := rank.List(scores, g.NodeIDs("conference"), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMary's conference profile (APC):")
	fmt.Print(rank.Format(items))

	// 5. Different-typed and same-typed objects are handled uniformly:
	// APA relates authors through shared papers.
	apa := metapath.MustParse(schema, "APA")
	coauth, err := engine.Pair(context.Background(), apa, "Tom", "Mary")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nHeteSim(Tom, Mary | APA)   = %.4f\n", coauth)
}
