// Recommend: the recommendation application that motivates the paper's
// introduction ("in a recommendation system, we need to know the relatedness
// between users and movies"). Builds a synthetic user–movie heterogeneous
// network, scores unseen movies for a user along paths with different
// semantics (shared genres vs shared actors), learns per-path weights from
// the user's own ratings (the Section 5.1 supervised path-selection idea),
// and prints top recommendations via the pruned top-k search of
// Section 4.6.
package main

import (
	"context"
	"fmt"
	"log"

	"hetesim/internal/core"
	"hetesim/internal/datagen"
	"hetesim/internal/learn"
	"hetesim/internal/metapath"
)

func main() {
	ds, err := datagen.Movies(datagen.SmallMoviesConfig())
	if err != nil {
		log.Fatal(err)
	}
	g := ds.Graph
	engine := core.NewEngine(g)

	// Candidate relevance paths from users to movies, each with its own
	// semantics: movies sharing genres with the user's rated movies, and
	// movies sharing actors with them.
	byGenre := metapath.MustParse(g.Schema(), "UMGM")
	byActor := metapath.MustParse(g.Schema(), "UMAM")
	paths := []*metapath.Path{byGenre, byActor}

	// Pick a user and hide none of their ratings for simplicity; train
	// path weights on (user, movie) pairs labeled by whether the user
	// rated the movie.
	user := 0
	uid, err := g.NodeID("user", user)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := g.Adjacency("rates")
	if err != nil {
		log.Fatal(err)
	}
	rated := map[int]bool{}
	rates.Row(user).Entries(func(m int, _ float64) { rated[m] = true })

	var examples []learn.Example
	for m := 0; m < g.NodeCount("movie"); m += 3 {
		label := 0.0
		if rated[m] {
			label = 1
		}
		examples = append(examples, learn.Example{Src: user, Dst: m, Label: label})
	}
	weights, err := learn.PathWeights(context.Background(), engine, paths, examples, learn.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("learned path weights for %s: UMGM=%.3f UMAM=%.3f\n\n", uid, weights[0], weights[1])

	combined, err := learn.NewCombined(engine, paths, weights)
	if err != nil {
		log.Fatal(err)
	}
	scores, err := combined.SingleSourceByIndex(context.Background(), user)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top recommendations for %s (favorite genre: %s):\n",
		uid, ds.AreaNames[ds.AreaOf("user", user)])
	printed := 0
	// Rank unseen movies by combined score.
	for printed < 8 {
		best, bv := -1, -1.0
		for m, v := range scores {
			if !rated[m] && v > bv {
				best, bv = m, v
			}
		}
		if best < 0 || bv <= 0 {
			break
		}
		scores[best] = -1
		mid, _ := g.NodeID("movie", best)
		fmt.Printf("  %-12s %.4f  (genre: %s)\n", mid, bv, ds.AreaNames[ds.AreaOf("movie", best)])
		printed++
	}

	// The same query through the pruned top-k search (Section 4.6): the
	// genre path alone, candidates restricted to overlapping supports.
	top, err := engine.TopKSearch(context.Background(), byGenre, user, 5, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npruned top-k along UMGM (includes already-rated movies):")
	for _, s := range top {
		mid, _ := g.NodeID("movie", s.Index)
		fmt.Printf("  %-12s %.4f\n", mid, s.Score)
	}
}
