module hetesim

go 1.22
