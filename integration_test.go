package hetesim

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"hetesim/internal/baseline"
	"hetesim/internal/core"
	"hetesim/internal/datagen"
	"hetesim/internal/hin"
	"hetesim/internal/learn"
	"hetesim/internal/metapath"
	"hetesim/internal/server"
)

// TestEndToEndPipeline exercises the full production flow across packages:
// generate a dataset, serialize and reload the graph, materialize a path
// and snapshot it, reload the snapshot in a fresh engine, and serve queries
// over HTTP — verifying scores stay identical at every boundary.
func TestEndToEndPipeline(t *testing.T) {
	ds, err := datagen.ACM(datagen.ACMConfig{
		Papers: 300, Authors: 250, Affiliations: 30,
		Terms: 80, Subjects: 15, Years: 3, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph

	// Graph round trip through the JSON format.
	var gbuf bytes.Buffer
	if err := hin.Write(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := hin.Read(&gbuf)
	if err != nil {
		t.Fatal(err)
	}

	p := metapath.MustParse(g.Schema(), "APVC")
	e1 := core.NewEngine(g)
	e2 := core.NewEngine(g2)
	ref, err := e1.SingleSourceByIndex(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2 := metapath.MustParse(g2.Schema(), "APVC")
	got, err := e2.SingleSourceByIndex(context.Background(), p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref {
		if math.Abs(ref[j]-got[j]) > 1e-12 {
			t.Fatalf("scores differ after graph round trip at %d", j)
		}
	}

	// Materialized-path snapshot round trip into a third engine.
	var mbuf bytes.Buffer
	if err := e1.SaveMaterialized(context.Background(), &mbuf, p); err != nil {
		t.Fatal(err)
	}
	e3 := core.NewEngine(g2)
	if err := e3.LoadMaterialized(&mbuf, p2); err != nil {
		t.Fatal(err)
	}
	got3, err := e3.SingleSourceByIndex(context.Background(), p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref {
		if math.Abs(ref[j]-got3[j]) > 1e-12 {
			t.Fatalf("scores differ after snapshot round trip at %d", j)
		}
	}

	// HTTP server over the reloaded graph.
	ts := httptest.NewServer(server.New(g2).Handler())
	defer ts.Close()
	aid, err := g.NodeID("author", 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/pair?path=APVC&source=" + aid + "&target=KDD")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("server status = %d", resp.StatusCode)
	}
	var pair struct {
		Score float64 `json:"score"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pair); err != nil {
		t.Fatal(err)
	}
	kdd, err := g.NodeIndex("conference", "KDD")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pair.Score-ref[kdd]) > 1e-12 {
		t.Errorf("HTTP score = %v, want %v", pair.Score, ref[kdd])
	}
}

// TestLearnedMixtureBeatsSinglePath trains path weights on planted area
// labels and checks the learned mixture is at least as good as the worst
// candidate path on held-out pairs — the end-to-end use of the learning
// extension over generated data.
func TestLearnedMixtureBeatsSinglePath(t *testing.T) {
	ds, err := datagen.DBLP(datagen.SmallDBLPConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	e := core.NewEngine(g)
	paths := []*metapath.Path{
		metapath.MustParse(g.Schema(), "CPA"),
		metapath.MustParse(g.Schema(), "CPTPA"),
	}
	// Training pairs: conference-author with label 1 when areas match.
	var examples []learn.Example
	authors := ds.LabeledIndices("author")
	for ci := 0; ci < g.NodeCount("conference"); ci++ {
		for k := 0; k < 10; k++ {
			a := authors[(ci*17+k*31)%len(authors)]
			label := 0.0
			if ds.AreaOf("conference", ci) == ds.AreaOf("author", a) {
				label = 1
			}
			examples = append(examples, learn.Example{Src: ci, Dst: a, Label: label})
		}
	}
	w, err := learn.PathWeights(context.Background(), e, paths, examples, learn.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if w[0] < 0 || w[1] < 0 {
		t.Fatalf("negative weights: %v", w)
	}
	if w[0]+w[1] == 0 {
		t.Fatal("learner zeroed all paths")
	}
	combined, err := learn.NewCombined(e, paths, w)
	if err != nil {
		t.Fatal(err)
	}
	// The combined measure must produce finite, non-negative scores that
	// favor same-area authors on average.
	var same, diff float64
	var nSame, nDiff int
	for ci := 0; ci < g.NodeCount("conference"); ci++ {
		scores, err := combined.SingleSourceByIndex(context.Background(), ci)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range authors {
			if ds.AreaOf("conference", ci) == ds.AreaOf("author", a) {
				same += scores[a]
				nSame++
			} else {
				diff += scores[a]
				nDiff++
			}
		}
	}
	if same/float64(nSame) <= diff/float64(nDiff) {
		t.Errorf("combined measure does not separate areas: same=%v diff=%v",
			same/float64(nSame), diff/float64(nDiff))
	}
}

// TestBaselineMeasuresOnGeneratedData smoke-tests every measure end to end
// on one generated network.
func TestBaselineMeasuresOnGeneratedData(t *testing.T) {
	ds, err := datagen.DBLP(datagen.SmallDBLPConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	e := core.NewEngine(g)
	cpa := metapath.MustParse(g.Schema(), "CPA")
	apcpa := metapath.MustParse(g.Schema(), "APCPA")

	if _, err := e.SingleSource(context.Background(), cpa, "KDD"); err != nil {
		t.Errorf("HeteSim: %v", err)
	}
	if _, err := baseline.NewPCRWFromEngine(e).SingleSource(context.Background(), cpa, "KDD"); err != nil {
		t.Errorf("PCRW: %v", err)
	}
	if _, err := baseline.NewPathSim(g).SingleSourceByIndex(context.Background(), apcpa, 0); err != nil {
		t.Errorf("PathSim: %v", err)
	}
	ppr, err := baseline.NewPPR(g, 0.85, 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ppr.FromIndex("conference", 0, "author"); err != nil {
		t.Errorf("PPR: %v", err)
	}
}
