package baseline

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/sparse"
)

func fig4Graph(t *testing.T) *hin.Graph {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("writes", "Bob", "p4")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	b.AddEdge("published_in", "p4", "SIGMOD")
	return b.MustBuild()
}

func TestPCRWValuesAndAsymmetry(t *testing.T) {
	g := fig4Graph(t)
	m := NewPCRW(g)
	apc := metapath.MustParse(g.Schema(), "APC")
	cpa := apc.Reverse()

	// All of Tom's papers are in KDD: forward PCRW is 1.
	fwd, err := m.Pair(context.Background(), apc, "Tom", "KDD")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fwd-1) > 1e-12 {
		t.Errorf("PCRW(Tom, KDD | APC) = %v, want 1", fwd)
	}
	// Backward: KDD reaches p1 (sole author Tom) and p2 (Tom or Mary):
	// 1/2·1 + 1/2·1/2 = 0.75. The asymmetry Table 3 demonstrates.
	bwd, err := m.Pair(context.Background(), cpa, "KDD", "Tom")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bwd-0.75) > 1e-12 {
		t.Errorf("PCRW(KDD, Tom | CPA) = %v, want 0.75", bwd)
	}
	if fwd == bwd {
		t.Error("PCRW should be asymmetric on this pair")
	}

	// HeteSim on the same pair is symmetric by Property 3.
	e := core.NewEngine(g)
	h1, _ := e.Pair(context.Background(), apc, "Tom", "KDD")
	h2, _ := e.Pair(context.Background(), cpa, "KDD", "Tom")
	if math.Abs(h1-h2) > 1e-12 {
		t.Errorf("HeteSim asymmetric: %v vs %v", h1, h2)
	}
}

func TestPCRWPlansAgree(t *testing.T) {
	g := fig4Graph(t)
	m := NewPCRW(g)
	p := metapath.MustParse(g.Schema(), "APC")
	all, err := m.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NodeCount("author"); i++ {
		ss, err := m.SingleSourceByIndex(context.Background(), p, i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ss {
			pv, err := m.PairByIndex(context.Background(), p, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ss[j]-all.At(i, j)) > 1e-12 || math.Abs(pv-ss[j]) > 1e-12 {
				t.Fatalf("PCRW plans disagree at (%d,%d)", i, j)
			}
		}
	}
	if _, err := m.Pair(context.Background(), p, "Nobody", "KDD"); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("unknown node err = %v", err)
	}
	if _, err := m.PairByIndex(context.Background(), p, 0, 99); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad index err = %v", err)
	}
}

func TestPCRWRowsAreDistributions(t *testing.T) {
	g := fig4Graph(t)
	m := NewPCRW(g)
	p := metapath.MustParse(g.Schema(), "APC")
	all, _ := m.AllPairs(context.Background(), p)
	for i, s := range all.RowSums() {
		if math.Abs(s-1) > 1e-12 {
			t.Errorf("PCRW row %d sums to %v, want 1 (no dead ends here)", i, s)
		}
	}
}

func TestPathSimKnownValues(t *testing.T) {
	g := fig4Graph(t)
	m := NewPathSim(g)
	apa := metapath.MustParse(g.Schema(), "APA")
	// Count matrix: Tom-Tom 2, Tom-Mary 1, Mary-Mary 2, Bob-Bob 1.
	got, err := m.Pair(context.Background(), apa, "Tom", "Mary")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("PathSim(Tom, Mary | APA) = %v, want 0.5", got)
	}
	self, _ := m.Pair(context.Background(), apa, "Tom", "Tom")
	if math.Abs(self-1) > 1e-12 {
		t.Errorf("PathSim self = %v, want 1", self)
	}
	zero, _ := m.Pair(context.Background(), apa, "Tom", "Bob")
	if zero != 0 {
		t.Errorf("PathSim(Tom, Bob) = %v, want 0", zero)
	}
}

func TestPathSimRejectsAsymmetricPaths(t *testing.T) {
	g := fig4Graph(t)
	m := NewPathSim(g)
	apc := metapath.MustParse(g.Schema(), "APC")
	if _, err := m.AllPairs(context.Background(), apc); !errors.Is(err, ErrAsymmetricPath) {
		t.Errorf("AllPairs on APC err = %v, want ErrAsymmetricPath", err)
	}
	if _, err := m.Pair(context.Background(), apc, "Tom", "KDD"); !errors.Is(err, ErrAsymmetricPath) {
		t.Errorf("Pair on APC err = %v", err)
	}
	if _, err := m.PairByIndex(context.Background(), apc, 0, 0); !errors.Is(err, ErrAsymmetricPath) {
		t.Errorf("PairByIndex on APC err = %v", err)
	}
}

func TestPathSimMatrixSymmetricWithUnitDiagonal(t *testing.T) {
	g := fig4Graph(t)
	m := NewPathSim(g)
	apa := metapath.MustParse(g.Schema(), "APA")
	all, err := m.AllPairs(context.Background(), apa)
	if err != nil {
		t.Fatal(err)
	}
	if !all.ApproxEqual(all.Transpose(), 1e-12) {
		t.Error("PathSim matrix not symmetric")
	}
	n := g.NodeCount("author")
	for i := 0; i < n; i++ {
		if math.Abs(all.At(i, i)-1) > 1e-12 {
			t.Errorf("PathSim(%d,%d) = %v, want 1", i, i, all.At(i, i))
		}
	}
	ss, err := m.SingleSource(context.Background(), apa, "Tom")
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		if math.Abs(ss[j]-all.At(0, j)) > 1e-12 {
			t.Fatalf("SingleSource disagrees with AllPairs at %d", j)
		}
	}
}

func TestPathSimSubsetMatchesAllPairs(t *testing.T) {
	g := fig4Graph(t)
	m := NewPathSim(g)
	apa := metapath.MustParse(g.Schema(), "APA")
	all, err := m.AllPairs(context.Background(), apa)
	if err != nil {
		t.Fatal(err)
	}
	idx := []int{2, 0}
	sub, err := m.Subset(context.Background(), apa, idx)
	if err != nil {
		t.Fatal(err)
	}
	for a, i := range idx {
		for b, j := range idx {
			if math.Abs(sub.At(a, b)-all.At(i, j)) > 1e-12 {
				t.Errorf("Subset(%d,%d) = %v, want %v", a, b, sub.At(a, b), all.At(i, j))
			}
		}
	}
	if _, err := m.Subset(context.Background(), apa, []int{99}); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad subset index err = %v", err)
	}
	apc := metapath.MustParse(g.Schema(), "APC")
	if _, err := m.Subset(context.Background(), apc, idx); !errors.Is(err, ErrAsymmetricPath) {
		t.Errorf("asymmetric subset err = %v", err)
	}
}

func randomBipartite(rng *rand.Rand, nA, nB int) *sparse.Matrix {
	var ts []sparse.Triplet
	for i := 0; i < nA; i++ {
		deg := 1 + rng.Intn(3)
		for k := 0; k < deg; k++ {
			ts = append(ts, sparse.Triplet{Row: i, Col: rng.Intn(nB), Val: 1})
		}
	}
	return sparse.New(nA, nB, ts)
}

func bipartiteGraph(w *sparse.Matrix) *hin.Graph {
	s := hin.NewSchema()
	s.MustAddType("A", 'A')
	s.MustAddType("B", 'B')
	s.MustAddRelation("r", "A", "B")
	b := hin.NewBuilder(s)
	nA, nB := w.Dims()
	for i := 0; i < nA; i++ {
		b.AddNode("A", "a"+strconv.Itoa(i))
	}
	for j := 0; j < nB; j++ {
		b.AddNode("B", "b"+strconv.Itoa(j))
	}
	for _, t := range w.Triplets() {
		b.AddWeightedEdge("r", "a"+strconv.Itoa(t.Row), "b"+strconv.Itoa(t.Col), t.Val)
	}
	return b.MustBuild()
}

func TestProperty5SimRankConnection(t *testing.T) {
	// Property 5: on a bipartite graph with C = 1, the k-th iterate of
	// the pairwise random-walk recursion equals the unnormalized
	// HeteSim(a1, a2 | (R R^-1)^k) for every k.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := randomBipartite(rng, 3+rng.Intn(4), 3+rng.Intn(4))
		g := bipartiteGraph(w)
		e := core.NewEngine(g, core.WithNormalization(false))
		nA, _ := w.Dims()
		for k := 1; k <= 3; k++ {
			// Build the path A(BA)^k: "ABA", "ABABA", ...
			spec := "A" + strings.Repeat("BA", k)
			p := metapath.MustParse(g.Schema(), spec)
			hs, err := e.AllPairs(context.Background(), p)
			if err != nil {
				return false
			}
			sr := SimRankBipartiteRecursion(w, k)
			for i := 0; i < nA; i++ {
				for j := 0; j < nA; j++ {
					if math.Abs(hs.At(i, j)-sr[i][j]) > 1e-10 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSimRankBasics(t *testing.T) {
	// Two nodes pointed at by a common node become similar.
	adj := sparse.FromDense([][]float64{
		{0, 1, 1},
		{0, 0, 0},
		{0, 0, 0},
	})
	s := SimRank(adj, 0.8, 10)
	if s[0][0] != 1 || s[1][1] != 1 {
		t.Error("diagonal must be 1")
	}
	if math.Abs(s[1][2]-0.8) > 1e-12 {
		t.Errorf("s(1,2) = %v, want 0.8 (single common in-neighbor)", s[1][2])
	}
	if s[1][2] != s[2][1] {
		t.Error("SimRank must be symmetric")
	}
	if s[0][1] != 0 {
		t.Errorf("s(0,1) = %v, want 0 (node 0 has no in-neighbors)", s[0][1])
	}
}

func TestSimRankPanicsOnNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimRank(sparse.Zeros(2, 3), 0.8, 1)
}

func TestSimRankBipartiteBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := randomBipartite(rng, 5, 6)
	res := SimRankBipartite(w, 0.8, 8)
	for i := range res.A {
		if math.Abs(res.A[i][i]-1) > 1e-12 {
			t.Errorf("A diag %d = %v", i, res.A[i][i])
		}
		for j := range res.A[i] {
			if res.A[i][j] < -1e-12 || res.A[i][j] > 1+1e-12 {
				t.Errorf("A(%d,%d) = %v outside [0,1]", i, j, res.A[i][j])
			}
			if math.Abs(res.A[i][j]-res.A[j][i]) > 1e-12 {
				t.Error("A not symmetric")
			}
		}
	}
	for j := range res.B {
		if math.Abs(res.B[j][j]-1) > 1e-12 {
			t.Errorf("B diag %d = %v", j, res.B[j][j])
		}
	}
}

func TestGlobalGraph(t *testing.T) {
	g := fig4Graph(t)
	adj, nodes, offsets := GlobalGraph(g)
	if len(nodes) != g.TotalNodes() {
		t.Fatalf("global nodes = %d, want %d", len(nodes), g.TotalNodes())
	}
	n, m := adj.Dims()
	if n != len(nodes) || m != len(nodes) {
		t.Fatalf("global adjacency %dx%d", n, m)
	}
	if !adj.ApproxEqual(adj.Transpose(), 0) {
		t.Error("global adjacency must be symmetric (R and R^-1)")
	}
	// Tom's global row must connect to p1 and p2.
	tom, _ := g.NodeIndex("author", "Tom")
	p1, _ := g.NodeIndex("paper", "p1")
	if adj.At(offsets["author"]+tom, offsets["paper"]+p1) != 1 {
		t.Error("missing Tom->p1 in global graph")
	}
}

func TestPPRBasics(t *testing.T) {
	g := fig4Graph(t)
	m, err := NewPPR(g, 0.85, 30)
	if err != nil {
		t.Fatal(err)
	}
	scores, err := m.FromNode("author", "Tom", "conference")
	if err != nil {
		t.Fatal(err)
	}
	kdd, _ := g.NodeIndex("conference", "KDD")
	sigmod, _ := g.NodeIndex("conference", "SIGMOD")
	if !(scores[kdd] > scores[sigmod]) {
		t.Errorf("PPR should rank KDD above SIGMOD for Tom: %v vs %v", scores[kdd], scores[sigmod])
	}
	for _, s := range scores {
		if s < 0 || s > 1 {
			t.Errorf("score %v outside [0,1]", s)
		}
	}
}

func TestPPRValidation(t *testing.T) {
	g := fig4Graph(t)
	if _, err := NewPPR(g, 0, 10); err == nil {
		t.Error("damping 0 accepted")
	}
	if _, err := NewPPR(g, 1, 10); err == nil {
		t.Error("damping 1 accepted")
	}
	if _, err := NewPPR(g, 0.85, 0); err == nil {
		t.Error("iters 0 accepted")
	}
	m, _ := NewPPR(g, 0.85, 5)
	if _, err := m.FromNode("author", "Nobody", "conference"); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("unknown node err = %v", err)
	}
	if _, err := m.FromIndex("author", 0, "movie"); !errors.Is(err, hin.ErrUnknownType) {
		t.Errorf("unknown type err = %v", err)
	}
	if _, err := m.GlobalIndex("movie", 0); !errors.Is(err, hin.ErrUnknownType) {
		t.Errorf("GlobalIndex type err = %v", err)
	}
	if _, err := m.GlobalIndex("author", 99); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("GlobalIndex node err = %v", err)
	}
}

func TestPCRWSharesEngineCaches(t *testing.T) {
	g := fig4Graph(t)
	e := core.NewEngine(g)
	m := NewPCRWFromEngine(e)
	p := metapath.MustParse(g.Schema(), "APC")
	if _, err := m.AllPairs(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if e.CacheSize() == 0 {
		t.Error("PCRW via shared engine should populate its caches")
	}
}
