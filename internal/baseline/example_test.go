package baseline_test

import (
	"context"
	"fmt"

	"hetesim/internal/baseline"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

func fig4() *hin.Graph {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	return b.MustBuild()
}

func ExamplePCRW_Pair() {
	g := fig4()
	m := baseline.NewPCRW(g)
	apc := metapath.MustParse(g.Schema(), "APC")
	// PCRW is direction-dependent: the same pair scores differently
	// along the path and against it.
	fwd, _ := m.Pair(context.Background(), apc, "Tom", "KDD")
	bwd, _ := m.Pair(context.Background(), apc.Reverse(), "KDD", "Tom")
	fmt.Printf("%.2f %.2f\n", fwd, bwd)
	// Output: 1.00 0.75
}

func ExamplePathSim_Pair() {
	g := fig4()
	m := baseline.NewPathSim(g)
	apa := metapath.MustParse(g.Schema(), "APA")
	v, _ := m.Pair(context.Background(), apa, "Tom", "Mary")
	fmt.Printf("%.2f\n", v)
	// Output: 0.67
}
