package baseline

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/sparse"
)

// ErrAsymmetricPath is returned when PathSim is asked to score a path it is
// not defined on.
var ErrAsymmetricPath = errors.New("baseline: PathSim requires a symmetric relevance path")

// PathSim is the meta path-based similarity of Sun et al. (VLDB 2011):
//
//	PathSim(a, b | P) = 2·M(a,b) / (M(a,a) + M(b,b))
//
// where M is the path-count matrix of the symmetric path P. It is defined
// only for same-typed objects connected by symmetric paths — the limitation
// (Section 2 of the HeteSim paper) that motivates HeteSim's uniform
// treatment of arbitrary paths.
type PathSim struct {
	g *hin.Graph

	mu    sync.Mutex
	cache map[string]*sparse.Matrix // count matrices per cache key
	diag  map[string][]float64      // count-matrix diagonals per path
}

// NewPathSim creates a PathSim measure over g.
func NewPathSim(g *hin.Graph) *PathSim {
	return &PathSim{
		g:     g,
		cache: make(map[string]*sparse.Matrix),
		diag:  make(map[string][]float64),
	}
}

// countMatrix returns the path-count matrix M_P: the product of the raw
// (unnormalized) adjacency matrices along the path, whose (i,j) entry counts
// path instances between i and j.
func (m *PathSim) countMatrix(ctx context.Context, p *metapath.Path) (*sparse.Matrix, error) {
	key := p.String()
	m.mu.Lock()
	c, ok := m.cache[key]
	m.mu.Unlock()
	if ok {
		return c, nil
	}
	var acc *sparse.Matrix
	for _, s := range p.Steps() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w, err := m.g.Adjacency(s.Relation.Name)
		if err != nil {
			return nil, err
		}
		if s.Inverse {
			w = w.Transpose()
		}
		if acc == nil {
			acc = w
		} else {
			acc = acc.Mul(w)
		}
	}
	m.mu.Lock()
	m.cache[key] = acc
	m.mu.Unlock()
	return acc, nil
}

// AllPairs returns the PathSim similarity matrix for a symmetric path.
func (m *PathSim) AllPairs(ctx context.Context, p *metapath.Path) (*sparse.Matrix, error) {
	if !p.IsSymmetric() {
		return nil, fmt.Errorf("%w: %s", ErrAsymmetricPath, p)
	}
	cnt, err := m.countMatrix(ctx, p)
	if err != nil {
		return nil, err
	}
	n, _ := cnt.Dims()
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = cnt.At(i, i)
	}
	ts := cnt.Triplets()
	out := make([]sparse.Triplet, 0, len(ts))
	for _, t := range ts {
		den := diag[t.Row] + diag[t.Col]
		if den > 0 {
			out = append(out, sparse.Triplet{Row: t.Row, Col: t.Col, Val: 2 * t.Val / den})
		}
	}
	return sparse.New(n, n, out), nil
}

// Subset returns the PathSim similarity matrix restricted to the given
// node-index subset (in the given order). For a symmetric path P = PL·PL^-1
// the path-count matrix factors as M = C·C' with C the raw path-count
// matrix of PL, so only the selected rows of C are ever multiplied — the
// same submatrix plan the HeteSim engine uses for clustering experiments.
func (m *PathSim) Subset(ctx context.Context, p *metapath.Path, idx []int) (*sparse.Matrix, error) {
	if !p.IsSymmetric() {
		return nil, fmt.Errorf("%w: %s", ErrAsymmetricPath, p)
	}
	left, err := m.halfCountMatrix(ctx, p)
	if err != nil {
		return nil, err
	}
	n := left.Rows()
	for _, i := range idx {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("%w: index %d of %d", hin.ErrUnknownNode, i, n)
		}
	}
	sub := left.SelectRows(idx)
	cnt := sub.Mul(sub.Transpose())
	diag := make([]float64, len(idx))
	for i := range idx {
		diag[i] = cnt.At(i, i)
	}
	ts := cnt.Triplets()
	out := make([]sparse.Triplet, 0, len(ts))
	for _, t := range ts {
		den := diag[t.Row] + diag[t.Col]
		if den > 0 {
			out = append(out, sparse.Triplet{Row: t.Row, Col: t.Col, Val: 2 * t.Val / den})
		}
	}
	return sparse.New(len(idx), len(idx), out), nil
}

// Pair returns PathSim(src, dst | p) for nodes identified by string IDs.
func (m *PathSim) Pair(ctx context.Context, p *metapath.Path, srcID, dstID string) (float64, error) {
	if !p.IsSymmetric() {
		return 0, fmt.Errorf("%w: %s", ErrAsymmetricPath, p)
	}
	i, err := m.g.NodeIndex(p.Source(), srcID)
	if err != nil {
		return 0, err
	}
	j, err := m.g.NodeIndex(p.Target(), dstID)
	if err != nil {
		return 0, err
	}
	return m.PairByIndex(ctx, p, i, j)
}

// PairByIndex is Pair addressed by node indices.
func (m *PathSim) PairByIndex(ctx context.Context, p *metapath.Path, src, dst int) (float64, error) {
	if !p.IsSymmetric() {
		return 0, fmt.Errorf("%w: %s", ErrAsymmetricPath, p)
	}
	cnt, err := m.countMatrix(ctx, p)
	if err != nil {
		return 0, err
	}
	n, _ := cnt.Dims()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return 0, hin.ErrUnknownNode
	}
	den := cnt.At(src, src) + cnt.At(dst, dst)
	if den == 0 {
		return 0, nil
	}
	return 2 * cnt.At(src, dst) / den, nil
}

// SingleSource returns PathSim scores of one source against all same-typed
// objects. For a symmetric path the count matrix factors as M = C·C', so
// one row of M is a single matrix-vector product — the full n×n count
// matrix is never materialized.
func (m *PathSim) SingleSource(ctx context.Context, p *metapath.Path, srcID string) ([]float64, error) {
	i, err := m.g.NodeIndex(p.Source(), srcID)
	if err != nil {
		return nil, err
	}
	return m.SingleSourceByIndex(ctx, p, i)
}

// SingleSourceByIndex is SingleSource addressed by node index.
func (m *PathSim) SingleSourceByIndex(ctx context.Context, p *metapath.Path, src int) ([]float64, error) {
	if !p.IsSymmetric() {
		return nil, fmt.Errorf("%w: %s", ErrAsymmetricPath, p)
	}
	left, err := m.halfCountMatrix(ctx, p)
	if err != nil {
		return nil, err
	}
	n := left.Rows()
	if src < 0 || src >= n {
		return nil, fmt.Errorf("%w: index %d of %d", hin.ErrUnknownNode, src, n)
	}
	diag := m.countDiagonal(p, left)
	row := left.MulVec(left.RowDense(src, nil))
	for j := range row {
		den := diag[src] + diag[j]
		if den > 0 {
			row[j] = 2 * row[j] / den
		} else {
			row[j] = 0
		}
	}
	return row, nil
}

// halfCountMatrix returns (and caches) the raw path-count matrix of the
// left half PL of a symmetric path P = PL·PL^-1.
func (m *PathSim) halfCountMatrix(ctx context.Context, p *metapath.Path) (*sparse.Matrix, error) {
	key := "half:" + p.String()
	m.mu.Lock()
	c, ok := m.cache[key]
	m.mu.Unlock()
	if ok {
		return c, nil
	}
	d := p.Decompose()
	if d.Middle != nil {
		return nil, fmt.Errorf("%w: %s has odd length", ErrAsymmetricPath, p)
	}
	var left *sparse.Matrix
	for _, s := range d.Left {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		w, err := m.g.Adjacency(s.Relation.Name)
		if err != nil {
			return nil, err
		}
		if s.Inverse {
			w = w.Transpose()
		}
		if left == nil {
			left = w
		} else {
			left = left.Mul(w)
		}
	}
	m.mu.Lock()
	m.cache[key] = left
	m.mu.Unlock()
	return left, nil
}

// countDiagonal returns (and caches) the diagonal of M = C·C': the per-row
// squared Euclidean norms of the half-count matrix.
func (m *PathSim) countDiagonal(p *metapath.Path, left *sparse.Matrix) []float64 {
	key := "diag:" + p.String()
	m.mu.Lock()
	defer m.mu.Unlock()
	if d, ok := m.diag[key]; ok {
		return d
	}
	norms := left.RowNorms()
	d := make([]float64, len(norms))
	for i, x := range norms {
		d[i] = x * x
	}
	m.diag[key] = d
	return d
}
