// Package baseline implements the comparison measures the paper evaluates
// HeteSim against: PCRW (path-constrained random walk, Lao & Cohen), PathSim
// (Sun et al.), SimRank (Jeh & Widom) — including the bipartite pairwise
// recursion used by the paper's Property 5 proof — and personalized PageRank
// (random walk with restart).
package baseline

import (
	"context"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/sparse"
)

// PCRW is the Path Constrained Random Walk measure: the probability of
// reaching the target by randomly walking from the source along the
// relevance path, i.e. the entry PM_P(s, t) of the reachable probability
// matrix (Definition 9). Unlike HeteSim it is asymmetric:
// PCRW(a, b | P) generally differs from PCRW(b, a | P^-1), which is the
// deficiency Tables 3–4 of the paper demonstrate.
type PCRW struct {
	engine *core.Engine
}

// NewPCRW creates a PCRW measure over g. It shares the core engine's
// transition-matrix machinery and caches.
func NewPCRW(g *hin.Graph) *PCRW {
	return &PCRW{engine: core.NewEngine(g)}
}

// NewPCRWFromEngine wraps an existing engine so PCRW queries share its
// caches with HeteSim queries on the same graph.
func NewPCRWFromEngine(e *core.Engine) *PCRW { return &PCRW{engine: e} }

// Pair returns PCRW(src, dst | p) for nodes identified by string IDs.
func (m *PCRW) Pair(ctx context.Context, p *metapath.Path, srcID, dstID string) (float64, error) {
	g := m.engine.Graph()
	i, err := g.NodeIndex(p.Source(), srcID)
	if err != nil {
		return 0, err
	}
	j, err := g.NodeIndex(p.Target(), dstID)
	if err != nil {
		return 0, err
	}
	return m.PairByIndex(ctx, p, i, j)
}

// PairByIndex is Pair addressed by node indices.
func (m *PCRW) PairByIndex(ctx context.Context, p *metapath.Path, src, dst int) (float64, error) {
	v, err := m.engine.ReachableFrom(ctx, p, src)
	if err != nil {
		return 0, err
	}
	n := m.engine.Graph().NodeCount(p.Target())
	if dst < 0 || dst >= n {
		return 0, hin.ErrUnknownNode
	}
	return v.At(dst), nil
}

// SingleSource returns the PCRW distribution of one source over all targets.
func (m *PCRW) SingleSource(ctx context.Context, p *metapath.Path, srcID string) ([]float64, error) {
	i, err := m.engine.Graph().NodeIndex(p.Source(), srcID)
	if err != nil {
		return nil, err
	}
	return m.SingleSourceByIndex(ctx, p, i)
}

// SingleSourceByIndex is SingleSource addressed by node index.
func (m *PCRW) SingleSourceByIndex(ctx context.Context, p *metapath.Path, src int) ([]float64, error) {
	v, err := m.engine.ReachableFrom(ctx, p, src)
	if err != nil {
		return nil, err
	}
	return v.Dense(), nil
}

// AllPairs returns the full reachable probability matrix PM_P.
func (m *PCRW) AllPairs(ctx context.Context, p *metapath.Path) (*sparse.Matrix, error) {
	return m.engine.ReachableMatrix(ctx, p)
}
