package baseline

import (
	"fmt"

	"hetesim/internal/hin"
	"hetesim/internal/sparse"
)

// PPR computes personalized PageRank (random walk with restart) over the
// flattened heterogeneous network: the stationary distribution of a walker
// that follows a uniformly random incident relation instance with
// probability damping, and teleports back to the source with probability
// 1 - damping. It is the classic link-based relevance baseline from the
// related-work discussion; unlike HeteSim it ignores path semantics — every
// relation type is traversed indiscriminately.
type PPR struct {
	g       *hin.Graph
	trans   *sparse.Matrix // row-stochastic global transition
	nodes   []GlobalNode
	offsets map[string]int
	damping float64
	iters   int
}

// NewPPR builds a PPR measure with the given damping factor (typically
// 0.85) and number of power iterations.
func NewPPR(g *hin.Graph, damping float64, iters int) (*PPR, error) {
	if damping <= 0 || damping >= 1 {
		return nil, fmt.Errorf("baseline: damping %v outside (0,1)", damping)
	}
	if iters <= 0 {
		return nil, fmt.Errorf("baseline: iters %d must be positive", iters)
	}
	adj, nodes, offsets := GlobalGraph(g)
	return &PPR{
		g:       g,
		trans:   adj.RowNormalize(),
		nodes:   nodes,
		offsets: offsets,
		damping: damping,
		iters:   iters,
	}, nil
}

// GlobalIndex maps a typed node to its index in the flattened graph.
func (m *PPR) GlobalIndex(typeName string, i int) (int, error) {
	off, ok := m.offsets[typeName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", hin.ErrUnknownType, typeName)
	}
	if i < 0 || i >= m.g.NodeCount(typeName) {
		return 0, fmt.Errorf("%w: %s #%d", hin.ErrUnknownNode, typeName, i)
	}
	return off + i, nil
}

// FromNode runs the walk from the identified source node and returns the
// stationary scores restricted to one target type, indexed by that type's
// node index.
func (m *PPR) FromNode(srcType, srcID, targetType string) ([]float64, error) {
	i, err := m.g.NodeIndex(srcType, srcID)
	if err != nil {
		return nil, err
	}
	return m.FromIndex(srcType, i, targetType)
}

// FromIndex is FromNode addressed by node index.
func (m *PPR) FromIndex(srcType string, src int, targetType string) ([]float64, error) {
	gsrc, err := m.GlobalIndex(srcType, src)
	if err != nil {
		return nil, err
	}
	toff, ok := m.offsets[targetType]
	if !ok {
		return nil, fmt.Errorf("%w: %q", hin.ErrUnknownType, targetType)
	}
	n := len(m.nodes)
	x := make([]float64, n)
	x[gsrc] = 1
	restart := 1 - m.damping
	for it := 0; it < m.iters; it++ {
		y := m.trans.VecMul(x)
		for k := range y {
			y[k] *= m.damping
		}
		y[gsrc] += restart
		// Dangling mass (rows normalized to zero) also restarts.
		var mass float64
		for _, v := range y {
			mass += v
		}
		if lost := 1 - mass; lost > 1e-15 {
			y[gsrc] += lost
		}
		x = y
	}
	nt := m.g.NodeCount(targetType)
	out := make([]float64, nt)
	copy(out, x[toff:toff+nt])
	return out, nil
}
