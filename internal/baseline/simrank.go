package baseline

import (
	"fmt"

	"hetesim/internal/hin"
	"hetesim/internal/sparse"
)

// SimRank computes the classic Jeh & Widom similarity on a homogeneous
// directed graph given by a square adjacency matrix, using in-neighbors:
//
//	s(a, b) = C / (|I(a)||I(b)|) · ΣΣ s(I_i(a), I_j(b)),  s(a, a) = 1
//
// iterated iters times from s_0 = I. Nodes without in-neighbors score 0
// against everything but themselves. The result is a dense n×n matrix —
// SimRank's O(n²) similarity state is precisely the space cost the paper's
// Section 4.6 complexity comparison highlights.
func SimRank(adj *sparse.Matrix, c float64, iters int) [][]float64 {
	n, m := adj.Dims()
	if n != m {
		panic(fmt.Sprintf("baseline: SimRank needs a square adjacency, got %dx%d", n, m))
	}
	// Column-normalized transition: P(i,j) = 1/|I(j)| for each in-edge.
	// s_{k+1} = C · P' s_k P with the diagonal pinned to 1.
	p := adj.ColNormalize()
	pt := p.Transpose()
	s := sparse.Identity(n)
	for it := 0; it < iters; it++ {
		s = pt.Mul(s).Mul(p).Scale(c)
		s = pinDiagonal(s, n)
	}
	return s.Dense()
}

func pinDiagonal(s *sparse.Matrix, n int) *sparse.Matrix {
	ts := s.Triplets()
	out := make([]sparse.Triplet, 0, len(ts)+n)
	for _, t := range ts {
		if t.Row != t.Col {
			out = append(out, t)
		}
	}
	for i := 0; i < n; i++ {
		out = append(out, sparse.Triplet{Row: i, Col: i, Val: 1})
	}
	return sparse.New(n, n, out)
}

// BipartiteSimRank holds the two similarity matrices of SimRank on a
// bipartite graph W: A-side similarities (via out-neighbors) and B-side
// similarities (via in-neighbors), the setting of Property 5 in the paper.
type BipartiteSimRank struct {
	A [][]float64
	B [][]float64
}

// SimRankBipartite iterates the bipartite SimRank recursion
//
//	s_A(a1,a2) = C/(|O(a1)||O(a2)|) ΣΣ s_B(O_i(a1), O_j(a2))
//	s_B(b1,b2) = C/(|I(b1)||I(b2)|) ΣΣ s_A(I_i(b1), I_j(b2))
//
// from s_A = s_B = I, pinning diagonals to 1 after every hop.
func SimRankBipartite(w *sparse.Matrix, c float64, iters int) BipartiteSimRank {
	nA, nB := w.Dims()
	u := w.RowNormalize()             // A -> B transition
	v := w.Transpose().RowNormalize() // B -> A transition
	sA := sparse.Identity(nA)
	sB := sparse.Identity(nB)
	for it := 0; it < iters; it++ {
		nsA := u.Mul(sB).Mul(u.Transpose()).Scale(c)
		nsB := v.Mul(sA).Mul(v.Transpose()).Scale(c)
		sA = pinDiagonal(nsA, nA)
		sB = pinDiagonal(nsB, nB)
	}
	return BipartiteSimRank{A: sA.Dense(), B: sB.Dense()}
}

// SimRankBipartiteRecursion computes the pure pairwise-random-walk recursion
// used in the paper's Property 5 proof: with C = 1 and s_0 = δ (no diagonal
// pinning), the k-th iterate on the A side is
//
//	S_A^(k) = C_k · C_k'   with   C_k = U·V·U·V· ... (k factors),
//
// where U is the A→B and V the B→A transition matrix — exactly the
// unnormalized HeteSim(a1, a2 | (R R^-1)^k), the probability of two walkers
// meeting after k steps each. It returns the A-side iterate after k hops.
func SimRankBipartiteRecursion(w *sparse.Matrix, k int) [][]float64 {
	nA, _ := w.Dims()
	u := w.RowNormalize()
	v := w.Transpose().RowNormalize()
	c := sparse.Identity(nA)
	for it := 0; it < k; it++ {
		if it%2 == 0 {
			c = c.Mul(u)
		} else {
			c = c.Mul(v)
		}
	}
	return c.Mul(c.Transpose()).Dense()
}

// GlobalNode identifies a node of the flattened whole-network graph used by
// whole-graph baselines (SimRank on the HIN, personalized PageRank).
type GlobalNode struct {
	Type  string
	Index int
}

// GlobalGraph flattens a heterogeneous network into one directed graph over
// all nodes of all types, with an edge in both directions for every relation
// instance (a relation and its implicit inverse both carry semantics). It
// returns the combined adjacency, the global nodes in index order, and the
// per-type index offsets.
func GlobalGraph(g *hin.Graph) (*sparse.Matrix, []GlobalNode, map[string]int) {
	offsets := make(map[string]int)
	var nodes []GlobalNode
	for _, t := range g.Schema().Types() {
		offsets[t.Name] = len(nodes)
		for i := 0; i < g.NodeCount(t.Name); i++ {
			nodes = append(nodes, GlobalNode{Type: t.Name, Index: i})
		}
	}
	n := len(nodes)
	var ts []sparse.Triplet
	for _, rel := range g.Schema().Relations() {
		w, err := g.Adjacency(rel.Name)
		if err != nil {
			continue
		}
		so, to := offsets[rel.Source], offsets[rel.Target]
		for _, t := range w.Triplets() {
			ts = append(ts, sparse.Triplet{Row: so + t.Row, Col: to + t.Col, Val: t.Val})
			ts = append(ts, sparse.Triplet{Row: to + t.Col, Col: so + t.Row, Val: t.Val})
		}
	}
	return sparse.New(n, n, ts), nodes, offsets
}

// SimRankHIN runs whole-graph SimRank over the flattened heterogeneous
// network — every node pair of every type at once. This is the measure the
// paper's complexity analysis (Section 4.6) contrasts with HeteSim: its
// state is (T·n)² where HeteSim's is n². Returned scores are indexed by
// global node index (see GlobalGraph).
func SimRankHIN(g *hin.Graph, c float64, iters int) ([][]float64, []GlobalNode, map[string]int) {
	adj, nodes, offsets := GlobalGraph(g)
	return SimRank(adj, c, iters), nodes, offsets
}
