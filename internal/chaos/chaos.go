// Package chaos provides deterministic fault injection for the durability
// layer: io.Reader/io.Writer wrappers that fail, truncate, stall, or
// fragment at chosen byte offsets, a filesystem shim implementing
// snapshot.FS that injects write failures (ENOSPC, kill-mid-write), torn
// renames, and failed syncs, and a seeded offset generator so a recovery
// test matrix sweeps reproducible fault points.
//
// Everything here is deterministic given its construction parameters: the
// same seed produces the same fault schedule, so a failing matrix entry
// replays exactly.
package chaos

import (
	"errors"
	"io"
	"math/rand"
	"sort"
	"time"
)

// ErrInjected is the default error returned by injected faults. Tests can
// substitute their own (e.g. syscall.ENOSPC) to model specific failures.
var ErrInjected = errors.New("chaos: injected fault")

// failWriter fails once n total bytes have been written through it. The
// write that crosses the boundary writes the prefix up to byte n and then
// returns the injected error with a short count — exactly a torn write: the
// bytes before the fault hit the underlying writer, the rest never exist.
type failWriter struct {
	w       io.Writer
	n       int64
	err     error
	written int64
}

// FailWriter returns a writer that passes the first n bytes through to w
// and fails every write after that with err (ErrInjected if err is nil).
func FailWriter(w io.Writer, n int64, err error) io.Writer {
	if err == nil {
		err = ErrInjected
	}
	return &failWriter{w: w, n: n, err: err}
}

func (f *failWriter) Write(p []byte) (int, error) {
	remain := f.n - f.written
	if remain <= 0 {
		return 0, f.err
	}
	if int64(len(p)) <= remain {
		n, err := f.w.Write(p)
		f.written += int64(n)
		return n, err
	}
	n, err := f.w.Write(p[:remain])
	f.written += int64(n)
	if err != nil {
		return n, err
	}
	return n, f.err
}

// failReader mirrors failWriter for reads: the first n bytes flow through,
// then every read fails with err.
type failReader struct {
	r    io.Reader
	n    int64
	err  error
	read int64
}

// FailReader returns a reader that yields the first n bytes of r and fails
// afterwards with err (ErrInjected if nil).
func FailReader(r io.Reader, n int64, err error) io.Reader {
	if err == nil {
		err = ErrInjected
	}
	return &failReader{r: r, n: n, err: err}
}

func (f *failReader) Read(p []byte) (int, error) {
	remain := f.n - f.read
	if remain <= 0 {
		return 0, f.err
	}
	if int64(len(p)) > remain {
		p = p[:remain]
	}
	n, err := f.r.Read(p)
	f.read += int64(n)
	return n, err
}

// ShortReader yields the first n bytes of r and then reports a clean EOF —
// a truncated file rather than an I/O error, the harder case for a decoder
// because nothing looks wrong until the bytes simply end.
func ShortReader(r io.Reader, n int64) io.Reader { return io.LimitReader(r, n) }

// partialWriter fragments writes: each call forwards at most chunk bytes
// and reports the short count with a nil error — a deliberate io.Writer
// contract violation that flushes out callers ignoring short counts
// (contract-respecting plumbing like io.Copy turns it into ErrShortWrite).
type partialWriter struct {
	w     io.Writer
	chunk int
}

// PartialWriter returns a writer that accepts at most chunk bytes per
// Write call, forcing callers through the short-write path.
func PartialWriter(w io.Writer, chunk int) io.Writer {
	if chunk < 1 {
		chunk = 1
	}
	return &partialWriter{w: w, chunk: chunk}
}

func (p *partialWriter) Write(b []byte) (int, error) {
	if len(b) > p.chunk {
		b = b[:p.chunk]
	}
	return p.w.Write(b)
}

// slowWriter sleeps before every write — a disk with terrible latency, for
// exercising timeouts around persistence.
type slowWriter struct {
	w io.Writer
	d time.Duration
}

// SlowWriter returns a writer that sleeps d before every Write.
func SlowWriter(w io.Writer, d time.Duration) io.Writer { return &slowWriter{w: w, d: d} }

func (s *slowWriter) Write(p []byte) (int, error) {
	time.Sleep(s.d)
	return s.w.Write(p)
}

// slowReader sleeps before every read.
type slowReader struct {
	r io.Reader
	d time.Duration
}

// SlowReader returns a reader that sleeps d before every Read.
func SlowReader(r io.Reader, d time.Duration) io.Reader { return &slowReader{r: r, d: d} }

func (s *slowReader) Read(p []byte) (int, error) {
	time.Sleep(s.d)
	return s.r.Read(p)
}

// corruptReader flips one bit at a byte offset in the stream.
type corruptReader struct {
	r      io.Reader
	offset int64
	mask   byte
	pos    int64
}

// CorruptReader returns a reader that flips mask's bits into the byte at
// the given stream offset — a model of at-rest bit rot the checksums must
// catch. A zero mask flips the low bit.
func CorruptReader(r io.Reader, offset int64, mask byte) io.Reader {
	if mask == 0 {
		mask = 1
	}
	return &corruptReader{r: r, offset: offset, mask: mask}
}

func (c *corruptReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 && c.offset >= c.pos && c.offset < c.pos+int64(n) {
		p[c.offset-c.pos] ^= c.mask
	}
	c.pos += int64(n)
	return n, err
}

// Offsets returns count distinct pseudo-random byte offsets in [0, max),
// deterministic for a given seed, sorted ascending. When max <= count every
// offset in range is returned — a full sweep.
func Offsets(seed, max int64, count int) []int64 {
	if max <= 0 {
		return nil
	}
	if int64(count) >= max {
		out := make([]int64, max)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int64]bool, count)
	out := make([]int64, 0, count)
	for len(out) < count {
		v := rng.Int63n(max)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
