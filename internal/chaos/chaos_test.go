package chaos

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFailWriterTearsAtBoundary(t *testing.T) {
	var buf bytes.Buffer
	w := FailWriter(&buf, 5, nil)
	n, err := w.Write([]byte("hello world"))
	if n != 5 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (5, ErrInjected)", n, err)
	}
	if buf.String() != "hello" {
		t.Fatalf("underlying writer got %q, want the torn prefix", buf.String())
	}
	if n, err := w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-fault Write = (%d, %v)", n, err)
	}
}

func TestFailReaderAndShortReader(t *testing.T) {
	r := FailReader(strings.NewReader("abcdef"), 4, nil)
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) || string(got) != "abcd" {
		t.Fatalf("FailReader = (%q, %v)", got, err)
	}
	got, err = io.ReadAll(ShortReader(strings.NewReader("abcdef"), 4))
	if err != nil || string(got) != "abcd" {
		t.Fatalf("ShortReader = (%q, %v)", got, err)
	}
}

func TestPartialWriterFragments(t *testing.T) {
	var buf bytes.Buffer
	w := PartialWriter(&buf, 3)
	if n, err := w.Write([]byte("abcdefgh")); n != 3 || err != nil {
		t.Fatalf("Write = (%d, %v), want short count 3", n, err)
	}
	// A contract-respecting copier surfaces the short write instead of
	// silently losing bytes — the bug class this wrapper exists to catch.
	if _, err := io.Copy(w, strings.NewReader("rest")); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("io.Copy err = %v, want ErrShortWrite", err)
	}
	if buf.String() != "abcres" {
		t.Fatalf("underlying writer got %q", buf.String())
	}
}

func TestCorruptReaderFlipsOneBit(t *testing.T) {
	src := bytes.Repeat([]byte{0}, 16)
	got, err := io.ReadAll(CorruptReader(bytes.NewReader(src), 9, 0x20))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0)
		if i == 9 {
			want = 0x20
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x", i, b, want)
		}
	}
}

func TestOffsetsDeterministicAndBounded(t *testing.T) {
	a := Offsets(1, 1000, 20)
	b := Offsets(1, 1000, 20)
	if len(a) != 20 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different offsets")
		}
		if a[i] < 0 || a[i] >= 1000 {
			t.Fatalf("offset %d out of range", a[i])
		}
		if i > 0 && a[i] <= a[i-1] {
			t.Fatal("offsets not strictly ascending")
		}
	}
	if full := Offsets(9, 5, 100); len(full) != 5 {
		t.Fatalf("full sweep len = %d, want 5", len(full))
	}
}
