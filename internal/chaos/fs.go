package chaos

import (
	"sync"

	"hetesim/internal/snapshot"
)

// FS implements snapshot.FS over the real filesystem with injectable
// faults: a byte-metered write failure shared across every file the FS
// creates (kill-mid-write / ENOSPC at byte N of a save), failed fsyncs,
// torn renames, and failed temp-file creation. All knobs are settable
// between operations; the zero configuration injects nothing and behaves
// exactly like snapshot.OS.
type FS struct {
	real snapshot.OS

	mu          sync.Mutex
	written     int64 // bytes written across all files since construction/reset
	failWriteAt int64 // fail writes once written reaches this; <0 disables
	writeErr    error
	syncErr     error // returned by File.Sync and SyncDir when set
	renameErr   error // returned by Rename when set
	createErr   error // returned by CreateTemp when set
}

// NewFS returns a chaos FS with no faults armed.
func NewFS() *FS {
	return &FS{failWriteAt: -1}
}

// FailWriteAt arms a write failure: once n total bytes have been written
// through files created by this FS, further writes fail with err
// (ErrInjected if nil). The write crossing byte n is torn — its prefix
// reaches the disk. Pass n < 0 to disarm.
func (f *FS) FailWriteAt(n int64, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	f.failWriteAt, f.writeErr, f.written = n, err, 0
}

// FailSync makes File.Sync and SyncDir fail with err (ErrInjected if nil);
// nil via DisarmAll restores normal behavior.
func (f *FS) FailSync(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	f.syncErr = err
}

// FailRename makes Rename fail with err (ErrInjected if nil) — the torn
// "crash between write and publish" point of the save protocol.
func (f *FS) FailRename(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	f.renameErr = err
}

// FailCreate makes CreateTemp fail with err (ErrInjected if nil).
func (f *FS) FailCreate(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	f.createErr = err
}

// DisarmAll clears every armed fault and resets the byte meter.
func (f *FS) DisarmAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failWriteAt, f.writeErr = -1, nil
	f.syncErr, f.renameErr, f.createErr = nil, nil, nil
	f.written = 0
}

// Written reports the total bytes written through this FS since the last
// FailWriteAt arming or DisarmAll — used by sweeps to size their offsets.
func (f *FS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

func (f *FS) CreateTemp(dir, pattern string) (snapshot.File, error) {
	f.mu.Lock()
	err := f.createErr
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	file, ferr := f.real.CreateTemp(dir, pattern)
	if ferr != nil {
		return nil, ferr
	}
	return &chaosFile{File: file, fs: f}, nil
}

func (f *FS) Open(name string) (snapshot.File, error) { return f.real.Open(name) }

// OpenAppend meters appended bytes against the armed write fault, so
// kill-at-every-byte-offset sweeps cover WAL appends exactly as they cover
// snapshot saves.
func (f *FS) OpenAppend(name string) (snapshot.File, error) {
	f.mu.Lock()
	err := f.createErr
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	file, ferr := f.real.OpenAppend(name)
	if ferr != nil {
		return nil, ferr
	}
	return &chaosFile{File: file, fs: f}, nil
}

func (f *FS) Truncate(name string, size int64) error { return f.real.Truncate(name, size) }

func (f *FS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	err := f.renameErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.real.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error { return f.real.Remove(name) }

func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	err := f.syncErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.real.SyncDir(dir)
}

// chaosFile meters writes against the FS's armed write fault.
type chaosFile struct {
	snapshot.File
	fs *FS
}

func (c *chaosFile) Write(p []byte) (int, error) {
	c.fs.mu.Lock()
	limit, werr := c.fs.failWriteAt, c.fs.writeErr
	written := c.fs.written
	c.fs.mu.Unlock()

	allow := int64(len(p))
	injected := false
	if limit >= 0 {
		remain := limit - written
		if remain < allow {
			allow = remain
			injected = true
		}
		if allow < 0 {
			allow = 0
		}
	}
	n := 0
	var err error
	if allow > 0 {
		n, err = c.File.Write(p[:allow])
	}
	c.fs.mu.Lock()
	c.fs.written += int64(n)
	c.fs.mu.Unlock()
	if err != nil {
		return n, err
	}
	if injected {
		return n, werr
	}
	return n, nil
}

func (c *chaosFile) Sync() error {
	c.fs.mu.Lock()
	err := c.fs.syncErr
	c.fs.mu.Unlock()
	if err != nil {
		return err
	}
	return c.File.Sync()
}
