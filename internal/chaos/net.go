package chaos

// Network fault injection for the scale-out layer: a switchable
// net.Listener wrapper that models a replica dying (refused connections,
// killed established connections, mid-body resets) and an http.RoundTripper
// wrapper that injects the same faults from the client side (refused
// dials, added latency, response bodies that reset mid-stream). Both are
// toggled at runtime so a test can kill a replica mid-request and revive
// it later, and both are deterministic: faults fire on explicit counters,
// never on randomness.

import (
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Listener wraps a net.Listener with runtime-switchable fault injection.
// While refusing, every newly accepted connection is closed immediately —
// from the client's side an instant connection reset, the signature of a
// crashed or restarting replica. ResetAfter arms per-connection resets:
// each accepted connection is torn down after writing n bytes, modelling a
// replica dying mid-response. CloseActive kills connections already
// established (HTTP keep-alive pools hold those open long after the
// listener starts refusing).
type Listener struct {
	inner net.Listener

	refuse     atomic.Bool
	resetAfter atomic.Int64 // bytes written per conn before reset; 0 = off

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// WrapListener wraps l. The returned listener injects no faults until
// Refuse or ResetAfter arm them.
func WrapListener(l net.Listener) *Listener {
	return &Listener{inner: l, conns: make(map[net.Conn]struct{})}
}

// Refuse starts (or stops) refusing new connections. Accepted connections
// are closed immediately while on, so the serving loop keeps running but
// every client sees its connection die.
func (l *Listener) Refuse(on bool) { l.refuse.Store(on) }

// ResetAfter arms mid-body resets: every connection accepted from now on is
// closed after n bytes have been written to it. 0 disarms.
func (l *Listener) ResetAfter(n int64) { l.resetAfter.Store(n) }

// CloseActive closes every currently tracked established connection —
// the keep-alive half of killing a replica.
func (l *Listener) CloseActive() {
	l.mu.Lock()
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		c, err := l.inner.Accept()
		if err != nil {
			return nil, err
		}
		if l.refuse.Load() {
			c.Close()
			continue
		}
		fc := &faultConn{Conn: c, l: l, resetAt: l.resetAfter.Load()}
		l.mu.Lock()
		l.conns[fc] = struct{}{}
		l.mu.Unlock()
		return fc, nil
	}
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

func (l *Listener) forget(c net.Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// faultConn is one accepted connection; it resets (closes the underlying
// socket) once resetAt bytes have been written, and also dies as soon as
// its listener starts refusing, so in-flight requests on kept-alive
// connections fail like the fresh ones do.
type faultConn struct {
	net.Conn
	l       *Listener
	resetAt int64 // 0 = never
	written int64
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.l.refuse.Load() {
		c.Close()
		return 0, ErrInjected
	}
	if c.resetAt > 0 {
		remain := c.resetAt - c.written
		if remain <= 0 {
			c.Close()
			return 0, ErrInjected
		}
		if int64(len(p)) > remain {
			n, _ := c.Conn.Write(p[:remain])
			c.written += int64(n)
			c.Close()
			return n, ErrInjected
		}
	}
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

func (c *faultConn) Close() error {
	c.l.forget(c)
	return c.Conn.Close()
}

// Transport wraps an http.RoundTripper with client-side fault injection:
// refused dials for the next N calls, fixed added latency, and response
// bodies that reset after a byte budget for the next N responses. It is
// safe for concurrent use; fault counters are consumed atomically so a
// parallel test gets exactly the number of faults it armed.
type Transport struct {
	// Base performs real round trips; http.DefaultTransport when nil.
	Base http.RoundTripper

	failNext    atomic.Int64 // calls to refuse before any I/O
	latency     atomic.Int64 // nanoseconds added before each round trip
	resetBodies atomic.Int64 // responses whose bodies should reset
	resetBytes  atomic.Int64 // bytes delivered before a reset body fails
}

// FailNext makes the next n round trips fail with ErrInjected before any
// bytes are sent — a refused connection.
func (t *Transport) FailNext(n int64) { t.failNext.Store(n) }

// Latency adds d before every round trip (0 disables).
func (t *Transport) Latency(d time.Duration) { t.latency.Store(int64(d)) }

// ResetBodyAfter makes the next n response bodies fail with ErrInjected
// after delivering the first max bytes — a connection reset mid-body.
func (t *Transport) ResetBodyAfter(max, n int64) {
	t.resetBytes.Store(max)
	t.resetBodies.Store(n)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	for {
		n := t.failNext.Load()
		if n <= 0 {
			break
		}
		if t.failNext.CompareAndSwap(n, n-1) {
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, ErrInjected
		}
	}
	if d := t.latency.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	for {
		n := t.resetBodies.Load()
		if n <= 0 {
			break
		}
		if t.resetBodies.CompareAndSwap(n, n-1) {
			resp.Body = &resetBody{r: FailReader(resp.Body, t.resetBytes.Load(), nil), c: resp.Body}
			break
		}
	}
	return resp, nil
}

// resetBody delivers a bounded prefix of the real body, then fails.
type resetBody struct {
	r interface{ Read([]byte) (int, error) }
	c interface{ Close() error }
}

func (b *resetBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *resetBody) Close() error               { return b.c.Close() }
