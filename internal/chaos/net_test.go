package chaos

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newFaultServer(t *testing.T, body string) (*httptest.Server, *Listener) {
	t.Helper()
	srv := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, body)
	}))
	fl := WrapListener(srv.Listener)
	srv.Listener = fl
	srv.Start()
	t.Cleanup(srv.Close)
	return srv, fl
}

func TestListenerRefuseAndRevive(t *testing.T) {
	srv, fl := newFaultServer(t, "ok")

	// Each phase uses a fresh client so keep-alive pooling doesn't let a
	// pre-kill connection serve the post-kill request.
	get := func() (string, error) {
		c := &http.Client{Timeout: 2 * time.Second}
		defer c.CloseIdleConnections()
		resp, err := c.Get(srv.URL)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}

	if body, err := get(); err != nil || body != "ok" {
		t.Fatalf("healthy phase: body=%q err=%v", body, err)
	}

	fl.Refuse(true)
	fl.CloseActive()
	if _, err := get(); err == nil {
		t.Fatal("expected error while refusing")
	}

	fl.Refuse(false)
	if body, err := get(); err != nil || body != "ok" {
		t.Fatalf("revived phase: body=%q err=%v", body, err)
	}
}

func TestListenerResetAfter(t *testing.T) {
	srv, fl := newFaultServer(t, strings.Repeat("x", 1<<16))
	fl.ResetAfter(128)

	c := &http.Client{Timeout: 2 * time.Second}
	defer c.CloseIdleConnections()
	resp, err := c.Get(srv.URL)
	if err == nil {
		_, err = io.ReadAll(resp.Body)
		resp.Body.Close()
	}
	if err == nil {
		t.Fatal("expected torn response after 128 bytes")
	}
}

func TestTransportFailNext(t *testing.T) {
	srv, _ := newFaultServer(t, "ok")
	tr := &Transport{}
	c := &http.Client{Transport: tr, Timeout: 2 * time.Second}
	defer c.CloseIdleConnections()

	tr.FailNext(2)
	for i := 0; i < 2; i++ {
		if _, err := c.Get(srv.URL); err == nil {
			t.Fatalf("call %d: expected injected failure", i)
		}
	}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("third call should succeed: %v", err)
	}
	resp.Body.Close()
}

func TestTransportResetBodyAfter(t *testing.T) {
	srv, _ := newFaultServer(t, strings.Repeat("y", 4096))
	tr := &Transport{}
	c := &http.Client{Transport: tr, Timeout: 2 * time.Second}
	defer c.CloseIdleConnections()

	tr.ResetBodyAfter(100, 1)

	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected mid-body, got err=%v after %d bytes", err, len(b))
	}
	if len(b) > 100 {
		t.Fatalf("body delivered %d bytes, budget was 100", len(b))
	}

	// Second response is clean: the counter was consumed.
	resp, err = c.Get(srv.URL)
	if err != nil {
		t.Fatalf("second round trip: %v", err)
	}
	b, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(b) != 4096 {
		t.Fatalf("second body: len=%d err=%v", len(b), err)
	}
}

func TestTransportLatency(t *testing.T) {
	srv, _ := newFaultServer(t, "ok")
	tr := &Transport{}
	c := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	defer c.CloseIdleConnections()

	tr.Latency(30 * time.Millisecond)
	start := time.Now()
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("latency injection too fast: %v", d)
	}
}

var _ net.Listener = (*Listener)(nil)
