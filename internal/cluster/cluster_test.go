package cluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hetesim/internal/eval"
	"hetesim/internal/sparse"
)

func TestKMeansSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var points [][]float64
	var truth []int
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	for c, ctr := range centers {
		for i := 0; i < 20; i++ {
			points = append(points, []float64{
				ctr[0] + rng.NormFloat64()*0.3,
				ctr[1] + rng.NormFloat64()*0.3,
			})
			truth = append(truth, c)
		}
	}
	res, err := KMeans(points, 3, KMeansConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := eval.NMI(truth, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.999 {
		t.Errorf("blob NMI = %v, want ~1", nmi)
	}
	if res.Inertia < 0 {
		t.Errorf("inertia = %v", res.Inertia)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points := make([][]float64, 30)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64()}
	}
	a, _ := KMeans(points, 4, KMeansConfig{Seed: 42})
	b, _ := KMeans(points, 4, KMeansConfig{Seed: 42})
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(pts, 0, KMeansConfig{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := KMeans(pts, 3, KMeansConfig{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("k>n err = %v", err)
	}
	if _, err := KMeans(nil, 1, KMeansConfig{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, 1, KMeansConfig{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("ragged err = %v", err)
	}
}

func TestKMeansDuplicatePointsDoNotCrash(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := KMeans(points, 2, KMeansConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 4 {
		t.Errorf("assignments = %v", res.Assignments)
	}
}

// blockSimilarity builds a noisy block-diagonal similarity matrix with k
// planted communities of the given size.
func blockSimilarity(rng *rand.Rand, k, size int, within, between float64) (*sparse.Matrix, []int) {
	n := k * size
	truth := make([]int, n)
	var ts []sparse.Triplet
	for i := 0; i < n; i++ {
		truth[i] = i / size
		for j := 0; j < n; j++ {
			p := between
			if truth[i] == j/size {
				p = within
			}
			if rng.Float64() < p {
				ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: 0.5 + rng.Float64()/2})
			}
		}
	}
	// Strong self-similarity, as HeteSim matrices have.
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 1})
	}
	return sparse.New(n, n, ts), truth
}

func TestNormalizedCutRecoversPlantedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sim, truth := blockSimilarity(rng, 4, 25, 0.7, 0.02)
	got, err := NormalizedCut(sim, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := eval.NMI(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	if nmi < 0.9 {
		t.Errorf("planted-block NMI = %v, want > 0.9", nmi)
	}
}

func TestNormalizedCutValidation(t *testing.T) {
	if _, err := NormalizedCut(sparse.Zeros(2, 3), 2, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("non-square err = %v", err)
	}
	if _, err := NormalizedCut(sparse.Identity(3), 0, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := NormalizedCut(sparse.Identity(3), 4, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("k>n err = %v", err)
	}
}

func TestNormalizedCutHandlesIsolatedNodes(t *testing.T) {
	// Two clear pairs plus one object with no similarity to anything.
	sim := sparse.FromDense([][]float64{
		{1, 0.9, 0, 0, 0},
		{0.9, 1, 0, 0, 0},
		{0, 0, 1, 0.9, 0},
		{0, 0, 0.9, 1, 0},
		{0, 0, 0, 0, 0},
	})
	got, err := NormalizedCut(sim, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != got[1] || got[2] != got[3] || got[0] == got[2] {
		t.Errorf("pairs not separated: %v", got)
	}
}

func TestNormalizedCutDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sim, _ := blockSimilarity(rng, 3, 10, 0.8, 0.05)
	a, err := NormalizedCut(sim, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NormalizedCut(sim, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different normalized-cut clusterings")
		}
	}
}

func TestSqDist(t *testing.T) {
	if d := sqDist([]float64{0, 3}, []float64{4, 0}); math.Abs(d-25) > 1e-12 {
		t.Errorf("sqDist = %v, want 25", d)
	}
}
