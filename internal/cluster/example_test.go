package cluster_test

import (
	"fmt"

	"hetesim/internal/cluster"
	"hetesim/internal/sparse"
)

func ExampleNormalizedCut() {
	// Two obvious communities in a similarity matrix.
	sim := sparse.FromDense([][]float64{
		{1.0, 0.9, 0.0, 0.0},
		{0.9, 1.0, 0.0, 0.0},
		{0.0, 0.0, 1.0, 0.8},
		{0.0, 0.0, 0.8, 1.0},
	})
	assign, err := cluster.NormalizedCut(sim, 2, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(assign[0] == assign[1], assign[2] == assign[3], assign[0] != assign[2])
	// Output: true true true
}

func ExampleKMeans() {
	points := [][]float64{{0, 0}, {0.1, 0}, {5, 5}, {5.1, 5}}
	res, err := cluster.KMeans(points, 2, cluster.KMeansConfig{Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Assignments[0] == res.Assignments[1],
		res.Assignments[2] == res.Assignments[3],
		res.Assignments[0] != res.Assignments[2])
	// Output: true true true
}
