// Package cluster implements the clustering substrate for the paper's
// Table 6 experiment: Normalized Cut spectral clustering (Shi & Malik)
// applied to pairwise similarity matrices, with k-means(++) on the spectral
// embedding.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadInput marks invalid clustering inputs.
var ErrBadInput = errors.New("cluster: bad input")

// KMeansConfig tunes Lloyd's algorithm.
type KMeansConfig struct {
	MaxIters int   // per restart; default 100
	Restarts int   // independent k-means++ restarts; default 8
	Seed     int64 // RNG seed for reproducibility
}

// KMeansResult is a clustering of points.
type KMeansResult struct {
	Assignments []int
	Centroids   [][]float64
	Inertia     float64 // sum of squared distances to assigned centroids
}

// KMeans clusters points (all of equal dimension) into k groups with
// k-means++ seeding and Lloyd iterations, keeping the best of several
// restarts by inertia. The result is deterministic for a fixed seed.
func KMeans(points [][]float64, k int, cfg KMeansConfig) (KMeansResult, error) {
	n := len(points)
	if k <= 0 || n == 0 || k > n {
		return KMeansResult{}, fmt.Errorf("%w: k=%d with %d points", ErrBadInput, k, n)
	}
	dim := len(points[0])
	for _, p := range points {
		if len(p) != dim {
			return KMeansResult{}, fmt.Errorf("%w: ragged points", ErrBadInput)
		}
	}
	if cfg.MaxIters <= 0 {
		cfg.MaxIters = 100
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	best := KMeansResult{Inertia: math.Inf(1)}
	for r := 0; r < cfg.Restarts; r++ {
		res := kmeansOnce(points, k, dim, cfg.MaxIters, rng)
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(points [][]float64, k, dim, maxIters int, rng *rand.Rand) KMeansResult {
	n := len(points)
	centroids := seedPlusPlus(points, k, dim, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	var inertia float64
	for it := 0; it < maxIters; it++ {
		changed := false
		inertia = 0
		for i, p := range points {
			bi, bd := 0, math.Inf(1)
			for c := range centroids {
				d := sqDist(p, centroids[c])
				if d < bd {
					bi, bd = c, d
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
			inertia += bd
		}
		if !changed && it > 0 {
			break
		}
		// Recompute centroids.
		counts := make([]int, k)
		for c := range centroids {
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				centroids[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from
				// its centroid, a standard fix that avoids dead clusters.
				far, fd := 0, -1.0
				for i, p := range points {
					d := sqDist(p, centroids[assign[i]])
					if d > fd {
						far, fd = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}
	return KMeansResult{Assignments: assign, Centroids: centroids, Inertia: inertia}
}

// seedPlusPlus picks initial centroids with the k-means++ D² weighting.
func seedPlusPlus(points [][]float64, k, dim int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := append([]float64(nil), points[rng.Intn(n)]...)
	centroids = append(centroids, first)
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			idx = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var acc float64
			for i, d := range d2 {
				acc += d
				if acc >= target {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
