package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"hetesim/internal/linalg"
	"hetesim/internal/sparse"
)

// NormalizedCut clusters the n objects of a pairwise similarity matrix into
// k groups with the Normalized Cut relaxation of Shi & Malik, the algorithm
// the paper applies to HeteSim/PathSim similarity matrices in its Table 6
// clustering experiment:
//
//  1. symmetrize S and form the normalized affinity Ŝ = D^-1/2 S D^-1/2;
//  2. take the k leading eigenvectors of Ŝ (orthogonal iteration on the
//     sparse operator — Ŝ has spectrum in [-1, 1]);
//  3. row-normalize the spectral embedding and run k-means++ on it
//     (the Ng–Jordan–Weiss variant).
//
// Zero-degree objects have empty embeddings and gather in one cluster. The
// result is deterministic for a fixed seed.
func NormalizedCut(sim *sparse.Matrix, k int, seed int64) ([]int, error) {
	n, m := sim.Dims()
	if n != m {
		return nil, fmt.Errorf("%w: similarity matrix is %dx%d", ErrBadInput, n, m)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d with %d objects", ErrBadInput, k, n)
	}
	// Symmetrize defensively; HeteSim matrices are symmetric up to
	// rounding, PCRW-style inputs may not be.
	s := sim.Add(sim.Transpose()).Scale(0.5)
	deg := s.RowSums()
	dinv := make([]float64, n)
	for i, d := range deg {
		if d > 0 {
			dinv[i] = 1 / math.Sqrt(d)
		}
	}
	norm := s.ScaleRows(dinv).ScaleCols(dinv)

	rng := rand.New(rand.NewSource(seed))
	seedBlock := linalg.NewDense(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			seedBlock.Set(i, j, rng.NormFloat64())
		}
	}
	mul := func(dst, x []float64) {
		copy(dst, norm.MulVec(x))
	}
	eig, err := linalg.TopKEigen(context.Background(), n, k, mul, -1, seedBlock, 300)
	if err != nil {
		return nil, err
	}
	// Row-normalized spectral embedding.
	points := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, k)
		var nrm float64
		for j := 0; j < k; j++ {
			row[j] = eig.Vectors.At(i, j)
			nrm += row[j] * row[j]
		}
		if nrm > 0 {
			inv := 1 / math.Sqrt(nrm)
			for j := range row {
				row[j] *= inv
			}
		}
		points[i] = row
	}
	res, err := KMeans(points, k, KMeansConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	return res.Assignments, nil
}
