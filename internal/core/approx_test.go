package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// plantedBibGraph builds a bibliographic network with planted community
// structure: conferences belong to one of four topics, authors favor one
// topic, and papers are published mostly inside their lead author's topic.
// The conference-overlap relevance matrix is therefore close to low rank,
// which is exactly the regime the topk-approx plan exploits.
func plantedBibGraph(seed int64, nA, nP, nC int) *hin.Graph {
	rng := rand.New(rand.NewSource(seed))
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	s.MustAddType("term", 'T')
	s.MustAddRelation("mentions", "paper", "term")
	b := hin.NewBuilder(s)
	const topics = 4
	topicOf := func(a int) int { return a % topics }
	for i := 0; i < nP; i++ {
		lead := rng.Intn(nA)
		b.AddEdge("writes", "a"+itoa(lead), "p"+itoa(i))
		if rng.Float64() < 0.5 {
			b.AddEdge("writes", "a"+itoa(rng.Intn(nA)), "p"+itoa(i))
		}
		conf := topicOf(lead) + topics*rng.Intn(nC/topics) // inside the topic
		if rng.Float64() < 0.1 {
			conf = rng.Intn(nC) // cross-topic noise
		}
		b.AddEdge("published_in", "p"+itoa(i), "c"+itoa(conf))
		b.AddEdge("mentions", "p"+itoa(i), "t"+itoa(i%10))
	}
	return b.MustBuild()
}

// recallAt measures |approx ∩ exact| / |exact| over the result index sets.
func recallAt(exact, approx []Scored) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int]bool, len(approx))
	for _, h := range approx {
		in[h.Index] = true
	}
	hit := 0
	for _, h := range exact {
		if in[h.Index] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// TestDifferentialTopKApproxRecall is the recall harness pinning the
// error-budget contract: at the default budget, recall@10 against the
// exact scan stays at or above 0.95 across seeded planted graphs, and when
// the rank reaches the full middle dimension the approximate plan returns
// the exact top-k bit-for-bit (the subspace projection becomes lossless).
// Lower ranks trade recall; the sweep documents the curve stays usable.
func TestDifferentialTopKApproxRecall(t *testing.T) {
	ctx := context.Background()
	const k = 10
	for _, seed := range []int64{3, 19} {
		g := plantedBibGraph(seed, 120, 600, 20)
		p := metapath.MustParse(g.Schema(), "APCPA")
		dim := g.NodeCount("conference")
		for _, normalized := range []bool{true, false} {
			e := NewEngine(g, WithNormalization(normalized))
			sum, n := 0.0, 0
			for src := 0; src < 30; src++ {
				exact, err := e.TopKSearch(ctx, p, src, k, 0)
				if err != nil {
					t.Fatal(err)
				}

				// Default budget: rank clamps to min(20, dim).
				approx, _, err := e.TopKSearchWithPlan(ctx, p, src, k, 0,
					PlanOptions{Force: PlanTopKApprox})
				if err != nil {
					t.Fatal(err)
				}
				sum += recallAt(exact, approx)
				n++

				// Full rank: lossless projection, bitwise-identical top-k.
				full, _, err := e.TopKSearchWithPlan(ctx, p, src, k, 0,
					PlanOptions{Force: PlanTopKApprox, EmbedRank: dim})
				if err != nil {
					t.Fatal(err)
				}
				if len(full) != len(exact) {
					t.Fatalf("seed %d src %d: full-rank approx returned %d, exact %d",
						seed, src, len(full), len(exact))
				}
				for r := range full {
					if full[r] != exact[r] {
						t.Fatalf("seed %d src %d rank %d: full-rank approx %+v, exact %+v",
							seed, src, r, full[r], exact[r])
					}
				}
			}
			if mean := sum / float64(n); mean < 0.95 {
				t.Errorf("seed %d normalized=%v: mean recall@%d = %.3f, want >= 0.95",
					seed, normalized, k, mean)
			}

			// Reduced ranks and over-fetch (looser budgets): recall
			// degrades gracefully, never collapses.
			for _, opts := range []PlanOptions{
				{Force: PlanTopKApprox, EmbedRank: 8},
				{Force: PlanTopKApprox, ErrorBudget: 0.25}, // rank 4, fetch 2k
			} {
				sum, n = 0, 0
				for src := 0; src < 30; src++ {
					exact, err := e.TopKSearch(ctx, p, src, k, 0)
					if err != nil {
						t.Fatal(err)
					}
					approx, _, err := e.TopKSearchWithPlan(ctx, p, src, k, 0, opts)
					if err != nil {
						t.Fatal(err)
					}
					sum += recallAt(exact, approx)
					n++
				}
				if mean := sum / float64(n); mean < 0.6 {
					t.Errorf("seed %d normalized=%v opts %+v: mean recall@%d = %.3f, want >= 0.6",
						seed, normalized, opts, k, mean)
				} else {
					t.Logf("seed %d normalized=%v rank=%d budget=%v: mean recall@%d = %.3f",
						seed, normalized, opts.EmbedRank, opts.ErrorBudget, k, mean)
				}
			}
		}
	}
}

// TestDifferentialTopKApproxExactScores pins the bit-identity property:
// whatever candidates the embedding stage surfaces, every returned score
// equals the exact single-source score for that target bit-for-bit — the
// re-rank runs the identical dot product and normalization as the exact
// scan. Under eps > 0 the approximate plan must also stay phantom-free:
// it never returns a target whose exact score is zero.
func TestDifferentialTopKApproxExactScores(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{13, 47} {
		g := randomBibGraph(seed)
		rng := rand.New(rand.NewSource(seed + 900))
		for _, engine := range []*Engine{NewEngine(g), NewEngine(g, WithNormalization(false))} {
			for _, spec := range []string{"APA", "APVC", "APT", "APVCVPA"} {
				p := metapath.MustParse(g.Schema(), spec)
				nS := g.NodeCount(p.Source())
				for trial := 0; trial < 3; trial++ {
					src := rng.Intn(nS)
					scores, err := engine.SingleSourceByIndex(ctx, p, src)
					if err != nil {
						t.Fatal(err)
					}
					for _, opts := range []PlanOptions{
						{Force: PlanTopKApprox},
						{Force: PlanTopKApprox, EmbedRank: 2},
						{Force: PlanTopKApprox, ErrorBudget: 0.4},
					} {
						got, _, err := engine.TopKSearchWithPlan(ctx, p, src, 5, 0, opts)
						if err != nil {
							t.Fatal(err)
						}
						for _, hit := range got {
							if hit.Score != scores[hit.Index] {
								t.Errorf("seed %d %s src %d opts %+v: target %d scored %v, exact %v (must be bit-identical)",
									seed, spec, src, opts, hit.Index, hit.Score, scores[hit.Index])
							}
						}
					}

					// eps > 0: pruning may shrink scores but never invents
					// targets the exact measure scores zero.
					pruned, _, err := engine.TopKSearchWithPlan(ctx, p, src, 5, 1e-3,
						PlanOptions{Force: PlanTopKApprox})
					if err != nil {
						t.Fatal(err)
					}
					for _, hit := range pruned {
						if scores[hit.Index] == 0 {
							t.Errorf("seed %d %s src %d: eps-pruned approx returned phantom target %d",
								seed, spec, src, hit.Index)
						}
					}
				}
			}
		}
	}
}

// TestTopKApproxPlanRules pins where the new plan is legal and when auto
// selects it: never on pair/single-source shapes, never on cost alone, and
// under a deadline only when the embedding answer actually fits the
// remaining budget — a cold embedding whose build cannot fit falls back.
func TestTopKApproxPlanRules(t *testing.T) {
	g := plantedBibGraph(53, 120, 600, 20)
	p := metapath.MustParse(g.Schema(), "APCPA")
	ctx := context.Background()

	e := NewEngine(g)
	if _, _, err := e.PairWithPlan(ctx, p, 0, 0, PlanOptions{Force: PlanTopKApprox}); !errors.Is(err, ErrPlanNotApplicable) {
		t.Errorf("pair forced topk-approx err = %v, want ErrPlanNotApplicable", err)
	}
	if _, _, err := e.SingleSourceWithPlan(ctx, p, 0, PlanOptions{Force: PlanTopKApprox}); !errors.Is(err, ErrPlanNotApplicable) {
		t.Errorf("single-source forced topk-approx err = %v, want ErrPlanNotApplicable", err)
	}
	if _, _, err := e.TopKSearchWithPlan(ctx, p, 0, 5, 0, PlanOptions{ErrorBudget: 1.5}); err == nil {
		t.Error("error budget 1.5 accepted")
	}

	// No deadline: auto always runs an exact plan, however cheap the
	// approximation looks.
	_, d, err := e.TopKSearchWithPlan(ctx, p, 0, 5, 0, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind == PlanTopKApprox || d.Approximate {
		t.Fatalf("auto topk chose %+v without a deadline", d)
	}

	// Deadline too short for the exact plan but wide enough for the warm
	// embedding plan: proactive downgrade to topk-approx, not Monte Carlo
	// — exact re-ranked scores beat sampled ones. The test derives a
	// planFlopsPerSecond that sandwiches the two candidates' estimates, so
	// it stays correct if the cost model's constants move.
	warm := NewEngine(g)
	opts := PlanOptions{Walks: 200, EmbedRank: 4}
	if _, _, err := warm.TopKSearchWithPlan(ctx, p, 0, 5, 0,
		PlanOptions{Force: PlanTopKApprox, EmbedRank: 4}); err != nil {
		t.Fatal(err)
	}
	if warm.EmbeddingCount() == 0 {
		t.Fatal("forced run built no embedding")
	}
	lp := LogicalPlan{Path: p, Shape: ShapeTopK, Src: 0, K: 5, Opts: opts, h: splitPath(p)}
	cm, err := warm.costModelFor(lp.h)
	if err != nil {
		t.Fatal(err)
	}
	cands := warm.planCandidates(cm, lp)
	ta, ok := findCandidate(cands, PlanTopKApprox)
	if !ok {
		t.Fatalf("no topk-approx candidate in %+v", cands)
	}
	var exactMin PlanEstimate
	for _, c := range cands {
		if c.Kind != PlanMonteCarlo && c.Kind != PlanTopKApprox {
			exactMin = c
			break
		}
	}
	if ta.Flops >= exactMin.Flops {
		t.Fatalf("warm topk-approx estimate (%v flops) not below exact (%v flops); graph too small to sandwich",
			ta.Flops, exactMin.Flops)
	}
	const horizon = 1000.0 // seconds; queries finish instantly against it
	old := planFlopsPerSecond
	planFlopsPerSecond = (ta.Flops + exactMin.Flops) / 2 / horizon
	defer func() { planFlopsPerSecond = old }()
	dctx, cancel := context.WithTimeout(ctx, time.Duration(horizon*float64(time.Second)))
	defer cancel()
	_, d, err = warm.TopKSearchWithPlan(dctx, p, 0, 5, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PlanTopKApprox || !d.Approximate || d.Forced {
		t.Fatalf("warm deadline decision = %+v, want unforced topk-approx downgrade", d)
	}
	if counts := warm.PlanSelections(); counts[string(PlanTopKApprox)] < 2 {
		t.Errorf("plan selections = %v, want topk-approx counted twice", counts)
	}

	// Cold embedding under the same budget: the candidate now carries the
	// factorization cost, cannot fit, and the downgrade goes to Monte
	// Carlo when walks are available — and stays exact without them.
	cold := NewEngine(g)
	_, d, err = cold.TopKSearchWithPlan(dctx, p, 0, 5, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PlanMonteCarlo {
		t.Fatalf("cold deadline decision = %+v, want monte-carlo fallback", d)
	}
	cold2 := NewEngine(g)
	_, d, err = cold2.TopKSearchWithPlan(dctx, p, 0, 5, 0, PlanOptions{EmbedRank: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.Approximate {
		t.Fatalf("cold deadline decision without walks = %+v, want exact", d)
	}
}

// TestTopKApproxCancellation: a canceled context aborts the embedding
// build instead of spinning the eigensolver.
func TestTopKApproxCancellation(t *testing.T) {
	g := plantedBibGraph(7, 60, 300, 20)
	p := metapath.MustParse(g.Schema(), "APCPA")
	e := NewEngine(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := e.TopKSearchWithPlan(ctx, p, 0, 5, 0, PlanOptions{Force: PlanTopKApprox}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRewarmCarriesEmbeddings: embeddings ride through a rewarm when their
// base chain survives unchanged, and are dropped (to rebuild lazily) when
// the mutation dirties the chain they factorize.
func TestRewarmCarriesEmbeddings(t *testing.T) {
	ctx := context.Background()
	g := plantedBibGraph(11, 40, 160, 20)
	p := metapath.MustParse(g.Schema(), "APCPA")
	old := NewEngine(g)
	if _, _, err := old.TopKSearchWithPlan(ctx, p, 0, 5, 0, PlanOptions{Force: PlanTopKApprox}); err != nil {
		t.Fatal(err)
	}
	if old.EmbeddingCount() == 0 {
		t.Fatal("no embedding to carry")
	}

	// A mutation touching a relation outside the path keeps the factorized
	// chain clean: the embedding is carried.
	ng, dirty := applyOps(t, g, []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "mentions", Src: "p0", Dst: "t0", Weight: 2},
	})
	carried := NewEngine(ng)
	stats, err := carried.RewarmFrom(ctx, old, dirty)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EmbedsCarried == 0 || carried.EmbeddingCount() == 0 {
		t.Fatalf("clean rewarm carried no embeddings: %+v", stats)
	}
	// The carried engine must agree with a cold engine on the same graph.
	wantTop, _, err := NewEngine(ng).TopKSearchWithPlan(ctx, p, 0, 5, 0, PlanOptions{Force: PlanTopKApprox})
	if err != nil {
		t.Fatal(err)
	}
	gotTop, _, err := carried.TopKSearchWithPlan(ctx, p, 0, 5, 0, PlanOptions{Force: PlanTopKApprox})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", gotTop) != fmt.Sprintf("%v", wantTop) {
		t.Fatalf("carried engine top-k %v, cold rebuild %v", gotTop, wantTop)
	}

	// A mutation dirtying the factorized chain drops the embedding.
	ng2, dirty2 := applyOps(t, g, []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "published_in", Src: "p0", Dst: "c1", Weight: 1},
	})
	dropped := NewEngine(ng2)
	stats, err = dropped.RewarmFrom(ctx, old, dirty2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EmbedsDropped == 0 {
		t.Fatalf("dirty rewarm dropped no embeddings: %+v", stats)
	}
	if dropped.EmbeddingCount() != 0 {
		t.Fatalf("dirty rewarm kept %d embeddings", dropped.EmbeddingCount())
	}
}
