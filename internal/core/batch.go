package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetesim/internal/metapath"
	"hetesim/internal/obs"
	"hetesim/internal/sparse"
)

// Batch execution: many heterogeneous queries answered in one call, grouped
// by canonical relevance path. Every query on path P needs the same two
// reachable-probability chains PM_PL and PM'_{PR⁻¹} (Equation 8 / Property
// 2: PM_P factors into the per-step transition matrices U_{A1A2}…U_{AlAl+1}),
// so the scheduler pays each group's chain propagation once and fans the
// per-query vector work out over a bounded worker pool. With N same-path
// queries the chain cost amortizes N ways — the batch analogue of Section
// 4.6's offline materialization.
//
// Sharing also crosses group boundaries: half-chains of different paths that
// start with the same step sequence (APA's left half is a prefix of APVPA's,
// and of APCPA's) form a prefix family, and the side planner propagates the
// union of their requested rows once through the shared prefix, resuming each
// longer chain from the shortest family member's state. That is what makes a
// multi-path ensemble over one (src, dst) pair — one query per path, every
// group a singleton — cheaper batched than looped: the per-path groups share
// their common half-chain prefixes even though no two queries share a path.

// BatchKind selects the query shape of one BatchQuery.
type BatchKind string

// The batchable query kinds.
const (
	BatchPair         BatchKind = "pair"          // HeteSim(src, dst | P)
	BatchSingleSource BatchKind = "single_source" // src against every target
	BatchTopK         BatchKind = "topk"          // k best targets of src
)

// BatchQuery is one query inside a batch. Src, Dst are node indices within
// the path's source and target types. K and Eps apply to BatchTopK only.
type BatchQuery struct {
	Kind BatchKind
	Path *metapath.Path
	Src  int
	Dst  int
	K    int
	Eps  float64
}

// BatchResult is the outcome of one BatchQuery, in the batch's order. Err is
// per-query: one failing query never fails its siblings. Shared reports
// whether the scheduler answered the query from shared chain state — either
// group-shared (several queries on one path) or prefix-shared across groups
// (its path's half-chains belong to a family with other paths in the batch).
// It is false for queries with nothing to share and for queries that fell
// back to the solo plan after a preparation failure.
type BatchResult struct {
	Score  float64   // BatchPair
	Scores []float64 // BatchSingleSource, indexed by target node index
	TopK   []Scored  // BatchTopK
	Shared bool
	Plan   string // "solo", "warm", "full", "subset"
	Err    error
}

// BatchStats summarizes how much sharing one batch achieved.
type BatchStats struct {
	Queries       int     // queries submitted
	Groups        int     // distinct canonical path groups
	SharedQueries int     // queries answered from shared chain state
	ChainBuilds   int     // chain propagations performed (full or subset)
	Amortization  float64 // queries per group: N queries / 1 materialization

	// Cross-group half-chain sharing, in row-propagation units (rows
	// propagated × steps applied). NaiveRowSteps is what independent
	// per-group side preparation would have cost; RowSteps is what the
	// side planner actually performed after merging duplicate half-chains,
	// unioning requested rows, and resuming prefix-family chains from
	// shared state. NaiveRowSteps/RowSteps > 1 is proof of sharing across
	// paths with common prefixes.
	RowSteps      int
	NaiveRowSteps int
	PrefixResumes int // builds resumed from a sibling build's prefix state
}

// BatchOptions tunes ExecuteBatch.
type BatchOptions struct {
	// Workers bounds the concurrency of group preparation and per-query
	// execution. <= 0 uses a runtime-sized default.
	Workers int
	// PerQueryTimeout, when positive, bounds each query (and each prefix
	// family's shared chain preparation) with its own context deadline.
	PerQueryTimeout time.Duration
}

// batchSide is one half-chain's shared state: either the full chain matrix
// (rowOf nil, node index == row) or a subset propagation restricted to the
// rows the builds' groups actually need (rowOf maps node index → row).
type batchSide struct {
	m     *sparse.Matrix
	rowOf map[int]int
}

func (s *batchSide) row(i int) *sparse.Vector {
	if s.rowOf != nil {
		i = s.rowOf[i]
	}
	return s.m.Row(i)
}

// batchGroup collects the queries of one canonical path (identical chain
// cache keys on both halves) and the shared state prepared for them.
type batchGroup struct {
	path    *metapath.Path
	h       halves
	queries []int // indices into the batch

	plan       string // "solo", "warm", "full", "subset" (left-side plan)
	left       *batchSide
	right      *batchSide
	rightFull  *sparse.Matrix // full right chain when the group has matrix kinds
	rightNorms []float64
	prepErr    error

	leftB  *sideBuild // planned side builds; nil for solo groups
	rightB *sideBuild
}

// needsRightMatrix reports whether any query in the group requires the full
// right-half matrix (single-source and top-k combine against every target).
func (g *batchGroup) needsRightMatrix(qs []BatchQuery) bool {
	for _, qi := range g.queries {
		if qs[qi].Kind != BatchPair {
			return true
		}
	}
	return false
}

// sideBuild is one distinct half-chain the batch needs, merged over every
// group that requests it (a symmetric path's left and right halves share one
// cache key, and so do equal halves of different groups).
type sideBuild struct {
	c        chain
	key      string   // chain cache key — the merge key
	seq      []string // step keys, plus the middle half-step marker when present
	start    string   // start node type
	needFull bool     // some group needs the full matrix (single-source/top-k)
	rowSet   map[int]struct{}
	groups   []*batchGroup // distinct referencing groups
	naive    int           // row-steps of the independent per-group requests

	family *sideFamily

	// Results, written by the family builder.
	side  *batchSide
	norms []float64 // row norms when needFull && normalized
	plan  string    // "warm", "full", "subset"
	err   error
}

// sideFamily groups the side builds whose step sequences start identically
// (same start type, same first step): the unit of cross-group prefix
// sharing. All subset builds of a family propagate the same unioned row set,
// so a longer chain can resume bit-identically from a shorter one's state.
type sideFamily struct {
	builds []*sideBuild
	rows   []int       // ascending union of the subset builds' requested rows
	rowOf  map[int]int // node index → family row
}

// batchPrep is the cross-group side plan of one batch.
type batchPrep struct {
	builds   map[string]*sideBuild
	order    []string // deterministic build ordering
	families []*sideFamily

	mu            sync.Mutex
	rowSteps      int
	naiveRowSteps int
	prefixResumes int
}

func (bp *batchPrep) addSteps(actual, naive, resumes int) {
	bp.mu.Lock()
	bp.rowSteps += actual
	bp.naiveRowSteps += naive
	bp.prefixResumes += resumes
	bp.mu.Unlock()
}

func seqJoin(seq []string) string { return strings.Join(seq, "\x00") }

// sideSeq is a chain's step-key sequence with the middle half-step appended
// as a final pseudo-step, so prefix comparisons never equate a completed
// odd-path half (middle applied) with a pure step prefix.
func sideSeq(c chain) []string {
	seq := make([]string, 0, len(c.steps)+1)
	for _, s := range c.steps {
		seq = append(seq, stepKey(s))
	}
	if c.middle != nil {
		mk := "SE(" + stepKey(*c.middle) + ")"
		if c.side != 'L' {
			mk = "TE(" + stepKey(*c.middle) + ")"
		}
		seq = append(seq, mk)
	}
	return seq
}

// ExecuteBatch answers a list of heterogeneous queries, grouping them by
// canonical path so each path's chains are propagated exactly once, and
// merging half-chain work across groups whose paths share prefixes. Results
// are positional; each carries its own error (partial-failure semantics). A
// batch-level error is returned only when ctx is already done before any
// work starts.
//
// Scores are bit-identical to the same queries issued alone on an exact
// engine (the default): every plan — solo vector propagation, full chain
// materialization, and the subset propagation (with or without a prefix
// resume, whose row-sequential multiplies are the same computation) —
// accumulates per-entry contributions in the same ascending-index order.
// With WithPruning > 0 the solo vector plan is unpruned while materialized
// chains prune per step, so batch and solo scores may then differ within the
// pruning bound (the same caveat that already applies across PairByIndex and
// AllPairs).
func (e *Engine) ExecuteBatch(ctx context.Context, queries []BatchQuery, opts BatchOptions) ([]BatchResult, BatchStats, error) {
	start := time.Now()
	defer func() { observeQuery("batch", time.Since(start).Seconds()) }()
	stats := BatchStats{Queries: len(queries)}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	results := make([]BatchResult, len(queries))

	// Group by canonical path: both half-chain cache keys. Paths spelled
	// differently but decomposing into the same chains share a group.
	tr := obs.FromContext(ctx)
	sp := tr.Start("batch_plan")
	groups := make(map[string]*batchGroup)
	var order []string // deterministic group ordering for stats and traces
	for i, q := range queries {
		if err := e.validateBatchQuery(q); err != nil {
			results[i].Err = err
			continue
		}
		h := splitPath(q.Path)
		key := e.chainCacheKey(h.left()) + "\x00" + e.chainCacheKey(h.right())
		g, ok := groups[key]
		if !ok {
			g = &batchGroup{path: q.Path, h: h}
			groups[key] = g
			order = append(order, key)
		}
		g.queries = append(g.queries, i)
	}
	stats.Groups = len(groups)
	if stats.Groups > 0 {
		stats.Amortization = float64(stats.Queries) / float64(stats.Groups)
	}
	prep := e.planBatchSides(queries, groups, order)
	if sp != nil {
		sp.SetAttr("queries", strconv.Itoa(len(queries))).
			SetAttr("groups", strconv.Itoa(len(groups))).
			SetAttr("side_builds", strconv.Itoa(len(prep.order))).
			SetAttr("prefix_families", strconv.Itoa(len(prep.families))).End()
	}
	metBatches.Inc()
	metBatchQueries.Add(uint64(len(queries)))
	metBatchSize.Observe(float64(len(queries)))
	metBatchGroups.Observe(float64(len(groups)))
	if stats.Groups > 0 {
		metBatchAmortization.Observe(stats.Amortization)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = defaultBatchWorkers()
	}
	sem := make(chan struct{}, workers)
	var builds atomic.Int64

	// Phase A: build each prefix family's shared chain state, families in
	// parallel, builds within a family shortest-first so longer chains resume
	// from shorter ones. A failed build degrades its groups' queries to the
	// solo plan rather than failing them outright.
	var wg sync.WaitGroup
	for _, f := range prep.families {
		wg.Add(1)
		sem <- struct{}{}
		go func(f *sideFamily) {
			defer wg.Done()
			defer func() { <-sem }()
			pctx, cancel := batchQueryContext(ctx, opts.PerQueryTimeout)
			defer cancel()
			e.buildFamily(pctx, f, &builds, prep)
		}(f)
	}
	wg.Wait()

	// Bind every sharing group to its builds' results.
	for _, key := range order {
		g := groups[key]
		if g.plan == "solo" {
			continue
		}
		switch {
		case g.leftB.err != nil:
			g.prepErr = g.leftB.err
		case g.rightB.err != nil:
			g.prepErr = g.rightB.err
		default:
			g.left = g.leftB.side
			g.plan = g.leftB.plan
			g.right = g.rightB.side
			if g.needsRightMatrix(queries) {
				g.rightFull = g.rightB.side.m
				g.rightNorms = g.rightB.norms
			}
		}
	}

	// Phase B: per-query execution over the shared state, each query under
	// its own deadline.
	var shared atomic.Int64
	for i := range queries {
		if results[i].Err != nil {
			continue // failed validation
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			h := splitPath(queries[i].Path)
			key := e.chainCacheKey(h.left()) + "\x00" + e.chainCacheKey(h.right())
			g := groups[key]
			qctx, cancel := batchQueryContext(ctx, opts.PerQueryTimeout)
			defer cancel()
			results[i] = e.executeBatchQuery(qctx, g, queries[i])
			if results[i].Shared {
				shared.Add(1)
			}
		}(i)
	}
	wg.Wait()

	stats.SharedQueries = int(shared.Load())
	stats.ChainBuilds = int(builds.Load())
	stats.RowSteps = prep.rowSteps
	stats.NaiveRowSteps = prep.naiveRowSteps
	stats.PrefixResumes = prep.prefixResumes
	metBatchShared.Add(uint64(stats.SharedQueries))
	metBatchChainBuilds.Add(uint64(stats.ChainBuilds))
	metBatchRowSteps.Add(uint64(stats.RowSteps))
	metBatchNaiveRowSteps.Add(uint64(stats.NaiveRowSteps))
	metBatchPrefixResumes.Add(uint64(stats.PrefixResumes))
	return results, stats, nil
}

// planBatchSides decides which groups share chain state and merges their
// half-chain requests into deduplicated side builds clustered in prefix
// families. A group shares when it has at least two queries (the classic
// within-group amortization) or when one of its half-chains is mergeable
// (another group requests the same chain) or prefix-related to another
// group's half-chain. A lone query on a path nothing else in the batch
// touches keeps the solo plans — they are already optimal, and equal-row
// subset propagation would only add overhead.
func (e *Engine) planBatchSides(queries []BatchQuery, groups map[string]*batchGroup, order []string) *batchPrep {
	collect := func(include func(g *batchGroup) bool) *batchPrep {
		bp := &batchPrep{builds: make(map[string]*sideBuild)}
		addReq := func(g *batchGroup, c chain, rows []int, needFull bool) *sideBuild {
			key := e.chainCacheKey(c)
			b, ok := bp.builds[key]
			if !ok {
				b = &sideBuild{
					c: c, key: key, seq: sideSeq(c),
					start:  e.chainStart(c),
					rowSet: make(map[int]struct{}),
				}
				bp.builds[key] = b
				bp.order = append(bp.order, key)
			}
			reqRows := len(rows)
			if needFull {
				b.needFull = true
				reqRows = e.g.NodeCount(b.start)
			}
			for _, r := range rows {
				b.rowSet[r] = struct{}{}
			}
			b.naive += reqRows * len(b.seq)
			seen := false
			for _, have := range b.groups {
				if have == g {
					seen = true
					break
				}
			}
			if !seen {
				b.groups = append(b.groups, g)
			}
			return b
		}
		for _, key := range order {
			g := groups[key]
			if !include(g) {
				continue
			}
			srcRows := distinctInts(g.queries, func(qi int) (int, bool) { return queries[qi].Src, true })
			g.leftB = addReq(g, g.h.left(), srcRows, false)
			if g.needsRightMatrix(queries) {
				g.rightB = addReq(g, g.h.right(), nil, true)
			} else {
				dstRows := distinctInts(g.queries, func(qi int) (int, bool) {
					return queries[qi].Dst, queries[qi].Kind == BatchPair
				})
				g.rightB = addReq(g, g.h.right(), dstRows, false)
			}
		}
		// Prefix families: builds sharing a start type and a first step.
		fams := make(map[string]*sideFamily)
		for _, key := range bp.order {
			b := bp.builds[key]
			fk := b.start + "\x00" + b.seq[0]
			f, ok := fams[fk]
			if !ok {
				f = &sideFamily{}
				fams[fk] = f
				bp.families = append(bp.families, f)
			}
			f.builds = append(f.builds, b)
			b.family = f
		}
		for _, f := range bp.families {
			set := make(map[int]struct{})
			for _, b := range f.builds {
				for r := range b.rowSet {
					set[r] = struct{}{}
				}
			}
			f.rows = make([]int, 0, len(set))
			for r := range set {
				f.rows = append(f.rows, r)
			}
			sort.Ints(f.rows)
			f.rowOf = make(map[int]int, len(f.rows))
			for i, r := range f.rows {
				f.rowOf[r] = i
			}
		}
		return bp
	}

	// First pass over every group decides who shares; the second collects
	// builds from the sharing groups only, so solo groups neither inflate
	// row unions nor trigger builds on their own.
	collect(func(*batchGroup) bool { return true })
	for _, key := range order {
		g := groups[key]
		shares := len(g.queries) >= 2 ||
			len(g.leftB.groups) >= 2 || len(g.rightB.groups) >= 2 ||
			len(g.leftB.family.builds) >= 2 || len(g.rightB.family.builds) >= 2
		if !shares {
			g.plan = "solo"
			g.leftB, g.rightB = nil, nil
		}
	}
	return collect(func(g *batchGroup) bool { return g.plan != "solo" })
}

// buildFamily materializes one prefix family's side builds, shortest chain
// first, resuming every longer subset chain from the longest already-built
// prefix state. Subset rows are independent and multiplies are applied in
// the same left-to-right order whether resumed or not, so resumed builds are
// bit-identical to from-scratch ones.
func (e *Engine) buildFamily(ctx context.Context, f *sideFamily, builds *atomic.Int64, bp *batchPrep) {
	sort.Slice(f.builds, func(i, j int) bool {
		if len(f.builds[i].seq) != len(f.builds[j].seq) {
			return len(f.builds[i].seq) < len(f.builds[j].seq)
		}
		return f.builds[i].key < f.builds[j].key
	})
	tr := obs.FromContext(ctx)
	// Step-prefix state shared within the family: seq prefix → propagated
	// subset matrix over f.rows. Intermediates are registered as they are
	// produced, so two chains diverging after a shared prefix still share it
	// even when no build ends exactly at the branch point.
	prefix := make(map[string]*sparse.Matrix)
	for _, b := range f.builds {
		sp := tr.Start("batch_materialize")
		e.buildSide(ctx, b, f, prefix, builds, bp)
		if sp != nil {
			sp.SetAttr("key", b.key).SetAttr("plan", b.plan)
			if b.err != nil {
				sp.SetAttr("error", b.err.Error())
			}
			sp.End()
		}
	}
}

func (e *Engine) buildSide(ctx context.Context, b *sideBuild, f *sideFamily, prefix map[string]*sparse.Matrix, builds *atomic.Int64, bp *batchPrep) {
	if m, ok := e.cacheGet(b.key); ok {
		metCacheHits.Inc()
		b.side, b.plan = &batchSide{m: m}, "warm"
		if b.needFull && e.normalized {
			b.norms = e.chainRowNorms(b.key, m)
		}
		return
	}
	if b.needFull || (e.caching && len(f.rows)*2 >= e.g.NodeCount(b.start)) {
		// The full chain: needed outright for single-source/top-k combines,
		// and worth materializing (it lands in the cache for every later
		// query) when the family touches at least half of the rows anyway.
		builds.Add(1)
		m, err := e.opMatrixChain(ctx, b.c)
		if err != nil {
			b.err = err
			return
		}
		b.side, b.plan = &batchSide{m: m}, "full"
		if b.needFull && e.normalized {
			b.norms = e.chainRowNorms(b.key, m)
		}
		bp.addSteps(e.g.NodeCount(b.start)*len(b.seq), b.naive, 0)
		return
	}

	// Subset propagation of the family rows, resumed from the longest
	// already-built step prefix.
	builds.Add(1)
	tr := obs.FromContext(ctx)
	from := 0
	var pm *sparse.Matrix
	for i := len(b.c.steps); i >= 1; i-- {
		if m, ok := prefix[seqJoin(b.seq[:i])]; ok {
			pm, from = m, i
			break
		}
	}
	if pm == nil {
		// Seed with the selector matrix directly — one unit entry per
		// requested row — so subset preparation costs O(|rows|) regardless
		// of the node count.
		seed := make([]sparse.Triplet, len(f.rows))
		for r, node := range f.rows {
			seed[r] = sparse.Triplet{Row: r, Col: node, Val: 1}
		}
		pm = sparse.New(len(f.rows), e.g.NodeCount(b.start), seed)
	}
	applied := 0
	err := e.propagateFrom(ctx, b.c, from, func(u *sparse.Matrix, label, prefixKey string) error {
		sp := tr.Start("chain_multiply")
		pm = pm.MulAuto(u)
		if sp != nil {
			spanMatrixAttrs(sp, b.c.side, label, pm).End()
		}
		applied++
		if prefixKey != "" { // pure step prefix: shareable within the family
			prefix[seqJoin(b.seq[:from+applied])] = pm
		}
		return nil
	})
	resumes := 0
	if from > 0 {
		resumes = 1
	}
	bp.addSteps(len(f.rows)*applied, b.naive, resumes)
	if err != nil {
		b.err = err
		return
	}
	b.side, b.plan = &batchSide{m: pm, rowOf: f.rowOf}, "subset"
}

func (e *Engine) validateBatchQuery(q BatchQuery) error {
	if q.Path == nil {
		return fmt.Errorf("core: batch query has no path")
	}
	switch q.Kind {
	case BatchPair:
		if err := e.checkIndex(q.Path.Source(), q.Src); err != nil {
			return err
		}
		return e.checkIndex(q.Path.Target(), q.Dst)
	case BatchSingleSource:
		return e.checkIndex(q.Path.Source(), q.Src)
	case BatchTopK:
		if q.K <= 0 {
			return fmt.Errorf("core: TopKSearch k=%d must be positive", q.K)
		}
		if q.Eps < 0 || q.Eps >= 1 {
			return fmt.Errorf("core: TopKSearch eps=%v outside [0,1)", q.Eps)
		}
		return e.checkIndex(q.Path.Source(), q.Src)
	default:
		return fmt.Errorf("core: unknown batch query kind %q", q.Kind)
	}
}

// executeBatchQuery answers one query, preferring the group's shared state
// and degrading to the solo plan when the group has nothing to share or its
// preparation failed.
func (e *Engine) executeBatchQuery(ctx context.Context, g *batchGroup, q BatchQuery) BatchResult {
	if g.plan == "solo" || g.prepErr != nil || g.left == nil {
		res := e.executeSoloQuery(ctx, q)
		res.Plan = "solo"
		return res
	}
	var res BatchResult
	res.Shared = true
	res.Plan = g.plan
	switch q.Kind {
	case BatchPair:
		l := g.left.row(q.Src)
		r := g.right.row(q.Dst)
		if e.normalized {
			res.Score = l.Cosine(r)
		} else {
			res.Score = l.Dot(r)
		}
	case BatchSingleSource:
		left := g.left.row(q.Src)
		res.Scores = e.combineSingleSource(left, g.rightFull, g.rightNorms)
	case BatchTopK:
		left := g.left.row(q.Src)
		topk, err := e.topKFrom(ctx, q.Path, g.h, left, q.K, q.Eps)
		if err != nil {
			res.Err = err
			res.Shared = false
			return res
		}
		res.TopK = topk
	}
	return res
}

// executeSoloQuery answers one query through the ordinary solo entry points.
func (e *Engine) executeSoloQuery(ctx context.Context, q BatchQuery) BatchResult {
	var res BatchResult
	switch q.Kind {
	case BatchPair:
		res.Score, res.Err = e.PairByIndex(ctx, q.Path, q.Src, q.Dst)
	case BatchSingleSource:
		res.Scores, res.Err = e.SingleSourceByIndex(ctx, q.Path, q.Src)
	case BatchTopK:
		res.TopK, res.Err = e.TopKSearch(ctx, q.Path, q.Src, q.K, q.Eps)
	default:
		res.Err = fmt.Errorf("core: unknown batch query kind %q", q.Kind)
	}
	return res
}

// combineSingleSource combines a propagated left distribution with the full
// right-half matrix — the shared combine/normalize of SingleSourceByIndex,
// factored so batch and solo run the same code and produce bit-identical
// scores. rightNorms may be nil on an unnormalized engine.
func (e *Engine) combineSingleSource(left *sparse.Vector, pmr *sparse.Matrix, rightNorms []float64) []float64 {
	scores := pmr.MulVec(left.Dense())
	if e.normalized {
		normalizeSingleSource(scores, left.Norm(), rightNorms)
	}
	return scores
}

// batchQueryContext derives a per-query (or per-family-preparation) context.
func batchQueryContext(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// distinctInts collects the distinct accepted values over a group's queries,
// in ascending order (deterministic subset row layout).
func distinctInts(queryIdx []int, get func(qi int) (int, bool)) []int {
	seen := make(map[int]struct{}, len(queryIdx))
	var out []int
	for _, qi := range queryIdx {
		v, ok := get(qi)
		if !ok {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func defaultBatchWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	if n > 16 {
		return 16
	}
	return n
}
