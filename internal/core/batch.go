package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hetesim/internal/metapath"
	"hetesim/internal/obs"
	"hetesim/internal/sparse"
)

// Batch execution: many heterogeneous queries answered in one call, grouped
// by canonical relevance path. Every query on path P needs the same two
// reachable-probability chains PM_PL and PM'_{PR⁻¹} (Equation 8 / Property
// 2: PM_P factors into the per-step transition matrices U_{A1A2}…U_{AlAl+1}),
// so the scheduler pays each group's chain propagation once and fans the
// per-query vector work out over a bounded worker pool. With N same-path
// queries the chain cost amortizes N ways — the batch analogue of Section
// 4.6's offline materialization.

// BatchKind selects the query shape of one BatchQuery.
type BatchKind string

// The batchable query kinds.
const (
	BatchPair         BatchKind = "pair"          // HeteSim(src, dst | P)
	BatchSingleSource BatchKind = "single_source" // src against every target
	BatchTopK         BatchKind = "topk"          // k best targets of src
)

// BatchQuery is one query inside a batch. Src, Dst are node indices within
// the path's source and target types. K and Eps apply to BatchTopK only.
type BatchQuery struct {
	Kind BatchKind
	Path *metapath.Path
	Src  int
	Dst  int
	K    int
	Eps  float64
}

// BatchResult is the outcome of one BatchQuery, in the batch's order. Err is
// per-query: one failing query never fails its siblings. Shared reports
// whether the scheduler answered the query from group-shared chain state
// (false for singleton groups and for queries that fell back to the solo
// plan after a group preparation failure).
type BatchResult struct {
	Score  float64   // BatchPair
	Scores []float64 // BatchSingleSource, indexed by target node index
	TopK   []Scored  // BatchTopK
	Shared bool
	Err    error
}

// BatchStats summarizes how much sharing one batch achieved.
type BatchStats struct {
	Queries       int     // queries submitted
	Groups        int     // distinct canonical path groups
	SharedQueries int     // queries answered from group-shared chains
	ChainBuilds   int     // chain propagations performed (full or subset)
	Amortization  float64 // queries per group: N queries / 1 materialization
}

// BatchOptions tunes ExecuteBatch.
type BatchOptions struct {
	// Workers bounds the concurrency of group preparation and per-query
	// execution. <= 0 uses a runtime-sized default.
	Workers int
	// PerQueryTimeout, when positive, bounds each query (and each group's
	// shared chain preparation) with its own context deadline.
	PerQueryTimeout time.Duration
}

// batchSide is one half-chain's shared state: either the full chain matrix
// (rowOf nil, node index == row) or a subset propagation restricted to the
// rows the group actually needs (rowOf maps node index → row).
type batchSide struct {
	m     *sparse.Matrix
	rowOf map[int]int
}

func (s *batchSide) row(i int) *sparse.Vector {
	if s.rowOf != nil {
		i = s.rowOf[i]
	}
	return s.m.Row(i)
}

// batchGroup collects the queries of one canonical path (identical chain
// cache keys on both halves) and the shared state prepared for them.
type batchGroup struct {
	path    *metapath.Path
	h       halves
	queries []int // indices into the batch

	plan       string // "solo", "warm", "full", "subset" (left-side plan)
	left       *batchSide
	right      *batchSide
	rightFull  *sparse.Matrix // full right chain when the group has matrix kinds
	rightNorms []float64
	prepErr    error
}

// needsRightMatrix reports whether any query in the group requires the full
// right-half matrix (single-source and top-k combine against every target).
func (g *batchGroup) needsRightMatrix(qs []BatchQuery) bool {
	for _, qi := range g.queries {
		if qs[qi].Kind != BatchPair {
			return true
		}
	}
	return false
}

// ExecuteBatch answers a list of heterogeneous queries, grouping them by
// canonical path so each path's chains are propagated exactly once. Results
// are positional; each carries its own error (partial-failure semantics). A
// batch-level error is returned only when ctx is already done before any
// work starts.
//
// Scores are bit-identical to the same queries issued alone on an exact
// engine (the default): every plan — solo vector propagation, full chain
// materialization, and the group subset propagation — accumulates per-entry
// contributions in the same ascending-index order. With WithPruning > 0 the
// solo vector plan is unpruned while materialized chains prune per step, so
// batch and solo scores may then differ within the pruning bound (the same
// caveat that already applies across PairByIndex and AllPairs).
func (e *Engine) ExecuteBatch(ctx context.Context, queries []BatchQuery, opts BatchOptions) ([]BatchResult, BatchStats, error) {
	start := time.Now()
	defer func() { observeQuery("batch", time.Since(start).Seconds()) }()
	stats := BatchStats{Queries: len(queries)}
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	results := make([]BatchResult, len(queries))

	// Group by canonical path: both half-chain cache keys. Paths spelled
	// differently but decomposing into the same chains share a group.
	tr := obs.FromContext(ctx)
	sp := tr.Start("batch_plan")
	groups := make(map[string]*batchGroup)
	var order []string // deterministic group ordering for stats and traces
	for i, q := range queries {
		if err := e.validateBatchQuery(q); err != nil {
			results[i].Err = err
			continue
		}
		h := splitPath(q.Path)
		key := e.chainCacheKey(h.left()) + "\x00" + e.chainCacheKey(h.right())
		g, ok := groups[key]
		if !ok {
			g = &batchGroup{path: q.Path, h: h}
			groups[key] = g
			order = append(order, key)
		}
		g.queries = append(g.queries, i)
	}
	stats.Groups = len(groups)
	if stats.Groups > 0 {
		stats.Amortization = float64(stats.Queries) / float64(stats.Groups)
	}
	if sp != nil {
		sp.SetAttr("queries", strconv.Itoa(len(queries))).
			SetAttr("groups", strconv.Itoa(len(groups))).End()
	}
	metBatches.Inc()
	metBatchQueries.Add(uint64(len(queries)))
	metBatchSize.Observe(float64(len(queries)))
	metBatchGroups.Observe(float64(len(groups)))
	if stats.Groups > 0 {
		metBatchAmortization.Observe(stats.Amortization)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = defaultBatchWorkers()
	}
	sem := make(chan struct{}, workers)
	var builds atomic.Int64

	// Phase A: prepare each group's shared chain state in parallel. A group
	// of one query skips preparation — the solo plans are already optimal —
	// and a failed preparation degrades its queries to the solo plan rather
	// than failing them outright.
	var wg sync.WaitGroup
	for _, key := range order {
		g := groups[key]
		if len(g.queries) < 2 {
			g.plan = "solo"
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			pctx, cancel := batchQueryContext(ctx, opts.PerQueryTimeout)
			defer cancel()
			g.prepErr = e.prepareGroup(pctx, g, queries, &builds)
		}()
	}
	wg.Wait()

	// Phase B: per-query execution over the shared state, each query under
	// its own deadline.
	var shared atomic.Int64
	for i := range queries {
		if results[i].Err != nil {
			continue // failed validation
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			h := splitPath(queries[i].Path)
			key := e.chainCacheKey(h.left()) + "\x00" + e.chainCacheKey(h.right())
			g := groups[key]
			qctx, cancel := batchQueryContext(ctx, opts.PerQueryTimeout)
			defer cancel()
			results[i] = e.executeBatchQuery(qctx, g, queries[i])
			if results[i].Shared {
				shared.Add(1)
			}
		}(i)
	}
	wg.Wait()

	stats.SharedQueries = int(shared.Load())
	stats.ChainBuilds = int(builds.Load())
	metBatchShared.Add(uint64(stats.SharedQueries))
	metBatchChainBuilds.Add(uint64(stats.ChainBuilds))
	return results, stats, nil
}

func (e *Engine) validateBatchQuery(q BatchQuery) error {
	if q.Path == nil {
		return fmt.Errorf("core: batch query has no path")
	}
	switch q.Kind {
	case BatchPair:
		if err := e.checkIndex(q.Path.Source(), q.Src); err != nil {
			return err
		}
		return e.checkIndex(q.Path.Target(), q.Dst)
	case BatchSingleSource:
		return e.checkIndex(q.Path.Source(), q.Src)
	case BatchTopK:
		if q.K <= 0 {
			return fmt.Errorf("core: TopKSearch k=%d must be positive", q.K)
		}
		if q.Eps < 0 || q.Eps >= 1 {
			return fmt.Errorf("core: TopKSearch eps=%v outside [0,1)", q.Eps)
		}
		return e.checkIndex(q.Path.Source(), q.Src)
	default:
		return fmt.Errorf("core: unknown batch query kind %q", q.Kind)
	}
}

// prepareGroup materializes the shared chain state of one multi-query group.
// The left side serves rows to every query; the plan picks, per side, among
// a cache hit (warm), a full chain materialization (cached for later — worth
// it when the group touches a large fraction of the rows), and an uncached
// subset propagation of only the needed rows (the cheap plan for small
// groups on large types).
func (e *Engine) prepareGroup(ctx context.Context, g *batchGroup, queries []BatchQuery, builds *atomic.Int64) error {
	tr := obs.FromContext(ctx)
	sp := tr.Start("batch_materialize")
	srcRows := distinctInts(g.queries, func(qi int) (int, bool) { return queries[qi].Src, true })
	left, plan, err := e.prepareSide(ctx, g.h.left(), srcRows, builds)
	if err != nil {
		if sp != nil {
			sp.SetAttr("path", g.path.String()).SetAttr("error", err.Error()).End()
		}
		return err
	}
	g.left = left
	g.plan = plan

	if g.needsRightMatrix(queries) {
		// Single-source and top-k combine against every target: the full
		// right chain is needed regardless of group size, exactly as solo.
		pmr, err := e.opMatrixChain(ctx, g.h.right())
		if err != nil {
			return err
		}
		g.rightFull = pmr
		g.right = &batchSide{m: pmr}
		if e.normalized {
			g.rightNorms = e.chainRowNorms(e.chainCacheKey(g.h.right()), pmr)
		}
	} else {
		dstRows := distinctInts(g.queries, func(qi int) (int, bool) {
			return queries[qi].Dst, queries[qi].Kind == BatchPair
		})
		right, _, err := e.prepareSide(ctx, g.h.right(), dstRows, builds)
		if err != nil {
			return err
		}
		g.right = right
	}
	if sp != nil {
		sp.SetAttr("path", g.path.String()).
			SetAttr("plan", g.plan).
			SetAttr("queries", strconv.Itoa(len(g.queries))).End()
	}
	return nil
}

// prepareSide builds one half-chain's shared state for the given distinct
// node rows. The subset plan rides on opSubsetChain, which (like the solo
// vector plan, and unlike full materialization) never prunes — so batch pair
// scores match the solo vector plan exactly even under WithPruning.
func (e *Engine) prepareSide(ctx context.Context, c chain, rows []int, builds *atomic.Int64) (*batchSide, string, error) {
	if m, ok := e.cacheGet(e.chainCacheKey(c)); ok {
		metCacheHits.Inc()
		return &batchSide{m: m}, "warm", nil
	}
	total := e.g.NodeCount(e.chainStart(c))
	// When the group needs at least half of the rows, materialize the full
	// chain: barely more work than the subset, and it lands in the cache
	// for every later query on the path.
	if e.caching && len(rows)*2 >= total {
		builds.Add(1)
		m, err := e.opMatrixChain(ctx, c)
		if err != nil {
			return nil, "", err
		}
		return &batchSide{m: m}, "full", nil
	}
	builds.Add(1)
	m, err := e.opSubsetChain(ctx, rows, c)
	if err != nil {
		return nil, "", err
	}
	rowOf := make(map[int]int, len(rows))
	for r, node := range rows {
		rowOf[node] = r
	}
	return &batchSide{m: m, rowOf: rowOf}, "subset", nil
}

// executeBatchQuery answers one query, preferring the group's shared state
// and degrading to the solo plan when the group is a singleton or its
// preparation failed.
func (e *Engine) executeBatchQuery(ctx context.Context, g *batchGroup, q BatchQuery) BatchResult {
	if g.plan == "solo" || g.prepErr != nil || g.left == nil {
		return e.executeSoloQuery(ctx, q)
	}
	var res BatchResult
	res.Shared = true
	switch q.Kind {
	case BatchPair:
		l := g.left.row(q.Src)
		r := g.right.row(q.Dst)
		if e.normalized {
			res.Score = l.Cosine(r)
		} else {
			res.Score = l.Dot(r)
		}
	case BatchSingleSource:
		left := g.left.row(q.Src)
		res.Scores = e.combineSingleSource(left, g.rightFull, g.rightNorms)
	case BatchTopK:
		left := g.left.row(q.Src)
		topk, err := e.topKFrom(ctx, q.Path, g.h, left, q.K, q.Eps)
		if err != nil {
			res.Err = err
			res.Shared = false
			return res
		}
		res.TopK = topk
	}
	return res
}

// executeSoloQuery answers one query through the ordinary solo entry points.
func (e *Engine) executeSoloQuery(ctx context.Context, q BatchQuery) BatchResult {
	var res BatchResult
	switch q.Kind {
	case BatchPair:
		res.Score, res.Err = e.PairByIndex(ctx, q.Path, q.Src, q.Dst)
	case BatchSingleSource:
		res.Scores, res.Err = e.SingleSourceByIndex(ctx, q.Path, q.Src)
	case BatchTopK:
		res.TopK, res.Err = e.TopKSearch(ctx, q.Path, q.Src, q.K, q.Eps)
	default:
		res.Err = fmt.Errorf("core: unknown batch query kind %q", q.Kind)
	}
	return res
}

// combineSingleSource combines a propagated left distribution with the full
// right-half matrix — the shared combine/normalize of SingleSourceByIndex,
// factored so batch and solo run the same code and produce bit-identical
// scores. rightNorms may be nil on an unnormalized engine.
func (e *Engine) combineSingleSource(left *sparse.Vector, pmr *sparse.Matrix, rightNorms []float64) []float64 {
	scores := pmr.MulVec(left.Dense())
	if e.normalized {
		normalizeSingleSource(scores, left.Norm(), rightNorms)
	}
	return scores
}

// batchQueryContext derives a per-query (or per-group-preparation) context.
func batchQueryContext(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// distinctInts collects the distinct accepted values over a group's queries,
// in ascending order (deterministic subset row layout).
func distinctInts(queryIdx []int, get func(qi int) (int, bool)) []int {
	seen := make(map[int]struct{}, len(queryIdx))
	var out []int
	for _, qi := range queryIdx {
		v, ok := get(qi)
		if !ok {
			continue
		}
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

func defaultBatchWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	if n > 16 {
		return 16
	}
	return n
}
