package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// batchWorkload builds the mixed query set of the equivalence tests:
// even- and odd-path pairs, single-source scans, and top-k searches
// (exact and pruned), with repeated sources so groups genuinely share rows.
func batchWorkload(tb testing.TB, seed int64, e *Engine) []BatchQuery {
	tb.Helper()
	g := e.Graph()
	rng := rand.New(rand.NewSource(seed))
	mustPath := func(spec string) *metapath.Path {
		return metapath.MustParse(g.Schema(), spec)
	}
	even := mustPath("APVCVPA")
	odd := mustPath("APVC")
	ssPath := mustPath("APV")
	tkPath := mustPath("APA")

	nA := g.NodeCount("author")
	nC := g.NodeCount("conference")
	var qs []BatchQuery
	for i := 0; i < 20; i++ {
		qs = append(qs, BatchQuery{Kind: BatchPair, Path: even, Src: rng.Intn(nA), Dst: rng.Intn(nA)})
	}
	for i := 0; i < 6; i++ {
		qs = append(qs, BatchQuery{Kind: BatchPair, Path: odd, Src: rng.Intn(nA), Dst: rng.Intn(nC)})
	}
	for i := 0; i < 4; i++ {
		qs = append(qs, BatchQuery{Kind: BatchSingleSource, Path: ssPath, Src: rng.Intn(nA)})
	}
	for i := 0; i < 4; i++ {
		eps := 0.0
		if i%2 == 1 {
			eps = 1e-3
		}
		qs = append(qs, BatchQuery{Kind: BatchTopK, Path: tkPath, Src: rng.Intn(nA), K: 3, Eps: eps})
	}
	return qs
}

// assertBatchMatchesSolo runs the workload through ExecuteBatch on one
// fresh engine and through the solo entry points on another, and demands
// bit-identical scores — the scheduler's core contract.
func assertBatchMatchesSolo(t *testing.T, batchEngine, soloEngine *Engine, qs []BatchQuery, workers int) BatchStats {
	t.Helper()
	ctx := context.Background()
	results, stats, err := batchEngine.ExecuteBatch(ctx, qs, BatchOptions{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(qs) {
		t.Fatalf("got %d results for %d queries", len(results), len(qs))
	}
	for i, q := range qs {
		res := results[i]
		if res.Err != nil {
			t.Fatalf("query %d (%s %s): %v", i, q.Kind, q.Path, res.Err)
		}
		switch q.Kind {
		case BatchPair:
			want, err := soloEngine.PairByIndex(ctx, q.Path, q.Src, q.Dst)
			if err != nil {
				t.Fatal(err)
			}
			if res.Score != want {
				t.Errorf("query %d pair(%d,%d|%s): batch %v, solo %v (must be bit-identical)",
					i, q.Src, q.Dst, q.Path, res.Score, want)
			}
		case BatchSingleSource:
			want, err := soloEngine.SingleSourceByIndex(ctx, q.Path, q.Src)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Scores) != len(want) {
				t.Fatalf("query %d: %d scores, want %d", i, len(res.Scores), len(want))
			}
			for b := range want {
				if res.Scores[b] != want[b] {
					t.Errorf("query %d single_source(%d|%s) target %d: batch %v, solo %v",
						i, q.Src, q.Path, b, res.Scores[b], want[b])
				}
			}
		case BatchTopK:
			want, err := soloEngine.TopKSearch(ctx, q.Path, q.Src, q.K, q.Eps)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.TopK) != len(want) {
				t.Fatalf("query %d: %d hits, want %d", i, len(res.TopK), len(want))
			}
			for r := range want {
				if res.TopK[r] != want[r] {
					t.Errorf("query %d topk(%d|%s) rank %d: batch %+v, solo %+v",
						i, q.Src, q.Path, r, res.TopK[r], want[r])
				}
			}
		}
	}
	return stats
}

// TestBatchMatchesSoloBitIdentical is the scheduler's equivalence
// guarantee: a batch on a cold engine scores every query bit-identically
// to the same queries issued alone, normalized and raw alike.
func TestBatchMatchesSoloBitIdentical(t *testing.T) {
	for _, seed := range []int64{71, 72} {
		g := randomBibGraph(seed)
		qs := batchWorkload(t, seed+100, NewEngine(g))

		stats := assertBatchMatchesSolo(t, NewEngine(g), NewEngine(g), qs, 4)
		if stats.Queries != len(qs) {
			t.Errorf("stats.Queries = %d, want %d", stats.Queries, len(qs))
		}
		if stats.Groups != 4 {
			t.Errorf("stats.Groups = %d, want 4 (one per distinct path)", stats.Groups)
		}
		if stats.SharedQueries != len(qs) {
			t.Errorf("stats.SharedQueries = %d, want %d (every group has >1 query)", stats.SharedQueries, len(qs))
		}
		if stats.ChainBuilds == 0 {
			t.Error("cold batch reported zero chain builds")
		}

		rawBatch := NewEngine(g, WithNormalization(false))
		rawSolo := NewEngine(g, WithNormalization(false))
		assertBatchMatchesSolo(t, rawBatch, rawSolo, qs, 2)
	}
}

// TestBatchSingletonGroupsUseSoloPlan: a batch of one query per path takes
// the solo plan (no shared state, nothing to amortize) and still answers
// identically.
func TestBatchSingletonGroupsUseSoloPlan(t *testing.T) {
	g := randomBibGraph(73)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APA")
	qs := []BatchQuery{{Kind: BatchPair, Path: p, Src: 0, Dst: 1}}
	results, stats, err := e.ExecuteBatch(context.Background(), qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if results[0].Shared {
		t.Error("singleton group reported Shared = true")
	}
	want, err := NewEngine(g).PairByIndex(context.Background(), p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Score != want {
		t.Errorf("singleton batch score %v, solo %v", results[0].Score, want)
	}
	if stats.Groups != 1 || stats.SharedQueries != 0 || stats.ChainBuilds != 0 {
		t.Errorf("stats = %+v, want 1 group, 0 shared, 0 builds", stats)
	}
}

// TestBatchPartialFailure: one bad query fails in place; its siblings —
// including ones in the same group — still succeed, and the batch-level
// error stays nil.
func TestBatchPartialFailure(t *testing.T) {
	g := randomBibGraph(74)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APA")
	nA := g.NodeCount("author")
	qs := []BatchQuery{
		{Kind: BatchPair, Path: p, Src: 0, Dst: 1},
		{Kind: BatchPair, Path: p, Src: nA + 5, Dst: 0}, // source out of range
		{Kind: BatchTopK, Path: p, Src: 0, K: 0},        // k must be positive
		{Kind: BatchKind("bogus"), Path: p, Src: 0},     // unknown kind
		{Kind: BatchPair, Path: nil, Src: 0, Dst: 0},    // no path
		{Kind: BatchPair, Path: p, Src: 1, Dst: 0},
	}
	results, _, err := e.ExecuteBatch(context.Background(), qs, BatchOptions{})
	if err != nil {
		t.Fatalf("batch-level error for per-query failures: %v", err)
	}
	for _, i := range []int{1, 2, 3, 4} {
		if results[i].Err == nil {
			t.Errorf("query %d: want an error", i)
		}
	}
	for _, i := range []int{0, 5} {
		if results[i].Err != nil {
			t.Errorf("query %d failed alongside its bad siblings: %v", i, results[i].Err)
		}
	}
	want, err := NewEngine(g).PairByIndex(context.Background(), p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Score != want {
		t.Errorf("surviving query scored %v, solo %v", results[0].Score, want)
	}
}

// TestBatchWarmReuse: after Precompute the group preparation is pure cache
// reuse — zero chain builds, every query still shared.
func TestBatchWarmReuse(t *testing.T) {
	g := randomBibGraph(75)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	if err := e.Precompute(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	nA := g.NodeCount("author")
	var qs []BatchQuery
	for i := 0; i < 8; i++ {
		qs = append(qs, BatchQuery{Kind: BatchPair, Path: p, Src: i % nA, Dst: (i + 1) % nA})
	}
	results, stats, err := e.ExecuteBatch(context.Background(), qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ChainBuilds != 0 {
		t.Errorf("warm batch performed %d chain builds, want 0", stats.ChainBuilds)
	}
	if stats.SharedQueries != len(qs) {
		t.Errorf("SharedQueries = %d, want %d", stats.SharedQueries, len(qs))
	}
	solo := NewEngine(g)
	for i, q := range qs {
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
		want, err := solo.PairByIndex(context.Background(), p, q.Src, q.Dst)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Score != want {
			t.Errorf("warm query %d: batch %v, solo %v", i, results[i].Score, want)
		}
	}
}

// TestBatchGroupingStats pins the amortization arithmetic: 64 queries on
// one path plus 3 on another form exactly two groups.
func TestBatchGroupingStats(t *testing.T) {
	g := randomBibGraph(76)
	e := NewEngine(g)
	pairPath := metapath.MustParse(g.Schema(), "APTPA")
	ssPath := metapath.MustParse(g.Schema(), "APV")
	nA := g.NodeCount("author")
	var qs []BatchQuery
	for i := 0; i < 64; i++ {
		qs = append(qs, BatchQuery{Kind: BatchPair, Path: pairPath, Src: i % nA, Dst: (i * 3) % nA})
	}
	for i := 0; i < 3; i++ {
		qs = append(qs, BatchQuery{Kind: BatchSingleSource, Path: ssPath, Src: i % nA})
	}
	_, stats, err := e.ExecuteBatch(context.Background(), qs, BatchOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries != 67 || stats.Groups != 2 {
		t.Fatalf("stats = %+v, want 67 queries in 2 groups", stats)
	}
	if stats.Amortization != 67.0/2 {
		t.Errorf("Amortization = %v, want %v", stats.Amortization, 67.0/2)
	}
}

// TestBatchPrecanceledContext: a context canceled before any work starts
// is the one batch-level failure.
func TestBatchPrecanceledContext(t *testing.T) {
	g := randomBibGraph(77)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APA")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := e.ExecuteBatch(ctx, []BatchQuery{{Kind: BatchPair, Path: p, Src: 0, Dst: 0}}, BatchOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestBatchPerQueryTimeout: an already-expired per-query budget fails
// every query with DeadlineExceeded — individually, not at batch level.
func TestBatchPerQueryTimeout(t *testing.T) {
	g := randomBibGraph(78)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	var qs []BatchQuery
	for i := 0; i < 4; i++ {
		qs = append(qs, BatchQuery{Kind: BatchPair, Path: p, Src: 0, Dst: i % g.NodeCount("author")})
	}
	results, _, err := e.ExecuteBatch(context.Background(), qs, BatchOptions{PerQueryTimeout: time.Nanosecond})
	if err != nil {
		t.Fatalf("per-query deadlines must not fail the batch: %v", err)
	}
	for i, res := range results {
		if !errors.Is(res.Err, context.DeadlineExceeded) {
			t.Errorf("query %d: err = %v, want context.DeadlineExceeded", i, res.Err)
		}
	}
}

// TestBatchEquivalentPathSpellingsShareAGroup: grouping is by canonical
// chain keys, so the same path parsed from different spellings lands in
// one group.
func TestBatchEquivalentPathSpellingsShareAGroup(t *testing.T) {
	g := randomBibGraph(79)
	e := NewEngine(g)
	p1 := metapath.MustParse(g.Schema(), "APA")
	p2 := metapath.MustParse(g.Schema(), "author>paper>author")
	qs := []BatchQuery{
		{Kind: BatchPair, Path: p1, Src: 0, Dst: 1},
		{Kind: BatchPair, Path: p2, Src: 1, Dst: 0},
	}
	_, stats, err := e.ExecuteBatch(context.Background(), qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Groups != 1 {
		t.Errorf("Groups = %d, want 1 (spellings of the same path)", stats.Groups)
	}
	if stats.SharedQueries != 2 {
		t.Errorf("SharedQueries = %d, want 2", stats.SharedQueries)
	}
}

// crossPathGraph builds a bibliographic graph with enough authors that the
// side planner prefers subset propagation over full materialization for a
// two-row family.
func crossPathGraph(tb testing.TB, seed int64) *Engine {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddType("term", 'T')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	s.MustAddRelation("mentions", "paper", "term")
	b := hin.NewBuilder(s)
	nA, nP, nV, nT := 20, 40, 6, 8
	for i := 0; i < nP; i++ {
		for k := 0; k < 1+rng.Intn(3); k++ {
			b.AddEdge("writes", "a"+itoa(rng.Intn(nA)), "p"+itoa(i))
		}
		b.AddEdge("published_in", "p"+itoa(i), "v"+itoa(rng.Intn(nV)))
		b.AddEdge("mentions", "p"+itoa(i), "t"+itoa(rng.Intn(nT)))
	}
	for i := 0; i < nV; i++ {
		b.AddEdge("part_of", "v"+itoa(i), "c"+itoa(rng.Intn(2)))
	}
	return NewEngine(b.MustBuild(), WithNormalization(true))
}

// TestBatchCrossGroupSharing: one query per path — every group a singleton —
// on paths sharing a common prefix still shares work: the side planner merges
// the half-chain requests into one prefix family, propagates the unioned rows
// through the shared first step once, and resumes the longer chains from that
// state. This is the multi-path relevance ensemble shape: nothing shares a
// path, everything shares a prefix.
func TestBatchCrossGroupSharing(t *testing.T) {
	e := crossPathGraph(t, 41)
	g := e.Graph()
	paths := []*metapath.Path{
		metapath.MustParse(g.Schema(), "APA"),
		metapath.MustParse(g.Schema(), "APVPA"),
		metapath.MustParse(g.Schema(), "APTPA"),
	}
	src, dst := 1, 3
	qs := make([]BatchQuery, len(paths))
	for i, p := range paths {
		qs[i] = BatchQuery{Kind: BatchPair, Path: p, Src: src, Dst: dst}
	}
	results, stats, err := e.ExecuteBatch(context.Background(), qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Groups != len(paths) {
		t.Fatalf("groups = %d, want %d singleton groups", stats.Groups, len(paths))
	}
	if stats.SharedQueries != len(paths) {
		t.Errorf("shared queries = %d, want all %d (prefix family spans the groups)",
			stats.SharedQueries, len(paths))
	}
	if stats.ChainBuilds != 3 {
		t.Errorf("chain builds = %d, want 3 (symmetric paths: one build per path)", stats.ChainBuilds)
	}
	// The family propagates rows {src, dst} once through the shared "writes"
	// step and resumes both longer chains from it: 2 rows × 1 step per build,
	// 6 row-steps total, against 10 for independent per-group preparation
	// (APA: 2×1, APVPA and APTPA: 2 requests × 1 row × 2 steps each).
	if stats.RowSteps != 6 || stats.NaiveRowSteps != 10 {
		t.Errorf("row steps = %d/%d naive, want 6/10", stats.RowSteps, stats.NaiveRowSteps)
	}
	if stats.PrefixResumes != 2 {
		t.Errorf("prefix resumes = %d, want 2 (APVPA and APTPA resume from APA's half-chain)",
			stats.PrefixResumes)
	}
	// Bit-identical to solo queries on a fresh engine: even-length paths, so
	// batch subset rows and solo vector propagation are the same multiplies
	// in the same order.
	fresh := crossPathGraph(t, 41)
	for i, p := range paths {
		if results[i].Err != nil {
			t.Fatalf("query %d (%s): %v", i, p, results[i].Err)
		}
		if !results[i].Shared {
			t.Errorf("query %d (%s) not shared", i, p)
		}
		want, err := fresh.PairByIndex(context.Background(), p, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Score != want {
			t.Errorf("query %d (%s): batch %v != solo %v", i, p, results[i].Score, want)
		}
	}
}

// TestBatchCrossGroupSharingDisjointPrefixes: singleton groups on paths with
// nothing in common stay solo — merging is never worse than independent
// preparation.
func TestBatchCrossGroupSharingDisjointPrefixes(t *testing.T) {
	e := crossPathGraph(t, 42)
	g := e.Graph()
	qs := []BatchQuery{
		{Kind: BatchPair, Path: metapath.MustParse(g.Schema(), "APA"), Src: 0, Dst: 1},
		{Kind: BatchPair, Path: metapath.MustParse(g.Schema(), "VCV"), Src: 0, Dst: 1},
	}
	results, stats, err := e.ExecuteBatch(context.Background(), qs, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SharedQueries != 0 || stats.ChainBuilds != 0 || stats.RowSteps != 0 {
		t.Errorf("stats = %+v, want no sharing across disjoint prefixes", stats)
	}
	for i := range results {
		if results[i].Err != nil {
			t.Fatal(results[i].Err)
		}
		if results[i].Shared {
			t.Errorf("query %d marked shared", i)
		}
	}
}
