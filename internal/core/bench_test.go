package core

import (
	"context"
	"testing"

	"hetesim/internal/metapath"
)

// Package-level micro benchmarks of the engine's hot paths, complementing
// the repository-level experiment benches.

func benchGraphAndPath(b *testing.B, spec string) (*Engine, *metapath.Path) {
	b.Helper()
	g := randomBibGraph(12345)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), spec)
	if err := e.Precompute(context.Background(), p); err != nil {
		b.Fatal(err)
	}
	return e, p
}

func BenchmarkPairByIndex(b *testing.B) {
	e, p := benchGraphAndPath(b, "APVCVPA")
	n := e.Graph().NodeCount("author")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PairByIndex(context.Background(), p, i%n, (i*7)%n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleSourceByIndex(b *testing.B) {
	e, p := benchGraphAndPath(b, "APVCVPA")
	n := e.Graph().NodeCount("author")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.SingleSourceByIndex(context.Background(), p, i%n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllPairsWarm(b *testing.B) {
	e, p := benchGraphAndPath(b, "APVCVPA")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.AllPairs(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPairContributions(b *testing.B) {
	e, p := benchGraphAndPath(b, "APVCVPA")
	n := e.Graph().NodeCount("author")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.PairContributions(context.Background(), p, i%n, (i*7)%n, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOddPathPair(b *testing.B) {
	e, p := benchGraphAndPath(b, "APVC")
	nA := e.Graph().NodeCount("author")
	nC := e.Graph().NodeCount("conference")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.PairByIndex(context.Background(), p, i%nA, i%nC); err != nil {
			b.Fatal(err)
		}
	}
}
