package core

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hetesim/internal/metapath"
)

// Differential tests: independent implementations of the same quantity
// must agree. TopKSearch's candidate-restricted pruned scan is checked
// against a brute-force ranking of the full SingleSourceByIndex vector,
// and the Monte Carlo estimator against exact propagation.

// bruteForceRanking sorts the nonzero entries of a single-source score
// vector exactly the way TopKSearch ranks: descending score, ties by
// ascending index.
func bruteForceRanking(scores []float64) []Scored {
	var out []Scored
	for i, s := range scores {
		if s != 0 {
			out = append(out, Scored{Index: i, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	return out
}

// TestDifferentialTopKBruteForce checks the pruned top-k search against
// brute force. At eps = 0 the two must agree bitwise — same candidates,
// same order, same scores; at small eps the pruning may drop negligible
// middle mass, so scores agree to a tolerance.
func TestDifferentialTopKBruteForce(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{13, 47} {
		g := randomBibGraph(seed)
		rng := rand.New(rand.NewSource(seed + 500))
		for _, engine := range []*Engine{NewEngine(g), NewEngine(g, WithNormalization(false))} {
			for _, spec := range []string{"APA", "APVC", "APT"} {
				p := metapath.MustParse(g.Schema(), spec)
				nS := g.NodeCount(p.Source())
				for trial := 0; trial < 3; trial++ {
					src := rng.Intn(nS)
					scores, err := engine.SingleSourceByIndex(ctx, p, src)
					if err != nil {
						t.Fatal(err)
					}
					want := bruteForceRanking(scores)

					// eps = 0: exact — bitwise identical ranking.
					got, err := engine.TopKSearch(ctx, p, src, len(scores)+1, 0)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("seed %d %s src %d: topk returned %d results, brute force %d",
							seed, spec, src, len(got), len(want))
					}
					for r := range got {
						if got[r] != want[r] {
							t.Fatalf("seed %d %s src %d rank %d: topk %+v, brute force %+v",
								seed, spec, src, r, got[r], want[r])
						}
					}

					// Truncation only truncates: the k-prefix is unchanged.
					short, err := engine.TopKSearch(ctx, p, src, 3, 0)
					if err != nil {
						t.Fatal(err)
					}
					for r := range short {
						if short[r] != want[r] {
							t.Fatalf("seed %d %s src %d: k=3 prefix differs at rank %d", seed, spec, src, r)
						}
					}

					// eps > 0: every surviving score stays close to the
					// exact one and no phantom targets appear.
					for _, eps := range []float64{1e-12, 1e-3} {
						pruned, err := engine.TopKSearch(ctx, p, src, len(scores)+1, eps)
						if err != nil {
							t.Fatal(err)
						}
						for _, hit := range pruned {
							exact := scores[hit.Index]
							if exact == 0 {
								t.Fatalf("seed %d %s src %d eps %v: phantom target %d", seed, spec, src, eps, hit.Index)
							}
							if math.Abs(hit.Score-exact) > 10*eps+1e-12 {
								t.Errorf("seed %d %s src %d eps %v: target %d scored %v, exact %v",
									seed, spec, src, eps, hit.Index, hit.Score, exact)
							}
						}
					}
				}
			}
		}
	}
}

// TestDifferentialMonteCarloPair checks that the sampled-walk estimator of
// Section 4.6 converges to the exact propagated score on pairs with
// non-trivial relevance, under fixed seeds so the test is deterministic.
func TestDifferentialMonteCarloPair(t *testing.T) {
	ctx := context.Background()
	g := randomBibGraph(61)
	e := NewEngine(g)
	for _, spec := range []string{"APVC", "APA"} {
		p := metapath.MustParse(g.Schema(), spec)
		nS, nT := g.NodeCount(p.Source()), g.NodeCount(p.Target())
		checked := 0
		for src := 0; src < nS && checked < 2; src++ {
			for dst := 0; dst < nT && checked < 2; dst++ {
				exact, err := e.PairByIndex(ctx, p, src, dst)
				if err != nil {
					t.Fatal(err)
				}
				if exact < 0.05 {
					continue
				}
				mc, err := e.PairMonteCarlo(ctx, p, src, dst, 80000, 11)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(mc.Score-exact) > 0.1 {
					t.Errorf("%s MC(%d,%d) = %v, exact %v", spec, src, dst, mc.Score, exact)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("%s: no pairs with non-trivial scores found", spec)
		}
	}
}
