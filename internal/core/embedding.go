package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"hetesim/internal/embed"
	"hetesim/internal/obs"
	"hetesim/internal/sparse"
)

// Low-rank approximate top-k (the topk-approx physical plan). The right
// half-chain matrix PM_R is factorized once into rank-r target embeddings
// (see internal/embed); a query projects its left reaching distribution
// into the same subspace, over-fetches c·k candidates by embedding inner
// product, and re-ranks them through the exact operators — so returned
// scores are bit-identical to the exact plan's, only recall can degrade.
// The rank and over-fetch factor derive from the caller's error budget.

// defaultErrorBudget is the error budget assumed when PlanOptions leaves
// it zero: rank 20, over-fetch factor 4.
const defaultErrorBudget = 0.05

// embedIters is the orthogonal-iteration count for engine-built
// embeddings; 0 selects embed.DefaultIters.
const embedIters = 0

func resolveErrorBudget(b float64) float64 {
	if b <= 0 {
		return defaultErrorBudget
	}
	return b
}

// embedRankFor maps an error budget onto the factorization rank: a tighter
// budget buys more rank, clamped to [min(4,dim), dim]. An explicit
// EmbedRank override wins (still clamped to dim).
func embedRankFor(o PlanOptions, dim int) int {
	if dim < 1 {
		dim = 1
	}
	rank := o.EmbedRank
	if rank <= 0 {
		rank = int(math.Ceil(1 / resolveErrorBudget(o.ErrorBudget)))
		if rank < 4 {
			rank = 4
		}
	}
	if rank > dim {
		rank = dim
	}
	if rank < 1 {
		rank = 1
	}
	return rank
}

// embedOverFetch maps an error budget onto the candidate over-fetch
// factor c (the generator scores all targets but keeps only c·k for the
// exact re-rank): a tighter budget buys a deeper candidate pool.
func embedOverFetch(o PlanOptions) int {
	f := int(math.Ceil(0.2 / resolveErrorBudget(o.ErrorBudget)))
	if f < 2 {
		f = 2
	}
	return f
}

// embedBuildFlops estimates the one-time cost of factorizing a chain at
// the given rank: the Gram orthogonal iteration (two SpMVs per column per
// iteration) plus the target-row projection.
func embedBuildFlops(est ChainEstimate, rank int) float64 {
	iters := float64(embed.DefaultIters)
	return (2*iters + 1) * est.NNZ * float64(rank)
}

// embedCacheKey identifies one embedding: the factorization rank plus the
// chain key of the matrix it factorizes.
func embedCacheKey(rank int, chainKey string) string {
	return "E:" + strconv.Itoa(rank) + ":" + chainKey
}

// parseEmbedKey splits an embedding cache key into its rank and base
// chain key.
func parseEmbedKey(key string) (rank int, chainKey string, err error) {
	body, ok := strings.CutPrefix(key, "E:")
	if !ok {
		return 0, "", fmt.Errorf("core: cache key %q is not an embedding key", key)
	}
	rs, ck, ok := strings.Cut(body, ":")
	if !ok {
		return 0, "", fmt.Errorf("core: embedding key %q has no chain part", key)
	}
	rank, err = strconv.Atoi(rs)
	if err != nil || rank < 1 {
		return 0, "", fmt.Errorf("core: embedding key %q has bad rank %q", key, rs)
	}
	return rank, ck, nil
}

// embedGet returns a cached embedding.
func (e *Engine) embedGet(key string) (*embed.Embedding, bool) {
	e.embedMu.Lock()
	defer e.embedMu.Unlock()
	em, ok := e.embeds[key]
	return em, ok
}

func (e *Engine) embedPut(key string, em *embed.Embedding) {
	e.embedMu.Lock()
	e.embeds[key] = em
	e.embedMu.Unlock()
}

// embedWarm reports whether an embedding is already built. A non-caching
// engine never retains embeddings, so it always reports cold.
func (e *Engine) embedWarm(key string) bool {
	if !e.caching {
		return false
	}
	_, ok := e.embedGet(key)
	return ok
}

// EmbeddingCount reports how many embeddings the engine holds.
func (e *Engine) EmbeddingCount() int {
	e.embedMu.Lock()
	defer e.embedMu.Unlock()
	return len(e.embeds)
}

// ExportEmbeddings returns the engine's built embeddings keyed by
// embedding cache key, for snapshot persistence. Embeddings are immutable
// once built, so the export is cheap and safe under concurrent queries.
func (e *Engine) ExportEmbeddings() map[string]*embed.Embedding {
	e.embedMu.Lock()
	defer e.embedMu.Unlock()
	out := make(map[string]*embed.Embedding, len(e.embeds))
	for k, em := range e.embeds {
		out[k] = em
	}
	return out
}

// ImportEmbeddings installs previously exported embeddings, returning how
// many were admitted. Keys must come from an engine over the same graph
// with the same pruning epsilon (the snapshot layer enforces this with the
// graph fingerprint). Entries whose key does not parse or whose shape does
// not match the key's rank are skipped — safe, they rebuild lazily. A
// non-caching engine ignores the import entirely.
func (e *Engine) ImportEmbeddings(embeds map[string]*embed.Embedding) int {
	if !e.caching {
		return 0
	}
	n := 0
	for k, em := range embeds {
		if em == nil || em.Basis == nil {
			continue
		}
		rank, _, err := parseEmbedKey(k)
		if err != nil || em.Rank != rank || len(em.Vecs) != em.Rows*em.Rank {
			continue
		}
		if br, bc := em.Basis.Dims(); br != em.Dim || bc != em.Rank {
			continue
		}
		e.embedPut(k, em)
		n++
	}
	return n
}

// embedSeed derives a deterministic factorization seed from the embedding
// key, so the same (path, rank) always builds the same embedding on any
// replica — snapshot-shipped and locally built embeddings agree.
func embedSeed(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(h.Sum64() & math.MaxInt64)
}

// opEmbedding returns the rank-r embedding of a path's right half-chain,
// building (and caching) it on first use. Builds poll ctx between
// eigensolver iterations.
func (e *Engine) opEmbedding(ctx context.Context, h halves, rank int) (*embed.Embedding, error) {
	key := embedCacheKey(rank, e.chainCacheKey(h.right()))
	if e.caching {
		if em, ok := e.embedGet(key); ok {
			return em, nil
		}
	}
	pmr, err := e.opMatrixChain(ctx, h.right())
	if err != nil {
		return nil, err
	}
	sp := obs.FromContext(ctx).Start("embed_build")
	em, err := embed.Build(ctx, pmr, rank, embedSeed(key), embedIters)
	if sp != nil {
		sp.SetAttr("key", key).End()
	}
	if err != nil {
		return nil, err
	}
	metEmbedBuilds.Inc()
	if e.caching {
		e.embedPut(key, em)
	}
	return em, nil
}

// pruneLeft applies the Section 4.6 search pruning to a left middle
// distribution: entries below eps times the largest entry are dropped.
// Shared by the exact scan and the approximate re-rank so both score the
// identical pruned distribution.
func pruneLeft(left *sparse.Vector, eps float64) *sparse.Vector {
	if eps <= 0 {
		return left
	}
	var max float64
	left.Entries(func(_ int, v float64) {
		if v > max {
			max = v
		}
	})
	threshold := eps * max
	var idx []int
	var val []float64
	left.Entries(func(i int, v float64) {
		if v >= threshold {
			idx = append(idx, i)
			val = append(val, v)
		}
	})
	return sparse.NewVector(left.Len(), idx, val)
}

// topKApprox executes the topk-approx plan: project the pruned left
// distribution into the embedding space, over-fetch candidates by
// embedding inner product, then re-rank them through the exact pair
// operators. The re-rank dots the same pruned left vector against the
// same materialized chain rows in the same ascending-index order as
// topKFrom's accumulation, so every returned score is bit-identical to
// the exact plan's score for that target.
func (e *Engine) topKApprox(ctx context.Context, lp LogicalPlan) ([]Scored, error) {
	h := lp.h
	left, err := e.opVectorChain(ctx, lp.Src, h.left())
	if err != nil {
		return nil, err
	}
	left = pruneLeft(left, lp.Eps)

	pmr, err := e.opMatrixChain(ctx, h.right())
	if err != nil {
		return nil, err
	}
	rank := embedRankFor(lp.Opts, pmr.Cols())
	em, err := e.opEmbedding(ctx, h, rank)
	if err != nil {
		return nil, err
	}
	var rns []float64
	var ln float64
	if e.normalized {
		ln = left.Norm()
		rns = e.chainRowNorms(e.chainCacheKey(h.right()), pmr)
	}
	q, err := em.Project(left)
	if err != nil {
		return nil, err
	}
	fetch := embedOverFetch(lp.Opts) * lp.K
	sp := obs.FromContext(ctx).Start("embed_candidates")
	cands := em.Candidates(q, fetch, rns)
	if sp != nil {
		sp.SetAttr("fetched", strconv.Itoa(len(cands))).End()
	}

	sp = obs.FromContext(ctx).Start("rerank")
	out := make([]Scored, 0, len(cands))
	for _, b := range cands {
		s := left.Dot(pmr.Row(b))
		if e.normalized {
			if ln == 0 || rns[b] == 0 {
				continue
			}
			s /= ln * rns[b]
		}
		if s != 0 {
			out = append(out, Scored{Index: b, Score: s})
		}
	}
	sortScoredDesc(out)
	sp.End()
	if lp.K < len(out) {
		out = out[:lp.K]
	}
	return out, nil
}

// rewarmEmbeddings carries src's embeddings whose base chain survived a
// rewarm unchanged (same key carried with identical dimensions); every
// other embedding is dropped and rebuilds lazily on next use. Called at
// the end of RewarmFrom with the set of carried chain keys.
func (e *Engine) rewarmEmbeddings(src *Engine, carried map[string]bool) (kept, dropped int) {
	for key, em := range src.ExportEmbeddings() {
		_, ck, err := parseEmbedKey(key)
		if err != nil || !carried[ck] {
			dropped++
			continue
		}
		nm, ok := e.cacheGet(ck)
		if !ok {
			dropped++
			continue
		}
		if r, c := nm.Dims(); r != em.Rows || c != em.Dim {
			dropped++
			continue
		}
		e.embedPut(key, em)
		kept++
	}
	return kept, dropped
}
