// Package core implements HeteSim, the relevance measure of the paper
// (Definitions 3, 7 and 10): a path-constrained, symmetric, semi-metric
// measure of the relatedness of same-typed or different-typed objects in a
// heterogeneous information network.
//
// HeteSim(s, t | P) measures how likely a walker starting at s following the
// relevance path P and a walker starting at t going against P meet at the
// same middle object. Computationally (Equations 6–8):
//
//	HeteSim(A1, Al+1 | P) = PM_PL · PM'_{PR^-1}
//
// where the path is decomposed into equal halves P = PL · PR (Definition 5,
// inserting an edge-object type into the middle atomic relation when the
// length is odd, Definition 6), PM is the reachable probability matrix of
// Definition 9, and the normalized form (Definition 10) is the cosine of the
// two reaching distributions.
//
// The Engine caches transition matrices and materialized reachable
// probability matrices per path prefix, implementing the offline
// materialization and partial-path concatenation speedups of Section 4.6.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"hetesim/internal/embed"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/sparse"
)

// Engine evaluates HeteSim queries over one graph. It is safe for
// concurrent use; all caches are guarded internally.
//
// Every query method takes a context.Context and stops between propagation
// steps once the context is canceled or past its deadline, returning the
// context's error. Long chains over large networks therefore release their
// core promptly when a caller gives up — the request-lifecycle contract the
// HTTP server builds on.
type Engine struct {
	g *hin.Graph

	normalized bool
	caching    bool
	pruneEps   float64
	cacheLimit int

	mu        sync.Mutex
	trans     map[string]*sparse.Matrix // U per step key
	edgeU     map[string]*sparse.Matrix // U_SE / U_TE per middle-step key
	reach     map[string]*sparse.Matrix // PM per chain key (every prefix cached)
	norms     map[string][]float64      // row L2 norms per chain key
	reachAge  []string                  // insertion order of reach keys, oldest first
	evictions int                       // chain matrices dropped by the cache limit

	embedMu sync.Mutex
	embeds  map[string]*embed.Embedding // low-rank embeddings per (rank, chain) key

	estMu    sync.Mutex
	estCache map[string]ChainEstimate // memoized cost estimates per chain key

	planMu     sync.Mutex
	planCounts map[PlanKind]uint64 // optimizer selections per physical plan

	seedMu  sync.Mutex
	seedRng *rand.Rand // engine-level source deriving per-query MC seeds
}

// Option configures an Engine.
type Option func(*Engine)

// WithNormalization controls whether scores use the cosine-normalized form
// of Definition 10 (the default, true) or the raw meeting probability of
// Definition 3 (false). The unnormalized form is primarily useful for
// studying Property 5 (the SimRank connection) and the Fig. 5(c) example.
func WithNormalization(on bool) Option { return func(e *Engine) { e.normalized = on } }

// WithCaching controls materialization of reachable probability matrices
// (default true). Disable to measure cold-query cost or bound memory.
func WithCaching(on bool) Option { return func(e *Engine) { e.caching = on } }

// WithPruning drops reachable probabilities below eps after every
// propagation step — the truncation speedup sketched in Section 4.6, trading
// a small, bounded score error for sparser intermediates. eps = 0 (default)
// disables pruning.
func WithPruning(eps float64) Option { return func(e *Engine) { e.pruneEps = eps } }

// WithCacheLimit bounds the number of materialized chain matrices the
// engine retains. When the limit is exceeded the oldest entries (and their
// row norms) are evicted, so ad-hoc query traffic over many distinct paths
// cannot grow the cache without bound. n <= 0 (the default) keeps the cache
// unbounded — the right behavior for the CLI and the experiments, which
// query a fixed path set. Transition matrices (one per schema relation and
// direction) are never evicted; they are small and bounded by the schema.
func WithCacheLimit(n int) Option { return func(e *Engine) { e.cacheLimit = n } }

// NewEngine creates a HeteSim engine over g.
func NewEngine(g *hin.Graph, opts ...Option) *Engine {
	e := &Engine{
		g:          g,
		normalized: true,
		caching:    true,
		trans:      make(map[string]*sparse.Matrix),
		edgeU:      make(map[string]*sparse.Matrix),
		reach:      make(map[string]*sparse.Matrix),
		norms:      make(map[string][]float64),
		embeds:     make(map[string]*embed.Embedding),
		estCache:   make(map[string]ChainEstimate),
		planCounts: make(map[PlanKind]uint64),
	}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Graph returns the engine's underlying graph.
func (e *Engine) Graph() *hin.Graph { return e.g }

// Normalized reports whether the engine returns cosine-normalized scores.
func (e *Engine) Normalized() bool { return e.normalized }

// stepKey identifies the transition matrix of one path step.
func stepKey(s metapath.Step) string {
	if s.Inverse {
		return s.Relation.Name + "~" // inverse traversal
	}
	return s.Relation.Name
}

func chainKey(steps []metapath.Step, suffix string) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = stepKey(s)
	}
	k := strings.Join(parts, "|")
	if suffix != "" {
		if k != "" {
			k += "|"
		}
		k += suffix
	}
	return k
}

// transition returns the row-stochastic transition matrix U for one step
// (Definition 8): row-normalized adjacency, transposed first when the step
// traverses the relation inversely. By Property 2 this equals V' of the
// forward relation.
func (e *Engine) transition(s metapath.Step) (*sparse.Matrix, error) {
	key := stepKey(s)
	e.mu.Lock()
	if u, ok := e.trans[key]; ok {
		e.mu.Unlock()
		return u, nil
	}
	e.mu.Unlock()
	w, err := e.g.Adjacency(s.Relation.Name)
	if err != nil {
		return nil, err
	}
	if s.Inverse {
		w = w.Transpose()
	}
	u := w.RowNormalize()
	e.mu.Lock()
	e.trans[key] = u
	e.mu.Unlock()
	return u, nil
}

// middleEdgeTransitions returns (U_SE, U_TE) for the middle atomic relation
// of an odd-length path: the transition matrices from the relation's source
// side and target side into the inserted edge-object type E (Definition 6).
// Column k of either matrix corresponds to the k-th relation instance in
// row-major order of the step's effective adjacency. Per the Property 1
// proof, instance weights w split as sqrt(w) on both half-edges.
func (e *Engine) middleEdgeTransitions(s metapath.Step) (use, ute *sparse.Matrix, err error) {
	key := stepKey(s)
	e.mu.Lock()
	u1, ok1 := e.edgeU["SE|"+key]
	u2, ok2 := e.edgeU["TE|"+key]
	e.mu.Unlock()
	if ok1 && ok2 {
		return u1, u2, nil
	}
	w, err := e.g.Adjacency(s.Relation.Name)
	if err != nil {
		return nil, nil, err
	}
	if s.Inverse {
		w = w.Transpose()
	}
	rows, cols := w.Dims()
	ts := w.Triplets()
	seTrip := make([]sparse.Triplet, len(ts))
	teTrip := make([]sparse.Triplet, len(ts))
	for k, t := range ts {
		sq := sqrtWeight(t.Val)
		seTrip[k] = sparse.Triplet{Row: t.Row, Col: k, Val: sq}
		teTrip[k] = sparse.Triplet{Row: t.Col, Col: k, Val: sq}
	}
	use = sparse.New(rows, len(ts), seTrip).RowNormalize()
	ute = sparse.New(cols, len(ts), teTrip).RowNormalize()
	e.mu.Lock()
	e.edgeU["SE|"+key] = use
	e.edgeU["TE|"+key] = ute
	e.mu.Unlock()
	return use, ute, nil
}

func sqrtWeight(w float64) float64 {
	if w < 0 {
		panic(fmt.Sprintf("core: negative adjacency weight %v", w))
	}
	if w == 1 { // fast path for the common 0/1 adjacency
		return 1
	}
	return math.Sqrt(w)
}

// halves describes the two reachable-probability chains of a decomposed
// path: leftSteps propagate the source forward to the meeting type,
// rightSteps propagate the target backward to it. When the original path
// has odd length, both chains end with an extra half-step into the
// edge-object type of the middle relation.
type halves struct {
	leftSteps  []metapath.Step
	rightSteps []metapath.Step // already reversed: target → meeting type
	middle     *metapath.Step
}

func splitPath(p *metapath.Path) halves {
	d := p.Decompose()
	right := make([]metapath.Step, len(d.Right))
	for i, s := range d.Right {
		right[len(d.Right)-1-i] = s.Reversed()
	}
	return halves{leftSteps: d.Left, rightSteps: right, middle: d.Middle}
}

// cacheGet returns a cached chain matrix.
func (e *Engine) cacheGet(key string) (*sparse.Matrix, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.reach[key]
	return m, ok
}

// cachePut installs a chain matrix, then evicts the oldest entries (and
// their row norms) while the cache exceeds the configured limit. The entry
// just installed is never the eviction victim, so a freshly materialized
// matrix always survives long enough to serve its own query.
func (e *Engine) cachePut(key string, m *sparse.Matrix) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.reach[key]; !ok {
		e.reachAge = append(e.reachAge, key)
	}
	e.reach[key] = m
	if e.cacheLimit <= 0 {
		return
	}
	for len(e.reach) > e.cacheLimit && len(e.reachAge) > 0 {
		old := e.reachAge[0]
		e.reachAge = e.reachAge[1:]
		if old == key {
			e.reachAge = append(e.reachAge, old)
			continue
		}
		delete(e.reach, old)
		delete(e.norms, old)
		e.evictions++
		metCacheEvictions.Inc()
	}
}

// chainFullKey identifies a chain's materialized matrix. Pure step chains
// share one key regardless of which query plan built them, so a path's left
// half, a PCRW reachable matrix, and a longer path's prefix all reuse the
// same cache entry; only the edge half-step suffix distinguishes sides.
func (e *Engine) chainFullKey(steps []metapath.Step, middle *metapath.Step, side byte) string {
	if middle == nil {
		return "C:" + chainKey(steps, "")
	}
	mk := stepKey(*middle)
	if side == 'L' {
		return "C:" + chainKey(steps, "SE("+mk+")")
	}
	return "C:" + chainKey(steps, "TE("+mk+")")
}

// chainStartType returns the node type a chain starts from. An empty chain
// with a middle step starts at the middle relation's near side.
func (e *Engine) chainStartType(steps []metapath.Step, middle *metapath.Step, side byte) string {
	if len(steps) > 0 {
		return steps[0].From()
	}
	if middle == nil {
		panic("core: empty chain with no middle step")
	}
	if side == 'L' {
		return middle.From()
	}
	return middle.To()
}

// chainRowNorms returns cached per-row L2 norms of a chain matrix.
func (e *Engine) chainRowNorms(key string, pm *sparse.Matrix) []float64 {
	e.mu.Lock()
	if n, ok := e.norms[key]; ok {
		e.mu.Unlock()
		return n
	}
	e.mu.Unlock()
	n := pm.RowNorms()
	e.mu.Lock()
	e.norms[key] = n
	e.mu.Unlock()
	return n
}

// Pair returns HeteSim(src, dst | p) for nodes identified by string IDs.
// src must be of type p.Source() and dst of type p.Target().
func (e *Engine) Pair(ctx context.Context, p *metapath.Path, srcID, dstID string) (float64, error) {
	i, err := e.g.NodeIndex(p.Source(), srcID)
	if err != nil {
		return 0, err
	}
	j, err := e.g.NodeIndex(p.Target(), dstID)
	if err != nil {
		return 0, err
	}
	return e.PairByIndex(ctx, p, i, j)
}

// PairByIndex is Pair addressed by node indices, routed through the query
// optimizer with default options (auto plan, no walk budget).
func (e *Engine) PairByIndex(ctx context.Context, p *metapath.Path, src, dst int) (float64, error) {
	score, _, err := e.PairWithPlan(ctx, p, src, dst, PlanOptions{})
	return score, err
}

// SingleSource returns the HeteSim scores of one source node against every
// node of the path's target type, indexed by target node index.
func (e *Engine) SingleSource(ctx context.Context, p *metapath.Path, srcID string) ([]float64, error) {
	i, err := e.g.NodeIndex(p.Source(), srcID)
	if err != nil {
		return nil, err
	}
	return e.SingleSourceByIndex(ctx, p, i)
}

// SingleSourceByIndex is SingleSource addressed by node index, routed
// through the query optimizer with default options.
func (e *Engine) SingleSourceByIndex(ctx context.Context, p *metapath.Path, src int) ([]float64, error) {
	scores, _, err := e.SingleSourceWithPlan(ctx, p, src, PlanOptions{})
	return scores, err
}

// normalizeSingleSource applies the cosine normalization of Definition 10 to
// a combined single-source score vector in place: score_b / (|left| · |row_b|),
// with zero-norm rows scored 0. Shared by the solo plan and the batch
// scheduler so both produce bit-identical scores.
func normalizeSingleSource(scores []float64, ln float64, rns []float64) {
	for b := range scores {
		if ln == 0 || rns[b] == 0 {
			scores[b] = 0
		} else {
			scores[b] /= ln * rns[b]
		}
	}
}

// AllPairs returns the full relevance matrix HeteSim(A1, Al+1 | p) with rows
// indexed by source nodes and columns by target nodes (Equation 6, plus the
// normalization of Definition 10 when enabled).
func (e *Engine) AllPairs(ctx context.Context, p *metapath.Path) (*sparse.Matrix, error) {
	m, _, err := e.AllPairsWithPlan(ctx, p, PlanOptions{})
	return m, err
}

// PairsSubset returns the relevance matrix restricted to the given source
// and target node-index subsets (in the given orders). It multiplies only
// the selected rows of the two half-path matrices, so scoring a labeled
// subset of a large network never materializes the full |A1| x |Al+1|
// relevance matrix — the plan the clustering experiments rely on.
func (e *Engine) PairsSubset(ctx context.Context, p *metapath.Path, srcs, dsts []int) (*sparse.Matrix, error) {
	m, _, err := e.PairsSubsetWithPlan(ctx, p, srcs, dsts, PlanOptions{})
	return m, err
}

// mulBlockedCtx computes a·b in row blocks sized to roughly constant work,
// polling ctx between the per-block column multiplies so a canceled
// clustering-scale subset product stops within one block's latency instead
// of running the full |srcs| x |dsts| product to completion. SpGEMM rows
// are independent, so the stacked result is bit-identical to the unblocked
// product.
func mulBlockedCtx(ctx context.Context, a, b *sparse.Matrix) (*sparse.Matrix, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rows := a.Rows()
	if rows == 0 {
		return a.MulAuto(b), nil
	}
	// Expected multiply-adds per row of a: its average row support times
	// the average support of the b rows each entry scatters.
	perRow := float64(a.NNZ()) / float64(rows) * float64(b.NNZ()) / float64(max(b.Rows(), 1))
	const targetFlops = 4 << 20 // ~ms-scale cancellation latency per block
	block := rows
	if perRow > 0 {
		block = int(targetFlops / perRow)
	}
	block = max(block, 16)
	if block >= rows {
		return a.MulAuto(b), nil
	}
	idx := make([]int, 0, block)
	parts := make([]*sparse.Matrix, 0, (rows+block-1)/block)
	for lo := 0; lo < rows; lo += block {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx = idx[:0]
		for r := lo; r < min(lo+block, rows); r++ {
			idx = append(idx, r)
		}
		parts = append(parts, a.SelectRows(idx).MulAuto(b))
	}
	return sparse.VStack(parts), nil
}

// Precompute materializes and caches both half-path reachable probability
// matrices and their row norms, so subsequent SingleSource and Pair queries
// on the same path are served from the cache — the offline materialization
// speedup of Section 4.6.
func (e *Engine) Precompute(ctx context.Context, p *metapath.Path) error {
	h := splitPath(p)
	pml, err := e.opMatrixChain(ctx, h.left())
	if err != nil {
		return err
	}
	pmr, err := e.opMatrixChain(ctx, h.right())
	if err != nil {
		return err
	}
	e.chainRowNorms(e.chainCacheKey(h.left()), pml)
	e.chainRowNorms(e.chainCacheKey(h.right()), pmr)
	return nil
}

// ReachableMatrix returns the reachable probability matrix PM_P of
// Definition 9: the product of the transition matrices of every step. This
// is exactly the Path Constrained Random Walk distribution, exposed for the
// PCRW baseline and Fig. 7-style analyses.
func (e *Engine) ReachableMatrix(ctx context.Context, p *metapath.Path) (*sparse.Matrix, error) {
	return e.opMatrixChain(ctx, pathChain(p))
}

// ReachableFrom returns row src of PM_P without materializing the matrix.
func (e *Engine) ReachableFrom(ctx context.Context, p *metapath.Path, src int) (*sparse.Vector, error) {
	if err := e.checkIndex(p.Source(), src); err != nil {
		return nil, err
	}
	return e.opVectorChain(ctx, src, pathChain(p))
}

// CacheSize reports the number of cached matrices (transition plus
// reachable), mostly for tests and diagnostics.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.trans) + len(e.edgeU) + len(e.reach)
}

// CacheInfo is a point-in-time snapshot of the engine's matrix caches.
type CacheInfo struct {
	Transition int `json:"transition"` // per-relation transition matrices
	Edge       int `json:"edge"`       // middle edge-transition matrices
	Chain      int `json:"chain"`      // materialized chain (reachable) matrices
	Evictions  int `json:"evictions"`  // chain matrices dropped by WithCacheLimit
}

// CacheStats breaks CacheSize down by kind: transition matrices, middle
// edge-transition matrices, and materialized chain matrices, plus the
// count of chain matrices the cache limit has evicted so far. Only chain
// matrices are subject to WithCacheLimit eviction.
func (e *Engine) CacheStats() CacheInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheInfo{
		Transition: len(e.trans),
		Edge:       len(e.edgeU),
		Chain:      len(e.reach),
		Evictions:  e.evictions,
	}
}

// CacheLimit returns the configured chain-matrix cache bound (0 when
// unbounded), so operators can correlate eviction counts with the limit
// that produced them.
func (e *Engine) CacheLimit() int { return e.cacheLimit }

// PruneEps returns the WithPruning epsilon the engine's matrices are built
// with. Snapshot validation records it because pruned and exact chains are
// different matrices: a snapshot is only loadable into an engine with the
// same epsilon.
func (e *Engine) PruneEps() float64 { return e.pruneEps }

// ExportChains returns the engine's materialized chain matrices keyed by
// chain cache key — the state worth persisting across restarts (Section
// 4.6's offline materialization). Matrices are immutable and shared, so the
// export is cheap and safe under concurrent queries.
func (e *Engine) ExportChains() map[string]*sparse.Matrix {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]*sparse.Matrix, len(e.reach))
	for k, m := range e.reach {
		out[k] = m
	}
	return out
}

// ImportChains installs previously exported chain matrices in the cache,
// returning how many were admitted. Keys and matrices must come from an
// engine over the same graph with the same pruning epsilon — the snapshot
// layer enforces this with the graph fingerprint before calling. Row norms
// are recomputed lazily on first use. A non-caching engine ignores the
// import entirely.
func (e *Engine) ImportChains(chains map[string]*sparse.Matrix) int {
	if !e.caching {
		return 0
	}
	n := 0
	for k, m := range chains {
		if m == nil {
			continue
		}
		e.cachePut(k, m)
		n++
	}
	return n
}

// ClearCache drops all cached matrices, norms, and cost estimates.
func (e *Engine) ClearCache() {
	e.mu.Lock()
	e.trans = make(map[string]*sparse.Matrix)
	e.edgeU = make(map[string]*sparse.Matrix)
	e.reach = make(map[string]*sparse.Matrix)
	e.norms = make(map[string][]float64)
	e.reachAge = nil
	e.mu.Unlock()
	e.embedMu.Lock()
	e.embeds = make(map[string]*embed.Embedding)
	e.embedMu.Unlock()
	e.estMu.Lock()
	e.estCache = make(map[string]ChainEstimate)
	e.estMu.Unlock()
}

func (e *Engine) checkIndex(typeName string, i int) error {
	n := e.g.NodeCount(typeName)
	if i < 0 || i >= n {
		return fmt.Errorf("%w: %s #%d (have %d)", hin.ErrUnknownNode, typeName, i, n)
	}
	return nil
}
