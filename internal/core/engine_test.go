package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// fig4Schema is the simple network of Fig. 4: authors write papers that are
// published directly in conferences.
func fig4Schema() *hin.Schema {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	return s
}

// fig4Graph reconstructs the Fig. 4 example: all of Tom's papers are in KDD.
func fig4Graph(t *testing.T) *hin.Graph {
	t.Helper()
	b := hin.NewBuilder(fig4Schema())
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("writes", "Bob", "p4")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	b.AddEdge("published_in", "p4", "SIGMOD")
	return b.MustBuild()
}

func TestExample2TomKDD(t *testing.T) {
	// Example 2 of the paper: HeteSim(Tom, KDD | APC) = 0.5 before
	// normalization — Tom and KDD each reach {p1, p2} with probability
	// 0.5, so the meeting probability is 0.5.
	g := fig4Graph(t)
	e := NewEngine(g, WithNormalization(false))
	p := metapath.MustParse(g.Schema(), "APC")
	got, err := e.Pair(context.Background(), p, "Tom", "KDD")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("HeteSim(Tom, KDD | APC) = %v, want 0.5", got)
	}
	// Normalized, Tom's and KDD's paper distributions coincide: cosine 1.
	en := NewEngine(g)
	got, err = en.Pair(context.Background(), p, "Tom", "KDD")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized HeteSim(Tom, KDD | APC) = %v, want 1", got)
	}
	// Tom is not related to SIGMOD via APC (Section 4.2).
	got, err = en.Pair(context.Background(), p, "Tom", "SIGMOD")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("HeteSim(Tom, SIGMOD | APC) = %v, want 0", got)
	}
}

// fig5Graph reconstructs the atomic-relation example of Fig. 5: a bipartite
// A-B graph where a2 connects b2, b3, b4 and b3 connects only a2.
func fig5Graph(t *testing.T) *hin.Graph {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("A", 'A')
	s.MustAddType("B", 'B')
	s.MustAddRelation("r", "A", "B")
	b := hin.NewBuilder(s)
	b.AddEdge("r", "a1", "b1")
	b.AddEdge("r", "a1", "b2")
	b.AddEdge("r", "a2", "b2")
	b.AddEdge("r", "a2", "b3")
	b.AddEdge("r", "a2", "b4")
	b.AddEdge("r", "a3", "b4")
	return b.MustBuild()
}

func TestFig5Decomposition(t *testing.T) {
	g := fig5Graph(t)
	p := metapath.MustParse(g.Schema(), "AB")

	// Fig. 5(c): unnormalized HeteSim of a2 is (0, 0.17, 0.33, 0.17).
	e := NewEngine(g, WithNormalization(false))
	rel, err := e.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := g.NodeIndex("A", "a2")
	want := []float64{0, 1.0 / 6, 1.0 / 3, 1.0 / 6}
	for j, w := range want {
		if got := rel.At(a2, j); math.Abs(got-w) > 1e-12 {
			t.Errorf("unnormalized HS(a2, b%d) = %v, want %v", j+1, got, w)
		}
	}
	// The un-normalized measure violates identity of indiscernibles: the
	// analogue of self-relatedness (b3, reachable only from a2) is 1/3,
	// not 1 — the flaw Fig. 5 highlights and normalization fixes.

	// Fig. 5(d): normalized values.
	en := NewEngine(g)
	reln, err := en.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	// HS(a2,b3) = (1/3) / ((1/sqrt3)*1) = 1/sqrt3.
	if got, w := reln.At(a2, 2), 1/math.Sqrt(3); math.Abs(got-w) > 1e-12 {
		t.Errorf("normalized HS(a2, b3) = %v, want %v", got, w)
	}
	// HS(a2,b2) = (1/6) / ((1/sqrt3)*(1/sqrt2)) = sqrt6/6.
	if got, w := reln.At(a2, 1), math.Sqrt(6)/6; math.Abs(got-w) > 1e-12 {
		t.Errorf("normalized HS(a2, b2) = %v, want %v", got, w)
	}
	// b3 is more related to a2 than b2 and b4 are, because b3 connects
	// only a2 — the Example 3 observation.
	if !(reln.At(a2, 2) > reln.At(a2, 1)) {
		t.Error("HS(a2,b3) should exceed HS(a2,b2)")
	}
}

func TestEdgeObjectLiteralEquivalence(t *testing.T) {
	// Definition 6 inserts an edge-object type E literally. Build the
	// augmented graph by hand and verify the engine's algebraic shortcut
	// (U_SE / U_TE factor matrices) gives identical scores on A[r]B as
	// the literal even path A-E-B on the augmented graph.
	g := fig5Graph(t)
	s2 := hin.NewSchema()
	s2.MustAddType("A", 'A')
	s2.MustAddType("E", 'E')
	s2.MustAddType("B", 'B')
	s2.MustAddRelation("ro", "A", "E")
	s2.MustAddRelation("ri", "E", "B")
	b := hin.NewBuilder(s2)
	w, _ := g.Adjacency("r")
	for k, tr := range w.Triplets() {
		ai, _ := g.NodeID("A", tr.Row)
		bi, _ := g.NodeID("B", tr.Col)
		eid := string(rune('e')) + string(rune('0'+k))
		b.AddEdge("ro", ai, eid)
		b.AddEdge("ri", eid, bi)
	}
	g2 := b.MustBuild()

	e1 := NewEngine(g)
	e2 := NewEngine(g2)
	p1 := metapath.MustParse(g.Schema(), "AB")
	p2 := metapath.MustParse(g2.Schema(), "AEB")
	for i := 0; i < g.NodeCount("A"); i++ {
		for j := 0; j < g.NodeCount("B"); j++ {
			v1, err := e1.PairByIndex(context.Background(), p1, i, j)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := e2.PairByIndex(context.Background(), p2, i, j)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(v1-v2) > 1e-12 {
				t.Errorf("literal vs algebraic mismatch at (%d,%d): %v vs %v", i, j, v1, v2)
			}
		}
	}
}

func TestEdgeObjectLiteralEquivalenceLongPath(t *testing.T) {
	// Definition 6 on a length-3 path: APVC decomposes through the PV
	// relation. Build the literal augmented graph where each paper→venue
	// instance becomes paper→E→venue, making the path APEVC (length 4,
	// meeting at E), and verify identical scores.
	g := randomBibGraph(77)
	s2 := hin.NewSchema()
	s2.MustAddType("author", 'A')
	s2.MustAddType("paper", 'P')
	s2.MustAddType("pubedge", 'E')
	s2.MustAddType("venue", 'V')
	s2.MustAddType("conference", 'C')
	s2.MustAddRelation("writes", "author", "paper")
	s2.MustAddRelation("pub_out", "paper", "pubedge")
	s2.MustAddRelation("pub_in", "pubedge", "venue")
	s2.MustAddRelation("part_of", "venue", "conference")
	b := hin.NewBuilder(s2)
	copyRel := func(name string, srcType, dstType string) {
		w, err := g.Adjacency(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range w.Triplets() {
			src, _ := g.NodeID(srcType, tr.Row)
			dst, _ := g.NodeID(dstType, tr.Col)
			b.AddWeightedEdge(name, src, dst, tr.Val)
		}
	}
	// Pre-register nodes in original index order so indices line up.
	for _, ty := range []string{"author", "paper", "venue", "conference"} {
		for _, id := range g.NodeIDs(ty) {
			b.AddNode(ty, id)
		}
	}
	copyRel("writes", "author", "paper")
	copyRel("part_of", "venue", "conference")
	pub, _ := g.Adjacency("published_in")
	for k, tr := range pub.Triplets() {
		pid, _ := g.NodeID("paper", tr.Row)
		vid, _ := g.NodeID("venue", tr.Col)
		eid := "e" + itoa(k)
		b.AddEdge("pub_out", pid, eid)
		b.AddEdge("pub_in", eid, vid)
	}
	g2 := b.MustBuild()

	p1 := metapath.MustParse(g.Schema(), "APVC")
	p2 := metapath.MustParse(g2.Schema(), "APEVC")
	e1 := NewEngine(g)
	e2 := NewEngine(g2)
	all1, err := e1.AllPairs(context.Background(), p1)
	if err != nil {
		t.Fatal(err)
	}
	all2, err := e2.AllPairs(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if !all1.ApproxEqual(all2, 1e-10) {
		t.Error("literal length-3 edge-object insertion disagrees with the engine's factorization")
	}
}

func TestEdgeObjectWeightedEquivalence(t *testing.T) {
	// Property 1's proof splits a weighted relation instance w as sqrt(w)
	// on each half-edge. Verify the engine's factorization matches the
	// literal weighted construction.
	s := hin.NewSchema()
	s.MustAddType("A", 'A')
	s.MustAddType("B", 'B')
	s.MustAddRelation("r", "A", "B")
	b := hin.NewBuilder(s)
	b.AddWeightedEdge("r", "a1", "b1", 4)
	b.AddWeightedEdge("r", "a1", "b2", 1)
	b.AddWeightedEdge("r", "a2", "b2", 9)
	b.AddWeightedEdge("r", "a2", "b3", 2.25)
	g := b.MustBuild()

	s2 := hin.NewSchema()
	s2.MustAddType("A", 'A')
	s2.MustAddType("E", 'E')
	s2.MustAddType("B", 'B')
	s2.MustAddRelation("ro", "A", "E")
	s2.MustAddRelation("ri", "E", "B")
	b2 := hin.NewBuilder(s2)
	w, _ := g.Adjacency("r")
	for k, tr := range w.Triplets() {
		ai, _ := g.NodeID("A", tr.Row)
		bi, _ := g.NodeID("B", tr.Col)
		eid := "e" + itoa(k)
		sq := math.Sqrt(tr.Val)
		b2.AddWeightedEdge("ro", ai, eid, sq)
		b2.AddWeightedEdge("ri", eid, bi, sq)
	}
	g2 := b2.MustBuild()

	p1 := metapath.MustParse(g.Schema(), "AB")
	p2 := metapath.MustParse(g2.Schema(), "AEB")
	for _, normalized := range []bool{true, false} {
		e1 := NewEngine(g, WithNormalization(normalized))
		e2 := NewEngine(g2, WithNormalization(normalized))
		for i := 0; i < g.NodeCount("A"); i++ {
			for j := 0; j < g.NodeCount("B"); j++ {
				v1, err := e1.PairByIndex(context.Background(), p1, i, j)
				if err != nil {
					t.Fatal(err)
				}
				v2, err := e2.PairByIndex(context.Background(), p2, i, j)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(v1-v2) > 1e-12 {
					t.Errorf("normalized=%v (%d,%d): %v vs %v", normalized, i, j, v1, v2)
				}
			}
		}
	}
}

// randomBibGraph generates a random ACM-style graph for property tests.
func randomBibGraph(seed int64) *hin.Graph {
	rng := rand.New(rand.NewSource(seed))
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddType("term", 'T')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	s.MustAddRelation("mentions", "paper", "term")
	b := hin.NewBuilder(s)
	nA, nP, nV, nC, nT := 4+rng.Intn(6), 8+rng.Intn(10), 3+rng.Intn(4), 2+rng.Intn(3), 3+rng.Intn(5)
	id := func(prefix byte, i int) string { return string(prefix) + itoa(i) }
	for i := 0; i < nP; i++ {
		// Each paper gets 1-3 authors, a venue, and 1-2 terms.
		for k := 0; k < 1+rng.Intn(3); k++ {
			b.AddEdge("writes", id('a', rng.Intn(nA)), id('p', i))
		}
		b.AddEdge("published_in", id('p', i), id('v', rng.Intn(nV)))
		for k := 0; k < 1+rng.Intn(2); k++ {
			b.AddEdge("mentions", id('p', i), id('t', rng.Intn(nT)))
		}
	}
	for i := 0; i < nV; i++ {
		b.AddNode("venue", id('v', i))
		b.AddEdge("part_of", id('v', i), id('c', rng.Intn(nC)))
	}
	return b.MustBuild()
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}

var testPaths = []string{"AP", "APV", "APVC", "APA", "APVCVPA", "APTPA", "CVPA", "VPA", "APT", "TPA", "APVCV"}

func TestProperty3Symmetry(t *testing.T) {
	// HeteSim(a, b | P) = HeteSim(b, a | P^-1) for arbitrary paths —
	// the paper's headline symmetry property.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBibGraph(seed)
		e := NewEngine(g)
		spec := testPaths[rng.Intn(len(testPaths))]
		p := metapath.MustParse(g.Schema(), spec)
		fwd, err := e.AllPairs(context.Background(), p)
		if err != nil {
			return false
		}
		bwd, err := e.AllPairs(context.Background(), p.Reverse())
		if err != nil {
			return false
		}
		return fwd.ApproxEqual(bwd.Transpose(), 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestProperty4SelfMaximum(t *testing.T) {
	// Normalized HeteSim lies in [0,1]; on a symmetric path every node
	// with any reachable middle distribution has self-relatedness 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBibGraph(seed)
		e := NewEngine(g)
		symPaths := []string{"APA", "APVCVPA", "APTPA"}
		p := metapath.MustParse(g.Schema(), symPaths[rng.Intn(len(symPaths))])
		rel, err := e.AllPairs(context.Background(), p)
		if err != nil {
			return false
		}
		n := g.NodeCount("author")
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := rel.At(i, j)
				if v < -1e-12 || v > 1+1e-12 {
					return false
				}
			}
			// Authors with no papers have zero distributions; skip.
			if deg, _ := g.Degree("writes", i); deg == 0 {
				continue
			}
			if math.Abs(rel.At(i, i)-1) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestQueryPlansAgree(t *testing.T) {
	// Pair, SingleSource and AllPairs are three plans for the same
	// quantity and must agree to numerical precision on every pair.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBibGraph(seed)
		e := NewEngine(g)
		spec := testPaths[rng.Intn(len(testPaths))]
		p := metapath.MustParse(g.Schema(), spec)
		all, err := e.AllPairs(context.Background(), p)
		if err != nil {
			return false
		}
		nS := g.NodeCount(p.Source())
		nT := g.NodeCount(p.Target())
		for trial := 0; trial < 5; trial++ {
			i := rng.Intn(nS)
			ss, err := e.SingleSourceByIndex(context.Background(), p, i)
			if err != nil {
				return false
			}
			j := rng.Intn(nT)
			pv, err := e.PairByIndex(context.Background(), p, i, j)
			if err != nil {
				return false
			}
			if math.Abs(ss[j]-all.At(i, j)) > 1e-10 || math.Abs(pv-all.At(i, j)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestUnnormalizedPlansAgreeToo(t *testing.T) {
	g := randomBibGraph(99)
	e := NewEngine(g, WithNormalization(false))
	p := metapath.MustParse(g.Schema(), "APVC")
	all, err := e.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NodeCount("author"); i++ {
		ss, err := e.SingleSourceByIndex(context.Background(), p, i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ss {
			if math.Abs(ss[j]-all.At(i, j)) > 1e-12 {
				t.Fatalf("plan mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestReachableMatrixIsSubStochastic(t *testing.T) {
	// PM_P rows are probability distributions (sum 1) except where a walk
	// dead-ends (sum 0 contribution): row sums are always in [0, 1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBibGraph(seed)
		e := NewEngine(g)
		p := metapath.MustParse(g.Schema(), testPaths[rng.Intn(len(testPaths))])
		pm, err := e.ReachableMatrix(context.Background(), p)
		if err != nil {
			return false
		}
		for _, s := range pm.RowSums() {
			if s < -1e-12 || s > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReachableFromMatchesMatrix(t *testing.T) {
	g := randomBibGraph(7)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVC")
	pm, err := e.ReachableMatrix(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.NodeCount("author"); i++ {
		v, err := e.ReachableFrom(context.Background(), p, i)
		if err != nil {
			t.Fatal(err)
		}
		if !v.ApproxEqual(pm.Row(i), 1e-12) {
			t.Fatalf("ReachableFrom(%d) disagrees with matrix row", i)
		}
	}
}

func TestCachingSemantics(t *testing.T) {
	g := randomBibGraph(3)
	p := metapath.MustParse(g.Schema(), "APVCVPA")

	cold := NewEngine(g, WithCaching(false))
	warm := NewEngine(g)
	if err := warm.Precompute(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	if warm.CacheSize() == 0 {
		t.Error("Precompute cached nothing")
	}
	a, err := cold.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := warm.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ApproxEqual(b, 1e-12) {
		t.Error("cached and uncached results differ")
	}
	warm.ClearCache()
	if got := warm.CacheSize(); got != 0 {
		t.Errorf("CacheSize after clear = %d", got)
	}
}

func TestPrefixCacheSharedAcrossPaths(t *testing.T) {
	g := randomBibGraph(4)
	e := NewEngine(g)
	// APVCVPA's left half is APVC's reachable prefix; computing the long
	// path first must let the short path reuse cached prefixes.
	long := metapath.MustParse(g.Schema(), "APVCVPA")
	if err := e.Precompute(context.Background(), long); err != nil {
		t.Fatal(err)
	}
	before := e.CacheSize()
	short := metapath.MustParse(g.Schema(), "APV")
	if _, err := e.ReachableMatrix(context.Background(), short); err != nil {
		t.Fatal(err)
	}
	if e.CacheSize() != before {
		t.Errorf("APV reachable matrix should be a cache hit (size %d -> %d)",
			before, e.CacheSize())
	}
}

func TestPruningApproximation(t *testing.T) {
	g := randomBibGraph(11)
	exact := NewEngine(g)
	approx := NewEngine(g, WithPruning(1e-4))
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	a, err := exact.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := approx.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.ApproxEqual(b, 1e-2) {
		t.Error("pruned scores deviate more than expected")
	}
}

func TestPairsSubsetMatchesAllPairs(t *testing.T) {
	g := randomBibGraph(13)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	for _, normalized := range []bool{true, false} {
		e := NewEngine(g, WithNormalization(normalized))
		all, err := e.AllPairs(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NodeCount("author")
		srcs := []int{0, n - 1, 1}
		dsts := []int{n - 1, 0}
		sub, err := e.PairsSubset(context.Background(), p, srcs, dsts)
		if err != nil {
			t.Fatal(err)
		}
		for a, i := range srcs {
			for b, j := range dsts {
				if math.Abs(sub.At(a, b)-all.At(i, j)) > 1e-12 {
					t.Fatalf("normalized=%v: subset (%d,%d) = %v, want %v",
						normalized, a, b, sub.At(a, b), all.At(i, j))
				}
			}
		}
	}
	e := NewEngine(g)
	if _, err := e.PairsSubset(context.Background(), p, []int{-1}, []int{0}); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad src subset err = %v", err)
	}
	if _, err := e.PairsSubset(context.Background(), p, []int{0}, []int{999}); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad dst subset err = %v", err)
	}
}

func TestErrorPaths(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	if _, err := e.Pair(context.Background(), p, "Nobody", "KDD"); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("unknown src err = %v", err)
	}
	if _, err := e.Pair(context.Background(), p, "Tom", "ICML"); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("unknown dst err = %v", err)
	}
	if _, err := e.PairByIndex(context.Background(), p, -1, 0); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad index err = %v", err)
	}
	if _, err := e.SingleSourceByIndex(context.Background(), p, 100); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad single-source index err = %v", err)
	}
	if _, err := e.SingleSource(context.Background(), p, "Nobody"); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad single-source id err = %v", err)
	}
	if _, err := e.ReachableFrom(context.Background(), p, 100); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad reachable index err = %v", err)
	}
}

func TestDanglingNodesScoreZero(t *testing.T) {
	// An author with no papers has no out-neighbors: Definition 3 sets
	// the relevance to 0 for every target.
	b := hin.NewBuilder(fig4Schema())
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddNode("author", "Idle")
	g := b.MustBuild()
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	got, err := e.Pair(context.Background(), p, "Idle", "KDD")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("dangling author score = %v, want 0", got)
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := randomBibGraph(21)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	want, err := e.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	e.ClearCache()
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; i < g.NodeCount("author"); i++ {
				ss, err := e.SingleSourceByIndex(context.Background(), p, i)
				if err != nil {
					done <- err
					return
				}
				for j := range ss {
					if math.Abs(ss[j]-want.At(i, j)) > 1e-10 {
						done <- errors.New("concurrent result mismatch")
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestOddPathLeftRightDimensionsAgree(t *testing.T) {
	// For odd paths both walkers land in the edge-object space E whose
	// dimension is the middle relation's instance count.
	g := randomBibGraph(5)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVC") // middle step = published_in
	h := splitPath(p)
	if h.middle == nil {
		t.Fatal("APVC must decompose with a middle step")
	}
	pml, err := e.opMatrixChain(context.Background(), h.left())
	if err != nil {
		t.Fatal(err)
	}
	pmr, err := e.opMatrixChain(context.Background(), h.right())
	if err != nil {
		t.Fatal(err)
	}
	w, _ := g.Adjacency("published_in")
	if pml.Cols() != w.NNZ() || pmr.Cols() != w.NNZ() {
		t.Errorf("edge-space dims: left %d, right %d, want %d", pml.Cols(), pmr.Cols(), w.NNZ())
	}
}
