package core_test

import (
	"context"
	"fmt"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// buildExampleGraph constructs the Fig. 4 network of the paper.
func buildExampleGraph() *hin.Graph {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	return b.MustBuild()
}

func ExampleEngine_Pair() {
	g := buildExampleGraph()
	engine := core.NewEngine(g)
	apc := metapath.MustParse(g.Schema(), "APC")
	score, err := engine.Pair(context.Background(), apc, "Tom", "KDD")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", score)
	// Output: 1.00
}

func ExampleEngine_Pair_symmetry() {
	// Property 3: HeteSim(a, b | P) equals HeteSim(b, a | P^-1).
	g := buildExampleGraph()
	engine := core.NewEngine(g)
	apc := metapath.MustParse(g.Schema(), "APC")
	fwd, _ := engine.Pair(context.Background(), apc, "Mary", "KDD")
	bwd, _ := engine.Pair(context.Background(), apc.Reverse(), "KDD", "Mary")
	fmt.Printf("%.4f %.4f\n", fwd, bwd)
	// Output: 0.5000 0.5000
}

func ExampleWithNormalization() {
	// The raw meeting probability of Example 2 in the paper.
	g := buildExampleGraph()
	engine := core.NewEngine(g, core.WithNormalization(false))
	apc := metapath.MustParse(g.Schema(), "APC")
	score, _ := engine.Pair(context.Background(), apc, "Tom", "KDD")
	fmt.Printf("%.2f\n", score)
	// Output: 0.50
}

func ExampleEngine_SingleSource() {
	g := buildExampleGraph()
	engine := core.NewEngine(g)
	apc := metapath.MustParse(g.Schema(), "APC")
	scores, _ := engine.SingleSource(context.Background(), apc, "Tom")
	for i, s := range scores {
		id, _ := g.NodeID("conference", i)
		fmt.Printf("%s %.2f\n", id, s)
	}
	// Output:
	// KDD 1.00
	// SIGMOD 0.00
}

func ExampleEngine_TopKSearch() {
	g := buildExampleGraph()
	engine := core.NewEngine(g)
	apa := metapath.MustParse(g.Schema(), "APA")
	tom, _ := g.NodeIndex("author", "Tom")
	top, _ := engine.TopKSearch(context.Background(), apa, tom, 2, 0)
	for _, s := range top {
		id, _ := g.NodeID("author", s.Index)
		fmt.Printf("%s %.2f\n", id, s.Score)
	}
	// Output:
	// Tom 1.00
	// Mary 0.50
}
