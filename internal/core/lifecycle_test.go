package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// denseBipartiteGraph builds a complete bipartite a↔b graph big enough
// that a long relevance path takes noticeable wall-clock time, so
// cancellation mid-computation is observable.
func denseBipartiteGraph(tb testing.TB, n int) *hin.Graph {
	tb.Helper()
	s := hin.NewSchema()
	s.MustAddType("a", 'A')
	s.MustAddType("b", 'B')
	s.MustAddRelation("r", "a", "b")
	b := hin.NewBuilder(s)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.AddWeightedEdge("r", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j), float64(1+(i+j)%7))
		}
	}
	return b.MustBuild()
}

// longPath returns the zig-zag path (AB)^k A of 2k steps over the dense
// bipartite schema.
func longPath(tb testing.TB, g *hin.Graph, k int) *metapath.Path {
	tb.Helper()
	spec := ""
	for i := 0; i < k; i++ {
		spec += "AB"
	}
	spec += "A"
	return metapath.MustParse(g.Schema(), spec)
}

func TestPrecanceledContext(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AllPairs(ctx, p); !errors.Is(err, context.Canceled) {
		t.Errorf("AllPairs on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := e.SingleSource(ctx, p, "Tom"); !errors.Is(err, context.Canceled) {
		t.Errorf("SingleSource on canceled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := e.PairMonteCarlo(ctx, p, 0, 0, 1000, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("PairMonteCarlo on canceled ctx: err = %v, want context.Canceled", err)
	}
	if err := e.Precompute(ctx, p); !errors.Is(err, context.Canceled) {
		t.Errorf("Precompute on canceled ctx: err = %v, want context.Canceled", err)
	}
}

// TestCancelStopsAllPairs cancels a long chain-matrix computation
// mid-flight and asserts the engine goroutine observably stops within
// 100ms of the cancel — the acceptance bound for the query lifecycle.
func TestCancelStopsAllPairs(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// Small dense blocks keep each multiply step (the cancellation poll
	// interval) well under 100ms even with -race instrumentation, while
	// the long path keeps the whole chain running for seconds.
	g := denseBipartiteGraph(t, 120)
	e := NewEngine(g)
	p := longPath(t, g, 200)

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		err  error
		done time.Time
	}
	ch := make(chan result, 1)
	go func() {
		_, err := e.AllPairs(ctx, p)
		ch <- result{err: err, done: time.Now()}
	}()

	// Let the chain get going, then pull the plug.
	time.Sleep(50 * time.Millisecond)
	canceledAt := time.Now()
	cancel()

	select {
	case res := <-ch:
		if !errors.Is(res.err, context.Canceled) {
			t.Fatalf("AllPairs returned err = %v, want context.Canceled (graph too small to outlive the cancel?)", res.err)
		}
		if lag := res.done.Sub(canceledAt); lag > 100*time.Millisecond {
			t.Errorf("AllPairs returned %v after cancel, want < 100ms", lag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AllPairs did not return within 5s of cancel")
	}
}

// TestCancelStopsSingleSource does the same for the vector chain.
func TestCancelStopsSingleSource(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	g := denseBipartiteGraph(t, 300)
	e := NewEngine(g)
	p := longPath(t, g, 400)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.SingleSource(ctx, p, "a0")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	canceledAt := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("SingleSource returned err = %v, want context.Canceled", err)
		}
		if lag := time.Since(canceledAt); lag > 100*time.Millisecond {
			t.Errorf("SingleSource returned %v after cancel, want < 100ms", lag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SingleSource did not return within 5s of cancel")
	}
}

// TestCancelStopsPairsSubset cancels mid-way through the subset plan's
// final cross product. The half-chains here are single transitions (cheap,
// uninterruptible), so the whole runtime sits in subL·subRᵀ — the multiply
// that runs in ctx-polled row blocks precisely so this cancel can land.
func TestCancelStopsPairsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	g := denseBipartiteGraph(t, 400)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "ABA")
	all := make([]int, g.NodeCount("a"))
	for i := range all {
		all[i] = i
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.PairsSubset(ctx, p, all, all)
		done <- err
	}()
	time.Sleep(25 * time.Millisecond)
	canceledAt := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PairsSubset returned err = %v, want context.Canceled (graph too small to outlive the cancel?)", err)
		}
		if lag := time.Since(canceledAt); lag > 100*time.Millisecond {
			t.Errorf("PairsSubset returned %v after cancel, want < 100ms", lag)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("PairsSubset did not return within 5s of cancel")
	}
}

func TestDeadlineExceededSurfaces(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	g := denseBipartiteGraph(t, 120)
	e := NewEngine(g)
	p := longPath(t, g, 200)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := e.AllPairs(ctx, p); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("AllPairs past deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestWithCacheLimit checks eviction keeps the chain-matrix cache bounded
// without changing any score.
func TestWithCacheLimit(t *testing.T) {
	g := fig4Graph(t)
	unlimited := NewEngine(g)
	limited := NewEngine(g, WithCacheLimit(2))
	ctx := context.Background()

	specs := []string{"APC", "APA", "CPC", "APCPA", "CPAPC", "APCPC"}
	for _, spec := range specs {
		p := metapath.MustParse(g.Schema(), spec)
		want, err := unlimited.SingleSource(ctx, p, firstNode(t, g, p.Source()))
		if err != nil {
			t.Fatalf("%s unlimited: %v", spec, err)
		}
		got, err := limited.SingleSource(ctx, p, firstNode(t, g, p.Source()))
		if err != nil {
			t.Fatalf("%s limited: %v", spec, err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-12 {
				t.Fatalf("%s: limited engine diverges at %d: %v vs %v", spec, i, got[i], want[i])
			}
		}
		if reach := limited.CacheStats().Chain; reach > 2 {
			t.Fatalf("%s: reach cache holds %d entries, limit is 2", spec, reach)
		}
	}
	if reach := unlimited.CacheStats().Chain; reach <= 2 {
		t.Fatalf("unlimited engine cached only %d chain matrices; workload too small to test eviction", reach)
	}
	if ev := limited.CacheStats().Evictions; ev == 0 {
		t.Error("limited engine reports zero evictions after exceeding the cache limit")
	}
	if ev := unlimited.CacheStats().Evictions; ev != 0 {
		t.Errorf("unlimited engine reports %d evictions", ev)
	}
}

func firstNode(tb testing.TB, g *hin.Graph, typeName string) string {
	tb.Helper()
	ids := g.NodeIDs(typeName)
	if len(ids) == 0 {
		tb.Fatalf("no nodes of type %s", typeName)
	}
	return ids[0]
}

// TestConcurrentQueriesWithEviction hammers one cache-limited engine from
// many goroutines over distinct paths, so queries race against evictions.
// Run under -race this is the cache-consistency stress test.
func TestConcurrentQueriesWithEviction(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g, WithCacheLimit(2))
	ctx := context.Background()
	specs := []string{"APC", "APA", "CPC", "APCPA", "CPAPC", "PAP", "PCP"}

	var wg sync.WaitGroup
	errs := make(chan error, 1)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				spec := specs[(w+i)%len(specs)]
				p := metapath.MustParse(g.Schema(), spec)
				if _, err := e.SingleSource(ctx, p, firstNode(t, g, p.Source())); err != nil {
					select {
					case errs <- fmt.Errorf("%s: %w", spec, err):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if reach := e.CacheStats().Chain; reach > 2 {
		t.Errorf("reach cache holds %d entries after stress, limit is 2", reach)
	}
}

func TestSingleSourceMonteCarlo(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	ctx := context.Background()
	scores, err := e.SingleSourceMonteCarlo(ctx, p, 0, 20000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != g.NodeCount("conference") {
		t.Fatalf("got %d scores, want %d", len(scores), g.NodeCount("conference"))
	}
	var sum float64
	for _, v := range scores {
		if v < 0 || v > 1 {
			t.Fatalf("walk frequency %v outside [0,1]", v)
		}
		sum += v
	}
	if sum > 1+1e-9 {
		t.Errorf("walk frequencies sum to %v > 1", sum)
	}
	// Source a-index 0 is Tom, whose papers are all in KDD: the exact
	// reaching probability of KDD is 1, so the estimate must be too.
	kdd, err := g.NodeIndex("conference", "KDD")
	if err != nil {
		t.Fatal(err)
	}
	tom, err := g.NodeIndex("author", "Tom")
	if err != nil {
		t.Fatal(err)
	}
	if tom == 0 && scores[kdd] != 1 {
		t.Errorf("MC reach of KDD from Tom = %v, want 1", scores[kdd])
	}
	if _, err := e.SingleSourceMonteCarlo(ctx, p, 0, 0, 1); err == nil {
		t.Error("SingleSourceMonteCarlo accepted 0 walks")
	}
}
