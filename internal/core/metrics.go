package core

import "hetesim/internal/obs"

// Engine-level observability: query counts and latencies per query kind,
// materialized-path cache traffic, and Monte Carlo walk volume, all in
// the process-wide registry. Per-stage structure (which multiply, which
// dims, cache hit or miss) goes to the per-query tracer instead — the
// registry answers "how much", the trace answers "where did this one
// query go".
var (
	metQueries = obs.Default().CounterVec("hetesim_engine_queries_total",
		"HeteSim engine queries by kind.", "kind")
	metQueryDur = obs.Default().HistogramVec("hetesim_engine_query_duration_seconds",
		"HeteSim engine query latency by kind.", obs.DefSecondsBuckets(), "kind")
	metCacheHits = obs.Default().Counter("hetesim_engine_cache_hits_total",
		"Chain-matrix cache hits (a materialized reachable-probability matrix was reused).")
	metCacheMisses = obs.Default().Counter("hetesim_engine_cache_misses_total",
		"Chain-matrix cache misses (a chain had to be materialized).")
	metCacheEvictions = obs.Default().Counter("hetesim_engine_cache_evictions_total",
		"Chain matrices evicted by WithCacheLimit.")
	metWalks = obs.Default().Counter("hetesim_engine_mc_walks_total",
		"Monte Carlo walks sampled across all degraded and explicit MC queries.")
	metPlanSelected = obs.Default().CounterVec("hetesim_engine_plan_selected_total",
		"Physical query plans chosen by the cost-based optimizer, by plan kind.", "kind")
	metEmbedBuilds = obs.Default().Counter("hetesim_engine_embed_builds_total",
		"Low-rank chain embeddings factorized for the topk-approx plan.")

	// Batch scheduler: how many batches arrive, how big they are, how well
	// path grouping amortizes chain propagation across their queries.
	metBatches = obs.Default().Counter("hetesim_engine_batches_total",
		"Batches executed by the path-group scheduler.")
	metBatchQueries = obs.Default().Counter("hetesim_engine_batch_queries_total",
		"Queries submitted through batches.")
	metBatchShared = obs.Default().Counter("hetesim_engine_batch_shared_queries_total",
		"Batch queries answered from group-shared chain state.")
	metBatchChainBuilds = obs.Default().Counter("hetesim_engine_batch_chain_builds_total",
		"Chain propagations (full or subset) performed by batch group preparation.")
	metBatchSize = obs.Default().Histogram("hetesim_engine_batch_size",
		"Queries per batch.", obs.DefCountBuckets())
	metBatchGroups = obs.Default().Histogram("hetesim_engine_batch_groups",
		"Distinct canonical-path groups per batch.", obs.DefCountBuckets())
	metBatchAmortization = obs.Default().Histogram("hetesim_engine_batch_amortization_ratio",
		"Queries per path group in a batch: N queries sharing one chain materialization.", obs.DefCountBuckets())
	metBatchRowSteps = obs.Default().Counter("hetesim_engine_batch_row_steps_total",
		"Row-propagation units performed by cross-group half-chain preparation.")
	metBatchNaiveRowSteps = obs.Default().Counter("hetesim_engine_batch_naive_row_steps_total",
		"Row-propagation units independent per-group preparation would have performed.")
	metBatchPrefixResumes = obs.Default().Counter("hetesim_engine_batch_prefix_resumes_total",
		"Half-chain builds resumed from a sibling build's shared prefix within a batch.")
)

// queryInstr pairs the pre-resolved per-kind counter and histogram, so
// the per-query fast path is two atomic bumps with no label lookup.
type queryInstr struct {
	count *obs.Counter
	dur   *obs.Histogram
}

func newQueryInstr(kind string) queryInstr {
	return queryInstr{count: metQueries.With(kind), dur: metQueryDur.With(kind)}
}

var queryInstrs = map[string]queryInstr{
	"pair":             newQueryInstr("pair"),
	"single_source":    newQueryInstr("single_source"),
	"all_pairs":        newQueryInstr("all_pairs"),
	"mc_pair":          newQueryInstr("mc_pair"),
	"mc_single_source": newQueryInstr("mc_single_source"),
}

// observeQuery records one finished engine query of the given kind.
func observeQuery(kind string, seconds float64) {
	qi, ok := queryInstrs[kind]
	if !ok {
		qi = newQueryInstr(kind)
	}
	qi.count.Inc()
	qi.dur.Observe(seconds)
}
