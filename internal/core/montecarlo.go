package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"time"

	"hetesim/internal/metapath"
	"hetesim/internal/obs"
	"hetesim/internal/sparse"
)

// Monte Carlo approximation of HeteSim — the "approximate algorithms [11]
// to fasten the search with a small loss of accuracy" option of
// Section 4.6. Instead of materializing reaching distributions, walkers
// are sampled from both endpoints to the meeting type and the pairwise
// meeting probability is estimated from walk-endpoint collisions:
//
//   - raw HeteSim  Σ_m p(m)·q(m) is estimated unbiasedly by the collision
//     rate between independent source walks and target walks;
//   - the norms ‖p‖, ‖q‖ of the normalized form are estimated unbiasedly
//     from within-sample collisions of *distinct* walks.
//
// The estimator's error shrinks as O(1/√walks); it is useful when a single
// cold pair query on a long path over a huge network would otherwise pay
// for full sparse propagation.

// MonteCarloResult is an approximate pair score and its sampling setup.
type MonteCarloResult struct {
	Score float64
	Walks int
}

// querySeed resolves the seed parameter of a Monte Carlo query. A
// non-zero seed is used as-is — the deterministic path tests and the CLI
// rely on. Seed 0 asks for a fresh per-query seed drawn from a single
// engine-level source, so concurrent degraded queries never share
// identical walk streams (they previously all walked with seed 1, making
// simultaneous degraded answers perfectly correlated).
func (e *Engine) querySeed(seed int64) int64 {
	if seed != 0 {
		return seed
	}
	e.seedMu.Lock()
	defer e.seedMu.Unlock()
	if e.seedRng == nil {
		e.seedRng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return e.seedRng.Int63()
}

// PairMonteCarlo estimates HeteSim(src, dst | p) from `walks` sampled
// walks per endpoint, using the engine's normalization setting. The
// estimate is deterministic for a fixed non-zero seed; seed 0 draws a
// fresh per-query seed from the engine-level source.
func (e *Engine) PairMonteCarlo(ctx context.Context, p *metapath.Path, src, dst, walks int, seed int64) (MonteCarloResult, error) {
	start := time.Now()
	defer func() { observeQuery("mc_pair", time.Since(start).Seconds()) }()
	if err := e.checkIndex(p.Source(), src); err != nil {
		return MonteCarloResult{}, err
	}
	if err := e.checkIndex(p.Target(), dst); err != nil {
		return MonteCarloResult{}, err
	}
	return e.pairMC(ctx, p, src, dst, walks, seed)
}

// pairMC is the estimator body shared by PairMonteCarlo and the optimizer's
// monte-carlo plan (which records its own query metrics and has already
// validated the node indices).
func (e *Engine) pairMC(ctx context.Context, p *metapath.Path, src, dst, walks int, seed int64) (MonteCarloResult, error) {
	if walks < 2 {
		return MonteCarloResult{}, fmt.Errorf("core: PairMonteCarlo needs at least 2 walks, got %d", walks)
	}
	h := splitPath(p)
	rng := rand.New(rand.NewSource(e.querySeed(seed)))
	srcCounts, err := e.sampleWalks(ctx, src, h.left(), walks, rng)
	if err != nil {
		return MonteCarloResult{}, err
	}
	dstCounts, err := e.sampleWalks(ctx, dst, h.right(), walks, rng)
	if err != nil {
		return MonteCarloResult{}, err
	}
	w := float64(walks)
	// Unbiased cross-collision estimate of Σ p(m) q(m).
	var dot float64
	for m, c := range srcCounts {
		if c2, ok := dstCounts[m]; ok {
			dot += float64(c) * float64(c2)
		}
	}
	dot /= w * w
	if !e.normalized {
		return MonteCarloResult{Score: dot, Walks: walks}, nil
	}
	// Unbiased within-sample estimates of Σ p(m)² and Σ q(m)² from
	// ordered distinct pairs: Σ_m c_m (c_m - 1) / (W (W-1)).
	normSq := func(counts map[int]int) float64 {
		var s float64
		for _, c := range counts {
			s += float64(c) * float64(c-1)
		}
		return s / (w * (w - 1))
	}
	pn, qn := normSq(srcCounts), normSq(dstCounts)
	if pn <= 0 || qn <= 0 || dot == 0 {
		return MonteCarloResult{Score: 0, Walks: walks}, nil
	}
	score := dot / math.Sqrt(pn*qn)
	// Sampling noise can push the ratio past the exact bound; clamp to
	// the measure's range (Property 4).
	if score > 1 {
		score = 1
	}
	return MonteCarloResult{Score: score, Walks: walks}, nil
}

// sampleWalks runs `walks` independent random walks from start through the
// chain (with the odd-path edge half-step handled by sampling a relation
// instance) and returns meeting-object visit counts. Walks that dead-end
// are dropped, matching the measure's convention that missing neighbors
// contribute zero relatedness.
func (e *Engine) sampleWalks(ctx context.Context, start int, c chain, walks int, rng *rand.Rand) (map[int]int, error) {
	sp := obs.FromContext(ctx).Start("mc_sample")
	if sp != nil {
		sp.SetAttr("side", string(c.side)).
			SetAttr("walks", strconv.Itoa(walks)).
			SetAttr("steps", strconv.Itoa(len(c.steps)))
	}
	defer sp.End()
	metWalks.Add(uint64(walks))
	// Pre-resolve the transition matrices once (middle half-step last).
	us, err := e.chainTransitions(ctx, c)
	if err != nil {
		return nil, err
	}
	counts := make(map[int]int)
	for w := 0; w < walks; w++ {
		if w&0xff == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		at := start
		ok := true
		for _, u := range us {
			at, ok = stepSample(u, at, rng)
			if !ok {
				break
			}
		}
		if ok {
			counts[at]++
		}
	}
	return counts, nil
}

// stepSample draws the next node from row `at` of a row-stochastic matrix.
func stepSample(u *sparse.Matrix, at int, rng *rand.Rand) (int, bool) {
	row := u.Row(at)
	if row.NNZ() == 0 {
		return 0, false
	}
	target := rng.Float64()
	var acc float64
	next, found := -1, false
	row.Entries(func(j int, v float64) {
		if found {
			return
		}
		acc += v
		if acc >= target {
			next, found = j, true
		}
	})
	if !found {
		// Rounding left a sliver; take the last entry.
		row.Entries(func(j int, _ float64) { next = j })
		found = next >= 0
	}
	return next, found
}

// SingleSourceMonteCarlo estimates the reaching distribution of one source
// over the target type by sampling `walks` full-path random walks, returning
// dense per-target visit frequencies. This is the graceful-degradation plan:
// when an exact single-source query blows its deadline, the server falls
// back to this estimator, whose cost is walks x path-length row samples
// regardless of how dense the half-path matrices are. The ranking it
// induces approximates the reachable-probability (PCRW) ordering — the raw
// HeteSim numerator taken in the source direction — so results must be
// marked approximate. Seeding follows the PairMonteCarlo convention: a
// non-zero seed is deterministic, 0 draws a per-query seed from the
// engine-level source.
func (e *Engine) SingleSourceMonteCarlo(ctx context.Context, p *metapath.Path, src, walks int, seed int64) ([]float64, error) {
	start := time.Now()
	defer func() { observeQuery("mc_single_source", time.Since(start).Seconds()) }()
	if err := e.checkIndex(p.Source(), src); err != nil {
		return nil, err
	}
	return e.singleSourceMC(ctx, p, src, walks, seed)
}

// singleSourceMC is the estimator body shared by SingleSourceMonteCarlo and
// the optimizer's monte-carlo plan.
func (e *Engine) singleSourceMC(ctx context.Context, p *metapath.Path, src, walks int, seed int64) ([]float64, error) {
	if walks < 1 {
		return nil, fmt.Errorf("core: SingleSourceMonteCarlo needs at least 1 walk, got %d", walks)
	}
	rng := rand.New(rand.NewSource(e.querySeed(seed)))
	counts, err := e.sampleWalks(ctx, src, pathChain(p), walks, rng)
	if err != nil {
		return nil, err
	}
	scores := make([]float64, e.g.NodeCount(p.Target()))
	for t, c := range counts {
		scores[t] = float64(c) / float64(walks)
	}
	return scores, nil
}
