package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

func TestPairMonteCarloConvergesRaw(t *testing.T) {
	// Example 2 exactly: unnormalized HeteSim(Tom, KDD | APC) = 0.5.
	g := fig4Graph(t)
	e := NewEngine(g, WithNormalization(false))
	p := metapath.MustParse(g.Schema(), "APC")
	res, err := e.PairMonteCarlo(context.Background(), p, 0, 0, 200000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Score-0.5) > 0.01 {
		t.Errorf("MC raw estimate = %v, want ~0.5", res.Score)
	}
	if res.Walks != 200000 {
		t.Errorf("Walks = %d", res.Walks)
	}
}

func TestPairMonteCarloConvergesNormalized(t *testing.T) {
	g := randomBibGraph(41)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVC")
	// Compare against the exact engine on a handful of pairs with
	// non-trivial scores.
	checked := 0
	for src := 0; src < g.NodeCount("author") && checked < 3; src++ {
		for dst := 0; dst < g.NodeCount("conference") && checked < 3; dst++ {
			exact, err := e.PairByIndex(context.Background(), p, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if exact < 0.05 {
				continue
			}
			mc, err := e.PairMonteCarlo(context.Background(), p, src, dst, 150000, 7)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(mc.Score-exact) > 0.08 {
				t.Errorf("MC(%d,%d) = %v, exact %v", src, dst, mc.Score, exact)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no pairs with non-trivial scores found")
	}
}

func TestPairMonteCarloOddPath(t *testing.T) {
	// Fig. 5 graph, atomic relation: normalized HS(a2, b3) = 1/sqrt(3).
	g := fig5Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "AB")
	a2, _ := g.NodeIndex("A", "a2")
	b3, _ := g.NodeIndex("B", "b3")
	mc, err := e.PairMonteCarlo(context.Background(), p, a2, b3, 200000, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / math.Sqrt(3)
	if math.Abs(mc.Score-want) > 0.03 {
		t.Errorf("MC odd-path = %v, want ~%v", mc.Score, want)
	}
}

func TestPairMonteCarloDeterministicBySeed(t *testing.T) {
	g := randomBibGraph(43)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVC")
	a, _ := e.PairMonteCarlo(context.Background(), p, 0, 0, 1000, 9)
	b, _ := e.PairMonteCarlo(context.Background(), p, 0, 0, 1000, 9)
	if a.Score != b.Score {
		t.Error("same seed produced different estimates")
	}
	c, _ := e.PairMonteCarlo(context.Background(), p, 0, 0, 1000, 10)
	_ = c // different seed may or may not differ; just must not panic
}

// TestQuerySeedDerivation pins the seeding contract: explicit non-zero
// seeds pass through untouched (the deterministic-test path), while seed
// 0 draws distinct values from the engine-level source so concurrent
// degraded queries don't share a walk stream.
func TestQuerySeedDerivation(t *testing.T) {
	e := NewEngine(fig4Graph(t))
	if got := e.querySeed(42); got != 42 {
		t.Errorf("querySeed(42) = %d, want passthrough", got)
	}
	seen := make(map[int64]bool)
	for i := 0; i < 64; i++ {
		s := e.querySeed(0)
		if seen[s] {
			t.Fatalf("querySeed(0) repeated %d after %d draws", s, i)
		}
		seen[s] = true
	}
	// Concurrent derivation must be race-free and still collision-free.
	results := make(chan int64, 128)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 16; i++ {
				results <- e.querySeed(0)
			}
		}()
	}
	conc := make(map[int64]bool)
	for i := 0; i < 128; i++ {
		s := <-results
		if conc[s] {
			t.Fatalf("concurrent querySeed(0) collision on %d", s)
		}
		conc[s] = true
	}
}

func TestPairMonteCarloZeroRelatedness(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	tom, _ := g.NodeIndex("author", "Tom")
	sigmod, _ := g.NodeIndex("conference", "SIGMOD")
	mc, err := e.PairMonteCarlo(context.Background(), p, tom, sigmod, 5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Score != 0 {
		t.Errorf("disjoint supports estimate = %v, want 0", mc.Score)
	}
}

func TestPairMonteCarloValidation(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	if _, err := e.PairMonteCarlo(context.Background(), p, 0, 0, 1, 1); err == nil {
		t.Error("walks=1 accepted")
	}
	if _, err := e.PairMonteCarlo(context.Background(), p, 99, 0, 10, 1); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad src err = %v", err)
	}
	if _, err := e.PairMonteCarlo(context.Background(), p, 0, 99, 10, 1); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad dst err = %v", err)
	}
}

func TestPairMonteCarloDanglingSource(t *testing.T) {
	b := hin.NewBuilder(fig4Schema())
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddNode("author", "Idle")
	g := b.MustBuild()
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	idle, _ := g.NodeIndex("author", "Idle")
	kdd, _ := g.NodeIndex("conference", "KDD")
	mc, err := e.PairMonteCarlo(context.Background(), p, idle, kdd, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if mc.Score != 0 {
		t.Errorf("dangling estimate = %v, want 0", mc.Score)
	}
}
