package core

import (
	"context"
	"strconv"

	"hetesim/internal/metapath"
	"hetesim/internal/obs"
	"hetesim/internal/sparse"
)

// Physical operators. Every query plan is assembled from four chain
// propagation operators — sparse vector propagate, full matrix
// materialization, subset-selector propagation, and the transposed
// materialization used by top-k scans — all driven by one step walker, so
// the transition resolution, middle-relation handling, context polling and
// per-step tracing live exactly once. The operators preserve the PR4
// bit-identity invariant: vector, subset and full-matrix propagation all
// accumulate each output entry's contributions in the same ascending-index
// order, so at pruning epsilon 0 every exact plan produces bit-identical
// scores.

// chain identifies one reachable-probability chain: the steps to walk, the
// optional odd-path middle half-step, and which side of the decomposition
// it is ('L', 'R', or 'P' for a full path).
type chain struct {
	steps  []metapath.Step
	middle *metapath.Step
	side   byte
}

func (h halves) left() chain  { return chain{steps: h.leftSteps, middle: h.middle, side: 'L'} }
func (h halves) right() chain { return chain{steps: h.rightSteps, middle: h.middle, side: 'R'} }

// pathChain is the undecomposed full-path chain (the PCRW matrix of
// Definition 9).
func pathChain(p *metapath.Path) chain { return chain{steps: p.Steps(), side: 'P'} }

// chainCacheKey identifies a chain's materialized matrix in the cache.
func (e *Engine) chainCacheKey(c chain) string {
	return e.chainFullKey(c.steps, c.middle, c.side)
}

// chainStart returns the node type a chain starts from.
func (e *Engine) chainStart(c chain) string {
	return e.chainStartType(c.steps, c.middle, c.side)
}

// propagate drives one chain walk: for every step — and the odd-path middle
// half-step — it polls ctx, resolves the transition matrix, and hands it to
// apply together with a step label (for tracing) and the cache key of the
// chain prefix completed by that step ("" for the middle half-step, which
// is never cached on its own). All four operators share this walker.
func (e *Engine) propagate(ctx context.Context, c chain, apply func(u *sparse.Matrix, label, prefixKey string) error) error {
	return e.propagateFrom(ctx, c, 0, apply)
}

// propagateFrom is propagate resuming after the first `from` steps — the
// walker behind warm-prefix reuse, where a cached prefix matrix supplies the
// state of the chain up to `from` and only the cold suffix is multiplied.
// Prefix cache keys stay absolute (c.steps[:i+1] of the full chain), so a
// resumed walk caches the same prefixes a cold walk would.
func (e *Engine) propagateFrom(ctx context.Context, c chain, from int, apply func(u *sparse.Matrix, label, prefixKey string) error) error {
	for i := from; i < len(c.steps); i++ {
		s := c.steps[i]
		if err := ctx.Err(); err != nil {
			return err
		}
		u, err := e.transition(s)
		if err != nil {
			return err
		}
		if err := apply(u, stepKey(s), e.chainFullKey(c.steps[:i+1], nil, c.side)); err != nil {
			return err
		}
	}
	if c.middle != nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		use, ute, err := e.middleEdgeTransitions(*c.middle)
		if err != nil {
			return err
		}
		u := use
		if c.side != 'L' {
			u = ute
		}
		if err := apply(u, "edge("+stepKey(*c.middle)+")", ""); err != nil {
			return err
		}
	}
	return nil
}

// opVectorChain propagates a single-source distribution along a chain
// without materializing matrices — the cheap operator for one-off pair
// queries and the left side of single-vs-matrix plans.
func (e *Engine) opVectorChain(ctx context.Context, start int, c chain) (*sparse.Vector, error) {
	tr := obs.FromContext(ctx)
	v := sparse.Unit(e.g.NodeCount(e.chainStart(c)), start)
	err := e.propagate(ctx, c, func(u *sparse.Matrix, label, _ string) error {
		sp := tr.Start("chain_multiply")
		v = v.MulMat(u)
		if sp != nil {
			spanVectorAttrs(sp, c.side, label, u, v).End()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// opMatrixChain materializes the reachable probability matrix of a chain,
// caching every prefix so paths sharing prefixes reuse work (the
// concatenation speedup of Section 4.6). It is the only operator that
// applies WithPruning per step and the only one that reads or writes the
// chain cache.
func (e *Engine) opMatrixChain(ctx context.Context, c chain) (*sparse.Matrix, error) {
	tr := obs.FromContext(ctx)
	fullKey := e.chainCacheKey(c)
	if e.caching {
		if m, ok := e.cacheGet(fullKey); ok {
			metCacheHits.Inc()
			if tr != nil {
				tr.Event("cache_hit", map[string]string{"key": fullKey, "side": string(c.side)})
			}
			return m, nil
		}
		metCacheMisses.Inc()
		if tr != nil {
			tr.Event("cache_miss", map[string]string{"key": fullKey, "side": string(c.side)})
		}
	}
	// Resume from the longest cached prefix — the partial-path concatenation
	// speedup of Section 4.6, and what makes a partially-warm chain cost
	// only its cold suffix (the planner's chainColdFlops prices exactly
	// this resumption).
	pm := sparse.Identity(e.g.NodeCount(e.chainStart(c)))
	from := 0
	if e.caching {
		for i := len(c.steps) - 1; i >= 1; i-- {
			if m, ok := e.cacheGet(e.chainFullKey(c.steps[:i], nil, c.side)); ok {
				pm, from = m, i
				if tr != nil {
					tr.Event("prefix_hit", map[string]string{
						"key":   e.chainFullKey(c.steps[:i], nil, c.side),
						"steps": strconv.Itoa(i),
					})
				}
				break
			}
		}
	}
	err := e.propagateFrom(ctx, c, from, func(u *sparse.Matrix, label, prefixKey string) error {
		sp := tr.Start("chain_multiply")
		pm = pm.MulAuto(u)
		if e.pruneEps > 0 {
			pm = pm.Prune(e.pruneEps)
		}
		if sp != nil {
			spanMatrixAttrs(sp, c.side, label, pm).End()
		}
		if e.caching && prefixKey != "" {
			e.cachePut(prefixKey, pm)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if e.caching {
		e.cachePut(fullKey, pm)
	}
	return pm, nil
}

// opSubsetChain propagates the identity rows of the given node indices
// through a chain without caching — the shared-subset operator of the batch
// scheduler and the subset-chain plan. Row r of the result is the reaching
// distribution of rows[r], bit-identical to the matching row of the fully
// materialized chain and to opVectorChain's sparse propagation. Like
// opVectorChain (and unlike opMatrixChain) it never prunes, so subset plans
// match the vector plan exactly even under WithPruning.
func (e *Engine) opSubsetChain(ctx context.Context, rows []int, c chain) (*sparse.Matrix, error) {
	tr := obs.FromContext(ctx)
	// Seed with the selector matrix directly — one unit entry per requested
	// row — rather than slicing a full n×n identity, so subset preparation
	// costs O(|rows|) regardless of the node count.
	seed := make([]sparse.Triplet, len(rows))
	for r, node := range rows {
		seed[r] = sparse.Triplet{Row: r, Col: node, Val: 1}
	}
	pm := sparse.New(len(rows), e.g.NodeCount(e.chainStart(c)), seed)
	err := e.propagate(ctx, c, func(u *sparse.Matrix, label, _ string) error {
		sp := tr.Start("chain_multiply")
		pm = pm.MulAuto(u)
		if sp != nil {
			spanMatrixAttrs(sp, c.side, label, pm).End()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return pm, nil
}

// opTransposedChain caches the transposed chain matrix under "T:"+key,
// giving middle-object → target access for candidate-restricted top-k
// scans.
func (e *Engine) opTransposedChain(ctx context.Context, c chain) (*sparse.Matrix, error) {
	key := "T:" + e.chainCacheKey(c)
	if m, ok := e.cacheGet(key); ok {
		return m, nil
	}
	pm, err := e.opMatrixChain(ctx, c)
	if err != nil {
		return nil, err
	}
	t := pm.Transpose()
	e.cachePut(key, t)
	return t, nil
}

// chainTransitions resolves the transition matrix of every step of a chain
// in order (middle half-step last) — the Monte Carlo sampler walks rows of
// these instead of multiplying them.
func (e *Engine) chainTransitions(ctx context.Context, c chain) ([]*sparse.Matrix, error) {
	us := make([]*sparse.Matrix, 0, len(c.steps)+1)
	err := e.propagate(ctx, c, func(u *sparse.Matrix, _, _ string) error {
		us = append(us, u)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return us, nil
}

// spanMatrixAttrs annotates a chain-multiply span with the result's
// shape and sparsity — the per-step cost accounting that makes a trace
// explain where a `PM_PL · PM'_{PR⁻¹}` query spent its time.
func spanMatrixAttrs(sp *obs.SpanHandle, side byte, step string, pm *sparse.Matrix) *obs.SpanHandle {
	if sp == nil {
		return nil
	}
	rows, cols := pm.Dims()
	return sp.SetAttr("side", string(side)).
		SetAttr("step", step).
		SetAttr("kind", "matrix").
		SetAttr("rows", strconv.Itoa(rows)).
		SetAttr("cols", strconv.Itoa(cols)).
		SetAttr("nnz", strconv.Itoa(pm.NNZ()))
}

// spanVectorAttrs annotates a vector propagation step with the transition
// matrix shape and the propagated distribution's support size.
func spanVectorAttrs(sp *obs.SpanHandle, side byte, step string, u *sparse.Matrix, v *sparse.Vector) *obs.SpanHandle {
	if sp == nil {
		return nil
	}
	sp.SetAttr("side", string(side)).
		SetAttr("step", step).
		SetAttr("kind", "vector").
		SetAttr("nnz", strconv.Itoa(v.NNZ()))
	if u != nil {
		rows, cols := u.Dims()
		sp.SetAttr("rows", strconv.Itoa(rows)).SetAttr("cols", strconv.Itoa(cols))
	}
	return sp
}
