package core

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hetesim/internal/metapath"
	"hetesim/internal/sparse"
)

// Persistence of materialized relevance paths: Section 4.6's first speedup
// is computing the relatedness of frequently-used paths offline so online
// queries only combine precomputed reaching distributions. SaveMaterialized
// writes the two half-path reachable probability matrices of a path;
// LoadMaterialized restores them into an engine's cache, after which
// SingleSource and AllPairs queries on that path never touch the adjacency
// matrices.
//
// Layout: magic "HSPM" | version u32 | path string (u32 len + bytes) |
// left matrix | right matrix, with matrices in the sparse binary format.

// ErrBadSnapshot marks a malformed or mismatched materialized-path file.
var ErrBadSnapshot = errors.New("core: bad materialized path snapshot")

var (
	snapshotMagic   = [4]byte{'H', 'S', 'P', 'M'}
	snapshotVersion = uint32(1)
)

// SaveMaterialized computes (or fetches from cache) the two half-path
// matrices of p and writes them to w.
func (e *Engine) SaveMaterialized(ctx context.Context, w io.Writer, p *metapath.Path) error {
	h := splitPath(p)
	pml, err := e.opMatrixChain(ctx, h.left())
	if err != nil {
		return err
	}
	pmr, err := e.opMatrixChain(ctx, h.right())
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, snapshotVersion); err != nil {
		return err
	}
	spec := p.String()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(spec))); err != nil {
		return err
	}
	if _, err := bw.WriteString(spec); err != nil {
		return err
	}
	if err := sparse.WriteMatrix(bw, pml); err != nil {
		return err
	}
	if err := sparse.WriteMatrix(bw, pmr); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadMaterialized reads a snapshot written by SaveMaterialized and installs
// the matrices (and their row norms) in the engine's cache for path p. The
// snapshot's recorded path must match p, and the matrix shapes must match
// the engine's graph, so a snapshot from a different path or graph is
// rejected rather than silently producing wrong scores.
func (e *Engine) LoadMaterialized(r io.Reader, p *metapath.Path) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrBadSnapshot, err)
	}
	if magic != snapshotMagic {
		return fmt.Errorf("%w: magic %q", ErrBadSnapshot, magic)
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("%w: reading version: %v", ErrBadSnapshot, err)
	}
	if version != snapshotVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, version)
	}
	var specLen uint32
	if err := binary.Read(br, binary.LittleEndian, &specLen); err != nil {
		return fmt.Errorf("%w: reading path length: %v", ErrBadSnapshot, err)
	}
	if specLen > 1<<16 {
		return fmt.Errorf("%w: implausible path length %d", ErrBadSnapshot, specLen)
	}
	specBytes := make([]byte, specLen)
	if _, err := io.ReadFull(br, specBytes); err != nil {
		return fmt.Errorf("%w: reading path: %v", ErrBadSnapshot, err)
	}
	if got, want := string(specBytes), p.String(); got != want {
		return fmt.Errorf("%w: snapshot is for path %q, not %q", ErrBadSnapshot, got, want)
	}
	pml, err := sparse.ReadMatrix(br)
	if err != nil {
		return fmt.Errorf("%w: left matrix: %v", ErrBadSnapshot, err)
	}
	pmr, err := sparse.ReadMatrix(br)
	if err != nil {
		return fmt.Errorf("%w: right matrix: %v", ErrBadSnapshot, err)
	}
	if pml.Rows() != e.g.NodeCount(p.Source()) || pmr.Rows() != e.g.NodeCount(p.Target()) {
		return fmt.Errorf("%w: matrix shapes %dx%d / %dx%d do not match graph (%d sources, %d targets)",
			ErrBadSnapshot, pml.Rows(), pml.Cols(), pmr.Rows(), pmr.Cols(),
			e.g.NodeCount(p.Source()), e.g.NodeCount(p.Target()))
	}
	if pml.Cols() != pmr.Cols() {
		return fmt.Errorf("%w: half matrices disagree on meeting dimension (%d vs %d)",
			ErrBadSnapshot, pml.Cols(), pmr.Cols())
	}
	h := splitPath(p)
	leftKey := e.chainCacheKey(h.left())
	rightKey := e.chainCacheKey(h.right())
	e.cachePut(leftKey, pml)
	e.cachePut(rightKey, pmr)
	e.chainRowNorms(leftKey, pml)
	e.chainRowNorms(rightKey, pmr)
	return nil
}
