package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"testing"

	"hetesim/internal/metapath"
)

func TestSaveLoadMaterializedRoundTrip(t *testing.T) {
	g := randomBibGraph(31)
	p := metapath.MustParse(g.Schema(), "APVCVPA")

	src := NewEngine(g)
	want, err := src.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveMaterialized(context.Background(), &buf, p); err != nil {
		t.Fatal(err)
	}

	dst := NewEngine(g)
	if err := dst.LoadMaterialized(bytes.NewReader(buf.Bytes()), p); err != nil {
		t.Fatal(err)
	}
	got, err := dst.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-12) {
		t.Error("scores differ after snapshot round trip")
	}
	// Single-source must also be served from the snapshot.
	for i := 0; i < g.NodeCount("author"); i++ {
		ss, err := dst.SingleSourceByIndex(context.Background(), p, i)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ss {
			if math.Abs(ss[j]-want.At(i, j)) > 1e-12 {
				t.Fatalf("single-source mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSaveLoadMaterializedOddPath(t *testing.T) {
	g := randomBibGraph(32)
	p := metapath.MustParse(g.Schema(), "APVC") // odd: edge-object halves
	src := NewEngine(g)
	want, err := src.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := src.SaveMaterialized(context.Background(), &buf, p); err != nil {
		t.Fatal(err)
	}
	dst := NewEngine(g)
	if err := dst.LoadMaterialized(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := dst.AllPairs(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ApproxEqual(want, 1e-12) {
		t.Error("odd-path scores differ after snapshot round trip")
	}
}

func TestLoadMaterializedRejectsMismatch(t *testing.T) {
	g := randomBibGraph(33)
	apvc := metapath.MustParse(g.Schema(), "APVC")
	apa := metapath.MustParse(g.Schema(), "APA")
	e := NewEngine(g)

	var buf bytes.Buffer
	if err := e.SaveMaterialized(context.Background(), &buf, apvc); err != nil {
		t.Fatal(err)
	}
	snapshot := buf.Bytes()

	// Wrong path.
	if err := e.LoadMaterialized(bytes.NewReader(snapshot), apa); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("wrong-path err = %v, want ErrBadSnapshot", err)
	}
	// Wrong graph (different node counts).
	g2 := randomBibGraph(999)
	if g2.NodeCount("author") != g.NodeCount("author") {
		e2 := NewEngine(g2)
		p2 := metapath.MustParse(g2.Schema(), "APVC")
		if err := e2.LoadMaterialized(bytes.NewReader(snapshot), p2); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("wrong-graph err = %v, want ErrBadSnapshot", err)
		}
	}
	// Garbage input.
	if err := e.LoadMaterialized(bytes.NewReader([]byte("junk")), apvc); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("garbage err = %v, want ErrBadSnapshot", err)
	}
	// Truncated snapshot.
	if err := e.LoadMaterialized(bytes.NewReader(snapshot[:len(snapshot)-9]), apvc); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("truncated err = %v, want ErrBadSnapshot", err)
	}
	// Corrupted magic.
	bad := append([]byte{}, snapshot...)
	bad[0] = 'X'
	if err := e.LoadMaterialized(bytes.NewReader(bad), apvc); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("bad-magic err = %v, want ErrBadSnapshot", err)
	}
}
