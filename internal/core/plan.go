package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"time"

	"hetesim/internal/metapath"
	"hetesim/internal/obs"
	"hetesim/internal/sparse"
)

// The compile → optimize → execute pipeline. Every public entry point
// lowers its request into one LogicalPlan (compile), the cost model picks a
// physical PlanKind from live signals — chain-cache warmth, the pruning
// epsilon, the amortization hint, the remaining deadline (optimize) — and a
// small set of shared physical operators runs it (execute). Section 4.6 of
// the paper frames HeteSim computation as a trade-off between online vector
// propagation and offline materialization of the reachable-probability
// chains of Definition 9; this pipeline makes that trade-off a per-query
// runtime decision instead of a property of which API method the caller
// happened to pick.
//
// Auto-selected exact plans are bit-identical: vector, subset, and
// materialized-row propagation accumulate each entry's contributions in the
// same ascending-index order (see operators.go), so switching plans never
// changes a score at pruning epsilon 0. Only the explicitly approximate
// Monte Carlo plan trades accuracy for latency.

// The plan kinds beyond the three exact plans of planner.go.
const (
	// PlanAuto asks the optimizer to choose; it is the zero-value
	// behavior of PlanOptions.Force.
	PlanAuto PlanKind = "auto"
	// PlanSubsetChain propagates selector matrices for just the requested
	// rows — the uncached subset plan of PairsSubset and the batch
	// scheduler.
	PlanSubsetChain PlanKind = "subset-chain"
	// PlanMonteCarlo samples random walks instead of propagating
	// distributions; approximate, chosen only when forced or when the
	// remaining deadline cannot fit the cheapest exact plan.
	PlanMonteCarlo PlanKind = "monte-carlo"
	// PlanTopKApprox answers top-k queries from low-rank chain embeddings:
	// over-fetch candidates by embedding inner product, re-rank them
	// through the exact operators (internal/embed). Approximate in recall
	// only — returned scores are bit-identical to the exact plan's — and
	// chosen only when forced or when the remaining deadline cannot fit
	// the exact plan but can fit this one.
	PlanTopKApprox PlanKind = "topk-approx"
)

// ErrPlanNotApplicable marks a forced plan that cannot execute the query's
// shape (e.g. pair-vectors for an all-pairs query, or monte-carlo without a
// walk budget).
var ErrPlanNotApplicable = errors.New("core: plan not applicable")

// ParsePlanKind validates a user-supplied plan name. The empty string means
// auto.
func ParsePlanKind(s string) (PlanKind, error) {
	switch k := PlanKind(s); k {
	case "", PlanAuto:
		return PlanAuto, nil
	case PlanPairVectors, PlanSingleVsMatrix, PlanAllPairs, PlanSubsetChain, PlanMonteCarlo, PlanTopKApprox:
		return k, nil
	}
	return "", fmt.Errorf("%w: unknown plan %q", ErrPlanNotApplicable, s)
}

// ResultShape is the result form a logical plan must produce.
type ResultShape string

// The query shapes the optimizer plans for.
const (
	ShapePair         ResultShape = "pair"
	ShapeSingleSource ResultShape = "single_source"
	ShapeTopK         ResultShape = "topk"
	ShapeAllPairs     ResultShape = "all_pairs"
	ShapeSubset       ResultShape = "subset"
)

// PlanOptions carries the caller's planning hints into the optimizer.
type PlanOptions struct {
	// Force pins the physical plan ("" or PlanAuto lets the cost model
	// choose). A forced plan that cannot produce the query's shape fails
	// with ErrPlanNotApplicable.
	Force PlanKind
	// Queries is the anticipated number of queries on this path; one-time
	// materialization costs amortize over it. < 1 means 1.
	Queries int
	// Walks is the Monte Carlo walk budget. 0 removes the approximate
	// plan from consideration entirely.
	Walks int
	// Seed seeds the Monte Carlo plan (0 draws a per-query engine seed).
	Seed int64
	// ErrorBudget tunes the topk-approx plan: a tighter (smaller) budget
	// buys a higher embedding rank and a deeper candidate over-fetch.
	// 0 means the default budget (0.05 → rank 20, over-fetch 4·k); must
	// otherwise lie in (0, 1).
	ErrorBudget float64
	// EmbedRank pins the topk-approx factorization rank directly,
	// overriding the budget-derived rank (clamped to the middle-type
	// dimension). 0 derives the rank from ErrorBudget.
	EmbedRank int
}

// LogicalPlan is the compiled form of one query: what to compute,
// independent of how. Every public entry point lowers into this struct.
type LogicalPlan struct {
	Path  *metapath.Path
	Shape ResultShape
	Src   int   // ShapePair, ShapeSingleSource, ShapeTopK
	Dst   int   // ShapePair
	Srcs  []int // ShapeSubset
	Dsts  []int // ShapeSubset
	K     int   // ShapeTopK
	Eps   float64
	Opts  PlanOptions

	h halves
}

// PlanDecision records what the optimizer chose and why — returned to
// callers so the server can surface it in responses, stats, and traces.
type PlanDecision struct {
	Kind   PlanKind
	Est    PlanEstimate
	Forced bool
	// Approximate is true for the Monte Carlo and topk-approx plans
	// (forced or deadline-driven).
	Approximate bool
	WarmLeft    bool // left half-chain was already materialized
	WarmRight   bool // right half-chain was already materialized
	Reason      string
	// Candidates is every applicable plan, cheapest first.
	Candidates []PlanEstimate
}

// planFlopsPerSecond converts a plan's flops estimate into wall time for
// the deadline check. Deliberately conservative (sparse kernels sustain far
// more), so only a clearly hopeless deadline forces the approximate plan.
// Overridable in tests.
var planFlopsPerSecond = 100e6

// costModel is the optimizer's view of one path's two half-chains: their
// estimated shapes plus the live cache-warmth signals. The cold* fields
// price what materialization would actually cost given the cache: zero for
// a warm chain, the cold-suffix flops for a partially warm one (the
// executor resumes from the longest cached prefix), the full chain flops
// when nothing is cached.
type costModel struct {
	left, right ChainEstimate
	warmLeft    bool
	warmRight   bool
	warmRightT  bool    // transposed right half (top-k scans) cached
	coldLeft    float64 // remaining flops to materialize the left half
	coldRight   float64 // remaining flops to materialize the right half
	coldRightT  float64 // remaining flops to materialize + transpose the right half
}

// chainColdFlops estimates the flops still needed to materialize a chain:
// zero when it is already cached, otherwise the full-chain estimate minus
// the estimate of the longest cached prefix — mirroring opMatrixChain's
// prefix resumption, so a chain whose prefix was kept warm (or row-patched
// by an incremental rewarm) is priced at its cold remainder only.
func (e *Engine) chainColdFlops(c chain, est ChainEstimate) float64 {
	if !e.caching {
		return est.Flops
	}
	if e.chainWarm(e.chainCacheKey(c)) {
		return 0
	}
	for i := len(c.steps) - 1; i >= 1; i-- {
		if !e.chainWarm(e.chainFullKey(c.steps[:i], nil, c.side)) {
			continue
		}
		pEst, err := e.estimateChainCached(chain{steps: c.steps[:i], side: c.side})
		if err != nil {
			break
		}
		if cold := est.Flops - pEst.Flops; cold > 0 {
			return cold
		}
		return 0
	}
	return est.Flops
}

// chainWarm reports whether a chain key is already materialized. A
// non-caching engine never reads the cache during execution, so it reports
// cold regardless of imports.
func (e *Engine) chainWarm(key string) bool {
	if !e.caching {
		return false
	}
	_, ok := e.cacheGet(key)
	return ok
}

// estimateChainCached memoizes estimateChain per chain key: estimates
// depend only on the transition matrices (static per graph and pruning
// epsilon), so the optimizer's per-query overhead is two map lookups, not a
// re-walk of the path.
func (e *Engine) estimateChainCached(c chain) (ChainEstimate, error) {
	key := e.chainCacheKey(c)
	e.estMu.Lock()
	if est, ok := e.estCache[key]; ok {
		e.estMu.Unlock()
		return est, nil
	}
	e.estMu.Unlock()
	est, err := e.estimateChain(c.steps, c.middle, c.side)
	if err != nil {
		return ChainEstimate{}, err
	}
	e.estMu.Lock()
	e.estCache[key] = est
	e.estMu.Unlock()
	return est, nil
}

func (e *Engine) costModelFor(h halves) (costModel, error) {
	var cm costModel
	var err error
	if cm.left, err = e.estimateChainCached(h.left()); err != nil {
		return cm, err
	}
	if cm.right, err = e.estimateChainCached(h.right()); err != nil {
		return cm, err
	}
	rightKey := e.chainCacheKey(h.right())
	cm.warmLeft = e.chainWarm(e.chainCacheKey(h.left()))
	cm.warmRight = e.chainWarm(rightKey)
	cm.warmRightT = e.chainWarm("T:" + rightKey)
	cm.coldLeft = e.chainColdFlops(h.left(), cm.left)
	cm.coldRight = e.chainColdFlops(h.right(), cm.right)
	if cm.warmRightT {
		cm.coldRightT = 0
	} else {
		cm.coldRightT = cm.coldRight + cm.right.NNZ // materialize + transpose
	}
	return cm, nil
}

// planCandidates estimates every physical plan applicable to the query's
// shape, cheapest first (stable for ties, so the legacy default plan wins a
// tie). Materialization costs are zeroed for warm chains — the live signal
// that makes matrix plans near-free once the cache holds their inputs.
func (e *Engine) planCandidates(cm costModel, lp LogicalPlan) []PlanEstimate {
	q := float64(lp.Opts.Queries)
	if q < 1 {
		q = 1
	}
	lRows := float64(maxInt(cm.left.Rows, 1))
	rRows := float64(maxInt(cm.right.Rows, 1))
	lpr := cm.left.Flops / lRows  // propagate one source vector through the left chain
	rpr := cm.right.Flops / rRows // propagate one target vector through the right chain
	lrow := cm.left.NNZ / lRows   // read one materialized left row
	rrow := cm.right.NNZ / rRows  // read one materialized right row
	matL, matR, matRT := cm.coldLeft, cm.coldRight, cm.coldRightT

	var out []PlanEstimate
	add := func(kind PlanKind, flops, mat float64, desc string) {
		out = append(out, PlanEstimate{Kind: kind, Flops: flops, Materialize: mat, Description: desc})
	}

	switch lp.Shape {
	case ShapePair:
		add(PlanPairVectors, q*(lpr+rpr), 0,
			"propagate sparse vectors from both endpoints, combine at the meeting type")
		add(PlanSingleVsMatrix, matR+q*(lpr+lrow+rrow), matR,
			"materialize the right half; per query, one vector chain and one row dot")
		add(PlanAllPairs, matL+matR+q*(lrow+rrow), matL+matR,
			"materialize both halves; queries are row-vs-row dots")
	case ShapeSingleSource:
		add(PlanSingleVsMatrix, matR+q*(lpr+cm.right.NNZ), matR,
			"materialize the right half; per query, one vector chain and one SpMV")
		add(PlanAllPairs, matL+matR+q*(lrow+cm.right.NNZ), matL+matR,
			"materialize both halves; per query, one row lookup and one SpMV")
	case ShapeTopK:
		scan := cm.right.NNZ // candidate-restricted scan upper bound
		add(PlanSingleVsMatrix, matRT+q*(lpr+scan), matRT,
			"transpose the right half; per query, one vector chain and a candidate scan")
		add(PlanAllPairs, matL+matRT+q*(lrow+scan), matL+matRT,
			"materialize the left half too; per query, one row lookup and a candidate scan")
		rank := embedRankFor(lp.Opts, cm.right.Cols)
		fetch := float64(embedOverFetch(lp.Opts) * maxInt(lp.K, 1))
		coldEmbed := 0.0
		if !e.embedWarm(embedCacheKey(rank, e.chainCacheKey(lp.h.right()))) {
			coldEmbed = matR + embedBuildFlops(cm.right, rank)
		}
		add(PlanTopKApprox, coldEmbed+q*(lpr+rRows*float64(rank)+fetch*rrow), coldEmbed,
			"score rank-r embeddings, exact-re-rank an over-fetched candidate set; approximate recall, exact scores")
	case ShapeAllPairs:
		product := cm.left.NNZ * cm.right.NNZ / float64(maxInt(cm.left.Cols, 1))
		add(PlanAllPairs, matL+matR+product, matL+matR+product,
			"materialize the full relevance matrix; queries are lookups")
	case ShapeSubset:
		fracL := rowFraction(len(lp.Srcs), cm.left.Rows)
		fracR := rowFraction(len(lp.Dsts), cm.right.Rows)
		subProd := fracL * cm.left.NNZ * fracR * cm.right.NNZ / float64(maxInt(cm.left.Cols, 1))
		add(PlanAllPairs, matL+matR+subProd, matL+matR,
			"materialize both halves, multiply only the selected rows")
		add(PlanSubsetChain, fracL*cm.left.Flops+fracR*cm.right.Flops+subProd, 0,
			"propagate selector matrices for the selected rows only; nothing cached")
	}
	if lp.Opts.Walks > 0 && mcShape(lp.Shape) {
		steps := len(lp.h.leftSteps) + len(lp.h.rightSteps)
		if lp.h.middle != nil {
			steps += 2
		}
		if lp.Shape != ShapePair {
			steps = len(lp.Path.Steps()) // full-path walks for single-source shapes
		}
		add(PlanMonteCarlo, q*float64(lp.Opts.Walks)*float64(maxInt(steps, 1)), 0,
			"sample random walks; approximate, error O(1/sqrt(walks))")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Flops < out[j].Flops })
	return out
}

// mcShape reports whether the Monte Carlo estimator can produce a shape.
func mcShape(s ResultShape) bool {
	return s == ShapePair || s == ShapeSingleSource || s == ShapeTopK
}

func rowFraction(n, rows int) float64 {
	if rows <= 0 {
		return 1
	}
	f := float64(n) / float64(rows)
	if f > 1 {
		return 1
	}
	return f
}

// legacyKind is the physical plan each shape's entry point hardcoded before
// the optimizer existed. Auto selection pins it whenever plan switching
// could change scores (pruning makes matrix and vector plans diverge) or
// the amortization assumption fails (caching disabled: materialized chains
// are thrown away, so matrix plans never pay off across queries).
func legacyKind(s ResultShape) PlanKind {
	switch s {
	case ShapePair:
		return PlanPairVectors
	case ShapeSingleSource, ShapeTopK:
		return PlanSingleVsMatrix
	default:
		return PlanAllPairs
	}
}

func findCandidate(cands []PlanEstimate, k PlanKind) (PlanEstimate, bool) {
	for _, c := range cands {
		if c.Kind == k {
			return c, true
		}
	}
	return PlanEstimate{}, false
}

// pickPlan turns the candidate list into a decision: forced plans are
// validated against the shape, auto selection takes the cheapest exact
// candidate (subject to the pruning/caching pinning rules), and a walk
// budget plus a hopeless remaining deadline downgrade the choice to the
// approximate Monte Carlo plan.
func (e *Engine) pickPlan(ctx context.Context, lp LogicalPlan, cm costModel, cands []PlanEstimate) (PlanDecision, error) {
	d := PlanDecision{WarmLeft: cm.warmLeft, WarmRight: cm.warmRight, Candidates: cands}
	if f := lp.Opts.Force; f != "" && f != PlanAuto {
		est, ok := findCandidate(cands, f)
		if !ok {
			return d, fmt.Errorf("%w: %s cannot answer a %s query", ErrPlanNotApplicable, f, lp.Shape)
		}
		d.Kind, d.Est, d.Forced, d.Reason = f, est, true, "forced"
		d.Approximate = f == PlanMonteCarlo || f == PlanTopKApprox
		return d, nil
	}
	if len(cands) == 0 {
		return d, fmt.Errorf("%w: no plan for shape %s", ErrPlanNotApplicable, lp.Shape)
	}

	var chosen PlanEstimate
	switch {
	case e.pruneEps > 0:
		// Materialized chains prune per step, vector and subset chains do
		// not; switching plans would change scores within the pruning
		// bound, so a pruned engine keeps each entry point's legacy plan.
		chosen, _ = findCandidate(cands, legacyKind(lp.Shape))
		d.Reason = "pruning pins the legacy plan"
	case !e.caching:
		chosen, _ = findCandidate(cands, legacyKind(lp.Shape))
		d.Reason = "caching disabled"
	default:
		for _, c := range cands {
			if c.Kind != PlanMonteCarlo && c.Kind != PlanTopKApprox { // never approximate on cost alone
				chosen = c
				break
			}
		}
		d.Reason = "cheapest"
		if lp.Shape == ShapeSubset && chosen.Kind == PlanSubsetChain {
			// Cache-value rule (mirrors the batch scheduler): when subset
			// propagation costs at least half of full materialization,
			// materialize instead — nearly the same work now, and the
			// cached chains serve every later query on the path.
			fullProp := cm.coldLeft + cm.coldRight
			subProp := rowFraction(len(lp.Srcs), cm.left.Rows)*cm.left.Flops +
				rowFraction(len(lp.Dsts), cm.right.Rows)*cm.right.Flops
			if 2*subProp >= fullProp {
				if ap, ok := findCandidate(cands, PlanAllPairs); ok {
					chosen = ap
					d.Reason = "subset large enough to amortize materialization"
				}
			}
		}
	}
	if chosen.Kind == "" {
		chosen = cands[0]
		d.Reason = "cheapest"
	}

	// Deadline rule: an exact plan whose estimated work cannot fit the
	// remaining deadline is downgraded up front, instead of burning the
	// whole budget to fail. Top-k queries prefer the low-rank embedding
	// plan when its own estimate (including a cold factorization, if any)
	// fits the remaining budget — it re-ranks with exact scores, so it
	// degrades recall only. Monte Carlo is the fallback when a walk
	// budget is available (its candidate exists only then).
	if deadline, has := ctx.Deadline(); has {
		remaining := time.Until(deadline).Seconds()
		if remaining <= 0 || chosen.Flops > remaining*planFlopsPerSecond {
			if ta, ok := findCandidate(cands, PlanTopKApprox); ok &&
				remaining > 0 && ta.Flops <= remaining*planFlopsPerSecond {
				chosen = ta
				d.Approximate = true
				d.Reason = "deadline downgrade: embedding top-k fits the remaining budget"
			} else if mc, ok := findCandidate(cands, PlanMonteCarlo); ok {
				chosen = mc
				d.Approximate = true
				d.Reason = "remaining deadline cannot fit the exact plan"
			}
		}
	}
	d.Kind, d.Est = chosen.Kind, chosen
	return d, nil
}

// optimize runs the cost model over a compiled query, records the selection
// in the plan counters, and emits the plan_select trace span carrying the
// chosen kind and its estimated flops.
func (e *Engine) optimize(ctx context.Context, lp LogicalPlan) (PlanDecision, error) {
	cm, err := e.costModelFor(lp.h)
	if err != nil {
		return PlanDecision{}, err
	}
	d, err := e.pickPlan(ctx, lp, cm, e.planCandidates(cm, lp))
	if err != nil {
		return d, err
	}
	e.notePlan(d.Kind)
	if sp := obs.FromContext(ctx).Start("plan_select"); sp != nil {
		sp.SetAttr("path", lp.Path.String()).
			SetAttr("shape", string(lp.Shape)).
			SetAttr("kind", string(d.Kind)).
			SetAttr("est_flops", strconv.FormatFloat(d.Est.Flops, 'f', 0, 64)).
			SetAttr("forced", strconv.FormatBool(d.Forced)).
			SetAttr("warm_left", strconv.FormatBool(d.WarmLeft)).
			SetAttr("warm_right", strconv.FormatBool(d.WarmRight)).
			SetAttr("reason", d.Reason).
			End()
	}
	return d, nil
}

// notePlan bumps the per-kind selection counters (registry and engine).
func (e *Engine) notePlan(k PlanKind) {
	metPlanSelected.With(string(k)).Inc()
	e.planMu.Lock()
	e.planCounts[k]++
	e.planMu.Unlock()
}

// PlanSelections returns how many times the optimizer has chosen each plan
// kind on this engine, keyed by kind name — surfaced in /v1/stats.
func (e *Engine) PlanSelections() map[string]uint64 {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	out := make(map[string]uint64, len(e.planCounts))
	for k, n := range e.planCounts {
		out[string(k)] = n
	}
	return out
}

// ---------------------------------------------------------------------------
// Executors: one per result shape, each dispatching on the chosen physical
// plan. Exact plans differ only in where the two reaching distributions
// come from (propagated vector, materialized row, or subset row), so they
// share the combine/normalize tails and stay bit-identical.

// pairVectors resolves the two reaching distributions of a pair query under
// the chosen plan.
func (e *Engine) pairVectors(ctx context.Context, lp LogicalPlan, kind PlanKind) (left, right *sparse.Vector, err error) {
	h := lp.h
	switch kind {
	case PlanPairVectors:
		if left, err = e.opVectorChain(ctx, lp.Src, h.left()); err != nil {
			return nil, nil, err
		}
		right, err = e.opVectorChain(ctx, lp.Dst, h.right())
	case PlanSingleVsMatrix:
		if left, err = e.opVectorChain(ctx, lp.Src, h.left()); err != nil {
			return nil, nil, err
		}
		var pmr *sparse.Matrix
		if pmr, err = e.opMatrixChain(ctx, h.right()); err == nil {
			right = pmr.Row(lp.Dst)
		}
	case PlanAllPairs:
		var pml, pmr *sparse.Matrix
		if pml, err = e.opMatrixChain(ctx, h.left()); err != nil {
			return nil, nil, err
		}
		if pmr, err = e.opMatrixChain(ctx, h.right()); err == nil {
			left, right = pml.Row(lp.Src), pmr.Row(lp.Dst)
		}
	default:
		err = fmt.Errorf("%w: %s cannot answer a pair query", ErrPlanNotApplicable, kind)
	}
	if err != nil {
		return nil, nil, err
	}
	return left, right, nil
}

func (e *Engine) execPair(ctx context.Context, lp LogicalPlan, d PlanDecision) (float64, error) {
	if d.Kind == PlanMonteCarlo {
		res, err := e.pairMC(ctx, lp.Path, lp.Src, lp.Dst, lp.Opts.Walks, lp.Opts.Seed)
		return res.Score, err
	}
	left, right, err := e.pairVectors(ctx, lp, d.Kind)
	if err != nil {
		return 0, err
	}
	sp := obs.FromContext(ctx).Start("normalize")
	defer sp.End()
	if e.normalized {
		return left.Cosine(right), nil
	}
	return left.Dot(right), nil
}

// leftVector resolves a single-source query's left reaching distribution:
// propagated for single-vs-matrix, a materialized row for all-pairs.
func (e *Engine) leftVector(ctx context.Context, lp LogicalPlan, kind PlanKind) (*sparse.Vector, error) {
	switch kind {
	case PlanSingleVsMatrix:
		return e.opVectorChain(ctx, lp.Src, lp.h.left())
	case PlanAllPairs:
		pml, err := e.opMatrixChain(ctx, lp.h.left())
		if err != nil {
			return nil, err
		}
		return pml.Row(lp.Src), nil
	}
	return nil, fmt.Errorf("%w: %s cannot answer a %s query", ErrPlanNotApplicable, kind, lp.Shape)
}

func (e *Engine) execSingleSource(ctx context.Context, lp LogicalPlan, d PlanDecision) ([]float64, error) {
	if d.Kind == PlanMonteCarlo {
		return e.singleSourceMC(ctx, lp.Path, lp.Src, lp.Opts.Walks, lp.Opts.Seed)
	}
	tr := obs.FromContext(ctx)
	left, err := e.leftVector(ctx, lp, d.Kind)
	if err != nil {
		return nil, err
	}
	pmr, err := e.opMatrixChain(ctx, lp.h.right())
	if err != nil {
		return nil, err
	}
	sp := tr.Start("combine")
	scores := pmr.MulVec(left.Dense())
	if sp != nil {
		sp.SetAttr("targets", strconv.Itoa(len(scores))).End()
	}
	sp = tr.Start("normalize")
	if e.normalized {
		rns := e.chainRowNorms(e.chainCacheKey(lp.h.right()), pmr)
		normalizeSingleSource(scores, left.Norm(), rns)
	}
	sp.End()
	return scores, nil
}

func (e *Engine) execTopK(ctx context.Context, lp LogicalPlan, d PlanDecision) ([]Scored, error) {
	if d.Kind == PlanMonteCarlo {
		scores, err := e.singleSourceMC(ctx, lp.Path, lp.Src, lp.Opts.Walks, lp.Opts.Seed)
		if err != nil {
			return nil, err
		}
		return rankScores(scores, lp.K), nil
	}
	if d.Kind == PlanTopKApprox {
		return e.topKApprox(ctx, lp)
	}
	left, err := e.leftVector(ctx, lp, d.Kind)
	if err != nil {
		return nil, err
	}
	return e.topKFrom(ctx, lp.Path, lp.h, left, lp.K, lp.Eps)
}

// rankScores ranks a dense score vector exactly the way topKFrom ranks:
// descending by score, ties by ascending index, zeros dropped.
func rankScores(scores []float64, k int) []Scored {
	out := make([]Scored, 0, k)
	for i, s := range scores {
		if s != 0 {
			out = append(out, Scored{Index: i, Score: s})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

func (e *Engine) execAllPairs(ctx context.Context, lp LogicalPlan, d PlanDecision) (*sparse.Matrix, error) {
	if d.Kind != PlanAllPairs {
		return nil, fmt.Errorf("%w: %s cannot answer an all-pairs query", ErrPlanNotApplicable, d.Kind)
	}
	tr := obs.FromContext(ctx)
	h := lp.h
	pml, err := e.opMatrixChain(ctx, h.left())
	if err != nil {
		return nil, err
	}
	pmr, err := e.opMatrixChain(ctx, h.right())
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sp := tr.Start("combine")
	rel := pml.MulAuto(pmr.Transpose())
	if sp != nil {
		spanMatrixAttrs(sp, 'B', "combine", rel).End()
	}
	if !e.normalized {
		return rel, nil
	}
	sp = tr.Start("normalize")
	defer sp.End()
	ln := e.chainRowNorms(e.chainCacheKey(h.left()), pml)
	rn := e.chainRowNorms(e.chainCacheKey(h.right()), pmr)
	li := make([]float64, len(ln))
	for i, x := range ln {
		li[i] = invNorm(x)
	}
	ri := make([]float64, len(rn))
	for i, x := range rn {
		ri[i] = invNorm(x)
	}
	return rel.ScaleRows(li).ScaleCols(ri), nil
}

func invNorm(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

func (e *Engine) execSubset(ctx context.Context, lp LogicalPlan, d PlanDecision) (*sparse.Matrix, error) {
	h := lp.h
	var subL, subR *sparse.Matrix
	switch d.Kind {
	case PlanAllPairs:
		pml, err := e.opMatrixChain(ctx, h.left())
		if err != nil {
			return nil, err
		}
		pmr, err := e.opMatrixChain(ctx, h.right())
		if err != nil {
			return nil, err
		}
		subL, subR = pml.SelectRows(lp.Srcs), pmr.SelectRows(lp.Dsts)
	case PlanSubsetChain:
		var err error
		if subL, err = e.opSubsetChain(ctx, lp.Srcs, h.left()); err != nil {
			return nil, err
		}
		if subR, err = e.opSubsetChain(ctx, lp.Dsts, h.right()); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: %s cannot answer a subset query", ErrPlanNotApplicable, d.Kind)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rel, err := mulBlockedCtx(ctx, subL, subR.Transpose())
	if err != nil {
		return nil, err
	}
	if !e.normalized {
		return rel, nil
	}
	ln := subL.RowNorms()
	rn := subR.RowNorms()
	for i := range ln {
		ln[i] = invNorm(ln[i])
	}
	for i := range rn {
		rn[i] = invNorm(rn[i])
	}
	return rel.ScaleRows(ln).ScaleCols(rn), nil
}

// ---------------------------------------------------------------------------
// Plan-aware public entry points. The legacy methods (PairByIndex,
// SingleSourceByIndex, TopKSearch, AllPairs, PairsSubset) are thin wrappers
// over these with zero PlanOptions.

// PairWithPlan computes HeteSim(src, dst | p) through the optimizer,
// returning the score and the plan decision that produced it.
func (e *Engine) PairWithPlan(ctx context.Context, p *metapath.Path, src, dst int, o PlanOptions) (float64, PlanDecision, error) {
	if err := e.checkIndex(p.Source(), src); err != nil {
		return 0, PlanDecision{}, err
	}
	if err := e.checkIndex(p.Target(), dst); err != nil {
		return 0, PlanDecision{}, err
	}
	lp := LogicalPlan{Path: p, Shape: ShapePair, Src: src, Dst: dst, Opts: o, h: splitPath(p)}
	d, err := e.optimize(ctx, lp)
	if err != nil {
		return 0, d, err
	}
	kind := "pair"
	if d.Kind == PlanMonteCarlo {
		kind = "mc_pair"
	}
	start := time.Now()
	defer func() { observeQuery(kind, time.Since(start).Seconds()) }()
	score, err := e.execPair(ctx, lp, d)
	return score, d, err
}

// SingleSourceWithPlan computes the scores of one source against every
// target through the optimizer.
func (e *Engine) SingleSourceWithPlan(ctx context.Context, p *metapath.Path, src int, o PlanOptions) ([]float64, PlanDecision, error) {
	if err := e.checkIndex(p.Source(), src); err != nil {
		return nil, PlanDecision{}, err
	}
	lp := LogicalPlan{Path: p, Shape: ShapeSingleSource, Src: src, Opts: o, h: splitPath(p)}
	d, err := e.optimize(ctx, lp)
	if err != nil {
		return nil, d, err
	}
	kind := "single_source"
	if d.Kind == PlanMonteCarlo {
		kind = "mc_single_source"
	}
	start := time.Now()
	defer func() { observeQuery(kind, time.Since(start).Seconds()) }()
	scores, err := e.execSingleSource(ctx, lp, d)
	return scores, d, err
}

// TopKSearchWithPlan runs a top-k search through the optimizer. The Monte
// Carlo plan ranks walk frequencies and ignores eps.
func (e *Engine) TopKSearchWithPlan(ctx context.Context, p *metapath.Path, src, k int, eps float64, o PlanOptions) ([]Scored, PlanDecision, error) {
	if k <= 0 {
		return nil, PlanDecision{}, fmt.Errorf("core: TopKSearch k=%d must be positive", k)
	}
	if eps < 0 || eps >= 1 {
		return nil, PlanDecision{}, fmt.Errorf("core: TopKSearch eps=%v outside [0,1)", eps)
	}
	if b := o.ErrorBudget; b < 0 || b >= 1 {
		return nil, PlanDecision{}, fmt.Errorf("core: TopKSearch error budget %v outside [0,1)", b)
	}
	if err := e.checkIndex(p.Source(), src); err != nil {
		return nil, PlanDecision{}, err
	}
	lp := LogicalPlan{Path: p, Shape: ShapeTopK, Src: src, K: k, Eps: eps, Opts: o, h: splitPath(p)}
	d, err := e.optimize(ctx, lp)
	if err != nil {
		return nil, d, err
	}
	kind := "topk"
	switch d.Kind {
	case PlanMonteCarlo:
		kind = "mc_topk"
	case PlanTopKApprox:
		kind = "topk_approx"
	}
	start := time.Now()
	defer func() { observeQuery(kind, time.Since(start).Seconds()) }()
	out, err := e.execTopK(ctx, lp, d)
	return out, d, err
}

// AllPairsWithPlan computes the full relevance matrix through the
// optimizer (which has exactly one exact plan for this shape; forcing any
// other fails with ErrPlanNotApplicable).
func (e *Engine) AllPairsWithPlan(ctx context.Context, p *metapath.Path, o PlanOptions) (*sparse.Matrix, PlanDecision, error) {
	lp := LogicalPlan{Path: p, Shape: ShapeAllPairs, Opts: o, h: splitPath(p)}
	d, err := e.optimize(ctx, lp)
	if err != nil {
		return nil, d, err
	}
	start := time.Now()
	defer func() { observeQuery("all_pairs", time.Since(start).Seconds()) }()
	m, err := e.execAllPairs(ctx, lp, d)
	return m, d, err
}

// PairsSubsetWithPlan computes the relevance matrix restricted to the given
// source and target subsets through the optimizer, choosing between
// materializing the halves and the uncached selector-subset propagation.
func (e *Engine) PairsSubsetWithPlan(ctx context.Context, p *metapath.Path, srcs, dsts []int, o PlanOptions) (*sparse.Matrix, PlanDecision, error) {
	for _, i := range srcs {
		if err := e.checkIndex(p.Source(), i); err != nil {
			return nil, PlanDecision{}, err
		}
	}
	for _, j := range dsts {
		if err := e.checkIndex(p.Target(), j); err != nil {
			return nil, PlanDecision{}, err
		}
	}
	lp := LogicalPlan{Path: p, Shape: ShapeSubset, Srcs: srcs, Dsts: dsts, Opts: o, h: splitPath(p)}
	d, err := e.optimize(ctx, lp)
	if err != nil {
		return nil, d, err
	}
	m, err := e.execSubset(ctx, lp, d)
	return m, d, err
}
