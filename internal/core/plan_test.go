package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hetesim/internal/metapath"
)

// Forcing any exact physical plan must return bit-identical scores: the
// operators accumulate contributions in the same ascending-index order
// regardless of whether distributions are propagated, materialized, or
// selected, so `==` holds — not just approximate equality.
func TestForcedPlansBitIdentical(t *testing.T) {
	exactPlans := []PlanKind{PlanPairVectors, PlanSingleVsMatrix, PlanAllPairs}
	for seed := int64(0); seed < 8; seed++ {
		g := randomBibGraph(seed)
		rng := rand.New(rand.NewSource(seed))
		for _, spec := range []string{"APVCVPA", "APTPA", "APT", "APVC"} { // even and odd paths
			p := metapath.MustParse(g.Schema(), spec)
			nSrc := g.NodeCount(p.Source())
			nDst := g.NodeCount(p.Target())
			src, dst := rng.Intn(nSrc), rng.Intn(nDst)

			// Pair: every exact plan on a fresh engine, compared exactly.
			var base float64
			for i, kind := range exactPlans {
				e := NewEngine(g)
				score, d, err := e.PairWithPlan(context.Background(), p, src, dst, PlanOptions{Force: kind})
				if err != nil {
					t.Fatalf("seed %d %s plan %s: %v", seed, spec, kind, err)
				}
				if d.Kind != kind || !d.Forced {
					t.Fatalf("decision = %+v, want forced %s", d, kind)
				}
				if i == 0 {
					base = score
				} else if score != base {
					t.Errorf("seed %d %s: plan %s score %v != pair-vectors %v",
						seed, spec, kind, score, base)
				}
			}

			// Single-source: the two applicable exact plans, element-exact.
			var baseScores []float64
			for i, kind := range []PlanKind{PlanSingleVsMatrix, PlanAllPairs} {
				e := NewEngine(g)
				scores, _, err := e.SingleSourceWithPlan(context.Background(), p, src, PlanOptions{Force: kind})
				if err != nil {
					t.Fatalf("seed %d %s single-source %s: %v", seed, spec, kind, err)
				}
				if i == 0 {
					baseScores = scores
					continue
				}
				for j := range scores {
					if scores[j] != baseScores[j] {
						t.Errorf("seed %d %s: single-source %s[%d] = %v, want %v",
							seed, spec, kind, j, scores[j], baseScores[j])
					}
				}
			}

			// Top-k: identical ranked lists under both plans.
			var baseTop []Scored
			for i, kind := range []PlanKind{PlanSingleVsMatrix, PlanAllPairs} {
				e := NewEngine(g)
				top, _, err := e.TopKSearchWithPlan(context.Background(), p, src, 5, 0, PlanOptions{Force: kind})
				if err != nil {
					t.Fatalf("seed %d %s topk %s: %v", seed, spec, kind, err)
				}
				if i == 0 {
					baseTop = top
					continue
				}
				if len(top) != len(baseTop) {
					t.Fatalf("seed %d %s: topk %s returned %d results, want %d",
						seed, spec, kind, len(top), len(baseTop))
				}
				for j := range top {
					if top[j] != baseTop[j] {
						t.Errorf("seed %d %s: topk %s[%d] = %+v, want %+v",
							seed, spec, kind, j, top[j], baseTop[j])
					}
				}
			}

			// Subset: materialized selection vs selector-chain propagation.
			srcs := []int{src, (src + 1) % nSrc}
			dsts := []int{dst, (dst + 1) % nDst}
			eA := NewEngine(g)
			mA, _, err := eA.PairsSubsetWithPlan(context.Background(), p, srcs, dsts, PlanOptions{Force: PlanAllPairs})
			if err != nil {
				t.Fatalf("subset all-pairs: %v", err)
			}
			eB := NewEngine(g)
			mB, dB, err := eB.PairsSubsetWithPlan(context.Background(), p, srcs, dsts, PlanOptions{Force: PlanSubsetChain})
			if err != nil {
				t.Fatalf("subset subset-chain: %v", err)
			}
			if dB.Kind != PlanSubsetChain {
				t.Fatalf("subset decision = %+v", dB)
			}
			for i := range srcs {
				for j := range dsts {
					if mA.At(i, j) != mB.At(i, j) {
						t.Errorf("seed %d %s subset (%d,%d): all-pairs %v != subset-chain %v",
							seed, spec, i, j, mA.At(i, j), mB.At(i, j))
					}
				}
			}
		}
	}
}

// The Monte Carlo plan is the one plan allowed to deviate — within sampling
// error (O(1/sqrt(walks)); 20k walks keeps a [0,1] score within 0.08 in
// practice, mirroring the montecarlo_test tolerances).
func TestForcedMonteCarloWithinTolerance(t *testing.T) {
	g := randomBibGraph(17)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	e := NewEngine(g)
	exact, _, err := e.PairWithPlan(context.Background(), p, 0, 1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	score, d, err := e.PairWithPlan(context.Background(), p, 0, 1,
		PlanOptions{Force: PlanMonteCarlo, Walks: 20000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PlanMonteCarlo || !d.Approximate || !d.Forced {
		t.Fatalf("decision = %+v", d)
	}
	if math.Abs(score-exact) > 0.08 {
		t.Errorf("monte-carlo = %v, exact = %v", score, exact)
	}
}

// Auto selection must respond to the live signals: cold single queries
// propagate vectors, warm caches flip to materialized-row plans, and an
// amortization hint flips to materialization even when cold.
func TestPlanChoiceFlips(t *testing.T) {
	g := randomBibGraph(29)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	ctx := context.Background()

	e := NewEngine(g)
	_, d, err := e.PairWithPlan(ctx, p, 0, 1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PlanPairVectors {
		t.Errorf("cold single pair chose %s, want %s", d.Kind, PlanPairVectors)
	}
	if d.WarmLeft || d.WarmRight {
		t.Errorf("cold engine reported warm halves: %+v", d)
	}

	// Warm both half-chains: materialization is now free, so row lookups
	// beat re-propagating vectors.
	if err := e.Precompute(ctx, p); err != nil {
		t.Fatal(err)
	}
	_, d, err = e.PairWithPlan(ctx, p, 0, 1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PlanAllPairs {
		t.Errorf("warm pair chose %s, want %s", d.Kind, PlanAllPairs)
	}
	if !d.WarmLeft || !d.WarmRight {
		t.Errorf("warm engine did not report warmth: %+v", d)
	}
	if d.Est.Materialize != 0 {
		t.Errorf("warm plan estimates materialization cost %v, want 0", d.Est.Materialize)
	}

	// A cold engine with a huge amortization hint also flips to
	// materialization: the one-time cost divides away.
	e2 := NewEngine(g)
	_, d, err = e2.PairWithPlan(ctx, p, 0, 1, PlanOptions{Queries: 1_000_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind == PlanPairVectors {
		t.Errorf("10^9-query hint still chose %s", d.Kind)
	}

	// Pruning pins the legacy plan regardless of warmth: matrix chains
	// prune per step, vector chains do not, so switching would move scores.
	ep := NewEngine(g, WithPruning(0.01))
	if err := ep.Precompute(ctx, p); err != nil {
		t.Fatal(err)
	}
	_, d, err = ep.PairWithPlan(ctx, p, 0, 1, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PlanPairVectors {
		t.Errorf("pruned engine chose %s, want pinned %s", d.Kind, PlanPairVectors)
	}
}

// Explain shares the optimizer's cost model, so a precomputed path reports
// free materialization and flags the warm halves.
func TestExplainReportsCacheWarmth(t *testing.T) {
	g := randomBibGraph(31)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	e := NewEngine(g)
	_, cold, err := e.Explain(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range cold {
		if pe.Kind != PlanPairVectors && pe.Materialize == 0 {
			t.Errorf("cold %s reports free materialization", pe.Kind)
		}
	}
	if err := e.Precompute(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	out, warm, err := e.Explain(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, pe := range warm {
		if pe.Materialize != 0 {
			t.Errorf("warm %s reports materialization cost %v, want 0", pe.Kind, pe.Materialize)
		}
	}
	if !strings.Contains(out, "warm") {
		t.Errorf("warm Explain output does not mention cache warmth:\n%s", out)
	}
}

// With a walk budget and a deadline too short for the exact plan, the
// optimizer proactively downgrades to Monte Carlo instead of letting the
// exact plan burn the deadline and fail.
func TestDeadlineForcesMonteCarlo(t *testing.T) {
	old := planFlopsPerSecond
	planFlopsPerSecond = 1e-6 // any exact plan now looks hopeless
	defer func() { planFlopsPerSecond = old }()

	g := randomBibGraph(37)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	e := NewEngine(g)
	ctx, cancel := context.WithTimeout(context.Background(), 5e9) // 5s: generous for the walks
	defer cancel()
	_, d, err := e.SingleSourceWithPlan(ctx, p, 0, PlanOptions{Walks: 200})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != PlanMonteCarlo || !d.Approximate {
		t.Fatalf("decision = %+v, want deadline-driven monte-carlo", d)
	}
	if d.Forced {
		t.Error("deadline downgrade should not report forced")
	}

	// Without a walk budget the same deadline keeps the exact plan: there
	// is no approximate fallback to downgrade to.
	_, d, err = e.SingleSourceWithPlan(ctx, p, 0, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind == PlanMonteCarlo {
		t.Error("downgraded to monte-carlo without a walk budget")
	}
}

func TestForcedPlanNotApplicable(t *testing.T) {
	g := randomBibGraph(41)
	p := metapath.MustParse(g.Schema(), "APVC")
	e := NewEngine(g)
	ctx := context.Background()

	cases := []struct {
		name string
		err  error
	}{
		{"pair-vectors for single-source", func() error {
			_, _, err := e.SingleSourceWithPlan(ctx, p, 0, PlanOptions{Force: PlanPairVectors})
			return err
		}()},
		{"subset-chain for pair", func() error {
			_, _, err := e.PairWithPlan(ctx, p, 0, 0, PlanOptions{Force: PlanSubsetChain})
			return err
		}()},
		{"monte-carlo without walks", func() error {
			_, _, err := e.PairWithPlan(ctx, p, 0, 0, PlanOptions{Force: PlanMonteCarlo})
			return err
		}()},
		{"pair-vectors for all-pairs", func() error {
			_, _, err := e.AllPairsWithPlan(ctx, p, PlanOptions{Force: PlanPairVectors})
			return err
		}()},
		{"monte-carlo for subset", func() error {
			_, _, err := e.PairsSubsetWithPlan(ctx, p, []int{0}, []int{0}, PlanOptions{Force: PlanMonteCarlo, Walks: 100})
			return err
		}()},
	}
	for _, c := range cases {
		if !errors.Is(c.err, ErrPlanNotApplicable) {
			t.Errorf("%s: err = %v, want ErrPlanNotApplicable", c.name, c.err)
		}
	}
}

func TestParsePlanKind(t *testing.T) {
	for _, s := range []string{"", "auto", "pair-vectors", "single-vs-matrix", "all-pairs", "subset-chain", "monte-carlo", "topk-approx"} {
		if _, err := ParsePlanKind(s); err != nil {
			t.Errorf("ParsePlanKind(%q) = %v", s, err)
		}
	}
	if _, err := ParsePlanKind("bogus"); !errors.Is(err, ErrPlanNotApplicable) {
		t.Errorf("bogus plan err = %v", err)
	}
}

func TestPlanSelectionCounters(t *testing.T) {
	g := randomBibGraph(43)
	p := metapath.MustParse(g.Schema(), "APVC")
	e := NewEngine(g)
	ctx := context.Background()
	if _, _, err := e.PairWithPlan(ctx, p, 0, 0, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.PairWithPlan(ctx, p, 0, 0, PlanOptions{Force: PlanAllPairs}); err != nil {
		t.Fatal(err)
	}
	counts := e.PlanSelections()
	if counts[string(PlanPairVectors)] != 1 {
		t.Errorf("pair-vectors count = %d, want 1 (counts %v)", counts[string(PlanPairVectors)], counts)
	}
	if counts[string(PlanAllPairs)] != 1 {
		t.Errorf("all-pairs count = %d, want 1 (counts %v)", counts[string(PlanAllPairs)], counts)
	}
}

// The legacy entry points are wrappers over the planner; their scores must
// not have moved. (The broader regression suite covers values; this pins the
// wrapper wiring itself.)
func TestLegacyEntryPointsDelegate(t *testing.T) {
	g := randomBibGraph(47)
	p := metapath.MustParse(g.Schema(), "APVC")
	e := NewEngine(g)
	ctx := context.Background()
	legacy, err := e.PairByIndex(ctx, p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	planned, d, err := e.PairWithPlan(ctx, p, 0, 0, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if legacy != planned {
		t.Errorf("PairByIndex = %v, PairWithPlan = %v", legacy, planned)
	}
	if len(e.PlanSelections()) == 0 {
		t.Error("legacy entry point did not go through the optimizer")
	}
	_ = d
}
