package core

import (
	"context"
	"fmt"
	"strings"

	"hetesim/internal/metapath"
)

// Query planning for relevance paths. A HeteSim query has several physical
// plans — sparse vector propagation from both endpoints, vector against a
// materialized half, the full matrix product, Monte Carlo sampling — whose
// costs diverge by orders of magnitude depending on the path's type
// cardinalities and densities. The planner estimates the work of each plan
// from the adjacency statistics (a classic database cardinality estimation,
// applied to the reachable probability chains of Definition 9) and Explain
// renders the comparison, so operators can choose what to materialize.

// PlanKind identifies a physical query plan.
type PlanKind string

// The available plans.
const (
	PlanPairVectors    PlanKind = "pair-vectors"     // two sparse vector chains + dot
	PlanSingleVsMatrix PlanKind = "single-vs-matrix" // one vector chain against the right-half matrix
	PlanAllPairs       PlanKind = "all-pairs"        // full half-matrix product
)

// ChainEstimate predicts the shape of one half-chain's reachable
// probability matrix.
type ChainEstimate struct {
	Rows int
	Cols int
	// NNZ is the predicted non-zero count under an independence
	// assumption on row supports (capped by the dense size).
	NNZ float64
	// Flops is the predicted multiply-adds to materialize the chain.
	Flops float64
}

// PlanEstimate is one plan's predicted cost for a query on a path.
type PlanEstimate struct {
	Kind PlanKind
	// Flops estimates multiply-add work for one query, including (for
	// matrix plans) the one-time materialization amortized into the
	// first query.
	Flops float64
	// Materialize is the one-time cost component included in Flops.
	Materialize float64
	Description string
}

// Explain estimates the cost of every applicable pair plan for a query on
// path p, cheapest first, and renders a report. queries is the anticipated
// number of queries on this path: materialization costs amortize over it
// (Section 4.6's offline materialization trade-off made explicit). It runs
// the same candidate generator the optimizer executes with, including the
// live cache-warmth signal: a half-chain already materialized reports
// Materialize: 0 and is flagged warm in the report.
func (e *Engine) Explain(p *metapath.Path, queries int) (string, []PlanEstimate, error) {
	if queries < 1 {
		queries = 1
	}
	h := splitPath(p)
	cm, err := e.costModelFor(h)
	if err != nil {
		return "", nil, err
	}
	lp := LogicalPlan{Path: p, Shape: ShapePair, Opts: PlanOptions{Queries: queries}, h: h}
	plans := e.planCandidates(cm, lp)

	warm := func(w bool) string {
		if w {
			return " (warm: cached, materialization free)"
		}
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "EXPLAIN %s (%d queries)\n", p, queries)
	fmt.Fprintf(&b, "  left half : %d x %d, ~%.0f nnz, ~%.0f flops to materialize%s\n",
		cm.left.Rows, cm.left.Cols, cm.left.NNZ, cm.left.Flops, warm(cm.warmLeft))
	fmt.Fprintf(&b, "  right half: %d x %d, ~%.0f nnz, ~%.0f flops to materialize%s\n",
		cm.right.Rows, cm.right.Cols, cm.right.NNZ, cm.right.Flops, warm(cm.warmRight))
	for i, pl := range plans {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Fprintf(&b, "%s %-16s ~%12.0f flops  %s\n", marker, pl.Kind, pl.Flops, pl.Description)
	}
	return b.String(), plans, nil
}

// estimateChain predicts the half-chain matrix shape by propagating row
// supports through each step: if the current matrix has expected row
// support s and the next transition has average row support d over n
// columns, the product's expected row support is min(n, s·d) under
// independence, and its flops are rows·s·d.
func (e *Engine) estimateChain(steps []metapath.Step, middle *metapath.Step, side byte) (ChainEstimate, error) {
	startType := e.chainStartType(steps, middle, side)
	rows := e.g.NodeCount(startType)
	est := ChainEstimate{Rows: rows, Cols: rows, NNZ: float64(rows)} // identity
	support := 1.0                                                   // expected nnz per row
	// Per-step pruning drops entries below eps; a sub-stochastic row keeps
	// at most 1/eps of them, capping the support growth of pruned chains.
	pruneCap := 0.0
	if e.pruneEps > 0 {
		pruneCap = 1 / e.pruneEps
	}
	advance := func(stepRows, stepCols int, stepNNZ float64) {
		if stepRows == 0 {
			support = 0
			est.Cols = stepCols
			est.NNZ = 0
			return
		}
		avg := stepNNZ / float64(stepRows)
		est.Flops += float64(rows) * support * avg
		support *= avg
		if support > float64(stepCols) {
			support = float64(stepCols)
		}
		if pruneCap > 0 && support > pruneCap {
			support = pruneCap
		}
		est.Cols = stepCols
		est.NNZ = float64(rows) * support
		if dense := float64(rows) * float64(stepCols); est.NNZ > dense {
			est.NNZ = dense
		}
	}
	for _, s := range steps {
		u, err := e.transition(s)
		if err != nil {
			return ChainEstimate{}, err
		}
		r, c := u.Dims()
		advance(r, c, float64(u.NNZ()))
	}
	if middle != nil {
		use, ute, err := e.middleEdgeTransitions(*middle)
		if err != nil {
			return ChainEstimate{}, err
		}
		u := use
		if side != 'L' {
			u = ute
		}
		r, c := u.Dims()
		advance(r, c, float64(u.NNZ()))
	}
	return est, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ChainStats returns the planner's estimate and, when materialize is true,
// the actual materialized shape of a path's left and right halves — useful
// for validating the cost model.
func (e *Engine) ChainStats(ctx context.Context, p *metapath.Path, materialize bool) (estL, estR ChainEstimate, actL, actR ChainEstimate, err error) {
	h := splitPath(p)
	estL, err = e.estimateChain(h.leftSteps, h.middle, 'L')
	if err != nil {
		return
	}
	estR, err = e.estimateChain(h.rightSteps, h.middle, 'R')
	if err != nil {
		return
	}
	if !materialize {
		return
	}
	pml, err2 := e.opMatrixChain(ctx, h.left())
	if err2 != nil {
		err = err2
		return
	}
	pmr, err2 := e.opMatrixChain(ctx, h.right())
	if err2 != nil {
		err = err2
		return
	}
	actL = ChainEstimate{Rows: pml.Rows(), Cols: pml.Cols(), NNZ: float64(pml.NNZ())}
	actR = ChainEstimate{Rows: pmr.Rows(), Cols: pmr.Cols(), NNZ: float64(pmr.NNZ())}
	return
}
