package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"hetesim/internal/metapath"
)

func TestExplainRendersAllPlans(t *testing.T) {
	g := randomBibGraph(51)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	out, plans, err := e.Explain(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 3 {
		t.Fatalf("plans = %d, want 3", len(plans))
	}
	// Cheapest first.
	for i := 1; i < len(plans); i++ {
		if plans[i].Flops < plans[i-1].Flops {
			t.Error("plans not sorted by cost")
		}
	}
	for _, want := range []string{"EXPLAIN", "left half", "right half",
		string(PlanPairVectors), string(PlanSingleVsMatrix), string(PlanAllPairs)} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain output missing %q", want)
		}
	}
	// queries < 1 is clamped, not an error.
	if _, _, err := e.Explain(p, 0); err != nil {
		t.Errorf("queries=0 err = %v", err)
	}
}

func TestExplainAmortizationFlipsPlans(t *testing.T) {
	// With one query, vector propagation should beat materializing the
	// full relevance matrix; with very many queries, all-pairs lookups
	// must win.
	g := randomBibGraph(53)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	_, one, err := e.Explain(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one[0].Kind == PlanAllPairs {
		t.Errorf("single query picked %s", one[0].Kind)
	}
	_, many, err := e.Explain(p, 1_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if many[0].Kind != PlanAllPairs {
		t.Errorf("10^9 queries picked %s", many[0].Kind)
	}
}

func TestChainEstimateTracksActualNNZ(t *testing.T) {
	// The independence estimate should land within a generous factor of
	// the materialized nnz on random networks — it is a planner, not an
	// oracle.
	f := func(seed int64) bool {
		g := randomBibGraph(seed)
		e := NewEngine(g)
		rng := rand.New(rand.NewSource(seed))
		p := metapath.MustParse(g.Schema(), testPaths[rng.Intn(len(testPaths))])
		estL, estR, actL, actR, err := e.ChainStats(context.Background(), p, true)
		if err != nil {
			return false
		}
		within := func(est, act ChainEstimate) bool {
			if est.Rows != act.Rows || est.Cols != act.Cols {
				return false
			}
			if act.NNZ == 0 {
				return true // trivially fine on empty chains
			}
			ratio := est.NNZ / act.NNZ
			return ratio > 0.05 && ratio < 20
		}
		return within(estL, actL) && within(estR, actR)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestChainStatsWithoutMaterialization(t *testing.T) {
	g := randomBibGraph(57)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVC")
	estL, estR, actL, actR, err := e.ChainStats(context.Background(), p, false)
	if err != nil {
		t.Fatal(err)
	}
	if estL.Rows == 0 || estR.Rows == 0 {
		t.Error("estimates empty")
	}
	if actL.Rows != 0 || actR.Rows != 0 {
		t.Error("actuals should be zero without materialization")
	}
	if e.CacheSize() > 6 { // transitions + edge matrices only, no chains
		t.Errorf("estimation materialized chains: cache size %d", e.CacheSize())
	}
}
