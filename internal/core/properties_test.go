package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// Paper-property suite over seeded random graphs (run by `make properties`
// under -race -count=2). Where the existing quick.Check properties assert
// the paper's theorems to a loose tolerance, these tests pin the stronger
// guarantees the engine actually provides: symmetry is *bit-exact* for
// even-length paths (every plan accumulates contributions in the same
// ascending-index order, and multiplication commutes bitwise), and only
// odd paths — whose reversed middle edge-objects are enumerated in a
// different column order — need a floating-point tolerance.

// Even-length relevance paths decompose into two pure half-chains.
var evenSpecs = []string{"APA", "APT", "APTPA", "APVCV", "APVCVPA", "TPA"}

// Odd-length paths split on a middle relation whose edge instances become
// literal middle objects (Definition 6).
var oddSpecs = []string{"AP", "TP", "APVC", "PVCV"}

// Symmetric paths P = P⁻¹, the precondition of Properties 4 and 5.
var symmetricSpecs = []string{"APA", "APTPA", "APVCVPA", "PAP", "TPT", "VPV"}

var propertySeeds = []int64{3, 17, 59}

// TestPropertyRandomSymmetry is Property 3 (HS(a,b|P) = HS(b,a|P⁻¹)) on
// seeded random graphs, at the sharpest tolerance each path class admits:
// exact equality for even paths, 1e-12 for odd ones.
func TestPropertyRandomSymmetry(t *testing.T) {
	ctx := context.Background()
	for _, seed := range propertySeeds {
		g := randomBibGraph(seed)
		norm := NewEngine(g)
		raw := NewEngine(g, WithNormalization(false))
		rng := rand.New(rand.NewSource(seed + 1000))

		check := func(e *Engine, spec string, matTol, pairTol float64, label string) {
			p := metapath.MustParse(g.Schema(), spec)
			rp := p.Reverse()
			fwd, err := e.AllPairs(ctx, p)
			if err != nil {
				t.Fatalf("seed %d %s AllPairs(%s): %v", seed, label, spec, err)
			}
			bwd, err := e.AllPairs(ctx, rp)
			if err != nil {
				t.Fatalf("seed %d %s AllPairs(%s): %v", seed, label, rp, err)
			}
			if !bwd.ApproxEqual(fwd.Transpose(), matTol) {
				t.Errorf("seed %d %s: AllPairs(%s) != AllPairs(%s)ᵀ within %v", seed, label, spec, rp, matTol)
			}
			// The pair plan: same property through the vector chains.
			nS, nT := g.NodeCount(p.Source()), g.NodeCount(p.Target())
			for trial := 0; trial < 4; trial++ {
				i, j := rng.Intn(nS), rng.Intn(nT)
				a, err := e.PairByIndex(ctx, p, i, j)
				if err != nil {
					t.Fatal(err)
				}
				b, err := e.PairByIndex(ctx, rp, j, i)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(a-b) > pairTol {
					t.Errorf("seed %d %s: HS(%d,%d|%s)=%v but HS(%d,%d|%s)=%v", seed, label, i, j, spec, a, j, i, rp, b)
				}
			}
		}

		for _, spec := range evenSpecs {
			// Even paths: the reversed path's half-chains are exactly the
			// original's swapped, and every dot product sums the same
			// intersection in the same ascending order — bit-exact. The
			// normalized matrix plan alone scales by 1/|row| and 1/|col| in
			// opposite orders, so it rounds within an ulp; the cosine of
			// the pair plan multiplies the norms commutatively and stays
			// bit-exact.
			check(raw, spec, 0, 0, "raw")
			check(norm, spec, 1e-14, 0, "norm")
		}
		for _, spec := range oddSpecs {
			// Odd paths: the reversed middle relation enumerates its edge
			// instances in transposed triplet order, permuting the literal
			// edge-object columns, so sums associate differently.
			check(raw, spec, 1e-12, 1e-12, "raw")
			check(norm, spec, 1e-12, 1e-12, "norm")
		}
	}
}

// TestPropertyRandomSelfMaximumAndRange is Property 4 on seeded random
// graphs: normalized HeteSim lies in [0,1], and on a symmetric path every
// node with a non-empty reaching distribution is its own best match with
// HS(a,a) = 1.
func TestPropertyRandomSelfMaximumAndRange(t *testing.T) {
	ctx := context.Background()
	for _, seed := range propertySeeds {
		g := randomBibGraph(seed)
		e := NewEngine(g)
		for _, spec := range symmetricSpecs {
			p := metapath.MustParse(g.Schema(), spec)
			if !p.IsSymmetric() {
				t.Fatalf("%s is not symmetric", spec)
			}
			rel, err := e.AllPairs(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			n := g.NodeCount(p.Source())
			for i := 0; i < n; i++ {
				self := rel.At(i, i)
				rowMax := 0.0
				for j := 0; j < n; j++ {
					v := rel.At(i, j)
					if v < -1e-12 || v > 1+1e-12 {
						t.Fatalf("seed %d %s: HS(%d,%d)=%v outside [0,1]", seed, spec, i, j, v)
					}
					rowMax = math.Max(rowMax, v)
				}
				if rowMax == 0 {
					continue // no reachable middle distribution
				}
				// cos(v,v) = dot/(√dot·√dot): exact up to sqrt rounding.
				if math.Abs(self-1) > 1e-12 {
					t.Errorf("seed %d %s: HS(%d,%d)=%v, want 1", seed, spec, i, i, self)
				}
				if self+1e-12 < rowMax {
					t.Errorf("seed %d %s: self score %v below row max %v", seed, spec, self, rowMax)
				}
			}
		}
	}
}

// TestPropertyRandomSemiMetric is Property 5: d(a,b) = 1 − HS(a,b|P) on a
// symmetric path is a semi-metric — non-negative, symmetric, and zero on
// the diagonal. (The triangle inequality is deliberately NOT asserted:
// the paper's Section 3.4 shows HeteSim distance does not satisfy it.)
func TestPropertyRandomSemiMetric(t *testing.T) {
	ctx := context.Background()
	for _, seed := range propertySeeds {
		g := randomBibGraph(seed)
		e := NewEngine(g)
		for _, spec := range []string{"APA", "APTPA", "PVP"} {
			p := metapath.MustParse(g.Schema(), spec)
			rel, err := e.AllPairs(ctx, p)
			if err != nil {
				t.Fatal(err)
			}
			n := g.NodeCount(p.Source())
			for i := 0; i < n; i++ {
				if rel.At(i, i) != 0 && math.Abs(1-rel.At(i, i)) > 1e-12 {
					t.Errorf("seed %d %s: d(%d,%d)=%v, want 0", seed, spec, i, i, 1-rel.At(i, i))
				}
				for j := 0; j < n; j++ {
					d := 1 - rel.At(i, j)
					if d < -1e-12 {
						t.Errorf("seed %d %s: d(%d,%d)=%v negative", seed, spec, i, j, d)
					}
					if math.Abs(d-(1-rel.At(j, i))) > 1e-12 {
						t.Errorf("seed %d %s: d(%d,%d) != d(%d,%d)", seed, spec, i, j, j, i)
					}
				}
			}
		}
	}
}

// TestPropertyRandomIndiscernibles pins the identity-of-indiscernibles
// direction of Property 5: d(a,b) = 0 exactly when the reaching
// distributions are parallel — equal distributions score 1, proportional
// (scaled) distributions score 1, and genuinely different ones score < 1.
func TestPropertyRandomIndiscernibles(t *testing.T) {
	b := hin.NewBuilder(fig4Schema())
	// twin1 and twin2 write the same papers with the same weights;
	// scaled writes the same papers at double weight (parallel, not
	// equal); other overlaps on one paper only.
	for _, paper := range []string{"p1", "p2"} {
		b.AddEdge("writes", "twin1", paper)
		b.AddEdge("writes", "twin2", paper)
		b.AddWeightedEdge("writes", "scaled", paper, 2)
	}
	b.AddEdge("writes", "other", "p2")
	b.AddEdge("writes", "other", "p3")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	g := b.MustBuild()
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APA")

	score := func(a, bID string) float64 {
		v, err := e.Pair(context.Background(), p, a, bID)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if d := 1 - score("twin1", "twin2"); math.Abs(d) > 1e-12 {
		t.Errorf("d(twin1,twin2) = %v, want 0 (identical distributions)", d)
	}
	if d := 1 - score("twin1", "scaled"); math.Abs(d) > 1e-12 {
		t.Errorf("d(twin1,scaled) = %v, want 0 (parallel distributions)", d)
	}
	if d := 1 - score("twin1", "other"); d < 1e-3 {
		t.Errorf("d(twin1,other) = %v, want clearly positive (distinguishable)", d)
	}
}
