package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// Incremental chain-matrix maintenance. When a batch of edge/node deltas
// turns graph G into G', Property 2 (U_AB = V'_BA) localizes the damage:
// an edge delta on relation R perturbs only row src of R's forward
// transition matrix and row dst of its inverse. A cached chain matrix row s
// therefore changes only if a walker starting at s could, in the OLD graph,
// reach a perturbed transition row at the step that uses it — every other
// row walks through bit-identical transition rows and lands on bit-identical
// values. RewarmFrom exploits this: it carries every cached chain of the
// old engine into a new engine over G', recomputing just the dirty rows
// through opSubsetChain (whose rows are bit-identical to materialized rows)
// and splicing them in, so the rewarmed cache is bit-for-bit the cache a
// cold engine over G' would build — at a fraction of the multiplication
// work when the delta touches few rows.

// RewarmStats summarizes what RewarmFrom did, for logging and tests.
type RewarmStats struct {
	Carried    int `json:"carried"`     // chains reused unchanged (dimension-padded at most)
	RowPatched int `json:"row_patched"` // chains maintained by row-masked recompute
	Rebuilt    int `json:"rebuilt"`     // chains fully rematerialized
	Dropped    int `json:"dropped"`     // chains abandoned (cold recompute on next use)
	Rows       int `json:"rows"`        // rows recomputed across all row-patched chains

	// Embedding maintenance: low-rank embeddings ride on their base chain,
	// so they are carried only when that chain was carried with unchanged
	// dimensions; anything else drops and rebuilds lazily on next use.
	EmbedsCarried int `json:"embeds_carried"`
	EmbedsDropped int `json:"embeds_dropped"`
}

func (s RewarmStats) String() string {
	return fmt.Sprintf("carried=%d row_patched=%d (rows=%d) rebuilt=%d dropped=%d",
		s.Carried, s.RowPatched, s.Rows, s.Rebuilt, s.Dropped)
}

// RewarmFrom fills this engine's chain cache from src — an engine over the
// pre-delta graph — given the dirty summary of the delta that produced this
// engine's graph. Both engines must share options; the receiver is assumed
// unpublished (not yet serving), src may be serving concurrently.
//
// Per cached chain: if a relation whose edges changed appears as the chain's
// middle half-step, the chain is rebuilt (middle edge-transition columns are
// indexed by relation instance, so any instance change shifts them
// globally); if the engine prunes, row-masking is unsound (materialized
// chains prune per step, subset recompute does not) and touched chains are
// rebuilt; otherwise only the dirty rows are recomputed and spliced in. Row
// norms are patched the same way. Failure modes degrade to dropping a chain
// — always safe, the next query rebuilds it cold.
func (e *Engine) RewarmFrom(ctx context.Context, src *Engine, d *hin.Dirty) (RewarmStats, error) {
	var st RewarmStats
	if src == nil || d == nil {
		return st, fmt.Errorf("core: RewarmFrom requires a source engine and a delta summary")
	}
	if !e.caching {
		return st, nil
	}
	if e.pruneEps != src.pruneEps {
		return st, fmt.Errorf("core: RewarmFrom across pruning eps %g -> %g", src.pruneEps, e.pruneEps)
	}

	chains := src.ExportChains()
	keys := make([]string, 0, len(chains))
	for k := range chains {
		keys = append(keys, k)
	}
	// Shortest chains first so prefixes are warm before the longer chains
	// that could rebuild through them; "T:" keys sort after their base via
	// the second pass below.
	sort.Slice(keys, func(i, j int) bool { return len(keys[i]) < len(keys[j]) })
	carriedChains := make(map[string]bool)

	for _, key := range keys {
		if strings.HasPrefix(key, "T:") {
			continue
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
		c, _, err := parseChainKey(e.g.Schema(), key)
		if err != nil {
			st.Dropped++
			continue
		}
		if c.middle != nil && d.Touches(c.middle.Relation.Name) {
			if _, err := e.opMatrixChain(ctx, c); err != nil {
				return st, err
			}
			st.Rebuilt++
			continue
		}
		rows, full := e.chainDirtyRows(src, c, d)
		if full || (e.pruneEps > 0 && len(rows) > 0) {
			if _, err := e.opMatrixChain(ctx, c); err != nil {
				return st, err
			}
			st.Rebuilt++
			continue
		}
		nRows, nCols, err := e.chainDims(c)
		if err != nil {
			st.Dropped++
			continue
		}
		nm := chains[key].Resize(nRows, nCols)
		if len(rows) == 0 {
			e.cachePut(key, nm)
			e.carryNorms(src, key, nRows, nil, nil)
			st.Carried++
			carriedChains[key] = true
			continue
		}
		sub, err := e.opSubsetChain(ctx, rows, c)
		if err != nil {
			return st, err
		}
		nm = nm.ReplaceRows(rows, sub)
		e.cachePut(key, nm)
		e.carryNorms(src, key, nRows, rows, sub.RowNorms())
		st.RowPatched++
		st.Rows += len(rows)
	}

	// Transposed chains ("T:"+key): the cold path caches the transpose of
	// the materialized base chain, so transposing the rewarmed base is
	// bit-identical. A base that went missing (evicted upstream, dropped
	// here) drops the transpose too.
	for _, key := range keys {
		base, ok := strings.CutPrefix(key, "T:")
		if !ok {
			continue
		}
		if nm, ok := e.cacheGet(base); ok {
			e.cachePut(key, nm.Transpose())
			st.Carried++
		} else {
			st.Dropped++
		}
	}
	st.EmbedsCarried, st.EmbedsDropped = e.rewarmEmbeddings(src, carriedChains)
	return st, nil
}

// chainDims returns the shape of a chain's materialized matrix on the
// engine's graph: start-type count × end-type count, or × relation-instance
// count for a middle half-chain.
func (e *Engine) chainDims(c chain) (int, int, error) {
	rows := e.g.NodeCount(e.chainStart(c))
	if c.middle != nil {
		w, err := e.g.Adjacency(c.middle.Relation.Name)
		if err != nil {
			return 0, 0, err
		}
		return rows, w.NNZ(), nil
	}
	if len(c.steps) == 0 {
		return 0, 0, fmt.Errorf("core: chain with no steps and no middle")
	}
	return rows, e.g.NodeCount(c.steps[len(c.steps)-1].To()), nil
}

// chainDirtyRows computes which rows of a chain's matrix the delta
// perturbed, in the new graph's indexing. Row s is dirty iff some step i
// has a perturbed transition row r (d.Rows for forward steps, d.Cols for
// inverse — Property 2) that s's step-(i-1) reaching distribution touches.
// The old engine's cached prefix matrices answer exactly that reachability
// question: a row not yet dirty at step i has an unchanged prefix
// distribution, so consulting the OLD prefix is not an approximation. A
// missing prefix forces a full rebuild (second return true).
func (e *Engine) chainDirtyRows(src *Engine, c chain, d *hin.Dirty) ([]int, bool) {
	dirty := make(map[int]bool)
	for i, step := range c.steps {
		changed := d.Rows[step.Relation.Name]
		if step.Inverse {
			changed = d.Cols[step.Relation.Name]
		}
		if len(changed) == 0 {
			continue
		}
		if i == 0 {
			// The first step's transition rows ARE the chain rows.
			for _, r := range changed {
				dirty[r] = true
			}
			continue
		}
		prefix, ok := src.cacheGet(e.chainFullKey(c.steps[:i], nil, c.side))
		if !ok {
			return nil, true
		}
		changedSet := make(map[int]bool, len(changed))
		for _, r := range changed {
			changedSet[r] = true
		}
		for _, t := range prefix.Triplets() {
			if changedSet[t.Col] {
				dirty[t.Row] = true
			}
		}
	}
	out := make([]int, 0, len(dirty))
	for r := range dirty {
		out = append(out, r)
	}
	sort.Ints(out)
	return out, false
}

// carryNorms patches the cached row norms of a carried or row-patched
// chain: untouched rows keep their old (bit-identical) norms, appended rows
// are zero, and recomputed rows take the norms of their recomputed values.
// Absent source norms stay absent — they rebuild lazily on first use.
func (e *Engine) carryNorms(src *Engine, key string, nRows int, rows []int, rowNorms []float64) {
	src.mu.Lock()
	old, ok := src.norms[key]
	src.mu.Unlock()
	if !ok {
		return
	}
	n := make([]float64, nRows)
	copy(n, old)
	for i, r := range rows {
		n[r] = rowNorms[i]
	}
	e.mu.Lock()
	if _, cached := e.reach[key]; cached {
		e.norms[key] = n
	}
	e.mu.Unlock()
}

// parseChainKey reconstructs a chain from its cache key — "C:" plus
// "|"-joined step keys (relation name, "~" marks inverse traversal) with an
// optional "SE(step)"/"TE(step)" middle suffix, optionally wrapped in "T:"
// for transposed entries. Keys are self-describing against the schema, so
// chains imported from a snapshot rewarm exactly like locally built ones.
func parseChainKey(s *hin.Schema, key string) (chain, bool, error) {
	rest, transposed := strings.CutPrefix(key, "T:")
	body, ok := strings.CutPrefix(rest, "C:")
	if !ok {
		return chain{}, false, fmt.Errorf("core: cache key %q is not a chain key", key)
	}
	c := chain{side: 'P'}
	for _, part := range strings.Split(body, "|") {
		var mk string
		switch {
		case strings.HasPrefix(part, "SE(") && strings.HasSuffix(part, ")"):
			mk, c.side = part[3:len(part)-1], 'L'
		case strings.HasPrefix(part, "TE(") && strings.HasSuffix(part, ")"):
			mk, c.side = part[3:len(part)-1], 'R'
		default:
			if c.middle != nil {
				return chain{}, false, fmt.Errorf("core: chain key %q has steps after the middle suffix", key)
			}
			step, err := parseStepKey(s, part)
			if err != nil {
				return chain{}, false, err
			}
			if n := len(c.steps); n > 0 && c.steps[n-1].To() != step.From() {
				return chain{}, false, fmt.Errorf("core: chain key %q does not chain at %q", key, part)
			}
			c.steps = append(c.steps, step)
			continue
		}
		step, err := parseStepKey(s, mk)
		if err != nil {
			return chain{}, false, err
		}
		c.middle = &step
	}
	if len(c.steps) == 0 && c.middle == nil {
		return chain{}, false, fmt.Errorf("core: empty chain key %q", key)
	}
	if c.middle != nil && len(c.steps) > 0 {
		last := c.steps[len(c.steps)-1].To()
		if c.side == 'L' && c.middle.From() != last {
			return chain{}, false, fmt.Errorf("core: chain key %q middle does not join its left steps", key)
		}
		if c.side == 'R' && c.middle.To() != last {
			return chain{}, false, fmt.Errorf("core: chain key %q middle does not join its right steps", key)
		}
	}
	return c, transposed, nil
}

func parseStepKey(s *hin.Schema, k string) (metapath.Step, error) {
	name, inverse := strings.CutSuffix(k, "~")
	rel, err := s.RelationByName(name)
	if err != nil {
		return metapath.Step{}, err
	}
	return metapath.Step{Relation: rel, Inverse: inverse}, nil
}
