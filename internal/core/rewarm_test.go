package core

import (
	"context"
	"reflect"
	"testing"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/sparse"
)

// rewarmPaths covers the chain-shape zoo: an even path (pure step chains),
// an odd path whose middle is the mutated relation, and an odd path whose
// middle is a different relation (middle untouched, steps touched).
var rewarmSpecs = []string{"APC", "AP", "APCP"}

func rewarmWarm(t *testing.T, e *Engine, g *hin.Graph) {
	t.Helper()
	ctx := context.Background()
	for _, spec := range rewarmSpecs {
		p := metapath.MustParse(g.Schema(), spec)
		if err := e.Precompute(ctx, p); err != nil {
			t.Fatal(err)
		}
		// Populate a transposed entry too (what top-k scans cache).
		h := splitPath(p)
		if _, err := e.opTransposedChain(ctx, h.right()); err != nil {
			t.Fatal(err)
		}
	}
}

// compareCaches asserts the rewarmed engine's chain cache is bit-identical
// to the cold engine's, key by key, for every key the rewarmed engine holds.
func compareCaches(t *testing.T, cold, warm *Engine) {
	t.Helper()
	cc, wc := cold.ExportChains(), warm.ExportChains()
	if len(wc) == 0 {
		t.Fatal("rewarmed engine has an empty cache")
	}
	for k, wm := range wc {
		cm, ok := cc[k]
		if !ok {
			t.Errorf("rewarmed cache has %q, cold cache does not", k)
			continue
		}
		if !cm.Equal(wm) {
			t.Errorf("chain %q diverges from the cold rebuild", k)
		}
	}
}

func applyOps(t *testing.T, g *hin.Graph, ops []hin.Op) (*hin.Graph, *hin.Dirty) {
	t.Helper()
	ng, d, err := g.Apply(ops)
	if err != nil {
		t.Fatal(err)
	}
	return ng, d
}

func TestRewarmBitIdentity(t *testing.T) {
	g := fig4Graph(t)
	old := NewEngine(g)
	rewarmWarm(t, old, g)

	ng, d := applyOps(t, g, []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "writes", Src: "Carl", Dst: "p5", Weight: 1},
		{Kind: hin.OpUpsertEdge, Relation: "published_in", Src: "p5", Dst: "KDD", Weight: 1},
		{Kind: hin.OpDeleteEdge, Relation: "writes", Src: "Bob", Dst: "p4"},
		{Kind: hin.OpAddNode, Type: "author", ID: "Dan"},
	})

	warm := NewEngine(ng)
	stats, err := warm.RewarmFrom(context.Background(), old, d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped %d chains: %s", stats.Dropped, stats)
	}

	cold := NewEngine(ng)
	rewarmWarm(t, cold, ng)
	compareCaches(t, cold, warm)

	// Every key the old engine held must still be present (nothing lost).
	for k := range old.ExportChains() {
		if _, ok := warm.cacheGet(k); !ok {
			t.Errorf("chain %q lost in rewarm", k)
		}
	}

	// The rewarmed engine answers queries identically to the cold engine.
	for _, spec := range rewarmSpecs {
		p := metapath.MustParse(ng.Schema(), spec)
		a, err := cold.AllPairs(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := warm.AllPairs(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(b) {
			t.Errorf("AllPairs(%s) diverges after rewarm", spec)
		}
	}
}

// A delta touching one relation must row-patch the untouched-relation
// chains' rows only — the Property-2 locality the subsystem exists for.
func TestRewarmPatchesOnlyDirtyRows(t *testing.T) {
	g := fig4Graph(t)
	old := NewEngine(g)
	ctx := context.Background()
	p := metapath.MustParse(g.Schema(), "APC")
	if err := old.Precompute(ctx, p); err != nil {
		t.Fatal(err)
	}

	// One new publication venue for p1: only published_in row p1 (forward)
	// and column VLDB (inverse) are perturbed.
	ng, d := applyOps(t, g, []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "published_in", Src: "p1", Dst: "VLDB", Weight: 1},
	})

	warm := NewEngine(ng)
	stats, err := warm.RewarmFrom(ctx, old, d)
	if err != nil {
		t.Fatal(err)
	}
	// Left chain "C:writes" never walks published_in: carried untouched.
	// Right chain "C:published_in~" starts at conferences; VLDB is its only
	// dirty row. Nothing needs a full rebuild.
	if stats.Rebuilt != 0 || stats.Dropped != 0 {
		t.Fatalf("stats = %s, want no rebuilds/drops", stats)
	}
	if stats.Carried != 1 || stats.RowPatched != 1 || stats.Rows != 1 {
		t.Fatalf("stats = %s, want 1 carried + 1 chain patched with 1 row", stats)
	}

	cold := NewEngine(ng)
	if err := cold.Precompute(ctx, p); err != nil {
		t.Fatal(err)
	}
	compareCaches(t, cold, warm)

	// Norms were patched, not dropped: present and bit-identical to cold.
	for _, key := range []string{"C:writes", "C:published_in~"} {
		cold.mu.Lock()
		cn, cok := cold.norms[key]
		cold.mu.Unlock()
		warm.mu.Lock()
		wn, wok := warm.norms[key]
		warm.mu.Unlock()
		if !cok || !wok {
			t.Fatalf("norms for %q missing (cold %v, warm %v)", key, cok, wok)
		}
		if !reflect.DeepEqual(cn, wn) {
			t.Errorf("norms for %q diverge", key)
		}
	}
}

// Node-only growth pads cached chains with zero rows/columns — no
// recomputation at all — and stays bit-identical to a cold build.
func TestRewarmNodeGrowthOnly(t *testing.T) {
	g := fig4Graph(t)
	old := NewEngine(g)
	rewarmWarm(t, old, g)
	ng, d := applyOps(t, g, []hin.Op{
		{Kind: hin.OpAddNode, Type: "author", ID: "Dan"},
		{Kind: hin.OpAddNode, Type: "conference", ID: "VLDB"},
	})
	warm := NewEngine(ng)
	stats, err := warm.RewarmFrom(context.Background(), old, d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowPatched != 0 || stats.Rebuilt != 0 || stats.Dropped != 0 {
		t.Fatalf("stats = %s, want carried only", stats)
	}
	cold := NewEngine(ng)
	rewarmWarm(t, cold, ng)
	compareCaches(t, cold, warm)
}

// Pruning makes row-masked recompute unsound (materialized chains prune per
// step, subset recompute does not), so touched chains are rebuilt instead —
// and still match the cold pruned engine exactly.
func TestRewarmWithPruningRebuilds(t *testing.T) {
	g := fig4Graph(t)
	old := NewEngine(g, WithPruning(0.05))
	ctx := context.Background()
	p := metapath.MustParse(g.Schema(), "APC")
	if err := old.Precompute(ctx, p); err != nil {
		t.Fatal(err)
	}
	ng, d := applyOps(t, g, []hin.Op{
		{Kind: hin.OpUpsertEdge, Relation: "writes", Src: "Tom", Dst: "p3", Weight: 1},
	})
	warm := NewEngine(ng, WithPruning(0.05))
	stats, err := warm.RewarmFrom(ctx, old, d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowPatched != 0 {
		t.Fatalf("stats = %s: pruned engine must not row-patch", stats)
	}
	if stats.Rebuilt == 0 {
		t.Fatalf("stats = %s: touched chain not rebuilt", stats)
	}
	cold := NewEngine(ng, WithPruning(0.05))
	if err := cold.Precompute(ctx, p); err != nil {
		t.Fatal(err)
	}
	compareCaches(t, cold, warm)

	// Mismatched pruning eps across engines is refused outright.
	if _, err := NewEngine(ng).RewarmFrom(ctx, old, d); err == nil {
		t.Error("RewarmFrom across pruning eps succeeded")
	}
}

func TestParseChainKeyRoundTrip(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	for _, spec := range []string{"APC", "AP", "APCP", "CPA"} {
		p := metapath.MustParse(g.Schema(), spec)
		h := splitPath(p)
		for _, c := range []chain{h.left(), h.right(), pathChain(p)} {
			if len(c.steps) == 0 && c.middle == nil {
				continue
			}
			key := e.chainCacheKey(c)
			got, transposed, err := parseChainKey(g.Schema(), key)
			if err != nil {
				t.Fatalf("parse(%q): %v", key, err)
			}
			if transposed {
				t.Errorf("parse(%q): spurious transpose", key)
			}
			if e.chainCacheKey(got) != key {
				t.Errorf("parse(%q) re-keys to %q", key, e.chainCacheKey(got))
			}
			gotT, transposed, err := parseChainKey(g.Schema(), "T:"+key)
			if err != nil || !transposed {
				t.Errorf("parse(T:%q): transposed=%v err=%v", key, transposed, err)
			}
			if e.chainCacheKey(gotT) != key {
				t.Errorf("parse(T:%q) re-keys to %q", key, e.chainCacheKey(gotT))
			}
		}
	}
	for _, bad := range []string{"", "C:", "C:unknown_rel", "norms:writes", "C:writes|writes"} {
		if _, _, err := parseChainKey(g.Schema(), bad); err == nil {
			t.Errorf("parse(%q) succeeded", bad)
		}
	}
}

// White-box proof that opMatrixChain actually resumes from a cached prefix:
// poison the one-step prefix and watch the full chain inherit the poison.
func TestMatrixChainResumesFromPrefix(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	c := pathChain(p)
	poison := sparse.Zeros(g.NodeCount("author"), g.NodeCount("paper"))
	e.cachePut(e.chainFullKey(c.steps[:1], nil, c.side), poison)
	pm, err := e.opMatrixChain(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if pm.NNZ() != 0 {
		t.Fatalf("full chain has %d nonzeros; prefix was not reused", pm.NNZ())
	}
}

// A partially warm chain must be priced at its cold suffix only.
func TestChainColdFlopsPartialWarmth(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APCPA")
	h := splitPath(p)
	cm, err := e.costModelFor(h)
	if err != nil {
		t.Fatal(err)
	}
	if cm.coldLeft != cm.left.Flops {
		t.Fatalf("cold engine: coldLeft = %v, want full %v", cm.coldLeft, cm.left.Flops)
	}

	// Warm the one-step prefix of the left half ("C:writes").
	if _, err := e.ReachableMatrix(context.Background(), metapath.MustParse(g.Schema(), "AP")); err != nil {
		t.Fatal(err)
	}
	cm, err = e.costModelFor(h)
	if err != nil {
		t.Fatal(err)
	}
	if cm.warmLeft {
		t.Fatal("left half unexpectedly fully warm")
	}
	if cm.coldLeft >= cm.left.Flops || cm.coldLeft <= 0 {
		t.Fatalf("partially warm: coldLeft = %v, want in (0, %v)", cm.coldLeft, cm.left.Flops)
	}

	// Fully warm: priced at zero.
	if err := e.Precompute(context.Background(), p); err != nil {
		t.Fatal(err)
	}
	cm, err = e.costModelFor(h)
	if err != nil {
		t.Fatal(err)
	}
	if cm.coldLeft != 0 || cm.coldRight != 0 {
		t.Fatalf("warm engine: cold = %v/%v, want 0/0", cm.coldLeft, cm.coldRight)
	}
}
