package core

import (
	"context"
	"sort"

	"hetesim/internal/metapath"
	"hetesim/internal/obs"
	"hetesim/internal/sparse"
)

// Scored is one target of a top-k search.
type Scored struct {
	Index int
	Score float64
}

// TopKSearch returns the k most related targets of one source along a path,
// descending by score (ties by ascending index). It implements the search
// pruning of Section 4.6 of the paper: source-side reaching probabilities
// below eps times the largest entry are dropped, and only targets that
// overlap the surviving middle distribution are ever scored — "the related
// objects to a searched object are a very small percentage of all objects
// in the target type," so most targets are never touched. eps = 0 gives the
// exact answer; small eps (e.g. 1e-3) trades a bounded score error for a
// sparser scan.
func (e *Engine) TopKSearch(ctx context.Context, p *metapath.Path, src, k int, eps float64) ([]Scored, error) {
	out, _, err := e.TopKSearchWithPlan(ctx, p, src, k, eps, PlanOptions{})
	return out, err
}

// topKFrom runs the candidate-restricted top-k scan from an already
// propagated left middle distribution. Factored out of TopKSearch so the
// batch scheduler (which serves left from a group-shared chain) runs the
// identical pruning, accumulation and normalization code as solo queries.
func (e *Engine) topKFrom(ctx context.Context, p *metapath.Path, h halves, left *sparse.Vector, k int, eps float64) ([]Scored, error) {
	// Prune the source's middle distribution (shared with topKApprox so
	// both plans score the identical pruned vector).
	left = pruneLeft(left, eps)
	pmrT, err := e.opTransposedChain(ctx, h.right())
	if err != nil {
		return nil, err
	}
	// Accumulate scores only over candidates that share middle support,
	// using a dense scratch with a touched list so the cost is the size
	// of the overlapped rows, not the target population.
	tr := obs.FromContext(ctx)
	sp := tr.Start("combine")
	nT := e.g.NodeCount(p.Target())
	acc := make([]float64, nT)
	seen := make([]bool, nT)
	var touched []int
	left.Entries(func(m int, v float64) {
		row := pmrT.Row(m)
		row.Entries(func(b int, w float64) {
			if !seen[b] {
				seen[b] = true
				touched = append(touched, b)
			}
			acc[b] += v * w
		})
	})
	sp.End()
	sp = tr.Start("normalize")
	var rns []float64
	var ln float64
	if e.normalized {
		ln = left.Norm()
		pmr, err := e.opMatrixChain(ctx, h.right())
		if err != nil {
			sp.End()
			return nil, err
		}
		rns = e.chainRowNorms(e.chainCacheKey(h.right()), pmr)
	}
	out := make([]Scored, 0, len(touched))
	for _, b := range touched {
		s := acc[b]
		if e.normalized {
			if ln == 0 || rns[b] == 0 {
				continue
			}
			s /= ln * rns[b]
		}
		if s != 0 {
			out = append(out, Scored{Index: b, Score: s})
		}
	}
	sp.End()
	sp = tr.Start("rank")
	sortScoredDesc(out)
	sp.End()
	if k > len(out) {
		k = len(out)
	}
	return out[:k], nil
}

// sortScoredDesc orders scored targets descending by score, ties broken by
// ascending index — the canonical result order shared by every top-k plan.
func sortScoredDesc(out []Scored) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Index < out[j].Index
	})
}
