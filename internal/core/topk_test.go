package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

func TestTopKSearchExactMatchesSingleSource(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBibGraph(seed)
		e := NewEngine(g)
		p := metapath.MustParse(g.Schema(), testPaths[rng.Intn(len(testPaths))])
		src := rng.Intn(g.NodeCount(p.Source()))
		k := 1 + rng.Intn(5)
		got, err := e.TopKSearch(context.Background(), p, src, k, 0)
		if err != nil {
			return false
		}
		ss, err := e.SingleSourceByIndex(context.Background(), p, src)
		if err != nil {
			return false
		}
		// Reference: sort all nonzero scores descending, ties by index.
		type pair struct {
			i int
			v float64
		}
		var ref []pair
		for i, v := range ss {
			if v != 0 {
				ref = append(ref, pair{i, v})
			}
		}
		for i := 1; i < len(ref); i++ { // insertion sort, small n
			for j := i; j > 0 && (ref[j].v > ref[j-1].v ||
				(ref[j].v == ref[j-1].v && ref[j].i < ref[j-1].i)); j-- {
				ref[j], ref[j-1] = ref[j-1], ref[j]
			}
		}
		want := k
		if want > len(ref) {
			want = len(ref)
		}
		if len(got) != want {
			return false
		}
		for i := range got {
			if got[i].Index != ref[i].i || math.Abs(got[i].Score-ref[i].v) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTopKSearchUnnormalized(t *testing.T) {
	g := randomBibGraph(17)
	e := NewEngine(g, WithNormalization(false))
	p := metapath.MustParse(g.Schema(), "APVC")
	got, err := e.TopKSearch(context.Background(), p, 0, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	ss, _ := e.SingleSourceByIndex(context.Background(), p, 0)
	for _, s := range got {
		if math.Abs(ss[s.Index]-s.Score) > 1e-12 {
			t.Errorf("unnormalized score mismatch at %d", s.Index)
		}
	}
}

func TestTopKSearchPrunedStaysClose(t *testing.T) {
	g := randomBibGraph(19)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVCVPA")
	exact, err := e.TopKSearch(context.Background(), p, 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := e.TopKSearch(context.Background(), p, 0, 5, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) == 0 {
		t.Fatal("pruned search returned nothing")
	}
	// The top result must survive light pruning.
	if pruned[0].Index != exact[0].Index {
		t.Errorf("pruned top = %d, exact top = %d", pruned[0].Index, exact[0].Index)
	}
	if math.Abs(pruned[0].Score-exact[0].Score) > 1e-2 {
		t.Errorf("pruned top score %v vs exact %v", pruned[0].Score, exact[0].Score)
	}
}

func TestTopKSearchValidation(t *testing.T) {
	g := randomBibGraph(23)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVC")
	if _, err := e.TopKSearch(context.Background(), p, 0, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := e.TopKSearch(context.Background(), p, 0, 3, 1.5); err == nil {
		t.Error("eps>=1 accepted")
	}
	if _, err := e.TopKSearch(context.Background(), p, 0, 3, -0.1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := e.TopKSearch(context.Background(), p, -1, 3, 0); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad src err = %v", err)
	}
}

func TestTopKSearchOnlyReturnsPositiveOverlap(t *testing.T) {
	// A dangling author shares no middle support: empty result.
	b := hin.NewBuilder(fig4Schema())
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddNode("author", "Idle")
	g := b.MustBuild()
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	idle, _ := g.NodeIndex("author", "Idle")
	got, err := e.TopKSearch(context.Background(), p, idle, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("dangling author results = %v, want none", got)
	}
}
