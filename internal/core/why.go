package core

import (
	"context"
	"fmt"
	"sort"

	"hetesim/internal/metapath"
)

// Contribution is one meeting object's share of a pair's HeteSim score.
// HeteSim is a sum over meeting objects m of left(m)·right(m) (normalized
// by the two vector norms), so the score decomposes exactly; the top
// contributions answer "why are these two objects related along this
// path?".
type Contribution struct {
	// MiddleIndex is the meeting object's index in the middle type (for
	// even-length paths) or the relation-instance index (for odd-length
	// paths, where walkers meet inside the decomposed middle relation).
	MiddleIndex int
	// Label describes the meeting object: the node ID for even paths,
	// "src->dst" for the relation instance of odd paths.
	Label string
	// Value is this object's share of the (normalized) score.
	Value float64
	// Fraction is Value over the total score.
	Fraction float64
}

// PairContributions returns the pair's HeteSim score and its top-k meeting
// object contributions, largest first. The contributions sum (over all
// meeting objects, not just the returned k) to the score exactly.
func (e *Engine) PairContributions(ctx context.Context, p *metapath.Path, src, dst, k int) (float64, []Contribution, error) {
	if k <= 0 {
		return 0, nil, fmt.Errorf("core: PairContributions k=%d must be positive", k)
	}
	if err := e.checkIndex(p.Source(), src); err != nil {
		return 0, nil, err
	}
	if err := e.checkIndex(p.Target(), dst); err != nil {
		return 0, nil, err
	}
	h := splitPath(p)
	left, err := e.opVectorChain(ctx, src, h.left())
	if err != nil {
		return 0, nil, err
	}
	right, err := e.opVectorChain(ctx, dst, h.right())
	if err != nil {
		return 0, nil, err
	}
	scale := 1.0
	if e.normalized {
		ln, rn := left.Norm(), right.Norm()
		if ln == 0 || rn == 0 {
			return 0, nil, nil
		}
		scale = 1 / (ln * rn)
	}
	var out []Contribution
	var total float64
	left.Entries(func(m int, lv float64) {
		rv := right.At(m)
		if rv == 0 {
			return
		}
		v := lv * rv * scale
		total += v
		out = append(out, Contribution{MiddleIndex: m, Value: v})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].MiddleIndex < out[j].MiddleIndex
	})
	if k < len(out) {
		out = out[:k]
	}
	for i := range out {
		out[i].Label, err = e.middleLabel(p, h, out[i].MiddleIndex)
		if err != nil {
			return 0, nil, err
		}
		if total > 0 {
			out[i].Fraction = out[i].Value / total
		}
	}
	return total, out, nil
}

// middleLabel renders a human-readable name for a meeting object.
func (e *Engine) middleLabel(p *metapath.Path, h halves, m int) (string, error) {
	if h.middle == nil {
		// Even path: the meeting type is the left half's arrival type.
		types := p.Types()
		midType := types[len(types)/2]
		return e.g.NodeID(midType, m)
	}
	// Odd path: the meeting object is the m-th instance of the middle
	// relation (row-major over its effective adjacency).
	w, err := e.g.Adjacency(h.middle.Relation.Name)
	if err != nil {
		return "", err
	}
	if h.middle.Inverse {
		w = w.Transpose()
	}
	ts := w.Triplets()
	if m < 0 || m >= len(ts) {
		return "", fmt.Errorf("core: middle instance %d out of range (%d instances)", m, len(ts))
	}
	srcID, err := e.g.NodeID(h.middle.From(), ts[m].Row)
	if err != nil {
		return "", err
	}
	dstID, err := e.g.NodeID(h.middle.To(), ts[m].Col)
	if err != nil {
		return "", err
	}
	return srcID + "->" + dstID, nil
}
