package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

func TestPairContributionsSumToScore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBibGraph(seed)
		e := NewEngine(g)
		p := metapath.MustParse(g.Schema(), testPaths[rng.Intn(len(testPaths))])
		src := rng.Intn(g.NodeCount(p.Source()))
		dst := rng.Intn(g.NodeCount(p.Target()))
		exact, err := e.PairByIndex(context.Background(), p, src, dst)
		if err != nil {
			return false
		}
		total, contribs, err := e.PairContributions(context.Background(), p, src, dst, 1<<30)
		if err != nil {
			return false
		}
		if math.Abs(total-exact) > 1e-10 {
			return false
		}
		var sum, fracSum float64
		for i, c := range contribs {
			sum += c.Value
			fracSum += c.Fraction
			if i > 0 && c.Value > contribs[i-1].Value {
				return false // must be sorted descending
			}
			if c.Label == "" {
				return false
			}
		}
		if math.Abs(sum-exact) > 1e-10 {
			return false
		}
		return exact == 0 || math.Abs(fracSum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPairContributionsLabels(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	// Even path APC: walkers meet at papers; Tom and KDD meet at p1, p2.
	p := metapath.MustParse(g.Schema(), "APC")
	tom, _ := g.NodeIndex("author", "Tom")
	kdd, _ := g.NodeIndex("conference", "KDD")
	score, contribs, err := e.PairContributions(context.Background(), p, tom, kdd, 5)
	if err != nil {
		t.Fatal(err)
	}
	if score <= 0 || len(contribs) != 2 {
		t.Fatalf("score=%v contribs=%v", score, contribs)
	}
	labels := map[string]bool{}
	for _, c := range contribs {
		labels[c.Label] = true
	}
	if !labels["p1"] || !labels["p2"] {
		t.Errorf("labels = %v, want p1 and p2", labels)
	}
	// Odd path AP: walkers meet inside the writes relation instances.
	ap := metapath.MustParse(g.Schema(), "AP")
	p2i, _ := g.NodeIndex("paper", "p2")
	_, contribs, err = e.PairContributions(context.Background(), ap, tom, p2i, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(contribs) != 1 || contribs[0].Label != "Tom->p2" {
		t.Errorf("odd-path contributions = %v", contribs)
	}
}

func TestPairContributionsTopKTruncation(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	tom, _ := g.NodeIndex("author", "Tom")
	kdd, _ := g.NodeIndex("conference", "KDD")
	score, contribs, err := e.PairContributions(context.Background(), p, tom, kdd, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(contribs) != 1 {
		t.Fatalf("contribs = %d, want 1", len(contribs))
	}
	// Score is still the full total, not just the returned share.
	exact, _ := e.PairByIndex(context.Background(), p, tom, kdd)
	if math.Abs(score-exact) > 1e-12 {
		t.Errorf("score = %v, want %v", score, exact)
	}
}

func TestPairContributionsValidation(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	if _, _, err := e.PairContributions(context.Background(), p, 0, 0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := e.PairContributions(context.Background(), p, 99, 0, 1); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad src err = %v", err)
	}
	if _, _, err := e.PairContributions(context.Background(), p, 0, 99, 1); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad dst err = %v", err)
	}
}

func TestPairContributionsDisjointSupports(t *testing.T) {
	g := fig4Graph(t)
	e := NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APC")
	tom, _ := g.NodeIndex("author", "Tom")
	sigmod, _ := g.NodeIndex("conference", "SIGMOD")
	score, contribs, err := e.PairContributions(context.Background(), p, tom, sigmod, 5)
	if err != nil {
		t.Fatal(err)
	}
	if score != 0 || len(contribs) != 0 {
		t.Errorf("disjoint pair: score=%v contribs=%v", score, contribs)
	}
}
