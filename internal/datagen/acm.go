package datagen

import (
	"fmt"
	"math/rand"

	"hetesim/internal/hin"
)

// ACMConferences are the 14 conferences of the paper's ACM dataset
// (Section 5.1), grouped below into five research areas.
var ACMConferences = []string{
	"KDD", "SIGMOD", "WWW", "SIGIR", "CIKM", "SODA", "STOC",
	"SOSP", "SPAA", "SIGCOMM", "MobiCOMM", "ICML", "COLT", "VLDB",
}

// ACMAreaNames names the planted research areas of the ACM generator.
var ACMAreaNames = []string{
	"data mining & machine learning",
	"databases",
	"web & information retrieval",
	"theory",
	"systems & networking",
}

// acmAreaOfConf maps each conference (by index into ACMConferences) to its
// area (by index into ACMAreaNames).
var acmAreaOfConf = []int{
	0, // KDD
	1, // SIGMOD
	2, // WWW
	2, // SIGIR
	2, // CIKM
	3, // SODA
	3, // STOC
	4, // SOSP
	3, // SPAA
	4, // SIGCOMM
	4, // MobiCOMM
	0, // ICML
	0, // COLT
	1, // VLDB
}

// ACMConfig sizes the synthetic ACM network. The defaults of
// DefaultACMConfig match the scale reported in Section 5.1 of the paper.
type ACMConfig struct {
	Papers       int
	Authors      int
	Affiliations int
	Terms        int
	Subjects     int
	Years        int // proceedings (venues) per conference
	Seed         int64
}

// DefaultACMConfig mirrors the paper's ACM dataset: 12K papers, 17K
// authors, 1.8K affiliations, 1.5K terms, 73 subjects, and 196 venues
// (14 proceedings for each of the 14 conferences).
func DefaultACMConfig() ACMConfig {
	return ACMConfig{
		Papers:       12000,
		Authors:      17000,
		Affiliations: 1800,
		Terms:        1500,
		Subjects:     73,
		Years:        14,
		Seed:         1,
	}
}

// SmallACMConfig is a reduced network with the same planted structure, for
// tests and quick runs.
func SmallACMConfig() ACMConfig {
	return ACMConfig{
		Papers:       800,
		Authors:      600,
		Affiliations: 60,
		Terms:        200,
		Subjects:     30,
		Years:        4,
		Seed:         1,
	}
}

// ACMSchema returns the network schema of Fig. 3(a): papers (P), authors
// (A), affiliations (F), terms (T), subjects (S), venues (V), conferences
// (C).
func ACMSchema() *hin.Schema {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("affiliation", 'F')
	s.MustAddType("term", 'T')
	s.MustAddType("subject", 'S')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("affiliated_with", "author", "affiliation")
	s.MustAddRelation("mentions", "paper", "term")
	s.MustAddRelation("about", "paper", "subject")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	return s
}

// ACM generates a synthetic ACM-style network per the configuration. The
// planted structure: every author has a home area, a favorite conference
// and a co-author group; papers are led by Zipf-sampled authors, published
// overwhelmingly in the lead author's area, and draw terms and subjects
// from area-specific Zipf vocabularies; affiliations specialize by area.
// Authors, conferences, venues and papers carry area labels.
func ACM(cfg ACMConfig) (*Dataset, error) {
	if cfg.Papers <= 0 || cfg.Authors <= 0 || cfg.Affiliations <= 0 ||
		cfg.Terms <= 0 || cfg.Subjects <= 0 || cfg.Years <= 0 {
		return nil, fmt.Errorf("datagen: all ACM sizes must be positive: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	schema := ACMSchema()
	b := hin.NewBuilder(schema)
	nAreas := len(ACMAreaNames)
	nConf := len(ACMConferences)

	confsByArea := make([][]int, nAreas)
	for c, a := range acmAreaOfConf {
		confsByArea[a] = append(confsByArea[a], c)
	}

	// Register conferences and their venues (proceedings).
	venueIDs := make([][]string, nConf) // per conference, per year
	venueArea := make([]int, 0, nConf*cfg.Years)
	for c, name := range ACMConferences {
		b.AddNode("conference", name)
		venueIDs[c] = make([]string, cfg.Years)
		for y := 0; y < cfg.Years; y++ {
			vid := fmt.Sprintf("%s'%02d", name, y)
			venueIDs[c][y] = vid
			b.AddEdge("part_of", vid, name)
			venueArea = append(venueArea, acmAreaOfConf[c])
		}
	}

	// Authors with latent state, registered up front so indices are
	// stable and labels align.
	authors := buildAuthors(rng, cfg.Authors, nAreas, confsByArea, 10)
	for i := range authors {
		b.AddNode("author", id("author", i))
	}
	groups := groupMembers(authors)

	// Affiliations: each author joins one, drawn from an area-specific
	// Zipf so each area has its dominant organizations.
	affPerm := rng.Perm(cfg.Affiliations)
	affSamplers := make([]*sampler, nAreas)
	for a := 0; a < nAreas; a++ {
		affSamplers[a] = permutedZipf(cfg.Affiliations, 1.1, affPerm, a*cfg.Affiliations/nAreas)
	}
	for i, a := range authors {
		b.AddEdge("affiliated_with", id("author", i), id("affil", affSamplers[a.area].draw(rng)))
	}

	// Area-specific term and subject vocabularies (overlapping Zipf).
	termPerm := rng.Perm(cfg.Terms)
	subjPerm := rng.Perm(cfg.Subjects)
	termSamplers := make([]*sampler, nAreas)
	subjSamplers := make([]*sampler, nAreas)
	for a := 0; a < nAreas; a++ {
		termSamplers[a] = permutedZipf(cfg.Terms, 1.05, termPerm, a*cfg.Terms/nAreas)
		subjSamplers[a] = permutedZipf(cfg.Subjects, 1.3, subjPerm, a*cfg.Subjects/nAreas)
	}

	// Zipf productivity over authors.
	lead := newSampler(zipfWeights(cfg.Authors, 0.35))

	paperArea := make([]int, cfg.Papers)
	for p := 0; p < cfg.Papers; p++ {
		la := lead.draw(rng)
		am := authors[la]
		area := am.area
		if rng.Float64() < 0.05 { // occasional out-of-area paper
			area = rng.Intn(nAreas)
		}
		paperArea[p] = area

		// Conference choice: the lead author's favorite when it matches
		// the paper's area, otherwise an area conference; small chance
		// of publishing anywhere.
		var conf int
		switch {
		case rng.Float64() < 0.08:
			conf = rng.Intn(nConf)
		case area == am.area && rng.Float64() < am.focus:
			conf = am.favConf
		default:
			confs := confsByArea[area]
			conf = confs[rng.Intn(len(confs))]
		}
		pid := id("paper", p)
		b.AddEdge("published_in", pid, venueIDs[conf][rng.Intn(cfg.Years)])

		// Authors: the lead plus co-authors drawn mostly from the
		// lead's group; the author set is deduplicated so writes stays
		// a 0/1 relation.
		b.AddEdge("writes", id("author", la), pid)
		nCo := coauthorCount(rng, la, cfg.Authors)
		pool := groups[[2]int{am.area, am.group}]
		seen := map[int]bool{la: true}
		for k := 0; k < nCo; k++ {
			// Mostly in-group co-authors with a cross-area minority
			// from the global productivity distribution.
			var co int
			if len(pool) > 1 && rng.Float64() < 0.7 {
				co = pool[rng.Intn(len(pool))]
			} else {
				co = lead.draw(rng)
			}
			if !seen[co] {
				seen[co] = true
				b.AddEdge("writes", id("author", co), pid)
			}
		}

		// Terms and subjects from the paper area's vocabulary.
		nT := 5 + rng.Intn(6)
		for k := 0; k < nT; k++ {
			b.AddEdge("mentions", pid, id("term", termSamplers[area].draw(rng)))
		}
		nS := 1 + rng.Intn(2)
		for k := 0; k < nS; k++ {
			b.AddEdge("about", pid, id("subject", subjSamplers[area].draw(rng)))
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Graph:     g,
		AreaNames: append([]string(nil), ACMAreaNames...),
		Labels:    make(map[string][]int),
	}
	authorLabels := make([]int, g.NodeCount("author"))
	for i := range authorLabels {
		authorLabels[i] = authors[i].area
	}
	ds.Labels["author"] = authorLabels
	confLabels := make([]int, g.NodeCount("conference"))
	for c := range confLabels {
		confLabels[c] = acmAreaOfConf[c]
	}
	ds.Labels["conference"] = confLabels
	ds.Labels["venue"] = venueArea
	paperLabels := make([]int, g.NodeCount("paper"))
	copy(paperLabels, paperArea)
	ds.Labels["paper"] = paperLabels
	return ds, nil
}
