// Package datagen generates the synthetic bibliographic heterogeneous
// networks that stand in for the paper's ACM and DBLP crawls (see DESIGN.md
// §4 for the substitution rationale). Both generators plant the structural
// regularities the paper's experiments exploit — research-area communities,
// Zipf-distributed author productivity, area-focused publication venues,
// area-specific vocabularies — and return ground-truth area labels for the
// AUC and NMI experiments.
//
// Generation is fully deterministic for a given configuration and seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"hetesim/internal/hin"
)

// Dataset is a generated network plus its planted ground truth.
type Dataset struct {
	Graph *hin.Graph
	// Labels maps a node type to per-node area labels (index into
	// AreaNames); -1 marks an unlabeled node.
	Labels map[string][]int
	// AreaNames names the planted research areas.
	AreaNames []string
}

// AreaOf returns the planted area label of a node, or -1 when unlabeled.
func (d *Dataset) AreaOf(typeName string, index int) int {
	ls, ok := d.Labels[typeName]
	if !ok || index < 0 || index >= len(ls) {
		return -1
	}
	return ls[index]
}

// LabeledIndices returns the indices of all labeled nodes of a type.
func (d *Dataset) LabeledIndices(typeName string) []int {
	var out []int
	for i, l := range d.Labels[typeName] {
		if l >= 0 {
			out = append(out, i)
		}
	}
	return out
}

// zipfWeights returns w_i proportional to 1/(i+1)^s for i in [0, n).
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var total float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// sampler draws indices from a fixed discrete distribution using the alias
// method, giving O(1) draws over the large author/term populations.
type sampler struct {
	prob  []float64
	alias []int
}

func newSampler(weights []float64) *sampler {
	n := len(weights)
	s := &sampler{prob: make([]float64, n), alias: make([]int, n)}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("datagen: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("datagen: zero total weight")
	}
	scaled := make([]float64, n)
	var small, large []int
	for i, w := range weights {
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		l := small[len(small)-1]
		small = small[:len(small)-1]
		g := large[len(large)-1]
		large = large[:len(large)-1]
		s.prob[l] = scaled[l]
		s.alias[l] = g
		scaled[g] = scaled[g] + scaled[l] - 1
		if scaled[g] < 1 {
			small = append(small, g)
		} else {
			large = append(large, g)
		}
	}
	for _, i := range large {
		s.prob[i] = 1
		s.alias[i] = i
	}
	for _, i := range small {
		s.prob[i] = 1
		s.alias[i] = i
	}
	return s
}

func (s *sampler) draw(rng *rand.Rand) int {
	i := rng.Intn(len(s.prob))
	if rng.Float64() < s.prob[i] {
		return i
	}
	return s.alias[i]
}

// permutedZipf builds a sampler over n items whose Zipf mass is spread over
// a seed-dependent permutation offset by block, so different areas prefer
// different (but overlapping) item subsets.
func permutedZipf(n int, s float64, perm []int, offset int) *sampler {
	base := zipfWeights(n, s)
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[perm[(i+offset)%n]] = base[i]
	}
	return newSampler(w)
}

func id(prefix string, i int) string { return fmt.Sprintf("%s%04d", prefix, i) }

// authorModel is the per-author latent state shared by both generators.
type authorModel struct {
	area    int
	favConf int     // global conference index the author concentrates on
	focus   float64 // probability a paper goes to favConf
	group   int     // co-author community id
}

// buildAuthors samples author latent state: home area, favorite conference
// within the area, focus level, and a small co-author group within the area.
//
// Author index doubles as the productivity rank (the lead-author sampler is
// Zipf over indices), and focus increases with it: prolific authors have a
// home conference but publish broadly across their area (the paper's
// reading of Jiawei Han and Philip Yu, whose "wider research interests"
// spread their records over many conferences), while occasional authors'
// one or two papers land in a single venue. Both regularities matter to
// the experiments: broad prolific authors give the APVCVPA study its
// distribution-matching semantics (Table 4, Fig. 7), and concentrated
// occasional authors are the reach-probability-1.0 flood that breaks
// PCRW's author→conference ranking (Fig. 6).
func buildAuthors(rng *rand.Rand, n, areas int, confsByArea [][]int, groupSize int) []authorModel {
	out := make([]authorModel, n)
	groupCounter := make([]int, areas)
	for i := range out {
		area := rng.Intn(areas)
		confs := confsByArea[area]
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		focus := 0.5 + 0.42*frac + 0.04*(rng.Float64()-0.5)
		if focus > 0.95 {
			focus = 0.95
		}
		if focus < 0.45 {
			focus = 0.45
		}
		out[i] = authorModel{
			area:    area,
			favConf: confs[rng.Intn(len(confs))],
			focus:   focus,
			group:   groupCounter[area] / groupSize,
		}
		groupCounter[area]++
	}
	return out
}

// coauthorCount samples how many co-authors a paper gets given its lead
// author's productivity rank (index): prolific leads run groups with
// students and collaborators (2–4 co-authors), occasional authors write
// small-team papers (0–2). This mirrors real bibliographies, where senior
// authors' counts are diluted across many co-authors — the effect that
// separates HeteSim's pairwise-walk scores from PCRW's co-author-diluted
// reach probabilities in the paper's Fig. 6 study.
func coauthorCount(rng *rand.Rand, lead, nAuthors int) int {
	if lead < nAuthors/10 {
		return 2 + rng.Intn(3)
	}
	return rng.Intn(3)
}

// groupMembers indexes authors by (area, group) for co-author sampling.
func groupMembers(authors []authorModel) map[[2]int][]int {
	m := make(map[[2]int][]int)
	for i, a := range authors {
		key := [2]int{a.area, a.group}
		m[key] = append(m[key], i)
	}
	return m
}
