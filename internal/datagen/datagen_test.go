package datagen

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"hetesim/internal/core"
	"hetesim/internal/metapath"
)

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(100, 1.0)
	var sum float64
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Fatal("zipf weights must be non-increasing")
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("zipf sum = %v, want 1", sum)
	}
}

func TestAliasSamplerMatchesWeights(t *testing.T) {
	weights := []float64{0.5, 0.3, 0.15, 0.05}
	s := newSampler(weights)
	rng := rand.New(rand.NewSource(1))
	counts := make([]float64, len(weights))
	const n = 200000
	for i := 0; i < n; i++ {
		counts[s.draw(rng)]++
	}
	for i, w := range weights {
		got := counts[i] / n
		if math.Abs(got-w) > 0.01 {
			t.Errorf("empirical p[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestAliasSamplerRejectsBadWeights(t *testing.T) {
	for _, w := range [][]float64{{0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v accepted", w)
				}
			}()
			newSampler(w)
		}()
	}
}

func TestACMSmallShape(t *testing.T) {
	cfg := SmallACMConfig()
	ds, err := ACM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if got := g.NodeCount("conference"); got != 14 {
		t.Errorf("conferences = %d, want 14", got)
	}
	if got := g.NodeCount("venue"); got != 14*cfg.Years {
		t.Errorf("venues = %d, want %d", got, 14*cfg.Years)
	}
	if got := g.NodeCount("paper"); got != cfg.Papers {
		t.Errorf("papers = %d, want %d", got, cfg.Papers)
	}
	if got := g.NodeCount("author"); got != cfg.Authors {
		t.Errorf("authors = %d, want %d", got, cfg.Authors)
	}
	// Every paper has exactly one venue and at least one author.
	pub, _ := g.Adjacency("published_in")
	writesT, _ := g.Adjacency("writes")
	wt := writesT.Transpose()
	for p := 0; p < cfg.Papers; p++ {
		if pub.RowNNZ(p) != 1 {
			t.Fatalf("paper %d has %d venues", p, pub.RowNNZ(p))
		}
		if wt.RowNNZ(p) == 0 {
			t.Fatalf("paper %d has no authors", p)
		}
	}
	// Labels cover every labeled type with the right lengths.
	for _, typ := range []string{"author", "conference", "venue", "paper"} {
		if got := len(ds.Labels[typ]); got != g.NodeCount(typ) {
			t.Errorf("%s labels = %d, want %d", typ, got, g.NodeCount(typ))
		}
	}
	for _, l := range ds.Labels["conference"] {
		if l < 0 || l >= len(ds.AreaNames) {
			t.Errorf("conference label %d out of range", l)
		}
	}
}

func TestACMPlantedCommunityStructure(t *testing.T) {
	ds, err := ACM(SmallACMConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	// Authors should reach home-area conferences with far more probability
	// than other areas along APVC.
	e := core.NewEngine(g)
	p := metapath.MustParse(g.Schema(), "APVC")
	pm, err := e.ReachableMatrix(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	confArea := ds.Labels["conference"]
	var inHome, total float64
	for a := 0; a < g.NodeCount("author"); a++ {
		home := ds.Labels["author"][a]
		for c := 0; c < g.NodeCount("conference"); c++ {
			v := pm.At(a, c)
			total += v
			if confArea[c] == home {
				inHome += v
			}
		}
	}
	if total == 0 {
		t.Fatal("no author reaches any conference")
	}
	if frac := inHome / total; frac < 0.7 {
		t.Errorf("home-area publication mass = %v, want > 0.7", frac)
	}
}

func TestACMDeterministicBySeed(t *testing.T) {
	cfg := SmallACMConfig()
	a, err := ACM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ACM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.Stats() != b.Graph.Stats() {
		t.Error("same seed produced different graphs")
	}
	wa, _ := a.Graph.Adjacency("writes")
	wb, _ := b.Graph.Adjacency("writes")
	if !wa.Equal(wb) {
		t.Error("same seed produced different adjacency")
	}
	cfg.Seed = 2
	c, err := ACM(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wc, _ := c.Graph.Adjacency("writes")
	if wa.Equal(wc) {
		t.Error("different seeds produced identical adjacency")
	}
}

func TestACMConfigValidation(t *testing.T) {
	cfg := SmallACMConfig()
	cfg.Papers = 0
	if _, err := ACM(cfg); err == nil {
		t.Error("zero papers accepted")
	}
}

func TestDBLPSmallShape(t *testing.T) {
	cfg := SmallDBLPConfig()
	ds, err := DBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if got := g.NodeCount("conference"); got != 20 {
		t.Errorf("conferences = %d, want 20", got)
	}
	if got := g.NodeCount("paper"); got != cfg.Papers {
		t.Errorf("papers = %d, want %d", got, cfg.Papers)
	}
	// Exactly LabeledAuthors labeled authors and LabeledPapers papers.
	if got := len(ds.LabeledIndices("author")); got != cfg.LabeledAuthors {
		t.Errorf("labeled authors = %d, want %d", got, cfg.LabeledAuthors)
	}
	if got := len(ds.LabeledIndices("paper")); got != cfg.LabeledPapers {
		t.Errorf("labeled papers = %d, want %d", got, cfg.LabeledPapers)
	}
	// Labeled authors must be prolific: every labeled author has at
	// least as many papers as... at minimum, one paper.
	w, _ := g.Adjacency("writes")
	for _, i := range ds.LabeledIndices("author") {
		if w.RowNNZ(i) == 0 {
			t.Errorf("labeled author %d has no papers", i)
		}
	}
	if got := ds.AreaOf("conference", 0); got != 0 {
		t.Errorf("SIGMOD area = %d, want 0 (database)", got)
	}
	if got := ds.AreaOf("conference", 5); got != 1 {
		t.Errorf("KDD area = %d, want 1 (data mining)", got)
	}
	if got := ds.AreaOf("nope", 0); got != -1 {
		t.Errorf("unknown type area = %d, want -1", got)
	}
	if got := ds.AreaOf("author", -5); got != -1 {
		t.Errorf("bad index area = %d, want -1", got)
	}
}

func TestDBLPLabelAllProtocol(t *testing.T) {
	cfg := SmallDBLPConfig()
	cfg.LabeledAuthors = 0
	cfg.LabeledPapers = 0
	ds, err := DBLP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.LabeledIndices("author")); got != cfg.Authors {
		t.Errorf("labeled authors = %d, want all %d", got, cfg.Authors)
	}
	if got := len(ds.LabeledIndices("paper")); got != cfg.Papers {
		t.Errorf("labeled papers = %d, want all %d", got, cfg.Papers)
	}
}

func TestDBLPValidation(t *testing.T) {
	cfg := SmallDBLPConfig()
	cfg.Authors = 0
	if _, err := DBLP(cfg); err == nil {
		t.Error("zero authors accepted")
	}
	cfg = SmallDBLPConfig()
	cfg.LabeledAuthors = cfg.Authors + 1
	if _, err := DBLP(cfg); err == nil {
		t.Error("LabeledAuthors > Authors accepted")
	}
	cfg = SmallDBLPConfig()
	cfg.LabeledPapers = cfg.Papers + 1
	if _, err := DBLP(cfg); err == nil {
		t.Error("LabeledPapers > Papers accepted")
	}
}

func TestTopIndices(t *testing.T) {
	got := topIndices([]float64{1, 9, 5, 9}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("topIndices = %v, want [1 3]", got)
	}
	if got := topIndices([]float64{1, 2}, 5); len(got) != 2 {
		t.Errorf("topIndices overflow = %v", got)
	}
}

func TestDBLPDeterministicBySeed(t *testing.T) {
	cfg := SmallDBLPConfig()
	a, _ := DBLP(cfg)
	b, _ := DBLP(cfg)
	wa, _ := a.Graph.Adjacency("writes")
	wb, _ := b.Graph.Adjacency("writes")
	if !wa.Equal(wb) {
		t.Error("same seed produced different DBLP graphs")
	}
}
