package datagen

import (
	"fmt"
	"math/rand"

	"hetesim/internal/hin"
)

// DBLPAreaNames are the four research areas of the paper's DBLP subset
// (Section 5.1), which naturally form the four ground-truth classes.
var DBLPAreaNames = []string{
	"database",
	"data mining",
	"information retrieval",
	"artificial intelligence",
}

// DBLPConferences are 20 conferences, five per area in DBLPAreaNames order.
var DBLPConferences = []string{
	"SIGMOD", "VLDB", "ICDE", "PODS", "EDBT",
	"KDD", "ICDM", "SDM", "PKDD", "PAKDD",
	"SIGIR", "ECIR", "CIKM", "WWW", "WSDM",
	"IJCAI", "AAAI", "ICML", "ECML", "UAI",
}

func dblpAreaOfConf(c int) int { return c / 5 }

// DBLPConfig sizes the synthetic DBLP network.
type DBLPConfig struct {
	Papers  int
	Authors int
	Terms   int
	// LabeledAuthors is how many of the most prolific authors carry an
	// area label (the paper labels 4057 of 14K authors); 0 labels all.
	LabeledAuthors int
	// LabeledPapers is how many papers carry a label (the paper labels
	// 100); 0 labels all.
	LabeledPapers int
	Seed          int64
}

// DefaultDBLPConfig mirrors the shape of the paper's DBLP subset at a scale
// that keeps every experiment laptop-fast: the paper's 14K papers / 14K
// authors / 8.9K terms shrink proportionally while the 20 conferences, the
// four areas and the labeling protocol (a prolific-author subset and a
// 100-paper subset) are preserved.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Papers:         4200,
		Authors:        4200,
		Terms:          2600,
		LabeledAuthors: 1200,
		LabeledPapers:  100,
		Seed:           1,
	}
}

// SmallDBLPConfig is a reduced network for tests.
func SmallDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Papers:         600,
		Authors:        500,
		Terms:          300,
		LabeledAuthors: 150,
		LabeledPapers:  60,
		Seed:           1,
	}
}

// DBLPSchema returns the network schema of Fig. 3(b): authors (A), papers
// (P), conferences (C), terms (T), with papers published directly in
// conferences.
func DBLPSchema() *hin.Schema {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddType("term", 'T')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	s.MustAddRelation("mentions", "paper", "term")
	return s
}

// DBLP generates a synthetic DBLP-style four-area network: 20 conferences
// (5 per area), Zipf author productivity, area-focused publishing, and
// area-specific term vocabularies. Conferences are all labeled; authors and
// papers are labeled per the configuration's protocol.
func DBLP(cfg DBLPConfig) (*Dataset, error) {
	if cfg.Papers <= 0 || cfg.Authors <= 0 || cfg.Terms <= 0 {
		return nil, fmt.Errorf("datagen: all DBLP sizes must be positive: %+v", cfg)
	}
	if cfg.LabeledAuthors < 0 || cfg.LabeledAuthors > cfg.Authors {
		return nil, fmt.Errorf("datagen: LabeledAuthors %d outside [0,%d]", cfg.LabeledAuthors, cfg.Authors)
	}
	if cfg.LabeledPapers < 0 || cfg.LabeledPapers > cfg.Papers {
		return nil, fmt.Errorf("datagen: LabeledPapers %d outside [0,%d]", cfg.LabeledPapers, cfg.Papers)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := hin.NewBuilder(DBLPSchema())
	nAreas := len(DBLPAreaNames)
	nConf := len(DBLPConferences)

	confsByArea := make([][]int, nAreas)
	for c := 0; c < nConf; c++ {
		confsByArea[dblpAreaOfConf(c)] = append(confsByArea[dblpAreaOfConf(c)], c)
	}
	for _, name := range DBLPConferences {
		b.AddNode("conference", name)
	}

	authors := buildAuthors(rng, cfg.Authors, nAreas, confsByArea, 8)
	for i := range authors {
		b.AddNode("author", id("author", i))
	}
	groups := groupMembers(authors)

	termPerm := rng.Perm(cfg.Terms)
	termSamplers := make([]*sampler, nAreas)
	for a := 0; a < nAreas; a++ {
		termSamplers[a] = permutedZipf(cfg.Terms, 1.05, termPerm, a*cfg.Terms/nAreas)
	}

	lead := newSampler(zipfWeights(cfg.Authors, 0.35))
	paperArea := make([]int, cfg.Papers)
	for p := 0; p < cfg.Papers; p++ {
		la := lead.draw(rng)
		am := authors[la]
		area := am.area
		if rng.Float64() < 0.04 {
			area = rng.Intn(nAreas)
		}
		paperArea[p] = area
		var conf int
		switch {
		case rng.Float64() < 0.06:
			conf = rng.Intn(nConf)
		case area == am.area && rng.Float64() < am.focus:
			conf = am.favConf
		default:
			confs := confsByArea[area]
			conf = confs[rng.Intn(len(confs))]
		}
		pid := id("paper", p)
		b.AddEdge("published_in", pid, DBLPConferences[conf])
		b.AddEdge("writes", id("author", la), pid)
		seen := map[int]bool{la: true}
		pool := groups[[2]int{am.area, am.group}]
		for k, nCo := 0, coauthorCount(rng, la, cfg.Authors); k < nCo; k++ {
			// Co-authors come mostly from the lead's group; a sizable
			// minority are cross-area collaborations drawn from the
			// global productivity distribution — the dilution that
			// makes author-mediated paper similarity weak (the paper's
			// Table 6 reading of the PAPCPAP path).
			var co int
			if len(pool) > 1 && rng.Float64() < 0.7 {
				co = pool[rng.Intn(len(pool))]
			} else {
				co = lead.draw(rng)
			}
			if !seen[co] {
				seen[co] = true
				b.AddEdge("writes", id("author", co), pid)
			}
		}
		for k, nT := 0, 4+rng.Intn(5); k < nT; k++ {
			b.AddEdge("mentions", pid, id("term", termSamplers[area].draw(rng)))
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Graph:     g,
		AreaNames: append([]string(nil), DBLPAreaNames...),
		Labels:    make(map[string][]int),
	}
	confLabels := make([]int, g.NodeCount("conference"))
	for c := range confLabels {
		confLabels[c] = dblpAreaOfConf(c)
	}
	ds.Labels["conference"] = confLabels

	// Author labels: the most prolific LabeledAuthors (by written papers)
	// carry their home area, mirroring the paper's labeling of active
	// authors; everyone is labeled when LabeledAuthors is 0.
	authorLabels := make([]int, g.NodeCount("author"))
	if cfg.LabeledAuthors == 0 {
		for i := range authorLabels {
			authorLabels[i] = authors[i].area
		}
	} else {
		for i := range authorLabels {
			authorLabels[i] = -1
		}
		w, err := g.Adjacency("writes")
		if err != nil {
			return nil, err
		}
		counts := make([]float64, g.NodeCount("author"))
		for i := range counts {
			counts[i] = float64(w.RowNNZ(i))
		}
		for _, i := range topIndices(counts, cfg.LabeledAuthors) {
			authorLabels[i] = authors[i].area
		}
	}
	ds.Labels["author"] = authorLabels

	paperLabels := make([]int, g.NodeCount("paper"))
	if cfg.LabeledPapers == 0 {
		copy(paperLabels, paperArea)
	} else {
		for i := range paperLabels {
			paperLabels[i] = -1
		}
		// Label an evenly spread sample of papers, as the paper labels
		// a 100-paper subset.
		stride := cfg.Papers / cfg.LabeledPapers
		if stride == 0 {
			stride = 1
		}
		for k := 0; k < cfg.LabeledPapers; k++ {
			paperLabels[k*stride] = paperArea[k*stride]
		}
	}
	ds.Labels["paper"] = paperLabels
	return ds, nil
}

// topIndices returns the indices of the k largest values (descending, ties
// by index).
func topIndices(vals []float64, k int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	// Simple partial selection is fine at generator scale.
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if vals[idx[j]] > vals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
