package datagen

import (
	"fmt"
	"math/rand"

	"hetesim/internal/hin"
)

// MovieGenres are the planted genres of the recommendation network.
var MovieGenres = []string{
	"action", "comedy", "drama", "horror", "sci-fi",
	"romance", "thriller", "animation", "documentary", "fantasy",
}

// MoviesConfig sizes the synthetic user–movie heterogeneous network used
// by the recommendation example — the application the paper's introduction
// motivates ("in a recommendation system, we need to know the relatedness
// between users and movies").
type MoviesConfig struct {
	Users          int
	Movies         int
	Actors         int
	Directors      int
	RatingsPerUser int
	Seed           int64
}

// DefaultMoviesConfig is a laptop-fast recommendation network.
func DefaultMoviesConfig() MoviesConfig {
	return MoviesConfig{
		Users:          2000,
		Movies:         800,
		Actors:         600,
		Directors:      150,
		RatingsPerUser: 15,
		Seed:           1,
	}
}

// SmallMoviesConfig is a reduced network for tests.
func SmallMoviesConfig() MoviesConfig {
	return MoviesConfig{
		Users:          200,
		Movies:         120,
		Actors:         80,
		Directors:      25,
		RatingsPerUser: 8,
		Seed:           1,
	}
}

// MoviesSchema returns the recommendation network schema: users (U) rate
// movies (M) that have genres (G), star actors (A) and are directed by
// directors (D).
func MoviesSchema() *hin.Schema {
	s := hin.NewSchema()
	s.MustAddType("user", 'U')
	s.MustAddType("movie", 'M')
	s.MustAddType("genre", 'G')
	s.MustAddType("actor", 'A')
	s.MustAddType("director", 'D')
	s.MustAddRelation("rates", "user", "movie")
	s.MustAddRelation("has_genre", "movie", "genre")
	s.MustAddRelation("stars", "movie", "actor")
	s.MustAddRelation("directed_by", "movie", "director")
	return s
}

// Movies generates a synthetic user–movie network with planted genre
// communities: every movie has a primary genre (plus occasional secondary
// ones), actors and directors specialize in genres, and users rate mostly
// within a favorite genre. Movies and users carry genre labels.
func Movies(cfg MoviesConfig) (*Dataset, error) {
	if cfg.Users <= 0 || cfg.Movies <= 0 || cfg.Actors <= 0 ||
		cfg.Directors <= 0 || cfg.RatingsPerUser <= 0 {
		return nil, fmt.Errorf("datagen: all movie sizes must be positive: %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := hin.NewBuilder(MoviesSchema())
	nG := len(MovieGenres)
	for _, g := range MovieGenres {
		b.AddNode("genre", g)
	}

	// Actors and directors specialize in a genre.
	actorGenre := make([]int, cfg.Actors)
	for a := range actorGenre {
		actorGenre[a] = rng.Intn(nG)
		b.AddNode("actor", id("actor", a))
	}
	directorGenre := make([]int, cfg.Directors)
	for d := range directorGenre {
		directorGenre[d] = rng.Intn(nG)
		b.AddNode("director", id("director", d))
	}
	actorsByGenre := make([][]int, nG)
	for a, g := range actorGenre {
		actorsByGenre[g] = append(actorsByGenre[g], a)
	}
	directorsByGenre := make([][]int, nG)
	for d, g := range directorGenre {
		directorsByGenre[g] = append(directorsByGenre[g], d)
	}

	// Movies: primary genre, 0-1 secondary genre, 2-4 actors mostly from
	// the genre, one director.
	movieGenre := make([]int, cfg.Movies)
	moviesByGenre := make([][]int, nG)
	for m := 0; m < cfg.Movies; m++ {
		g := rng.Intn(nG)
		movieGenre[m] = g
		moviesByGenre[g] = append(moviesByGenre[g], m)
		mid := id("movie", m)
		b.AddEdge("has_genre", mid, MovieGenres[g])
		if rng.Float64() < 0.3 {
			b.AddEdge("has_genre", mid, MovieGenres[rng.Intn(nG)])
		}
		nA := 2 + rng.Intn(3)
		seen := map[int]bool{}
		for k := 0; k < nA; k++ {
			var a int
			if pool := actorsByGenre[g]; len(pool) > 0 && rng.Float64() < 0.8 {
				a = pool[rng.Intn(len(pool))]
			} else {
				a = rng.Intn(cfg.Actors)
			}
			if !seen[a] {
				seen[a] = true
				b.AddEdge("stars", mid, id("actor", a))
			}
		}
		var d int
		if pool := directorsByGenre[g]; len(pool) > 0 && rng.Float64() < 0.8 {
			d = pool[rng.Intn(len(pool))]
		} else {
			d = rng.Intn(cfg.Directors)
		}
		b.AddEdge("directed_by", mid, id("director", d))
	}

	// Users rate movies, mostly from their favorite genre; movie
	// popularity within a genre is Zipf.
	popularity := make([]*sampler, nG)
	for g := range popularity {
		if len(moviesByGenre[g]) > 0 {
			popularity[g] = newSampler(zipfWeights(len(moviesByGenre[g]), 0.8))
		}
	}
	userGenre := make([]int, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		fav := rng.Intn(nG)
		userGenre[u] = fav
		uid := id("user", u)
		b.AddNode("user", uid)
		seen := map[int]bool{}
		for k := 0; k < cfg.RatingsPerUser; k++ {
			g := fav
			if rng.Float64() > 0.75 {
				g = rng.Intn(nG)
			}
			if len(moviesByGenre[g]) == 0 {
				continue
			}
			m := moviesByGenre[g][popularity[g].draw(rng)]
			if !seen[m] {
				seen[m] = true
				b.AddEdge("rates", uid, id("movie", m))
			}
		}
	}

	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Graph:     g,
		AreaNames: append([]string(nil), MovieGenres...),
		Labels:    make(map[string][]int),
	}
	ml := make([]int, g.NodeCount("movie"))
	copy(ml, movieGenre)
	ds.Labels["movie"] = ml
	ul := make([]int, g.NodeCount("user"))
	copy(ul, userGenre)
	ds.Labels["user"] = ul
	gl := make([]int, nG)
	for i := range gl {
		gl[i] = i
	}
	ds.Labels["genre"] = gl
	return ds, nil
}
