package datagen

import (
	"context"
	"testing"

	"hetesim/internal/core"
	"hetesim/internal/metapath"
)

func TestMoviesShape(t *testing.T) {
	cfg := SmallMoviesConfig()
	ds, err := Movies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	if got := g.NodeCount("genre"); got != len(MovieGenres) {
		t.Errorf("genres = %d, want %d", got, len(MovieGenres))
	}
	if got := g.NodeCount("movie"); got != cfg.Movies {
		t.Errorf("movies = %d, want %d", got, cfg.Movies)
	}
	if got := g.NodeCount("user"); got != cfg.Users {
		t.Errorf("users = %d, want %d", got, cfg.Users)
	}
	// Every movie has at least one genre, actor and a director.
	hg, _ := g.Adjacency("has_genre")
	st, _ := g.Adjacency("stars")
	db, _ := g.Adjacency("directed_by")
	for m := 0; m < cfg.Movies; m++ {
		if hg.RowNNZ(m) == 0 || st.RowNNZ(m) == 0 || db.RowNNZ(m) != 1 {
			t.Fatalf("movie %d: genres=%d actors=%d directors=%d",
				m, hg.RowNNZ(m), st.RowNNZ(m), db.RowNNZ(m))
		}
	}
	if len(ds.Labels["movie"]) != cfg.Movies || len(ds.Labels["user"]) != cfg.Users {
		t.Error("labels missing")
	}
}

func TestMoviesPlantedPreferences(t *testing.T) {
	ds, err := Movies(SmallMoviesConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := ds.Graph
	// Users should reach their favorite genre with dominant probability
	// along UMG (user → rated movies → genres).
	e := core.NewEngine(g)
	p := metapath.MustParse(g.Schema(), "UMG")
	pm, err := e.ReachableMatrix(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for u := 0; u < g.NodeCount("user"); u++ {
		fav := ds.AreaOf("user", u)
		best, bv := -1, -1.0
		for gi := 0; gi < g.NodeCount("genre"); gi++ {
			if v := pm.At(u, gi); v > bv {
				best, bv = gi, v
			}
		}
		if best == fav {
			hits++
		}
	}
	if frac := float64(hits) / float64(g.NodeCount("user")); frac < 0.8 {
		t.Errorf("favorite genre recovered for %.2f of users, want > 0.8", frac)
	}
}

func TestMoviesValidationAndDeterminism(t *testing.T) {
	cfg := SmallMoviesConfig()
	cfg.Movies = 0
	if _, err := Movies(cfg); err == nil {
		t.Error("zero movies accepted")
	}
	a, _ := Movies(SmallMoviesConfig())
	b, _ := Movies(SmallMoviesConfig())
	ra, _ := a.Graph.Adjacency("rates")
	rb, _ := b.Graph.Adjacency("rates")
	if !ra.Equal(rb) {
		t.Error("same seed produced different ratings")
	}
}
