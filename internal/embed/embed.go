// Package embed factorizes cached half-chain matrices into low-rank node
// embeddings for sublinear approximate top-k relevance search.
//
// The exact top-k path scores a source against every node of the target
// type through the right half-chain matrix PM_R (nTargets × dim, where dim
// is the middle-type dimension of the meta path). Following the ESim/HetFS
// line of work, we factorize the row space of PM_R once: the dominant
// rank-r subspace is spanned by the top eigenvectors V (dim × r) of the
// Gram operator G = PM_Rᵀ·PM_R, computed with orthogonal iteration on the
// sparse operator (no densification). Each target's embedding is its row
// projected onto that basis, E = PM_R·V (nTargets × r), and a query's
// reaching distribution projects the same way, q = Vᵀ·left. Then
//
//	⟨E[b], q⟩ = ⟨PM_R[b]·V, Vᵀ·left⟩ = leftᵀ · (V·Vᵀ) · PM_R[b]
//
// is exactly the HeteSim inner product with both operands projected onto
// the shared rank-r subspace — Property 2 of the paper (relevance as an
// inner product of reaching distributions) survives the truncation, only
// the subspace is smaller. At rank == dim, V·Vᵀ = I and the approximation
// is exact. Candidates over-fetched by approximate score are re-ranked by
// the caller through the exact pair-vectors operators, so returned scores
// are always bit-identical to the exact ones; only recall can degrade.
package embed

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"hetesim/internal/linalg"
	"hetesim/internal/sparse"
)

// DefaultIters is the orthogonal-iteration count used when Build is given
// iters <= 0. The Gram operator is PSD with fast spectral decay on the
// bibliographic chains we factorize, so a moderate count converges well.
const DefaultIters = 60

// Embedding is a rank-r factorization of one right half-chain matrix.
type Embedding struct {
	Rank int // r, number of basis columns actually kept
	Dim  int // middle-type dimension (columns of PM_R)
	Rows int // number of target nodes (rows of PM_R)

	// Basis holds V, Dim×Rank, orthonormal columns spanning the dominant
	// row space of PM_R.
	Basis *linalg.Dense
	// Vecs holds E = PM_R·V row-major: target b's embedding is
	// Vecs[b*Rank : (b+1)*Rank].
	Vecs []float64
}

// Build factorizes pmr into a rank-r embedding. rank is clamped to
// [1, dim]; seed makes the iteration deterministic; iters <= 0 selects
// DefaultIters. The context is polled between eigensolver iterations and
// between row-projection batches so builds over large graphs cancel
// promptly.
func Build(ctx context.Context, pmr *sparse.Matrix, rank int, seed int64, iters int) (*Embedding, error) {
	nT, dim := pmr.Dims()
	if nT == 0 || dim == 0 {
		return nil, fmt.Errorf("embed: cannot factorize empty %dx%d chain", nT, dim)
	}
	if rank < 1 {
		rank = 1
	}
	if rank > dim {
		rank = dim
	}
	if iters <= 0 {
		iters = DefaultIters
	}

	// G = PM_Rᵀ·PM_R as a mulVec operator: G·x = VecMul(MulVec(x)).
	mul := func(dst, x []float64) {
		gx := pmr.VecMul(pmr.MulVec(x))
		copy(dst, gx)
	}
	rng := rand.New(rand.NewSource(seed))
	seedBlock := linalg.NewDense(dim, rank)
	for i := 0; i < dim; i++ {
		for j := 0; j < rank; j++ {
			seedBlock.Set(i, j, rng.NormFloat64())
		}
	}
	// The Gram operator is PSD, so its spectrum already sits in [0, ∞)
	// and no shift is needed: lo = 0.
	eig, err := linalg.TopKEigen(ctx, dim, rank, mul, 0, seedBlock, iters)
	if err != nil {
		return nil, err
	}

	e := &Embedding{Rank: rank, Dim: dim, Rows: nT, Basis: eig.Vectors}
	e.Vecs = make([]float64, nT*rank)
	const pollEvery = 4096
	for b := 0; b < nT; b++ {
		if b%pollEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		dst := e.Vecs[b*rank : (b+1)*rank]
		pmr.Row(b).Entries(func(c int, v float64) {
			basisRow := eig.Vectors.Row(c)
			for j := 0; j < rank; j++ {
				dst[j] += v * basisRow[j]
			}
		})
	}
	return e, nil
}

// Project maps a source's left reaching distribution into the embedding
// space: q = Vᵀ·left. left must have length Dim.
func (e *Embedding) Project(left *sparse.Vector) ([]float64, error) {
	if left.Len() != e.Dim {
		return nil, fmt.Errorf("embed: left vector length %d, want %d", left.Len(), e.Dim)
	}
	q := make([]float64, e.Rank)
	left.Entries(func(i int, v float64) {
		basisRow := e.Basis.Row(i)
		for j := 0; j < e.Rank; j++ {
			q[j] += v * basisRow[j]
		}
	})
	return q, nil
}

// Candidates returns the indices of the c targets with the largest
// approximate scores ⟨E[b], q⟩, optionally divided by norms[b] (the exact
// chain row norms, for normalized HeteSim; targets with zero norm are
// skipped, matching the exact scorer). Ties break toward the smaller
// index. The result is sorted ascending so the caller's exact re-rank
// visits rows in deterministic order. c is clamped to the number of
// eligible targets.
func (e *Embedding) Candidates(q []float64, c int, norms []float64) []int {
	if c <= 0 {
		return nil
	}
	type cand struct {
		score float64
		idx   int
	}
	// Bounded selection: keep the best c in a slice-backed min-heap.
	heap := make([]cand, 0, c)
	less := func(a, b cand) bool {
		// Min-heap by score; on equal score the LARGER index is the
		// weaker element so that ties evict larger indices first.
		if a.score != b.score {
			return a.score < b.score
		}
		return a.idx > b.idx
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !less(heap[i], heap[p]) {
				break
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(heap) && less(heap[l], heap[m]) {
				m = l
			}
			if r < len(heap) && less(heap[r], heap[m]) {
				m = r
			}
			if m == i {
				break
			}
			heap[i], heap[m] = heap[m], heap[i]
			i = m
		}
	}
	r := e.Rank
	for b := 0; b < e.Rows; b++ {
		if norms != nil && norms[b] == 0 {
			continue
		}
		var s float64
		vec := e.Vecs[b*r : (b+1)*r]
		for j := 0; j < r; j++ {
			s += vec[j] * q[j]
		}
		if norms != nil {
			s /= norms[b]
		}
		if len(heap) < c {
			heap = append(heap, cand{s, b})
			siftUp(len(heap) - 1)
		} else if less(heap[0], cand{s, b}) {
			heap[0] = cand{s, b}
			siftDown(0)
		}
	}
	out := make([]int, len(heap))
	for i, h := range heap {
		out[i] = h.idx
	}
	sort.Ints(out)
	return out
}
