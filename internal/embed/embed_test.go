package embed

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"testing"

	"hetesim/internal/sparse"
)

func randomMatrix(rng *rand.Rand, rows, cols, perRow int) *sparse.Matrix {
	var tr []sparse.Triplet
	for i := 0; i < rows; i++ {
		for k := 0; k < 1+rng.Intn(perRow); k++ {
			tr = append(tr, sparse.Triplet{Row: i, Col: rng.Intn(cols), Val: rng.Float64()})
		}
	}
	return sparse.New(rows, cols, tr)
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(context.Background(), sparse.Zeros(0, 0), 2, 1, 10); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestBuildCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 200, 40, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, m, 8, 1, 50); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProjectLengthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomMatrix(rng, 50, 10, 3)
	e, err := Build(context.Background(), m, 4, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Project(sparse.Unit(11, 0)); err == nil {
		t.Error("wrong-length left vector accepted")
	}
}

// At rank == dim the basis spans the full space, so approximate scores
// equal exact inner products up to rounding and the candidate ranking
// matches the exact one.
func TestFullRankReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rows, dim := 120, 12
	m := randomMatrix(rng, rows, dim, 4)
	e, err := Build(context.Background(), m, dim, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Rank != dim {
		t.Fatalf("rank = %d, want %d", e.Rank, dim)
	}
	left := m.Row(3) // some nonzero left distribution over the middle dim
	if left.NNZ() == 0 {
		t.Fatal("test setup: empty left vector")
	}
	q, err := e.Project(left)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < rows; b++ {
		exact := left.Dot(m.Row(b))
		var approx float64
		for j := 0; j < e.Rank; j++ {
			approx += e.Vecs[b*e.Rank+j] * q[j]
		}
		if math.Abs(exact-approx) > 1e-9*(1+math.Abs(exact)) {
			t.Fatalf("target %d: approx %v, exact %v", b, approx, exact)
		}
	}
}

func TestCandidatesSelectsTopScores(t *testing.T) {
	// Hand-built embedding where the approximate scores are directly
	// controllable: rank 1, q = [1], so score_b = Vecs[b].
	e := &Embedding{Rank: 1, Dim: 1, Rows: 6, Vecs: []float64{0.5, 2, 2, 0.1, 3, 0}}
	got := e.Candidates([]float64{1}, 3, nil)
	want := []int{1, 2, 4} // scores 2, 2 (tie: both beat 0.5), 3
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if c := e.Candidates([]float64{1}, 100, nil); len(c) != 6 {
		t.Fatalf("over-asked candidates = %d, want all 6", len(c))
	}
	if c := e.Candidates([]float64{1}, 0, nil); c != nil {
		t.Fatalf("c=0 returned %v", c)
	}
}

func TestCandidatesTieBreaksTowardSmallerIndex(t *testing.T) {
	e := &Embedding{Rank: 1, Dim: 1, Rows: 5, Vecs: []float64{1, 1, 1, 1, 1}}
	got := e.Candidates([]float64{1}, 2, nil)
	want := []int{0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCandidatesSkipsZeroNorms(t *testing.T) {
	e := &Embedding{Rank: 1, Dim: 1, Rows: 4, Vecs: []float64{10, 8, 6, 4}}
	norms := []float64{0, 2, 0, 1}
	got := e.Candidates([]float64{1}, 3, norms)
	// Eligible scores: b=1 → 4, b=3 → 4; zero-norm rows skipped entirely.
	want := []int{1, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// Recall sanity on a low-rank-structured matrix: with planted block
// structure a small rank recovers most of the true top-k.
func TestLowRankRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rows, dim, blocks := 300, 60, 4
	var tr []sparse.Triplet
	for i := 0; i < rows; i++ {
		blk := i % blocks
		for c := 0; c < dim; c++ {
			if c%blocks == blk {
				tr = append(tr, sparse.Triplet{Row: i, Col: c, Val: 1 + 0.1*rng.Float64()})
			} else if rng.Float64() < 0.05 {
				tr = append(tr, sparse.Triplet{Row: i, Col: c, Val: 0.05 * rng.Float64()})
			}
		}
	}
	m := sparse.New(rows, dim, tr)
	e, err := Build(context.Background(), m, 8, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	left := m.Row(0)
	q, err := e.Project(left)
	if err != nil {
		t.Fatal(err)
	}
	k := 10
	cands := e.Candidates(q, 4*k, nil)
	inCand := map[int]bool{}
	for _, b := range cands {
		inCand[b] = true
	}
	type sc struct {
		s float64
		b int
	}
	exact := make([]sc, rows)
	for b := 0; b < rows; b++ {
		exact[b] = sc{left.Dot(m.Row(b)), b}
	}
	sort.Slice(exact, func(i, j int) bool {
		if exact[i].s != exact[j].s {
			return exact[i].s > exact[j].s
		}
		return exact[i].b < exact[j].b
	})
	hit := 0
	for _, x := range exact[:k] {
		if inCand[x.b] {
			hit++
		}
	}
	if recall := float64(hit) / float64(k); recall < 0.9 {
		t.Fatalf("recall@%d = %v, want >= 0.9", k, recall)
	}
}
