package eval

import (
	"fmt"
)

// Purity returns clustering purity: the fraction of objects whose cluster's
// majority true class matches their own. In [0, 1]; trivially 1 for
// singleton clusters, so it is reported alongside NMI rather than alone.
func Purity(truth, pred []int) (float64, error) {
	if len(truth) != len(pred) {
		return 0, fmt.Errorf("%w: label lengths %d vs %d", ErrBadInput, len(truth), len(pred))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("%w: empty labelings", ErrBadInput)
	}
	// For each predicted cluster, count its dominant true class.
	counts := make(map[int]map[int]int)
	for i := range pred {
		m := counts[pred[i]]
		if m == nil {
			m = make(map[int]int)
			counts[pred[i]] = m
		}
		m[truth[i]]++
	}
	var hit int
	for _, m := range counts {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		hit += best
	}
	return float64(hit) / float64(len(truth)), nil
}

// AdjustedRandIndex returns the Adjusted Rand Index between two labelings:
// the Rand index corrected for chance, 1 for identical partitions, ~0 for
// independent ones (it can go slightly negative for anti-correlated
// partitions).
func AdjustedRandIndex(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: label lengths %d vs %d", ErrBadInput, len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("%w: empty labelings", ErrBadInput)
	}
	joint := make(map[[2]int]int)
	ca := make(map[int]int)
	cb := make(map[int]int)
	for i := range a {
		joint[[2]int{a[i], b[i]}]++
		ca[a[i]]++
		cb[b[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumJoint, sumA, sumB float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range ca {
		sumA += choose2(c)
	}
	for _, c := range cb {
		sumB += choose2(c)
	}
	total := choose2(n)
	expected := sumA * sumB / total
	maxIndex := (sumA + sumB) / 2
	if maxIndex == expected {
		// Both partitions trivial (all singletons or one cluster):
		// identical by construction of the degenerate case.
		return 1, nil
	}
	return (sumJoint - expected) / (maxIndex - expected), nil
}
