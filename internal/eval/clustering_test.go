package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPurityKnownValues(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1, 1}
	// Perfect clustering (relabeled).
	got, err := Purity(truth, []int{7, 7, 7, 9, 9, 9})
	if err != nil || got != 1 {
		t.Errorf("perfect purity = %v, %v", got, err)
	}
	// One object misplaced: 5/6.
	got, _ = Purity(truth, []int{7, 7, 9, 9, 9, 9})
	if math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("purity = %v, want 5/6", got)
	}
	// Singleton clusters are trivially pure.
	got, _ = Purity(truth, []int{0, 1, 2, 3, 4, 5})
	if got != 1 {
		t.Errorf("singleton purity = %v, want 1", got)
	}
	if _, err := Purity(truth, truth[:2]); !errors.Is(err, ErrBadInput) {
		t.Errorf("length err = %v", err)
	}
	if _, err := Purity(nil, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v", err)
	}
}

func TestARIKnownValues(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	got, err := AdjustedRandIndex(truth, []int{5, 5, 8, 8})
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect ARI = %v, %v", got, err)
	}
	// Orthogonal 2x2 grid: ARI should be below ~0 (chance level).
	got, _ = AdjustedRandIndex([]int{0, 0, 1, 1}, []int{0, 1, 0, 1})
	if got > 0.01 {
		t.Errorf("orthogonal ARI = %v, want <= ~0", got)
	}
	if _, err := AdjustedRandIndex(truth, truth[:1]); !errors.Is(err, ErrBadInput) {
		t.Errorf("length err = %v", err)
	}
}

func TestARIInvariantUnderRelabeling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		v1, err := AdjustedRandIndex(a, b)
		if err != nil {
			return false
		}
		// Relabel b by a fixed permutation.
		perm := []int{2, 3, 0, 1}
		b2 := make([]int, n)
		for i := range b {
			b2[i] = perm[b[i]]
		}
		v2, err := AdjustedRandIndex(a, b2)
		if err != nil {
			return false
		}
		v3, err := AdjustedRandIndex(b, a) // symmetry
		if err != nil {
			return false
		}
		return math.Abs(v1-v2) < 1e-12 && math.Abs(v1-v3) < 1e-12 && v1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestARIDegeneratePartitions(t *testing.T) {
	all := []int{1, 1, 1}
	got, err := AdjustedRandIndex(all, all)
	if err != nil || got != 1 {
		t.Errorf("trivial vs trivial ARI = %v, %v", got, err)
	}
}
