package eval_test

import (
	"fmt"

	"hetesim/internal/eval"
)

func ExampleNMI() {
	truth := []int{0, 0, 1, 1}
	perfect := []int{5, 5, 9, 9} // same partition, different labels
	v, _ := eval.NMI(truth, perfect)
	fmt.Printf("%.2f\n", v)
	// Output: 1.00
}

func ExampleAUC() {
	scores := []float64{0.9, 0.8, 0.3, 0.1}
	relevant := []bool{true, true, false, false}
	v, _ := eval.AUC(scores, relevant)
	fmt.Printf("%.2f\n", v)
	// Output: 1.00
}

func ExampleAverageRankDifference() {
	truth := []float64{10, 9, 8}    // ground-truth importance
	measured := []float64{8, 9, 10} // fully reversed ranking
	v, _ := eval.AverageRankDifference(truth, measured, 0)
	fmt.Printf("%.2f\n", v)
	// Output: 1.33
}

func ExampleSpearman() {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30} // same order
	v, _ := eval.Spearman(a, b)
	fmt.Printf("%.2f\n", v)
	// Output: 1.00
}
