// Package eval implements the evaluation metrics of the paper's experiment
// section: NMI for the clustering task (Table 6), AUC for the relevance
// query task (Table 5), and the average rank difference of the expert
// finding study (Fig. 6), plus supporting ranking utilities.
package eval

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrBadInput marks invalid metric inputs.
var ErrBadInput = errors.New("eval: bad input")

// NMI computes the Normalized Mutual Information between two labelings of
// the same objects, I(X;Y)/sqrt(H(X)H(Y)), in [0, 1] with 1 for identical
// partitions. Two trivial (single-cluster) partitions score 1 against each
// other and 0 against anything else, the usual convention.
func NMI(a, b []int) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: label lengths %d vs %d", ErrBadInput, len(a), len(b))
	}
	n := len(a)
	if n == 0 {
		return 0, fmt.Errorf("%w: empty labelings", ErrBadInput)
	}
	joint := make(map[[2]int]int)
	ca := make(map[int]int)
	cb := make(map[int]int)
	for i := range a {
		joint[[2]int{a[i], b[i]}]++
		ca[a[i]]++
		cb[b[i]]++
	}
	fn := float64(n)
	var mi float64
	for key, c := range joint {
		pxy := float64(c) / fn
		px := float64(ca[key[0]]) / fn
		py := float64(cb[key[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	entropy := func(counts map[int]int) float64 {
		var h float64
		for _, c := range counts {
			p := float64(c) / fn
			h -= p * math.Log(p)
		}
		return h
	}
	ha, hb := entropy(ca), entropy(cb)
	if ha == 0 && hb == 0 {
		return 1, nil
	}
	if ha == 0 || hb == 0 {
		return 0, nil
	}
	v := mi / math.Sqrt(ha*hb)
	// Clamp rounding spill.
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

// AUC computes the area under the ROC curve of scores against binary
// relevance labels via the Mann–Whitney statistic with midrank tie
// handling: the probability that a uniformly random positive outscores a
// uniformly random negative (ties count half).
func AUC(scores []float64, positive []bool) (float64, error) {
	if len(scores) != len(positive) {
		return 0, fmt.Errorf("%w: %d scores vs %d labels", ErrBadInput, len(scores), len(positive))
	}
	var npos, nneg int
	for _, p := range positive {
		if p {
			npos++
		} else {
			nneg++
		}
	}
	if npos == 0 || nneg == 0 {
		return 0, fmt.Errorf("%w: need both positive and negative examples", ErrBadInput)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	// Midranks.
	ranks := make([]float64, len(scores))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && scores[idx[j+1]] == scores[idx[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = mid
		}
		i = j + 1
	}
	var rsum float64
	for i, p := range positive {
		if p {
			rsum += ranks[i]
		}
	}
	u := rsum - float64(npos)*float64(npos+1)/2
	return u / (float64(npos) * float64(nneg)), nil
}

// RankPositions returns the 1-based rank of every index when sorted by
// descending score, ties broken by ascending index (ordinal ranking).
func RankPositions(scores []float64) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	ranks := make([]int, len(scores))
	for pos, i := range idx {
		ranks[i] = pos + 1
	}
	return ranks
}

// AverageRankDifference measures, over the topK objects of the ground-truth
// ranking, the mean absolute difference between each object's ground-truth
// rank and its rank under the measured scores — the Fig. 6 statistic (lower
// is better). topK <= 0 evaluates all objects.
func AverageRankDifference(truth, measured []float64, topK int) (float64, error) {
	if len(truth) != len(measured) {
		return 0, fmt.Errorf("%w: %d truth vs %d measured", ErrBadInput, len(truth), len(measured))
	}
	if len(truth) == 0 {
		return 0, fmt.Errorf("%w: empty rankings", ErrBadInput)
	}
	rt := RankPositions(truth)
	rm := RankPositions(measured)
	if topK <= 0 || topK > len(truth) {
		topK = len(truth)
	}
	var sum float64
	var count int
	for i := range truth {
		if rt[i] <= topK {
			sum += math.Abs(float64(rt[i] - rm[i]))
			count++
		}
	}
	return sum / float64(count), nil
}

// PrecisionAtK returns the fraction of the top-k scored items that are
// relevant.
func PrecisionAtK(scores []float64, relevant []bool, k int) (float64, error) {
	if len(scores) != len(relevant) {
		return 0, fmt.Errorf("%w: %d scores vs %d labels", ErrBadInput, len(scores), len(relevant))
	}
	if k <= 0 || k > len(scores) {
		return 0, fmt.Errorf("%w: k=%d with %d items", ErrBadInput, k, len(scores))
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	hits := 0
	for _, i := range idx[:k] {
		if relevant[i] {
			hits++
		}
	}
	return float64(hits) / float64(k), nil
}

// Spearman returns Spearman's rank correlation coefficient between two
// score vectors (ordinal ranks, ties broken by index).
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("%w: lengths %d vs %d", ErrBadInput, len(a), len(b))
	}
	n := len(a)
	if n < 2 {
		return 0, fmt.Errorf("%w: need at least 2 items", ErrBadInput)
	}
	ra := RankPositions(a)
	rb := RankPositions(b)
	var d2 float64
	for i := range ra {
		d := float64(ra[i] - rb[i])
		d2 += d * d
	}
	fn := float64(n)
	return 1 - 6*d2/(fn*(fn*fn-1)), nil
}
