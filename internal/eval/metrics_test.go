package eval

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNMIPerfectAndIndependent(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	got, err := NMI(a, a)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(a,a) = %v, %v; want 1", got, err)
	}
	// Relabeled partitions are still identical.
	b := []int{5, 5, 9, 9, 7, 7}
	got, _ = NMI(a, b)
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI under relabeling = %v, want 1", got)
	}
	// Orthogonal partition of a 2x2 grid has zero mutual information.
	x := []int{0, 0, 1, 1}
	y := []int{0, 1, 0, 1}
	got, _ = NMI(x, y)
	if math.Abs(got) > 1e-12 {
		t.Errorf("NMI orthogonal = %v, want 0", got)
	}
}

func TestNMITrivialPartitions(t *testing.T) {
	all := []int{1, 1, 1}
	split := []int{0, 1, 2}
	if got, _ := NMI(all, all); got != 1 {
		t.Errorf("NMI(trivial,trivial) = %v, want 1", got)
	}
	if got, _ := NMI(all, split); got != 0 {
		t.Errorf("NMI(trivial,split) = %v, want 0", got)
	}
}

func TestNMIErrorsAndRange(t *testing.T) {
	if _, err := NMI([]int{1}, []int{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := NMI(nil, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v", err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		v, err := NMI(a, b)
		if err != nil {
			return false
		}
		w, err := NMI(b, a)
		return err == nil && v >= 0 && v <= 1 && math.Abs(v-w) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAUCKnownValues(t *testing.T) {
	// Perfect separation.
	got, err := AUC([]float64{0.9, 0.8, 0.2, 0.1}, []bool{true, true, false, false})
	if err != nil || got != 1 {
		t.Errorf("perfect AUC = %v, %v", got, err)
	}
	// Perfectly wrong.
	got, _ = AUC([]float64{0.1, 0.2, 0.8, 0.9}, []bool{true, true, false, false})
	if got != 0 {
		t.Errorf("inverted AUC = %v, want 0", got)
	}
	// All tied: 0.5 by midranks.
	got, _ = AUC([]float64{0.5, 0.5, 0.5, 0.5}, []bool{true, false, true, false})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", got)
	}
	// Hand-computed mixed case: pos scores {3,1}, neg {2,0}:
	// pairs (3>2, 3>0, 1<2, 1>0) -> 3/4.
	got, _ = AUC([]float64{3, 1, 2, 0}, []bool{true, true, false, false})
	if math.Abs(got-0.75) > 1e-12 {
		t.Errorf("mixed AUC = %v, want 0.75", got)
	}
}

func TestAUCErrors(t *testing.T) {
	if _, err := AUC([]float64{1}, []bool{true, false}); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := AUC([]float64{1, 2}, []bool{true, true}); !errors.Is(err, ErrBadInput) {
		t.Errorf("single-class err = %v", err)
	}
}

func TestAUCEqualsPairCounting(t *testing.T) {
	// Midrank AUC must equal the explicit count of concordant pairs
	// (ties half-weighted).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		scores := make([]float64, n)
		labels := make([]bool, n)
		labels[0], labels[1] = true, false // guarantee both classes
		for i := range scores {
			scores[i] = float64(rng.Intn(6)) // force ties
			if i > 1 {
				labels[i] = rng.Intn(2) == 0
			}
		}
		got, err := AUC(scores, labels)
		if err != nil {
			return false
		}
		var num, den float64
		for i := range scores {
			if !labels[i] {
				continue
			}
			for j := range scores {
				if labels[j] {
					continue
				}
				den++
				switch {
				case scores[i] > scores[j]:
					num++
				case scores[i] == scores[j]:
					num += 0.5
				}
			}
		}
		return math.Abs(got-num/den) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRankPositions(t *testing.T) {
	ranks := RankPositions([]float64{0.2, 0.9, 0.5, 0.9})
	// 0.9 (idx1) first, 0.9 (idx3) second by index tie-break, 0.5 third.
	want := []int{4, 1, 3, 2}
	for i := range want {
		if ranks[i] != want[i] {
			t.Errorf("rank[%d] = %d, want %d", i, ranks[i], want[i])
		}
	}
}

func TestAverageRankDifference(t *testing.T) {
	truth := []float64{10, 9, 8, 7}
	same, err := AverageRankDifference(truth, truth, 0)
	if err != nil || same != 0 {
		t.Errorf("identical rankings diff = %v, %v", same, err)
	}
	// Fully reversed 4-ranking: diffs 3,1,1,3 -> mean 2.
	rev := []float64{7, 8, 9, 10}
	got, _ := AverageRankDifference(truth, rev, 0)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("reversed diff = %v, want 2", got)
	}
	// topK=1 considers only the ground-truth #1 (diff 3).
	got, _ = AverageRankDifference(truth, rev, 1)
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("topK=1 diff = %v, want 3", got)
	}
	if _, err := AverageRankDifference(truth, truth[:2], 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := AverageRankDifference(nil, nil, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v", err)
	}
}

func TestPrecisionAtK(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.1}
	rel := []bool{true, false, true, true}
	got, err := PrecisionAtK(scores, rel, 2)
	if err != nil || got != 0.5 {
		t.Errorf("P@2 = %v, %v; want 0.5", got, err)
	}
	got, _ = PrecisionAtK(scores, rel, 3)
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("P@3 = %v, want 2/3", got)
	}
	if _, err := PrecisionAtK(scores, rel, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("k=0 err = %v", err)
	}
	if _, err := PrecisionAtK(scores, rel[:2], 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch err = %v", err)
	}
}

func TestSpearman(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	got, err := Spearman(a, a)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman(a,a) = %v, %v", got, err)
	}
	rev := []float64{5, 4, 3, 2, 1}
	got, _ = Spearman(a, rev)
	if math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman reversed = %v, want -1", got)
	}
	if _, err := Spearman(a, a[:2]); !errors.Is(err, ErrBadInput) {
		t.Errorf("length err = %v", err)
	}
	if _, err := Spearman([]float64{1}, []float64{1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short err = %v", err)
	}
}
