package exp

import (
	"context"
	"fmt"
	"math"
	"strings"

	"hetesim/internal/core"
	"hetesim/internal/eval"
)

// Ablation studies for the design choices DESIGN.md §6 calls out. Unlike
// the benchmark harness (which times them), these drivers measure the
// *accuracy* side of each trade-off on the synthetic ACM network.

// AblationPruningRow is one pruning level's accuracy/size trade-off.
type AblationPruningRow struct {
	Eps          float64
	MaxAbsErr    float64 // worst absolute score deviation vs exact
	Spearman     float64 // rank agreement with the exact single-source scores
	LeftNNZ      int     // materialized left-half size under pruning
	ExactLeftNNZ int
}

// AblationPruningResult sweeps the Section 4.6 truncation threshold.
type AblationPruningResult struct {
	Path string
	Rows []AblationPruningRow
}

// Render formats the sweep.
func (r AblationPruningResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — reachable-probability pruning on %s (§4.6 speedup 3)\n\n", r.Path)
	fmt.Fprintf(&b, "  %-8s %12s %10s %12s\n", "eps", "max |err|", "Spearman", "left nnz")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8g %12.2e %10.4f %7d/%d\n",
			row.Eps, row.MaxAbsErr, row.Spearman, row.LeftNNZ, row.ExactLeftNNZ)
	}
	return b.String()
}

// AblationPruning measures, for several truncation thresholds, how far
// pruned HeteSim scores drift from exact ones and how much sparser the
// materialized chains get.
func (c *Context) AblationPruning() (AblationPruningResult, error) {
	ds, err := c.ACM()
	if err != nil {
		return AblationPruningResult{}, err
	}
	g := ds.Graph
	const spec = "APTPA"
	p := mustPath(g, spec)
	exact := c.Engine("acm", g)
	counts, err := paperCounts(g)
	if err != nil {
		return AblationPruningResult{}, err
	}
	star, err := starAuthor(g, counts, "KDD")
	if err != nil {
		return AblationPruningResult{}, err
	}
	ref, err := exact.SingleSourceByIndex(context.Background(), p, star)
	if err != nil {
		return AblationPruningResult{}, err
	}
	_, _, actL, _, err := exact.ChainStats(context.Background(), p, true)
	if err != nil {
		return AblationPruningResult{}, err
	}
	res := AblationPruningResult{Path: spec}
	for _, eps := range []float64{0, 1e-3, 1e-2, 5e-2} {
		e := core.NewEngine(g, core.WithPruning(eps))
		got, err := e.SingleSourceByIndex(context.Background(), p, star)
		if err != nil {
			return AblationPruningResult{}, err
		}
		var maxErr float64
		for i := range ref {
			if d := math.Abs(got[i] - ref[i]); d > maxErr {
				maxErr = d
			}
		}
		rho, err := eval.Spearman(ref, got)
		if err != nil {
			return AblationPruningResult{}, err
		}
		_, _, prunedL, _, err := e.ChainStats(context.Background(), p, true)
		if err != nil {
			return AblationPruningResult{}, err
		}
		res.Rows = append(res.Rows, AblationPruningRow{
			Eps: eps, MaxAbsErr: maxErr, Spearman: rho,
			LeftNNZ: int(prunedL.NNZ), ExactLeftNNZ: int(actL.NNZ),
		})
	}
	return res, nil
}

// AblationMonteCarloRow is one sample budget's estimation error.
type AblationMonteCarloRow struct {
	Walks      int
	MeanAbsErr float64
	MaxAbsErr  float64
}

// AblationMonteCarloResult sweeps the Monte Carlo sample budget against
// exact pair scores.
type AblationMonteCarloResult struct {
	Path  string
	Pairs int
	Rows  []AblationMonteCarloRow
}

// Render formats the sweep.
func (r AblationMonteCarloResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — Monte Carlo pair estimation on %s (%d pairs; §4.6 approximation)\n\n", r.Path, r.Pairs)
	fmt.Fprintf(&b, "  %-8s %12s %12s\n", "walks", "mean |err|", "max |err|")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-8d %12.4f %12.4f\n", row.Walks, row.MeanAbsErr, row.MaxAbsErr)
	}
	return b.String()
}

// AblationMonteCarlo measures the sampling estimator's error against exact
// scores over author–conference pairs, across sample budgets: the error
// should shrink roughly as 1/sqrt(walks).
func (c *Context) AblationMonteCarlo() (AblationMonteCarloResult, error) {
	ds, err := c.ACM()
	if err != nil {
		return AblationMonteCarloResult{}, err
	}
	g := ds.Graph
	const spec = "APVC"
	p := mustPath(g, spec)
	e := c.Engine("acm", g)
	counts, err := paperCounts(g)
	if err != nil {
		return AblationMonteCarloResult{}, err
	}
	// Pairs: the top author of each conference with that conference.
	type pair struct{ a, c int }
	var pairs []pair
	for ci := range g.NodeIDs("conference") {
		name, err := g.NodeID("conference", ci)
		if err != nil {
			return AblationMonteCarloResult{}, err
		}
		a, err := starAuthor(g, counts, name)
		if err != nil {
			return AblationMonteCarloResult{}, err
		}
		pairs = append(pairs, pair{a, ci})
	}
	res := AblationMonteCarloResult{Path: spec, Pairs: len(pairs)}
	for _, walks := range []int{1000, 10000, 100000} {
		var sum, maxErr float64
		for i, pr := range pairs {
			exact, err := e.PairByIndex(context.Background(), p, pr.a, pr.c)
			if err != nil {
				return AblationMonteCarloResult{}, err
			}
			mc, err := e.PairMonteCarlo(context.Background(), p, pr.a, pr.c, walks, int64(i+1))
			if err != nil {
				return AblationMonteCarloResult{}, err
			}
			d := math.Abs(mc.Score - exact)
			sum += d
			if d > maxErr {
				maxErr = d
			}
		}
		res.Rows = append(res.Rows, AblationMonteCarloRow{
			Walks: walks, MeanAbsErr: sum / float64(len(pairs)), MaxAbsErr: maxErr,
		})
	}
	return res, nil
}

// AblationNormalizationResult compares the ranking behaviour of normalized
// and raw HeteSim — the Fig. 5(c) vs 5(d) design choice at network scale.
type AblationNormalizationResult struct {
	Path string
	// SelfRankNormalized/Raw: the star author's rank in their own
	// same-typed relevance list under each variant (normalized must be 1
	// by Property 4; raw has no such guarantee).
	SelfRankNormalized int
	SelfRankRaw        int
	// RangeRaw is the largest raw score observed (raw scores are not
	// bounded by 1 per Property 4's absence).
	MaxNormalized float64
	MaxRaw        float64
}

// Render formats the comparison.
func (r AblationNormalizationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — cosine normalization on %s (Fig. 5c vs 5d at network scale)\n\n", r.Path)
	fmt.Fprintf(&b, "  %-22s %12s %12s\n", "", "normalized", "raw")
	fmt.Fprintf(&b, "  %-22s %12d %12d\n", "star's self rank", r.SelfRankNormalized, r.SelfRankRaw)
	fmt.Fprintf(&b, "  %-22s %12.4f %12.4f\n", "max score", r.MaxNormalized, r.MaxRaw)
	b.WriteString("\n  normalization restores identity of indiscernibles: self ranks first at score 1.\n")
	return b.String()
}

// AblationNormalization demonstrates why Definition 10 normalizes: without
// it, an object need not be most related to itself.
func (c *Context) AblationNormalization() (AblationNormalizationResult, error) {
	ds, err := c.ACM()
	if err != nil {
		return AblationNormalizationResult{}, err
	}
	g := ds.Graph
	const spec = "APVCVPA"
	p := mustPath(g, spec)
	counts, err := paperCounts(g)
	if err != nil {
		return AblationNormalizationResult{}, err
	}
	star, err := starAuthor(g, counts, "KDD")
	if err != nil {
		return AblationNormalizationResult{}, err
	}
	rankAndMax := func(e *core.Engine) (int, float64, error) {
		scores, err := e.SingleSourceByIndex(context.Background(), p, star)
		if err != nil {
			return 0, 0, err
		}
		rank := 1
		var max float64
		for i, s := range scores {
			if s > scores[star] || (s == scores[star] && i < star) {
				rank++
			}
			if s > max {
				max = s
			}
		}
		return rank, max, nil
	}
	normRank, normMax, err := rankAndMax(c.Engine("acm", g))
	if err != nil {
		return AblationNormalizationResult{}, err
	}
	rawRank, rawMax, err := rankAndMax(c.UnnormalizedEngine("acm", g))
	if err != nil {
		return AblationNormalizationResult{}, err
	}
	return AblationNormalizationResult{
		Path:               spec,
		SelfRankNormalized: normRank,
		SelfRankRaw:        rawRank,
		MaxNormalized:      normMax,
		MaxRaw:             rawMax,
	}, nil
}
