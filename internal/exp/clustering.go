package exp

import (
	"context"
	"fmt"
	"strings"

	"hetesim/internal/baseline"
	"hetesim/internal/cluster"
	"hetesim/internal/eval"
	"hetesim/internal/sparse"
)

// Table6Row is one clustering task's NMI under both measures.
type Table6Row struct {
	Task       string // "venue/conference", "author", "paper"
	Path       string
	Objects    int
	HeteSimNMI float64
	PathSimNMI float64
}

// Table6Result is the clustering study of Table 6: Normalized Cut on
// HeteSim and PathSim similarity matrices, scored with NMI against the
// planted areas, averaged over several runs.
type Table6Result struct {
	Runs int
	Rows []Table6Row
}

// Render formats the NMI table.
func (r Table6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 6 — clustering NMI on DBLP (Normalized Cut, k=4, averaged over %d runs)\n\n", r.Runs)
	fmt.Fprintf(&b, "  %-12s %-10s %8s %10s %10s\n", "task", "path", "objects", "HeteSim", "PathSim")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-12s %-10s %8d %10.4f %10.4f\n",
			row.Task, row.Path, row.Objects, row.HeteSimNMI, row.PathSimNMI)
	}
	return b.String()
}

// clusterTask clusters one similarity matrix repeatedly and returns the
// mean NMI against truth.
func clusterTask(sim *sparse.Matrix, truth []int, k, runs int, seed int64) (float64, error) {
	var total float64
	for r := 0; r < runs; r++ {
		assign, err := cluster.NormalizedCut(sim, k, seed+int64(r))
		if err != nil {
			return 0, err
		}
		nmi, err := eval.NMI(truth, assign)
		if err != nil {
			return 0, err
		}
		total += nmi
	}
	return total / float64(runs), nil
}

// Table6ClusteringNMI reproduces Table 6 on the synthetic DBLP network:
// clustering conferences (CPAPC), authors (APCPA) and papers (PAPCPAP)
// with Normalized Cut over HeteSim and PathSim similarity matrices.
func (c *Context) Table6ClusteringNMI() (Table6Result, error) {
	ds, err := c.DBLP()
	if err != nil {
		return Table6Result{}, err
	}
	g := ds.Graph
	e := c.Engine("dblp", g)
	ps := baseline.NewPathSim(g)
	k := len(ds.AreaNames)
	runs := c.cfg.ClusterRuns
	if runs <= 0 {
		runs = 1
	}

	type task struct {
		name string
		typ  string
		path string
		idx  []int
	}
	// Author subset: the most prolific labeled authors, capped for the
	// spectral step.
	authorIdx := ds.LabeledIndices("author")
	if maxN := c.cfg.ClusterAuthors; maxN > 0 && len(authorIdx) > maxN {
		w, err := g.Adjacency("writes")
		if err != nil {
			return Table6Result{}, err
		}
		counts := make([]float64, len(authorIdx))
		for i, a := range authorIdx {
			counts[i] = float64(w.RowNNZ(a))
		}
		keep := topIdx(counts, maxN)
		sub := make([]int, len(keep))
		for i, kk := range keep {
			sub[i] = authorIdx[kk]
		}
		authorIdx = sub
	}
	confIdx := ds.LabeledIndices("conference")
	paperIdx := ds.LabeledIndices("paper")
	tasks := []task{
		{"conference", "conference", "CPAPC", confIdx},
		{"author", "author", "APCPA", authorIdx},
		{"paper", "paper", "PAPCPAP", paperIdx},
	}

	var out Table6Result
	out.Runs = runs
	for _, t := range tasks {
		if len(t.idx) < k {
			return Table6Result{}, fmt.Errorf("exp: task %s has only %d labeled objects for k=%d", t.name, len(t.idx), k)
		}
		truth := make([]int, len(t.idx))
		for i, o := range t.idx {
			truth[i] = ds.AreaOf(t.typ, o)
		}
		p := mustPath(g, t.path)
		hsSim, err := e.PairsSubset(context.Background(), p, t.idx, t.idx)
		if err != nil {
			return Table6Result{}, err
		}
		hsNMI, err := clusterTask(hsSim, truth, k, runs, c.cfg.Seed)
		if err != nil {
			return Table6Result{}, err
		}
		psSim, err := ps.Subset(context.Background(), p, t.idx)
		if err != nil {
			return Table6Result{}, err
		}
		psNMI, err := clusterTask(psSim, truth, k, runs, c.cfg.Seed)
		if err != nil {
			return Table6Result{}, err
		}
		out.Rows = append(out.Rows, Table6Row{
			Task: t.name, Path: t.path, Objects: len(t.idx),
			HeteSimNMI: hsNMI, PathSimNMI: psNMI,
		})
	}
	return out, nil
}
