// Package exp implements the paper's experiment section: one driver per
// table and figure (Tables 1–7, Figures 6–7 of Section 5), each regenerating
// the same rows/series the paper reports, on the synthetic ACM and DBLP
// networks of package datagen. The drivers are shared by the
// cmd/experiments binary and the repository's benchmark harness.
package exp

import (
	"fmt"
	"sync"

	"hetesim/internal/core"
	"hetesim/internal/datagen"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/sparse"
)

// Config selects dataset scales for the experiment suite.
type Config struct {
	ACM  datagen.ACMConfig
	DBLP datagen.DBLPConfig
	// TopAuthors bounds the ground-truth author pool of the Fig. 6 rank
	// study (the paper uses 200).
	TopAuthors int
	// ClusterRuns is how many Normalized Cut runs Table 6 averages over
	// (the paper averages 100).
	ClusterRuns int
	// ClusterAuthors caps the labeled-author subset clustered in
	// Table 6, keeping the spectral step tractable.
	ClusterAuthors int
	Seed           int64
}

// DefaultConfig runs the suite at the paper's ACM scale and a
// proportionally reduced DBLP scale (see DESIGN.md §4).
func DefaultConfig() Config {
	return Config{
		ACM:            datagen.DefaultACMConfig(),
		DBLP:           datagen.DefaultDBLPConfig(),
		TopAuthors:     200,
		ClusterRuns:    20,
		ClusterAuthors: 600,
		Seed:           1,
	}
}

// SmallConfig runs the suite on reduced networks, for tests and smoke runs.
func SmallConfig() Config {
	return Config{
		ACM:            datagen.SmallACMConfig(),
		DBLP:           datagen.SmallDBLPConfig(),
		TopAuthors:     50,
		ClusterRuns:    3,
		ClusterAuthors: 120,
		Seed:           1,
	}
}

// Context lazily builds and caches the datasets, engines and baseline
// measures the experiment drivers share. It is safe for concurrent use.
type Context struct {
	cfg Config

	mu      sync.Mutex
	acm     *datagen.Dataset
	dblp    *datagen.Dataset
	engines map[string]*core.Engine // per dataset key
	unnorm  map[string]*core.Engine
}

// NewContext creates an experiment context.
func NewContext(cfg Config) *Context {
	return &Context{
		cfg:     cfg,
		engines: make(map[string]*core.Engine),
		unnorm:  make(map[string]*core.Engine),
	}
}

// Config returns the context configuration.
func (c *Context) Config() Config { return c.cfg }

// ACM returns the (lazily generated) ACM dataset.
func (c *Context) ACM() (*datagen.Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.acm == nil {
		ds, err := datagen.ACM(c.cfg.ACM)
		if err != nil {
			return nil, fmt.Errorf("exp: generating ACM: %w", err)
		}
		c.acm = ds
	}
	return c.acm, nil
}

// DBLP returns the (lazily generated) DBLP dataset.
func (c *Context) DBLP() (*datagen.Dataset, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dblp == nil {
		ds, err := datagen.DBLP(c.cfg.DBLP)
		if err != nil {
			return nil, fmt.Errorf("exp: generating DBLP: %w", err)
		}
		c.dblp = ds
	}
	return c.dblp, nil
}

// Engine returns a shared normalized HeteSim engine over the given graph,
// keyed by dataset name ("acm" or "dblp").
func (c *Context) Engine(key string, g *hin.Graph) *core.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.engines[key]; ok {
		return e
	}
	e := core.NewEngine(g)
	c.engines[key] = e
	return e
}

// UnnormalizedEngine returns a shared raw-meeting-probability engine.
func (c *Context) UnnormalizedEngine(key string, g *hin.Graph) *core.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.unnorm[key]; ok {
		return e
	}
	e := core.NewEngine(g, core.WithNormalization(false))
	c.unnorm[key] = e
	return e
}

// paperCounts returns the author×conference path-count matrix of the ACM
// network (how many papers each author published in each conference) — the
// ground truth of the Fig. 6 rank study and the persona-selection helper of
// the case-study tables.
func paperCounts(g *hin.Graph) (*sparse.Matrix, error) {
	writes, err := g.Adjacency("writes")
	if err != nil {
		return nil, err
	}
	pub, err := g.Adjacency("published_in")
	if err != nil {
		return nil, err
	}
	part, err := g.Adjacency("part_of")
	if err != nil {
		return nil, err
	}
	return writes.Mul(pub).Mul(part), nil
}

// starAuthor returns the persona playing the paper's case-study expert for
// a conference (e.g. the "C. Faloutsos" role for KDD): the author with the
// most papers in that conference among authors for whom it is also their
// top conference. Without the dominance condition the pick can be a broad
// giant whose own profile is led by a different venue, which would not
// match the paper's star (32 of Faloutsos's papers are in KDD, far ahead
// of his other venues). Falls back to the plain per-conference maximum
// when no author is dominated by the conference.
func starAuthor(g *hin.Graph, counts *sparse.Matrix, conference string) (int, error) {
	c, err := g.NodeIndex("conference", conference)
	if err != nil {
		return 0, err
	}
	best, bestCount := -1, -1.0
	fallback, fallbackCount := -1, -1.0
	for a := 0; a < counts.Rows(); a++ {
		v := counts.At(a, c)
		if v > fallbackCount {
			fallback, fallbackCount = a, v
		}
		if v <= bestCount {
			continue
		}
		dominant := true
		counts.Row(a).Entries(func(j int, w float64) {
			if j != c && w > v {
				dominant = false
			}
		})
		if dominant {
			best, bestCount = a, v
		}
	}
	if best >= 0 {
		return best, nil
	}
	if fallback >= 0 {
		return fallback, nil
	}
	return 0, fmt.Errorf("exp: no authors in %s", conference)
}

// rankedAuthorOf returns the author at the given 1-based publication-count
// rank for a conference (rank 1 = the star author).
func rankedAuthorOf(g *hin.Graph, counts *sparse.Matrix, conference string, rankPos int) (int, error) {
	c, err := g.NodeIndex("conference", conference)
	if err != nil {
		return 0, err
	}
	col := make([]float64, counts.Rows())
	for a := range col {
		col[a] = counts.At(a, c)
	}
	idx := topIdx(col, rankPos)
	if len(idx) < rankPos {
		return 0, fmt.Errorf("exp: conference %s has fewer than %d authors", conference, rankPos)
	}
	return idx[rankPos-1], nil
}

// topIdx returns the indices of the k largest values, descending, ties by
// ascending index.
func topIdx(vals []float64, k int) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k && i < len(idx); i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if vals[idx[j]] > vals[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// mustPath parses a path spec against a graph's schema, panicking on
// failure: experiment paths are static and a parse failure is a bug.
func mustPath(g *hin.Graph, spec string) *metapath.Path {
	return metapath.MustParse(g.Schema(), spec)
}

// columnOf extracts column j of a matrix as a dense vector.
func columnOf(m *sparse.Matrix, j int) []float64 {
	col := make([]float64, m.Rows())
	for i := range col {
		col[i] = m.At(i, j)
	}
	return col
}
