package exp

import (
	"strings"
	"testing"
)

// ctx is shared across tests; experiments are read-only over the cached
// datasets.
func testCtx(t *testing.T) *Context {
	t.Helper()
	return NewContext(SmallConfig())
}

func TestTable1StarAuthorProfile(t *testing.T) {
	c := testCtx(t)
	res, err := c.Table1AuthorProfile()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lists) != 4 {
		t.Fatalf("lists = %d, want 4", len(res.Lists))
	}
	// The star author is defined as the top KDD publisher: KDD must lead
	// their APVC conference profile (the paper's headline observation).
	conf := res.Lists[0]
	if conf.Path != "APVC" || len(conf.Items) == 0 {
		t.Fatalf("first list = %+v", conf)
	}
	if conf.Items[0].ID != "KDD" {
		t.Errorf("top conference = %s, want KDD", conf.Items[0].ID)
	}
	// APA profile: self-relatedness 1 puts the author first in their own
	// co-author list (Property 4).
	apa := res.Lists[3]
	if apa.Items[0].ID != res.Object {
		t.Errorf("APA top = %s, want self %s", apa.Items[0].ID, res.Object)
	}
	if apa.Items[0].Score < 0.999 {
		t.Errorf("self score = %v, want 1", apa.Items[0].Score)
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "APVC", "APT", "APS", "APA"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

func TestTable2ConferenceProfile(t *testing.T) {
	c := testCtx(t)
	res, err := c.Table2ConferenceProfile()
	if err != nil {
		t.Fatal(err)
	}
	if res.Object != "KDD" || len(res.Lists) != 4 {
		t.Fatalf("result = %+v", res)
	}
	// CVPAPVC similar-conference list: KDD is most similar to itself.
	simConf := res.Lists[3]
	if simConf.Items[0].ID != "KDD" || simConf.Items[0].Score < 0.999 {
		t.Errorf("CVPAPVC top = %+v, want KDD at 1", simConf.Items[0])
	}
	// Affiliation and subject lists must be non-empty with scores in
	// (0, 1].
	for _, l := range res.Lists {
		if len(l.Items) == 0 {
			t.Errorf("list %s empty", l.Path)
		}
		for _, it := range l.Items {
			if it.Score <= 0 || it.Score > 1+1e-9 {
				t.Errorf("%s: score %v outside (0,1]", l.Path, it.Score)
			}
		}
	}
}

func TestTable3SymmetryStudy(t *testing.T) {
	c := testCtx(t)
	res, err := c.Table3SymmetryStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(res.Pairs))
	}
	var sawAsym bool
	for _, p := range res.Pairs {
		if p.HeteSim <= 0 || p.HeteSim > 1+1e-9 {
			t.Errorf("%s/%s HeteSim = %v", p.Author, p.Conference, p.HeteSim)
		}
		if p.PCRWAPVC != p.PCRWCVPA {
			sawAsym = true
		}
	}
	if !sawAsym {
		t.Error("PCRW was symmetric on every pair; expected direction dependence")
	}
	// Top authors should out-score the rising authors of the same
	// conference under HeteSim (the table's relative-importance reading).
	bySigir := map[string]float64{}
	for _, p := range res.Pairs {
		if p.Conference == "SIGIR" {
			bySigir[p.Role] = p.HeteSim
		}
	}
	if bySigir["top"] <= bySigir["rising"] {
		t.Errorf("top SIGIR author (%v) should outrank rising (%v)", bySigir["top"], bySigir["rising"])
	}
	if !strings.Contains(res.Render(), "PCRW") {
		t.Error("Render missing PCRW column")
	}
}

func TestTable4RelatedAuthors(t *testing.T) {
	c := testCtx(t)
	res, err := c.Table4RelatedAuthors()
	if err != nil {
		t.Fatal(err)
	}
	// HeteSim and PathSim rank the star author first (self-maximum);
	// this is the property PCRW lacks.
	if res.HeteSim[0].ID != res.Author {
		t.Errorf("HeteSim top = %s, want self %s", res.HeteSim[0].ID, res.Author)
	}
	if res.PathSim[0].ID != res.Author {
		t.Errorf("PathSim top = %s, want self %s", res.PathSim[0].ID, res.Author)
	}
	if res.SelfRankPCRW < 1 {
		t.Errorf("PCRW self rank = %d", res.SelfRankPCRW)
	}
	if len(res.HeteSim) != 10 || len(res.PathSim) != 10 || len(res.PCRW) != 10 {
		t.Errorf("list lengths = %d/%d/%d, want 10", len(res.HeteSim), len(res.PathSim), len(res.PCRW))
	}
	// HeteSim scores are non-increasing.
	for i := 1; i < len(res.HeteSim); i++ {
		if res.HeteSim[i].Score > res.HeteSim[i-1].Score+1e-12 {
			t.Error("HeteSim list not sorted")
		}
	}
	if !strings.Contains(res.Render(), "APVCVPA") {
		t.Error("Render missing path")
	}
}

func TestTable5QueryAUC(t *testing.T) {
	c := testCtx(t)
	res, err := c.Table5QueryAUC()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	wins := 0
	var hMean, pMean float64
	for _, r := range res.Rows {
		if r.HeteSimAUC < 0.5 {
			t.Errorf("%s HeteSim AUC = %v, worse than random", r.Conference, r.HeteSimAUC)
		}
		if r.HeteSimAUC >= r.PCRWAUC {
			wins++
		}
		hMean += r.HeteSimAUC
		pMean += r.PCRWAUC
	}
	// Paper shape: HeteSim edges out PCRW by small margins (the paper's
	// own gaps are in the third decimal, e.g. 0.8111 vs 0.8030). Demand
	// a majority of per-conference wins and a higher mean; individual
	// conferences may flip under synthetic-data noise.
	if wins < (len(res.Rows)+1)/2 {
		t.Errorf("HeteSim won only %d of %d conferences", wins, len(res.Rows))
	}
	if hMean < pMean {
		t.Errorf("mean HeteSim AUC %v below mean PCRW AUC %v", hMean/9, pMean/9)
	}
}

func TestTable6ClusteringNMI(t *testing.T) {
	c := testCtx(t)
	res, err := c.Table6ClusteringNMI()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.HeteSimNMI < 0 || r.HeteSimNMI > 1 || r.PathSimNMI < 0 || r.PathSimNMI > 1 {
			t.Errorf("%s NMI out of range: %v / %v", r.Task, r.HeteSimNMI, r.PathSimNMI)
		}
	}
	// Paper shape: conference and author clustering score high, paper
	// clustering markedly lower (its relevance path is weak).
	byTask := map[string]Table6Row{}
	for _, r := range res.Rows {
		byTask[r.Task] = r
	}
	if byTask["conference"].HeteSimNMI < 0.5 {
		t.Errorf("conference NMI = %v, want high", byTask["conference"].HeteSimNMI)
	}
	if byTask["author"].HeteSimNMI < 0.5 {
		t.Errorf("author NMI = %v, want high", byTask["author"].HeteSimNMI)
	}
	if byTask["paper"].HeteSimNMI >= byTask["author"].HeteSimNMI {
		t.Errorf("paper NMI (%v) should fall below author NMI (%v)",
			byTask["paper"].HeteSimNMI, byTask["author"].HeteSimNMI)
	}
}

func TestTable7PathSemantics(t *testing.T) {
	c := testCtx(t)
	res, err := c.Table7PathSemantics()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CVPA) != 10 || len(res.CVPAPA) != 10 {
		t.Fatalf("lists = %d/%d, want 10/10", len(res.CVPA), len(res.CVPAPA))
	}
	// The two paths must produce different rankings — that is the
	// semantics the table demonstrates.
	same := true
	for i := range res.CVPA {
		if res.CVPA[i].ID != res.CVPAPA[i].ID {
			same = false
			break
		}
	}
	if same {
		t.Error("CVPA and CVPAPA rankings identical; path semantics lost")
	}
}

func TestFig6RankDifference(t *testing.T) {
	c := testCtx(t)
	res, err := c.Fig6RankDifference()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d, want 14", len(res.Rows))
	}
	wins := 0
	for _, r := range res.Rows {
		if r.HeteSimDiff < 0 || r.PCRWDiff < 0 {
			t.Errorf("%s negative rank diff", r.Conference)
		}
		if r.HeteSimDiff <= r.PCRWDiff {
			wins++
		}
	}
	// Paper shape: HeteSim tracks the ground truth at least as well as
	// PCRW on the clear majority of conferences.
	if wins < 8 {
		t.Errorf("HeteSim at or below PCRW on only %d of 14 conferences", wins)
	}
}

func TestFig7ReachableDistribution(t *testing.T) {
	c := testCtx(t)
	res, err := c.Fig7ReachableDistribution()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Conferences) != 14 {
		t.Fatalf("conferences = %d, want 14", len(res.Conferences))
	}
	if len(res.Series) == 0 {
		t.Fatal("no series")
	}
	for _, s := range res.Series {
		var sum float64
		for _, p := range s.Probs {
			if p < 0 {
				t.Errorf("%s negative probability", s.Author)
			}
			sum += p
		}
		if sum < 0.99 || sum > 1.01 {
			t.Errorf("%s distribution sums to %v", s.Author, sum)
		}
	}
}

func TestFig5WorkedExample(t *testing.T) {
	c := testCtx(t)
	res, err := c.Fig5WorkedExample()
	if err != nil {
		t.Fatal(err)
	}
	// Exact Fig. 5(c) values for a2: (0, 1/6, 1/3, 1/6).
	a2 := res.Unnormalized[1]
	want := []float64{0, 1.0 / 6, 1.0 / 3, 1.0 / 6}
	for j, w := range want {
		if diff := a2[j] - w; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("unnormalized a2[%d] = %v, want %v", j, a2[j], w)
		}
	}
	if res.Example2 != 0.5 {
		t.Errorf("Example 2 = %v, want 0.5", res.Example2)
	}
	out := res.Render()
	for _, s := range []string{"Fig. 5", "before normalization", "after normalization", "0.50"} {
		if !strings.Contains(out, s) {
			t.Errorf("Render missing %q", s)
		}
	}
}

func TestAblationPruning(t *testing.T) {
	c := testCtx(t)
	res, err := c.AblationPruning()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// eps=0 must be exact; error grows (weakly) with eps; nnz shrinks.
	if res.Rows[0].MaxAbsErr != 0 {
		t.Errorf("eps=0 error = %v", res.Rows[0].MaxAbsErr)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.MaxAbsErr < first.MaxAbsErr {
		t.Error("error should not shrink as eps grows")
	}
	if last.LeftNNZ > first.ExactLeftNNZ {
		t.Error("pruned chain larger than exact")
	}
	if !strings.Contains(res.Render(), "Spearman") {
		t.Error("Render missing Spearman column")
	}
}

func TestAblationMonteCarlo(t *testing.T) {
	c := testCtx(t)
	res, err := c.AblationMonteCarlo()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Pairs != 14 {
		t.Fatalf("result = %+v", res)
	}
	// Error shrinks with the sample budget (allow small noise slack).
	if res.Rows[2].MeanAbsErr > res.Rows[0].MeanAbsErr+0.01 {
		t.Errorf("100k-walk error %v not below 1k-walk error %v",
			res.Rows[2].MeanAbsErr, res.Rows[0].MeanAbsErr)
	}
	if res.Rows[2].MeanAbsErr > 0.05 {
		t.Errorf("100k-walk mean error = %v, want small", res.Rows[2].MeanAbsErr)
	}
}

func TestAblationNormalization(t *testing.T) {
	c := testCtx(t)
	res, err := c.AblationNormalization()
	if err != nil {
		t.Fatal(err)
	}
	// Property 4: normalized self rank is 1 at score 1.
	if res.SelfRankNormalized != 1 {
		t.Errorf("normalized self rank = %d, want 1", res.SelfRankNormalized)
	}
	if res.MaxNormalized > 1+1e-9 {
		t.Errorf("normalized max = %v, want <= 1", res.MaxNormalized)
	}
	if !strings.Contains(res.Render(), "self rank") {
		t.Error("Render missing self rank row")
	}
}

func TestDatasetStats(t *testing.T) {
	c := testCtx(t)
	res, err := c.DatasetStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sections) != 2 {
		t.Fatalf("sections = %d", len(res.Sections))
	}
	out := res.Render()
	for _, want := range []string{"ACM-style", "DBLP-style", "author", "writes", "areas:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
}

func TestRobustness(t *testing.T) {
	c := testCtx(t)
	res, err := c.Robustness()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 || len(res.Fig6Wins) != 3 ||
		len(res.Table5MeanDelta) != 3 || len(res.Table6PaperGap) != 3 {
		t.Fatalf("result = %+v", res)
	}
	// The qualitative claims should hold on the clear majority of seeds
	// even at test scale.
	winSum := 0
	for _, w := range res.Fig6Wins {
		winSum += w
	}
	if winSum < 21 { // averaging at least half the conferences per seed
		t.Errorf("Fig6 wins across seeds = %d of 42", winSum)
	}
	var gapSum float64
	for _, g := range res.Table6PaperGap {
		gapSum += g
	}
	if gapSum <= 0 {
		t.Errorf("paper-clustering gap sum = %v, want positive", gapSum)
	}
	if !strings.Contains(res.Render(), "means:") {
		t.Error("Render missing summary line")
	}
}

func TestRunDispatchAndRegistry(t *testing.T) {
	c := testCtx(t)
	if _, err := Run(c, "nope"); err == nil {
		t.Error("unknown id accepted")
	}
	ids := IDs()
	if len(ids) != 15 {
		t.Fatalf("registry size = %d, want 15", len(ids))
	}
	sorted := SortedIDs()
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatal("SortedIDs not sorted")
		}
	}
	// Dispatch one cheap experiment end to end.
	r, err := Run(c, "table7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Render(), "Table 7") {
		t.Error("dispatched render wrong")
	}
}
