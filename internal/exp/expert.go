package exp

import (
	"context"
	"fmt"
	"strings"

	"hetesim/internal/baseline"
	"hetesim/internal/eval"
)

// Table3Pair is one row of Table 3: an author–conference pair scored by
// HeteSim (identical on APVC and CVPA by symmetry) and by PCRW in both
// directions (which disagree — the asymmetry the table demonstrates).
type Table3Pair struct {
	Author     string
	Conference string
	Role       string // persona played in the paper's table
	HeteSim    float64
	PCRWAPVC   float64 // author → conference
	PCRWCVPA   float64 // conference → author
}

// Table3Result is the relative-importance study of Table 3.
type Table3Result struct {
	Pairs []Table3Pair
}

// Render formats the study as the paper's table layout.
func (r Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3 — author/conference relatedness: HeteSim (symmetric) vs PCRW (asymmetric)\n\n")
	fmt.Fprintf(&b, "  %-28s %-10s %-9s %-10s %-10s\n", "pair", "role", "HeteSim", "PCRW A→C", "PCRW C→A")
	for _, p := range r.Pairs {
		fmt.Fprintf(&b, "  %-28s %-10s %-9.4f %-10.4f %-10.4f\n",
			p.Author+" / "+p.Conference, p.Role, p.HeteSim, p.PCRWAPVC, p.PCRWCVPA)
	}
	return b.String()
}

// Table3SymmetryStudy reproduces Table 3: the top author of each of four
// conferences across research areas (the personas of C. Faloutsos / KDD,
// W. B. Croft / SIGIR, J. F. Naughton / SIGMOD, A. Gupta / SODA) plus two
// "rising" authors (the Luo Si / SIGIR and Yan Chen / SIGCOMM roles),
// scored by HeteSim and PCRW along APVC / CVPA.
func (c *Context) Table3SymmetryStudy() (Table3Result, error) {
	ds, err := c.ACM()
	if err != nil {
		return Table3Result{}, err
	}
	g := ds.Graph
	counts, err := paperCounts(g)
	if err != nil {
		return Table3Result{}, err
	}
	type sel struct {
		conf string
		rank int
		role string
	}
	sels := []sel{
		{"KDD", 1, "top"},
		{"SIGIR", 1, "top"},
		{"SIGMOD", 1, "top"},
		{"SODA", 1, "top"},
		{"SIGIR", 12, "rising"},
		{"SIGCOMM", 12, "rising"},
	}
	e := c.Engine("acm", g)
	pcrw := baseline.NewPCRWFromEngine(e)
	apvc := mustPath(g, "APVC")
	cvpa := apvc.Reverse()
	var out Table3Result
	for _, s := range sels {
		a, err := rankedAuthorOf(g, counts, s.conf, s.rank)
		if err != nil {
			return Table3Result{}, err
		}
		aid, err := g.NodeID("author", a)
		if err != nil {
			return Table3Result{}, err
		}
		hs, err := e.Pair(context.Background(), apvc, aid, s.conf)
		if err != nil {
			return Table3Result{}, err
		}
		// Sanity of Property 3: the reverse-path score must agree.
		hs2, err := e.Pair(context.Background(), cvpa, s.conf, aid)
		if err != nil {
			return Table3Result{}, err
		}
		if diff := hs - hs2; diff > 1e-9 || diff < -1e-9 {
			return Table3Result{}, fmt.Errorf("exp: HeteSim symmetry violated on %s/%s", aid, s.conf)
		}
		fw, err := pcrw.Pair(context.Background(), apvc, aid, s.conf)
		if err != nil {
			return Table3Result{}, err
		}
		bw, err := pcrw.Pair(context.Background(), cvpa, s.conf, aid)
		if err != nil {
			return Table3Result{}, err
		}
		out.Pairs = append(out.Pairs, Table3Pair{
			Author: aid, Conference: s.conf, Role: s.role,
			HeteSim: hs, PCRWAPVC: fw, PCRWCVPA: bw,
		})
	}
	return out, nil
}

// Fig6Row is one bar pair of Fig. 6: the average rank difference from the
// publication-count ground truth on one conference.
type Fig6Row struct {
	Conference  string
	HeteSimDiff float64
	PCRWDiff    float64
}

// Fig6Result is the expert-finding rank study of Fig. 6 (lower is better).
type Fig6Result struct {
	TopAuthors int
	Rows       []Fig6Row
}

// Render formats the study as the figure's per-conference series.
func (r Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6 — average rank difference vs publication-count ground truth (top %d authors; lower is better)\n\n", r.TopAuthors)
	fmt.Fprintf(&b, "  %-10s %10s %10s\n", "conference", "HeteSim", "PCRW")
	var hWins int
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %10.2f %10.2f\n", row.Conference, row.HeteSimDiff, row.PCRWDiff)
		if row.HeteSimDiff <= row.PCRWDiff {
			hWins++
		}
	}
	fmt.Fprintf(&b, "\n  HeteSim at or below PCRW on %d of %d conferences\n", hWins, len(r.Rows))
	return b.String()
}

// Fig6RankDifference reproduces Fig. 6: for each of the 14 ACM conferences,
// rank authors by publication count (ground truth), by HeteSim and by PCRW
// (averaging PCRW's two direction-dependent rankings, as the paper does),
// and report the average rank difference over the ground-truth top authors.
func (c *Context) Fig6RankDifference() (Fig6Result, error) {
	ds, err := c.ACM()
	if err != nil {
		return Fig6Result{}, err
	}
	g := ds.Graph
	counts, err := paperCounts(g)
	if err != nil {
		return Fig6Result{}, err
	}
	e := c.Engine("acm", g)
	pcrw := baseline.NewPCRWFromEngine(e)
	cvpa := mustPath(g, "CVPA")
	apvc := mustPath(g, "APVC")
	// PCRW author→conference scores for every author at once.
	pmAC, err := pcrw.AllPairs(context.Background(), apvc)
	if err != nil {
		return Fig6Result{}, err
	}
	top := c.cfg.TopAuthors
	res := Fig6Result{TopAuthors: top}
	for ci, conf := range g.NodeIDs("conference") {
		truth := columnOf(counts, ci)
		hs, err := e.SingleSource(context.Background(), cvpa, conf)
		if err != nil {
			return Fig6Result{}, err
		}
		hsDiff, err := eval.AverageRankDifference(truth, hs, top)
		if err != nil {
			return Fig6Result{}, err
		}
		// PCRW: average the rank differences of its two orderings.
		fwd, err := pcrw.SingleSource(context.Background(), cvpa, conf)
		if err != nil {
			return Fig6Result{}, err
		}
		fwdDiff, err := eval.AverageRankDifference(truth, fwd, top)
		if err != nil {
			return Fig6Result{}, err
		}
		bwdDiff, err := eval.AverageRankDifference(truth, columnOf(pmAC, ci), top)
		if err != nil {
			return Fig6Result{}, err
		}
		res.Rows = append(res.Rows, Fig6Row{
			Conference:  conf,
			HeteSimDiff: hsDiff,
			PCRWDiff:    (fwdDiff + bwdDiff) / 2,
		})
	}
	return res, nil
}
