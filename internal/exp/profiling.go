package exp

import (
	"context"
	"fmt"
	"strings"

	"hetesim/internal/rank"
)

// RankedList is one column of a case-study table: a relevance path and the
// top objects it surfaces.
type RankedList struct {
	Path  string
	Title string
	Items []rank.Item
}

// ProfileResult is an automatic object profiling outcome (Tables 1 and 2):
// the profiled object and one ranked list per relevance path.
type ProfileResult struct {
	Table  string
	Object string
	Lists  []RankedList
}

// Render formats the profile as the paper's table layout.
func (r ProfileResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — automatic object profiling of %q\n", r.Table, r.Object)
	for _, l := range r.Lists {
		fmt.Fprintf(&b, "\n  path %s (%s):\n", l.Path, l.Title)
		for _, line := range strings.Split(strings.TrimRight(rank.Format(l.Items), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}

// profileLists runs single-source HeteSim along each (path, title, target
// type) triple and keeps the top k objects.
func (c *Context) profileLists(key string, srcType, srcID string, specs [][3]string, k int) ([]RankedList, error) {
	ds, err := c.ACM()
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	e := c.Engine(key, g)
	var lists []RankedList
	for _, spec := range specs {
		p := mustPath(g, spec[0])
		if p.Source() != srcType {
			return nil, fmt.Errorf("exp: path %s does not start at %s", spec[0], srcType)
		}
		scores, err := e.SingleSource(context.Background(), p, srcID)
		if err != nil {
			return nil, err
		}
		items, err := rank.List(scores, g.NodeIDs(p.Target()), k)
		if err != nil {
			return nil, err
		}
		lists = append(lists, RankedList{Path: spec[0], Title: spec[1], Items: items})
	}
	return lists, nil
}

// Table1AuthorProfile reproduces Table 1: profiling the star data-mining
// author (the "Christos Faloutsos" persona — the author with the most KDD
// papers) along APVC (conferences), APT (terms), APS (subjects) and APA
// (co-authors).
func (c *Context) Table1AuthorProfile() (ProfileResult, error) {
	ds, err := c.ACM()
	if err != nil {
		return ProfileResult{}, err
	}
	g := ds.Graph
	counts, err := paperCounts(g)
	if err != nil {
		return ProfileResult{}, err
	}
	star, err := starAuthor(g, counts, "KDD")
	if err != nil {
		return ProfileResult{}, err
	}
	starID, err := g.NodeID("author", star)
	if err != nil {
		return ProfileResult{}, err
	}
	specs := [][3]string{
		{"APVC", "conferences the author participates in"},
		{"APT", "research-interest terms"},
		{"APS", "subject areas"},
		{"APA", "closest co-authors"},
	}
	lists, err := c.profileLists("acm", "author", starID, specs, 5)
	if err != nil {
		return ProfileResult{}, err
	}
	return ProfileResult{Table: "Table 1", Object: starID, Lists: lists}, nil
}

// Table2ConferenceProfile reproduces Table 2: profiling the KDD conference
// along CVPA (active authors), CVPAF (research affiliations), CVPS (topic
// subjects) and CVPAPVC (similar conferences via shared authors).
func (c *Context) Table2ConferenceProfile() (ProfileResult, error) {
	specs := [][3]string{
		{"CVPA", "most active authors"},
		{"CVPAF", "most related affiliations"},
		{"CVPS", "conference topics"},
		{"CVPAPVC", "similar conferences (shared authors)"},
	}
	lists, err := c.profileLists("acm", "conference", "KDD", specs, 5)
	if err != nil {
		return ProfileResult{}, err
	}
	return ProfileResult{Table: "Table 2", Object: "KDD", Lists: lists}, nil
}
