package exp

import (
	"context"
	"fmt"
	"strings"

	"hetesim/internal/baseline"
	"hetesim/internal/eval"
)

// Table5Row is one conference's AUC under both measures.
type Table5Row struct {
	Conference string
	HeteSimAUC float64
	PCRWAUC    float64
}

// Table5Result is the relevance-query study of Table 5: ranking authors by
// their relatedness to a conference along CPA and scoring the ranking
// against the planted area labels with AUC.
type Table5Result struct {
	Rows []Table5Row
}

// Render formats the AUC table.
func (r Table5Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 5 — AUC of conference→author relevance queries (path CPA, DBLP)\n\n")
	fmt.Fprintf(&b, "  %-10s %10s %10s\n", "conference", "HeteSim", "PCRW")
	wins := 0
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-10s %10.4f %10.4f\n", row.Conference, row.HeteSimAUC, row.PCRWAUC)
		if row.HeteSimAUC >= row.PCRWAUC {
			wins++
		}
	}
	fmt.Fprintf(&b, "\n  HeteSim at or above PCRW on %d of %d conferences\n", wins, len(r.Rows))
	return b.String()
}

// table5Conferences are the nine representative conferences the paper
// evaluates (KDD, ICDM, SDM, SIGMOD, ICDE, VLDB, AAAI, IJCAI, SIGIR).
var table5Conferences = []string{
	"KDD", "ICDM", "SDM", "SIGMOD", "ICDE", "VLDB", "AAAI", "IJCAI", "SIGIR",
}

// Table5QueryAUC reproduces Table 5 on the synthetic DBLP network: for each
// representative conference, rank the labeled authors by HeteSim and PCRW
// along CPA and compute the AUC of recovering same-area authors.
func (c *Context) Table5QueryAUC() (Table5Result, error) {
	ds, err := c.DBLP()
	if err != nil {
		return Table5Result{}, err
	}
	g := ds.Graph
	e := c.Engine("dblp", g)
	pcrw := baseline.NewPCRWFromEngine(e)
	cpa := mustPath(g, "CPA")
	labeled := ds.LabeledIndices("author")
	if len(labeled) == 0 {
		return Table5Result{}, fmt.Errorf("exp: DBLP dataset has no labeled authors")
	}
	var out Table5Result
	for _, conf := range table5Conferences {
		ci, err := g.NodeIndex("conference", conf)
		if err != nil {
			return Table5Result{}, err
		}
		confArea := ds.AreaOf("conference", ci)
		hs, err := e.SingleSource(context.Background(), cpa, conf)
		if err != nil {
			return Table5Result{}, err
		}
		pc, err := pcrw.SingleSource(context.Background(), cpa, conf)
		if err != nil {
			return Table5Result{}, err
		}
		// Restrict to labeled authors; positives share the conference's
		// planted area.
		hsSub := make([]float64, len(labeled))
		pcSub := make([]float64, len(labeled))
		pos := make([]bool, len(labeled))
		for k, a := range labeled {
			hsSub[k] = hs[a]
			pcSub[k] = pc[a]
			pos[k] = ds.AreaOf("author", a) == confArea
		}
		hAUC, err := eval.AUC(hsSub, pos)
		if err != nil {
			return Table5Result{}, fmt.Errorf("exp: AUC for %s: %w", conf, err)
		}
		pAUC, err := eval.AUC(pcSub, pos)
		if err != nil {
			return Table5Result{}, fmt.Errorf("exp: AUC for %s: %w", conf, err)
		}
		out.Rows = append(out.Rows, Table5Row{Conference: conf, HeteSimAUC: hAUC, PCRWAUC: pAUC})
	}
	return out, nil
}
