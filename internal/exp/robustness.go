package exp

import (
	"fmt"
	"math"
	"strings"
)

// RobustnessResult aggregates the suite's headline comparative statistics
// across several generator seeds. On a synthetic substrate the paper's
// qualitative claims must hold across seeds, not just on one lucky draw;
// this driver is the check.
type RobustnessResult struct {
	Seeds []int64
	// Fig6Wins is, per seed, how many of the 14 conferences HeteSim
	// tracks the ground truth at least as well as PCRW.
	Fig6Wins []int
	// Table5MeanDelta is, per seed, mean(HeteSim AUC - PCRW AUC) over
	// the nine conferences.
	Table5MeanDelta []float64
	// Table6PaperGap is, per seed, HeteSim NMI - PathSim NMI on the
	// paper-clustering task (the paper's largest HeteSim margin).
	Table6PaperGap []float64
}

// Render formats the per-seed statistics with means.
func (r RobustnessResult) Render() string {
	var b strings.Builder
	b.WriteString("Robustness — headline comparisons across generator seeds\n\n")
	fmt.Fprintf(&b, "  %-6s %14s %18s %16s\n", "seed", "Fig6 wins/14", "Table5 mean ΔAUC", "Table6 paper Δ")
	for i, s := range r.Seeds {
		fmt.Fprintf(&b, "  %-6d %14d %18.4f %16.4f\n",
			s, r.Fig6Wins[i], r.Table5MeanDelta[i], r.Table6PaperGap[i])
	}
	mean := func(xs []float64) float64 {
		var t float64
		for _, x := range xs {
			t += x
		}
		return t / float64(len(xs))
	}
	wins := 0
	for _, w := range r.Fig6Wins {
		wins += w
	}
	fmt.Fprintf(&b, "\n  means: Fig6 %.1f/14, Table5 ΔAUC %+.4f, Table6 paper Δ %+.4f\n",
		float64(wins)/float64(len(r.Seeds)), mean(r.Table5MeanDelta), mean(r.Table6PaperGap))
	return b.String()
}

// Robustness reruns the Fig. 6, Table 5 and Table 6 comparisons across
// three seeds at the context's configured scale and reports the per-seed
// headline statistics.
func (c *Context) Robustness() (RobustnessResult, error) {
	res := RobustnessResult{Seeds: []int64{1, 2, 3}}
	for _, seed := range res.Seeds {
		cfg := c.cfg
		cfg.Seed = seed
		cfg.ACM.Seed = seed
		cfg.DBLP.Seed = seed
		// Table 6 is the expensive stage; a couple of runs suffice for a
		// robustness check.
		if cfg.ClusterRuns > 3 {
			cfg.ClusterRuns = 3
		}
		ctx := NewContext(cfg)

		fig6, err := ctx.Fig6RankDifference()
		if err != nil {
			return res, fmt.Errorf("exp: robustness seed %d: %w", seed, err)
		}
		wins := 0
		for _, row := range fig6.Rows {
			if row.HeteSimDiff <= row.PCRWDiff {
				wins++
			}
		}
		res.Fig6Wins = append(res.Fig6Wins, wins)

		t5, err := ctx.Table5QueryAUC()
		if err != nil {
			return res, fmt.Errorf("exp: robustness seed %d: %w", seed, err)
		}
		var delta float64
		for _, row := range t5.Rows {
			delta += row.HeteSimAUC - row.PCRWAUC
		}
		res.Table5MeanDelta = append(res.Table5MeanDelta, delta/float64(len(t5.Rows)))

		t6, err := ctx.Table6ClusteringNMI()
		if err != nil {
			return res, fmt.Errorf("exp: robustness seed %d: %w", seed, err)
		}
		gap := math.NaN()
		for _, row := range t6.Rows {
			if row.Task == "paper" {
				gap = row.HeteSimNMI - row.PathSimNMI
			}
		}
		res.Table6PaperGap = append(res.Table6PaperGap, gap)
	}
	return res, nil
}
