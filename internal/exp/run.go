package exp

import (
	"fmt"
	"sort"
)

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render() string
}

// Experiment is a registered experiment driver.
type Experiment struct {
	ID          string
	Description string
	Run         func(*Context) (Renderer, error)
}

// Registry lists every paper artifact the suite regenerates, in the order
// the paper presents them.
func Registry() []Experiment {
	return []Experiment{
		{"table1", "Table 1: automatic object profiling of the star author (ACM)",
			func(c *Context) (Renderer, error) { return wrap(c.Table1AuthorProfile()) }},
		{"table2", "Table 2: automatic object profiling of the KDD conference (ACM)",
			func(c *Context) (Renderer, error) { return wrap(c.Table2ConferenceProfile()) }},
		{"table3", "Table 3: HeteSim symmetry vs PCRW asymmetry on author-conference pairs (ACM)",
			func(c *Context) (Renderer, error) { return wrap(c.Table3SymmetryStudy()) }},
		{"table4", "Table 4: top related authors along APVCVPA, three measures (ACM)",
			func(c *Context) (Renderer, error) { return wrap(c.Table4RelatedAuthors()) }},
		{"table5", "Table 5: AUC of conference-author queries along CPA (DBLP)",
			func(c *Context) (Renderer, error) { return wrap(c.Table5QueryAUC()) }},
		{"table6", "Table 6: clustering NMI with Normalized Cut (DBLP)",
			func(c *Context) (Renderer, error) { return wrap(c.Table6ClusteringNMI()) }},
		{"table7", "Table 7: CVPA vs CVPAPA path semantics for KDD (ACM)",
			func(c *Context) (Renderer, error) { return wrap(c.Table7PathSemantics()) }},
		{"fig6", "Fig. 6: average rank difference vs publication counts, 14 conferences (ACM)",
			func(c *Context) (Renderer, error) { return wrap(c.Fig6RankDifference()) }},
		{"fig7", "Fig. 7: authors' reachable probability over conferences along APVC (ACM)",
			func(c *Context) (Renderer, error) { return wrap(c.Fig7ReachableDistribution()) }},
		{"fig5", "Fig. 5 + Example 2: worked toy examples, exact values",
			func(c *Context) (Renderer, error) { return wrap(c.Fig5WorkedExample()) }},
		{"abl-pruning", "Ablation: truncation threshold vs accuracy and chain size (§4.6)",
			func(c *Context) (Renderer, error) { return wrap(c.AblationPruning()) }},
		{"abl-montecarlo", "Ablation: Monte Carlo sample budget vs estimation error (§4.6)",
			func(c *Context) (Renderer, error) { return wrap(c.AblationMonteCarlo()) }},
		{"abl-normalization", "Ablation: cosine normalization vs raw meeting probability (Def. 10)",
			func(c *Context) (Renderer, error) { return wrap(c.AblationNormalization()) }},
		{"stats", "Dataset statistics of the generated networks (§5.1 substitution)",
			func(c *Context) (Renderer, error) { return wrap(c.DatasetStats()) }},
		{"robustness", "Headline comparisons re-run across generator seeds",
			func(c *Context) (Renderer, error) { return wrap(c.Robustness()) }},
	}
}

func wrap[T Renderer](r T, err error) (Renderer, error) { return r, err }

// Run executes one experiment by id.
func Run(c *Context, id string) (Renderer, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run(c)
		}
	}
	return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
}

// IDs returns the registered experiment ids in presentation order.
func IDs() []string {
	var ids []string
	for _, e := range Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// SortedIDs returns the experiment ids sorted lexicographically.
func SortedIDs() []string {
	ids := IDs()
	sort.Strings(ids)
	return ids
}
