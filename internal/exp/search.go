package exp

import (
	"context"
	"fmt"
	"strings"

	"hetesim/internal/baseline"
	"hetesim/internal/rank"
)

// Table4Result is the path-semantics relevance search of Table 4: the top
// authors related to the star author along APVCVPA under three measures.
type Table4Result struct {
	Author  string
	HeteSim []rank.Item
	PathSim []rank.Item
	PCRW    []rank.Item
	// SelfRankPCRW is the star author's position in their own PCRW
	// ranking — the paper's point is that it is often not 1.
	SelfRankPCRW int
}

// Render formats the three rankings side by side.
func (r Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — top related authors to %q along APVCVPA\n\n", r.Author)
	fmt.Fprintf(&b, "  %-4s %-22s %-22s %-22s\n", "rank", "HeteSim", "PathSim", "PCRW")
	for i := range r.HeteSim {
		cell := func(items []rank.Item) string {
			if i >= len(items) {
				return ""
			}
			return fmt.Sprintf("%s %.4f", items[i].ID, items[i].Score)
		}
		fmt.Fprintf(&b, "  %-4d %-22s %-22s %-22s\n", i+1, cell(r.HeteSim), cell(r.PathSim), cell(r.PCRW))
	}
	fmt.Fprintf(&b, "\n  star author's rank in its own PCRW list: %d (HeteSim and PathSim rank it 1st)\n", r.SelfRankPCRW)
	return b.String()
}

// Table4RelatedAuthors reproduces Table 4: the top-10 authors related to
// the star data-mining author via APVCVPA (authors publishing in the same
// conferences) under HeteSim, PathSim and PCRW.
func (c *Context) Table4RelatedAuthors() (Table4Result, error) {
	ds, err := c.ACM()
	if err != nil {
		return Table4Result{}, err
	}
	g := ds.Graph
	counts, err := paperCounts(g)
	if err != nil {
		return Table4Result{}, err
	}
	star, err := starAuthor(g, counts, "KDD")
	if err != nil {
		return Table4Result{}, err
	}
	starID, err := g.NodeID("author", star)
	if err != nil {
		return Table4Result{}, err
	}
	p := mustPath(g, "APVCVPA")
	ids := g.NodeIDs("author")
	const k = 10

	e := c.Engine("acm", g)
	hs, err := e.SingleSource(context.Background(), p, starID)
	if err != nil {
		return Table4Result{}, err
	}
	hsTop, err := rank.List(hs, ids, k)
	if err != nil {
		return Table4Result{}, err
	}

	ps := baseline.NewPathSim(g)
	pss, err := ps.SingleSource(context.Background(), p, starID)
	if err != nil {
		return Table4Result{}, err
	}
	psTop, err := rank.List(pss, ids, k)
	if err != nil {
		return Table4Result{}, err
	}

	pcrw := baseline.NewPCRWFromEngine(e)
	pcs, err := pcrw.SingleSource(context.Background(), p, starID)
	if err != nil {
		return Table4Result{}, err
	}
	pcTop, err := rank.List(pcs, ids, k)
	if err != nil {
		return Table4Result{}, err
	}
	selfRank := rank.Positions(pcs)[star]

	return Table4Result{
		Author:       starID,
		HeteSim:      hsTop,
		PathSim:      psTop,
		PCRW:         pcTop,
		SelfRankPCRW: selfRank,
	}, nil
}

// Table7Result contrasts the CVPA and CVPAPA rankings for one conference —
// the path-semantics study of Table 7.
type Table7Result struct {
	Conference string
	CVPA       []rank.Item // most active authors
	CVPAPA     []rank.Item // authors with the most active co-author groups
}

// Render formats the two rankings side by side.
func (r Table7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 7 — top authors related to %q under different relevance paths\n\n", r.Conference)
	fmt.Fprintf(&b, "  %-4s %-26s %-26s\n", "rank", "CVPA (active authors)", "CVPAPA (active co-author groups)")
	for i := range r.CVPA {
		left := fmt.Sprintf("%s %.4f", r.CVPA[i].ID, r.CVPA[i].Score)
		right := ""
		if i < len(r.CVPAPA) {
			right = fmt.Sprintf("%s %.4f", r.CVPAPA[i].ID, r.CVPAPA[i].Score)
		}
		fmt.Fprintf(&b, "  %-4d %-26s %-26s\n", i+1, left, right)
	}
	return b.String()
}

// Table7PathSemantics reproduces Table 7: the top-10 authors related to KDD
// via CVPA (publication record) versus CVPAPA (co-author group activity).
func (c *Context) Table7PathSemantics() (Table7Result, error) {
	ds, err := c.ACM()
	if err != nil {
		return Table7Result{}, err
	}
	g := ds.Graph
	e := c.Engine("acm", g)
	ids := g.NodeIDs("author")
	const k = 10
	var out Table7Result
	out.Conference = "KDD"
	for _, spec := range []string{"CVPA", "CVPAPA"} {
		scores, err := e.SingleSource(context.Background(), mustPath(g, spec), "KDD")
		if err != nil {
			return Table7Result{}, err
		}
		items, err := rank.List(scores, ids, k)
		if err != nil {
			return Table7Result{}, err
		}
		if spec == "CVPA" {
			out.CVPA = items
		} else {
			out.CVPAPA = items
		}
	}
	return out, nil
}

// Fig7Series is one author's reachable probability distribution over the 14
// conferences along APVC.
type Fig7Series struct {
	Author string
	Probs  []float64
}

// Fig7Result is the distribution study of Fig. 7, explaining Table 4's
// HeteSim ranking: authors whose conference distributions are closest to
// the star author's are the most related under APVCVPA.
type Fig7Result struct {
	Conferences []string
	Series      []Fig7Series
}

// Render formats the distributions as aligned rows.
func (r Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 7 — authors' paper probability distribution over conferences (path APVC)\n\n")
	fmt.Fprintf(&b, "  %-14s", "author")
	for _, c := range r.Conferences {
		fmt.Fprintf(&b, " %8s", c)
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-14s", s.Author)
		for _, p := range s.Probs {
			fmt.Fprintf(&b, " %8.3f", p)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7ReachableDistribution reproduces Fig. 7: the PCRW (reachable
// probability) distribution over conferences for the star author and the
// next-most-related authors from Table 4's HeteSim ranking.
func (c *Context) Fig7ReachableDistribution() (Fig7Result, error) {
	t4, err := c.Table4RelatedAuthors()
	if err != nil {
		return Fig7Result{}, err
	}
	ds, err := c.ACM()
	if err != nil {
		return Fig7Result{}, err
	}
	g := ds.Graph
	e := c.Engine("acm", g)
	pcrw := baseline.NewPCRWFromEngine(e)
	p := mustPath(g, "APVC")
	res := Fig7Result{Conferences: g.NodeIDs("conference")}
	n := 5
	if n > len(t4.HeteSim) {
		n = len(t4.HeteSim)
	}
	for _, it := range t4.HeteSim[:n] {
		probs, err := pcrw.SingleSource(context.Background(), p, it.ID)
		if err != nil {
			return Fig7Result{}, err
		}
		res.Series = append(res.Series, Fig7Series{Author: it.ID, Probs: probs})
	}
	return res, nil
}
