package exp

import (
	"fmt"
	"sort"
	"strings"

	"hetesim/internal/datagen"
)

// DatasetStatsResult summarizes the generated datasets the way Section 5.1
// of the paper describes its ACM and DBLP crawls — the checkable side of
// the dataset substitution in DESIGN.md §4.
type DatasetStatsResult struct {
	Sections []DatasetSection
}

// DatasetSection is one dataset's summary.
type DatasetSection struct {
	Name      string
	NodeRows  [][2]string // type, count
	EdgeRows  [][2]string // relation, count
	AreaNames []string
}

// Render formats the summaries.
func (r DatasetStatsResult) Render() string {
	var b strings.Builder
	b.WriteString("Dataset statistics (Section 5.1 substitution; see DESIGN.md §4)\n")
	for _, s := range r.Sections {
		fmt.Fprintf(&b, "\n  == %s\n", s.Name)
		for _, row := range s.NodeRows {
			fmt.Fprintf(&b, "    %-14s %8s nodes\n", row[0], row[1])
		}
		for _, row := range s.EdgeRows {
			fmt.Fprintf(&b, "    %-14s %8s edges\n", row[0], row[1])
		}
		fmt.Fprintf(&b, "    areas: %s\n", strings.Join(s.AreaNames, ", "))
	}
	return b.String()
}

// DatasetStats generates (or reuses) both networks and reports their sizes.
func (c *Context) DatasetStats() (DatasetStatsResult, error) {
	var res DatasetStatsResult
	add := func(name string, ds *datagen.Dataset) {
		g := ds.Graph
		sec := DatasetSection{Name: name, AreaNames: ds.AreaNames}
		var types []string
		for _, t := range g.Schema().Types() {
			types = append(types, t.Name)
		}
		sort.Strings(types)
		for _, t := range types {
			sec.NodeRows = append(sec.NodeRows, [2]string{t, fmt.Sprint(g.NodeCount(t))})
		}
		var rels []string
		for _, r := range g.Schema().Relations() {
			rels = append(rels, r.Name)
		}
		sort.Strings(rels)
		for _, r := range rels {
			adj, err := g.Adjacency(r)
			if err != nil {
				continue
			}
			sec.EdgeRows = append(sec.EdgeRows, [2]string{r, fmt.Sprint(adj.NNZ())})
		}
		res.Sections = append(res.Sections, sec)
	}
	acm, err := c.ACM()
	if err != nil {
		return res, err
	}
	add("ACM-style network", acm)
	dblp, err := c.DBLP()
	if err != nil {
		return res, err
	}
	add("DBLP-style network", dblp)
	return res, nil
}
