package exp

import (
	"context"
	"fmt"
	"strings"

	"hetesim/internal/core"
	"hetesim/internal/hin"
)

// Fig5Result is the worked atomic-relation example of Fig. 5 in the paper:
// HeteSim values on the toy bipartite A–B graph before (Fig. 5c) and after
// (Fig. 5d) normalization, plus the Example 2 value on the Fig. 4 network.
type Fig5Result struct {
	ARows        []string
	BCols        []string
	Unnormalized [][]float64
	Normalized   [][]float64
	Example2     float64 // unnormalized HeteSim(Tom, KDD | APC)
}

// Render formats the two matrices as the figure does.
func (r Fig5Result) Render() string {
	var b strings.Builder
	b.WriteString("Fig. 5 — HeteSim on the decomposed atomic relation AB (toy graph)\n")
	mat := func(title string, m [][]float64) {
		fmt.Fprintf(&b, "\n  %s\n       ", title)
		for _, c := range r.BCols {
			fmt.Fprintf(&b, " %6s", c)
		}
		b.WriteByte('\n')
		for i, row := range m {
			fmt.Fprintf(&b, "    %s ", r.ARows[i])
			for _, v := range row {
				fmt.Fprintf(&b, " %6.2f", v)
			}
			b.WriteByte('\n')
		}
	}
	mat("before normalization (Fig. 5c)", r.Unnormalized)
	mat("after normalization (Fig. 5d)", r.Normalized)
	fmt.Fprintf(&b, "\n  Example 2: unnormalized HeteSim(Tom, KDD | APC) = %.2f\n", r.Example2)
	return b.String()
}

// Fig5WorkedExample reproduces the paper's worked micro-examples exactly:
// the Fig. 5 bipartite graph (a2 connects b2, b3, b4; b3 connects only a2)
// under the Definition 6/7 edge-object decomposition, and Example 2 on the
// Fig. 4 network.
func (c *Context) Fig5WorkedExample() (Fig5Result, error) {
	// The Fig. 5 graph.
	s := hin.NewSchema()
	s.MustAddType("A", 'A')
	s.MustAddType("B", 'B')
	s.MustAddRelation("r", "A", "B")
	b := hin.NewBuilder(s)
	for _, e := range [][2]string{
		{"a1", "b1"}, {"a1", "b2"},
		{"a2", "b2"}, {"a2", "b3"}, {"a2", "b4"},
		{"a3", "b4"},
	} {
		b.AddEdge("r", e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		return Fig5Result{}, err
	}
	p := mustPath(g, "AB")
	raw, err := core.NewEngine(g, core.WithNormalization(false)).AllPairs(context.Background(), p)
	if err != nil {
		return Fig5Result{}, err
	}
	norm, err := core.NewEngine(g).AllPairs(context.Background(), p)
	if err != nil {
		return Fig5Result{}, err
	}
	res := Fig5Result{
		ARows:        g.NodeIDs("A"),
		BCols:        g.NodeIDs("B"),
		Unnormalized: raw.Dense(),
		Normalized:   norm.Dense(),
	}

	// Example 2 on the Fig. 4 network.
	s2 := hin.NewSchema()
	s2.MustAddType("author", 'A')
	s2.MustAddType("paper", 'P')
	s2.MustAddType("conference", 'C')
	s2.MustAddRelation("writes", "author", "paper")
	s2.MustAddRelation("published_in", "paper", "conference")
	b2 := hin.NewBuilder(s2)
	b2.AddEdge("writes", "Tom", "p1")
	b2.AddEdge("writes", "Tom", "p2")
	b2.AddEdge("writes", "Mary", "p2")
	b2.AddEdge("writes", "Mary", "p3")
	b2.AddEdge("writes", "Bob", "p4")
	b2.AddEdge("published_in", "p1", "KDD")
	b2.AddEdge("published_in", "p2", "KDD")
	b2.AddEdge("published_in", "p3", "SIGMOD")
	b2.AddEdge("published_in", "p4", "SIGMOD")
	g2, err := b2.Build()
	if err != nil {
		return Fig5Result{}, err
	}
	ex2, err := core.NewEngine(g2, core.WithNormalization(false)).Pair(context.Background(), mustPath(g2, "APC"), "Tom", "KDD")
	if err != nil {
		return Fig5Result{}, err
	}
	res.Example2 = ex2
	return res, nil
}
