package hin

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadCSV builds a graph from an edge-list CSV, the lowest-friction path
// for loading real-world data (e.g. an actual DBLP export) into the
// library. Each record is
//
//	relation,source_id,target_id[,weight]
//
// against the provided schema; a missing weight means 1. A header line is
// skipped when its first field names no schema relation. Blank lines and
// lines starting with '#' are ignored.
//
// The loader is strict so bad data fails at ingest, not as a wrong score
// later: every rejected record — unknown relation, empty node ID, or a
// weight that is not a finite positive number — is reported with the line
// it came from.
func ReadCSV(r io.Reader, schema *Schema) (*Graph, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated per record: 3 or 4 fields
	cr.Comment = '#'
	cr.TrimLeadingSpace = true
	b := NewBuilder(schema)
	first := true
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("hin: reading CSV: %w", err)
		}
		line, _ := cr.FieldPos(0)
		if len(rec) == 1 && strings.TrimSpace(rec[0]) == "" {
			continue
		}
		if len(rec) != 3 && len(rec) != 4 {
			return nil, fmt.Errorf("hin: CSV line %d: record %v has %d fields, want 3 or 4", line, rec, len(rec))
		}
		relName := strings.TrimSpace(rec[0])
		if first {
			first = false
			if _, err := schema.RelationByName(relName); err != nil {
				continue // header line
			}
		}
		if _, err := schema.RelationByName(relName); err != nil {
			return nil, fmt.Errorf("hin: CSV line %d: %w", line, err)
		}
		src, dst := strings.TrimSpace(rec[1]), strings.TrimSpace(rec[2])
		if src == "" || dst == "" {
			return nil, fmt.Errorf("hin: CSV line %d: empty node id in edge %s(%q->%q)", line, relName, src, dst)
		}
		w := 1.0
		if len(rec) == 4 {
			w, err = strconv.ParseFloat(strings.TrimSpace(rec[3]), 64)
			if err != nil {
				return nil, fmt.Errorf("hin: CSV line %d: weight %q: %w", line, rec[3], err)
			}
		}
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("hin: CSV line %d: edge %s(%s->%s) has invalid weight %v: want a finite positive number",
				line, relName, src, dst, w)
		}
		b.AddWeightedEdge(relName, src, dst, w)
	}
	return b.Build()
}

// WriteCSV emits the graph as the edge-list CSV ReadCSV accepts, with a
// header line and an explicit weight on every row. Note the format carries
// edges only: nodes without any edge do not survive a CSV round trip (use
// the JSON format of Write/Read to preserve them).
func WriteCSV(w io.Writer, g *Graph) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"relation", "source", "target", "weight"}); err != nil {
		return err
	}
	for _, rel := range g.Schema().Relations() {
		adj, err := g.Adjacency(rel.Name)
		if err != nil {
			return err
		}
		for _, t := range adj.Triplets() {
			src, err := g.NodeID(rel.Source, t.Row)
			if err != nil {
				return err
			}
			dst, err := g.NodeID(rel.Target, t.Col)
			if err != nil {
				return err
			}
			if err := cw.Write([]string{rel.Name, src, dst,
				strconv.FormatFloat(t.Val, 'g', -1, 64)}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
