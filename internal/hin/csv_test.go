package hin

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestReadCSVBasic(t *testing.T) {
	s := bibSchema(t)
	in := `relation,source,target,weight
writes,Tom,p1
writes,Mary,p1,2
# a comment line
published_in,p1,KDD09,1
part_of,KDD09,KDD
`
	g, err := ReadCSV(strings.NewReader(in), s)
	if err != nil {
		t.Fatal(err)
	}
	if g.NodeCount("author") != 2 || g.NodeCount("paper") != 1 {
		t.Errorf("counts wrong: %s", g.Stats())
	}
	w, _ := g.Adjacency("writes")
	mary, _ := g.NodeIndex("author", "Mary")
	p1, _ := g.NodeIndex("paper", "p1")
	if got := w.At(mary, p1); got != 2 {
		t.Errorf("weighted edge = %v, want 2", got)
	}
}

func TestReadCSVNoHeader(t *testing.T) {
	s := bibSchema(t)
	g, err := ReadCSV(strings.NewReader("writes,Tom,p1\n"), s)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalEdges() != 1 {
		t.Errorf("edges = %d, want 1", g.TotalEdges())
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := bibSchema(t)
	cases := map[string]string{
		"unknown relation": "writes,Tom,p1\nloves,Tom,p2\n",
		"bad field count":  "writes,Tom\n",
		"bad weight":       "writes,Tom,p1,heavy\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Unknown relation specifically surfaces ErrUnknownRelation.
	_, err := ReadCSV(strings.NewReader("writes,Tom,p1\nloves,a,b\n"), s)
	if !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation err = %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := toyGraph(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCSV(&buf, g.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if g2.TotalEdges() != g.TotalEdges() {
		t.Fatalf("edges changed: %d vs %d", g2.TotalEdges(), g.TotalEdges())
	}
	for _, rel := range g.Schema().Relations() {
		a, _ := g.Adjacency(rel.Name)
		b, _ := g2.Adjacency(rel.Name)
		// Node index order may differ; compare via IDs.
		for _, tr := range a.Triplets() {
			src, _ := g.NodeID(rel.Source, tr.Row)
			dst, _ := g.NodeID(rel.Target, tr.Col)
			si, err := g2.NodeIndex(rel.Source, src)
			if err != nil {
				t.Fatalf("node %s lost in round trip", src)
			}
			di, err := g2.NodeIndex(rel.Target, dst)
			if err != nil {
				t.Fatalf("node %s lost in round trip", dst)
			}
			if b.At(si, di) != tr.Val {
				t.Errorf("edge %s %s->%s weight %v vs %v", rel.Name, src, dst, b.At(si, di), tr.Val)
			}
		}
	}
}

func TestCSVRoundTripWeights(t *testing.T) {
	b := NewBuilder(bibSchema(t))
	b.AddWeightedEdge("writes", "Tom", "p1", 0.125)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadCSV(&buf, g.Schema())
	if err != nil {
		t.Fatal(err)
	}
	w, _ := g2.Adjacency("writes")
	if got := w.At(0, 0); got != 0.125 {
		t.Errorf("weight = %v, want 0.125", got)
	}
}
