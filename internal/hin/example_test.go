package hin_test

import (
	"fmt"

	"hetesim/internal/hin"
)

func ExampleBuilder() {
	schema := hin.NewSchema()
	schema.MustAddType("user", 'U')
	schema.MustAddType("movie", 'M')
	schema.MustAddRelation("rates", "user", "movie")

	b := hin.NewBuilder(schema)
	b.AddEdge("rates", "alice", "heat")
	b.AddWeightedEdge("rates", "bob", "heat", 5)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(g.NodeCount("user"), "users,", g.TotalEdges(), "ratings")
	// Output: 2 users, 2 ratings
}

func ExampleGraph_Neighbors() {
	schema := hin.NewSchema()
	schema.MustAddType("author", 'A')
	schema.MustAddType("paper", 'P')
	schema.MustAddRelation("writes", "author", "paper")
	b := hin.NewBuilder(schema)
	b.AddEdge("writes", "knuth", "taocp1")
	b.AddEdge("writes", "knuth", "taocp2")
	g := b.MustBuild()

	knuth, _ := g.NodeIndex("author", "knuth")
	papers, _ := g.Neighbors("writes", knuth)
	for _, p := range papers {
		id, _ := g.NodeID("paper", p)
		fmt.Println(id)
	}
	// Output:
	// taocp1
	// taocp2
}

func ExampleSchema_RelationBetween() {
	schema := hin.NewSchema()
	schema.MustAddType("paper", 'P')
	schema.MustAddType("venue", 'V')
	schema.MustAddRelation("published_in", "paper", "venue")

	// Forward direction.
	rel, inverse, _ := schema.RelationBetween("paper", "venue")
	fmt.Println(rel.Name, inverse)
	// The implicit inverse R^-1.
	rel, inverse, _ = schema.RelationBetween("venue", "paper")
	fmt.Println(rel.Name, inverse)
	// Output:
	// published_in false
	// published_in true
}
