package hin

import (
	"encoding/binary"
	"hash/crc64"
	"math"
	"sort"
)

// Fingerprint returns a deterministic 64-bit digest of the graph: schema
// types and relations, node identifiers in index order, and every adjacency
// triplet in CSR order. Two graphs share a fingerprint exactly when their
// index-addressed contents are identical, which is the property snapshot
// validation needs — materialized chain matrices are addressed by node
// index, so a snapshot is only safe to load into a graph whose node
// numbering and edges match the graph that produced it (Defs. 1–2: the
// network and its type/relation structure).
func (g *Graph) Fingerprint() uint64 {
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	var num [8]byte
	writeInt := func(v uint64) {
		binary.LittleEndian.PutUint64(num[:], v)
		h.Write(num[:])
	}
	writeStr := func(s string) {
		writeInt(uint64(len(s)))
		h.Write([]byte(s))
	}

	types := g.schema.Types()
	sort.Slice(types, func(i, j int) bool { return types[i].Name < types[j].Name })
	writeInt(uint64(len(types)))
	for _, t := range types {
		writeStr(t.Name)
		writeInt(uint64(t.Abbrev))
		ids := g.nodes[t.Name]
		writeInt(uint64(len(ids)))
		for _, id := range ids {
			writeStr(id)
		}
	}

	rels := g.schema.Relations()
	sort.Slice(rels, func(i, j int) bool { return rels[i].Name < rels[j].Name })
	writeInt(uint64(len(rels)))
	for _, r := range rels {
		writeStr(r.Name)
		writeStr(r.Source)
		writeStr(r.Target)
		m := g.adj[r.Name]
		if m == nil {
			writeInt(0)
			continue
		}
		ts := m.Triplets()
		writeInt(uint64(len(ts)))
		for _, t := range ts {
			writeInt(uint64(t.Row))
			writeInt(uint64(t.Col))
			writeInt(math.Float64bits(t.Val))
		}
	}
	return h.Sum64()
}
