package hin

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the graph reader never panics on arbitrary input and
// that anything it accepts round-trips through Write.
func FuzzRead(f *testing.F) {
	// Seed with a valid serialized graph and near-valid variants.
	s := NewSchema()
	s.MustAddType("a", 'A')
	s.MustAddType("b", 'B')
	s.MustAddRelation("r", "a", "b")
	b := NewBuilder(s)
	b.AddEdge("r", "x", "y")
	b.AddWeightedEdge("r", "x", "z", 2.5)
	var buf bytes.Buffer
	if err := Write(&buf, b.MustBuild()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"types":[{"name":"t"}],"relations":[],"nodes":{},"edges":{}}`)
	f.Add(`{"version":1,"types":[{"name":"t"},{"name":"t"}]}`)
	f.Add(`not json`)
	f.Add(`{"version":1,"types":[{"name":"a"}],"relations":[{"name":"r","source":"a","target":"zzz"}]}`)
	f.Add(`{"version":1,"types":[{"name":"a"},{"name":"b"}],"relations":[{"name":"r","source":"a","target":"b"}],"nodes":{"a":["x"],"b":["y"]},"edges":{"r":[{"s":9,"t":0}]}}`)

	f.Fuzz(func(t *testing.T, data string) {
		g, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, g); err != nil {
			t.Fatalf("accepted graph does not serialize: %v", err)
		}
		g2, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip fails to parse: %v", err)
		}
		if g2.TotalNodes() != g.TotalNodes() || g2.TotalEdges() != g.TotalEdges() {
			t.Fatalf("round trip changed sizes: %s vs %s", g2.Stats(), g.Stats())
		}
	})
}
