package hin

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks the graph reader never panics on arbitrary input and
// that anything it accepts round-trips through Write.
func FuzzRead(f *testing.F) {
	// Seed with a valid serialized graph and near-valid variants.
	s := NewSchema()
	s.MustAddType("a", 'A')
	s.MustAddType("b", 'B')
	s.MustAddRelation("r", "a", "b")
	b := NewBuilder(s)
	b.AddEdge("r", "x", "y")
	b.AddWeightedEdge("r", "x", "z", 2.5)
	var buf bytes.Buffer
	if err := Write(&buf, b.MustBuild()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add(`{"version":1}`)
	f.Add(`{"version":1,"types":[{"name":"t"}],"relations":[],"nodes":{},"edges":{}}`)
	f.Add(`{"version":1,"types":[{"name":"t"},{"name":"t"}]}`)
	f.Add(`not json`)
	f.Add(`{"version":1,"types":[{"name":"a"}],"relations":[{"name":"r","source":"a","target":"zzz"}]}`)
	f.Add(`{"version":1,"types":[{"name":"a"},{"name":"b"}],"relations":[{"name":"r","source":"a","target":"b"}],"nodes":{"a":["x"],"b":["y"]},"edges":{"r":[{"s":9,"t":0}]}}`)
	// Hardening seeds: duplicate node ids, empty ids, negative weights,
	// node/edge lists for undeclared names.
	f.Add(`{"version":1,"types":[{"name":"a"}],"relations":[],"nodes":{"a":["x","x"]},"edges":{}}`)
	f.Add(`{"version":1,"types":[{"name":"a"}],"relations":[],"nodes":{"a":[""]},"edges":{}}`)
	f.Add(`{"version":1,"types":[{"name":"a"},{"name":"b"}],"relations":[{"name":"r","source":"a","target":"b"}],"nodes":{"a":["x"],"b":["y"]},"edges":{"r":[{"s":0,"t":0,"w":-1}]}}`)
	f.Add(`{"version":1,"types":[{"name":"a"}],"relations":[],"nodes":{"ghost":["x"]},"edges":{}}`)
	f.Add(`{"version":1,"types":[{"name":"a"}],"relations":[],"nodes":{},"edges":{"ghost":[]}}`)

	f.Fuzz(func(t *testing.T, data string) {
		g, err := Read(strings.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, g); err != nil {
			t.Fatalf("accepted graph does not serialize: %v", err)
		}
		g2, err := Read(&out)
		if err != nil {
			t.Fatalf("round trip fails to parse: %v", err)
		}
		if g2.TotalNodes() != g.TotalNodes() || g2.TotalEdges() != g.TotalEdges() {
			t.Fatalf("round trip changed sizes: %s vs %s", g2.Stats(), g.Stats())
		}
		if g2.Fingerprint() != g.Fingerprint() {
			t.Fatalf("round trip changed fingerprint: %016x vs %016x", g2.Fingerprint(), g.Fingerprint())
		}
	})
}

// FuzzReadCSV checks the CSV loader never panics and that anything it
// accepts survives a CSV round trip with sizes intact.
func FuzzReadCSV(f *testing.F) {
	f.Add("relation,source,target,weight\nr,x,y,1\nr,x,z,2.5\n")
	f.Add("r,x,y\n")
	f.Add("r,x,y,0\n")
	f.Add("r,x,y,-3\n")
	f.Add("r,x,y,NaN\n")
	f.Add("r,x,y,+Inf\n")
	f.Add("r,,y\n")
	f.Add("bogus,x,y\n")
	f.Add("# comment\n\nr,x,y\n")
	f.Add("r,x\n")
	f.Add("r,x,y,1,extra\n")
	f.Add("r,\"x\"\"quoted\",y\n")

	f.Fuzz(func(t *testing.T, data string) {
		s := NewSchema()
		s.MustAddType("a", 'A')
		s.MustAddType("b", 'B')
		s.MustAddRelation("r", "a", "b")
		g, err := ReadCSV(strings.NewReader(data), s)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteCSV(&out, g); err != nil {
			t.Fatalf("accepted graph does not serialize: %v", err)
		}
		s2 := NewSchema()
		s2.MustAddType("a", 'A')
		s2.MustAddType("b", 'B')
		s2.MustAddRelation("r", "a", "b")
		g2, err := ReadCSV(bytes.NewReader(out.Bytes()), s2)
		if err != nil {
			t.Fatalf("round trip fails to parse: %v", err)
		}
		if g2.TotalEdges() != g.TotalEdges() {
			t.Fatalf("round trip changed edges: %s vs %s", g2.Stats(), g.Stats())
		}
	})
}
