package hin

import (
	"fmt"
	"math"
	"sort"

	"hetesim/internal/sparse"
)

// Graph is a heterogeneous information network instance over a Schema:
// string-identified nodes partitioned by type, and a weighted adjacency
// matrix per relation. Graphs are built through a Builder and immutable
// afterwards, so they are safe for concurrent readers.
type Graph struct {
	schema *Schema
	// nodes[t] holds the IDs of type t's nodes in insertion order.
	nodes map[string][]string
	// index[t][id] is the position of node id within nodes[t].
	index map[string]map[string]int
	// adj[r] is the |source| x |target| weighted adjacency of relation r.
	adj map[string]*sparse.Matrix
}

// Schema returns the graph's schema.
func (g *Graph) Schema() *Schema { return g.schema }

// NodeCount returns the number of nodes of the given type, or 0 for unknown
// types.
func (g *Graph) NodeCount(typeName string) int { return len(g.nodes[typeName]) }

// TotalNodes returns the number of nodes across all types.
func (g *Graph) TotalNodes() int {
	n := 0
	for _, ids := range g.nodes {
		n += len(ids)
	}
	return n
}

// TotalEdges returns the number of stored relation instances across all
// relations.
func (g *Graph) TotalEdges() int {
	n := 0
	for _, m := range g.adj {
		n += m.NNZ()
	}
	return n
}

// NodeIDs returns the identifiers of all nodes of a type, in index order.
// The returned slice is a copy.
func (g *Graph) NodeIDs(typeName string) []string {
	return append([]string(nil), g.nodes[typeName]...)
}

// NodeID returns the identifier of node i of the given type.
func (g *Graph) NodeID(typeName string, i int) (string, error) {
	ids, ok := g.nodes[typeName]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownType, typeName)
	}
	if i < 0 || i >= len(ids) {
		return "", fmt.Errorf("%w: %s #%d (have %d)", ErrUnknownNode, typeName, i, len(ids))
	}
	return ids[i], nil
}

// NodeIndex returns the index of the node with the given identifier.
func (g *Graph) NodeIndex(typeName, id string) (int, error) {
	m, ok := g.index[typeName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownType, typeName)
	}
	i, ok := m[id]
	if !ok {
		return 0, fmt.Errorf("%w: %s %q", ErrUnknownNode, typeName, id)
	}
	return i, nil
}

// HasNode reports whether the identified node exists.
func (g *Graph) HasNode(typeName, id string) bool {
	_, err := g.NodeIndex(typeName, id)
	return err == nil
}

// Adjacency returns the weighted adjacency matrix W of a relation
// (|R.S| x |R.T|). The matrix is shared and must not be mutated (sparse
// matrices are immutable by construction).
func (g *Graph) Adjacency(relName string) (*sparse.Matrix, error) {
	m, ok := g.adj[relName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRelation, relName)
	}
	return m, nil
}

// Degree returns the out-degree of node i under the relation (the number of
// out-neighbors |O(s|R)| of Definition 3).
func (g *Graph) Degree(relName string, i int) (int, error) {
	m, err := g.Adjacency(relName)
	if err != nil {
		return 0, err
	}
	if i < 0 || i >= m.Rows() {
		return 0, fmt.Errorf("%w: index %d under relation %q", ErrUnknownNode, i, relName)
	}
	return m.RowNNZ(i), nil
}

// Neighbors returns the target indices adjacent to source node i under the
// relation, in increasing order.
func (g *Graph) Neighbors(relName string, i int) ([]int, error) {
	m, err := g.Adjacency(relName)
	if err != nil {
		return nil, err
	}
	if i < 0 || i >= m.Rows() {
		return nil, fmt.Errorf("%w: index %d under relation %q", ErrUnknownNode, i, relName)
	}
	var out []int
	m.Row(i).Entries(func(j int, _ float64) { out = append(out, j) })
	return out, nil
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// Adding an edge implicitly creates its endpoints. Duplicate edges sum their
// weights, matching sparse triplet semantics.
type Builder struct {
	schema *Schema
	nodes  map[string][]string
	index  map[string]map[string]int
	edges  map[string][]edge
	err    error
}

type edge struct {
	src, dst int
	w        float64
}

// NewBuilder creates a Builder over the given schema.
func NewBuilder(s *Schema) *Builder {
	return &Builder{
		schema: s,
		nodes:  make(map[string][]string),
		index:  make(map[string]map[string]int),
		edges:  make(map[string][]edge),
	}
}

// Err returns the first error encountered by the builder, if any.
func (b *Builder) Err() error { return b.err }

// AddNode registers a node of the given type, returning its index. Adding
// an existing node is a no-op returning the existing index.
func (b *Builder) AddNode(typeName, id string) int {
	if b.err != nil {
		return -1
	}
	if !b.schema.HasType(typeName) {
		b.err = fmt.Errorf("%w: %q", ErrUnknownType, typeName)
		return -1
	}
	idx, ok := b.index[typeName]
	if !ok {
		idx = make(map[string]int)
		b.index[typeName] = idx
	}
	if i, ok := idx[id]; ok {
		return i
	}
	i := len(b.nodes[typeName])
	idx[id] = i
	b.nodes[typeName] = append(b.nodes[typeName], id)
	return i
}

// AddEdge records a relation instance between two identified nodes with
// weight 1, creating the nodes as needed.
func (b *Builder) AddEdge(relName, srcID, dstID string) {
	b.AddWeightedEdge(relName, srcID, dstID, 1)
}

// AddWeightedEdge records a relation instance with an explicit weight.
// Weights must be positive and finite: adjacency weights are relation
// instance strengths, and the Definition 6 decomposition splits them as
// square roots.
func (b *Builder) AddWeightedEdge(relName, srcID, dstID string, w float64) {
	if b.err != nil {
		return
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		b.err = fmt.Errorf("hin: edge %s(%s->%s) has invalid weight %v", relName, srcID, dstID, w)
		return
	}
	rel, err := b.schema.RelationByName(relName)
	if err != nil {
		b.err = err
		return
	}
	s := b.AddNode(rel.Source, srcID)
	d := b.AddNode(rel.Target, dstID)
	if b.err != nil {
		return
	}
	b.edges[relName] = append(b.edges[relName], edge{s, d, w})
}

// Build finalizes the graph. Every schema relation gets an adjacency matrix
// (possibly empty). Build fails if any prior builder call failed.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		schema: b.schema,
		nodes:  make(map[string][]string, len(b.nodes)),
		index:  make(map[string]map[string]int, len(b.index)),
		adj:    make(map[string]*sparse.Matrix),
	}
	for t, ids := range b.nodes {
		g.nodes[t] = append([]string(nil), ids...)
	}
	for t, m := range b.index {
		cp := make(map[string]int, len(m))
		for k, v := range m {
			cp[k] = v
		}
		g.index[t] = cp
	}
	for _, rel := range b.schema.Relations() {
		rows := len(b.nodes[rel.Source])
		cols := len(b.nodes[rel.Target])
		es := b.edges[rel.Name]
		ts := make([]sparse.Triplet, len(es))
		for i, e := range es {
			ts[i] = sparse.Triplet{Row: e.src, Col: e.dst, Val: e.w}
		}
		g.adj[rel.Name] = sparse.New(rows, cols, ts)
	}
	return g, nil
}

// MustBuild is Build but panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// Stats summarizes a graph for display: node counts per type and edge counts
// per relation, each sorted by name.
func (g *Graph) Stats() string {
	var types []string
	for t := range g.nodes {
		types = append(types, t)
	}
	sort.Strings(types)
	s := "nodes:"
	for _, t := range types {
		s += fmt.Sprintf(" %s=%d", t, len(g.nodes[t]))
	}
	var rels []string
	for r := range g.adj {
		rels = append(rels, r)
	}
	sort.Strings(rels)
	s += "; edges:"
	for _, r := range rels {
		s += fmt.Sprintf(" %s=%d", r, g.adj[r].NNZ())
	}
	return s
}
