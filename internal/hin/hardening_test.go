package hin

import (
	"strings"
	"testing"
)

func hardeningSchema() *Schema {
	s := NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddRelation("writes", "author", "paper")
	return s
}

// TestReadCSVRejectsBadRecords sweeps the malformed-input matrix: every
// case must be rejected, and the error must name the offending line so an
// operator can fix a million-row export without bisecting it.
func TestReadCSVRejectsBadRecords(t *testing.T) {
	cases := []struct {
		name, csv, wantInErr string
	}{
		{"nan weight", "writes,Tom,p1,NaN\n", "line 1"},
		{"inf weight", "writes,Tom,p1,Inf\n", "line 1"},
		{"negative weight", "writes,Tom,p1,-2\n", "line 1"},
		{"zero weight", "writes,Tom,p1,0\n", "line 1"},
		{"unparseable weight", "writes,Tom,p1,heavy\n", "line 1"},
		{"unknown relation", "writes,Tom,p1\ncites,p1,p2\n", "line 2"},
		{"empty source", "writes,,p1\n", "line 1"},
		{"empty target", "writes,Tom,\n", "line 1"},
		{"too few fields", "writes,Tom\n", "line 1"},
		{"too many fields", "writes,Tom,p1,1,extra\n", "line 1"},
		{"bad line after good ones", "writes,Tom,p1\nwrites,Mary,p2\nwrites,Mary,p3,NaN\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(tc.csv), hardeningSchema())
			if err == nil {
				t.Fatalf("ReadCSV accepted %q", tc.csv)
			}
			if !strings.Contains(err.Error(), tc.wantInErr) {
				t.Fatalf("error %q does not name %q", err, tc.wantInErr)
			}
		})
	}
}

// TestReadCSVHeaderAndComments checks the lenient paths stay lenient: a
// header line, comments, and blank lines are skipped, not rejected.
func TestReadCSVHeaderAndComments(t *testing.T) {
	in := "relation,source,target,weight\n# a comment\n\nwrites,Tom,p1,2\nwrites,Mary,p1\n"
	g, err := ReadCSV(strings.NewReader(in), hardeningSchema())
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.TotalEdges())
	}
}

// TestReadRejectsDuplicateNodeIDs is the index-shift regression test: a
// JSON graph whose node list repeats an id must be rejected outright —
// silently deduplicating would shift every later node's index and wire
// edges to the wrong endpoints.
func TestReadRejectsDuplicateNodeIDs(t *testing.T) {
	in := `{"version":1,
		"types":[{"name":"author","abbrev":"A"},{"name":"paper","abbrev":"P"}],
		"relations":[{"name":"writes","source":"author","target":"paper"}],
		"nodes":{"author":["Tom","Mary","Tom","Ann"],"paper":["p1"]},
		"edges":{"writes":[{"s":3,"t":0}]}}`
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("Read accepted a duplicate node id")
	}
	for _, want := range []string{"Tom", "author", "duplicate"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestReadRejectsBadGraphFiles sweeps the remaining JSON-loader guards.
func TestReadRejectsBadGraphFiles(t *testing.T) {
	cases := []struct {
		name, in, wantInErr string
	}{
		{"empty node id",
			`{"version":1,"types":[{"name":"author"}],"relations":[],"nodes":{"author":["Tom",""]},"edges":{}}`,
			"empty id"},
		{"edge to unknown node",
			`{"version":1,"types":[{"name":"author"},{"name":"paper"}],
			"relations":[{"name":"writes","source":"author","target":"paper"}],
			"nodes":{"author":["Tom"],"paper":["p1"]},
			"edges":{"writes":[{"s":0,"t":7}]}}`,
			"unknown node"},
		{"negative edge index",
			`{"version":1,"types":[{"name":"author"},{"name":"paper"}],
			"relations":[{"name":"writes","source":"author","target":"paper"}],
			"nodes":{"author":["Tom"],"paper":["p1"]},
			"edges":{"writes":[{"s":-1,"t":0}]}}`,
			"unknown node"},
		{"negative weight",
			`{"version":1,"types":[{"name":"author"},{"name":"paper"}],
			"relations":[{"name":"writes","source":"author","target":"paper"}],
			"nodes":{"author":["Tom"],"paper":["p1"]},
			"edges":{"writes":[{"s":0,"t":0,"w":-0.5}]}}`,
			"invalid weight"},
		{"nodes for undeclared type",
			`{"version":1,"types":[{"name":"author"}],"relations":[],"nodes":{"ghost":["x"]},"edges":{}}`,
			"undeclared type"},
		{"edges for undeclared relation",
			`{"version":1,"types":[{"name":"author"}],"relations":[],"nodes":{},"edges":{"ghost":[]}}`,
			"undeclared relation"},
		{"wrong version",
			`{"version":99}`,
			"version"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("Read accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantInErr) {
				t.Fatalf("error %q does not contain %q", err, tc.wantInErr)
			}
		})
	}
}
