package hin

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// bibSchema builds the ACM-style schema of Fig. 3(a) in the paper.
func bibSchema(t *testing.T) *Schema {
	t.Helper()
	s := NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddType("term", 'T')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	s.MustAddRelation("mentions", "paper", "term")
	return s
}

func TestSchemaTypeLookups(t *testing.T) {
	s := bibSchema(t)
	if !s.HasType("author") || s.HasType("movie") {
		t.Error("HasType wrong")
	}
	name, err := s.TypeByAbbrev('V')
	if err != nil || name != "venue" {
		t.Errorf("TypeByAbbrev(V) = %q, %v", name, err)
	}
	if _, err := s.TypeByAbbrev('X'); !errors.Is(err, ErrUnknownType) {
		t.Errorf("TypeByAbbrev(X) err = %v, want ErrUnknownType", err)
	}
}

func TestSchemaDuplicateRejection(t *testing.T) {
	s := bibSchema(t)
	if err := s.AddType("author", 0); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate type err = %v", err)
	}
	if err := s.AddType("area", 'A'); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate abbrev err = %v", err)
	}
	if err := s.AddRelation("writes", "author", "paper"); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate relation err = %v", err)
	}
	if err := s.AddRelation("loves", "author", "movie"); !errors.Is(err, ErrUnknownType) {
		t.Errorf("relation with unknown type err = %v", err)
	}
}

func TestRelationBetween(t *testing.T) {
	s := bibSchema(t)
	rel, inv, err := s.RelationBetween("author", "paper")
	if err != nil || rel.Name != "writes" || inv {
		t.Errorf("author->paper = %v inv=%v err=%v", rel, inv, err)
	}
	rel, inv, err = s.RelationBetween("paper", "author")
	if err != nil || rel.Name != "writes" || !inv {
		t.Errorf("paper->author = %v inv=%v err=%v; want inverse of writes", rel, inv, err)
	}
	if _, _, err := s.RelationBetween("author", "conference"); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("author->conference err = %v", err)
	}
	// Ambiguity: add a second author->paper relation.
	s.MustAddRelation("reviews", "author", "paper")
	if _, _, err := s.RelationBetween("author", "paper"); !errors.Is(err, ErrAmbiguous) {
		t.Errorf("ambiguous err = %v", err)
	}
}

func toyGraph(t *testing.T) *Graph {
	t.Helper()
	// The Fig. 4 toy network: Tom/Mary/Bob write papers published in
	// KDD/SIGMOD venues of KDD/SIGMOD conferences.
	b := NewBuilder(bibSchema(t))
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("writes", "Bob", "p4")
	b.AddEdge("published_in", "p1", "KDD09")
	b.AddEdge("published_in", "p2", "KDD10")
	b.AddEdge("published_in", "p3", "SIGMOD10")
	b.AddEdge("published_in", "p4", "SIGMOD10")
	b.AddEdge("part_of", "KDD09", "KDD")
	b.AddEdge("part_of", "KDD10", "KDD")
	b.AddEdge("part_of", "SIGMOD10", "SIGMOD")
	return b.MustBuild()
}

func TestBuilderAndGraphAccessors(t *testing.T) {
	g := toyGraph(t)
	if got := g.NodeCount("author"); got != 3 {
		t.Errorf("author count = %d, want 3", got)
	}
	if got := g.NodeCount("movie"); got != 0 {
		t.Errorf("unknown type count = %d, want 0", got)
	}
	if got := g.TotalNodes(); got != 3+4+3+2 {
		t.Errorf("TotalNodes = %d, want 12", got)
	}
	if got := g.TotalEdges(); got != 12 {
		t.Errorf("TotalEdges = %d, want 12", got)
	}
	i, err := g.NodeIndex("author", "Mary")
	if err != nil || i != 1 {
		t.Errorf("NodeIndex(Mary) = %d, %v", i, err)
	}
	id, err := g.NodeID("author", 1)
	if err != nil || id != "Mary" {
		t.Errorf("NodeID(1) = %q, %v", id, err)
	}
	if _, err := g.NodeIndex("author", "Zed"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node err = %v", err)
	}
	if _, err := g.NodeID("author", 9); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("bad index err = %v", err)
	}
	if _, err := g.NodeIndex("movie", "x"); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type err = %v", err)
	}
	if !g.HasNode("author", "Tom") || g.HasNode("author", "Zed") {
		t.Error("HasNode wrong")
	}
	ids := g.NodeIDs("conference")
	if !reflect.DeepEqual(ids, []string{"KDD", "SIGMOD"}) {
		t.Errorf("conference IDs = %v", ids)
	}
}

func TestAdjacencyAndNeighbors(t *testing.T) {
	g := toyGraph(t)
	w, err := g.Adjacency("writes")
	if err != nil {
		t.Fatal(err)
	}
	r, c := w.Dims()
	if r != 3 || c != 4 {
		t.Fatalf("writes dims = %dx%d, want 3x4", r, c)
	}
	tom, _ := g.NodeIndex("author", "Tom")
	deg, err := g.Degree("writes", tom)
	if err != nil || deg != 2 {
		t.Errorf("Degree(Tom) = %d, %v", deg, err)
	}
	nb, err := g.Neighbors("writes", tom)
	if err != nil || !reflect.DeepEqual(nb, []int{0, 1}) {
		t.Errorf("Neighbors(Tom) = %v, %v", nb, err)
	}
	if _, err := g.Adjacency("nope"); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("unknown relation err = %v", err)
	}
	if _, err := g.Degree("writes", 99); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("bad degree index err = %v", err)
	}
	if _, err := g.Neighbors("writes", -1); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("bad neighbors index err = %v", err)
	}
}

func TestBuilderDuplicateEdgeSumsWeight(t *testing.T) {
	b := NewBuilder(bibSchema(t))
	b.AddEdge("writes", "Tom", "p1")
	b.AddWeightedEdge("writes", "Tom", "p1", 2)
	g := b.MustBuild()
	w, _ := g.Adjacency("writes")
	if got := w.At(0, 0); got != 3 {
		t.Errorf("summed weight = %v, want 3", got)
	}
}

func TestBuilderRejectsInvalidWeights(t *testing.T) {
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		b := NewBuilder(bibSchema(t))
		b.AddWeightedEdge("writes", "Tom", "p1", w)
		if _, err := b.Build(); err == nil {
			t.Errorf("weight %v accepted", w)
		}
	}
}

func TestBuilderErrorsStick(t *testing.T) {
	b := NewBuilder(bibSchema(t))
	b.AddEdge("nope", "a", "b")
	if b.Err() == nil {
		t.Fatal("expected builder error")
	}
	b.AddEdge("writes", "Tom", "p1") // ignored after error
	if _, err := b.Build(); !errors.Is(err, ErrUnknownRelation) {
		t.Errorf("Build err = %v", err)
	}
	b2 := NewBuilder(bibSchema(t))
	if got := b2.AddNode("movie", "x"); got != -1 {
		t.Errorf("AddNode on unknown type = %d, want -1", got)
	}
	if b2.Err() == nil {
		t.Error("expected error for unknown type")
	}
}

func TestEmptyRelationGetsEmptyMatrix(t *testing.T) {
	b := NewBuilder(bibSchema(t))
	b.AddEdge("writes", "Tom", "p1")
	g := b.MustBuild()
	m, err := g.Adjacency("mentions")
	if err != nil {
		t.Fatal(err)
	}
	r, c := m.Dims()
	if r != 1 || c != 0 || m.NNZ() != 0 {
		t.Errorf("mentions = %dx%d nnz=%d, want 1x0 empty", r, c, m.NNZ())
	}
}

func TestGraphStatsAndSchemaString(t *testing.T) {
	g := toyGraph(t)
	st := g.Stats()
	for _, want := range []string{"author=3", "paper=4", "writes=5"} {
		if !strings.Contains(st, want) {
			t.Errorf("Stats %q missing %q", st, want)
		}
	}
	ss := g.Schema().String()
	if !strings.Contains(ss, "author(A)") || !strings.Contains(ss, "writes:author->paper") {
		t.Errorf("Schema.String = %q", ss)
	}
}

func TestGraphRoundTripJSON(t *testing.T) {
	g := toyGraph(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.TotalNodes() != g.TotalNodes() || g2.TotalEdges() != g.TotalEdges() {
		t.Fatalf("round trip changed size: %s vs %s", g2.Stats(), g.Stats())
	}
	for _, typ := range []string{"author", "paper", "venue", "conference"} {
		if !reflect.DeepEqual(g2.NodeIDs(typ), g.NodeIDs(typ)) {
			t.Errorf("%s IDs changed: %v vs %v", typ, g2.NodeIDs(typ), g.NodeIDs(typ))
		}
	}
	for _, rel := range g.Schema().Relations() {
		a, _ := g.Adjacency(rel.Name)
		b, _ := g2.Adjacency(rel.Name)
		if !a.Equal(b) {
			t.Errorf("relation %s adjacency changed", rel.Name)
		}
	}
}

func TestGraphRoundTripWeights(t *testing.T) {
	b := NewBuilder(bibSchema(t))
	b.AddWeightedEdge("writes", "Tom", "p1", 2.5)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := g2.Adjacency("writes")
	if got := w.At(0, 0); got != 2.5 {
		t.Errorf("weight after round trip = %v, want 2.5", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if _, err := Read(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("expected version error")
	}
	bad := `{"version":1,"types":[{"name":"a"},{"name":"b"}],
	 "relations":[{"name":"r","source":"a","target":"b"}],
	 "nodes":{"a":["x"],"b":["y"]},
	 "edges":{"r":[{"s":5,"t":0}]}}`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("expected out-of-range edge error")
	}
}
