package hin

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// fileFormat is the on-disk JSON representation of a graph. Edge weights of
// exactly 1 are omitted to keep bibliographic networks (whose adjacency is
// 0/1) compact.
type fileFormat struct {
	Version   int                   `json:"version"`
	Types     []fileType            `json:"types"`
	Relations []fileRelation        `json:"relations"`
	Nodes     map[string][]string   `json:"nodes"`
	Edges     map[string][]fileEdge `json:"edges"`
}

type fileType struct {
	Name   string `json:"name"`
	Abbrev string `json:"abbrev,omitempty"`
}

type fileRelation struct {
	Name   string `json:"name"`
	Source string `json:"source"`
	Target string `json:"target"`
}

type fileEdge struct {
	Src    int     `json:"s"`
	Dst    int     `json:"t"`
	Weight float64 `json:"w,omitempty"`
}

const formatVersion = 1

// Write serializes the graph as JSON to w.
func Write(w io.Writer, g *Graph) error {
	ff := fileFormat{
		Version: formatVersion,
		Nodes:   make(map[string][]string),
		Edges:   make(map[string][]fileEdge),
	}
	for _, t := range g.schema.Types() {
		ab := ""
		if t.Abbrev != 0 {
			ab = string(t.Abbrev)
		}
		ff.Types = append(ff.Types, fileType{Name: t.Name, Abbrev: ab})
		ff.Nodes[t.Name] = g.nodes[t.Name]
	}
	for _, r := range g.schema.Relations() {
		ff.Relations = append(ff.Relations, fileRelation{Name: r.Name, Source: r.Source, Target: r.Target})
		m := g.adj[r.Name]
		es := make([]fileEdge, 0, m.NNZ())
		for _, tr := range m.Triplets() {
			e := fileEdge{Src: tr.Row, Dst: tr.Col}
			if tr.Val != 1 {
				e.Weight = tr.Val
			}
			es = append(es, e)
		}
		ff.Edges[r.Name] = es
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ff)
}

// Read deserializes a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("hin: decoding graph: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("hin: unsupported graph format version %d", ff.Version)
	}
	s := NewSchema()
	for _, t := range ff.Types {
		var ab byte
		if t.Abbrev != "" {
			ab = t.Abbrev[0]
		}
		if err := s.AddType(t.Name, ab); err != nil {
			return nil, err
		}
	}
	for _, rel := range ff.Relations {
		if err := s.AddRelation(rel.Name, rel.Source, rel.Target); err != nil {
			return nil, err
		}
	}
	// Keys that name no declared type or relation would be dropped on the
	// floor; a file that carries them is malformed, not merely verbose.
	for name := range ff.Nodes {
		if !s.HasType(name) {
			return nil, fmt.Errorf("hin: node list for undeclared type %q", name)
		}
	}
	for name := range ff.Edges {
		if _, err := s.RelationByName(name); err != nil {
			return nil, fmt.Errorf("hin: edge list for undeclared relation %q", name)
		}
	}
	b := NewBuilder(s)
	for _, t := range ff.Types {
		// A duplicate node ID would silently collapse onto its first
		// occurrence and shift the index of every node after it — so each
		// edge written against the original indices would land on the wrong
		// endpoint. Reject the file instead of building a subtly wrong graph.
		seen := make(map[string]int, len(ff.Nodes[t.Name]))
		for i, id := range ff.Nodes[t.Name] {
			if id == "" {
				return nil, fmt.Errorf("hin: type %q node %d has an empty id", t.Name, i)
			}
			if j, dup := seen[id]; dup {
				return nil, fmt.Errorf("hin: type %q has duplicate node id %q (entries %d and %d)", t.Name, id, j, i)
			}
			seen[id] = i
			b.AddNode(t.Name, id)
		}
	}
	for _, rel := range ff.Relations {
		nodesS := ff.Nodes[rel.Source]
		nodesT := ff.Nodes[rel.Target]
		for i, e := range ff.Edges[rel.Name] {
			if e.Src < 0 || e.Src >= len(nodesS) || e.Dst < 0 || e.Dst >= len(nodesT) {
				return nil, fmt.Errorf("hin: relation %q edge %d references unknown node (%d,%d): have %d source and %d target nodes",
					rel.Name, i, e.Src, e.Dst, len(nodesS), len(nodesT))
			}
			w := e.Weight
			if w == 0 {
				w = 1
			}
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("hin: relation %q edge %d (%s->%s) has invalid weight %v: want a finite positive number",
					rel.Name, i, nodesS[e.Src], nodesT[e.Dst], w)
			}
			b.AddWeightedEdge(rel.Name, nodesS[e.Src], nodesT[e.Dst], w)
		}
	}
	return b.Build()
}
