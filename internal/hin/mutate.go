package hin

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"

	"hetesim/internal/sparse"
)

// Graph mutation. Graphs stay immutable: Apply builds a new Graph sharing
// every untouched adjacency matrix and node table with the old one
// (copy-on-write), so in-flight readers of the old graph are never
// disturbed — the property the server's engine-set swap relies on. Apply
// also reports exactly which transition-probability rows the deltas
// perturbed: by Property 2 of the paper (U_AB = V'_BA), an edge delta on
// relation R changes only row src of R's forward transition matrix and row
// dst of its inverse, which is what lets cached chain matrices be
// maintained row-by-row instead of rebuilt.

// OpKind enumerates the mutation operations of the write path.
type OpKind uint8

const (
	// OpAddNode registers a node of a type (no-op when it already exists).
	OpAddNode OpKind = iota + 1
	// OpUpsertEdge sets the weight of a relation instance, creating the
	// edge — and, like Builder.AddEdge, its endpoints — as needed.
	OpUpsertEdge
	// OpDeleteEdge removes a relation instance. Deleting an edge that does
	// not exist is an error: the write path validates deltas before they
	// are logged, so replay never sees one.
	OpDeleteEdge
)

func (k OpKind) String() string {
	switch k {
	case OpAddNode:
		return "add_node"
	case OpUpsertEdge:
		return "upsert_edge"
	case OpDeleteEdge:
		return "delete_edge"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// MarshalJSON encodes the kind by its wire name ("add_node",
// "upsert_edge", "delete_edge") — the admin mutation API speaks names, not
// enum ordinals, so batches stay readable and ordinals can be reassigned.
func (k OpKind) MarshalJSON() ([]byte, error) {
	switch k {
	case OpAddNode, OpUpsertEdge, OpDeleteEdge:
		return json.Marshal(k.String())
	}
	return nil, fmt.Errorf("%w: kind %d", ErrBadOp, uint8(k))
}

func (k *OpKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "add_node":
		*k = OpAddNode
	case "upsert_edge":
		*k = OpUpsertEdge
	case "delete_edge":
		*k = OpDeleteEdge
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadOp, s)
	}
	return nil
}

// ErrBadOp marks a structurally invalid mutation operation.
var ErrBadOp = errors.New("hin: invalid mutation op")

// Op is one mutation operation. AddNode uses Type and ID; the edge ops use
// Relation, Src, Dst (string node identifiers) and, for upserts, Weight.
type Op struct {
	Kind     OpKind  `json:"op"`
	Type     string  `json:"type,omitempty"`
	ID       string  `json:"id,omitempty"`
	Relation string  `json:"relation,omitempty"`
	Src      string  `json:"source,omitempty"`
	Dst      string  `json:"target,omitempty"`
	Weight   float64 `json:"weight,omitempty"`
}

// Dirty reports what a batch of deltas perturbed, in post-apply node
// indexing. Rows[r] holds the source-node indices of relation r whose
// outgoing edge set changed (the rows of the forward transition matrix that
// must be recomputed); Cols[r] holds the target-node indices whose incoming
// edge set changed (the rows of the inverse transition matrix). Grown names
// the node types that gained nodes — existing transition rows are
// untouched by growth, but matrices over a grown type need padding.
// EdgesChanged marks relations whose instance set changed at all: the
// middle-relation decomposition of odd paths (Definition 6) indexes columns
// by relation instance, so any instance change invalidates those chains
// wholesale.
type Dirty struct {
	Rows         map[string][]int
	Cols         map[string][]int
	Grown        map[string]bool
	EdgesChanged map[string]bool
}

func newDirty() *Dirty {
	return &Dirty{
		Rows:         make(map[string][]int),
		Cols:         make(map[string][]int),
		Grown:        make(map[string]bool),
		EdgesChanged: make(map[string]bool),
	}
}

// Touches reports whether the relation's transition rows changed in either
// direction.
func (d *Dirty) Touches(rel string) bool { return d.EdgesChanged[rel] }

// edgeKey addresses one cell of a relation's adjacency.
type edgeKey struct{ src, dst int }

// Apply returns a new graph with the ops applied in order, plus the dirty
// summary, leaving the receiver untouched. Node tables and adjacency
// matrices of unaffected types and relations are shared between the two
// graphs, so the cost of a delta is proportional to the touched relations,
// not the graph. Any invalid op fails the whole batch with no effect —
// mutation batches are all-or-nothing.
func (g *Graph) Apply(ops []Op) (*Graph, *Dirty, error) {
	if len(ops) == 0 {
		return nil, nil, fmt.Errorf("%w: empty batch", ErrBadOp)
	}
	ng := &Graph{
		schema: g.schema,
		nodes:  make(map[string][]string, len(g.nodes)),
		index:  make(map[string]map[string]int, len(g.index)),
		adj:    make(map[string]*sparse.Matrix, len(g.adj)),
	}
	for t, ids := range g.nodes {
		ng.nodes[t] = ids // shared until the type gains a node
	}
	for t, m := range g.index {
		ng.index[t] = m
	}
	for r, m := range g.adj {
		ng.adj[r] = m
	}

	d := newDirty()
	// Touched relations are edited as cell maps and rebuilt at the end;
	// dirtyRows/dirtyCols collect perturbed indices as sets.
	edits := make(map[string]map[edgeKey]float64)
	dirtyRows := make(map[string]map[int]bool)
	dirtyCols := make(map[string]map[int]bool)

	addNode := func(typeName, id string) (int, error) {
		if !ng.schema.HasType(typeName) {
			return 0, fmt.Errorf("%w: %q", ErrUnknownType, typeName)
		}
		if i, ok := ng.index[typeName][id]; ok {
			return i, nil
		}
		if id == "" {
			return 0, fmt.Errorf("%w: empty node id", ErrBadOp)
		}
		// First growth of this type: unshare its tables.
		if !d.Grown[typeName] {
			ng.nodes[typeName] = append([]string(nil), ng.nodes[typeName]...)
			idx := make(map[string]int, len(ng.index[typeName])+1)
			for k, v := range ng.index[typeName] {
				idx[k] = v
			}
			ng.index[typeName] = idx
			d.Grown[typeName] = true
		}
		i := len(ng.nodes[typeName])
		ng.nodes[typeName] = append(ng.nodes[typeName], id)
		ng.index[typeName][id] = i
		return i, nil
	}

	cells := func(rel string) map[edgeKey]float64 {
		if m, ok := edits[rel]; ok {
			return m
		}
		adj := g.adj[rel]
		m := make(map[edgeKey]float64, adj.NNZ())
		for _, t := range adj.Triplets() {
			m[edgeKey{t.Row, t.Col}] = t.Val
		}
		edits[rel] = m
		dirtyRows[rel] = make(map[int]bool)
		dirtyCols[rel] = make(map[int]bool)
		return m
	}

	for i, op := range ops {
		switch op.Kind {
		case OpAddNode:
			if _, err := addNode(op.Type, op.ID); err != nil {
				return nil, nil, fmt.Errorf("op %d (%s %s/%s): %w", i, op.Kind, op.Type, op.ID, err)
			}
		case OpUpsertEdge, OpDeleteEdge:
			rel, err := ng.schema.RelationByName(op.Relation)
			if err != nil {
				return nil, nil, fmt.Errorf("op %d (%s): %w", i, op.Kind, err)
			}
			if op.Kind == OpUpsertEdge {
				if op.Weight <= 0 || math.IsNaN(op.Weight) || math.IsInf(op.Weight, 0) {
					return nil, nil, fmt.Errorf("op %d: %w: edge %s(%s->%s) weight %v",
						i, ErrBadOp, op.Relation, op.Src, op.Dst, op.Weight)
				}
			}
			var s, t int
			if op.Kind == OpUpsertEdge {
				if s, err = addNode(rel.Source, op.Src); err == nil {
					t, err = addNode(rel.Target, op.Dst)
				}
			} else {
				if s, err = ng.NodeIndex(rel.Source, op.Src); err == nil {
					t, err = ng.NodeIndex(rel.Target, op.Dst)
				}
			}
			if err != nil {
				return nil, nil, fmt.Errorf("op %d (%s %s): %w", i, op.Kind, op.Relation, err)
			}
			m := cells(op.Relation)
			k := edgeKey{s, t}
			if op.Kind == OpDeleteEdge {
				if _, ok := m[k]; !ok {
					return nil, nil, fmt.Errorf("op %d: %w: %s(%s->%s) does not exist",
						i, ErrUnknownNode, op.Relation, op.Src, op.Dst)
				}
				delete(m, k)
			} else {
				m[k] = op.Weight
			}
			dirtyRows[op.Relation][s] = true
			dirtyCols[op.Relation][t] = true
			d.EdgesChanged[op.Relation] = true
		default:
			return nil, nil, fmt.Errorf("op %d: %w: kind %d", i, ErrBadOp, op.Kind)
		}
	}

	// Rebuild the touched relations from their edited cells; resize every
	// relation over a grown type (shared matrices stay shared otherwise).
	for _, rel := range ng.schema.Relations() {
		rows := len(ng.nodes[rel.Source])
		cols := len(ng.nodes[rel.Target])
		if m, ok := edits[rel.Name]; ok {
			ts := make([]sparse.Triplet, 0, len(m))
			for k, w := range m {
				ts = append(ts, sparse.Triplet{Row: k.src, Col: k.dst, Val: w})
			}
			ng.adj[rel.Name] = sparse.New(rows, cols, ts)
		} else if d.Grown[rel.Source] || d.Grown[rel.Target] {
			ng.adj[rel.Name] = ng.adj[rel.Name].Resize(rows, cols)
		}
	}
	for rel, set := range dirtyRows {
		d.Rows[rel] = sortedKeys(set)
	}
	for rel, set := range dirtyCols {
		d.Cols[rel] = sortedKeys(set)
	}
	return ng, d, nil
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
