package hin

import (
	"errors"
	"reflect"
	"testing"
)

func TestApplyUpsertReplacesWeight(t *testing.T) {
	g := toyGraph(t)
	ng, d, err := g.Apply([]Op{
		{Kind: OpUpsertEdge, Relation: "writes", Src: "Tom", Dst: "p1", Weight: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	adj, _ := ng.Adjacency("writes")
	if got := adj.At(0, 0); got != 3 {
		t.Errorf("upsert over existing edge: weight = %v, want 3 (replace, not sum)", got)
	}
	if old, _ := g.Adjacency("writes"); old.At(0, 0) != 1 {
		t.Error("Apply mutated the receiver graph")
	}
	if !reflect.DeepEqual(d.Rows["writes"], []int{0}) || !reflect.DeepEqual(d.Cols["writes"], []int{0}) {
		t.Errorf("dirty = rows %v cols %v, want [0]/[0]", d.Rows["writes"], d.Cols["writes"])
	}
	if len(d.Grown) != 0 {
		t.Errorf("no nodes added, but Grown = %v", d.Grown)
	}
}

// The central divergence guard: the applied graph must be indistinguishable
// from building the mutated graph cold — same fingerprint, hence bit-equal
// adjacency and node ordering.
func TestApplyMatchesColdRebuild(t *testing.T) {
	g := toyGraph(t)
	ng, d, err := g.Apply([]Op{
		{Kind: OpUpsertEdge, Relation: "writes", Src: "Carl", Dst: "p5", Weight: 2},
		{Kind: OpUpsertEdge, Relation: "published_in", Src: "p5", Dst: "SIGMOD10", Weight: 1},
		{Kind: OpDeleteEdge, Relation: "writes", Src: "Bob", Dst: "p4"},
		{Kind: OpAddNode, Type: "term", ID: "graphs"},
	})
	if err != nil {
		t.Fatal(err)
	}

	b := NewBuilder(bibSchema(t))
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddNode("author", "Bob") // edge deleted, node remains
	b.AddNode("paper", "p4")
	b.AddEdge("published_in", "p1", "KDD09")
	b.AddEdge("published_in", "p2", "KDD10")
	b.AddEdge("published_in", "p3", "SIGMOD10")
	b.AddEdge("published_in", "p4", "SIGMOD10")
	b.AddEdge("part_of", "KDD09", "KDD")
	b.AddEdge("part_of", "KDD10", "KDD")
	b.AddEdge("part_of", "SIGMOD10", "SIGMOD")
	b.AddWeightedEdge("writes", "Carl", "p5", 2)
	b.AddEdge("published_in", "p5", "SIGMOD10")
	b.AddNode("term", "graphs")
	cold := b.MustBuild()

	if ng.Fingerprint() != cold.Fingerprint() {
		t.Fatalf("applied fingerprint %016x != cold rebuild %016x", ng.Fingerprint(), cold.Fingerprint())
	}

	if !reflect.DeepEqual(d.Rows["writes"], []int{2, 3}) { // Bob=2, Carl=3
		t.Errorf("writes dirty rows = %v, want [2 3]", d.Rows["writes"])
	}
	if !reflect.DeepEqual(d.Cols["writes"], []int{3, 4}) { // p4=3, p5=4
		t.Errorf("writes dirty cols = %v, want [3 4]", d.Cols["writes"])
	}
	if !reflect.DeepEqual(d.Rows["published_in"], []int{4}) { // p5
		t.Errorf("published_in dirty rows = %v, want [4]", d.Rows["published_in"])
	}
	wantGrown := map[string]bool{"author": true, "paper": true, "term": true}
	if !reflect.DeepEqual(d.Grown, wantGrown) {
		t.Errorf("Grown = %v, want %v", d.Grown, wantGrown)
	}
	if d.Touches("part_of") {
		t.Error("part_of reported touched")
	}
}

func TestApplySharesUntouchedState(t *testing.T) {
	g := toyGraph(t)
	ng, _, err := g.Apply([]Op{
		{Kind: OpDeleteEdge, Relation: "writes", Src: "Bob", Dst: "p4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"published_in", "part_of", "mentions"} {
		oldA, _ := g.Adjacency(rel)
		newA, _ := ng.Adjacency(rel)
		if oldA != newA {
			t.Errorf("untouched relation %q was copied", rel)
		}
	}
	oldW, _ := g.Adjacency("writes")
	newW, _ := ng.Adjacency("writes")
	if oldW == newW {
		t.Error("touched relation shares its matrix with the old graph")
	}
	// No growth: node tables stay shared.
	if &g.nodes["author"][0] != &ng.nodes["author"][0] {
		t.Error("node table copied without growth")
	}
}

func TestApplyNodeGrowthPadsRelations(t *testing.T) {
	g := toyGraph(t)
	ng, d, err := g.Apply([]Op{
		{Kind: OpAddNode, Type: "paper", ID: "p9"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every relation over "paper" must be padded to the new dimension even
	// though its edges are untouched.
	for _, rel := range []string{"writes", "published_in", "mentions"} {
		adj, _ := ng.Adjacency(rel)
		r, c := adj.Dims()
		relMeta, _ := ng.Schema().RelationByName(rel)
		if wr, wc := ng.NodeCount(relMeta.Source), ng.NodeCount(relMeta.Target); r != wr || c != wc {
			t.Errorf("%s dims = %dx%d, want %dx%d", rel, r, c, wr, wc)
		}
	}
	if len(d.Rows) != 0 || len(d.EdgesChanged) != 0 {
		t.Errorf("node-only growth reported edge dirt: %v %v", d.Rows, d.EdgesChanged)
	}
	if !d.Grown["paper"] {
		t.Error("paper not reported grown")
	}
	// Idempotent: re-adding an existing node is a no-op with no dirt.
	ng2, d2, err := ng.Apply([]Op{{Kind: OpAddNode, Type: "paper", ID: "p9"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Grown) != 0 {
		t.Errorf("re-add reported growth: %v", d2.Grown)
	}
	if ng2.Fingerprint() != ng.Fingerprint() {
		t.Error("re-add changed the graph")
	}
}

func TestApplyRejectsInvalidOps(t *testing.T) {
	g := toyGraph(t)
	cases := []struct {
		name string
		ops  []Op
		want error
	}{
		{"empty batch", nil, ErrBadOp},
		{"unknown kind", []Op{{Kind: 0}}, ErrBadOp},
		{"unknown relation", []Op{{Kind: OpUpsertEdge, Relation: "cites", Src: "p1", Dst: "p2", Weight: 1}}, ErrUnknownRelation},
		{"unknown type", []Op{{Kind: OpAddNode, Type: "movie", ID: "m1"}}, ErrUnknownType},
		{"empty node id", []Op{{Kind: OpAddNode, Type: "author", ID: ""}}, ErrBadOp},
		{"zero weight", []Op{{Kind: OpUpsertEdge, Relation: "writes", Src: "Tom", Dst: "p1", Weight: 0}}, ErrBadOp},
		{"negative weight", []Op{{Kind: OpUpsertEdge, Relation: "writes", Src: "Tom", Dst: "p1", Weight: -1}}, ErrBadOp},
		{"delete missing edge", []Op{{Kind: OpDeleteEdge, Relation: "writes", Src: "Tom", Dst: "p3"}}, ErrUnknownNode},
		{"delete unknown node", []Op{{Kind: OpDeleteEdge, Relation: "writes", Src: "Zed", Dst: "p1"}}, ErrUnknownNode},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := g.Apply(tc.ops); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}

	// All-or-nothing: a failing op after a valid one yields an error and the
	// receiver is untouched.
	before := g.Fingerprint()
	_, _, err := g.Apply([]Op{
		{Kind: OpUpsertEdge, Relation: "writes", Src: "Tom", Dst: "p3", Weight: 1},
		{Kind: OpDeleteEdge, Relation: "writes", Src: "Tom", Dst: "p4"}, // no such edge
	})
	if err == nil {
		t.Fatal("batch with invalid tail op succeeded")
	}
	if g.Fingerprint() != before {
		t.Error("failed batch mutated the receiver")
	}
}
