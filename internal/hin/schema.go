// Package hin implements the heterogeneous information network data model of
// Definition 1 in the paper: a directed graph with an object-type mapping and
// a link-type mapping, described by a network schema S = (A, R) of entity
// types and relations.
//
// The package provides the schema (types and relations, with the inverse
// relation R^-1 implied for every relation R), a typed graph with string
// node identifiers and weighted adjacency per relation, and JSON
// (de)serialization. All relevance measures in this module (HeteSim and the
// baselines) operate on these graphs.
package hin

import (
	"errors"
	"fmt"
	"strings"
)

// Common errors returned by schema and graph lookups.
var (
	ErrUnknownType     = errors.New("hin: unknown node type")
	ErrUnknownRelation = errors.New("hin: unknown relation")
	ErrUnknownNode     = errors.New("hin: unknown node")
	ErrDuplicate       = errors.New("hin: duplicate definition")
	ErrAmbiguous       = errors.New("hin: ambiguous relation between types")
)

// NodeType describes one entity type in the schema. Abbrev is a single
// uppercase letter used in compact relevance-path notation (e.g. 'A' for
// author in the path "APVC"); it may be 0 when the type has no abbreviation.
type NodeType struct {
	Name   string
	Abbrev byte
}

// Relation describes a directed relation R: Source → Target in the schema.
// The inverse relation R^-1: Target → Source always exists implicitly
// (Section 3 of the paper); it is addressed by traversing a path step with
// Inverse set.
type Relation struct {
	Name   string
	Source string // source type name (R.S)
	Target string // target type name (R.T)
}

// Schema is the network schema S = (A, R): the set of node types and the set
// of relations among them. A Schema is immutable once passed to a Graph.
type Schema struct {
	types     []NodeType
	relations []Relation

	typeIdx   map[string]int
	abbrevIdx map[byte]int
	relIdx    map[string]int
	// pairRels[src][dst] lists indices of relations with that direction.
	pairRels map[string]map[string][]int
}

// NewSchema creates an empty schema.
func NewSchema() *Schema {
	return &Schema{
		typeIdx:   make(map[string]int),
		abbrevIdx: make(map[byte]int),
		relIdx:    make(map[string]int),
		pairRels:  make(map[string]map[string][]int),
	}
}

// AddType registers a node type. abbrev may be 0 for no compact-notation
// letter. It returns ErrDuplicate when the name or abbreviation is taken.
func (s *Schema) AddType(name string, abbrev byte) error {
	if name == "" {
		return fmt.Errorf("%w: empty type name", ErrUnknownType)
	}
	if _, ok := s.typeIdx[name]; ok {
		return fmt.Errorf("%w: type %q", ErrDuplicate, name)
	}
	if abbrev != 0 {
		if _, ok := s.abbrevIdx[abbrev]; ok {
			return fmt.Errorf("%w: abbreviation %q", ErrDuplicate, string(abbrev))
		}
		s.abbrevIdx[abbrev] = len(s.types)
	}
	s.typeIdx[name] = len(s.types)
	s.types = append(s.types, NodeType{Name: name, Abbrev: abbrev})
	return nil
}

// AddRelation registers a directed relation from source type to target type.
// Both types must already exist.
func (s *Schema) AddRelation(name, source, target string) error {
	if _, ok := s.relIdx[name]; ok {
		return fmt.Errorf("%w: relation %q", ErrDuplicate, name)
	}
	if _, ok := s.typeIdx[source]; !ok {
		return fmt.Errorf("%w: %q (source of relation %q)", ErrUnknownType, source, name)
	}
	if _, ok := s.typeIdx[target]; !ok {
		return fmt.Errorf("%w: %q (target of relation %q)", ErrUnknownType, target, name)
	}
	s.relIdx[name] = len(s.relations)
	s.relations = append(s.relations, Relation{Name: name, Source: source, Target: target})
	if s.pairRels[source] == nil {
		s.pairRels[source] = make(map[string][]int)
	}
	s.pairRels[source][target] = append(s.pairRels[source][target], len(s.relations)-1)
	return nil
}

// MustAddType is AddType but panics on error; intended for static schema
// construction in tests and generators.
func (s *Schema) MustAddType(name string, abbrev byte) {
	if err := s.AddType(name, abbrev); err != nil {
		panic(err)
	}
}

// MustAddRelation is AddRelation but panics on error.
func (s *Schema) MustAddRelation(name, source, target string) {
	if err := s.AddRelation(name, source, target); err != nil {
		panic(err)
	}
}

// Types returns the node types in registration order.
func (s *Schema) Types() []NodeType { return append([]NodeType(nil), s.types...) }

// Relations returns the relations in registration order.
func (s *Schema) Relations() []Relation { return append([]Relation(nil), s.relations...) }

// HasType reports whether a type with the given name exists.
func (s *Schema) HasType(name string) bool {
	_, ok := s.typeIdx[name]
	return ok
}

// TypeByAbbrev resolves a compact-notation letter to a type name.
func (s *Schema) TypeByAbbrev(abbrev byte) (string, error) {
	i, ok := s.abbrevIdx[abbrev]
	if !ok {
		return "", fmt.Errorf("%w: no type with abbreviation %q", ErrUnknownType, string(abbrev))
	}
	return s.types[i].Name, nil
}

// RelationByName returns the named relation.
func (s *Schema) RelationByName(name string) (Relation, error) {
	i, ok := s.relIdx[name]
	if !ok {
		return Relation{}, fmt.Errorf("%w: %q", ErrUnknownRelation, name)
	}
	return s.relations[i], nil
}

// RelationBetween resolves the unique relation connecting two types in
// either direction. The returned inverse flag is true when the relation runs
// target→source, i.e. the path step traverses R^-1. It fails with
// ErrAmbiguous when several relations connect the pair (use explicit
// relation names in the path instead) and ErrUnknownRelation when none does.
func (s *Schema) RelationBetween(from, to string) (rel Relation, inverse bool, err error) {
	fwd := s.pairRels[from][to]
	var bwd []int
	if from != to {
		bwd = s.pairRels[to][from]
	}
	switch {
	case len(fwd)+len(bwd) == 0:
		return Relation{}, false, fmt.Errorf("%w between %q and %q", ErrUnknownRelation, from, to)
	case len(fwd)+len(bwd) > 1:
		return Relation{}, false, fmt.Errorf("%w: %q and %q (name the relation explicitly)",
			ErrAmbiguous, from, to)
	case len(fwd) == 1:
		return s.relations[fwd[0]], false, nil
	default:
		return s.relations[bwd[0]], true, nil
	}
}

// String renders the schema compactly, e.g. for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString("types:")
	for _, t := range s.types {
		b.WriteByte(' ')
		b.WriteString(t.Name)
		if t.Abbrev != 0 {
			fmt.Fprintf(&b, "(%c)", t.Abbrev)
		}
	}
	b.WriteString("; relations:")
	for _, r := range s.relations {
		fmt.Fprintf(&b, " %s:%s->%s", r.Name, r.Source, r.Target)
	}
	return b.String()
}
