package hin

import (
	"fmt"
)

// Subgraph returns the induced subgraph on the given node subsets: for
// every type listed in keep, only the identified nodes survive (types not
// listed keep all their nodes), and every relation instance whose endpoints
// both survive is retained with its weight. Useful for carving a labeled
// or per-community slice out of a large network before running expensive
// all-pairs analyses.
func Subgraph(g *Graph, keep map[string][]string) (*Graph, error) {
	for typeName, ids := range keep {
		if !g.schema.HasType(typeName) {
			return nil, fmt.Errorf("%w: %q", ErrUnknownType, typeName)
		}
		for _, id := range ids {
			if !g.HasNode(typeName, id) {
				return nil, fmt.Errorf("%w: %s %q", ErrUnknownNode, typeName, id)
			}
		}
	}
	keepSet := make(map[string]map[string]bool, len(keep))
	for typeName, ids := range keep {
		set := make(map[string]bool, len(ids))
		for _, id := range ids {
			set[id] = true
		}
		keepSet[typeName] = set
	}
	survives := func(typeName, id string) bool {
		set, ok := keepSet[typeName]
		return !ok || set[id]
	}
	b := NewBuilder(g.schema)
	// Preserve surviving nodes (and their relative order) even when they
	// end up isolated.
	for _, t := range g.schema.Types() {
		for _, id := range g.nodes[t.Name] {
			if survives(t.Name, id) {
				b.AddNode(t.Name, id)
			}
		}
	}
	for _, rel := range g.schema.Relations() {
		adj := g.adj[rel.Name]
		for _, tr := range adj.Triplets() {
			src := g.nodes[rel.Source][tr.Row]
			dst := g.nodes[rel.Target][tr.Col]
			if survives(rel.Source, src) && survives(rel.Target, dst) {
				b.AddWeightedEdge(rel.Name, src, dst, tr.Val)
			}
		}
	}
	return b.Build()
}
