package hin

import (
	"errors"
	"testing"
)

func TestSubgraphInduced(t *testing.T) {
	g := toyGraph(t)
	sub, err := Subgraph(g, map[string][]string{
		"author": {"Tom", "Mary"},
		"paper":  {"p1", "p2", "p3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub.NodeCount("author"); got != 2 {
		t.Errorf("authors = %d, want 2", got)
	}
	if got := sub.NodeCount("paper"); got != 3 {
		t.Errorf("papers = %d, want 3", got)
	}
	// Unlisted types keep every node.
	if got := sub.NodeCount("conference"); got != g.NodeCount("conference") {
		t.Errorf("conferences = %d, want %d", got, g.NodeCount("conference"))
	}
	// Bob's edge to p4 is gone; Tom's edges survive.
	w, _ := sub.Adjacency("writes")
	if w.NNZ() != 4 {
		t.Errorf("writes edges = %d, want 4", w.NNZ())
	}
	if sub.HasNode("author", "Bob") || sub.HasNode("paper", "p4") {
		t.Error("dropped nodes survived")
	}
	// Published_in keeps only edges with surviving papers.
	pub, _ := sub.Adjacency("published_in")
	if pub.NNZ() != 3 {
		t.Errorf("published_in edges = %d, want 3", pub.NNZ())
	}
}

func TestSubgraphPreservesIsolatedSurvivors(t *testing.T) {
	g := toyGraph(t)
	// Keep Mary only: Tom's papers p1 keeps no surviving author, but p1
	// itself survives (papers not restricted) as does every conference.
	sub, err := Subgraph(g, map[string][]string{"author": {"Mary"}})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NodeCount("author") != 1 {
		t.Errorf("authors = %d", sub.NodeCount("author"))
	}
	if sub.NodeCount("paper") != g.NodeCount("paper") {
		t.Errorf("papers = %d, want all %d", sub.NodeCount("paper"), g.NodeCount("paper"))
	}
	w, _ := sub.Adjacency("writes")
	if w.NNZ() != 2 {
		t.Errorf("writes = %d, want Mary's 2", w.NNZ())
	}
}

func TestSubgraphValidation(t *testing.T) {
	g := toyGraph(t)
	if _, err := Subgraph(g, map[string][]string{"movie": {"x"}}); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type err = %v", err)
	}
	if _, err := Subgraph(g, map[string][]string{"author": {"Zed"}}); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown node err = %v", err)
	}
	// Empty keep map = identity copy.
	sub, err := Subgraph(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sub.TotalNodes() != g.TotalNodes() || sub.TotalEdges() != g.TotalEdges() {
		t.Error("identity subgraph changed the graph")
	}
}

func TestSubgraphPreservesWeights(t *testing.T) {
	b := NewBuilder(bibSchema(t))
	b.AddWeightedEdge("writes", "Tom", "p1", 2.5)
	b.AddEdge("writes", "Bob", "p1")
	g := b.MustBuild()
	sub, err := Subgraph(g, map[string][]string{"author": {"Tom"}})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := sub.Adjacency("writes")
	if got := w.At(0, 0); got != 2.5 {
		t.Errorf("weight = %v, want 2.5", got)
	}
}
