// Package learn implements supervised relevance-path selection, the third
// path-selection strategy discussed in Section 5.1 of the paper: "label a
// small portion of similar objects, and then train the relevance paths and
// their weights by some learning algorithms." Given candidate paths with
// common endpoint types and labeled object pairs, PathWeights fits
// non-negative per-path weights by projected gradient descent on squared
// loss, and Combined scores queries with the learned mixture.
package learn

import (
	"context"
	"errors"
	"fmt"
	"math"

	"hetesim/internal/core"
	"hetesim/internal/metapath"
)

// ErrBadInput marks invalid training inputs.
var ErrBadInput = errors.New("learn: bad input")

// Example is one labeled training pair: the relevance label (typically 1
// for related, 0 for unrelated, or any graded target) of a source/target
// node-index pair.
type Example struct {
	Src, Dst int
	Label    float64
}

// Config tunes the projected gradient fit.
type Config struct {
	LearnRate float64 // step size; default 0.5
	Iters     int     // gradient steps; default 2000
	L2        float64 // ridge penalty; default 1e-4
}

func (c *Config) defaults() {
	if c.LearnRate <= 0 {
		c.LearnRate = 0.5
	}
	if c.Iters <= 0 {
		c.Iters = 2000
	}
	if c.L2 < 0 {
		c.L2 = 0
	}
}

// PathWeights learns non-negative weights over candidate paths from labeled
// pairs, minimizing mean squared error with an L2 penalty under a w ≥ 0
// constraint. All paths must share the same source and target types. The
// returned weights align with the paths slice.
func PathWeights(ctx context.Context, e *core.Engine, paths []*metapath.Path, examples []Example, cfg Config) ([]float64, error) {
	features, labels, err := featurize(ctx, e, paths, examples)
	if err != nil {
		return nil, err
	}
	cfg.defaults()
	k := len(paths)
	n := len(examples)
	w := make([]float64, k)
	for i := range w {
		w[i] = 1 / float64(k)
	}
	grad := make([]float64, k)
	for it := 0; it < cfg.Iters; it++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i := range grad {
			grad[i] = cfg.L2 * w[i]
		}
		for ex := 0; ex < n; ex++ {
			var pred float64
			row := features[ex]
			for i := range w {
				pred += w[i] * row[i]
			}
			resid := (pred - labels[ex]) / float64(n)
			for i := range w {
				grad[i] += resid * row[i]
			}
		}
		for i := range w {
			w[i] -= cfg.LearnRate * grad[i]
			if w[i] < 0 {
				w[i] = 0
			}
		}
	}
	return w, nil
}

// featurize computes the per-example HeteSim scores along every candidate
// path, validating inputs.
func featurize(ctx context.Context, e *core.Engine, paths []*metapath.Path, examples []Example) ([][]float64, []float64, error) {
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("%w: no candidate paths", ErrBadInput)
	}
	if len(examples) == 0 {
		return nil, nil, fmt.Errorf("%w: no training examples", ErrBadInput)
	}
	src, dst := paths[0].Source(), paths[0].Target()
	for _, p := range paths[1:] {
		if p.Source() != src || p.Target() != dst {
			return nil, nil, fmt.Errorf("%w: path %s endpoints (%s,%s) differ from (%s,%s)",
				ErrBadInput, p, p.Source(), p.Target(), src, dst)
		}
	}
	for _, p := range paths {
		if err := e.Precompute(ctx, p); err != nil {
			return nil, nil, err
		}
	}
	features := make([][]float64, len(examples))
	labels := make([]float64, len(examples))
	for i, ex := range examples {
		// The engine polls ctx between propagation steps, but with every
		// path precomputed each PairByIndex is pure cached-vector work that
		// never reaches a poll — so a large example set must check here or
		// it would ignore cancellation entirely.
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		if math.IsNaN(ex.Label) || math.IsInf(ex.Label, 0) {
			return nil, nil, fmt.Errorf("%w: example %d has non-finite label", ErrBadInput, i)
		}
		row := make([]float64, len(paths))
		for k, p := range paths {
			v, err := e.PairByIndex(ctx, p, ex.Src, ex.Dst)
			if err != nil {
				return nil, nil, fmt.Errorf("learn: example %d on %s: %w", i, p, err)
			}
			row[k] = v
		}
		features[i] = row
		labels[i] = ex.Label
	}
	return features, labels, nil
}

// Combined scores object pairs with a learned weighted mixture of HeteSim
// over several relevance paths.
type Combined struct {
	engine  *core.Engine
	paths   []*metapath.Path
	weights []float64
}

// NewCombined builds a combined measure; weights must align with paths and
// be non-negative.
func NewCombined(e *core.Engine, paths []*metapath.Path, weights []float64) (*Combined, error) {
	if len(paths) == 0 || len(paths) != len(weights) {
		return nil, fmt.Errorf("%w: %d paths vs %d weights", ErrBadInput, len(paths), len(weights))
	}
	src, dst := paths[0].Source(), paths[0].Target()
	for _, p := range paths[1:] {
		if p.Source() != src || p.Target() != dst {
			return nil, fmt.Errorf("%w: mixed endpoint types", ErrBadInput)
		}
	}
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weight %d = %v", ErrBadInput, i, w)
		}
	}
	return &Combined{
		engine:  e,
		paths:   append([]*metapath.Path(nil), paths...),
		weights: append([]float64(nil), weights...),
	}, nil
}

// Weights returns a copy of the mixture weights.
func (c *Combined) Weights() []float64 { return append([]float64(nil), c.weights...) }

// PairByIndex returns the weighted relevance of one pair.
func (c *Combined) PairByIndex(ctx context.Context, src, dst int) (float64, error) {
	var s float64
	for k, p := range c.paths {
		if c.weights[k] == 0 {
			continue
		}
		v, err := c.engine.PairByIndex(ctx, p, src, dst)
		if err != nil {
			return 0, err
		}
		s += c.weights[k] * v
	}
	return s, nil
}

// SingleSourceByIndex returns the weighted relevance of one source against
// every target.
func (c *Combined) SingleSourceByIndex(ctx context.Context, src int) ([]float64, error) {
	var out []float64
	for k, p := range c.paths {
		if c.weights[k] == 0 {
			continue
		}
		v, err := c.engine.SingleSourceByIndex(ctx, p, src)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = make([]float64, len(v))
		}
		for j := range v {
			out[j] += c.weights[k] * v[j]
		}
	}
	if out == nil {
		out = make([]float64, c.engine.Graph().NodeCount(c.paths[0].Target()))
	}
	return out, nil
}
