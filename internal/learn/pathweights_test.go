package learn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"
	"time"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// testGraph builds a random author/paper/venue/conference network.
func testGraph(seed int64) *hin.Graph {
	rng := rand.New(rand.NewSource(seed))
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddType("term", 'T')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	s.MustAddRelation("mentions", "paper", "term")
	b := hin.NewBuilder(s)
	nA, nP, nV, nC, nT := 20, 50, 8, 4, 12
	for p := 0; p < nP; p++ {
		pid := "p" + strconv.Itoa(p)
		for k := 0; k < 1+rng.Intn(2); k++ {
			b.AddEdge("writes", "a"+strconv.Itoa(rng.Intn(nA)), pid)
		}
		b.AddEdge("published_in", pid, "v"+strconv.Itoa(rng.Intn(nV)))
		for k := 0; k < 1+rng.Intn(3); k++ {
			b.AddEdge("mentions", pid, "t"+strconv.Itoa(rng.Intn(nT)))
		}
	}
	for v := 0; v < nV; v++ {
		b.AddNode("venue", "v"+strconv.Itoa(v))
		b.AddEdge("part_of", "v"+strconv.Itoa(v), "c"+strconv.Itoa(rng.Intn(nC)))
	}
	return b.MustBuild()
}

// trainingSet builds examples whose labels are an exact mixture of the
// candidate path scores.
func trainingSet(t *testing.T, e *core.Engine, paths []*metapath.Path, mix []float64, n int, seed int64) []Example {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := e.Graph()
	nS := g.NodeCount(paths[0].Source())
	nT := g.NodeCount(paths[0].Target())
	out := make([]Example, 0, n)
	for len(out) < n {
		src, dst := rng.Intn(nS), rng.Intn(nT)
		var y float64
		for k, p := range paths {
			v, err := e.PairByIndex(context.Background(), p, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			y += mix[k] * v
		}
		out = append(out, Example{Src: src, Dst: dst, Label: y})
	}
	return out
}

func TestPathWeightsRecoversMixture(t *testing.T) {
	g := testGraph(1)
	e := core.NewEngine(g)
	paths := []*metapath.Path{
		metapath.MustParse(g.Schema(), "APVC"),
		metapath.MustParse(g.Schema(), "APTPVC"),
	}
	mix := []float64{0.7, 0.3}
	examples := trainingSet(t, e, paths, mix, 120, 2)
	w, err := PathWeights(context.Background(), e, paths, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range mix {
		if math.Abs(w[k]-mix[k]) > 0.1 {
			t.Errorf("weight %d = %v, want ~%v", k, w[k], mix[k])
		}
	}
}

func TestPathWeightsSelectsSinglePath(t *testing.T) {
	g := testGraph(3)
	e := core.NewEngine(g)
	paths := []*metapath.Path{
		metapath.MustParse(g.Schema(), "APVC"),
		metapath.MustParse(g.Schema(), "APTPVC"),
	}
	// Labels come from the first path only: the learner should zero out
	// (or nearly zero out) the second — the "automatic path selection"
	// use case of Section 5.1.
	examples := trainingSet(t, e, paths, []float64{1, 0}, 150, 4)
	w, err := PathWeights(context.Background(), e, paths, examples, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if w[0] < 0.8 {
		t.Errorf("w[0] = %v, want near 1", w[0])
	}
	if w[1] > 0.15 {
		t.Errorf("w[1] = %v, want near 0", w[1])
	}
}

// TestPathWeightsCancellation: a canceled or expired context stops both the
// per-example featurization loop and the gradient iterations promptly with
// the context's error, even though every per-example score is served from
// warm caches that never poll ctx themselves.
func TestPathWeightsCancellation(t *testing.T) {
	g := testGraph(13)
	e := core.NewEngine(g)
	paths := []*metapath.Path{
		metapath.MustParse(g.Schema(), "APVC"),
		metapath.MustParse(g.Schema(), "APTPVC"),
	}
	examples := trainingSet(t, e, paths, []float64{0.5, 0.5}, 40, 14)

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PathWeights(canceled, e, paths, examples, Config{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled ctx err = %v, want context.Canceled", err)
	}

	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := PathWeights(expired, e, paths, examples, Config{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired ctx err = %v, want context.DeadlineExceeded", err)
	}

	// The gradient loop checks too: cancel after featurization by racing a
	// huge iteration count against an already-short deadline.
	short, cancel3 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel3()
	_, err := PathWeights(short, e, paths, examples, Config{Iters: 1 << 30})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("mid-fit deadline err = %v, want context.DeadlineExceeded", err)
	}
}

func TestPathWeightsValidation(t *testing.T) {
	g := testGraph(5)
	e := core.NewEngine(g)
	apvc := metapath.MustParse(g.Schema(), "APVC")
	apt := metapath.MustParse(g.Schema(), "APT")
	exs := []Example{{0, 0, 1}}
	if _, err := PathWeights(context.Background(), e, nil, exs, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("no paths err = %v", err)
	}
	if _, err := PathWeights(context.Background(), e, []*metapath.Path{apvc}, nil, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("no examples err = %v", err)
	}
	if _, err := PathWeights(context.Background(), e, []*metapath.Path{apvc, apt}, exs, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("mixed endpoints err = %v", err)
	}
	if _, err := PathWeights(context.Background(), e, []*metapath.Path{apvc},
		[]Example{{0, 0, math.NaN()}}, Config{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("NaN label err = %v", err)
	}
	if _, err := PathWeights(context.Background(), e, []*metapath.Path{apvc},
		[]Example{{999, 0, 1}}, Config{}); !errors.Is(err, hin.ErrUnknownNode) {
		t.Errorf("bad index err = %v", err)
	}
}

func TestCombinedMeasure(t *testing.T) {
	g := testGraph(7)
	e := core.NewEngine(g)
	paths := []*metapath.Path{
		metapath.MustParse(g.Schema(), "APVC"),
		metapath.MustParse(g.Schema(), "APTPVC"),
	}
	c, err := NewCombined(e, paths, []float64{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := c.SingleSourceByIndex(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ss {
		pv, err := c.PairByIndex(context.Background(), 0, j)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pv-ss[j]) > 1e-12 {
			t.Fatalf("combined plans disagree at %d", j)
		}
		// Mixture equals the manual combination.
		v1, _ := e.PairByIndex(context.Background(), paths[0], 0, j)
		v2, _ := e.PairByIndex(context.Background(), paths[1], 0, j)
		if math.Abs(pv-(0.6*v1+0.4*v2)) > 1e-12 {
			t.Fatalf("combined score wrong at %d", j)
		}
	}
	if w := c.Weights(); len(w) != 2 || w[0] != 0.6 {
		t.Errorf("Weights = %v", w)
	}
}

func TestCombinedZeroWeightsGiveZeroScores(t *testing.T) {
	g := testGraph(9)
	e := core.NewEngine(g)
	paths := []*metapath.Path{metapath.MustParse(g.Schema(), "APVC")}
	c, err := NewCombined(e, paths, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := c.SingleSourceByIndex(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ss) != g.NodeCount("conference") {
		t.Fatalf("length = %d", len(ss))
	}
	for _, v := range ss {
		if v != 0 {
			t.Fatal("zero-weight mixture must score zero")
		}
	}
}

func TestNewCombinedValidation(t *testing.T) {
	g := testGraph(11)
	e := core.NewEngine(g)
	apvc := metapath.MustParse(g.Schema(), "APVC")
	apt := metapath.MustParse(g.Schema(), "APT")
	if _, err := NewCombined(e, nil, nil); !errors.Is(err, ErrBadInput) {
		t.Errorf("empty err = %v", err)
	}
	if _, err := NewCombined(e, []*metapath.Path{apvc}, []float64{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Errorf("length mismatch err = %v", err)
	}
	if _, err := NewCombined(e, []*metapath.Path{apvc, apt}, []float64{1, 1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("mixed endpoints err = %v", err)
	}
	if _, err := NewCombined(e, []*metapath.Path{apvc}, []float64{-1}); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative weight err = %v", err)
	}
}
