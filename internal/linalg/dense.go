// Package linalg provides the dense linear algebra needed by the clustering
// substrate: a small dense matrix type, Gram-Schmidt orthonormalization,
// a cyclic Jacobi eigensolver for full symmetric spectra, and orthogonal
// (subspace) iteration for the top-k eigenvectors of large symmetric
// matrices. The Normalized Cut spectral clustering used in the paper's
// Table 6 experiment builds on these.
package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense creates a zeroed rows×cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dims %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// DenseFromSlices builds a dense matrix from row slices (copied).
func DenseFromSlices(rows [][]float64) *Dense {
	r := len(rows)
	c := 0
	if r > 0 {
		c = len(rows[0])
	}
	d := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged input")
		}
		copy(d.data[i*c:(i+1)*c], row)
	}
	return d
}

// Dims returns (rows, cols).
func (d *Dense) Dims() (int, int) { return d.rows, d.cols }

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 { return d.data[i*d.cols+j] }

// Set assigns element (i, j).
func (d *Dense) Set(i, j int, v float64) { d.data[i*d.cols+j] = v }

// Row returns a view of row i (not a copy).
func (d *Dense) Row(i int) []float64 { return d.data[i*d.cols : (i+1)*d.cols] }

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.rows, d.cols)
	copy(out.data, d.data)
	return out
}

// Mul returns d * b.
func (d *Dense) Mul(b *Dense) *Dense {
	if d.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", d.rows, d.cols, b.rows, b.cols))
	}
	out := NewDense(d.rows, b.cols)
	for i := 0; i < d.rows; i++ {
		for k := 0; k < d.cols; k++ {
			a := d.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			orow := out.Row(i)
			for j := range brow {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the transposed matrix.
func (d *Dense) Transpose() *Dense {
	out := NewDense(d.cols, d.rows)
	for i := 0; i < d.rows; i++ {
		for j := 0; j < d.cols; j++ {
			out.Set(j, i, d.At(i, j))
		}
	}
	return out
}

// Orthonormalize performs modified Gram-Schmidt on the columns of d in
// place, returning the number of numerically independent columns kept;
// dependent columns are replaced with zeros.
func (d *Dense) Orthonormalize() int {
	kept := 0
	for j := 0; j < d.cols; j++ {
		// Subtract projections on previous columns.
		for p := 0; p < j; p++ {
			var dot float64
			for i := 0; i < d.rows; i++ {
				dot += d.At(i, j) * d.At(i, p)
			}
			for i := 0; i < d.rows; i++ {
				d.Set(i, j, d.At(i, j)-dot*d.At(i, p))
			}
		}
		var norm float64
		for i := 0; i < d.rows; i++ {
			norm += d.At(i, j) * d.At(i, j)
		}
		norm = math.Sqrt(norm)
		if norm < 1e-12 {
			for i := 0; i < d.rows; i++ {
				d.Set(i, j, 0)
			}
			continue
		}
		inv := 1 / norm
		for i := 0; i < d.rows; i++ {
			d.Set(i, j, d.At(i, j)*inv)
		}
		kept++
	}
	return kept
}

// IsSymmetric reports whether d is symmetric within tolerance tol.
func (d *Dense) IsSymmetric(tol float64) bool {
	if d.rows != d.cols {
		return false
	}
	for i := 0; i < d.rows; i++ {
		for j := i + 1; j < d.cols; j++ {
			if math.Abs(d.At(i, j)-d.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}
