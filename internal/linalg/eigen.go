package linalg

import (
	"context"
	"fmt"
	"math"
	"sort"
)

// Eigen holds an eigendecomposition: Values[i] is the i-th eigenvalue and
// the i-th column of Vectors the corresponding unit eigenvector. Values are
// sorted in descending order.
type Eigen struct {
	Values  []float64
	Vectors *Dense // rows×k, column i ↔ Values[i]
}

// JacobiEigen computes the full spectrum of a symmetric matrix with the
// cyclic Jacobi method. It is exact (to rounding) and robust, with O(n³)
// per sweep cost — suitable for the dense similarity matrices of the
// clustering experiments (hundreds to a few thousand rows).
func JacobiEigen(a *Dense, maxSweeps int) (Eigen, error) {
	n, m := a.Dims()
	if n != m {
		return Eigen{}, fmt.Errorf("linalg: JacobiEigen needs square matrix, got %dx%d", n, m)
	}
	if !a.IsSymmetric(1e-9) {
		return Eigen{}, fmt.Errorf("linalg: JacobiEigen needs symmetric matrix")
	}
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	w := a.Clone()
	v := NewDense(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q of w.
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns accordingly.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] > vals[order[j]] })
	sortedVals := make([]float64, n)
	vecs := NewDense(n, n)
	for c, o := range order {
		sortedVals[c] = vals[o]
		for r := 0; r < n; r++ {
			vecs.Set(r, c, v.At(r, o))
		}
	}
	return Eigen{Values: sortedVals, Vectors: vecs}, nil
}

// MulVecFunc abstracts the matrix in iterative eigensolvers: it writes A·x
// into dst. This lets orthogonal iteration run on sparse operators without
// densifying them.
type MulVecFunc func(dst, x []float64)

// TopKEigen computes the k algebraically largest eigenpairs of a symmetric
// operator of dimension n using shifted orthogonal (subspace) iteration.
// The operator's eigenvalues must lie in [lo, hi]; the shift A - lo·I makes
// the target eigenvalues the largest in magnitude so that subspace
// iteration converges to them. Normalized-cut affinity matrices have
// spectra in [-1, 1], so callers pass lo = -1, hi = 1.
//
// seedVecs supplies the deterministic starting block (n×k, column-major
// as a Dense); callers seed it from their own RNG for reproducibility.
//
// The context is polled between iterations so long factorizations of large
// operators abort promptly on cancellation or deadline expiry.
func TopKEigen(ctx context.Context, n, k int, mulVec MulVecFunc, lo float64, seedVecs *Dense, iters int) (Eigen, error) {
	if k <= 0 || k > n {
		return Eigen{}, fmt.Errorf("linalg: TopKEigen k=%d outside [1,%d]", k, n)
	}
	sr, sc := seedVecs.Dims()
	if sr != n || sc != k {
		return Eigen{}, fmt.Errorf("linalg: seed block is %dx%d, want %dx%d", sr, sc, n, k)
	}
	if iters <= 0 {
		iters = 100
	}
	q := seedVecs.Clone()
	q.Orthonormalize()
	tmp := make([]float64, n)
	x := make([]float64, n)
	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return Eigen{}, err
		}
		next := NewDense(n, k)
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				x[i] = q.At(i, j)
			}
			mulVec(tmp, x)
			for i := 0; i < n; i++ {
				// Shift by -lo so the top of the spectrum dominates.
				next.Set(i, j, tmp[i]-lo*x[i])
			}
		}
		next.Orthonormalize()
		q = next
	}
	// Rayleigh quotients give the eigenvalue estimates (unshifted).
	vals := make([]float64, k)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			x[i] = q.At(i, j)
		}
		mulVec(tmp, x)
		var num float64
		for i := 0; i < n; i++ {
			num += x[i] * tmp[i]
		}
		vals[j] = num
	}
	// Order by descending eigenvalue (orthonormalization can permute).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })
	outVals := make([]float64, k)
	outVecs := NewDense(n, k)
	for c, o := range order {
		outVals[c] = vals[o]
		for r := 0; r < n; r++ {
			outVecs.Set(r, c, q.At(r, o))
		}
	}
	return Eigen{Values: outVals, Vectors: outVecs}, nil
}
