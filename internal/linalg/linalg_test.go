package linalg

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseBasics(t *testing.T) {
	d := NewDense(2, 3)
	d.Set(0, 1, 5)
	d.Set(1, 2, -2)
	if d.At(0, 1) != 5 || d.At(1, 2) != -2 || d.At(0, 0) != 0 {
		t.Error("At/Set wrong")
	}
	r, c := d.Dims()
	if r != 2 || c != 3 {
		t.Errorf("Dims = %d,%d", r, c)
	}
	row := d.Row(0)
	row[0] = 9 // views alias storage
	if d.At(0, 0) != 9 {
		t.Error("Row must be a view")
	}
	cl := d.Clone()
	cl.Set(0, 0, 0)
	if d.At(0, 0) != 9 {
		t.Error("Clone must not alias")
	}
}

func TestDenseFromSlicesAndMul(t *testing.T) {
	a := DenseFromSlices([][]float64{{1, 2}, {3, 4}})
	b := DenseFromSlices([][]float64{{0, 1}, {1, 0}})
	got := a.Mul(b)
	want := [][]float64{{2, 1}, {4, 3}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if got.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
	tr := a.Transpose()
	if tr.At(0, 1) != 3 || tr.At(1, 0) != 2 {
		t.Error("Transpose wrong")
	}
}

func TestOrthonormalize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(10, 4)
	for i := 0; i < 10; i++ {
		for j := 0; j < 4; j++ {
			d.Set(i, j, rng.NormFloat64())
		}
	}
	kept := d.Orthonormalize()
	if kept != 4 {
		t.Fatalf("kept %d of 4 random columns", kept)
	}
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			var dot float64
			for i := 0; i < 10; i++ {
				dot += d.At(i, a) * d.At(i, b)
			}
			want := 0.0
			if a == b {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Errorf("col %d · col %d = %v, want %v", a, b, dot, want)
			}
		}
	}
	// A dependent column is zeroed.
	dep := NewDense(3, 2)
	for i := 0; i < 3; i++ {
		dep.Set(i, 0, float64(i+1))
		dep.Set(i, 1, 2*float64(i+1))
	}
	if kept := dep.Orthonormalize(); kept != 1 {
		t.Errorf("kept = %d, want 1", kept)
	}
	for i := 0; i < 3; i++ {
		if dep.At(i, 1) != 0 {
			t.Error("dependent column not zeroed")
		}
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Dense {
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			d.Set(i, j, v)
			d.Set(j, i, v)
		}
	}
	return d
}

func TestJacobiEigenReconstructs(t *testing.T) {
	// A = V diag(λ) V' must reconstruct the input.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randomSymmetric(rng, n)
		eig, err := JacobiEigen(a, 0)
		if err != nil {
			return false
		}
		// Check descending order.
		for i := 1; i < n; i++ {
			if eig.Values[i] > eig.Values[i-1]+1e-10 {
				return false
			}
		}
		// Reconstruct.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += eig.Vectors.At(i, k) * eig.Values[k] * eig.Vectors.At(j, k)
				}
				if math.Abs(s-a.At(i, j)) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestJacobiEigenKnownSpectrum(t *testing.T) {
	a := DenseFromSlices([][]float64{{2, 1}, {1, 2}})
	eig, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig.Values[0]-3) > 1e-10 || math.Abs(eig.Values[1]-1) > 1e-10 {
		t.Errorf("eigenvalues = %v, want [3 1]", eig.Values)
	}
}

func TestJacobiEigenRejectsBadInput(t *testing.T) {
	if _, err := JacobiEigen(NewDense(2, 3), 0); err == nil {
		t.Error("non-square accepted")
	}
	ns := DenseFromSlices([][]float64{{0, 1}, {2, 0}})
	if _, err := JacobiEigen(ns, 0); err == nil {
		t.Error("asymmetric accepted")
	}
}

func TestTopKEigenMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 12
	// Build a symmetric matrix with spectrum in [-1, 1] (like a
	// normalized affinity matrix).
	a := randomSymmetric(rng, n)
	full, err := JacobiEigen(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	maxAbs := math.Max(math.Abs(full.Values[0]), math.Abs(full.Values[n-1]))
	scaled := a.Clone()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			scaled.Set(i, j, a.At(i, j)/maxAbs)
		}
	}
	fullScaled, _ := JacobiEigen(scaled, 0)

	k := 3
	seed := NewDense(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			seed.Set(i, j, rng.NormFloat64())
		}
	}
	mul := func(dst, x []float64) {
		for i := 0; i < n; i++ {
			var s float64
			for j := 0; j < n; j++ {
				s += scaled.At(i, j) * x[j]
			}
			dst[i] = s
		}
	}
	eig, err := TopKEigen(context.Background(), n, k, mul, -1, seed, 400)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if math.Abs(eig.Values[i]-fullScaled.Values[i]) > 1e-6 {
			t.Errorf("top-%d eigenvalue = %v, want %v", i, eig.Values[i], fullScaled.Values[i])
		}
	}
	// Eigenvector check up to sign: |<v_est, v_true>| ≈ 1. Only valid
	// when the eigenvalue is simple; random spectra are simple a.s.
	for i := 0; i < k; i++ {
		var dot float64
		for r := 0; r < n; r++ {
			dot += eig.Vectors.At(r, i) * fullScaled.Vectors.At(r, i)
		}
		if math.Abs(math.Abs(dot)-1) > 1e-5 {
			t.Errorf("eigenvector %d misaligned: |dot| = %v", i, math.Abs(dot))
		}
	}
}

func TestTopKEigenValidation(t *testing.T) {
	seed := NewDense(4, 2)
	mul := func(dst, x []float64) { copy(dst, x) }
	if _, err := TopKEigen(context.Background(), 4, 0, mul, -1, seed, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopKEigen(context.Background(), 4, 5, mul, -1, seed, 10); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := TopKEigen(context.Background(), 5, 2, mul, -1, seed, 10); err == nil {
		t.Error("seed shape mismatch accepted")
	}
}

func TestTopKEigenCancellation(t *testing.T) {
	n, k := 64, 4
	rng := rand.New(rand.NewSource(11))
	seed := NewDense(n, k)
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			seed.Set(i, j, rng.NormFloat64())
		}
	}
	mul := func(dst, x []float64) { copy(dst, x) }
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopKEigen(ctx, n, k, mul, -1, seed, 1000); err == nil {
		t.Fatal("cancelled context accepted")
	} else if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestIsSymmetric(t *testing.T) {
	s := DenseFromSlices([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric not detected")
	}
	a := DenseFromSlices([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Error("asymmetric accepted")
	}
	if NewDense(2, 3).IsSymmetric(1) {
		t.Error("non-square accepted")
	}
}
