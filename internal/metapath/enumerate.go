package metapath

import (
	"fmt"
	"sort"
	"strings"

	"hetesim/internal/hin"
)

// EnumerateOptions tunes EnumerateWith.
type EnumerateOptions struct {
	MaxLen   int // longest path length (relations) to enumerate; must be >= 1
	MaxPaths int // cap on returned paths; 0 = no cap

	// DedupReverse drops one member of every reversal-equivalent pair when
	// the endpoints coincide: P and P^-1 define the same composite relation
	// read in opposite directions, and a symmetric measure like HeteSim
	// scores them identically (Property 3), so an ensemble that kept both
	// would double-count the path. The kept representative is the one whose
	// canonical signature sorts first; symmetric paths (P == P^-1) are
	// unaffected.
	DedupReverse bool
}

// Enumerate returns every relevance path from type `from` to type `to` of
// length at most maxLen, shortest first. It is EnumerateWith with only the
// length and count bounds set.
func Enumerate(schema *hin.Schema, from, to string, maxLen, maxPaths int) ([]*Path, error) {
	return EnumerateWith(schema, from, to, EnumerateOptions{MaxLen: maxLen, MaxPaths: maxPaths})
}

// EnumerateWith returns the schema-valid relevance paths from type `from` to
// type `to` under o, in a deterministic canonical order: shortest paths
// first, and paths of equal length ordered by their step signature (relation
// names with a direction marker). The order depends only on the schema's
// relations, never on map iteration or declaration incidentals, so ensemble
// results built on the enumeration are stable across runs.
//
// Each schema relation can be traversed in both directions; paths may
// revisit types (e.g. APA, APVCVPA), so MaxLen bounds the search. This
// implements the candidate-generation side of the paper's Section 5.1
// path-selection discussion: enumerate plausible paths, then pick by domain
// knowledge or learn weights over them (package learn).
//
// The number of paths grows exponentially with MaxLen; MaxPaths caps the
// result (0 means no cap).
func EnumerateWith(schema *hin.Schema, from, to string, o EnumerateOptions) ([]*Path, error) {
	if !schema.HasType(from) {
		return nil, fmt.Errorf("metapath: %w: %q", hin.ErrUnknownType, from)
	}
	if !schema.HasType(to) {
		return nil, fmt.Errorf("metapath: %w: %q", hin.ErrUnknownType, to)
	}
	if o.MaxLen < 1 {
		return nil, fmt.Errorf("%w: maxLen %d", ErrBadSyntax, o.MaxLen)
	}
	// All traversable steps per departure type.
	stepsFrom := make(map[string][]Step)
	for _, rel := range schema.Relations() {
		stepsFrom[rel.Source] = append(stepsFrom[rel.Source], Step{Relation: rel})
		stepsFrom[rel.Target] = append(stepsFrom[rel.Target], Step{Relation: rel, Inverse: true})
	}
	// A reversed path shares its endpoints only when they coincide, so the
	// reversal dedup can only ever apply to from == to enumerations.
	dedup := o.DedupReverse && from == to
	var out []*Path
	type state struct {
		at    string
		steps []Step
	}
	frontier := []state{{at: from}}
	for depth := 1; depth <= o.MaxLen && len(frontier) > 0; depth++ {
		var next []state
		var found []*Path
		for _, st := range frontier {
			for _, s := range stepsFrom[st.at] {
				chain := make([]Step, len(st.steps)+1)
				copy(chain, st.steps)
				chain[len(st.steps)] = s
				if s.To() == to {
					p, err := New(schema, chain)
					if err != nil {
						return nil, err
					}
					found = append(found, p)
				}
				if depth < o.MaxLen {
					next = append(next, state{at: s.To(), steps: chain})
				}
			}
		}
		// Canonical within-depth order; dedup and the cap apply after the
		// sort so both are deterministic too.
		sort.Slice(found, func(i, j int) bool { return signature(found[i]) < signature(found[j]) })
		for _, p := range found {
			if dedup && signature(p.Reverse()) < signature(p) {
				continue
			}
			out = append(out, p)
			if o.MaxPaths > 0 && len(out) >= o.MaxPaths {
				return out, nil
			}
		}
		frontier = next
	}
	return out, nil
}

// signature is a path's canonical sort key: the step relation names joined
// in order, inverse traversals marked. Unlike String() it never depends on
// abbreviation round-trips, and two paths share a signature exactly when
// they are Equal.
func signature(p *Path) string {
	var b strings.Builder
	for i, s := range p.steps {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(s.Relation.Name)
		if s.Inverse {
			b.WriteByte('~')
		}
	}
	return b.String()
}
