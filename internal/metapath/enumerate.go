package metapath

import (
	"fmt"

	"hetesim/internal/hin"
)

// Enumerate returns every relevance path from type `from` to type `to` of
// length at most maxLen, in breadth-first (shortest-first) order. Each
// schema relation can be traversed in both directions; paths may revisit
// types (e.g. APA, APVCVPA), so maxLen bounds the search. This implements
// the candidate-generation side of the paper's Section 5.1 path-selection
// discussion: enumerate plausible paths, then pick by domain knowledge or
// learn weights over them (package learn).
//
// The number of paths grows exponentially with maxLen; maxPaths caps the
// result (0 means no cap).
func Enumerate(schema *hin.Schema, from, to string, maxLen, maxPaths int) ([]*Path, error) {
	if !schema.HasType(from) {
		return nil, fmt.Errorf("metapath: %w: %q", hin.ErrUnknownType, from)
	}
	if !schema.HasType(to) {
		return nil, fmt.Errorf("metapath: %w: %q", hin.ErrUnknownType, to)
	}
	if maxLen < 1 {
		return nil, fmt.Errorf("%w: maxLen %d", ErrBadSyntax, maxLen)
	}
	// All traversable steps per departure type.
	stepsFrom := make(map[string][]Step)
	for _, rel := range schema.Relations() {
		stepsFrom[rel.Source] = append(stepsFrom[rel.Source], Step{Relation: rel})
		stepsFrom[rel.Target] = append(stepsFrom[rel.Target], Step{Relation: rel, Inverse: true})
	}
	var out []*Path
	type state struct {
		at    string
		steps []Step
	}
	frontier := []state{{at: from}}
	for depth := 1; depth <= maxLen && len(frontier) > 0; depth++ {
		var next []state
		for _, st := range frontier {
			for _, s := range stepsFrom[st.at] {
				chain := make([]Step, len(st.steps)+1)
				copy(chain, st.steps)
				chain[len(st.steps)] = s
				if s.To() == to {
					p, err := New(schema, chain)
					if err != nil {
						return nil, err
					}
					out = append(out, p)
					if maxPaths > 0 && len(out) >= maxPaths {
						return out, nil
					}
				}
				if depth < maxLen {
					next = append(next, state{at: s.To(), steps: chain})
				}
			}
		}
		frontier = next
	}
	return out, nil
}
