package metapath

import (
	"errors"
	"testing"

	"hetesim/internal/hin"
)

func TestEnumerateShortPaths(t *testing.T) {
	s := acmSchema(t)
	paths, err := Enumerate(s, "author", "conference", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The only length-3 author→conference path in the ACM schema is APVC
	// (author→paper→venue→conference); nothing shorter exists.
	if len(paths) != 1 {
		t.Fatalf("paths = %v, want exactly [APVC]", paths)
	}
	if paths[0].String() != "APVC" {
		t.Errorf("path = %s, want APVC", paths[0])
	}
}

func TestEnumerateFindsKnownFamilies(t *testing.T) {
	s := acmSchema(t)
	paths, err := Enumerate(s, "author", "author", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"APA": false, "APTPA": false, "APSPA": false, "AFA": false}
	for _, p := range paths {
		if _, ok := want[p.String()]; ok {
			want[p.String()] = true
		}
		if p.Source() != "author" || p.Target() != "author" {
			t.Errorf("path %s has wrong endpoints", p)
		}
		if p.Len() > 4 {
			t.Errorf("path %s exceeds maxLen", p)
		}
	}
	for spec, found := range want {
		if !found {
			t.Errorf("missing expected path %s", spec)
		}
	}
	// Shortest-first ordering: the first hit is length 2.
	if paths[0].Len() != 2 {
		t.Errorf("first path %s has length %d, want 2", paths[0], paths[0].Len())
	}
}

func TestEnumerateMaxPathsCap(t *testing.T) {
	s := acmSchema(t)
	paths, err := Enumerate(s, "author", "author", 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Errorf("capped paths = %d, want 5", len(paths))
	}
}

// TestEnumerateCanonicalOrder: within a depth, paths come back sorted by
// their step signature — an order that depends only on the schema, not on
// declaration incidentals — and the whole result is shortest-first.
func TestEnumerateCanonicalOrder(t *testing.T) {
	s := acmSchema(t)
	paths, err := Enumerate(s, "author", "author", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(paths); i++ {
		if paths[i-1].Len() > paths[i].Len() {
			t.Fatalf("paths not shortest-first: %s (len %d) before %s (len %d)",
				paths[i-1], paths[i-1].Len(), paths[i], paths[i].Len())
		}
		if paths[i-1].Len() == paths[i].Len() &&
			signature(paths[i-1]) >= signature(paths[i]) {
			t.Fatalf("depth %d not in canonical order: %q before %q",
				paths[i].Len(), signature(paths[i-1]), signature(paths[i]))
		}
	}
	// The two length-2 author→author paths sort affiliated_with < writes.
	if len(paths) < 2 || paths[0].String() != "AFA" || paths[1].String() != "APA" {
		t.Fatalf("length-2 prefix = %v, want [AFA APA]", paths[:2])
	}
}

// TestEnumerateDedupReverse: with DedupReverse, exactly one of every
// reversal-equivalent pair survives (the signature-first one) while
// symmetric paths are untouched.
func TestEnumerateDedupReverse(t *testing.T) {
	s := acmSchema(t)
	all, err := EnumerateWith(s, "author", "author", EnumerateOptions{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	deduped, err := EnumerateWith(s, "author", "author", EnumerateOptions{MaxLen: 4, DedupReverse: true})
	if err != nil {
		t.Fatal(err)
	}
	has := func(ps []*Path, spec string) bool {
		for _, p := range ps {
			if p.String() == spec {
				return true
			}
		}
		return false
	}
	// AFAPA and APAFA are each other's reverses; the full enumeration has
	// both, the deduped one keeps only the signature-first member.
	if !has(all, "AFAPA") || !has(all, "APAFA") {
		t.Fatalf("full enumeration misses the AFAPA/APAFA pair: %v", all)
	}
	if has(deduped, "AFAPA") == has(deduped, "APAFA") {
		t.Errorf("dedup kept %v of the AFAPA/APAFA pair, want exactly one", deduped)
	}
	// Symmetric paths survive dedup.
	for _, spec := range []string{"APA", "AFA", "APTPA", "APSPA", "APVPA"} {
		if !has(deduped, spec) {
			t.Errorf("dedup dropped symmetric path %s", spec)
		}
	}
	// Every dropped path's reverse is present; nothing else changed.
	for _, p := range all {
		if !has(deduped, p.String()) && !has(deduped, p.Reverse().String()) {
			t.Errorf("path %s dropped without its reverse surviving", p)
		}
	}
	// Endpoints differing: dedup is a no-op (the reverse is not in the set).
	ac, err := EnumerateWith(s, "author", "conference", EnumerateOptions{MaxLen: 4, DedupReverse: true})
	if err != nil {
		t.Fatal(err)
	}
	acAll, err := EnumerateWith(s, "author", "conference", EnumerateOptions{MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ac) != len(acAll) {
		t.Errorf("dedup changed a from!=to enumeration: %d vs %d paths", len(ac), len(acAll))
	}
}

func TestEnumerateErrors(t *testing.T) {
	s := acmSchema(t)
	if _, err := Enumerate(s, "movie", "author", 3, 0); !errors.Is(err, hin.ErrUnknownType) {
		t.Errorf("unknown from err = %v", err)
	}
	if _, err := Enumerate(s, "author", "movie", 3, 0); !errors.Is(err, hin.ErrUnknownType) {
		t.Errorf("unknown to err = %v", err)
	}
	if _, err := Enumerate(s, "author", "paper", 0, 0); !errors.Is(err, ErrBadSyntax) {
		t.Errorf("bad maxLen err = %v", err)
	}
}

func TestEnumerateUnreachable(t *testing.T) {
	s := hin.NewSchema()
	s.MustAddType("a", 'A')
	s.MustAddType("b", 'B')
	s.MustAddType("c", 'C')
	s.MustAddRelation("r", "a", "b") // c is isolated
	paths, err := Enumerate(s, "a", "c", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Errorf("paths to isolated type = %v", paths)
	}
}
