package metapath

import (
	"errors"
	"testing"

	"hetesim/internal/hin"
)

func TestEnumerateShortPaths(t *testing.T) {
	s := acmSchema(t)
	paths, err := Enumerate(s, "author", "conference", 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The only length-3 author→conference path in the ACM schema is APVC
	// (author→paper→venue→conference); nothing shorter exists.
	if len(paths) != 1 {
		t.Fatalf("paths = %v, want exactly [APVC]", paths)
	}
	if paths[0].String() != "APVC" {
		t.Errorf("path = %s, want APVC", paths[0])
	}
}

func TestEnumerateFindsKnownFamilies(t *testing.T) {
	s := acmSchema(t)
	paths, err := Enumerate(s, "author", "author", 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"APA": false, "APTPA": false, "APSPA": false, "AFA": false}
	for _, p := range paths {
		if _, ok := want[p.String()]; ok {
			want[p.String()] = true
		}
		if p.Source() != "author" || p.Target() != "author" {
			t.Errorf("path %s has wrong endpoints", p)
		}
		if p.Len() > 4 {
			t.Errorf("path %s exceeds maxLen", p)
		}
	}
	for spec, found := range want {
		if !found {
			t.Errorf("missing expected path %s", spec)
		}
	}
	// Shortest-first ordering: the first hit is length 2.
	if paths[0].Len() != 2 {
		t.Errorf("first path %s has length %d, want 2", paths[0], paths[0].Len())
	}
}

func TestEnumerateMaxPathsCap(t *testing.T) {
	s := acmSchema(t)
	paths, err := Enumerate(s, "author", "author", 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Errorf("capped paths = %d, want 5", len(paths))
	}
}

func TestEnumerateErrors(t *testing.T) {
	s := acmSchema(t)
	if _, err := Enumerate(s, "movie", "author", 3, 0); !errors.Is(err, hin.ErrUnknownType) {
		t.Errorf("unknown from err = %v", err)
	}
	if _, err := Enumerate(s, "author", "movie", 3, 0); !errors.Is(err, hin.ErrUnknownType) {
		t.Errorf("unknown to err = %v", err)
	}
	if _, err := Enumerate(s, "author", "paper", 0, 0); !errors.Is(err, ErrBadSyntax) {
		t.Errorf("bad maxLen err = %v", err)
	}
}

func TestEnumerateUnreachable(t *testing.T) {
	s := hin.NewSchema()
	s.MustAddType("a", 'A')
	s.MustAddType("b", 'B')
	s.MustAddType("c", 'C')
	s.MustAddRelation("r", "a", "b") // c is isolated
	paths, err := Enumerate(s, "a", "c", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 0 {
		t.Errorf("paths to isolated type = %v", paths)
	}
}
