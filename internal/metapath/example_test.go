package metapath_test

import (
	"fmt"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

func exampleSchema() *hin.Schema {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	return s
}

func ExampleParse() {
	s := exampleSchema()
	p, err := metapath.Parse(s, "APVC")
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Source(), "->", p.Target(), "in", p.Len(), "steps")
	// Output: author -> conference in 3 steps
}

func ExampleParse_verbose() {
	s := exampleSchema()
	p, _ := metapath.Parse(s, "author>paper>venue")
	fmt.Println(p)
	// Output: APV
}

func ExamplePath_Reverse() {
	s := exampleSchema()
	p, _ := metapath.Parse(s, "APVC")
	fmt.Println(p.Reverse())
	// Output: CVPA
}

func ExamplePath_IsSymmetric() {
	s := exampleSchema()
	apa, _ := metapath.Parse(s, "APA")
	apvc, _ := metapath.Parse(s, "APVC")
	fmt.Println(apa.IsSymmetric(), apvc.IsSymmetric())
	// Output: true false
}

func ExamplePath_Decompose() {
	s := exampleSchema()
	p, _ := metapath.Parse(s, "APVC") // odd length: middle atomic relation
	d := p.Decompose()
	fmt.Println(len(d.Left), d.Middle.Relation.Name, len(d.Right))
	// Output: 1 published_in 1
}

func ExampleEnumerate() {
	s := exampleSchema()
	paths, _ := metapath.Enumerate(s, "author", "author", 2, 0)
	for _, p := range paths {
		fmt.Println(p)
	}
	// Output: APA
}
