package metapath

import (
	"testing"

	"hetesim/internal/hin"
)

// fuzzSchema is the ACM-style schema used by the parser fuzzer.
func fuzzSchema() *hin.Schema {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddType("term", 'T')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	s.MustAddRelation("mentions", "paper", "term")
	return s
}

// FuzzParse checks the parser never panics and that every accepted path
// satisfies its structural invariants and round-trips through String.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"APVC", "CVPA", "APA", "A", "", "AXP",
		"author>paper>venue", "author[writes]>paper",
		"author[>paper", "author>>paper", "a>b>c", "APVCVPA",
		"author[mentions]>paper", ">>>", "[x]>y",
	} {
		f.Add(seed)
	}
	schema := fuzzSchema()
	f.Fuzz(func(t *testing.T, spec string) {
		p, err := Parse(schema, spec)
		if err != nil {
			return
		}
		if p.Len() < 1 {
			t.Fatalf("accepted path %q has length %d", spec, p.Len())
		}
		if got := len(p.Types()); got != p.Len()+1 {
			t.Fatalf("path %q: %d types for %d steps", spec, got, p.Len())
		}
		for i := 1; i < p.Len(); i++ {
			if p.Step(i-1).To() != p.Step(i).From() {
				t.Fatalf("path %q: broken chain at %d", spec, i)
			}
		}
		// String must re-parse to an equal path.
		q, err := Parse(schema, p.String())
		if err != nil {
			t.Fatalf("String %q of accepted path %q does not re-parse: %v", p, spec, err)
		}
		if !q.Equal(p) {
			t.Fatalf("round trip changed path: %q -> %q", spec, p)
		}
		// Reverse twice is identity; decomposition covers all steps.
		if !p.Reverse().Reverse().Equal(p) {
			t.Fatalf("double reverse changed %q", spec)
		}
		d := p.Decompose()
		n := len(d.Left) + len(d.Right)
		if d.Middle != nil {
			n++
		}
		if n != p.Len() {
			t.Fatalf("decomposition of %q covers %d of %d steps", spec, n, p.Len())
		}
	})
}
