// Package metapath implements relevance paths (Definition 2 of the paper):
// meta paths over a network schema, written A1 → A2 → ... → Al+1, that
// constrain which walks a relevance measure follows. It provides parsing
// from compact ("APVC") and verbose ("author>paper>venue>conference")
// notation, path reversal and symmetry testing, concatenation, and the
// decomposition of Definition 5 that splits an arbitrary path into two
// equal-length halves — flagging, for odd-length paths, the middle atomic
// relation that must itself be decomposed through edge objects
// (Definition 6).
package metapath

import (
	"errors"
	"fmt"
	"strings"

	"hetesim/internal/hin"
)

// Common errors returned by path construction and parsing.
var (
	ErrEmptyPath  = errors.New("metapath: path needs at least two types")
	ErrBadSyntax  = errors.New("metapath: malformed path expression")
	ErrNotChained = errors.New("metapath: paths are not concatenable")
)

// Step is one relation traversal in a relevance path. When Inverse is set
// the step walks the relation backwards (R^-1), i.e. from Relation.Target to
// Relation.Source.
type Step struct {
	Relation hin.Relation
	Inverse  bool
}

// From returns the type the step departs from.
func (s Step) From() string {
	if s.Inverse {
		return s.Relation.Target
	}
	return s.Relation.Source
}

// To returns the type the step arrives at.
func (s Step) To() string {
	if s.Inverse {
		return s.Relation.Source
	}
	return s.Relation.Target
}

// Reversed returns the step traversed in the opposite direction.
func (s Step) Reversed() Step { return Step{Relation: s.Relation, Inverse: !s.Inverse} }

// Path is an immutable relevance path: a chain of steps whose endpoint types
// agree. The zero value is invalid; construct paths with New or Parse.
type Path struct {
	schema *hin.Schema
	steps  []Step
}

// New builds a path from explicit steps, validating chaining. At least one
// step is required.
func New(schema *hin.Schema, steps []Step) (*Path, error) {
	if len(steps) == 0 {
		return nil, ErrEmptyPath
	}
	for i := 1; i < len(steps); i++ {
		if steps[i-1].To() != steps[i].From() {
			return nil, fmt.Errorf("%w: step %d arrives at %q but step %d departs from %q",
				ErrNotChained, i-1, steps[i-1].To(), i, steps[i].From())
		}
	}
	return &Path{schema: schema, steps: append([]Step(nil), steps...)}, nil
}

// Parse builds a path from a textual specification against a schema. Two
// notations are accepted:
//
//   - Compact: a string of type abbreviations, e.g. "APVC" (Fig. 3 of the
//     paper). Each adjacent pair must be connected by exactly one schema
//     relation (in either direction).
//   - Verbose: type names separated by '>', e.g.
//     "author>paper>venue>conference". A type may carry an explicit
//     relation for its outgoing step when several relations connect a pair:
//     "author[writes]>paper".
//
// The direction of each schema relation is resolved automatically: if the
// relation runs against the walk, the step traverses its inverse R^-1.
func Parse(schema *hin.Schema, spec string) (*Path, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, ErrEmptyPath
	}
	var typeNames []string
	var relNames []string // relNames[i] qualifies step i, "" = resolve
	if strings.Contains(spec, ">") {
		parts := strings.Split(spec, ">")
		for _, part := range parts {
			part = strings.TrimSpace(part)
			rel := ""
			if i := strings.IndexByte(part, '['); i >= 0 {
				if !strings.HasSuffix(part, "]") {
					return nil, fmt.Errorf("%w: unterminated relation qualifier in %q", ErrBadSyntax, part)
				}
				rel = part[i+1 : len(part)-1]
				part = strings.TrimSpace(part[:i])
			}
			if part == "" {
				return nil, fmt.Errorf("%w: empty type name in %q", ErrBadSyntax, spec)
			}
			typeNames = append(typeNames, part)
			relNames = append(relNames, rel)
		}
	} else {
		for i := 0; i < len(spec); i++ {
			name, err := schema.TypeByAbbrev(spec[i])
			if err != nil {
				return nil, fmt.Errorf("metapath: parsing %q: %w", spec, err)
			}
			typeNames = append(typeNames, name)
			relNames = append(relNames, "")
		}
	}
	if len(typeNames) < 2 {
		return nil, ErrEmptyPath
	}
	steps := make([]Step, 0, len(typeNames)-1)
	for i := 0; i+1 < len(typeNames); i++ {
		from, to := typeNames[i], typeNames[i+1]
		if !schema.HasType(from) {
			return nil, fmt.Errorf("metapath: %w: %q", hin.ErrUnknownType, from)
		}
		if !schema.HasType(to) {
			return nil, fmt.Errorf("metapath: %w: %q", hin.ErrUnknownType, to)
		}
		var st Step
		if relNames[i] != "" {
			rel, err := schema.RelationByName(relNames[i])
			if err != nil {
				return nil, fmt.Errorf("metapath: parsing %q: %w", spec, err)
			}
			switch {
			case rel.Source == from && rel.Target == to:
				st = Step{Relation: rel}
			case rel.Target == from && rel.Source == to:
				st = Step{Relation: rel, Inverse: true}
			default:
				return nil, fmt.Errorf("%w: relation %q does not connect %q and %q",
					ErrBadSyntax, rel.Name, from, to)
			}
		} else {
			rel, inv, err := schema.RelationBetween(from, to)
			if err != nil {
				return nil, fmt.Errorf("metapath: parsing %q: %w", spec, err)
			}
			st = Step{Relation: rel, Inverse: inv}
		}
		steps = append(steps, st)
	}
	return New(schema, steps)
}

// MustParse is Parse but panics on error; for statically known paths.
func MustParse(schema *hin.Schema, spec string) *Path {
	p, err := Parse(schema, spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Schema returns the schema the path is defined on.
func (p *Path) Schema() *hin.Schema { return p.schema }

// Len returns the path length l: the number of relations.
func (p *Path) Len() int { return len(p.steps) }

// Steps returns a copy of the path's steps.
func (p *Path) Steps() []Step { return append([]Step(nil), p.steps...) }

// Step returns the i-th step.
func (p *Path) Step(i int) Step { return p.steps[i] }

// Types returns the l+1 type names visited by the path.
func (p *Path) Types() []string {
	ts := make([]string, 0, len(p.steps)+1)
	ts = append(ts, p.steps[0].From())
	for _, s := range p.steps {
		ts = append(ts, s.To())
	}
	return ts
}

// Source returns the type the path starts from (A1).
func (p *Path) Source() string { return p.steps[0].From() }

// Target returns the type the path ends at (Al+1).
func (p *Path) Target() string { return p.steps[len(p.steps)-1].To() }

// Reverse returns the reverse path P^-1, which defines the inverse of the
// composite relation defined by P.
func (p *Path) Reverse() *Path {
	rs := make([]Step, len(p.steps))
	for i, s := range p.steps {
		rs[len(p.steps)-1-i] = s.Reversed()
	}
	return &Path{schema: p.schema, steps: rs}
}

// Equal reports whether two paths traverse the same relations in the same
// directions.
func (p *Path) Equal(q *Path) bool {
	if len(p.steps) != len(q.steps) {
		return false
	}
	for i := range p.steps {
		if p.steps[i].Relation.Name != q.steps[i].Relation.Name ||
			p.steps[i].Inverse != q.steps[i].Inverse {
			return false
		}
	}
	return true
}

// IsSymmetric reports whether P equals its reverse P^-1 (e.g. APA, APCPA).
// Only symmetric paths guarantee HeteSim(a, a|P) = 1.
func (p *Path) IsSymmetric() bool { return p.Equal(p.Reverse()) }

// Concat returns the concatenated path (P Q), defined when P's target type
// equals Q's source type (Definition 2's concatenability).
func (p *Path) Concat(q *Path) (*Path, error) {
	if p.Target() != q.Source() {
		return nil, fmt.Errorf("%w: %q ends at %q but %q starts at %q",
			ErrNotChained, p, p.Target(), q, q.Source())
	}
	return New(p.schema, append(p.Steps(), q.Steps()...))
}

// Decomposition is the result of splitting a path per Definition 5 into two
// equal-length halves P = PL · PR meeting at a middle type.
//
// For even-length paths Middle is nil: Left and Right are the two halves and
// the meeting type is Left's target. For odd-length paths the walkers meet
// inside the middle atomic relation; Middle is that step, which must itself
// be decomposed through an edge-object type E (Definition 6): Left is the
// prefix before the middle step, Right the suffix after it, and the meeting
// type is E.
type Decomposition struct {
	Left   []Step
	Middle *Step
	Right  []Step
}

// Decompose splits the path per Definition 5.
func (p *Path) Decompose() Decomposition {
	l := len(p.steps)
	if l%2 == 0 {
		return Decomposition{
			Left:  append([]Step(nil), p.steps[:l/2]...),
			Right: append([]Step(nil), p.steps[l/2:]...),
		}
	}
	mid := (l - 1) / 2
	m := p.steps[mid]
	return Decomposition{
		Left:   append([]Step(nil), p.steps[:mid]...),
		Middle: &m,
		Right:  append([]Step(nil), p.steps[mid+1:]...),
	}
}

// String renders the path compactly when every visited type has an
// abbreviation and no step needed an explicit relation qualifier to be
// unambiguous; otherwise it falls back to verbose notation with relation
// qualifiers on every step.
func (p *Path) String() string {
	types := p.Types()
	compact := make([]byte, 0, len(types))
	ok := true
	for _, t := range types {
		ab := byte(0)
		for _, nt := range p.schema.Types() {
			if nt.Name == t {
				ab = nt.Abbrev
				break
			}
		}
		if ab == 0 {
			ok = false
			break
		}
		compact = append(compact, ab)
	}
	if ok {
		// Verify compact notation round-trips to this exact path.
		if q, err := Parse(p.schema, string(compact)); err == nil && q.Equal(p) {
			return string(compact)
		}
	}
	var b strings.Builder
	for i, s := range p.steps {
		if i == 0 {
			b.WriteString(s.From())
		}
		fmt.Fprintf(&b, "[%s]>%s", s.Relation.Name, s.To())
	}
	return b.String()
}
