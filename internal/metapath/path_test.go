package metapath

import (
	"errors"
	"testing"

	"hetesim/internal/hin"
)

// acmSchema mirrors Fig. 3(a): papers, authors, affiliations, terms,
// subjects, venues, conferences.
func acmSchema(t *testing.T) *hin.Schema {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("affiliation", 'F')
	s.MustAddType("term", 'T')
	s.MustAddType("subject", 'S')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("affiliated_with", "author", "affiliation")
	s.MustAddRelation("mentions", "paper", "term")
	s.MustAddRelation("about", "paper", "subject")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	return s
}

func TestParseCompact(t *testing.T) {
	s := acmSchema(t)
	p, err := Parse(s, "APVC")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
	wantTypes := []string{"author", "paper", "venue", "conference"}
	for i, ty := range p.Types() {
		if ty != wantTypes[i] {
			t.Errorf("type %d = %q, want %q", i, ty, wantTypes[i])
		}
	}
	if p.Source() != "author" || p.Target() != "conference" {
		t.Errorf("endpoints = %q..%q", p.Source(), p.Target())
	}
	// All three steps run with the schema direction (no inverses).
	for i, st := range p.Steps() {
		if st.Inverse {
			t.Errorf("step %d unexpectedly inverse", i)
		}
	}
}

func TestParseCompactWithInverseSteps(t *testing.T) {
	s := acmSchema(t)
	p, err := Parse(s, "CVPA")
	if err != nil {
		t.Fatal(err)
	}
	// conference->venue walks part_of backwards, etc.
	for i, st := range p.Steps() {
		if !st.Inverse {
			t.Errorf("step %d should be inverse", i)
		}
	}
	if p.Step(0).From() != "conference" || p.Step(0).To() != "venue" {
		t.Errorf("step 0 = %q->%q", p.Step(0).From(), p.Step(0).To())
	}
}

func TestParseVerboseAndQualified(t *testing.T) {
	s := acmSchema(t)
	p, err := Parse(s, "author > paper > venue")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Target() != "venue" {
		t.Errorf("verbose parse wrong: %v", p)
	}
	// Ambiguity requires a qualifier.
	s.MustAddRelation("reviews", "author", "paper")
	if _, err := Parse(s, "AP"); !errors.Is(err, hin.ErrAmbiguous) {
		t.Errorf("ambiguous parse err = %v", err)
	}
	q, err := Parse(s, "author[reviews]>paper")
	if err != nil {
		t.Fatal(err)
	}
	if q.Step(0).Relation.Name != "reviews" {
		t.Errorf("qualified relation = %q", q.Step(0).Relation.Name)
	}
	// Qualified in inverse direction.
	r, err := Parse(s, "paper[reviews]>author")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Step(0).Inverse {
		t.Error("expected inverse step")
	}
}

func TestParseErrors(t *testing.T) {
	s := acmSchema(t)
	cases := []struct {
		spec string
		want error
	}{
		{"", ErrEmptyPath},
		{"A", ErrEmptyPath},
		{"author", hin.ErrUnknownType}, // no '>': read as compact abbreviations
		{"AX", hin.ErrUnknownType},
		{"AC", hin.ErrUnknownRelation},
		{"author>movie", hin.ErrUnknownType},
		{"author[nope]>paper", hin.ErrUnknownRelation},
		{"author[mentions]>paper", ErrBadSyntax},
		{"author[writes>paper", ErrBadSyntax},
		{"author>>paper", ErrBadSyntax},
	}
	for _, c := range cases {
		if _, err := Parse(s, c.spec); !errors.Is(err, c.want) {
			t.Errorf("Parse(%q) err = %v, want %v", c.spec, err, c.want)
		}
	}
}

func TestReverse(t *testing.T) {
	s := acmSchema(t)
	p := MustParse(s, "APVC")
	r := p.Reverse()
	if r.Source() != "conference" || r.Target() != "author" {
		t.Errorf("reverse endpoints = %q..%q", r.Source(), r.Target())
	}
	if !r.Equal(MustParse(s, "CVPA")) {
		t.Error("Reverse(APVC) != CVPA")
	}
	if !p.Reverse().Reverse().Equal(p) {
		t.Error("double reverse changed path")
	}
}

func TestIsSymmetric(t *testing.T) {
	s := acmSchema(t)
	for spec, want := range map[string]bool{
		"APA":     true,
		"APVCVPA": true,
		"APVC":    false,
		"APTPA":   true,
		"APVCV":   false,
		"AP":      false,
	} {
		if got := MustParse(s, spec).IsSymmetric(); got != want {
			t.Errorf("IsSymmetric(%s) = %v, want %v", spec, got, want)
		}
	}
}

func TestConcat(t *testing.T) {
	s := acmSchema(t)
	ap := MustParse(s, "AP")
	pv := MustParse(s, "PVC")
	got, err := ap.Concat(pv)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(MustParse(s, "APVC")) {
		t.Errorf("Concat = %v", got)
	}
	if _, err := pv.Concat(ap); !errors.Is(err, ErrNotChained) {
		t.Errorf("bad concat err = %v", err)
	}
}

func TestDecomposeEvenPath(t *testing.T) {
	s := acmSchema(t)
	p := MustParse(s, "APVCVPA") // length 6, meets at conference
	d := p.Decompose()
	if d.Middle != nil {
		t.Fatal("even path should have nil Middle")
	}
	if len(d.Left) != 3 || len(d.Right) != 3 {
		t.Fatalf("halves = %d,%d, want 3,3", len(d.Left), len(d.Right))
	}
	if d.Left[2].To() != "conference" || d.Right[0].From() != "conference" {
		t.Error("halves do not meet at conference")
	}
}

func TestDecomposeOddPath(t *testing.T) {
	s := acmSchema(t)
	p := MustParse(s, "APVC") // length 3, middle atomic relation is PV
	d := p.Decompose()
	if d.Middle == nil {
		t.Fatal("odd path must expose its middle atomic relation")
	}
	if d.Middle.Relation.Name != "published_in" || d.Middle.Inverse {
		t.Errorf("middle = %v", d.Middle)
	}
	if len(d.Left) != 1 || len(d.Right) != 1 {
		t.Fatalf("halves = %d,%d, want 1,1", len(d.Left), len(d.Right))
	}
	// Length-1 path: both halves empty, middle is the single step
	// (Definition 7, HeteSim on an atomic relation).
	d = MustParse(s, "AP").Decompose()
	if d.Middle == nil || len(d.Left) != 0 || len(d.Right) != 0 {
		t.Errorf("length-1 decomposition = %+v", d)
	}
	// The APSPVC example from the paper: meets at SP (step index 2).
	d = MustParse(s, "APSPVC").Decompose()
	if d.Middle == nil || d.Middle.Relation.Name != "about" || !d.Middle.Inverse {
		t.Errorf("APSPVC middle = %+v, want inverse of about (S->P)", d.Middle)
	}
}

func TestStringRoundTrip(t *testing.T) {
	s := acmSchema(t)
	for _, spec := range []string{"APVC", "CVPA", "APVCVPA", "APTPA", "AP"} {
		p := MustParse(s, spec)
		if got := p.String(); got != spec {
			t.Errorf("String = %q, want %q", got, spec)
		}
	}
	// With an ambiguous pair the string must fall back to verbose form
	// that re-parses to the same path.
	s.MustAddRelation("reviews", "author", "paper")
	p := MustParse(s, "author[reviews]>paper>venue")
	got := p.String()
	q, err := Parse(s, got)
	if err != nil {
		t.Fatalf("verbose String %q does not re-parse: %v", got, err)
	}
	if !q.Equal(p) {
		t.Errorf("verbose round trip changed path: %q", got)
	}
}

func TestNewValidatesChaining(t *testing.T) {
	s := acmSchema(t)
	writes, _ := s.RelationByName("writes")
	pub, _ := s.RelationByName("published_in")
	if _, err := New(s, nil); !errors.Is(err, ErrEmptyPath) {
		t.Errorf("empty New err = %v", err)
	}
	// writes: author->paper then published_in: paper->venue chains.
	if _, err := New(s, []Step{{Relation: writes}, {Relation: pub}}); err != nil {
		t.Errorf("valid chain err = %v", err)
	}
	// writes followed by writes does not chain (paper vs author).
	if _, err := New(s, []Step{{Relation: writes}, {Relation: writes}}); !errors.Is(err, ErrNotChained) {
		t.Errorf("broken chain err = %v", err)
	}
}

func TestStepAccessors(t *testing.T) {
	s := acmSchema(t)
	writes, _ := s.RelationByName("writes")
	st := Step{Relation: writes}
	if st.From() != "author" || st.To() != "paper" {
		t.Errorf("forward step = %q->%q", st.From(), st.To())
	}
	rev := st.Reversed()
	if rev.From() != "paper" || rev.To() != "author" || !rev.Inverse {
		t.Errorf("reversed step = %+v", rev)
	}
}
