package metapath

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomPath builds a random valid path over the ACM test schema by walking
// the relation graph.
func randomPath(t *testing.T, rng *rand.Rand, maxLen int) *Path {
	t.Helper()
	s := acmSchema(t)
	// All steps available from each type.
	stepsFrom := make(map[string][]Step)
	for _, rel := range s.Relations() {
		stepsFrom[rel.Source] = append(stepsFrom[rel.Source], Step{Relation: rel})
		stepsFrom[rel.Target] = append(stepsFrom[rel.Target], Step{Relation: rel, Inverse: true})
	}
	types := s.Types()
	at := types[rng.Intn(len(types))].Name
	for len(stepsFrom[at]) == 0 {
		at = types[rng.Intn(len(types))].Name
	}
	n := 1 + rng.Intn(maxLen)
	var steps []Step
	for i := 0; i < n; i++ {
		opts := stepsFrom[at]
		if len(opts) == 0 {
			break
		}
		st := opts[rng.Intn(len(opts))]
		steps = append(steps, st)
		at = st.To()
	}
	p, err := New(acmSchema(t), steps)
	if err != nil {
		t.Fatalf("random path invalid: %v", err)
	}
	return p
}

func TestDecomposeReassemblesProperty(t *testing.T) {
	// Left + Middle + Right always re-chain into the original path.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := &testing.T{}
		p := randomPath(tt, rng, 8)
		d := p.Decompose()
		steps := append([]Step(nil), d.Left...)
		if d.Middle != nil {
			steps = append(steps, *d.Middle)
		}
		steps = append(steps, d.Right...)
		q, err := New(p.Schema(), steps)
		if err != nil {
			return false
		}
		if !q.Equal(p) {
			return false
		}
		// Halves are equal-length: |Left| == |Right|.
		return len(d.Left) == len(d.Right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestReverseDistributesOverConcatProperty(t *testing.T) {
	// (P Q)^-1 == Q^-1 P^-1 whenever P and Q chain.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := &testing.T{}
		p := randomPath(tt, rng, 5)
		// Build q starting where p ends by extending p and cutting.
		full := randomPathFrom(tt, rng, p.Target(), 4)
		if full == nil {
			return true // no outgoing steps; vacuously fine
		}
		pq, err := p.Concat(full)
		if err != nil {
			return false
		}
		lhs := pq.Reverse()
		rhs, err := full.Reverse().Concat(p.Reverse())
		if err != nil {
			return false
		}
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomPathFrom builds a random path starting at a given type.
func randomPathFrom(t *testing.T, rng *rand.Rand, from string, maxLen int) *Path {
	t.Helper()
	s := acmSchema(t)
	stepsFrom := make(map[string][]Step)
	for _, rel := range s.Relations() {
		stepsFrom[rel.Source] = append(stepsFrom[rel.Source], Step{Relation: rel})
		stepsFrom[rel.Target] = append(stepsFrom[rel.Target], Step{Relation: rel, Inverse: true})
	}
	if len(stepsFrom[from]) == 0 {
		return nil
	}
	at := from
	n := 1 + rng.Intn(maxLen)
	var steps []Step
	for i := 0; i < n; i++ {
		opts := stepsFrom[at]
		if len(opts) == 0 {
			break
		}
		st := opts[rng.Intn(len(opts))]
		steps = append(steps, st)
		at = st.To()
	}
	p, err := New(s, steps)
	if err != nil {
		return nil
	}
	return p
}

func TestSymmetricPathsSelfReverseProperty(t *testing.T) {
	// P concatenated with its own reverse is always symmetric.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tt := &testing.T{}
		p := randomPath(tt, rng, 5)
		sym, err := p.Concat(p.Reverse())
		if err != nil {
			return false
		}
		return sym.IsSymmetric()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEnumerateProducesOnlyValidPaths(t *testing.T) {
	s := acmSchema(t)
	paths, err := Enumerate(s, "author", "term", 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no author→term paths found")
	}
	seen := map[string]bool{}
	for _, p := range paths {
		if p.Source() != "author" || p.Target() != "term" {
			t.Errorf("path %s endpoints wrong", p)
		}
		// Parsing the rendered path must succeed and round-trip.
		q, err := Parse(s, p.String())
		if err != nil {
			t.Errorf("enumerated path %s does not parse: %v", p, err)
			continue
		}
		if !q.Equal(p) {
			t.Errorf("enumerated path %s round trip changed", p)
		}
		if seen[p.String()] {
			t.Errorf("duplicate enumerated path %s", p)
		}
		seen[p.String()] = true
	}
}
