// Package obs is the repository's dependency-free observability kit: a
// concurrency-safe metrics registry with Prometheus text exposition, a
// lightweight per-query tracer threaded through context.Context, and a
// ring-buffered slow-query log. It sits below every other internal
// package (it imports only the standard library), so the sparse kernels,
// the HeteSim engine, and the HTTP server can all report into one
// process-wide registry without import cycles.
//
// The paper's Section 4.6 cost model (transition-matrix build → reachable
// probability chain → cosine normalization) only becomes actionable in a
// service once each stage is measured; this package is that measurement
// substrate.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// metricName is the Prometheus metric- and label-name grammar.
var metricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. n must not be negative; counters only go up.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (possibly negative) to the gauge.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram. Buckets hold upper
// bounds in strictly increasing order; an implicit +Inf bucket catches
// everything above the last bound.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (tens), and the scan beats a
	// binary search's branch misses at that size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ValidateBuckets reports whether bounds form a legal histogram layout:
// non-empty, finite, and strictly increasing. It is exported so `make
// check` can fail fast on a misconfigured boundary via the obs self-test.
func ValidateBuckets(bounds []float64) error {
	if len(bounds) == 0 {
		return fmt.Errorf("obs: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("obs: bucket bound %d is %v; bounds must be finite (+Inf is implicit)", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return fmt.Errorf("obs: bucket bounds not strictly increasing at %d: %v <= %v", i, b, bounds[i-1])
		}
	}
	return nil
}

// DefSecondsBuckets are latency buckets from 100µs to ~100s, a decade
// ladder with 1-2.5-5 subdivisions — wide enough for both a cached pair
// lookup and a cold AllPairs materialization.
func DefSecondsBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
	}
}

// DefCountBuckets are size buckets for count-valued histograms (batch
// sizes, path-group counts, amortization ratios): a power-of-two ladder
// from 1 to 4096.
func DefCountBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
}

// kind discriminates registered metrics for exposition and collision
// checks.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// entry is one registered metric family.
type entry struct {
	name   string
	help   string
	kind   kind
	labels []string // nil for plain metrics

	counter *Counter
	gauge   *Gauge
	hist    *Histogram

	// Labeled children, keyed by the serialized label values.
	mu       sync.Mutex
	children map[string]*entry
	bounds   []float64 // histogram bounds, also inherited by children
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
// All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	order   []string // registration order, for stable exposition
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// std is the process-wide registry every package instruments into.
var std = NewRegistry()

// Default returns the process-wide registry. Package-level metrics in
// sparse, core, and server register here so one /metrics scrape sees the
// whole pipeline.
func Default() *Registry { return std }

// get returns the family named name, creating it with the given shape on
// first use. Registration is idempotent — asking again with the same name
// and kind returns the existing family, so multiple Server or Engine
// instances (and tests) share counters instead of colliding. A kind or
// label-arity mismatch is a programming error and panics.
func (r *Registry) get(name, help string, k kind, labels []string, bounds []float64) *entry {
	if !metricName.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !metricName.MatchString(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	if k == kindHistogram {
		if err := ValidateBuckets(bounds); err != nil {
			panic(err.Error())
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[name]; ok {
		if e.kind != k || len(e.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s/%d labels (was %s/%d)",
				name, k, len(labels), e.kind, len(e.labels)))
		}
		return e
	}
	e := &entry{name: name, help: help, kind: k, labels: append([]string(nil), labels...), bounds: bounds}
	if len(labels) == 0 {
		e.counter, e.gauge = &Counter{}, &Gauge{}
		if k == kindHistogram {
			e.hist = newHistogram(bounds)
		}
	} else {
		e.children = make(map[string]*entry)
	}
	r.entries[name] = e
	r.order = append(r.order, name)
	return e
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Counter returns the counter named name, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, kindCounter, nil, nil).counter
}

// Gauge returns the gauge named name, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, kindGauge, nil, nil).gauge
}

// Histogram returns the histogram named name with the given bucket upper
// bounds, registering it on first use. Panics if bounds are not strictly
// increasing and finite.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.get(name, help, kindHistogram, nil, bounds).hist
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ e *entry }

// CounterVec returns the labeled counter family named name.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("obs: CounterVec needs at least one label; use Counter")
	}
	return &CounterVec{e: r.get(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (one per label, in
// registration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.e.child(values).counter
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ e *entry }

// GaugeVec returns the labeled gauge family named name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if len(labels) == 0 {
		panic("obs: GaugeVec needs at least one label; use Gauge")
	}
	return &GaugeVec{e: r.get(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values, creating it on first
// use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.e.child(values).gauge
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ e *entry }

// HistogramVec returns the labeled histogram family named name.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(labels) == 0 {
		panic("obs: HistogramVec needs at least one label; use Histogram")
	}
	return &HistogramVec{e: r.get(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.e.child(values).hist
}

// child returns the labeled child for the given values, creating it on
// first use.
func (e *entry) child(values []string) *entry {
	if len(values) != len(e.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", e.name, len(e.labels), len(values)))
	}
	key := labelKey(e.labels, values)
	e.mu.Lock()
	defer e.mu.Unlock()
	c, ok := e.children[key]
	if !ok {
		c = &entry{name: e.name, kind: e.kind, counter: &Counter{}, gauge: &Gauge{}}
		if e.kind == kindHistogram {
			c.hist = newHistogram(e.bounds)
		}
		e.children[key] = c
	}
	return c
}

// labelKey serializes label pairs as they appear in the exposition:
// `a="x",b="y"`.
func labelKey(labels, values []string) string {
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4), in registration order with labeled
// children sorted for stable scrapes.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	families := make([]*entry, 0, len(r.order))
	for _, name := range r.order {
		families = append(families, r.entries[name])
	}
	r.mu.Unlock()
	for _, e := range families {
		if e.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", e.name, strings.ReplaceAll(e.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind)
		if e.labels == nil {
			e.writeValues(w, "")
			continue
		}
		e.mu.Lock()
		keys := make([]string, 0, len(e.children))
		for k := range e.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		children := make([]*entry, len(keys))
		for i, k := range keys {
			children[i] = e.children[k]
		}
		e.mu.Unlock()
		for i, k := range keys {
			children[i].writeValues(w, k)
		}
	}
}

// writeValues renders one concrete series (plain metric or labeled
// child). key is the pre-serialized label pairs, empty for plain metrics.
func (e *entry) writeValues(w io.Writer, key string) {
	wrap := func(extra string) string {
		switch {
		case key == "" && extra == "":
			return ""
		case key == "":
			return "{" + extra + "}"
		case extra == "":
			return "{" + key + "}"
		default:
			return "{" + key + "," + extra + "}"
		}
	}
	switch e.kind {
	case kindCounter:
		fmt.Fprintf(w, "%s%s %d\n", e.name, wrap(""), e.counter.Value())
	case kindGauge:
		fmt.Fprintf(w, "%s%s %s\n", e.name, wrap(""), formatFloat(e.gauge.Value()))
	case kindHistogram:
		var cum uint64
		for i, bound := range e.hist.bounds {
			cum += e.hist.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, wrap(`le="`+formatFloat(bound)+`"`), cum)
		}
		cum += e.hist.buckets[len(e.hist.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, wrap(`le="+Inf"`), cum)
		fmt.Fprintf(w, "%s_sum%s %s\n", e.name, wrap(""), formatFloat(e.hist.Sum()))
		fmt.Fprintf(w, "%s_count%s %d\n", e.name, wrap(""), e.hist.Count())
	}
}

// Handler returns an http.Handler serving the registry in text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
