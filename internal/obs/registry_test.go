package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func readAll(t *testing.T, r io.Reader) string {
	t.Helper()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	// Idempotent re-registration returns the same instances.
	if r.Counter("test_events_total", "events") != c {
		t.Error("re-registering a counter returned a new instance")
	}
	if r.Gauge("test_depth", "depth") != g {
		t.Error("re-registering a gauge returned a new instance")
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 5.555; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, line := range []string{
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		`test_latency_seconds_count 4`,
	} {
		if !strings.Contains(out, line) {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestValidateBuckets(t *testing.T) {
	if err := ValidateBuckets([]float64{0.1, 1, 10}); err != nil {
		t.Errorf("valid buckets rejected: %v", err)
	}
	for name, bad := range map[string][]float64{
		"empty":          {},
		"non-increasing": {1, 1},
		"decreasing":     {1, 0.5},
		"nan":            {0.1, nanValue()},
		"inf":            {0.1, infValue()},
	} {
		if err := ValidateBuckets(bad); err == nil {
			t.Errorf("%s buckets accepted", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Histogram with bad buckets did not panic")
		}
	}()
	NewRegistry().Histogram("bad", "", []float64{2, 1})
}

func nanValue() float64 { return strconvNaN }
func infValue() float64 { return strconvInf }

var (
	strconvNaN = func() float64 { v, _ := strconv.ParseFloat("NaN", 64); return v }()
	strconvInf = func() float64 { v, _ := strconv.ParseFloat("+Inf", 64); return v }()
)

// TestSelfTestDefaultBuckets is the `make check` histogram-bucket sanity
// gate: the bucket layouts the daemon actually registers must validate.
func TestSelfTestDefaultBuckets(t *testing.T) {
	if err := ValidateBuckets(DefSecondsBuckets()); err != nil {
		t.Fatalf("DefSecondsBuckets invalid: %v", err)
	}
}

func TestCounterVecAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_requests_total", "requests", "route", "status")
	v.With("/v1/pair", "200").Inc()
	v.With("/v1/pair", "200").Inc()
	v.With("/v1/topk", "429").Inc()
	v.With(`weird"route\n`, "200").Inc()
	if got := v.With("/v1/pair", "200").Value(); got != 2 {
		t.Errorf("labeled counter = %d, want 2", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_requests_total{route="/v1/pair",status="200"} 2`) {
		t.Errorf("missing labeled series:\n%s", out)
	}
	if !strings.Contains(out, `test_requests_total{route="weird\"route\\n",status="200"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}
}

func TestHistogramVec(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_stage_seconds", "stage timings", []float64{0.1, 1}, "stage")
	v.With("plan").Observe(0.05)
	v.With("multiply").Observe(2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `test_stage_seconds_bucket{stage="plan",le="0.1"} 1`) {
		t.Errorf("missing labeled histogram bucket:\n%s", out)
	}
	if !strings.Contains(out, `test_stage_seconds_count{stage="multiply"} 1`) {
		t.Errorf("missing labeled histogram count:\n%s", out)
	}
}

// expositionLine matches the three legal value-line shapes of the text
// format: name, optional {labels}, then a number.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?(Inf|[0-9].*))$`)

// CheckExposition validates the whole body line by line — shared with the
// server scrape test via this package's export_test-free public surface.
func checkExposition(t *testing.T, body string) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	n := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Errorf("invalid exposition line: %q", line)
		}
		n++
	}
	if n == 0 {
		t.Error("exposition had no value lines")
	}
}

func TestHandlerServesValidExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_a_total", "a").Inc()
	r.Gauge("test_b", "b").Set(-3.25)
	r.Histogram("test_c_seconds", "c", DefSecondsBuckets()).Observe(0.42)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp.Body)); err != nil {
		t.Fatal(err)
	}
	checkExposition(t, b.String())
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := r.Counter("test_conc_total", "")
			h := r.Histogram("test_conc_seconds", "", []float64{1, 2})
			v := r.CounterVec("test_conc_vec_total", "", "worker")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(float64(j % 3))
				v.With(strconv.Itoa(i % 2)).Inc()
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("test_conc_total", "").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("test_conc_seconds", "", []float64{1, 2}).Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	checkExposition(t, b.String())
}
