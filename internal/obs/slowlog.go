package obs

import (
	"sync"
	"time"
)

// SlowLog is a fixed-capacity ring buffer of the most recent queries
// that exceeded a latency threshold, each carrying its trace report when
// the query was traced. It answers "what was slow in the last few
// minutes" without any external collector — the in-process analogue of a
// database slow-query log.
type SlowLog struct {
	threshold time.Duration
	capacity  int

	mu      sync.Mutex
	entries []SlowEntry // ring storage, len <= capacity
	next    int         // ring write position
	total   uint64      // entries ever admitted, including overwritten
}

// SlowEntry is one admitted slow query.
type SlowEntry struct {
	Time       time.Time `json:"time"`
	Query      string    `json:"query"` // method, path, and query string
	Status     int       `json:"status"`
	DurationMS float64   `json:"duration_ms"`
	Trace      *Report   `json:"trace,omitempty"`
}

// NewSlowLog returns a slow log admitting queries slower than threshold,
// keeping the most recent capacity entries. capacity <= 0 defaults to
// 128.
func NewSlowLog(threshold time.Duration, capacity int) *SlowLog {
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{threshold: threshold, capacity: capacity}
}

// Threshold returns the admission threshold.
func (l *SlowLog) Threshold() time.Duration { return l.threshold }

// Observe admits the entry if its duration is over the threshold,
// evicting the oldest entry when full. Reports whether it was admitted.
func (l *SlowLog) Observe(e SlowEntry, d time.Duration) bool {
	if l == nil || d < l.threshold {
		return false
	}
	e.DurationMS = float64(d) / float64(time.Millisecond)
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.capacity {
		l.entries = append(l.entries, e)
	} else {
		l.entries[l.next] = e
	}
	l.next = (l.next + 1) % l.capacity
	l.total++
	return true
}

// Total returns how many queries have ever been admitted, including ones
// the ring has since overwritten.
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.entries))
	// Walk backwards from the most recent write.
	for i := 0; i < len(l.entries); i++ {
		idx := (l.next - 1 - i + 2*l.capacity) % l.capacity
		if idx >= len(l.entries) {
			// Ring not yet full: positions past len are unwritten.
			continue
		}
		out = append(out, l.entries[idx])
	}
	return out
}
