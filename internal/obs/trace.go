package obs

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Per-query stage tracing. A Trace is threaded through context.Context;
// instrumentation sites ask FromContext for it and open spans. Every
// accessor is nil-safe, so an untraced query pays only the context
// lookup — no allocation, no clock read.
//
// Span names map onto the paper's query pipeline (DESIGN.md
// "Observability"): decode → plan (path decomposition, Defs. 5–6) →
// chain_multiply per reachable-probability step (Defs. 8–9) →
// normalize (the Def. 10 cosine), with cache_hit/cache_miss and
// mc_sample spans where the materialized-path cache and the Monte Carlo
// estimator short-circuit that pipeline.

// Span is one recorded stage of a traced query. Start is the offset
// from the trace's origin, so spans order and nest without wall-clock
// timestamps.
type Span struct {
	Name  string            `json:"name"`
	Start time.Duration     `json:"-"`
	Dur   time.Duration     `json:"-"`
	Attrs map[string]string `json:"attrs,omitempty"`

	// JSON mirrors of Start/Dur in microseconds, filled by snapshot();
	// durations marshal as bare nanosecond integers otherwise, which no
	// human reads fluently.
	StartUS float64 `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
}

// Trace accumulates the spans of one query. Safe for concurrent use.
type Trace struct {
	origin time.Time
	mu     sync.Mutex
	spans  []Span
}

type ctxKey struct{}

// NewTrace starts an empty trace with its origin at now and returns a
// context carrying it.
func NewTrace(ctx context.Context) (context.Context, *Trace) {
	t := &Trace{origin: time.Now()}
	return context.WithValue(ctx, ctxKey{}, t), t
}

// FromContext returns the trace carried by ctx, or nil when the query is
// untraced. All Trace and SpanHandle methods tolerate nil receivers, so
// call sites never need to branch.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// SpanHandle is an open span; call End (optionally after SetAttr) to
// record it.
type SpanHandle struct {
	t     *Trace
	name  string
	start time.Time
	attrs map[string]string
}

// Start opens a span. Returns nil (a valid no-op handle) on a nil trace.
func (t *Trace) Start(name string) *SpanHandle {
	if t == nil {
		return nil
	}
	return &SpanHandle{t: t, name: name, start: time.Now()}
}

// SetAttr attaches a key/value annotation (matrix dims, nnz, cache key)
// to the span and returns it for chaining.
func (s *SpanHandle) SetAttr(k, v string) *SpanHandle {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string, 4)
	}
	s.attrs[k] = v
	return s
}

// End closes the span and appends it to the trace.
func (s *SpanHandle) End() {
	if s == nil {
		return
	}
	now := time.Now()
	sp := Span{
		Name:  s.name,
		Start: s.start.Sub(s.t.origin),
		Dur:   now.Sub(s.start),
		Attrs: s.attrs,
	}
	s.t.mu.Lock()
	s.t.spans = append(s.t.spans, sp)
	s.t.mu.Unlock()
}

// Event records an instantaneous zero-duration span (a cache hit, a
// degradation decision) with the given attributes.
func (t *Trace) Event(name string, attrs map[string]string) {
	if t == nil {
		return
	}
	sp := Span{Name: name, Start: time.Since(t.origin), Attrs: attrs}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// snapshot returns the spans sorted by start offset with the JSON
// microsecond mirrors filled in.
func (t *Trace) snapshot() []Span {
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	for i := range out {
		out[i].StartUS = float64(out[i].Start) / float64(time.Microsecond)
		out[i].DurUS = float64(out[i].Dur) / float64(time.Microsecond)
	}
	return out
}

// Report is the JSON rendering of a finished trace, returned inline
// under "trace" when a client asks with ?trace=1 and stored in slow-log
// entries.
type Report struct {
	TotalUS  float64 `json:"total_us"`
	Coverage float64 `json:"coverage"` // fraction of total covered by spans
	Spans    []Span  `json:"spans"`
}

// Elapsed returns the wall time since the trace's origin — the total to
// report against when the query is still finishing (e.g. attaching the
// trace to the response body before the handler returns).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.origin)
}

// Report finalizes the trace against a total query wall time.
func (t *Trace) Report(total time.Duration) *Report {
	if t == nil {
		return nil
	}
	spans := t.snapshot()
	return &Report{
		TotalUS:  float64(total) / float64(time.Microsecond),
		Coverage: Coverage(spans, total),
		Spans:    spans,
	}
}

// Coverage returns the fraction of total wall time covered by the union
// of the spans' intervals. Overlapping and nested spans count once, so a
// parent span plus its children cannot exceed 1. Used by the acceptance
// tests ("spans cover ≥90% of a pair query") and exposed in Report for
// operators judging how much of a slow query the trace explains.
func Coverage(spans []Span, total time.Duration) float64 {
	if total <= 0 || len(spans) == 0 {
		return 0
	}
	type iv struct{ lo, hi time.Duration }
	ivs := make([]iv, 0, len(spans))
	for _, s := range spans {
		if s.Dur <= 0 {
			continue
		}
		ivs = append(ivs, iv{s.Start, s.Start + s.Dur})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	var covered, hi time.Duration
	for _, v := range ivs {
		if v.lo > hi {
			covered += v.hi - v.lo
			hi = v.hi
		} else if v.hi > hi {
			covered += v.hi - hi
			hi = v.hi
		}
	}
	if covered > total {
		return 1
	}
	return float64(covered) / float64(total)
}
