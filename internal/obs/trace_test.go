package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	tr := FromContext(context.Background())
	if tr != nil {
		t.Fatal("FromContext on a bare context returned a trace")
	}
	// All of these must be safe on nil receivers.
	sp := tr.Start("anything")
	sp.SetAttr("k", "v")
	sp.End()
	tr.Event("nothing", nil)
	if rep := tr.Report(time.Second); rep != nil {
		t.Errorf("nil trace Report = %+v, want nil", rep)
	}
}

func TestTraceSpansAndReport(t *testing.T) {
	ctx, tr := NewTrace(context.Background())
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the installed trace")
	}
	sp := tr.Start("chain_multiply").SetAttr("rows", "10").SetAttr("nnz", "42")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	tr.Event("cache_hit", map[string]string{"key": "C:writes"})
	rep := tr.Report(4 * time.Millisecond)
	if len(rep.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(rep.Spans))
	}
	if rep.Spans[0].Attrs["nnz"] != "42" {
		t.Errorf("attrs = %v", rep.Spans[0].Attrs)
	}
	if rep.Coverage <= 0 {
		t.Errorf("coverage = %v, want > 0", rep.Coverage)
	}
	// The report must marshal with microsecond fields for humans.
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total_us"`, `"dur_us"`, `"cache_hit"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("report JSON missing %s: %s", want, b)
		}
	}
}

func TestCoverageUnion(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	spans := []Span{
		{Name: "parent", Start: ms(0), Dur: ms(10)},
		{Name: "child", Start: ms(2), Dur: ms(4)},   // nested: counted once
		{Name: "tail", Start: ms(12), Dur: ms(4)},   // disjoint
		{Name: "event", Start: ms(5), Dur: 0},       // zero-duration: ignored
		{Name: "overlap", Start: ms(8), Dur: ms(3)}, // extends parent by 1ms
	}
	got := Coverage(spans, ms(20))
	want := 15.0 / 20.0 // [0,11) ∪ [12,16)
	if got < want-1e-9 || got > want+1e-9 {
		t.Errorf("coverage = %v, want %v", got, want)
	}
	if c := Coverage(spans, 0); c != 0 {
		t.Errorf("coverage with zero total = %v", c)
	}
	if c := Coverage(nil, ms(10)); c != 0 {
		t.Errorf("coverage with no spans = %v", c)
	}
	// Spans exceeding the total clamp to 1.
	if c := Coverage([]Span{{Start: 0, Dur: ms(100)}}, ms(10)); c != 1 {
		t.Errorf("coverage clamp = %v, want 1", c)
	}
}

func TestTraceConcurrent(t *testing.T) {
	_, tr := NewTrace(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.Start("s")
				sp.SetAttr("j", "1")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Report(time.Second).Spans); got != 1600 {
		t.Errorf("spans = %d, want 1600", got)
	}
}

func TestSlowLogRing(t *testing.T) {
	l := NewSlowLog(10*time.Millisecond, 3)
	if l.Observe(SlowEntry{Query: "fast"}, 5*time.Millisecond) {
		t.Error("fast query admitted")
	}
	for i := 0; i < 5; i++ {
		q := SlowEntry{Query: strings.Repeat("x", i+1)}
		if !l.Observe(q, time.Duration(20+i)*time.Millisecond) {
			t.Fatalf("slow query %d rejected", i)
		}
	}
	if l.Total() != 5 {
		t.Errorf("total = %d, want 5", l.Total())
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("retained = %d, want 3", len(got))
	}
	// Newest first: the 5th, 4th, 3rd admissions.
	for i, wantLen := range []int{5, 4, 3} {
		if len(got[i].Query) != wantLen {
			t.Errorf("entry %d query = %q, want len %d", i, got[i].Query, wantLen)
		}
	}
	if got[0].DurationMS != 24 {
		t.Errorf("duration_ms = %v, want 24", got[0].DurationMS)
	}
	var nilLog *SlowLog
	if nilLog.Observe(SlowEntry{}, time.Hour) {
		t.Error("nil slowlog admitted an entry")
	}
	if nilLog.Entries() != nil || nilLog.Total() != 0 {
		t.Error("nil slowlog not empty")
	}
}
