// Package rank provides top-k selection and ranked-list utilities used by
// the query experiments (object profiling, expert finding, relevance
// search): heap-based top-k over dense score vectors and labeled ranked
// lists for display.
package rank

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Item is one scored object in a ranked list.
type Item struct {
	Index int
	ID    string
	Score float64
}

// TopK returns the indices of the k largest scores in descending score
// order, ties broken by ascending index. k larger than len(scores) returns
// all indices ranked. Zero scores are kept — callers who want only
// positively related objects should filter.
func TopK(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	if k <= 0 {
		return nil
	}
	h := &minHeap{}
	heap.Init(h)
	for i, s := range scores {
		if h.Len() < k {
			heap.Push(h, entry{i, s})
			continue
		}
		if top := (*h)[0]; s > top.score || (s == top.score && i < top.idx) {
			(*h)[0] = entry{i, s}
			heap.Fix(h, 0)
		}
	}
	out := make([]int, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(entry).idx
	}
	return out
}

type entry struct {
	idx   int
	score float64
}

// minHeap keeps the current k best with the worst on top; the tie order
// (higher index = worse) matches TopK's ascending-index tie-break.
type minHeap []entry

func (h minHeap) Len() int { return len(h) }
func (h minHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	return h[i].idx > h[j].idx
}
func (h minHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x any)   { *h = append(*h, x.(entry)) }
func (h *minHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// List builds a ranked Item list from scores and parallel IDs, keeping the
// top k.
func List(scores []float64, ids []string, k int) ([]Item, error) {
	if len(scores) != len(ids) {
		return nil, fmt.Errorf("rank: %d scores vs %d ids", len(scores), len(ids))
	}
	idx := TopK(scores, k)
	items := make([]Item, len(idx))
	for p, i := range idx {
		items[p] = Item{Index: i, ID: ids[i], Score: scores[i]}
	}
	return items, nil
}

// Positions returns a map from index to 1-based rank over all scores
// (descending, ties by ascending index).
func Positions(scores []float64) map[int]int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	pos := make(map[int]int, len(idx))
	for p, i := range idx {
		pos[i] = p + 1
	}
	return pos
}

// Format renders a ranked list as the aligned two-column tables the
// paper's case studies print (rank, id, score).
func Format(items []Item) string {
	var b strings.Builder
	width := 0
	for _, it := range items {
		if len(it.ID) > width {
			width = len(it.ID)
		}
	}
	for p, it := range items {
		fmt.Fprintf(&b, "%2d  %-*s  %.4f\n", p+1, width, it.ID, it.Score)
	}
	return b.String()
}
