package rank

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTopKBasics(t *testing.T) {
	scores := []float64{0.1, 0.9, 0.5, 0.9, 0.2}
	got := TopK(scores, 3)
	// Ties broken by ascending index: 1 before 3.
	want := []int{1, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopK = %v, want %v", got, want)
	}
	if got := TopK(scores, 0); got != nil {
		t.Errorf("TopK(0) = %v, want nil", got)
	}
	if got := TopK(scores, 100); len(got) != 5 {
		t.Errorf("TopK over-len = %v", got)
	}
	if got := TopK(nil, 3); got != nil {
		t.Errorf("TopK(nil) = %v", got)
	}
}

func TestTopKMatchesSortReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(8)) // frequent ties
		}
		k := 1 + rng.Intn(n)
		got := TopK(scores, k)

		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(a, b int) bool { return scores[ref[a]] > scores[ref[b]] })
		return reflect.DeepEqual(got, ref[:k])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestList(t *testing.T) {
	scores := []float64{0.3, 0.7}
	ids := []string{"x", "y"}
	items, err := List(scores, ids, 2)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].ID != "y" || items[1].ID != "x" || items[0].Score != 0.7 {
		t.Errorf("List = %v", items)
	}
	if _, err := List(scores, ids[:1], 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPositions(t *testing.T) {
	pos := Positions([]float64{0.5, 0.9, 0.1})
	if pos[1] != 1 || pos[0] != 2 || pos[2] != 3 {
		t.Errorf("Positions = %v", pos)
	}
}

func TestFormat(t *testing.T) {
	s := Format([]Item{{0, "alice", 0.92}, {3, "bob", 0.4}})
	if !strings.Contains(s, "alice") || !strings.Contains(s, "0.9200") {
		t.Errorf("Format = %q", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[1], " 2") {
		t.Errorf("Format layout = %q", s)
	}
}
