// Package relevance answers "how related are these two objects?" without
// asking the caller to name a relevance path. Section 5.1 of the HeteSim
// paper lays out three path-selection strategies — user-specified, weighted
// combination of several paths, and learned weights over labeled pairs —
// and this package operationalizes the latter two as a first-class query:
// it enumerates every schema-valid meta path between the endpoint types (up
// to a length cap), scores the query along each path through the batch
// scheduler so paths with common prefixes share half-chain propagation, and
// combines the per-path scores with a weighted ensemble.
package relevance

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"time"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/obs"
)

// Sentinel errors; callers map these to input-validation failures.
var (
	// ErrNoPaths: the schema admits no path between the endpoint types
	// within the length cap, or every candidate carried zero weight.
	ErrNoPaths = errors.New("relevance: no usable relevance paths")
	// ErrBadOptions marks invalid options (unknown weighting mode, learned
	// mode without weights, malformed explicit path).
	ErrBadOptions = errors.New("relevance: bad options")
)

// Weighting modes.
const (
	WeightUniform = "uniform" // every path weighs 1/n
	WeightDegree  = "degree"  // down-weight high-fanout paths
	WeightLearned = "learned" // caller-supplied weights keyed by path spec
)

// Options tunes an auto-relevance query. The zero value enumerates paths up
// to length 4, caps the candidate set at 16, and combines uniformly.
type Options struct {
	MaxLen   int // maximum path length; default 4
	MaxPaths int // candidate cap after canonical ordering; default 16

	// Paths, when non-empty, bypasses enumeration: the ensemble runs over
	// exactly these path specs (each must parse and connect the endpoints).
	Paths []string

	Weighting string             // WeightUniform (default), WeightDegree, WeightLearned
	Learned   map[string]float64 // spec → weight, required for WeightLearned; zero-weight paths are skipped

	// Workers and PerPathTimeout pass through to the batch scheduler: each
	// per-path score runs under its own deadline so one pathological path
	// cannot starve the ensemble.
	Workers        int
	PerPathTimeout time.Duration

	// DegradeWalks > 0 turns a per-path deadline miss into a Monte Carlo
	// estimate with that many walks, run under DegradeGrace (default 50ms)
	// on a context detached from the caller's expiring one.
	DegradeWalks int
	DegradeGrace time.Duration
}

func (o *Options) defaults() {
	if o.MaxLen <= 0 {
		o.MaxLen = 4
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 16
	}
	if o.Weighting == "" {
		o.Weighting = WeightUniform
	}
	if o.DegradeGrace <= 0 {
		o.DegradeGrace = 50 * time.Millisecond
	}
}

// PathScore is one ensemble member's contribution.
type PathScore struct {
	Path        string  // canonical spec, e.g. "APVPA"
	Weight      float64 // ensemble weight, as combined (not renormalized on failure)
	Score       float64 // HeteSim along this path (or its MC estimate)
	Plan        string  // batch plan: "warm", "full", "subset", "solo"; "monte_carlo" when degraded
	Approximate bool    // score is a Monte Carlo estimate
	Err         string  // non-empty when this path failed and was excluded
}

// Result is an auto-relevance answer: the ensemble score and how each path
// contributed to it.
type Result struct {
	Score       float64
	Paths       []PathScore
	Partial     bool // at least one path failed and was excluded from the sum
	Approximate bool // at least one contributing score is an MC estimate
	Stats       core.BatchStats
}

// Ranked is one entry of a top-k ensemble ranking.
type Ranked struct {
	Index int
	ID    string
	Score float64
}

var (
	metQueries = obs.Default().CounterVec("hetesim_relevance_queries_total",
		"Auto-relevance queries by mode (pair, topk) and outcome (ok, partial, degraded, error).",
		"mode", "outcome")
	metPaths = obs.Default().Histogram("hetesim_relevance_paths",
		"Candidate paths scored per auto-relevance query.", obs.DefCountBuckets())
)

func observeOutcome(mode string, res *Result, err error) {
	switch {
	case err != nil:
		metQueries.With(mode, "error").Inc()
	case res.Partial:
		metQueries.With(mode, "partial").Inc()
	case res.Approximate:
		metQueries.With(mode, "degraded").Inc()
	default:
		metQueries.With(mode, "ok").Inc()
	}
}

// Pair scores the relevance of two nodes with no path given: enumerate,
// score each candidate, combine. Both node indices are within their types.
func Pair(ctx context.Context, e *core.Engine, srcType string, src int, dstType string, dst int, o Options) (*Result, error) {
	res, err := pair(ctx, e, srcType, src, dstType, dst, o)
	observeOutcome("pair", res, err)
	return res, err
}

func pair(ctx context.Context, e *core.Engine, srcType string, src int, dstType string, dst int, o Options) (*Result, error) {
	o.defaults()
	tr := obs.FromContext(ctx)
	esp := tr.Start("enumerate")
	paths, weights, err := candidates(e, srcType, dstType, &o)
	if esp != nil {
		esp.SetAttr("candidates", strconv.Itoa(len(paths))).End()
	}
	if err != nil {
		return nil, err
	}

	sp := tr.Start("score_paths")
	qs := make([]core.BatchQuery, len(paths))
	for i, p := range paths {
		qs[i] = core.BatchQuery{Kind: core.BatchPair, Path: p, Src: src, Dst: dst}
	}
	brs, stats, err := e.ExecuteBatch(ctx, qs, core.BatchOptions{
		Workers: o.Workers, PerQueryTimeout: o.PerPathTimeout,
	})
	if sp != nil {
		sp.SetAttr("paths", strconv.Itoa(len(paths))).
			SetAttr("shared", strconv.Itoa(stats.SharedQueries)).End()
	}
	if err != nil {
		return nil, err
	}

	res := &Result{Paths: make([]PathScore, len(paths)), Stats: stats}
	csp := tr.Start("combine")
	for i, br := range brs {
		ps := PathScore{Path: paths[i].String(), Weight: weights[i], Plan: br.Plan}
		score, ok := br.Score, br.Err == nil
		if !ok && o.DegradeWalks > 0 && errors.Is(br.Err, context.DeadlineExceeded) {
			// The exact score blew its deadline share: estimate it instead,
			// detached from the expiring per-path context.
			mcCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), o.DegradeGrace)
			mc, mcErr := e.PairMonteCarlo(mcCtx, paths[i], src, dst, o.DegradeWalks, 0)
			cancel()
			if mcErr == nil {
				score, ok = mc.Score, true
				ps.Approximate = true
				ps.Plan = "monte_carlo"
				res.Approximate = true
			}
		}
		if !ok {
			ps.Err = br.Err.Error()
			res.Partial = true
		} else {
			ps.Score = score
			res.Score += weights[i] * score
		}
		res.Paths[i] = ps
	}
	if csp != nil {
		csp.SetAttr("score", strconv.FormatFloat(res.Score, 'g', -1, 64)).End()
	}
	metPaths.Observe(float64(len(paths)))
	return res, nil
}

// TopK ranks the k most relevant nodes of targetType against src, scoring
// every candidate path single-source and combining the score vectors with
// the ensemble weights before ranking.
func TopK(ctx context.Context, e *core.Engine, srcType string, src int, targetType string, k int, o Options) (*Result, []Ranked, error) {
	res, ranked, err := topK(ctx, e, srcType, src, targetType, k, o)
	observeOutcome("topk", res, err)
	return res, ranked, err
}

func topK(ctx context.Context, e *core.Engine, srcType string, src int, targetType string, k int, o Options) (*Result, []Ranked, error) {
	o.defaults()
	if k <= 0 {
		return nil, nil, fmt.Errorf("%w: k=%d must be positive", ErrBadOptions, k)
	}
	tr := obs.FromContext(ctx)
	esp := tr.Start("enumerate")
	paths, weights, err := candidates(e, srcType, targetType, &o)
	if esp != nil {
		esp.SetAttr("candidates", strconv.Itoa(len(paths))).End()
	}
	if err != nil {
		return nil, nil, err
	}

	sp := tr.Start("score_paths")
	qs := make([]core.BatchQuery, len(paths))
	for i, p := range paths {
		qs[i] = core.BatchQuery{Kind: core.BatchSingleSource, Path: p, Src: src}
	}
	brs, stats, err := e.ExecuteBatch(ctx, qs, core.BatchOptions{
		Workers: o.Workers, PerQueryTimeout: o.PerPathTimeout,
	})
	if sp != nil {
		sp.SetAttr("paths", strconv.Itoa(len(paths))).
			SetAttr("shared", strconv.Itoa(stats.SharedQueries)).End()
	}
	if err != nil {
		return nil, nil, err
	}

	res := &Result{Paths: make([]PathScore, len(paths)), Stats: stats}
	csp := tr.Start("combine")
	combined := make([]float64, e.Graph().NodeCount(targetType))
	for i, br := range brs {
		ps := PathScore{Path: paths[i].String(), Weight: weights[i], Plan: br.Plan}
		scores, ok := br.Scores, br.Err == nil
		if !ok && o.DegradeWalks > 0 && errors.Is(br.Err, context.DeadlineExceeded) {
			mcCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), o.DegradeGrace)
			mcScores, mcErr := e.SingleSourceMonteCarlo(mcCtx, paths[i], src, o.DegradeWalks, 0)
			cancel()
			if mcErr == nil {
				scores, ok = mcScores, true
				ps.Approximate = true
				ps.Plan = "monte_carlo"
				res.Approximate = true
			}
		}
		if !ok {
			ps.Err = br.Err.Error()
			res.Partial = true
		} else {
			for j, v := range scores {
				combined[j] += weights[i] * v
			}
		}
		res.Paths[i] = ps
	}
	ranked := rankTopK(combined, k)
	for i := range ranked {
		id, err := e.Graph().NodeID(targetType, ranked[i].Index)
		if err == nil {
			ranked[i].ID = id
		}
	}
	if csp != nil {
		csp.SetAttr("k", strconv.Itoa(len(ranked))).End()
	}
	metPaths.Observe(float64(len(paths)))
	return res, ranked, nil
}

// candidates resolves the ensemble's paths and weights: explicit specs or
// schema enumeration, then the weighting mode. Zero-weight paths are
// dropped so they never cost a batch query.
func candidates(e *core.Engine, srcType, dstType string, o *Options) ([]*metapath.Path, []float64, error) {
	s := e.Graph().Schema()
	var paths []*metapath.Path
	if len(o.Paths) > 0 {
		for _, spec := range o.Paths {
			p, err := metapath.Parse(s, spec)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: path %q: %v", ErrBadOptions, spec, err)
			}
			if p.Source() != srcType || p.Target() != dstType {
				return nil, nil, fmt.Errorf("%w: path %s connects (%s,%s), query asks (%s,%s)",
					ErrBadOptions, p, p.Source(), p.Target(), srcType, dstType)
			}
			paths = append(paths, p)
		}
	} else {
		var err error
		paths, err = metapath.EnumerateWith(s, srcType, dstType, metapath.EnumerateOptions{
			MaxLen: o.MaxLen, MaxPaths: o.MaxPaths, DedupReverse: true,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	if len(paths) == 0 {
		return nil, nil, fmt.Errorf("%w: no %s→%s path within length %d",
			ErrNoPaths, srcType, dstType, o.MaxLen)
	}
	weights, err := Weigh(e, paths, o.Weighting, o.Learned)
	if err != nil {
		return nil, nil, err
	}
	// Drop zero-weight paths (learned mode zeroes out unlisted candidates).
	kept := paths[:0]
	keptW := weights[:0]
	for i, p := range paths {
		if weights[i] > 0 {
			kept = append(kept, p)
			keptW = append(keptW, weights[i])
		}
	}
	if len(kept) == 0 {
		return nil, nil, fmt.Errorf("%w: every candidate path has zero weight", ErrNoPaths)
	}
	return kept, keptW, nil
}

// Weigh computes ensemble weights for the given paths under a weighting
// mode. Uniform and degree weights are normalized to sum to 1; learned
// weights are the caller's regression coefficients and are used as-is
// (normalizing them would change the calibrated scale).
func Weigh(e *core.Engine, paths []*metapath.Path, mode string, learned map[string]float64) ([]float64, error) {
	w := make([]float64, len(paths))
	switch mode {
	case WeightUniform, "":
		for i := range w {
			w[i] = 1 / float64(len(paths))
		}
	case WeightDegree:
		// Long high-fanout paths spread probability mass over huge
		// intermediate frontiers and correlate poorly with semantic
		// relatedness (the paper's Section 5.1 observation that longer
		// paths carry weaker semantics). Weight each path by the inverse
		// log of its expected frontier growth and normalize.
		var sum float64
		for i, p := range paths {
			w[i] = 1 / (1 + math.Log(1+pathFanout(e.Graph(), p)))
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
	case WeightLearned:
		if len(learned) == 0 {
			return nil, fmt.Errorf("%w: learned weighting needs a weights map", ErrBadOptions)
		}
		for i, p := range paths {
			lw, ok := learned[p.String()]
			if !ok {
				continue // unlisted → zero → dropped by the caller
			}
			if lw < 0 || math.IsNaN(lw) || math.IsInf(lw, 0) {
				return nil, fmt.Errorf("%w: weight %v for path %s", ErrBadOptions, lw, p)
			}
			w[i] = lw
		}
	default:
		return nil, fmt.Errorf("%w: unknown weighting %q", ErrBadOptions, mode)
	}
	return w, nil
}

// pathFanout estimates a path's frontier growth: the product over steps of
// the average out-degree of the step's relation in the walking direction.
func pathFanout(g *hin.Graph, p *metapath.Path) float64 {
	fan := 1.0
	for _, st := range p.Steps() {
		adj, err := g.Adjacency(st.Relation.Name)
		if err != nil {
			continue
		}
		n := g.NodeCount(st.From())
		if n == 0 {
			continue
		}
		fan *= float64(adj.NNZ()) / float64(n)
	}
	return fan
}

func rankTopK(scores []float64, k int) []Ranked {
	idx := make([]int, 0, len(scores))
	for i, v := range scores {
		if v > 0 {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return idx[a] < idx[b]
	})
	if len(idx) > k {
		idx = idx[:k]
	}
	out := make([]Ranked, len(idx))
	for i, j := range idx {
		out[i] = Ranked{Index: j, Score: scores[j]}
	}
	return out
}

// weightsFile is the on-disk learned-weights format:
//
//	{"weights": {"APA": 0.55, "APVPA": 0.30}}
type weightsFile struct {
	Weights map[string]float64 `json:"weights"`
}

// LoadWeightsFile reads a learned path-weights JSON file.
func LoadWeightsFile(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f weightsFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("relevance: weights file %s: %w", path, err)
	}
	if len(f.Weights) == 0 {
		return nil, fmt.Errorf("%w: weights file %s has no weights", ErrBadOptions, path)
	}
	for spec, w := range f.Weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("%w: weights file %s: weight %v for path %q", ErrBadOptions, path, w, spec)
		}
	}
	return f.Weights, nil
}

// WeightsMap pairs learned weights with their path specs, for persisting a
// learn.PathWeights fit in the LoadWeightsFile format.
func WeightsMap(paths []*metapath.Path, weights []float64) map[string]float64 {
	m := make(map[string]float64, len(paths))
	for i, p := range paths {
		if i < len(weights) {
			m[p.String()] = weights[i]
		}
	}
	return m
}
