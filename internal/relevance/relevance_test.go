package relevance

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// testEngine builds a bibliographic network big enough that the batch side
// planner prefers subset propagation for a two-row family.
func testEngine(tb testing.TB, seed int64) *core.Engine {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("venue", 'V')
	s.MustAddType("conference", 'C')
	s.MustAddType("term", 'T')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "venue")
	s.MustAddRelation("part_of", "venue", "conference")
	s.MustAddRelation("mentions", "paper", "term")
	b := hin.NewBuilder(s)
	nA, nP, nV, nT := 24, 60, 6, 10
	for i := 0; i < nP; i++ {
		pid := "p" + strconv.Itoa(i)
		for k := 0; k < 1+rng.Intn(3); k++ {
			b.AddEdge("writes", "a"+strconv.Itoa(rng.Intn(nA)), pid)
		}
		b.AddEdge("published_in", pid, "v"+strconv.Itoa(rng.Intn(nV)))
		b.AddEdge("mentions", pid, "t"+strconv.Itoa(rng.Intn(nT)))
	}
	for i := 0; i < nV; i++ {
		b.AddEdge("part_of", "v"+strconv.Itoa(i), "c"+strconv.Itoa(rng.Intn(2)))
	}
	return core.NewEngine(b.MustBuild(), core.WithNormalization(true))
}

// TestPairEnsembleMatchesSoloWeightedSum is the differential test of the
// ensemble: under every weighting mode, the auto score equals the weighted
// sum of solo Pair scores computed on a fresh engine — exactly, bit for
// bit, because author→author paths in this schema are all even-length, the
// batch subset rows are bit-identical to solo vector propagation, and both
// sides accumulate in the same canonical path order.
func TestPairEnsembleMatchesSoloWeightedSum(t *testing.T) {
	src, dst := 2, 7
	o := Options{MaxLen: 4, MaxPaths: 8}
	for _, mode := range []string{WeightUniform, WeightDegree, WeightLearned} {
		e := testEngine(t, 9)
		opts := o
		opts.Weighting = mode
		if mode == WeightLearned {
			opts.Learned = map[string]float64{"APA": 0.55, "APVPA": 0.3, "APTPA": 0.15}
		}
		res, err := Pair(context.Background(), e, "author", src, "author", dst, opts)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Partial || res.Approximate {
			t.Fatalf("%s: unexpected partial/approximate: %+v", mode, res)
		}

		// Recompute solo on a fresh engine, same enumeration, same weights.
		fresh := testEngine(t, 9)
		paths, err := metapath.EnumerateWith(fresh.Graph().Schema(), "author", "author",
			metapath.EnumerateOptions{MaxLen: opts.MaxLen, MaxPaths: opts.MaxPaths, DedupReverse: true})
		if err != nil {
			t.Fatal(err)
		}
		weights, err := Weigh(fresh, paths, mode, opts.Learned)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		n := 0
		for i, p := range paths {
			if weights[i] == 0 {
				continue
			}
			v, err := fresh.PairByIndex(context.Background(), p, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if res.Paths[n].Path != p.String() || res.Paths[n].Weight != weights[i] {
				t.Fatalf("%s: contribution %d = %+v, want path %s weight %v",
					mode, n, res.Paths[n], p, weights[i])
			}
			if res.Paths[n].Score != v {
				t.Errorf("%s: path %s batch score %v != solo %v", mode, p, res.Paths[n].Score, v)
			}
			want += weights[i] * v
			n++
		}
		if res.Score != want {
			t.Errorf("%s: ensemble %v != weighted solo sum %v", mode, res.Score, want)
		}
		// The whole point of routing through the batch scheduler: singleton
		// per-path groups still share their common half-chain prefixes.
		if res.Stats.SharedQueries == 0 {
			t.Errorf("%s: no shared queries across %d paths", mode, n)
		}
		if res.Stats.RowSteps >= res.Stats.NaiveRowSteps {
			t.Errorf("%s: row steps %d not below naive %d — prefix sharing bought nothing",
				mode, res.Stats.RowSteps, res.Stats.NaiveRowSteps)
		}
	}
}

func TestPairExplicitPaths(t *testing.T) {
	e := testEngine(t, 11)
	res, err := Pair(context.Background(), e, "author", 0, "author", 1, Options{
		Paths: []string{"APA", "APVPA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Paths) != 2 || res.Paths[0].Path != "APA" || res.Paths[1].Path != "APVPA" {
		t.Fatalf("paths = %+v", res.Paths)
	}
	for _, ps := range res.Paths {
		if ps.Weight != 0.5 {
			t.Errorf("path %s weight %v, want uniform 0.5", ps.Path, ps.Weight)
		}
	}
	// A path that parses but connects the wrong endpoints is a bad option.
	if _, err := Pair(context.Background(), e, "author", 0, "author", 1, Options{
		Paths: []string{"APVC"},
	}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("wrong-endpoint path err = %v", err)
	}
	if _, err := Pair(context.Background(), e, "author", 0, "author", 1, Options{
		Paths: []string{"not a path"},
	}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("junk path err = %v", err)
	}
}

func TestPairWeightingValidation(t *testing.T) {
	e := testEngine(t, 13)
	if _, err := Pair(context.Background(), e, "author", 0, "author", 1, Options{
		Weighting: WeightLearned,
	}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("learned without weights err = %v", err)
	}
	if _, err := Pair(context.Background(), e, "author", 0, "author", 1, Options{
		Weighting: "bogus",
	}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("unknown weighting err = %v", err)
	}
	// Learned weights naming no enumerated path zero out everything.
	if _, err := Pair(context.Background(), e, "author", 0, "author", 1, Options{
		Weighting: WeightLearned,
		Learned:   map[string]float64{"APVC": 1},
	}); !errors.Is(err, ErrNoPaths) {
		t.Errorf("all-zero weights err = %v", err)
	}
	if _, err := Pair(context.Background(), e, "author", 0, "author", 1, Options{
		Weighting: WeightLearned,
		Learned:   map[string]float64{"APA": -1},
	}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative weight err = %v", err)
	}
}

func TestPairNoPaths(t *testing.T) {
	// term→conference requires length 3 (TPVC); a cap of 2 leaves nothing.
	e := testEngine(t, 15)
	if _, err := Pair(context.Background(), e, "term", 0, "conference", 0, Options{
		MaxLen: 2,
	}); !errors.Is(err, ErrNoPaths) {
		t.Errorf("err = %v, want ErrNoPaths", err)
	}
}

// TestPairDegradeMonteCarlo: a per-path deadline too short for exact work
// degrades every path to a Monte Carlo estimate instead of failing.
func TestPairDegradeMonteCarlo(t *testing.T) {
	e := testEngine(t, 17)
	res, err := Pair(context.Background(), e, "author", 1, "author", 2, Options{
		PerPathTimeout: time.Nanosecond,
		DegradeWalks:   64,
		DegradeGrace:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Approximate {
		t.Fatal("expected approximate result under 1ns per-path deadline")
	}
	for _, ps := range res.Paths {
		if ps.Err != "" {
			t.Errorf("path %s failed (%s) instead of degrading", ps.Path, ps.Err)
		}
		if !ps.Approximate || ps.Plan != "monte_carlo" {
			t.Errorf("path %s = %+v, want monte_carlo degradation", ps.Path, ps)
		}
	}
}

// TestPairPartialFailure: with degradation off, a blown per-path deadline
// excludes that path but still answers.
func TestPairPartialFailure(t *testing.T) {
	e := testEngine(t, 19)
	res, err := Pair(context.Background(), e, "author", 1, "author", 2, Options{
		PerPathTimeout: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatal("expected partial result")
	}
	for _, ps := range res.Paths {
		if ps.Err == "" {
			t.Errorf("path %s should have failed under 1ns deadline", ps.Path)
		}
	}
	if res.Score != 0 {
		t.Errorf("score = %v with every path excluded", res.Score)
	}
}

func TestTopKMatchesHandCombination(t *testing.T) {
	e := testEngine(t, 21)
	src, k := 3, 5
	res, ranked, err := TopK(context.Background(), e, "author", src, "conference", k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Approximate {
		t.Fatalf("unexpected partial/approximate: %+v", res)
	}
	fresh := testEngine(t, 21)
	paths, err := metapath.EnumerateWith(fresh.Graph().Schema(), "author", "conference",
		metapath.EnumerateOptions{MaxLen: 4, MaxPaths: 16, DedupReverse: true})
	if err != nil {
		t.Fatal(err)
	}
	weights, err := Weigh(fresh, paths, WeightUniform, nil)
	if err != nil {
		t.Fatal(err)
	}
	combined := make([]float64, fresh.Graph().NodeCount("conference"))
	for i, p := range paths {
		ss, err := fresh.SingleSourceByIndex(context.Background(), p, src)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range ss {
			combined[j] += weights[i] * v
		}
	}
	want := rankTopK(combined, k)
	if len(ranked) != len(want) {
		t.Fatalf("ranked %d entries, want %d", len(ranked), len(want))
	}
	for i := range want {
		if ranked[i].Index != want[i].Index || ranked[i].Score != want[i].Score {
			t.Errorf("rank %d = %+v, want %+v", i, ranked[i], want[i])
		}
		id, err := fresh.Graph().NodeID("conference", want[i].Index)
		if err != nil {
			t.Fatal(err)
		}
		if ranked[i].ID != id {
			t.Errorf("rank %d id = %q, want %q", i, ranked[i].ID, id)
		}
	}
}

func TestLoadWeightsFile(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good := write("good.json", `{"weights": {"APA": 0.6, "APVPA": 0.4}}`)
	w, err := LoadWeightsFile(good)
	if err != nil {
		t.Fatal(err)
	}
	if w["APA"] != 0.6 || w["APVPA"] != 0.4 {
		t.Errorf("weights = %v", w)
	}
	if _, err := LoadWeightsFile(write("junk.json", "{")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := LoadWeightsFile(write("empty.json", `{"weights": {}}`)); !errors.Is(err, ErrBadOptions) {
		t.Errorf("empty weights err = %v", err)
	}
	if _, err := LoadWeightsFile(write("neg.json", `{"weights": {"APA": -0.5}}`)); !errors.Is(err, ErrBadOptions) {
		t.Errorf("negative weight err = %v", err)
	}
	if _, err := LoadWeightsFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestWeightsMap(t *testing.T) {
	e := testEngine(t, 23)
	s := e.Graph().Schema()
	paths := []*metapath.Path{
		metapath.MustParse(s, "APA"),
		metapath.MustParse(s, "APVPA"),
	}
	m := WeightsMap(paths, []float64{0.7, 0.3})
	if m["APA"] != 0.7 || m["APVPA"] != 0.3 {
		t.Errorf("map = %v", m)
	}
}

func TestPairBadIndex(t *testing.T) {
	e := testEngine(t, 25)
	res, err := Pair(context.Background(), e, "author", 9999, "author", 0, Options{})
	if err != nil {
		t.Fatal(err) // per-query validation is positional, not batch-fatal
	}
	if !res.Partial {
		t.Error("out-of-range source should fail every path")
	}
	for _, ps := range res.Paths {
		if ps.Err == "" {
			t.Errorf("path %s accepted index 9999", ps.Path)
		}
	}
}
