package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// POST /v1/batch at the router: the batch is split into per-path groups
// (by canonical path key — the unit of both cache affinity and rendezvous
// placement), each group is fanned out to the replica owning its key, and
// the replies are re-assembled slot-for-slot in the original order. A
// group whose replica fleet is entirely unavailable fails per-slot with
// code "replica_unavailable"; the batch as a whole always answers 200 once
// it decodes.

// routingFields is the subset of a batch query the router must read to
// place it; everything else passes through opaquely.
type routingFields struct {
	Kind   string `json:"kind"`
	Path   string `json:"path"`
	Source string `json:"source"`
	Target string `json:"target,omitempty"`
}

// slotError is the router-synthesized result slot for a query it could not
// get answered.
type slotError struct {
	Kind   string `json:"kind,omitempty"`
	Path   string `json:"path,omitempty"`
	Source string `json:"source,omitempty"`
	Target string `json:"target,omitempty"`
	Error  string `json:"error"`
	Code   string `json:"code"`
}

// batchStats mirrors the replica's batch stats block; the router sums the
// additive fields across sub-batches and recomputes the ratios.
type batchStats struct {
	Queries       int     `json:"queries"`
	Groups        int     `json:"groups"`
	SharedQueries int     `json:"shared_queries"`
	ChainBuilds   int     `json:"chain_builds"`
	RowSteps      int     `json:"row_steps"`
	NaiveRowSteps int     `json:"naive_row_steps"`
	PrefixResumes int     `json:"prefix_resumes"`
	Amortization  float64 `json:"amortization"`
	DurationMS    float64 `json:"duration_ms"`
}

func (a *batchStats) add(b batchStats) {
	a.Queries += b.Queries
	a.Groups += b.Groups
	a.SharedQueries += b.SharedQueries
	a.ChainBuilds += b.ChainBuilds
	a.RowSteps += b.RowSteps
	a.NaiveRowSteps += b.NaiveRowSteps
	a.PrefixResumes += b.PrefixResumes
}

// subResult is one slot's outcome after fan-out: the replica's rendered
// result verbatim, or a router-synthesized error.
type subResult struct {
	raw     json.RawMessage // nil when the group's routing failed
	errMsg  string
	errCode string
}

// fanout routes queries[i] under keys[i]: slots sharing a key travel in
// one sub-batch to the key's owner (keeping the replica-side scheduler's
// amortization within the group), groups run concurrently, and every
// slot comes back filled — with the replica's result or with a routing
// error. Returns the slots, the summed replica stats, and the fan-out
// width.
func (r *Router) fanout(ctx context.Context, queries []json.RawMessage, keys []string, minSeq uint64) ([]subResult, batchStats, int) {
	groups := make(map[string][]int)
	for i, k := range keys {
		groups[k] = append(groups[k], i)
	}
	out := make([]subResult, len(queries))
	var (
		mu    sync.Mutex
		stats batchStats
		wg    sync.WaitGroup
	)
	for key, slots := range groups {
		wg.Add(1)
		go func(key string, slots []int) {
			defer wg.Done()
			metFanout.Inc()
			sub := make([]json.RawMessage, len(slots))
			for i, s := range slots {
				sub[i] = queries[s]
			}
			body, err := json.Marshal(map[string]any{"queries": sub})
			if err != nil {
				fillGroupError(out, slots, "encoding sub-batch: "+err.Error(), "internal")
				return
			}
			res, err := r.forward(ctx, key, minSeq, func(base string) (*http.Request, error) {
				req, err := http.NewRequest(http.MethodPost, base+"/v1/batch", bytes.NewReader(body))
				if err != nil {
					return nil, err
				}
				req.Header.Set("Content-Type", "application/json")
				return req, nil
			})
			if err != nil {
				code := "replica_unavailable"
				if errors.Is(err, errStaleFleet) {
					code = "stale_replicas"
				}
				fillGroupError(out, slots, "no replica could serve the path group: "+err.Error(), code)
				return
			}
			if res.status != http.StatusOK {
				var eb errorBody
				msg := fmt.Sprintf("replica %s answered %d", res.replica, res.status)
				code := "replica_error"
				if json.Unmarshal(res.body, &eb) == nil && eb.Error != "" {
					msg, code = eb.Error, eb.Code
				}
				fillGroupError(out, slots, msg, code)
				return
			}
			var sr struct {
				Results []json.RawMessage `json:"results"`
				Stats   batchStats        `json:"stats"`
			}
			if err := json.Unmarshal(res.body, &sr); err != nil || len(sr.Results) != len(slots) {
				fillGroupError(out, slots,
					fmt.Sprintf("malformed sub-batch reply from %s (%d results for %d queries)", res.replica, len(sr.Results), len(slots)),
					"replica_error")
				return
			}
			for i, s := range slots {
				out[s] = subResult{raw: sr.Results[i]}
			}
			mu.Lock()
			stats.add(sr.Stats)
			mu.Unlock()
		}(key, slots)
	}
	wg.Wait()
	return out, stats, len(groups)
}

func fillGroupError(out []subResult, slots []int, msg, code string) {
	for _, s := range slots {
		out[s] = subResult{errMsg: msg, errCode: code}
	}
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	var breq struct {
		Queries []json.RawMessage `json:"queries"`
	}
	if err := json.NewDecoder(req.Body).Decode(&breq); err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: "decoding batch: " + err.Error(), Code: "bad_request"})
		return
	}
	if len(breq.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "empty batch", Code: "bad_request"})
		return
	}
	metas := make([]routingFields, len(breq.Queries))
	keys := make([]string, len(breq.Queries))
	for i, q := range breq.Queries {
		json.Unmarshal(q, &metas[i]) // undecodable slots fail replica-side, in place
		keys[i] = r.canonicalKey(metas[i].Path)
	}
	slots, stats, groups := r.fanout(req.Context(), breq.Queries, keys, minWALSeq(req))

	results := make([]json.RawMessage, len(slots))
	for i, s := range slots {
		if s.raw != nil {
			results[i] = s.raw
			continue
		}
		results[i], _ = json.Marshal(slotError{
			Kind: metas[i].Kind, Path: metas[i].Path,
			Source: metas[i].Source, Target: metas[i].Target,
			Error: s.errMsg, Code: s.errCode,
		})
	}
	stats.Queries = len(slots)
	if stats.Groups == 0 {
		stats.Groups = groups
	}
	if stats.Groups > 0 {
		stats.Amortization = float64(stats.Queries) / float64(stats.Groups)
	}
	stats.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, map[string]any{"results": results, "stats": stats})
}
