package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetesim/internal/chaos"
	"hetesim/internal/hin"
	"hetesim/internal/server"
)

// testGraph is the paper's running example: authors writing papers
// published in conferences. Every replica serves an identical copy.
func testGraph() *hin.Graph {
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("writes", "Bob", "p3")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	return b.MustBuild()
}

// testReplica is one in-process hetesimd: a real server.Server behind a
// fault-injecting listener, so tests can kill and revive it without
// rebinding its address.
type testReplica struct {
	srv   *server.Server
	ts    *httptest.Server
	fl    *chaos.Listener
	slowy atomic.Int64 // per-request handler delay, nanoseconds
}

func (tr *testReplica) kill() {
	tr.fl.Refuse(true)
	tr.fl.CloseActive()
}

func (tr *testReplica) revive() { tr.fl.Refuse(false) }

func newTestReplica(t *testing.T) *testReplica {
	t.Helper()
	tr := &testReplica{srv: server.New(testGraph())}
	tr.srv.MarkReady()
	h := tr.srv.Handler()
	tr.ts = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := tr.slowy.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		h.ServeHTTP(w, r)
	}))
	tr.fl = chaos.WrapListener(tr.ts.Listener)
	tr.ts.Listener = tr.fl
	tr.ts.Start()
	t.Cleanup(tr.ts.Close)
	return tr
}

// newCluster spins up n replicas and a router fronting them. The returned
// router has been Started (initial probes done, schema fetched from the
// fleet over HTTP).
func newCluster(t *testing.T, n int, opts ...Option) (*Router, []*testReplica) {
	t.Helper()
	reps := make([]*testReplica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = newTestReplica(t)
		urls[i] = reps[i].ts.URL
	}
	base := []Option{
		WithRetryPolicy(RetryPolicy{Retries: 3, Base: 2 * time.Millisecond, MaxWait: 20 * time.Millisecond}),
		WithBreaker(3, 150*time.Millisecond),
		WithHealthInterval(50 * time.Millisecond),
		WithLogf(t.Logf),
	}
	rt, err := New(urls, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rt.Start(ctx)
	if rt.schema.Load() == nil {
		t.Fatal("router did not fetch a schema from the fleet")
	}
	return rt, reps
}

// replicaFor returns the test replica owning key (rendezvous rank 0).
func replicaFor(rt *Router, reps []*testReplica, key string) *testReplica {
	owner := rt.rank(key)[0]
	for _, tr := range reps {
		if strings.TrimRight(tr.ts.URL, "/") == owner.base {
			return tr
		}
	}
	return nil
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s response: %v", url, err)
	}
	return resp, out
}

var batchPaths = []string{"APA", "APC", "CPA", "PCP", "PAP", "APCPA"}

func testBatchBody(k int) map[string]any {
	queries := make([]map[string]any, 0, len(batchPaths))
	for _, p := range batchPaths {
		q := map[string]any{"kind": "topk", "path": p, "k": k}
		switch p[0] {
		case 'A':
			q["source"] = "Tom"
		case 'C':
			q["source"] = "KDD"
		case 'P':
			q["source"] = "p1"
		}
		queries = append(queries, q)
	}
	return map[string]any{"queries": queries}
}

// TestClusterKillMidBatch is the acceptance scenario: a 3-replica cluster
// takes continuous batch traffic while one replica is killed mid-stream
// and later revived. Every single batch request must answer 200 with a
// full result set — failure is per-slot at worst, never whole-request —
// the dead replica's breaker must open and close again after the revival,
// and the retry/breaker counters must show up in /metrics.
func TestClusterKillMidBatch(t *testing.T) {
	// Probes run once at Start (marking everyone healthy) and then never
	// again, so the breaker — not the health prober — is what sheds the
	// dead replica. Without this the breaker-open assertion races the
	// prober: under load the workers may not land three failures on the
	// victim before a probe tick marks it unhealthy and takes it out of
	// rotation.
	rt, reps := newCluster(t, 3, WithHealthInterval(time.Hour))
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	victim := replicaFor(rt, reps, rt.canonicalKey("APA"))
	if victim == nil {
		t.Fatal("no owner for APA")
	}

	var (
		wg            sync.WaitGroup
		wholeFailures atomic.Int64
		requests      atomic.Int64
		slotErrors    atomic.Int64
		stop          atomic.Bool
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				raw, _ := json.Marshal(testBatchBody(3))
				resp, err := client.Post(front.URL+"/v1/batch", "application/json", bytes.NewReader(raw))
				if err != nil {
					wholeFailures.Add(1)
					continue
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				requests.Add(1)
				if rerr != nil || resp.StatusCode != http.StatusOK {
					wholeFailures.Add(1)
					continue
				}
				var br struct {
					Results []struct {
						Error string `json:"error"`
					} `json:"results"`
				}
				if json.Unmarshal(body, &br) != nil || len(br.Results) != len(batchPaths) {
					wholeFailures.Add(1)
					continue
				}
				for _, res := range br.Results {
					if res.Error != "" {
						slotErrors.Add(1)
					}
				}
			}
		}()
	}

	time.Sleep(150 * time.Millisecond) // healthy traffic
	victim.kill()
	time.Sleep(400 * time.Millisecond) // degraded traffic: retries + breaker
	victim.revive()
	time.Sleep(400 * time.Millisecond) // recovery traffic
	stop.Store(true)
	wg.Wait()

	if n := requests.Load(); n == 0 {
		t.Fatal("no batch requests completed")
	}
	if n := wholeFailures.Load(); n != 0 {
		t.Fatalf("%d whole-request failures; the batch surface must degrade per-slot only", n)
	}
	t.Logf("%d batches, %d transient slot errors", requests.Load(), slotErrors.Load())

	// The victim's breaker must have opened while it was dead...
	metrics := getText(t, client, front.URL+"/metrics")
	victimBase := strings.TrimRight(victim.ts.URL, "/")
	if !strings.Contains(metrics, `hetesim_router_breaker_transitions_total{replica="`+victimBase+`",to="open"}`) {
		t.Error("breaker never opened for the killed replica")
	}
	if !strings.Contains(metrics, "hetesim_router_retries_total") {
		t.Error("retry counter missing from /metrics")
	}
	if !strings.Contains(metrics, "hetesim_router_routing_total") {
		t.Error("routing decision counters missing from /metrics")
	}

	// ...and must close again now that it is back: drive traffic until the
	// half-open probe lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := postJSON(t, client, front.URL+"/v1/batch", testBatchBody(3))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-revival batch answered %d", resp.StatusCode)
		}
		var rb struct {
			Replicas []replicaBody `json:"replicas"`
		}
		getJSON(t, client, front.URL+"/v1/admin/replicas", &rb)
		closed := false
		for _, rep := range rb.Replicas {
			if rep.URL == victimBase && rep.Breaker == "closed" && rep.Healthy {
				closed = true
			}
		}
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim breaker never closed after revival: %+v", rb.Replicas)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func getText(t *testing.T, client *http.Client, url string) string {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func getJSON(t *testing.T, client *http.Client, url string, into any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

// TestWarmFromSnapshot: a replica that imports a warm peer's snapshot
// serves its first query from the shipped chain cache — zero chain builds
// — while the donor needed real builds for the same query.
func TestWarmFromSnapshot(t *testing.T) {
	donor := newTestReplica(t)
	client := &http.Client{Timeout: 5 * time.Second}

	// Two queries sharing the APCPA group: a solo slot would be answered by
	// row propagation without materializing chains, and an empty chain cache
	// would make the snapshot (and this test) vacuous.
	batch := map[string]any{"queries": []map[string]any{
		{"kind": "pair", "path": "APCPA", "source": "Tom", "target": "Mary"},
		{"kind": "pair", "path": "APCPA", "source": "Mary", "target": "Bob"},
	}}
	var br struct {
		Results []struct {
			Score *float64 `json:"score"`
			Error string   `json:"error"`
		} `json:"results"`
		Stats struct {
			ChainBuilds int `json:"chain_builds"`
		} `json:"stats"`
	}
	resp, body := postJSON(t, client, donor.ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("donor batch: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Error != "" || br.Results[0].Score == nil {
		t.Fatalf("donor result: %+v", br.Results[0])
	}
	if br.Stats.ChainBuilds == 0 {
		t.Fatal("cold donor reported zero chain builds; the warmth assertion below would be vacuous")
	}
	donorScore := *br.Results[0].Score

	// Ship the snapshot to a fresh replica — the -warm-from boot path.
	snap, err := FetchSnapshot(context.Background(), client, donor.ts.URL, 3)
	if err != nil {
		t.Fatal(err)
	}
	joiner := newTestReplica(t)
	n, err := joiner.srv.ImportSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("snapshot import admitted zero chains")
	}

	resp, body = postJSON(t, client, joiner.ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("joiner batch: %d %s", resp.StatusCode, body)
	}
	br.Stats.ChainBuilds = -1
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Error != "" || br.Results[0].Score == nil {
		t.Fatalf("joiner result: %+v", br.Results[0])
	}
	if *br.Results[0].Score != donorScore {
		t.Fatalf("joiner score %v != donor score %v", *br.Results[0].Score, donorScore)
	}
	if br.Stats.ChainBuilds != 0 {
		t.Fatalf("joiner's first query built %d chains; a warm joiner must build none", br.Stats.ChainBuilds)
	}

	// The joiner's /readyz now advertises its warmth.
	var ready struct {
		SnapshotAge float64 `json:"snapshot_age_seconds"`
	}
	getJSON(t, client, joiner.ts.URL+"/readyz", &ready)
	if ready.SnapshotAge < 0 {
		t.Fatalf("snapshot_age_seconds = %v after import, want >= 0", ready.SnapshotAge)
	}
}

// TestFetchSnapshotTornStream: a mid-body connection reset during the
// snapshot download resumes from the reached offset and still yields a
// checksum-valid snapshot.
func TestFetchSnapshotTornStream(t *testing.T) {
	donor := newTestReplica(t)
	client := &http.Client{Timeout: 5 * time.Second}

	// Materialize enough chains that the snapshot has a body worth tearing:
	// paired queries per path so each group shares and actually builds.
	for _, p := range []string{"APCPA", "APA"} {
		resp, body := postJSON(t, client, donor.ts.URL+"/v1/batch", map[string]any{
			"queries": []map[string]any{
				{"kind": "pair", "path": p, "source": "Tom", "target": "Mary"},
				{"kind": "pair", "path": p, "source": "Mary", "target": "Bob"},
			},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warming donor on %s: %d %s", p, resp.StatusCode, body)
		}
	}
	whole, err := FetchSnapshot(context.Background(), client, donor.ts.URL, 1)
	if err != nil {
		t.Fatal(err)
	}

	tr := &chaos.Transport{}
	torn := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	tr.ResetBodyAfter(64, 1) // first stream dies after 64 bytes
	snap, err := FetchSnapshot(context.Background(), torn, donor.ts.URL, 5)
	if err != nil {
		t.Fatalf("resumable fetch failed after torn stream: %v", err)
	}
	if snap.Fingerprint != whole.Fingerprint || len(snap.Sections) != len(whole.Sections) {
		t.Fatalf("resumed snapshot differs: %d sections fp %016x, want %d sections fp %016x",
			len(snap.Sections), snap.Fingerprint, len(whole.Sections), whole.Fingerprint)
	}

	joiner := newTestReplica(t)
	if n, err := joiner.srv.ImportSnapshot(snap); err != nil || n == 0 {
		t.Fatalf("importing resumed snapshot: n=%d err=%v", n, err)
	}
}

// TestRelevancePartialFailure (satellite): a scattered /v1/relevance whose
// scored path's replica is down answers partial=true with the surviving
// contributions unrenormalized — the failed path's weight is not
// redistributed, so the partial score is a lower bound on the full one.
func TestRelevancePartialFailure(t *testing.T) {
	// retries=0: the dead path group must actually fail rather than fall
	// back, and a long health interval keeps the stale "healthy" view.
	rt, reps := newCluster(t, 3,
		WithRetryPolicy(RetryPolicy{Retries: 0, Base: time.Millisecond, MaxWait: 5 * time.Millisecond}),
		WithHealthInterval(time.Hour))
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	relReq := map[string]any{
		"source": "Tom", "source_type": "author",
		"target": "Mary", "target_type": "author",
		"weighting": "uniform",
	}

	// Healthy baseline: full ensemble.
	var full relevanceResponse
	resp, body := postJSON(t, client, front.URL+"/v1/relevance", relReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy relevance: %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if full.Partial || full.Score == nil || len(full.Paths) < 2 {
		t.Fatalf("healthy ensemble: partial=%v score=%v paths=%d", full.Partial, full.Score, len(full.Paths))
	}

	// Kill the replica owning the first path's group. Distinct-ownership is
	// not guaranteed by hashing, so skip (rather than fail) if one replica
	// owns every path — with 3 replicas and 2+ paths this is rare.
	victimKey := rt.canonicalKey(full.Paths[0].Path)
	survivors := false
	for _, pb := range full.Paths[1:] {
		if rt.rank(rt.canonicalKey(pb.Path))[0] != rt.rank(victimKey)[0] {
			survivors = true
		}
	}
	if !survivors {
		t.Skip("one replica owns every candidate path; partial-failure split not reachable with this hash layout")
	}
	replicaFor(rt, reps, victimKey).kill()

	var part relevanceResponse
	resp, body = postJSON(t, client, front.URL+"/v1/relevance", relReq)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded relevance must still answer 200, got %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &part); err != nil {
		t.Fatal(err)
	}
	if !part.Partial {
		t.Fatalf("killed path owner but partial=false: %s", body)
	}
	if part.Score == nil {
		t.Fatal("partial answer lost its surviving score entirely")
	}

	var survived, failed int
	expect := 0.0
	for i, pb := range part.Paths {
		if wantW := full.Paths[i].Weight; pb.Weight != wantW {
			t.Errorf("path %s weight %v != healthy weight %v (weights must stay unrenormalized)",
				pb.Path, pb.Weight, wantW)
		}
		if pb.Error != "" {
			failed++
			continue
		}
		survived++
		expect += pb.Weight * pb.Score
	}
	if failed == 0 || survived == 0 {
		t.Fatalf("want a mix of failed and surviving paths, got %d failed / %d survived", failed, survived)
	}
	if diff := *part.Score - expect; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("partial score %v != sum of surviving weighted contributions %v", *part.Score, expect)
	}
	if *part.Score >= *full.Score {
		t.Errorf("partial score %v not below full score %v; failed weight must not be redistributed",
			*part.Score, *full.Score)
	}
}

// TestHedgedRead: with hedging on, a request whose primary replica turned
// slow is answered by the hedge within the clamp window instead of waiting
// out the primary.
func TestHedgedRead(t *testing.T) {
	rt, reps := newCluster(t, 2, WithHedging(5*time.Millisecond, 20*time.Millisecond))
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	key := rt.canonicalKey("APC")
	owner := replicaFor(rt, reps, key)
	owner.slowy.Store(int64(500 * time.Millisecond))

	start := time.Now()
	resp, body := postJSON(t, client, front.URL+"/v1/batch", map[string]any{
		"queries": []map[string]any{{"kind": "pair", "path": "APC", "source": "Tom", "target": "KDD"}},
	})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged batch: %d %s", resp.StatusCode, body)
	}
	var br struct {
		Results []struct {
			Error string   `json:"error"`
			Score *float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Error != "" || br.Results[0].Score == nil {
		t.Fatalf("hedged result: %+v", br.Results[0])
	}
	if elapsed >= 450*time.Millisecond {
		t.Fatalf("hedged request took %v; the hedge should beat the %v primary", elapsed, 500*time.Millisecond)
	}
	metrics := getText(t, client, front.URL+"/metrics")
	if !strings.Contains(metrics, "hetesim_router_hedges_total") {
		t.Error("hedge counter missing from /metrics")
	}
}

// TestRendezvousPlacement: the canonical key collapses a path with its
// reverse onto one replica, and placement is deterministic.
func TestRendezvousPlacement(t *testing.T) {
	rt, _ := newCluster(t, 3)
	for _, spec := range []string{"APC", "APA", "APCPA"} {
		k := rt.canonicalKey(spec)
		if got := rt.rank(k)[0]; got != rt.rank(k)[0] {
			t.Fatalf("placement for %s not deterministic", spec)
		}
	}
	// APC reversed is CPA: same canonical key, same owner.
	if rt.canonicalKey("APC") != rt.canonicalKey("CPA") {
		t.Errorf("canonicalKey(APC)=%q != canonicalKey(CPA)=%q — Property 1 placement broken",
			rt.canonicalKey("APC"), rt.canonicalKey("CPA"))
	}
}

// TestProxyPairAndTopK: the plain GET query surface round-trips through
// the router unchanged.
func TestProxyPairAndTopK(t *testing.T) {
	rt, _ := newCluster(t, 3)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := &http.Client{Timeout: 5 * time.Second}

	var pair struct {
		Score   float64 `json:"score"`
		Measure string  `json:"measure"`
	}
	getJSON(t, client, front.URL+"/v1/pair?path=APCPA&source=Tom&target=Mary", &pair)
	if pair.Score <= 0 || pair.Score > 1 {
		t.Fatalf("proxied pair score = %v", pair.Score)
	}
	var topk struct {
		Results []struct {
			ID string `json:"id"`
		} `json:"results"`
	}
	getJSON(t, client, front.URL+"/v1/topk?path=APC&source=Tom&k=2", &topk)
	if len(topk.Results) == 0 {
		t.Fatalf("proxied topk returned nothing: %+v", topk)
	}
	var ready struct {
		Status  string `json:"status"`
		Healthy int    `json:"healthy"`
	}
	getJSON(t, client, front.URL+"/readyz", &ready)
	if ready.Status != "ready" || ready.Healthy != 3 {
		t.Fatalf("router readyz = %+v", ready)
	}
}

// TestReadyzFreshnessFields (satellite): the replica's /readyz carries
// wal_seq and snapshot_age_seconds so the router can rank freshness.
func TestReadyzFreshnessFields(t *testing.T) {
	rep := newTestReplica(t)
	client := &http.Client{Timeout: 5 * time.Second}
	var ready map[string]any
	getJSON(t, client, rep.ts.URL+"/readyz", &ready)
	if _, ok := ready["wal_seq"]; !ok {
		t.Error("readyz missing wal_seq")
	}
	age, ok := ready["snapshot_age_seconds"].(float64)
	if !ok {
		t.Fatalf("readyz snapshot_age_seconds = %v", ready["snapshot_age_seconds"])
	}
	if age != -1 {
		t.Errorf("never-snapshotted replica reports age %v, want -1", age)
	}
}

var _ = fmt.Sprintf // keep fmt for debug edits
