package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hetesim/internal/chaos"
	"hetesim/internal/hin"
	"hetesim/internal/server"
)

// newWALReplica is a testReplica with durability: its own WAL and base
// graph file, so it can accept mutations, replicate them, and compact.
func newWALReplica(t *testing.T) *testReplica {
	t.Helper()
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.json")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := hin.Write(f, testGraph()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	tr := &testReplica{srv: server.New(testGraph(),
		server.WithWALPath(filepath.Join(dir, "edges.wal")),
		server.WithReloadFrom(graphPath),
		server.WithLogf(t.Logf))}
	tr.srv.MarkReady()
	if _, err := tr.srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	h := tr.srv.Handler()
	tr.ts = httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := tr.slowy.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		h.ServeHTTP(w, r)
	}))
	tr.fl = chaos.WrapListener(tr.ts.Listener)
	tr.ts.Listener = tr.fl
	tr.ts.Start()
	t.Cleanup(tr.ts.Close)
	return tr
}

// newReplicatedCluster wires the full fleet topology: n WAL replicas, a
// router electing a primary among them, and a follower loop on every
// replica pointed at the router (router-assigned mode: the elected
// replica stands down as follower and accepts writes, the rest replicate
// from it).
func newReplicatedCluster(t *testing.T, n int, opts ...Option) (*Router, *httptest.Server, []*testReplica) {
	t.Helper()
	reps := make([]*testReplica, n)
	urls := make([]string, n)
	for i := range reps {
		reps[i] = newWALReplica(t)
		urls[i] = reps[i].ts.URL
	}
	base := []Option{
		WithRetryPolicy(RetryPolicy{Retries: 3, Base: 2 * time.Millisecond, MaxWait: 20 * time.Millisecond}),
		WithBreaker(3, 100*time.Millisecond),
		WithHealthInterval(20 * time.Millisecond),
		WithLogf(t.Logf),
	}
	rt, err := New(urls, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt.Start(ctx)
	front := httptest.NewServer(rt.Handler())
	done := make(chan struct{}, n)
	for _, tr := range reps {
		go func(tr *testReplica) {
			defer func() { done <- struct{}{} }()
			tr.srv.RunFollower(ctx, server.FollowerOptions{
				Target:   front.URL,
				Self:     tr.ts.URL,
				Interval: 5 * time.Millisecond,
				Logf:     t.Logf,
			})
		}(tr)
	}
	t.Cleanup(func() {
		cancel()
		for i := 0; i < n; i++ {
			<-done
		}
		front.Close()
	})
	return rt, front, reps
}

// waitPrimary polls until the router has elected a primary and the
// elected replica has noticed (accepts writes), returning its testReplica.
func waitPrimary(t *testing.T, rt *Router, reps []*testReplica) *testReplica {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if p := rt.primary.Load(); p != nil {
			for _, tr := range reps {
				if strings.TrimRight(tr.ts.URL, "/") == p.base && tr.srv.AcceptsWrites() {
					return tr
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("router never elected a primary the replica itself agrees with")
	return nil
}

// routedWrite posts one mutation batch through the router, retrying
// not-primary/failover 503s under the batch's idempotency key — the
// client-side protocol for writing through an electing fleet. Returns the
// acked WAL sequence.
func routedWrite(t *testing.T, client *http.Client, frontURL, key string, ops []hin.Op) (uint64, bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := postJSON(t, client, frontURL+"/v1/admin/edges", map[string]any{"key": key, "ops": ops})
		switch resp.StatusCode {
		case http.StatusOK:
			var mb struct {
				Seq uint64 `json:"seq"`
			}
			if err := json.Unmarshal(body, &mb); err != nil || mb.Seq == 0 {
				t.Fatalf("write ack unparsable: %v %s", err, body)
			}
			if h := resp.Header.Get("X-Hetesim-WAL-Seq"); h != fmt.Sprint(mb.Seq) {
				t.Fatalf("ack header X-Hetesim-WAL-Seq=%q, body seq %d", h, mb.Seq)
			}
			return mb.Seq, true
		case http.StatusServiceUnavailable:
			time.Sleep(10 * time.Millisecond) // failover window; same key, retry
		default:
			t.Fatalf("routed write %s: %d %s", key, resp.StatusCode, body)
		}
	}
	return 0, false
}

// waitReplicated polls until every live replica's reported wal_seq has
// reached seq — the point where a failover has an eligible candidate.
func waitReplicated(t *testing.T, client *http.Client, frontURL string, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var rb struct {
			Replicas []replicaBody `json:"replicas"`
		}
		getJSON(t, client, frontURL+"/v1/admin/replicas", &rb)
		ok := true
		for _, rep := range rb.Replicas {
			if rep.WALSeq < seq {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("followers never replicated to seq %d", seq)
}

// waitFleetConverged polls /v1/admin/replicas until every replica is
// healthy at the same wal_seq with the same fingerprint and none is
// flagged diverged.
func waitFleetConverged(t *testing.T, client *http.Client, frontURL string, n int) []replicaBody {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last []replicaBody
	for time.Now().Before(deadline) {
		var rb struct {
			Replicas []replicaBody `json:"replicas"`
		}
		getJSON(t, client, frontURL+"/v1/admin/replicas", &rb)
		last = rb.Replicas
		ok := len(last) == n
		for _, rep := range last {
			if !rep.Healthy || rep.Diverged ||
				rep.WALSeq != last[0].WALSeq || rep.Fingerprint != last[0].Fingerprint {
				ok = false
			}
		}
		if ok {
			return last
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("fleet never converged: %+v", last)
	return nil
}

// TestFailoverWriteStream is the acceptance scenario: a 3-replica fleet
// takes a continuous stream of routed writes while the elected primary is
// killed mid-stream. The router fails over (write availability returns),
// the revived old primary rejoins as a follower, and after convergence
// every acked delta is readable — bit-identically — from every replica.
// Zero acked deltas may be lost: the election gate (candidates must have
// replicated every router-acked sequence) enforces it by construction.
func TestFailoverWriteStream(t *testing.T) {
	rt, front, reps := newReplicatedCluster(t, 3)
	client := &http.Client{Timeout: 10 * time.Second}
	first := waitPrimary(t, rt, reps)

	// Acked writes: each batch adds one author co-writing p1 with Tom, so
	// each surviving delta is independently observable via an APA query.
	type acked struct {
		author string
		seq    uint64
	}
	var acks []acked
	write := func(i int) {
		author := fmt.Sprintf("Fov%02d", i)
		ops := []hin.Op{{Kind: hin.OpUpsertEdge, Relation: "writes", Src: author, Dst: "p1", Weight: 1}}
		if seq, ok := routedWrite(t, client, front.URL, "failover-"+author, ops); ok {
			acks = append(acks, acked{author, seq})
		} else {
			t.Fatalf("write %d never acked within the deadline", i)
		}
	}
	for i := 0; i < 8; i++ {
		write(i)
	}

	// Let the stream replicate before the kill: failover can only preserve
	// write availability when some follower has caught up to every acked
	// sequence — the election gate refuses candidates below the acked floor
	// (that refusal, not luck, is what makes acked deltas unlosable). An
	// acked-but-unreplicated tail would instead stall writes until the old
	// primary returns, which is the safety trade this architecture makes.
	waitReplicated(t, client, front.URL, acks[len(acks)-1].seq)

	// Kill the primary mid-stream. Writes must keep succeeding (after a
	// bounded failover window) against the newly elected replica.
	first.kill()
	for i := 8; i < 16; i++ {
		write(i)
	}
	second := waitPrimary(t, rt, reps)
	if second == first {
		t.Fatal("router re-elected the killed replica")
	}

	// Revive the old primary: it must rejoin as a follower of the new one
	// and converge, discarding any unacked fork it crashed with.
	first.revive()
	for i := 16; i < 20; i++ {
		write(i)
	}

	rows := waitFleetConverged(t, client, front.URL, 3)
	maxAcked := acks[len(acks)-1].seq
	if rows[0].WALSeq < maxAcked {
		t.Fatalf("converged wal_seq %d below last acked seq %d: acked deltas lost", rows[0].WALSeq, maxAcked)
	}

	// Every acked delta, bit-identical on every live replica.
	for _, a := range acks {
		want := -1.0
		for _, tr := range reps {
			var pair struct {
				Score float64 `json:"score"`
			}
			getJSON(t, client, tr.ts.URL+"/v1/pair?path=APA&source="+a.author+"&target=Tom", &pair)
			if pair.Score <= 0 {
				t.Fatalf("acked delta %s (seq %d) not readable on %s: score %v", a.author, a.seq, tr.ts.URL, pair.Score)
			}
			if want < 0 {
				want = pair.Score
			} else if pair.Score != want {
				t.Fatalf("replica %s scores %v for %s, others %v: not bit-identical", tr.ts.URL, pair.Score, a.author, want)
			}
		}
	}
	t.Logf("%d acked writes survived failover; converged at seq %d fingerprint %s",
		len(acks), rows[0].WALSeq, rows[0].Fingerprint)
}

// TestFollowReadYourWrites: a router-acked write carries its WAL sequence,
// and a read echoing it as X-Min-WAL-Seq is only served by replicas that
// have replicated at least that far — never silently by a stale follower.
func TestFollowReadYourWrites(t *testing.T) {
	rt, front, reps := newReplicatedCluster(t, 3)
	client := &http.Client{Timeout: 10 * time.Second}
	waitPrimary(t, rt, reps)

	ops := []hin.Op{{Kind: hin.OpUpsertEdge, Relation: "writes", Src: "Ryw", Dst: "p1", Weight: 1}}
	seq, ok := routedWrite(t, client, front.URL, "ryw-1", ops)
	if !ok {
		t.Fatal("write never acked")
	}

	// Read-your-writes: the answer must reflect the write, immediately.
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/v1/pair?path=APA&source=Ryw&target=Tom", nil)
	req.Header.Set("X-Min-WAL-Seq", fmt.Sprint(seq))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var pair struct {
		Score float64 `json:"score"`
	}
	if err := decodeBody(resp, &pair); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || pair.Score <= 0 {
		t.Fatalf("read-your-writes pair = %d score %v", resp.StatusCode, pair.Score)
	}

	// A floor the fleet cannot have reached must refuse, not serve stale.
	req, _ = http.NewRequest(http.MethodGet, front.URL+"/v1/pair?path=APA&source=Ryw&target=Tom", nil)
	req.Header.Set("X-Min-WAL-Seq", fmt.Sprint(seq+100000))
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if err := decodeBody(resp, &eb); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Code != "stale_replicas" {
		t.Fatalf("unreachable floor answered %d code %q, want 503 stale_replicas", resp.StatusCode, eb.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("stale_replicas refusal has no Retry-After")
	}
}

func decodeBody(resp *http.Response, into any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(into)
}

// TestDivergenceDetection: two standalone replicas written different
// batches at the same wal_seq — equal sequence, conflicting fingerprints.
// The router's probe cross-check must flag the non-canonical one in
// /v1/admin/replicas and raise the divergence gauge within one probe
// interval, and the primary election must never land on the diverged side.
func TestDivergenceDetection(t *testing.T) {
	// No follower loops: the replicas are deliberately written apart.
	repA, repB := newWALReplica(t), newWALReplica(t)
	client := &http.Client{Timeout: 10 * time.Second}
	for tr, author := range map[*testReplica]string{repA: "Split", repB: "Brain"} {
		resp, body := postJSON(t, client, tr.ts.URL+"/v1/admin/edges", map[string]any{
			"key": "diverge-1",
			"ops": []hin.Op{{Kind: hin.OpUpsertEdge, Relation: "writes", Src: author, Dst: "p1", Weight: 1}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("direct write to %s: %d %s", tr.ts.URL, resp.StatusCode, body)
		}
	}

	rt, err := New([]string{repA.ts.URL, repB.ts.URL},
		WithHealthInterval(20*time.Millisecond), WithLogf(t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	rt.Start(ctx)
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var rb struct {
			Primary  string        `json:"primary"`
			Replicas []replicaBody `json:"replicas"`
		}
		getJSON(t, client, front.URL+"/v1/admin/replicas", &rb)
		diverged := 0
		for _, rep := range rb.Replicas {
			if rep.Diverged {
				diverged++
				if rep.Primary || rep.URL == rb.Primary {
					t.Fatalf("diverged replica %s elected primary", rep.URL)
				}
			}
		}
		if diverged == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("divergence never flagged: %+v", rb.Replicas)
		}
		time.Sleep(10 * time.Millisecond)
	}
	metrics := getText(t, client, front.URL+"/metrics")
	if !strings.Contains(metrics, "hetesim_router_fingerprint_divergence 1") {
		t.Error("hetesim_router_fingerprint_divergence gauge not raised to 1")
	}
	if !strings.Contains(metrics, `hetesim_router_replica_diverged`) {
		t.Error("per-replica divergence gauge missing from /metrics")
	}
}
