package router

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"hetesim/internal/obs"
)

// Primary election and the routed write path.
//
// The fleet has exactly one writer at a time. The router either has the
// primary pinned (WithPrimary) or elects it: among healthy, non-diverged
// replicas whose reported wal_seq has reached every write this router has
// acked (maxAckedSeq), keep the incumbent if still eligible (sticky —
// elections don't flap on probe jitter), otherwise take the highest
// wal_seq, tie-broken by lowest URL so concurrent routers converge on the
// same choice. Gating eligibility on maxAckedSeq is the no-lost-acks
// guarantee: a follower that has not replicated an acked delta can never
// be elected over it, so an acked write survives every failover the
// router performs — the fleet answers 503 until a caught-up candidate
// exists rather than silently forking history.
//
// POST /v1/admin/edges relays to the elected primary only — never fanned
// out, never retried onto a follower (a write that failed on the primary
// may or may not be durable; replaying it elsewhere could fork). During
// failover windows writes answer 503 with Retry-After and code
// "no_primary". Acks carry the committed wal_seq back to the client in
// X-Hetesim-WAL-Seq; a client that wants read-your-writes echoes it as
// X-Min-WAL-Seq on reads and the router only picks replicas at or past
// that sequence.

var (
	metDivergence = obs.Default().Gauge("hetesim_router_fingerprint_divergence",
		"Replicas whose fingerprint conflicts with the canonical one at the same wal_seq (self-reported or router-observed).")
	metWrites = obs.Default().CounterVec("hetesim_router_writes_total",
		"Routed writes, by outcome: relayed (acked by the primary), no_primary (failover window), upstream_error.", "outcome")
	metElections = obs.Default().Counter("hetesim_router_elections_total",
		"Primary changes, including the initial election.")
	metReplicaDiverged = obs.Default().GaugeVec("hetesim_router_replica_diverged",
		"1 when the replica is considered diverged from the fleet's canonical graph.", "replica")
)

// WithPrimary pins the write primary to one of the replica URLs instead
// of electing it. While the pinned replica is unhealthy the fleet has no
// primary (writes answer 503) — the router never fails writes over to a
// replica the operator did not name.
func WithPrimary(url string) Option { return func(r *Router) { r.pinnedPrimary = url } }

// WithMaxReadLag sets the replication lag beyond which a follower is
// deprioritized for reads (default 30s). It never excludes a replica —
// laggy beats down — it only orders them behind fresh ones.
func WithMaxReadLag(d time.Duration) Option { return func(r *Router) { r.maxReadLag = d } }

// electPrimary runs after every probe round, under probeAll's
// single-goroutine discipline (probes and elections never race each
// other; readers see the result through an atomic pointer).
func (r *Router) electPrimary() {
	var next *replica
	if r.pinnedPrimary != "" {
		for _, rep := range r.replicas {
			if rep.base == r.pinnedPrimary && rep.healthy.Load() {
				next = rep
			}
		}
	} else {
		floor := r.maxAckedSeq.Load()
		cur := r.primary.Load()
		eligible := func(rep *replica) bool {
			return rep.healthy.Load() && !rep.isDiverged() && rep.walSeq.Load() >= floor
		}
		if cur != nil && eligible(cur) {
			next = cur // sticky: the incumbent stays while eligible
		} else {
			for _, rep := range r.replicas {
				if !eligible(rep) {
					continue
				}
				if next == nil || rep.walSeq.Load() > next.walSeq.Load() ||
					(rep.walSeq.Load() == next.walSeq.Load() && rep.base < next.base) {
					next = rep
				}
			}
		}
	}
	prev := r.primary.Load()
	if prev != next {
		from, to := "none", "none"
		if prev != nil {
			from = prev.base
		}
		if next != nil {
			to = next.base
		}
		metElections.Inc()
		r.logf("router: primary %s -> %s (acked floor %d)", from, to, r.maxAckedSeq.Load())
	}
	r.primary.Store(next)
}

// detectDivergence cross-checks fingerprints after a probe round. Two
// healthy replicas at the same wal_seq serve the same deterministic graph
// by construction, so differing fingerprints at equal sequence mean one
// of them silently forked. The canonical fingerprint for a sequence group
// is the primary's when it is in the group, else the plurality (ties to
// the lexicographically smallest, so every router marks the same side).
// Replicas also self-report divergence in /readyz; either signal marks
// them, and the marks clear as soon as the conflict resolves (a diverged
// follower resyncs and its next probe matches).
func (r *Router) detectDivergence() {
	primary := r.primary.Load()
	groups := make(map[uint64][]*replica)
	for _, rep := range r.replicas {
		if rep.healthy.Load() && rep.fingerprint.Load().(string) != "" {
			groups[rep.walSeq.Load()] = append(groups[rep.walSeq.Load()], rep)
		}
	}
	for _, group := range groups {
		canon := ""
		counts := make(map[string]int)
		for _, rep := range group {
			fp := rep.fingerprint.Load().(string)
			counts[fp]++
			if rep == primary {
				canon = fp
			}
		}
		if canon == "" {
			for fp, n := range counts {
				if canon == "" || n > counts[canon] || (n == counts[canon] && fp < canon) {
					canon = fp
				}
			}
		}
		for _, rep := range group {
			rep.divergedObs.Store(len(counts) > 1 && rep.fingerprint.Load().(string) != canon)
		}
	}
	diverged := 0
	for _, rep := range r.replicas {
		d := rep.isDiverged()
		if d {
			diverged++
		}
		v := 0.0
		if d {
			v = 1
		}
		metReplicaDiverged.With(rep.base).Set(v)
	}
	metDivergence.Set(float64(diverged))
}

// handlePrimary answers GET /v1/admin/primary for followers in
// router-assigned mode: the elected primary's URL, or "" during a
// failover window (followers hold position and keep serving reads).
func (r *Router) handlePrimary(w http.ResponseWriter, _ *http.Request) {
	p := ""
	if rep := r.primary.Load(); rep != nil {
		p = rep.base
	}
	writeJSON(w, http.StatusOK, map[string]string{"primary": p})
}

// handleWrite relays POST /v1/admin/edges to the primary — and only the
// primary.
func (r *Router) handleWrite(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(req.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: "reading write body: " + err.Error(), Code: "bad_request"})
		return
	}
	rep := r.primary.Load()
	if rep == nil {
		metWrites.With("no_primary").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "no primary elected; retry after failover", Code: "no_primary"})
		return
	}
	up, err := http.NewRequestWithContext(req.Context(), http.MethodPost, rep.base+"/v1/admin/edges", bytes.NewReader(body))
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Code: "internal"})
		return
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		up.Header.Set("Content-Type", ct)
	}
	resp, err := r.client.Do(up)
	if err != nil {
		// The primary did not answer: the write's durability is unknown, so
		// do NOT replay it anywhere else. Count the failure toward the
		// breaker/health picture and make the client retry through the next
		// election.
		rep.onFailure(time.Now(), r.transitionFn(rep))
		metWrites.With("upstream_error").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "primary unreachable: " + err.Error(), Code: "no_primary"})
		return
	}
	upBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		rep.onFailure(time.Now(), r.transitionFn(rep))
		metWrites.With("upstream_error").Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "primary answer torn: " + err.Error(), Code: "no_primary"})
		return
	}
	if resp.StatusCode == http.StatusOK {
		rep.onSuccess(r.transitionFn(rep))
		var ack struct {
			Seq uint64 `json:"seq"`
		}
		if json.Unmarshal(upBody, &ack) == nil && ack.Seq > 0 {
			storeMax(&r.maxAckedSeq, ack.Seq)
			// The primary serves this sequence right now; don't make
			// read-your-writes wait for the next probe to learn that.
			storeMax(&rep.walSeq, ack.Seq)
			w.Header().Set("X-Hetesim-WAL-Seq", strconvUint(ack.Seq))
		}
		metWrites.With("relayed").Inc()
	} else if resp.StatusCode == http.StatusServiceUnavailable {
		// Election race: the replica we relayed to no longer considers
		// itself primary (or is draining). Surface it as a failover window.
		metWrites.With("no_primary").Inc()
	} else {
		metWrites.With("upstream_error").Inc()
	}
	for _, h := range []string{"Content-Type", "Retry-After", "X-Hetesim-Primary"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Hetesim-Replica", rep.base)
	w.WriteHeader(resp.StatusCode)
	w.Write(upBody)
}

// minWALSeq parses the client's read-your-writes floor. 0 = no floor.
func minWALSeq(req *http.Request) uint64 {
	h := req.Header.Get("X-Min-WAL-Seq")
	if h == "" {
		return 0
	}
	var v uint64
	for i := 0; i < len(h); i++ {
		c := h[i]
		if c < '0' || c > '9' {
			return 0
		}
		v = v*10 + uint64(c-'0')
	}
	return v
}

// storeMax raises a to v unless a concurrent writer got there first.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func strconvUint(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// sortByFreshness stable-sorts a rendezvous order by staleness class —
// fresh (0), lagging past maxReadLag (1), diverged (2) — so cache
// affinity is preserved within a class but a diverged or badly lagging
// follower only serves reads when nothing better is alive.
func (r *Router) sortByFreshness(order []*replica) {
	classes := make(map[*replica]int, len(order))
	for _, rep := range order {
		classes[rep] = rep.staleClass(r.maxReadLag)
	}
	sort.SliceStable(order, func(i, j int) bool { return classes[order[i]] < classes[order[j]] })
}
