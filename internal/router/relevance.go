package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
)

// POST /v1/relevance at the router. Pair-mode ensembles scatter: each
// candidate meta path becomes one pair query routed to the replica owning
// that path's key — so the ensemble's member paths are scored by the
// replicas whose caches are hot on them — and the router recombines the
// raw per-path scores with its own weights. A path whose replica group is
// down is excluded and flagged; the surviving contributions keep their
// original weights (partial=true, unrenormalized — a partial answer is a
// lower bound, not a silently re-weighted ensemble). Top-k mode and
// degree weighting need whole-graph state, so those proxy to one replica
// keyed by the endpoint-type pair.

type relevanceRequest struct {
	Source     string   `json:"source"`
	SourceType string   `json:"source_type"`
	Target     string   `json:"target,omitempty"`
	TargetType string   `json:"target_type,omitempty"`
	K          int      `json:"k,omitempty"`
	MaxLen     int      `json:"max_len,omitempty"`
	MaxPaths   int      `json:"max_paths,omitempty"`
	Weighting  string   `json:"weighting,omitempty"`
	Paths      []string `json:"paths,omitempty"`
	Raw        bool     `json:"raw,omitempty"`
}

type relevancePathBody struct {
	Path   string  `json:"path"`
	Weight float64 `json:"weight"`
	Score  float64 `json:"score"`
	Shared bool    `json:"shared,omitempty"`
	Error  string  `json:"error,omitempty"`
	Code   string  `json:"code,omitempty"`
}

type relevanceStatsBody struct {
	Paths         int     `json:"paths"`
	SharedQueries int     `json:"shared_queries"`
	ChainBuilds   int     `json:"chain_builds"`
	RowSteps      int     `json:"row_steps"`
	NaiveRowSteps int     `json:"naive_row_steps"`
	PrefixResumes int     `json:"prefix_resumes"`
	DurationMS    float64 `json:"duration_ms"`
}

type relevanceResponse struct {
	Mode      string              `json:"mode"`
	Source    string              `json:"source"`
	Target    string              `json:"target,omitempty"`
	Score     *float64            `json:"score,omitempty"`
	Paths     []relevancePathBody `json:"paths"`
	Weighting string              `json:"weighting"`
	Partial   bool                `json:"partial,omitempty"`
	Stats     relevanceStatsBody  `json:"stats"`
}

func (r *Router) handleRelevance(w http.ResponseWriter, req *http.Request) {
	var body bytes.Buffer
	var rreq relevanceRequest
	if err := json.NewDecoder(io2(&body, req)).Decode(&rreq); err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: "decoding relevance request: " + err.Error(), Code: "bad_request"})
		return
	}
	if rreq.Weighting == "" {
		rreq.Weighting = "uniform"
	}
	schema := r.schema.Load()
	scatterable := rreq.Target != "" && schema != nil &&
		(rreq.Weighting == "uniform" || rreq.Weighting == "learned")
	if !scatterable {
		// Whole-request proxy, placed by the endpoint-type pair so repeat
		// queries between the same types keep hitting the same warm replica.
		key := rreq.SourceType + "\x00" + rreq.TargetType
		res, err := r.forward(req.Context(), key, minWALSeq(req), func(base string) (*http.Request, error) {
			preq, err := http.NewRequest(http.MethodPost, base+"/v1/relevance", bytes.NewReader(body.Bytes()))
			if err != nil {
				return nil, err
			}
			preq.Header.Set("Content-Type", "application/json")
			return preq, nil
		})
		if err != nil {
			writeJSON(w, http.StatusServiceUnavailable,
				errorBody{Error: "no replica could answer: " + err.Error(), Code: "no_replicas"})
			return
		}
		writeResult(w, res)
		return
	}
	r.scatterRelevance(w, req, &rreq, schema)
}

// io2 tees the request body into buf so a proxied request can be resent.
func io2(buf *bytes.Buffer, req *http.Request) *bytes.Buffer {
	buf.ReadFrom(req.Body)
	return buf
}

func (r *Router) scatterRelevance(w http.ResponseWriter, req *http.Request, rreq *relevanceRequest, schema *hin.Schema) {
	start := time.Now()
	if rreq.Source == "" || rreq.SourceType == "" || rreq.TargetType == "" {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: "source, source_type, and target_type are required", Code: "bad_request"})
		return
	}
	maxLen, maxPaths := r.relevanceMaxLen, r.relevanceMaxPaths
	if rreq.MaxLen > maxLen || rreq.MaxPaths > maxPaths {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("max_len/max_paths exceed router limits %d/%d", maxLen, maxPaths), Code: "bad_request"})
		return
	}
	if rreq.MaxLen > 0 {
		maxLen = rreq.MaxLen
	}
	if rreq.MaxPaths > 0 {
		maxPaths = rreq.MaxPaths
	}

	var paths []*metapath.Path
	if len(rreq.Paths) > 0 {
		if len(rreq.Paths) > maxPaths {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: fmt.Sprintf("%d explicit paths exceed limit %d", len(rreq.Paths), maxPaths), Code: "bad_request"})
			return
		}
		for _, spec := range rreq.Paths {
			p, err := metapath.Parse(schema, spec)
			if err != nil {
				writeJSON(w, http.StatusBadRequest,
					errorBody{Error: fmt.Sprintf("path %q: %v", spec, err), Code: "bad_request"})
				return
			}
			paths = append(paths, p)
		}
	} else {
		var err error
		paths, err = metapath.EnumerateWith(schema, rreq.SourceType, rreq.TargetType,
			metapath.EnumerateOptions{MaxLen: maxLen, MaxPaths: maxPaths, DedupReverse: true})
		if err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "enumerating paths: " + err.Error(), Code: "bad_request"})
			return
		}
	}
	if len(paths) == 0 {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("no schema-valid paths from %s to %s within %d steps",
				rreq.SourceType, rreq.TargetType, maxLen), Code: "no_paths"})
		return
	}

	// Router-side ensemble weights. The replicas return RAW per-path scores
	// (weights are a combine-time concern), so the router owns the weighting
	// exactly like a single replica's ensemble layer would.
	specs := make([]string, len(paths))
	weights := make([]float64, len(paths))
	switch rreq.Weighting {
	case "uniform":
		for i, p := range paths {
			specs[i] = p.String()
			weights[i] = 1 / float64(len(paths))
		}
	case "learned":
		if r.pathWeights == nil {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "learned weighting needs router path weights (-path-weights)", Code: "bad_request"})
			return
		}
		kept := paths[:0]
		kw := weights[:0]
		ks := specs[:0]
		for _, p := range paths {
			spec := p.String()
			if wt := r.pathWeights[spec]; wt > 0 {
				kept = append(kept, p)
				ks = append(ks, spec)
				kw = append(kw, wt)
			}
		}
		paths, specs, weights = kept, ks, kw
		if len(paths) == 0 {
			writeJSON(w, http.StatusBadRequest,
				errorBody{Error: "no enumerated path has a positive learned weight", Code: "no_paths"})
			return
		}
	}

	// One raw pair query per path, routed by the path's canonical key.
	queries := make([]json.RawMessage, len(paths))
	keys := make([]string, len(paths))
	for i, spec := range specs {
		q, _ := json.Marshal(map[string]any{
			"kind": "pair", "path": spec,
			"source": rreq.Source, "target": rreq.Target, "raw": rreq.Raw,
		})
		queries[i] = q
		keys[i] = r.canonicalKey(spec)
	}
	slots, stats, _ := r.fanout(req.Context(), queries, keys, minWALSeq(req))

	resp := relevanceResponse{
		Mode: "pair", Source: rreq.Source, Target: rreq.Target,
		Weighting: rreq.Weighting,
		Paths:     make([]relevancePathBody, len(slots)),
	}
	score := 0.0
	scored := false
	for i, s := range slots {
		pb := relevancePathBody{Path: specs[i], Weight: weights[i]}
		if s.raw != nil {
			var sr struct {
				Score  *float64 `json:"score"`
				Shared bool     `json:"shared"`
				Error  string   `json:"error"`
				Code   string   `json:"code"`
			}
			if err := json.Unmarshal(s.raw, &sr); err != nil {
				pb.Error, pb.Code = "malformed replica result: "+err.Error(), "replica_error"
			} else if sr.Error != "" {
				pb.Error, pb.Code = sr.Error, sr.Code
			} else if sr.Score == nil {
				pb.Error, pb.Code = "replica result carries no score", "replica_error"
			} else {
				pb.Score, pb.Shared = *sr.Score, sr.Shared
				score += weights[i] * pb.Score
				scored = true
			}
		} else {
			pb.Error, pb.Code = s.errMsg, s.errCode
		}
		if pb.Error != "" {
			resp.Partial = true
		}
		resp.Paths[i] = pb
	}
	if scored {
		resp.Score = &score
	}
	resp.Stats = relevanceStatsBody{
		Paths:         len(slots),
		SharedQueries: stats.SharedQueries,
		ChainBuilds:   stats.ChainBuilds,
		RowSteps:      stats.RowSteps,
		NaiveRowSteps: stats.NaiveRowSteps,
		PrefixResumes: stats.PrefixResumes,
		DurationMS:    float64(time.Since(start)) / float64(time.Millisecond),
	}
	writeJSON(w, http.StatusOK, resp)
}
