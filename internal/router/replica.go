package router

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// breaker states. A replica's breaker opens after a run of consecutive
// failures, sheds all traffic for a cooldown, then admits a single
// half-open probe; the probe's outcome closes or re-opens it.
const (
	breakerClosed int32 = iota
	breakerOpen
	breakerHalfOpen
)

func breakerStateName(s int32) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half_open"
	}
	return fmt.Sprintf("state(%d)", s)
}

// latencyWindow keeps the most recent request durations for one replica
// and answers quantile queries over them — the source of the hedging
// delay. Fixed-size ring under a mutex; reads copy out.
type latencyWindow struct {
	mu   sync.Mutex
	buf  []time.Duration
	next int
	full bool
}

func newLatencyWindow(n int) *latencyWindow {
	if n <= 0 {
		n = 128
	}
	return &latencyWindow{buf: make([]time.Duration, n)}
}

func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	w.buf[w.next] = d
	w.next = (w.next + 1) % len(w.buf)
	if w.next == 0 {
		w.full = true
	}
	w.mu.Unlock()
}

// quantile returns the q-th latency quantile over the window, 0 when the
// window is empty.
func (w *latencyWindow) quantile(q float64) time.Duration {
	w.mu.Lock()
	n := w.next
	if w.full {
		n = len(w.buf)
	}
	s := make([]time.Duration, n)
	copy(s, w.buf[:n])
	w.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(n-1))
	return s[i]
}

// replica is the router's view of one hetesimd backend: its base URL,
// health as last probed at /readyz, circuit-breaker state, recent latency,
// and the freshness signals (wal_seq, snapshot age) the backend reports.
type replica struct {
	base string // normalized base URL, no trailing slash

	healthy atomic.Bool

	// Freshness as of the last successful probe (walSeq is also raised by
	// write acks the router relays to this replica as primary).
	walSeq      atomic.Uint64
	snapAgeMS   atomic.Int64 // -1: never snapshotted
	fingerprint atomic.Value // string

	// Replication view, as self-reported in /readyz. lagMS is -1 for
	// replicas that are not following anyone (a plain replica or the acting
	// primary) and for followers that have never caught up.
	follows      atomic.Value // string; "" when not a follower
	lagMS        atomic.Int64
	divergedSelf atomic.Bool // the replica flagged itself diverged
	divergedObs  atomic.Bool // the router's fingerprint cross-check flagged it

	lat *latencyWindow

	// Breaker. consecFails and openedAt are guarded by mu; state is atomic
	// so the hot path reads it without locking.
	state     atomic.Int32
	mu        sync.Mutex
	fails     int
	openedAt  time.Time
	threshold int
	cooldown  time.Duration
}

func newReplica(base string, threshold int, cooldown time.Duration) *replica {
	r := &replica{
		base:      strings.TrimRight(base, "/"),
		threshold: threshold,
		cooldown:  cooldown,
		lat:       newLatencyWindow(256),
	}
	r.fingerprint.Store("")
	r.follows.Store("")
	r.snapAgeMS.Store(-1)
	r.lagMS.Store(-1)
	return r
}

// isDiverged reports whether either signal — the replica's own admission
// or the router's fingerprint cross-check — marks this replica as forked
// from the fleet's canonical graph.
func (r *replica) isDiverged() bool {
	return r.divergedSelf.Load() || r.divergedObs.Load()
}

// staleClass buckets the replica for read ranking: 0 fresh, 1 lagging
// beyond maxLag (or a follower that has never caught up), 2 diverged.
// Order within a class is left to rendezvous hashing.
func (r *replica) staleClass(maxLag time.Duration) int {
	if r.isDiverged() {
		return 2
	}
	if r.follows.Load().(string) != "" {
		lag := r.lagMS.Load()
		if lag < 0 || time.Duration(lag)*time.Millisecond > maxLag {
			return 1
		}
	}
	return 0
}

// allow reports whether the breaker admits a request right now. An open
// breaker past its cooldown transitions to half-open and admits exactly
// one probe; concurrent callers see half-open and are refused until the
// probe reports back.
func (r *replica) allow(now time.Time, transitioned func(to string)) bool {
	switch r.state.Load() {
	case breakerClosed:
		return true
	case breakerHalfOpen:
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state.Load() != breakerOpen {
		return false
	}
	if now.Sub(r.openedAt) < r.cooldown {
		return false
	}
	r.state.Store(breakerHalfOpen)
	if transitioned != nil {
		transitioned("half_open")
	}
	return true
}

// onSuccess records a served request: failures reset, and a half-open
// probe's success closes the breaker.
func (r *replica) onSuccess(transitioned func(to string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails = 0
	if st := r.state.Load(); st != breakerClosed {
		r.state.Store(breakerClosed)
		if transitioned != nil {
			transitioned("closed")
		}
	}
}

// onFailure records a failed request: a half-open probe's failure reopens
// immediately; in closed state the threshold-th consecutive failure opens.
func (r *replica) onFailure(now time.Time, transitioned func(to string)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails++
	st := r.state.Load()
	if st == breakerHalfOpen || (st == breakerClosed && r.threshold > 0 && r.fails >= r.threshold) {
		r.state.Store(breakerOpen)
		r.openedAt = now
		if transitioned != nil {
			transitioned("open")
		}
	}
}

// readyBody is the subset of the backend's /readyz JSON the router uses.
// The replication fields only appear on follower-configured replicas;
// their absence means "not a follower" (ReplicationLag nil, not zero).
type readyBody struct {
	Status         string   `json:"status"`
	Fingerprint    string   `json:"fingerprint"`
	WALSeq         uint64   `json:"wal_seq"`
	SnapshotAge    float64  `json:"snapshot_age_seconds"`
	Role           string   `json:"role"`
	Follows        string   `json:"follows"`
	ReplicationLag *float64 `json:"replication_lag_seconds"`
	Diverged       bool     `json:"diverged"`
}

// probe refreshes the replica's health from GET /readyz: 200 marks it
// healthy and records the freshness signals; anything else (including
// transport failure) marks it unhealthy. Returns the new health.
func (r *replica) probe(ctx context.Context, client *http.Client) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/readyz", nil)
	if err != nil {
		r.healthy.Store(false)
		return false
	}
	resp, err := client.Do(req)
	if err != nil {
		r.healthy.Store(false)
		return false
	}
	defer resp.Body.Close()
	var body readyBody
	if json.NewDecoder(resp.Body).Decode(&body) == nil {
		r.walSeq.Store(body.WALSeq)
		r.fingerprint.Store(body.Fingerprint)
		if body.SnapshotAge >= 0 {
			r.snapAgeMS.Store(int64(body.SnapshotAge * 1000))
		} else {
			r.snapAgeMS.Store(-1)
		}
		r.follows.Store(body.Follows)
		if body.ReplicationLag != nil && *body.ReplicationLag >= 0 {
			r.lagMS.Store(int64(*body.ReplicationLag * 1000))
		} else {
			r.lagMS.Store(-1)
		}
		r.divergedSelf.Store(body.Diverged)
	}
	ok := resp.StatusCode == http.StatusOK
	r.healthy.Store(ok)
	return ok
}

// hedgeDelay derives when a hedge should fire against this replica: its
// p99 latency, clamped to [minD, maxD].
func (r *replica) hedgeDelay(minD, maxD time.Duration) time.Duration {
	d := r.lat.quantile(0.99)
	if d < minD {
		d = minD
	}
	if maxD > 0 && d > maxD {
		d = maxD
	}
	return d
}
