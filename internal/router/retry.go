// Package router is the fault-tolerant scale-out front for hetesimd: it
// consistent-hashes query traffic across N replicas by canonical relevance
// path (rendezvous hashing), so each replica's chain cache stays hot on a
// disjoint path set — the serving-layer dual of Property 2's half-chain
// factorization. Around that placement it layers the machinery that keeps
// the fleet answering when individual replicas degrade: /readyz-driven
// health checks, bounded retries with exponential backoff + jitter
// (honoring Retry-After), optional hedged reads after a p99-derived delay,
// per-replica circuit breakers, and graceful degradation to any healthy
// replica when the hash owner is down. Batch requests are split per path
// group, fanned out, and re-assembled slot-for-slot; failure stays
// per-slot, never whole-request.
package router

import (
	"context"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"
)

// RetryPolicy bounds how a transient failure is retried: up to Retries
// extra attempts, waiting Base·2^attempt (with jitter) between them, each
// wait capped at MaxWait. A server-provided Retry-After overrides the
// computed backoff, still capped at MaxWait so a misbehaving upstream
// cannot park the client for minutes.
type RetryPolicy struct {
	Retries int           // extra attempts after the first; 0 disables retry
	Base    time.Duration // first backoff step (default 100ms)
	MaxWait time.Duration // cap on any single wait (default 5s)
}

// withDefaults fills the zero durations.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.MaxWait <= 0 {
		p.MaxWait = 5 * time.Second
	}
	return p
}

// RetryableStatus reports whether an HTTP status indicates a transient
// condition worth retrying: shed load (429), and the bad-gateway family a
// dying or restarting replica produces (502/503/504).
func RetryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// ParseRetryAfter interprets a Retry-After header value — delta seconds or
// an HTTP date — as a wait duration. 0, false when absent or malformed.
func ParseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0, false
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// Wait computes how long to sleep before retry attempt (1-based):
// retryAfter when the server provided one, else Base·2^(attempt-1) plus up
// to 100% jitter — desynchronizing a thundering herd of retriers — with
// either capped at MaxWait.
func (p RetryPolicy) Wait(attempt int, retryAfter time.Duration) time.Duration {
	p = p.withDefaults()
	if retryAfter > 0 {
		return min(retryAfter, p.MaxWait)
	}
	d := p.Base << uint(attempt-1)
	if d <= 0 || d > p.MaxWait {
		d = p.MaxWait
	}
	d += rand.N(d)
	return min(d, p.MaxWait)
}

// Do performs one HTTP request under the policy. mkReq builds a fresh
// request per attempt (a consumed body cannot be resent); transport errors
// and retryable statuses are retried with backoff until the attempts run
// out, at which point the last response (or error) is returned as-is. A
// non-retryable response is returned immediately, success or not. The
// caller owns the returned response body.
func (p RetryPolicy) Do(ctx context.Context, client *http.Client, mkReq func() (*http.Request, error)) (*http.Response, error) {
	if client == nil {
		client = http.DefaultClient
	}
	p = p.withDefaults()
	var (
		resp *http.Response
		err  error
	)
	for attempt := 0; ; attempt++ {
		var req *http.Request
		req, err = mkReq()
		if err != nil {
			return nil, err
		}
		resp, err = client.Do(req.WithContext(ctx))
		retryAfter := time.Duration(0)
		if err == nil {
			if !RetryableStatus(resp.StatusCode) {
				return resp, nil
			}
			if ra, ok := ParseRetryAfter(resp.Header.Get("Retry-After")); ok {
				retryAfter = ra
			}
		}
		if attempt >= p.Retries {
			return resp, err
		}
		if resp != nil {
			// Drain so the connection can be reused for the retry.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(p.Wait(attempt+1, retryAfter)):
		}
	}
}
