package router

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryableStatus(t *testing.T) {
	for _, s := range []int{429, 502, 503, 504} {
		if !RetryableStatus(s) {
			t.Errorf("status %d should be retryable", s)
		}
	}
	for _, s := range []int{200, 201, 400, 404, 410, 500, 501} {
		if RetryableStatus(s) {
			t.Errorf("status %d should be final", s)
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d, ok := ParseRetryAfter("3"); !ok || d != 3*time.Second {
		t.Errorf("ParseRetryAfter(3) = %v, %v", d, ok)
	}
	if d, ok := ParseRetryAfter(time.Now().Add(2 * time.Second).UTC().Format(http.TimeFormat)); !ok || d <= 0 || d > 2*time.Second {
		t.Errorf("HTTP-date Retry-After = %v, %v; want (0, 2s]", d, ok)
	}
	// A date in the past means "retry now", not "never".
	if d, ok := ParseRetryAfter(time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)); !ok || d != 0 {
		t.Errorf("past HTTP-date Retry-After = %v, %v; want 0, true", d, ok)
	}
	for _, bad := range []string{"", "soon", "-2"} {
		if _, ok := ParseRetryAfter(bad); ok {
			t.Errorf("ParseRetryAfter(%q) accepted", bad)
		}
	}
}

func TestRetryWait(t *testing.T) {
	p := RetryPolicy{Retries: 5, Base: 10 * time.Millisecond, MaxWait: 80 * time.Millisecond}.withDefaults()

	// Exponential envelope with jitter: attempt k waits in [base·2^(k-1), 2·base·2^(k-1)], capped.
	for attempt := 1; attempt <= 5; attempt++ {
		for trial := 0; trial < 20; trial++ {
			w := p.Wait(attempt, -1)
			lo := p.Base << (attempt - 1)
			hi := 2 * lo
			if lo > p.MaxWait {
				lo = p.MaxWait
			}
			if hi > p.MaxWait {
				hi = p.MaxWait
			}
			if w < lo || w > hi {
				t.Fatalf("attempt %d wait %v outside [%v, %v]", attempt, w, lo, hi)
			}
		}
	}

	// An upstream Retry-After overrides the backoff but never exceeds MaxWait.
	if w := p.Wait(1, 30*time.Millisecond); w != 30*time.Millisecond {
		t.Errorf("Retry-After 30ms gave wait %v", w)
	}
	if w := p.Wait(1, time.Hour); w != p.MaxWait {
		t.Errorf("huge Retry-After gave wait %v, want cap %v", w, p.MaxWait)
	}
}

// TestRetryDo: Do retries 429/503 with Retry-After honored and returns the
// first final response; a success is never retried.
func TestRetryDo(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch hits.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.Write([]byte("ok"))
		}
	}))
	defer ts.Close()

	p := RetryPolicy{Retries: 3, Base: time.Millisecond, MaxWait: 10 * time.Millisecond}
	resp, err := p.Do(context.Background(), ts.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final status %d", resp.StatusCode)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server hit %d times, want 3", n)
	}
}

// TestRetryDoExhausted: when every attempt is retryable, Do returns the
// last response rather than an error, so callers can surface the status.
func TestRetryDoExhausted(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	p := RetryPolicy{Retries: 2, Base: time.Millisecond, MaxWait: 5 * time.Millisecond}
	resp, err := p.Do(context.Background(), ts.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server hit %d times, want 1 + 2 retries", n)
	}
}

func TestRetryDoContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	p := RetryPolicy{Retries: 3, Base: time.Millisecond, MaxWait: time.Minute}
	start := time.Now()
	_, err := p.Do(ctx, ts.Client(), func() (*http.Request, error) {
		return http.NewRequest(http.MethodGet, ts.URL, nil)
	})
	if err == nil {
		t.Fatal("cancelled Do returned no error")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Do ignored context cancellation during backoff sleep")
	}
}
