package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/obs"
)

// Router observability: every counter the acceptance story needs — retries,
// hedges, breaker transitions, routing decisions — lands in the process
// registry, so the router's GET /metrics is the aggregated fleet view.
var (
	metRequests = obs.Default().CounterVec("hetesim_router_requests_total",
		"Requests served by the router, by route and status.", "route", "status")
	metRetries = obs.Default().Counter("hetesim_router_retries_total",
		"Upstream attempts beyond the first for a routed request.")
	metHedges = obs.Default().Counter("hetesim_router_hedges_total",
		"Hedge requests fired after the p99-derived delay.")
	metHedgeWins = obs.Default().Counter("hetesim_router_hedge_wins_total",
		"Routed requests answered by the hedge instead of the primary.")
	metBreaker = obs.Default().CounterVec("hetesim_router_breaker_transitions_total",
		"Circuit-breaker transitions, by replica and new state.", "replica", "to")
	metRouting = obs.Default().CounterVec("hetesim_router_routing_total",
		"Routing decisions: owner (hash owner), fallback (owner down, next in rendezvous order), forced (no replica admitted, last-ditch).", "decision")
	metReplicaHealthy = obs.Default().GaugeVec("hetesim_router_replica_healthy",
		"1 when the replica's last /readyz probe succeeded.", "replica")
	metReplicaWALSeq = obs.Default().GaugeVec("hetesim_router_replica_wal_seq",
		"Last acked WAL sequence the replica reported.", "replica")
	metReplicaBreaker = obs.Default().GaugeVec("hetesim_router_replica_breaker_open",
		"1 when the replica's circuit breaker is open or half-open.", "replica")
	metFanout = obs.Default().Counter("hetesim_router_batch_fanout_total",
		"Per-replica sub-batches fanned out for /v1/batch and scattered /v1/relevance requests.")
)

// Router fronts a fleet of hetesimd replicas. Safe for concurrent use.
type Router struct {
	replicas []*replica
	client   *http.Client

	policy           RetryPolicy
	hedge            bool
	hedgeMin         time.Duration
	hedgeMax         time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	healthEvery      time.Duration
	maxBody          int64

	relevanceMaxLen   int
	relevanceMaxPaths int
	pathWeights       map[string]float64

	// Write routing (see primary.go).
	pinnedPrimary string
	maxReadLag    time.Duration
	primary       atomic.Pointer[replica]
	maxAckedSeq   atomic.Uint64

	schema atomic.Pointer[hin.Schema] // set by option or fetched at Start; nil = raw-spec keys
	logf   func(string, ...any)

	mux *http.ServeMux
}

// Option configures a Router.
type Option func(*Router)

// WithClient substitutes the upstream HTTP client (fault-injection tests
// wrap its transport in chaos.Transport).
func WithClient(c *http.Client) Option { return func(r *Router) { r.client = c } }

// WithRetryPolicy sets the per-request upstream retry policy.
func WithRetryPolicy(p RetryPolicy) Option { return func(r *Router) { r.policy = p } }

// WithHedging enables hedged reads: when the primary has not answered
// after its p99 latency (clamped to [minDelay, maxDelay]), a second
// request races it on the next replica in rendezvous order.
func WithHedging(minDelay, maxDelay time.Duration) Option {
	return func(r *Router) { r.hedge, r.hedgeMin, r.hedgeMax = true, minDelay, maxDelay }
}

// WithBreaker tunes the per-replica circuit breaker: open after threshold
// consecutive failures, probe half-open after cooldown. threshold 0
// disables breaking.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(r *Router) { r.breakerThreshold, r.breakerCooldown = threshold, cooldown }
}

// WithHealthInterval sets how often each replica's /readyz is probed.
func WithHealthInterval(d time.Duration) Option { return func(r *Router) { r.healthEvery = d } }

// WithSchema pins the network schema used to canonicalize path keys,
// instead of fetching it from a replica at Start.
func WithSchema(s *hin.Schema) Option { return func(r *Router) { r.schema.Store(s) } }

// WithRelevanceLimits bounds the router-side path enumeration of scattered
// /v1/relevance queries (defaults 4 and 16, mirroring the server).
func WithRelevanceLimits(maxLen, maxPaths int) Option {
	return func(r *Router) {
		if maxLen > 0 {
			r.relevanceMaxLen = maxLen
		}
		if maxPaths > 0 {
			r.relevanceMaxPaths = maxPaths
		}
	}
}

// WithPathWeights supplies learned ensemble weights for scattered
// relevance queries in "learned" weighting mode.
func WithPathWeights(w map[string]float64) Option { return func(r *Router) { r.pathWeights = w } }

// WithLogf sets the router's background logger.
func WithLogf(logf func(string, ...any)) Option { return func(r *Router) { r.logf = logf } }

// New creates a router over the given replica base URLs.
func New(replicaURLs []string, opts ...Option) (*Router, error) {
	if len(replicaURLs) == 0 {
		return nil, errors.New("router: need at least one replica URL")
	}
	r := &Router{
		client:            &http.Client{Timeout: 30 * time.Second},
		policy:            RetryPolicy{Retries: 3, Base: 50 * time.Millisecond, MaxWait: 2 * time.Second},
		breakerThreshold:  5,
		breakerCooldown:   2 * time.Second,
		healthEvery:       2 * time.Second,
		maxBody:           1 << 20,
		maxReadLag:        30 * time.Second,
		relevanceMaxLen:   4,
		relevanceMaxPaths: 16,
		logf:              func(string, ...any) {},
		mux:               http.NewServeMux(),
	}
	for _, o := range opts {
		o(r)
	}
	seen := make(map[string]bool)
	for _, u := range replicaURLs {
		rep := newReplica(u, r.breakerThreshold, r.breakerCooldown)
		if seen[rep.base] {
			return nil, fmt.Errorf("router: duplicate replica %s", rep.base)
		}
		seen[rep.base] = true
		r.replicas = append(r.replicas, rep)
	}
	if r.pinnedPrimary != "" {
		p := strings.TrimRight(r.pinnedPrimary, "/")
		if !seen[p] {
			return nil, fmt.Errorf("router: pinned primary %s is not a fleet member", r.pinnedPrimary)
		}
		r.pinnedPrimary = p
	}
	r.mux.HandleFunc("GET /healthz", r.handleHealth)
	r.mux.HandleFunc("GET /readyz", r.handleReady)
	r.mux.Handle("GET /metrics", obs.Default().Handler())
	r.mux.HandleFunc("GET /v1/admin/replicas", r.handleReplicas)
	r.mux.HandleFunc("GET /v1/admin/primary", r.handlePrimary)
	r.mux.HandleFunc("POST /v1/admin/edges", r.handleWrite)
	r.mux.HandleFunc("GET /v1/pair", r.proxyQuery)
	r.mux.HandleFunc("GET /v1/topk", r.proxyQuery)
	r.mux.HandleFunc("GET /v1/explain", r.proxyQuery)
	r.mux.HandleFunc("GET /v1/why", r.proxyQuery)
	r.mux.HandleFunc("GET /v1/schema", r.proxyAny)
	r.mux.HandleFunc("GET /v1/stats", r.proxyAny)
	r.mux.HandleFunc("POST /v1/batch", r.handleBatch)
	r.mux.HandleFunc("POST /v1/relevance", r.handleRelevance)
	return r, nil
}

// Start probes every replica once, fetches the schema from the fleet when
// none was pinned, and launches the periodic health checker (stopped by
// ctx). It succeeds even with the whole fleet down — replicas join as
// their probes start passing.
func (r *Router) Start(ctx context.Context) {
	r.probeAll(ctx)
	if r.schema.Load() == nil {
		if s, err := r.fetchSchema(ctx); err == nil {
			r.schema.Store(s)
		} else {
			r.logf("router: schema fetch failed (path keys stay raw): %v", err)
		}
	}
	go func() {
		t := time.NewTicker(r.healthEvery)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				r.probeAll(ctx)
				if r.schema.Load() == nil {
					if s, err := r.fetchSchema(ctx); err == nil {
						r.schema.Store(s)
					}
				}
			}
		}
	}()
}

func (r *Router) probeAll(ctx context.Context) {
	pctx, cancel := context.WithTimeout(ctx, r.healthEvery)
	defer cancel()
	for _, rep := range r.replicas {
		ok := rep.probe(pctx, r.client)
		h := 0.0
		if ok {
			h = 1
		}
		metReplicaHealthy.With(rep.base).Set(h)
		metReplicaWALSeq.With(rep.base).Set(float64(rep.walSeq.Load()))
		open := 0.0
		if rep.state.Load() != breakerClosed {
			open = 1
		}
		metReplicaBreaker.With(rep.base).Set(open)
	}
	r.detectDivergence()
	r.electPrimary()
}

// Handler returns the router's HTTP handler tree.
func (r *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		if req.Body != nil && r.maxBody > 0 {
			req.Body = http.MaxBytesReader(sw, req.Body, r.maxBody)
		}
		r.mux.ServeHTTP(sw, req)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		metRequests.With(routeLabel(req.URL.Path), strconv.Itoa(status)).Inc()
	})
}

// routeLabel maps paths to a bounded label set (constant /metrics
// cardinality no matter what clients probe).
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/readyz", "/metrics",
		"/v1/pair", "/v1/topk", "/v1/batch", "/v1/relevance",
		"/v1/schema", "/v1/stats", "/v1/explain", "/v1/why",
		"/v1/admin/replicas", "/v1/admin/primary", "/v1/admin/edges":
		return path
	}
	return "other"
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// canonicalKey maps a path spec to its routing key. With a schema, a path
// and its reverse hash identically (HS(a,b|P) = HS(b,a|P⁻¹), Property 1 —
// both directions hit the same replica's cache); without one, the raw spec
// is the key, which still gives stable placement, just without
// reverse-collapsing.
func (r *Router) canonicalKey(spec string) string {
	if schema := r.schema.Load(); schema != nil {
		if p, err := metapath.Parse(schema, spec); err == nil {
			a, b := p.String(), p.Reverse().String()
			if b < a {
				a = b
			}
			return a
		}
	}
	return spec
}

// rank orders the replicas for a key: rendezvous (highest-random-weight)
// hashing — each replica scores fnv64(key ‖ 0 ‖ base), descending — then a
// stable sort by staleness class, so fresh replicas keep their hash
// affinity among themselves while badly lagging or diverged followers
// drop to the back of the line. Every router instance computes the same
// order with no coordination, and removing a replica only moves the keys
// it owned.
func (r *Router) rank(key string) []*replica {
	type scored struct {
		rep   *replica
		score uint64
	}
	s := make([]scored, len(r.replicas))
	for i, rep := range r.replicas {
		h := fnv.New64a()
		io.WriteString(h, key)
		h.Write([]byte{0})
		io.WriteString(h, rep.base)
		s[i] = scored{rep, h.Sum64()}
	}
	sort.Slice(s, func(i, j int) bool { return s[i].score > s[j].score })
	out := make([]*replica, len(s))
	for i, sc := range s {
		out[i] = sc.rep
	}
	r.sortByFreshness(out)
	return out
}

// result is a fully buffered upstream response.
type result struct {
	status      int
	header      http.Header
	body        []byte
	replica     string
	final       bool // non-retryable: this is the answer
	hedged      bool // answered by the hedge, not the primary
	transportMS float64
}

var (
	errNoReplicas = errors.New("router: no replicas available")
	errStaleFleet = errors.New("router: no replica has reached the requested wal_seq")
)

// forward routes one buffered request: pick a replica by rendezvous order
// (healthy + breaker-admitted first, hash owner preferred), try it with an
// optional hedge, and on retryable failure back off and move to the next
// candidate. minSeq > 0 is the client's read-your-writes floor: only
// replicas whose last probed (or write-acked) wal_seq has reached it are
// candidates, with no forced fallback — a stale answer would silently
// violate the session guarantee, so the caller turns errStaleFleet into a
// 503 the client retries. It returns the first final response; when every
// attempt fails, the last retryable response (so the client sees the
// upstream's 429/503 with its Retry-After) or errNoReplicas.
func (r *Router) forward(ctx context.Context, key string, minSeq uint64, build func(base string) (*http.Request, error)) (*result, error) {
	order := r.rank(key)
	attempts := r.policy.Retries + 1
	var last *result
	for attempt := 0; attempt < attempts; attempt++ {
		rep, forced := r.pick(order, attempt, minSeq)
		if rep == nil {
			break
		}
		switch {
		case forced:
			metRouting.With("forced").Inc()
		case rep == order[0]:
			metRouting.With("owner").Inc()
		default:
			metRouting.With("fallback").Inc()
		}
		if attempt > 0 {
			metRetries.Inc()
			retryAfter := time.Duration(0)
			if last != nil {
				if ra, ok := ParseRetryAfter(last.header.Get("Retry-After")); ok {
					retryAfter = ra
				}
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(r.policy.Wait(attempt, retryAfter)):
			}
		}
		res, err := r.attempt(ctx, rep, order, minSeq, build)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		if res.final {
			if res.hedged {
				metHedgeWins.Inc()
			}
			return res, nil
		}
		last = res
	}
	if last != nil {
		return last, nil
	}
	if minSeq > 0 {
		return nil, errStaleFleet
	}
	return nil, errNoReplicas
}

// pick chooses the replica for one attempt: walk the rendezvous order
// starting at the attempt's offset (so retries rotate away from the
// replica that just failed) and take the first healthy, breaker-admitted
// one at or past minSeq. When nothing is admitted and there is no seq
// floor the attempt's own slot is forced — a last-ditch probe beats
// answering 503 from a router that tried nothing. With a floor there is
// no forcing: serving the request from a replica below minSeq would
// break read-your-writes silently, which is worse than a retryable 503.
func (r *Router) pick(order []*replica, attempt int, minSeq uint64) (rep *replica, forced bool) {
	n := len(order)
	if n == 0 {
		return nil, false
	}
	now := time.Now()
	for i := 0; i < n; i++ {
		c := order[(attempt+i)%n]
		if c.healthy.Load() && c.walSeq.Load() >= minSeq && c.allow(now, r.transitionFn(c)) {
			return c, false
		}
	}
	if minSeq > 0 {
		return nil, false
	}
	return order[attempt%n], true
}

func (r *Router) transitionFn(rep *replica) func(string) {
	return func(to string) {
		metBreaker.With(rep.base, to).Inc()
		open := 0.0
		if to != "closed" {
			open = 1
		}
		metReplicaBreaker.With(rep.base).Set(open)
	}
}

// attempt runs one logical try against primary, racing a hedge on the
// next distinct replica when hedging is on and the primary is slower than
// its p99-derived delay. The first final response wins; a retryable
// outcome waits for the other leg before giving up the attempt.
func (r *Router) attempt(ctx context.Context, primary *replica, order []*replica, minSeq uint64, build func(string) (*http.Request, error)) (*result, error) {
	if !r.hedge || len(order) < 2 {
		return r.tryOnce(ctx, primary, build, false)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		res *result
		err error
	}
	ch := make(chan outcome, 2)
	launched := 1
	go func() {
		res, err := r.tryOnce(cctx, primary, build, false)
		ch <- outcome{res, err}
	}()
	timer := time.NewTimer(primary.hedgeDelay(r.hedgeMin, r.hedgeMax))
	defer timer.Stop()
	var last outcome
	for {
		select {
		case <-timer.C:
			if sec := r.hedgeTarget(order, primary, minSeq); sec != nil {
				metHedges.Inc()
				launched++
				go func() {
					res, err := r.tryOnce(cctx, sec, build, true)
					ch <- outcome{res, err}
				}()
			}
		case o := <-ch:
			if o.err == nil && o.res.final {
				return o.res, nil
			}
			last = o
			launched--
			if launched == 0 {
				return last.res, last.err
			}
			// One leg failed retryably; stop the timer from adding more and
			// wait for the other leg.
			timer.Stop()
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// hedgeTarget picks the hedge replica: the first healthy, admitted replica
// in rendezvous order that is not the primary and satisfies the client's
// wal_seq floor.
func (r *Router) hedgeTarget(order []*replica, primary *replica, minSeq uint64) *replica {
	now := time.Now()
	for _, c := range order {
		if c == primary {
			continue
		}
		if c.healthy.Load() && c.walSeq.Load() >= minSeq && c.allow(now, r.transitionFn(c)) {
			return c
		}
	}
	return nil
}

// tryOnce performs exactly one upstream request against rep and buffers
// the response. Transport errors and torn bodies count against the
// breaker; any complete HTTP response counts as replica success (a 400 is
// the client's problem, not the replica's), but retryable statuses leave
// the result non-final so the caller moves on.
func (r *Router) tryOnce(ctx context.Context, rep *replica, build func(string) (*http.Request, error), hedged bool) (*result, error) {
	req, err := build(rep.base)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	resp, err := r.client.Do(req.WithContext(ctx))
	if err != nil {
		rep.onFailure(time.Now(), r.transitionFn(rep))
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	d := time.Since(start)
	if err != nil {
		rep.onFailure(time.Now(), r.transitionFn(rep))
		return nil, fmt.Errorf("router: reading %s response: %w", rep.base, err)
	}
	res := &result{
		status:      resp.StatusCode,
		header:      resp.Header,
		body:        body,
		replica:     rep.base,
		final:       !RetryableStatus(resp.StatusCode),
		hedged:      hedged,
		transportMS: float64(d) / float64(time.Millisecond),
	}
	if RetryableStatus(resp.StatusCode) {
		rep.onFailure(time.Now(), r.transitionFn(rep))
	} else {
		rep.onSuccess(r.transitionFn(rep))
		rep.lat.observe(d)
	}
	return res, nil
}

// writeResult relays a buffered upstream response to the client.
func writeResult(w http.ResponseWriter, res *result) {
	if ct := res.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Hetesim-Replica", res.replica)
	w.WriteHeader(res.status)
	w.Write(res.body)
}

type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// proxyQuery forwards a GET query (pair/topk/explain/why) to the replica
// owning its path key, retried and hedged.
func (r *Router) proxyQuery(w http.ResponseWriter, req *http.Request) {
	key := r.canonicalKey(req.URL.Query().Get("path"))
	r.proxyWithKey(w, req, key)
}

// proxyAny forwards a GET to any available replica (schema, stats — every
// replica serves the same graph).
func (r *Router) proxyAny(w http.ResponseWriter, req *http.Request) {
	r.proxyWithKey(w, req, req.URL.Path)
}

func (r *Router) proxyWithKey(w http.ResponseWriter, req *http.Request, key string) {
	target := req.URL.Path
	if req.URL.RawQuery != "" {
		target += "?" + req.URL.RawQuery
	}
	res, err := r.forward(req.Context(), key, minWALSeq(req), func(base string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, base+target, nil)
	})
	if err != nil {
		if errors.Is(err, errStaleFleet) {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable,
				errorBody{Error: "read-your-writes floor not yet replicated: " + err.Error(), Code: "stale_replicas"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "no replica could answer: " + err.Error(), Code: "no_replicas"})
		return
	}
	writeResult(w, res)
}

func (r *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady: the router is ready when at least one replica is.
func (r *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, rep := range r.replicas {
		if rep.healthy.Load() {
			healthy++
		}
	}
	body := map[string]any{
		"status":   "ready",
		"replicas": len(r.replicas),
		"healthy":  healthy,
	}
	if healthy == 0 {
		body["status"] = "no_replicas"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// replicaBody is one row of GET /v1/admin/replicas.
type replicaBody struct {
	URL         string  `json:"url"`
	Healthy     bool    `json:"healthy"`
	Primary     bool    `json:"primary"`
	Diverged    bool    `json:"diverged"`
	Breaker     string  `json:"breaker"`
	WALSeq      uint64  `json:"wal_seq"`
	SnapshotAge float64 `json:"snapshot_age_seconds"`    // -1: never
	Lag         float64 `json:"replication_lag_seconds"` // -1: not a follower / unknown
	Follows     string  `json:"follows,omitempty"`
	Fingerprint string  `json:"fingerprint,omitempty"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
}

func (r *Router) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	primary := r.primary.Load()
	out := make([]replicaBody, len(r.replicas))
	for i, rep := range r.replicas {
		age := -1.0
		if ms := rep.snapAgeMS.Load(); ms >= 0 {
			age = float64(ms) / 1000
		}
		lag := -1.0
		if ms := rep.lagMS.Load(); ms >= 0 {
			lag = float64(ms) / 1000
		}
		out[i] = replicaBody{
			URL:         rep.base,
			Healthy:     rep.healthy.Load(),
			Primary:     rep == primary,
			Diverged:    rep.isDiverged(),
			Breaker:     breakerStateName(rep.state.Load()),
			WALSeq:      rep.walSeq.Load(),
			SnapshotAge: age,
			Lag:         lag,
			Follows:     rep.follows.Load().(string),
			Fingerprint: rep.fingerprint.Load().(string),
			P50MS:       float64(rep.lat.quantile(0.50)) / float64(time.Millisecond),
			P99MS:       float64(rep.lat.quantile(0.99)) / float64(time.Millisecond),
		}
	}
	body := map[string]any{"replicas": out, "max_acked_wal_seq": r.maxAckedSeq.Load()}
	if primary != nil {
		body["primary"] = primary.base
	}
	writeJSON(w, http.StatusOK, body)
}
