package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hetesim/internal/hin"
)

// The router needs the network schema only to canonicalize path keys (a
// path and its reverse must land on the same replica). It rebuilds one
// from any replica's GET /v1/schema — the schema is a property of the
// graph, identical across the fleet.

type schemaJSON struct {
	Types []struct {
		Name   string `json:"name"`
		Abbrev string `json:"abbrev"`
	} `json:"types"`
	Relations []struct {
		Name   string `json:"name"`
		Source string `json:"source"`
		Target string `json:"target"`
	} `json:"relations"`
}

// fetchSchema fetches and rebuilds the schema from the first replica that
// answers.
func (r *Router) fetchSchema(ctx context.Context) (*hin.Schema, error) {
	var lastErr error = errors.New("no replicas")
	for _, rep := range r.replicas {
		s, err := fetchSchemaFrom(ctx, r.client, rep.base)
		if err == nil {
			return s, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("router: fetching schema: %w", lastErr)
}

func fetchSchemaFrom(ctx context.Context, client *http.Client, base string) (*hin.Schema, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/schema", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/v1/schema: status %d", base, resp.StatusCode)
	}
	var body schemaJSON
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	s := hin.NewSchema()
	for _, t := range body.Types {
		var ab byte
		if t.Abbrev != "" {
			ab = t.Abbrev[0]
		}
		if err := s.AddType(t.Name, ab); err != nil {
			return nil, err
		}
	}
	for _, rel := range body.Relations {
		if err := s.AddRelation(rel.Name, rel.Source, rel.Target); err != nil {
			return nil, err
		}
	}
	return s, nil
}
