package router

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"hetesim/internal/obs"
	"hetesim/internal/snapshot"
)

// Snapshot fetching: the client half of snapshot shipping, used by
// hetesimd's -warm-from boot path. The download is resumable — a torn
// stream retries from the byte offset it reached, sending If-Match with
// the ETag of the stream it started, so a peer whose cache advanced in
// between answers 412 and the download restarts from zero instead of
// splicing two different snapshots. The assembled bytes then pass through
// snapshot.Read's full CRC validation, so even an undetected splice or
// bit-flip cannot produce an admissible snapshot.
var (
	metSnapFetches = obs.Default().Counter("hetesim_snapshot_fetch_total",
		"Snapshot fetches attempted against a peer replica.")
	metSnapFetchResumes = obs.Default().Counter("hetesim_snapshot_fetch_resume_total",
		"Snapshot fetch attempts resumed from a non-zero offset after a torn stream.")
	metSnapFetchRestarts = obs.Default().Counter("hetesim_snapshot_fetch_restart_total",
		"Snapshot fetches restarted from zero because the peer's snapshot changed mid-download.")
)

// FetchSnapshot downloads a peer's chain-cache snapshot from
// base+/v1/admin/snapshot, resuming through up to attempts torn streams,
// and decodes it with full checksum validation. client may be nil
// (http.DefaultClient).
func FetchSnapshot(ctx context.Context, client *http.Client, base string, attempts int) (*snapshot.Snapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if attempts <= 0 {
		attempts = 5
	}
	base = trimSlash(base)
	var (
		buf  bytes.Buffer
		etag string
		last error
	)
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		metSnapFetches.Inc()
		url := base + "/v1/admin/snapshot"
		if buf.Len() > 0 {
			url += "?offset=" + strconv.Itoa(buf.Len())
			metSnapFetchResumes.Inc()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		if etag != "" && buf.Len() > 0 {
			req.Header.Set("If-Match", etag)
		}
		resp, err := client.Do(req)
		if err != nil {
			last = err
			sleepCtx(ctx, 100*time.Millisecond<<uint(attempt))
			continue
		}
		switch resp.StatusCode {
		case http.StatusOK:
		case http.StatusPreconditionFailed, http.StatusRequestedRangeNotSatisfiable:
			// The peer's snapshot moved on; our partial bytes are for a
			// snapshot that no longer exists.
			resp.Body.Close()
			metSnapFetchRestarts.Inc()
			buf.Reset()
			etag = ""
			last = fmt.Errorf("peer snapshot changed mid-download (status %d)", resp.StatusCode)
			continue
		default:
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			last = fmt.Errorf("%s: status %d", url, resp.StatusCode)
			sleepCtx(ctx, 100*time.Millisecond<<uint(attempt))
			continue
		}
		if e := resp.Header.Get("ETag"); e != "" {
			if etag != "" && e != etag && buf.Len() > 0 {
				// Server didn't enforce If-Match (or no header round-trip):
				// restart rather than splice.
				resp.Body.Close()
				metSnapFetchRestarts.Inc()
				buf.Reset()
				etag = e
				continue
			}
			etag = e
		}
		_, err = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if err != nil {
			last = err
			continue // resume from the new offset
		}
		snap, err := snapshot.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			if errors.Is(err, io.ErrUnexpectedEOF) {
				// Stream ended cleanly but short (mid-body reset the
				// transport surfaced as EOF): resume.
				last = err
				continue
			}
			return nil, fmt.Errorf("router: decoding fetched snapshot: %w", err)
		}
		return snap, nil
	}
	return nil, fmt.Errorf("router: fetching snapshot from %s: %w", base, last)
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}

func sleepCtx(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}
