package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hetesim/internal/core"
	"hetesim/internal/metapath"
	"hetesim/internal/obs"
)

// POST /v1/batch: many heterogeneous queries in one request, executed by
// the core path-group scheduler so queries sharing a canonical relevance
// path pay its chain propagation once (Property 2's factorization shared
// N ways). Failure is per query — each result slot carries its own error
// and code — and the whole batch occupies one in-flight slot. The
// per-request query deadline is applied to each query individually by the
// scheduler rather than to the batch as a whole.

type batchRequest struct {
	Queries []batchQueryBody `json:"queries"`
}

type batchQueryBody struct {
	Kind    string  `json:"kind"`
	Path    string  `json:"path"`
	Source  string  `json:"source"`
	Target  string  `json:"target,omitempty"`
	K       int     `json:"k,omitempty"`
	Eps     float64 `json:"eps,omitempty"`
	Measure string  `json:"measure,omitempty"`
	Raw     bool    `json:"raw,omitempty"`
}

type batchResultBody struct {
	Kind    string    `json:"kind,omitempty"`
	Path    string    `json:"path,omitempty"`
	Source  string    `json:"source,omitempty"`
	Target  string    `json:"target,omitempty"`
	Score   *float64  `json:"score,omitempty"`
	Scores  []float64 `json:"scores,omitempty"`
	Results []hitBody `json:"results,omitempty"`
	Shared  bool      `json:"shared,omitempty"`
	Error   string    `json:"error,omitempty"`
	Code    string    `json:"code,omitempty"`
}

type batchStatsBody struct {
	Queries       int     `json:"queries"`
	Groups        int     `json:"groups"`
	SharedQueries int     `json:"shared_queries"`
	ChainBuilds   int     `json:"chain_builds"`
	RowSteps      int     `json:"row_steps"`
	NaiveRowSteps int     `json:"naive_row_steps"`
	PrefixResumes int     `json:"prefix_resumes"`
	Amortization  float64 `json:"amortization"`
	DurationMS    float64 `json:"duration_ms"`
}

type batchResponse struct {
	Results []batchResultBody `json:"results"`
	Stats   batchStatsBody    `json:"stats"`
	Trace   *obs.Report       `json:"trace,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ctx := r.Context()
	es := s.current()
	tr := obs.FromContext(ctx)
	sp := tr.Start("decode")
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.End()
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	if len(req.Queries) == 0 {
		sp.End()
		writeError(w, fmt.Errorf("%w: empty batch", errBadRequest))
		return
	}
	if s.maxBatchQueries > 0 && len(req.Queries) > s.maxBatchQueries {
		sp.End()
		writeError(w, fmt.Errorf("%w: batch has %d queries, limit is %d",
			errBadRequest, len(req.Queries), s.maxBatchQueries))
		return
	}

	// Decode every slot; a bad query fails in place, never the batch. Valid
	// queries split by engine: raw (Definition 3) and normalized (Definition
	// 10) scores come from distinct engines with distinct caches.
	out := make([]batchResultBody, len(req.Queries))
	paths := make([]*metapath.Path, len(req.Queries))
	var normQ, rawQ []core.BatchQuery
	var normPos, rawPos []int
	for i, qb := range req.Queries {
		out[i].Kind, out[i].Path, out[i].Source, out[i].Target = qb.Kind, qb.Path, qb.Source, qb.Target
		cq, err := s.decodeBatchQuery(es, qb)
		if err != nil {
			_, code := errorStatusCode(err)
			out[i].Error, out[i].Code = err.Error(), code
			continue
		}
		paths[i] = cq.Path
		out[i].Path = cq.Path.String()
		if qb.Raw {
			rawQ, rawPos = append(rawQ, cq), append(rawPos, i)
		} else {
			normQ, normPos = append(normQ, cq), append(normPos, i)
		}
	}
	sp.End()

	opts := core.BatchOptions{Workers: s.batchWorkers, PerQueryTimeout: s.queryTimeout}
	run := func(eng *core.Engine, qs []core.BatchQuery, pos []int) core.BatchStats {
		if len(qs) == 0 {
			return core.BatchStats{}
		}
		results, stats, err := eng.ExecuteBatch(ctx, qs, opts)
		if err != nil {
			_, code := errorStatusCode(err)
			for _, i := range pos {
				out[i].Error, out[i].Code = err.Error(), code
			}
			return stats
		}
		for k, res := range results {
			s.fillBatchResult(es, &out[pos[k]], paths[pos[k]], res)
		}
		return stats
	}
	st := run(es.engine, normQ, normPos)
	rawSt := run(es.raw, rawQ, rawPos)

	stats := batchStatsBody{
		Queries:       len(req.Queries),
		Groups:        st.Groups + rawSt.Groups,
		SharedQueries: st.SharedQueries + rawSt.SharedQueries,
		ChainBuilds:   st.ChainBuilds + rawSt.ChainBuilds,
		RowSteps:      st.RowSteps + rawSt.RowSteps,
		NaiveRowSteps: st.NaiveRowSteps + rawSt.NaiveRowSteps,
		PrefixResumes: st.PrefixResumes + rawSt.PrefixResumes,
		DurationMS:    float64(time.Since(start)) / float64(time.Millisecond),
	}
	if stats.Groups > 0 {
		stats.Amortization = float64(len(normQ)+len(rawQ)) / float64(stats.Groups)
	}
	body := batchResponse{Results: out, Stats: stats}
	if wantTrace(r) {
		body.Trace = tr.Report(tr.Elapsed())
	}
	writeJSON(w, http.StatusOK, body)
}

// decodeBatchQuery turns one request slot into a core batch query. Batch
// supports the hetesim measure only; raw selects the unnormalized engine.
func (s *Server) decodeBatchQuery(es *engineSet, qb batchQueryBody) (core.BatchQuery, error) {
	var cq core.BatchQuery
	if qb.Measure != "" && qb.Measure != "hetesim" {
		return cq, fmt.Errorf("%w: batch supports measure hetesim only (got %q)", errBadRequest, qb.Measure)
	}
	if qb.Path == "" {
		return cq, fmt.Errorf("%w: missing path", errBadRequest)
	}
	p, err := metapath.Parse(es.g.Schema(), qb.Path)
	if err != nil {
		return cq, err
	}
	if s.maxPathSteps > 0 && p.Len() > s.maxPathSteps {
		return cq, fmt.Errorf("%w: path has %d steps, limit is %d", errBadRequest, p.Len(), s.maxPathSteps)
	}
	if qb.Source == "" {
		return cq, fmt.Errorf("%w: missing source", errBadRequest)
	}
	src, err := es.g.NodeIndex(p.Source(), qb.Source)
	if err != nil {
		return cq, err
	}
	cq.Path, cq.Src = p, src
	switch qb.Kind {
	case "pair":
		cq.Kind = core.BatchPair
		if qb.Target == "" {
			return cq, fmt.Errorf("%w: missing target", errBadRequest)
		}
		cq.Dst, err = es.g.NodeIndex(p.Target(), qb.Target)
		if err != nil {
			return cq, err
		}
	case "single_source":
		cq.Kind = core.BatchSingleSource
	case "topk":
		cq.Kind = core.BatchTopK
		cq.K, cq.Eps = qb.K, qb.Eps
		if cq.K == 0 {
			cq.K = 10
		}
		if cq.K < 0 {
			return cq, fmt.Errorf("%w: k=%d", errBadRequest, cq.K)
		}
		if cq.Eps < 0 || cq.Eps >= 1 {
			return cq, fmt.Errorf("%w: eps=%v outside [0,1)", errBadRequest, cq.Eps)
		}
	default:
		return cq, fmt.Errorf("%w: unknown kind %q (want pair, single_source, or topk)", errBadRequest, qb.Kind)
	}
	return cq, nil
}

// fillBatchResult renders one core batch result into its response slot.
func (s *Server) fillBatchResult(es *engineSet, slot *batchResultBody, p *metapath.Path, res core.BatchResult) {
	slot.Shared = res.Shared
	if res.Err != nil {
		_, code := errorStatusCode(res.Err)
		slot.Error, slot.Code = res.Err.Error(), code
		return
	}
	switch slot.Kind {
	case "pair":
		score := res.Score
		slot.Score = &score
	case "single_source":
		slot.Scores = res.Scores
	case "topk":
		ids := es.g.NodeIDs(p.Target())
		slot.Results = make([]hitBody, 0, len(res.TopK))
		for _, hit := range res.TopK {
			slot.Results = append(slot.Results, hitBody{ID: ids[hit.Index], Score: hit.Score})
		}
	}
}
