package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hetesim/internal/hin"
)

// batchFixtureGraph rebuilds the testServer fixture graph for servers that
// need non-default options.
func batchFixtureGraph(t *testing.T) *hin.Graph {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	return b.MustBuild()
}

func postJSON(t *testing.T, url string, body any, wantStatus int, into any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s status = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
}

// TestBatchEndpoint drives POST /v1/batch end to end on the Fig. 4-style
// fixture and cross-checks every result against the matching GET endpoint.
func TestBatchEndpoint(t *testing.T) {
	_, ts := testServer(t)
	req := batchRequest{Queries: []batchQueryBody{
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "KDD"},
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "KDD", Raw: true},
		{Kind: "single_source", Path: "APC", Source: "Mary"},
		{Kind: "topk", Path: "APC", Source: "Mary", K: 2},
	}}
	var body batchResponse
	postJSON(t, ts.URL+"/v1/batch", req, http.StatusOK, &body)
	if len(body.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(body.Results))
	}
	for i, res := range body.Results {
		if res.Error != "" {
			t.Fatalf("slot %d: %s (%s)", i, res.Error, res.Code)
		}
	}

	// Slot 0 matches GET /v1/pair.
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
	if body.Results[0].Score == nil || *body.Results[0].Score != pair.Score {
		t.Errorf("batch pair = %v, GET pair = %v", body.Results[0].Score, pair.Score)
	}
	// Slot 1 is the raw meeting probability (Example 2: 0.5).
	if body.Results[1].Score == nil || math.Abs(*body.Results[1].Score-0.5) > 1e-12 {
		t.Errorf("raw pair = %v, want 0.5", body.Results[1].Score)
	}
	// Slot 2: every single-source entry matches a GET pair query.
	for _, conf := range []string{"KDD", "SIGMOD"} {
		getJSON(t, ts.URL+"/v1/pair?path=APC&source=Mary&target="+conf, http.StatusOK, &pair)
		found := false
		for _, s := range body.Results[2].Scores {
			if s == pair.Score {
				found = true
			}
		}
		if !found {
			t.Errorf("single_source scores %v missing GET score %v for %s", body.Results[2].Scores, pair.Score, conf)
		}
	}
	// Slot 3 matches GET /v1/topk (scores are distinct: 1/√2 vs 1/2).
	var topk topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APC&source=Mary&k=2", http.StatusOK, &topk)
	if len(body.Results[3].Results) != len(topk.Results) {
		t.Fatalf("batch topk %d hits, GET topk %d", len(body.Results[3].Results), len(topk.Results))
	}
	for r := range topk.Results {
		if body.Results[3].Results[r] != topk.Results[r] {
			t.Errorf("topk rank %d: batch %+v, GET %+v", r, body.Results[3].Results[r], topk.Results[r])
		}
	}

	// The three normalized APC queries share one group; the raw query is
	// a singleton on its own engine.
	if body.Stats.Queries != 4 || body.Stats.Groups != 2 {
		t.Errorf("stats = %+v, want 4 queries in 2 groups", body.Stats)
	}
	if body.Stats.SharedQueries != 3 {
		t.Errorf("SharedQueries = %d, want 3", body.Stats.SharedQueries)
	}
	if !body.Results[0].Shared || body.Results[1].Shared {
		t.Errorf("shared flags: norm pair %v (want true), raw singleton %v (want false)",
			body.Results[0].Shared, body.Results[1].Shared)
	}
	if body.Stats.DurationMS <= 0 {
		t.Errorf("DurationMS = %v", body.Stats.DurationMS)
	}
}

// TestBatchEndpointPartialErrors: bad slots carry their own error and
// machine-readable code while good slots still answer; the batch is 200.
func TestBatchEndpointPartialErrors(t *testing.T) {
	_, ts := testServer(t)
	req := batchRequest{Queries: []batchQueryBody{
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "KDD"},
		{Kind: "pair", Path: "APC", Source: "Nobody", Target: "KDD"},
		{Kind: "ranked", Path: "APC", Source: "Tom"},
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "KDD", Measure: "pcrw"},
		{Kind: "pair", Path: "AXC", Source: "Tom", Target: "KDD"},
		{Kind: "topk", Path: "APC", Source: "Tom", Eps: 1.5},
	}}
	var body batchResponse
	postJSON(t, ts.URL+"/v1/batch", req, http.StatusOK, &body)
	wantCodes := []string{"", "not_found", "bad_request", "bad_request", "bad_request", "bad_request"}
	for i, want := range wantCodes {
		got := body.Results[i]
		if got.Code != want {
			t.Errorf("slot %d: code = %q (error %q), want %q", i, got.Code, got.Error, want)
		}
		if want != "" && got.Error == "" {
			t.Errorf("slot %d: missing error message", i)
		}
	}
	if body.Results[0].Score == nil || math.Abs(*body.Results[0].Score-1) > 1e-12 {
		t.Errorf("good slot = %v, want 1", body.Results[0].Score)
	}
}

// TestBatchEndpointRejects covers the whole-batch 400s: malformed JSON,
// an empty query list, and a batch above the configured size limit.
func TestBatchEndpointRejects(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status = %d, want 400", resp.StatusCode)
	}

	var e errorBody
	postJSON(t, ts.URL+"/v1/batch", batchRequest{}, http.StatusBadRequest, &e)
	if e.Code != "bad_request" {
		t.Errorf("empty batch: code = %q", e.Code)
	}

	small := New(batchFixtureGraph(t), WithBatchLimits(2, 2))
	tiny := httptest.NewServer(small.Handler())
	defer tiny.Close()
	over := batchRequest{Queries: []batchQueryBody{
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "KDD"},
		{Kind: "pair", Path: "APC", Source: "Mary", Target: "KDD"},
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "SIGMOD"},
	}}
	postJSON(t, tiny.URL+"/v1/batch", over, http.StatusBadRequest, &e)
	if e.Code != "bad_request" || !strings.Contains(e.Error, "limit") {
		t.Errorf("oversize batch: %+v", e)
	}
}

// TestBatchEndpointTrace: ?trace=1 returns the per-stage spans of the
// batch plan and materialization alongside the results.
func TestBatchEndpointTrace(t *testing.T) {
	_, ts := testServer(t)
	req := batchRequest{Queries: []batchQueryBody{
		{Kind: "pair", Path: "APC", Source: "Tom", Target: "KDD"},
		{Kind: "pair", Path: "APC", Source: "Mary", Target: "KDD"},
	}}
	var body batchResponse
	postJSON(t, ts.URL+"/v1/batch?trace=1", req, http.StatusOK, &body)
	if body.Trace == nil {
		t.Fatal("no trace in response")
	}
	names := make(map[string]bool)
	for _, sp := range body.Trace.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"decode", "batch_plan", "batch_materialize"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}
