package server

import (
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"hetesim/internal/hin"
)

// FuzzDecodeQuery checks the query decoder never panics on arbitrary
// request parameters and that anything it accepts is internally
// consistent: a parsed path within the step cap, a non-empty source, and
// a known measure.
func FuzzDecodeQuery(f *testing.F) {
	s := New(fuzzGraph(f))

	// Seed with a valid query and near-valid variants.
	f.Add("APC", "Tom", "hetesim", "")
	f.Add("APCPA", "Mary", "pcrw", "false")
	f.Add("APA", "Tom", "", "true")
	f.Add("", "Tom", "hetesim", "")
	f.Add("APC", "", "hetesim", "")
	f.Add("ZZZ", "Tom", "hetesim", "")
	f.Add("APC", "Tom", "bogus", "")
	f.Add("APC", "Tom", "pathsim", "maybe")
	f.Add("A-writes>P", "Tom", "hetesim", "")
	f.Add(strings.Repeat("AP", 300)+"A", "Tom", "hetesim", "")
	f.Add("APC\x00", "a\nb", "hetesim", "1")

	f.Fuzz(func(t *testing.T, path, source, measure, raw string) {
		v := url.Values{}
		if path != "" {
			v.Set("path", path)
		}
		if source != "" {
			v.Set("source", source)
		}
		if measure != "" {
			v.Set("measure", measure)
		}
		if raw != "" {
			v.Set("raw", raw)
		}
		r := httptest.NewRequest("GET", "/v1/topk?"+v.Encode(), nil)
		q, err := s.decodeQuery(s.current(), r)
		if err != nil {
			return
		}
		if q.path == nil {
			t.Fatal("accepted query has nil path")
		}
		if s.maxPathSteps > 0 && q.path.Len() > s.maxPathSteps {
			t.Fatalf("accepted path of %d steps past the %d cap", q.path.Len(), s.maxPathSteps)
		}
		if q.source == "" {
			t.Fatal("accepted query has empty source")
		}
		switch q.measure {
		case "hetesim", "pcrw", "pathsim":
		default:
			t.Fatalf("accepted unknown measure %q", q.measure)
		}
		if q.raw && q.measure != "hetesim" {
			t.Fatalf("accepted raw flag on measure %q", q.measure)
		}
	})
}

func fuzzGraph(f *testing.F) *hin.Graph {
	f.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "SIGMOD")
	return b.MustBuild()
}
