package server

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hetesim/internal/hin"
)

// lifecycleGraph is the small Fig. 4 graph used across lifecycle tests.
func lifecycleGraph(t *testing.T) *hin.Graph {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	return b.MustBuild()
}

func lifecycleServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(lifecycleGraph(t), opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func decodeError(t *testing.T, r io.Reader) errorBody {
	t.Helper()
	var e errorBody
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return e
}

// TestQueryTimeout504 exercises the per-request deadline: a 1ns budget is
// spent before the engine's first context poll, so every exact query must
// come back 504 with the stable deadline_exceeded code.
func TestQueryTimeout504(t *testing.T) {
	_, ts := lifecycleServer(t, WithQueryTimeout(time.Nanosecond))
	resp, err := http.Get(ts.URL + "/v1/topk?path=APC&source=Tom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d", resp.StatusCode, http.StatusGatewayTimeout)
	}
	if e := decodeError(t, resp.Body); e.Code != "deadline_exceeded" {
		t.Errorf("code = %q, want deadline_exceeded", e.Code)
	}
	// Health endpoints are exempt from the query deadline.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d under query timeout", resp2.StatusCode)
	}
}

// TestClientCancel499 serves a request whose context is already canceled —
// the handler's engine call fails with context.Canceled, which must map to
// the 499 client-closed-request status.
func TestClientCancel499(t *testing.T) {
	srv := New(lifecycleGraph(t))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/pair?path=APC&source=Tom&target=KDD", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}
	if e := decodeError(t, rec.Body); e.Code != "canceled" {
		t.Errorf("code = %q, want canceled", e.Code)
	}
}

// TestDegradedTopK checks graceful degradation: with the exact plan's
// deadline already spent, the Monte Carlo fallback answers 200 and the
// response is marked approximate.
func TestDegradedTopK(t *testing.T) {
	_, ts := lifecycleServer(t, WithQueryTimeout(time.Nanosecond), WithDegradedTopK(5000))
	var body topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APC&source=Tom", http.StatusOK, &body)
	if !body.Approximate {
		t.Error("degraded topk not marked approximate")
	}
	if len(body.Results) == 0 || body.Results[0].ID != "KDD" {
		t.Errorf("degraded topk results = %+v, want KDD first", body.Results)
	}

	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
	if !pair.Approximate {
		t.Error("degraded pair not marked approximate")
	}
	if pair.Score <= 0 {
		t.Errorf("degraded pair score = %v, want > 0", pair.Score)
	}

	// Degradation is exact-hetesim-only: pcrw still times out with 504.
	resp, err := http.Get(ts.URL + "/v1/topk?path=APC&source=Tom&measure=pcrw")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("pcrw under degradation: status = %d, want 504", resp.StatusCode)
	}
}

// TestPanicRecovery registers a panicking route and checks the middleware
// converts the panic into a 500 JSON response while the server keeps
// serving subsequent requests.
func TestPanicRecovery(t *testing.T) {
	srv, ts := lifecycleServer(t)
	srv.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	resp, err := http.Get(ts.URL + "/v1/boom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if e := decodeError(t, resp.Body); e.Code != "internal_panic" {
		t.Errorf("code = %q, want internal_panic", e.Code)
	}
	resp.Body.Close()
	// The daemon survived: a normal query still works.
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
	if pair.Score <= 0 {
		t.Errorf("post-panic pair score = %v", pair.Score)
	}
}

// TestLoadShedding429 fills the single in-flight slot with a blocked
// query and checks the next query is shed with 429 + Retry-After, while
// liveness probes bypass the limiter.
func TestLoadShedding429(t *testing.T) {
	srv, ts := lifecycleServer(t, WithMaxInflight(1))
	started := make(chan struct{})
	release := make(chan struct{})
	srv.mux.HandleFunc("GET /v1/block", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		writeJSON(w, http.StatusOK, map[string]string{"status": "unblocked"})
	})

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/block")
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	<-started

	resp, err := http.Get(ts.URL + "/v1/pair?path=APC&source=Tom&target=KDD")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	}
	if e := decodeError(t, resp.Body); e.Code != "overloaded" {
		t.Errorf("code = %q, want overloaded", e.Code)
	}
	resp.Body.Close()

	// Probes are never shed.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("healthz shed with %d while saturated", resp2.StatusCode)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("blocked request finished with %d", code)
	}
	// The slot is free again.
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
}

// TestGracefulShutdownDrain starts a real http.Server on the robustness
// handler, blocks a request in-flight, calls Shutdown, and checks the
// in-flight request completes 200 while the drain finishes cleanly.
func TestGracefulShutdownDrain(t *testing.T) {
	srv := New(lifecycleGraph(t))
	started := make(chan struct{})
	release := make(chan struct{})
	srv.mux.HandleFunc("GET /v1/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		writeJSON(w, http.StatusOK, map[string]string{"status": "drained"})
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)

	url := "http://" + ln.Addr().String() + "/v1/slow"
	reqDone := make(chan string, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			reqDone <- err.Error()
			return
		}
		defer resp.Body.Close()
		var body map[string]string
		json.NewDecoder(resp.Body).Decode(&body)
		reqDone <- body["status"]
	}()
	<-started

	shutdownDone := make(chan error, 1)
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { shutdownDone <- httpSrv.Shutdown(drainCtx) }()

	// Shutdown must wait for the in-flight request, not kill it.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if got := <-reqDone; got != "drained" {
		t.Fatalf("in-flight request got %q, want drained response", got)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestReadiness checks the liveness/readiness lifecycle: a fresh server
// reports cold (503), a warmup with no work flips straight to ready, and
// background materialization passes through warming before landing on
// ready — while /healthz stays 200 throughout.
func TestReadiness(t *testing.T) {
	srv, ts := lifecycleServer(t)
	if srv.Ready() {
		t.Fatal("fresh server already ready; want cold until warmup runs")
	}
	var body map[string]any
	getJSON(t, ts.URL+"/readyz", http.StatusServiceUnavailable, &body)
	if body["status"] != "cold" {
		t.Errorf("readyz on fresh server = %v, want cold", body)
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &body)

	// A malformed spec fails synchronously and does not mark the server
	// ready by accident.
	if err := srv.PrecomputeBackground([]string{"not a path"}, t.Logf); err == nil {
		t.Fatal("PrecomputeBackground accepted a malformed path")
	}
	if srv.Ready() {
		t.Fatal("failed parse marked server ready")
	}

	// Nothing to materialize: ready immediately.
	if err := srv.PrecomputeBackground(nil, t.Logf); err != nil {
		t.Fatal(err)
	}
	if !srv.Ready() {
		t.Fatal("empty warmup left server not ready")
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &body)
	if body["status"] != "ready" {
		t.Errorf("readyz = %v", body)
	}

	if err := srv.PrecomputeBackground([]string{"APC", "APCPA"}, t.Logf); err != nil {
		t.Fatal(err)
	}
	// Materialization runs in the background; readiness must flip to true
	// reasonably quickly on this tiny graph.
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("server never became ready")
		}
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz status = %d mid-materialization", resp.StatusCode)
		}
		resp.Body.Close()
		time.Sleep(time.Millisecond)
	}
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &body)
	if body["status"] != "ready" {
		t.Errorf("readyz after materialization = %v", body)
	}
}

// TestPathLengthCap rejects absurdly long relevance paths up front.
func TestPathLengthCap(t *testing.T) {
	_, ts := lifecycleServer(t)
	spec := strings.Repeat("AP", 200) + "A"
	resp, err := http.Get(ts.URL + "/v1/topk?path=" + spec + "&source=Tom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if e := decodeError(t, resp.Body); e.Code != "bad_request" {
		t.Errorf("code = %q, want bad_request", e.Code)
	}
}

// TestStatsCachedMatrices checks /v1/stats exposes the engine cache gauge.
func TestStatsCachedMatrices(t *testing.T) {
	srv, ts := lifecycleServer(t)
	var stats map[string]any
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	before, ok := stats["cached_matrices"].(float64)
	if !ok {
		t.Fatalf("stats = %v, want cached_matrices", stats)
	}
	if err := srv.Precompute("APC"); err != nil {
		t.Fatal(err)
	}
	var after map[string]any
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &after)
	if after["cached_matrices"].(float64) <= before {
		t.Errorf("cached_matrices did not grow after precompute: %v -> %v",
			before, after["cached_matrices"])
	}
	// The extended stats carry the merged cache snapshot and the engine
	// option settings that produced it.
	cache, ok := after["cache"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing cache object: %v", after)
	}
	if cache["chain"].(float64) < 1 {
		t.Errorf("cache.chain = %v after precompute, want >= 1", cache["chain"])
	}
	if _, ok := cache["evictions"]; !ok {
		t.Errorf("cache object missing evictions: %v", cache)
	}
	options, ok := after["options"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing options object: %v", after)
	}
	for _, key := range []string{"cache_limit", "degrade_walks", "query_timeout_ms",
		"max_inflight", "max_path_steps", "slowlog_threshold_ms"} {
		if _, ok := options[key]; !ok {
			t.Errorf("options missing %q: %v", key, options)
		}
	}
}
