package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/obs"
	"hetesim/internal/wal"
)

// Crash-safe incremental mutation. POST /v1/admin/edges applies a batch of
// edge/node deltas to the serving graph without a restart and without
// rebuilding the chain cache: the batch is validated against the current
// graph, appended (and fsynced) to the write-ahead log, and only then
// applied — a fresh engine set is built over the copy-on-write graph, its
// cached chain matrices maintained row-incrementally from the serving set
// (Property 2 locality), and the serving pointer swapped. In-flight queries
// drain against the set they started with; an acked batch survives any
// crash because boot replays the log over the base graph.
var (
	metMutations = obs.Default().Counter("hetesim_mutations_total",
		"Mutation batches acked through POST /v1/admin/edges.")
	metMutationOps = obs.Default().Counter("hetesim_mutation_ops_total",
		"Individual mutation operations acked.")
	metMutationDuplicates = obs.Default().Counter("hetesim_mutation_duplicates_total",
		"Mutation batches answered from the idempotency table without re-applying.")
	metMutationBackpressure = obs.Default().Counter("hetesim_mutation_backpressure_total",
		"Mutation batches shed with 503 because a write was already in flight.")
	metWALBytes = obs.Default().Gauge("hetesim_wal_bytes",
		"Current size of the edge-delta write-ahead log.")
	metWALReplayed = obs.Default().Counter("hetesim_wal_replayed_total",
		"Mutation batches re-applied from the write-ahead log at boot.")
	metWALCompactions = obs.Default().Counter("hetesim_wal_compactions_total",
		"Write-ahead log compactions (log folded into a new base graph).")
	metSnapshotSaveRetries = obs.Default().Counter("hetesim_snapshot_save_retries_total",
		"Snapshot save attempts retried after a failure.")
)

// errDraining marks mutations and reloads refused during shutdown drain.
var errDraining = errors.New("server: draining, mutating requests refused")

// maxAppliedKeys bounds the idempotency table: beyond it the oldest acked
// keys are evicted FIFO, so neither the in-memory table nor the checkpoint
// written at compaction can grow without bound. Retrying a batch acked
// more than 64Ki keyed batches ago re-applies it — idempotency is a
// crash-retry window, not an unbounded ledger.
const maxAppliedKeys = 1 << 16

// rememberKeyLocked records an acked idempotency key and its sequence,
// evicting the oldest keys beyond maxAppliedKeys. Callers hold walMu.
func (s *Server) rememberKeyLocked(key string, seq uint64) {
	if key == "" {
		return
	}
	if _, ok := s.applied[key]; !ok {
		s.appliedOrder = append(s.appliedOrder, key)
	}
	s.applied[key] = seq
	for len(s.appliedOrder) > maxAppliedKeys {
		delete(s.applied, s.appliedOrder[0])
		s.appliedOrder = s.appliedOrder[1:]
	}
}

// checkpointEntriesLocked snapshots the idempotency table for a WAL reset,
// oldest ack first (insertion order is ack order — sequences are monotonic
// across compactions). Callers hold walMu.
func (s *Server) checkpointEntriesLocked() []wal.CheckpointEntry {
	entries := make([]wal.CheckpointEntry, 0, len(s.appliedOrder))
	for _, k := range s.appliedOrder {
		entries = append(entries, wal.CheckpointEntry{Key: k, Seq: s.applied[k]})
	}
	return entries
}

// errMutationBusy marks a mutation shed because a write was in flight.
var errMutationBusy = errors.New("server: a mutation is already in flight")

// BeginDrain puts the server into shutdown drain: in-flight and new
// queries keep being answered (the HTTP server's own Shutdown bounds
// that), but mutations and reloads are refused with 409 from here on, so
// no graph swap races the drain. Drain is one-way.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// WALStatus reports what OpenWAL found and did.
type WALStatus struct {
	Replayed       int    `json:"replayed"`        // batches re-applied from the log
	Checkpointed   int    `json:"checkpointed"`    // idempotency keys restored from checkpoints
	TruncatedBytes int64  `json:"truncated_bytes"` // torn tail discarded
	SetAside       string `json:"set_aside,omitempty"`
}

// OpenWAL opens the configured write-ahead log against the currently
// served graph and replays any batches it holds through the incremental
// mutation path, leaving the server's graph caught up to the last acked
// mutation. The server reports "replaying" at /readyz for the duration.
// Call after WarmStart and before serving; with no WAL path it is a no-op.
//
// A log whose header names a different base-graph fingerprint is set
// aside, not replayed: it belongs to another generation (most often one
// already folded into the base by a compaction that crashed before
// resetting the log).
func (s *Server) OpenWAL() (*WALStatus, error) {
	if s.walPath == "" {
		return nil, nil
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	l, rep, err := wal.Open(s.fsys, s.walPath, s.current().fingerprint)
	if err != nil {
		return nil, err
	}
	s.wal = l
	s.lastWalSeq.Store(l.LastSeq())
	metWALBytes.Set(float64(l.Size()))
	st := &WALStatus{
		Checkpointed:   len(rep.Checkpoint),
		TruncatedBytes: rep.TruncatedBytes,
		SetAside:       rep.SetAside,
	}
	for _, e := range rep.Checkpoint {
		s.rememberKeyLocked(e.Key, e.Seq)
	}
	if len(rep.Batches) == 0 {
		return st, nil
	}

	prev := s.State()
	s.setState(StateReplaying)
	defer s.setState(prev)
	for _, b := range rep.Batches {
		if b.Key != "" {
			if _, dup := s.applied[b.Key]; dup {
				// A client retry that raced a crash: the ack made it to the
				// log twice, the mutation must land once. The replication
				// position still advances — the batch is durably recorded.
				metMutationDuplicates.Inc()
				s.walBatches++
				s.lastWalSeq.Store(b.Seq)
				continue
			}
		}
		if _, err := s.applyLocked(context.Background(), b.Key, b.Ops, b.Seq); err != nil {
			return st, fmt.Errorf("server: replaying wal batch %d: %w", b.Seq, err)
		}
		metWALReplayed.Inc()
		st.Replayed++
	}

	// Delta-snapshot retry: a snapshot saved after mutations names the
	// post-replay fingerprint, so the boot-time warm start against the base
	// graph rejected it. Now that replay caught the graph up, try again —
	// unless the base warm start already landed, in which case the replay
	// loop carried its chains forward incrementally.
	if s.snapshotPath != "" && s.current().engine.CacheSize() == 0 {
		if n, err := s.warmInto(s.current()); err == nil && n > 0 {
			metWarmStart.Set(1)
		}
	}
	return st, nil
}

// CloseWAL fsyncs and closes the write-ahead log. Call after the HTTP
// server has shut down; a no-op when no WAL is open.
func (s *Server) CloseWAL() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// applyLocked runs the in-memory half of a mutation: apply the ops to the
// serving graph copy-on-write, build the next engine set, maintain its
// chain caches incrementally from the serving set, and swap. Callers hold
// walMu and have already made the batch durable (or are replaying one that
// is). Rewarm failure is not batch failure — durability was decided at the
// log append; the next set just starts colder.
func (s *Server) applyLocked(ctx context.Context, key string, ops []hin.Op, seq uint64) (core.RewarmStats, error) {
	cur := s.current()
	ng, dirty, err := cur.g.Apply(ops)
	if err != nil {
		return core.RewarmStats{}, err
	}
	next := s.newEngineSet(ng)
	stats, err := next.engine.RewarmFrom(ctx, cur.engine, dirty)
	if err != nil {
		s.logf("server: incremental rewarm: %v", err)
	}
	if _, err := next.raw.RewarmFrom(ctx, cur.raw, dirty); err != nil {
		s.logf("server: incremental rewarm (raw): %v", err)
	}
	s.cur.Store(next)
	s.rememberKeyLocked(key, seq)
	s.lastWalSeq.Store(seq)
	s.walBatches++
	return stats, nil
}

// compactLocked folds the write-ahead log into its base: the current
// (post-mutation) graph is written crash-safely to the configured graph
// path, then the log is reset against the new base fingerprint with the
// idempotency table carried as checkpoint records. Crash-safe in both
// orders: before the graph rename the old base + old log still replay to
// the same graph; between rename and reset the log names the old
// fingerprint and is set aside at boot — its batches are already folded
// into the base. A graph file this process did not write — an operator
// dropping in a replacement generation — is never overwritten: compaction
// refuses with an error naming both fingerprints instead of silently
// destroying the replacement. Callers hold walMu.
func (s *Server) compactLocked() error {
	if s.wal == nil || s.walBatches == 0 {
		return nil
	}
	if s.graphPath == "" {
		return errors.New("server: wal compaction needs a base graph path (WithReloadFrom)")
	}
	es := s.current()
	// The file is ours to overwrite only if it holds the log's base, the
	// graph we are about to write anyway, or the half of a previous
	// compaction that crashed between its graph write and log reset.
	if fp, err := s.diskGraphFingerprint(); err == nil &&
		fp != s.wal.Fingerprint() && fp != es.fingerprint && fp != s.lastSavedFP {
		return fmt.Errorf("server: refusing to compact over a replaced graph file: %s holds fingerprint %016x, the log's base is %016x — restart (the log is set aside at boot) or remove the replacement before mutating further",
			s.graphPath, fp, s.wal.Fingerprint())
	}
	if err := s.saveGraph(es.g); err != nil {
		return fmt.Errorf("server: writing compacted base graph: %w", err)
	}
	s.lastSavedFP = es.fingerprint
	if err := s.wal.Reset(es.fingerprint, s.checkpointEntriesLocked()); err != nil {
		return fmt.Errorf("server: resetting wal: %w", err)
	}
	s.walBatches = 0
	metWALCompactions.Inc()
	metWALBytes.Set(float64(s.wal.Size()))
	return nil
}

// diskGraphFingerprint reads the graph file at graphPath and reports the
// fingerprint of the graph it holds — the compaction guard's evidence of
// an operator-placed replacement. Unreadable or corrupt files report an
// error; the guard then lets compaction proceed, since overwriting a
// broken base with a coherent one is a repair, not a loss.
func (s *Server) diskGraphFingerprint() (uint64, error) {
	f, err := os.Open(s.graphPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	g, err := hin.Read(f)
	if err != nil {
		return 0, err
	}
	return g.Fingerprint(), nil
}

// saveGraph writes g to the configured graph path with the same temp +
// fsync + rename + dir-sync protocol the snapshot writer uses, so a crash
// mid-write never costs the previous base graph.
func (s *Server) saveGraph(g *hin.Graph) (err error) {
	dir := filepath.Dir(s.graphPath)
	f, err := s.fsys.CreateTemp(dir, filepath.Base(s.graphPath)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			s.fsys.Remove(tmp)
		}
	}()
	if err = hin.Write(f, g); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = s.fsys.Rename(tmp, s.graphPath); err != nil {
		return err
	}
	return s.fsys.SyncDir(dir)
}

type mutateRequest struct {
	// Key is the client's idempotency key: a batch re-sent with the key of
	// an already-acked batch is acknowledged again without re-applying.
	// Empty disables deduplication for the batch.
	Key string   `json:"key,omitempty"`
	Ops []hin.Op `json:"ops"`
}

type mutateBody struct {
	Status      string            `json:"status"` // "applied" or "duplicate"
	Seq         uint64            `json:"seq"`
	Fingerprint string            `json:"fingerprint"`
	Rewarm      *core.RewarmStats `json:"rewarm,omitempty"`
	WALBytes    int64             `json:"wal_bytes"`
}

// handleMutate is POST /v1/admin/edges: validate, log, apply, ack — in
// that order, so an ack always implies durability. Writers are single-file:
// a batch arriving while another is being logged is shed with 503 +
// Retry-After rather than queued, keeping the admin surface's backpressure
// visible to the caller.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if s.walPath == "" {
		writeJSON(w, http.StatusNotImplemented,
			errorBody{Error: "mutations are disabled: no -wal-path configured", Code: "mutations_disabled"})
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusConflict, errorBody{Error: errDraining.Error(), Code: "draining"})
		return
	}
	if s.refuseNotPrimary(w) {
		return
	}
	var req mutateRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: "decoding mutation batch: " + err.Error(), Code: "bad_request"})
		return
	}
	if len(req.Ops) == 0 {
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: "mutation batch has no ops", Code: "bad_request"})
		return
	}
	if !s.walMu.TryLock() {
		metMutationBackpressure.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: errMutationBusy.Error(), Code: "mutation_in_flight"})
		return
	}
	defer s.walMu.Unlock()
	if s.wal == nil {
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "write-ahead log is not open", Code: "wal_not_open"})
		return
	}
	if req.Key != "" {
		if seq, dup := s.applied[req.Key]; dup {
			metMutationDuplicates.Inc()
			writeJSON(w, http.StatusOK, mutateBody{
				Status: "duplicate", Seq: seq,
				Fingerprint: fmt.Sprintf("%016x", s.current().fingerprint),
				WALBytes:    s.wal.Size(),
			})
			return
		}
	}
	// Validate before logging: a batch the graph rejects must leave no
	// trace in the log, or replay would fail on it forever.
	if _, _, err := s.current().g.Apply(req.Ops); err != nil {
		writeError(w, err)
		return
	}
	seq, err := s.wal.Append(req.Key, req.Ops)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "logging mutation batch: " + err.Error(), Code: "wal_append_failed"})
		return
	}
	metWALBytes.Set(float64(s.wal.Size()))
	// Durable from here: even if this process dies mid-apply, boot replays
	// the batch. The second Apply cannot fail where the first succeeded —
	// same graph, same ops.
	stats, err := s.applyLocked(r.Context(), req.Key, req.Ops, seq)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "applying logged batch: " + err.Error(), Code: "apply_failed"})
		return
	}
	metMutations.Inc()
	metMutationOps.Add(uint64(len(req.Ops)))
	if s.walCompactBytes > 0 && s.wal.Size() > s.walCompactBytes {
		if err := s.compactLocked(); err != nil {
			// Compaction failure is not batch failure: the log still holds
			// everything; retry at the next threshold crossing.
			s.logf("server: wal compaction: %v", err)
		}
	}
	writeJSON(w, http.StatusOK, mutateBody{
		Status: "applied", Seq: seq,
		Fingerprint: fmt.Sprintf("%016x", s.current().fingerprint),
		Rewarm:      &stats,
		WALBytes:    s.wal.Size(),
	})
}

// saveSnapshotRetry is SaveSnapshot with bounded retries and jittered
// exponential backoff — transient filesystem failures (the disk filling
// briefly, a slow NFS rename) should not cost a whole snapshot interval of
// warmth. Each retry is counted in hetesim_snapshot_save_retries_total.
func (s *Server) saveSnapshotRetry(ctx context.Context, attempts int, backoff time.Duration, logf func(string, ...any)) error {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			metSnapshotSaveRetries.Inc()
			d := backoff << uint(i-1)
			d += rand.N(d) // jitter in [d, 2d)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
		}
		if err = s.SaveSnapshot(); err == nil {
			return nil
		}
		logf("server: snapshot save attempt %d/%d: %v", i+1, attempts, err)
	}
	return err
}
