package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetesim/internal/chaos"
	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/metapath"
	"hetesim/internal/wal"
)

// postMutation sends one batch to POST /v1/admin/edges and decodes the
// response, failing the test on transport errors.
func postMutation(t testing.TB, url, key string, ops []hin.Op) (*http.Response, mutateBody) {
	t.Helper()
	body, err := json.Marshal(mutateRequest{Key: key, Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/admin/edges", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mb mutateBody
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &mb); err != nil {
			t.Fatalf("decoding mutation response %s: %v", raw, err)
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp, mb
}

func upsert(rel, src, dst string, w float64) hin.Op {
	return hin.Op{Kind: hin.OpUpsertEdge, Relation: rel, Src: src, Dst: dst, Weight: w}
}

// mutationBatches is the shared delta sequence of the durability tests:
// three acked batches whose cumulative application defines the expected
// post-crash state.
func mutationBatches() [][]hin.Op {
	return [][]hin.Op{
		{upsert("writes", "Carl", "p1", 1), upsert("writes", "Carl", "p2", 2)},
		{{Kind: hin.OpDeleteEdge, Relation: "writes", Src: "Carl", Dst: "p2"}},
		{upsert("published_in", "p2", "VLDB", 1), {Kind: hin.OpAddNode, Type: "author", ID: "Dana"}},
	}
}

// applyAll folds batches over g.
func applyAll(t testing.TB, g *hin.Graph, batches [][]hin.Op) *hin.Graph {
	t.Helper()
	for _, ops := range batches {
		ng, _, err := g.Apply(ops)
		if err != nil {
			t.Fatal(err)
		}
		g = ng
	}
	return g
}

// TestMutateEndpoint drives the happy path and the request-level error
// surface of POST /v1/admin/edges.
func TestMutateEndpoint(t *testing.T) {
	dir := t.TempDir()
	srv := New(reloadGraph(t, 0), WithWALPath(filepath.Join(dir, "edges.wal")), WithLogf(t.Logf))
	srv.MarkReady()
	if _, err := srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Precompute("APC"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, mb := postMutation(t, ts.URL, "batch-1", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK || mb.Status != "applied" {
		t.Fatalf("mutation = %d %+v", resp.StatusCode, mb)
	}
	if mb.Seq == 0 || mb.WALBytes == 0 || mb.Rewarm == nil {
		t.Fatalf("ack missing durability evidence: %+v", mb)
	}

	// The mutation is visible to queries immediately: Carl now reaches KDD.
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Carl&target=KDD", http.StatusOK, &pair)
	if pair.Score <= 0 {
		t.Errorf("HS(Carl, KDD) = %v after mutation, want > 0", pair.Score)
	}

	// Same idempotency key: acked again, not re-applied.
	fpBefore := srv.current().fingerprint
	resp, mb = postMutation(t, ts.URL, "batch-1", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK || mb.Status != "duplicate" {
		t.Fatalf("duplicate = %d %+v", resp.StatusCode, mb)
	}
	if srv.current().fingerprint != fpBefore {
		t.Fatal("duplicate batch mutated the graph")
	}

	// An invalid batch leaves no trace: 404 for the unknown edge, and the
	// log does not grow (replay would otherwise fail on it forever).
	sizeBefore := srv.wal.Size()
	resp, _ = postMutation(t, ts.URL, "bad-batch",
		[]hin.Op{{Kind: hin.OpDeleteEdge, Relation: "writes", Src: "nobody", Dst: "p1"}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("invalid delete = %d, want 404", resp.StatusCode)
	}
	if srv.wal.Size() != sizeBefore {
		t.Fatal("rejected batch was logged")
	}
	resp, _ = postMutation(t, ts.URL, "", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", resp.StatusCode)
	}
	resp, _ = postMutation(t, ts.URL, "bad-weight", []hin.Op{upsert("writes", "X", "p1", -1)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative weight = %d, want 400", resp.StatusCode)
	}

	// Without a WAL the endpoint is disabled outright.
	bare := New(reloadGraph(t, 0))
	bare.MarkReady()
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	resp, _ = postMutation(t, tsBare.URL, "k", mutationBatches()[0])
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("mutation without WAL = %d, want 501", resp.StatusCode)
	}
}

// TestMutateCrashReplay is the headline durability guarantee: kill the
// process (abandon it without closing the WAL) after acked mutations, boot
// a replacement from the base graph, and the replayed state — graph
// fingerprint, chain cache, query answers — is bit-identical to a cold
// engine built over the mutated graph. Idempotency keys survive too.
func TestMutateCrashReplay(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")
	base := reloadGraph(t, 0)

	first := New(base, WithWALPath(walPath), WithLogf(t.Logf))
	first.MarkReady()
	if _, err := first.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	if err := first.Precompute("APC"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(first.Handler())
	for i, ops := range mutationBatches() {
		resp, mb := postMutation(t, ts.URL, fmt.Sprintf("batch-%d", i), ops)
		if resp.StatusCode != http.StatusOK || mb.Status != "applied" {
			t.Fatalf("batch %d = %d %+v", i, resp.StatusCode, mb)
		}
	}
	mutatedFP := first.current().fingerprint
	ts.Close() // crash: no CloseWAL, no compaction

	// Boot a replacement over the same base graph, warm the same path
	// before replay (the boot-time precompute), then replay the log.
	second := New(base, WithWALPath(walPath), WithLogf(t.Logf))
	if err := second.Precompute("APC"); err != nil {
		t.Fatal(err)
	}
	st, err := second.OpenWAL()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != len(mutationBatches()) || st.TruncatedBytes != 0 || st.SetAside != "" {
		t.Fatalf("replay status = %+v", st)
	}
	if second.current().fingerprint != mutatedFP {
		t.Fatalf("replayed fingerprint %016x, want %016x", second.current().fingerprint, mutatedFP)
	}

	// Bit-identity: every chain the replayed engine carries matches a cold
	// engine built directly over the mutated graph.
	coldGraph := applyAll(t, base, mutationBatches())
	cold := core.NewEngine(coldGraph)
	if err := cold.Precompute(context.Background(), metapath.MustParse(coldGraph.Schema(), "APC")); err != nil {
		t.Fatal(err)
	}
	coldChains := cold.ExportChains()
	warmChains := second.current().engine.ExportChains()
	if len(warmChains) == 0 {
		t.Fatal("replay dropped every warmed chain")
	}
	for k, wm := range warmChains {
		cm, ok := coldChains[k]
		if !ok {
			t.Errorf("replayed cache holds %q unknown to the cold build", k)
			continue
		}
		if !cm.Equal(wm) {
			t.Errorf("chain %q diverges between replay and cold rebuild", k)
		}
	}

	// Acked keys are remembered across the crash: the retry is a duplicate,
	// not a second application.
	second.MarkReady()
	ts2 := httptest.NewServer(second.Handler())
	defer ts2.Close()
	resp, mb := postMutation(t, ts2.URL, "batch-0", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK || mb.Status != "duplicate" {
		t.Fatalf("post-crash retry = %d %+v, want duplicate", resp.StatusCode, mb)
	}
}

// TestMutateTornTailRecovery cuts the log at record boundaries and in the
// middle of the final record: boot must recover exactly the whole-batch
// prefix, discard the torn tail, and keep accepting writes.
func TestMutateTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")
	base := reloadGraph(t, 0)

	first := New(base, WithWALPath(walPath), WithLogf(t.Logf))
	first.MarkReady()
	if _, err := first.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(first.Handler())
	sizes := []int64{} // log size after each acked batch
	for i, ops := range mutationBatches() {
		_, mb := postMutation(t, ts.URL, fmt.Sprintf("batch-%d", i), ops)
		sizes = append(sizes, mb.WALBytes)
	}
	ts.Close()
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	cuts := []struct {
		at   int64
		want int // recoverable whole batches
	}{
		{sizes[0], 1},
		{sizes[1], 2},
		{sizes[0] + (sizes[1]-sizes[0])/2, 1}, // mid-record: batch 2 torn away
		{sizes[2] - 1, 2},                     // one byte short of batch 3
	}
	for _, cut := range cuts {
		if err := os.WriteFile(walPath, full[:cut.at], 0o644); err != nil {
			t.Fatal(err)
		}
		srv := New(base, WithWALPath(walPath), WithLogf(t.Logf))
		st, err := srv.OpenWAL()
		if err != nil {
			t.Fatalf("cut %d: %v", cut.at, err)
		}
		if st.Replayed != cut.want {
			t.Fatalf("cut %d: replayed %d batches, want %d", cut.at, st.Replayed, cut.want)
		}
		wantG := applyAll(t, base, mutationBatches()[:cut.want])
		if srv.current().fingerprint != wantG.Fingerprint() {
			t.Errorf("cut %d: fingerprint diverges from cold rebuild of the surviving prefix", cut.at)
		}
		srv.CloseWAL()
	}
}

// TestMutateDuplicateKeyReplay plants a crash-window duplicate in the log —
// the same idempotency key appended twice, as a client retry racing a
// crash-before-ack would leave it — and checks replay applies it once.
func TestMutateDuplicateKeyReplay(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")
	base := reloadGraph(t, 0)
	ops := mutationBatches()[0]

	first := New(base, WithWALPath(walPath), WithLogf(t.Logf))
	first.MarkReady()
	if _, err := first.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(first.Handler())
	postMutation(t, ts.URL, "retry-key", ops)
	ts.Close()
	if err := first.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Re-open the raw log and append the same key again.
	l, _, err := wal.Open(first.fsys, walPath, base.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append("retry-key", ops); err != nil {
		t.Fatal(err)
	}
	l.Close()

	second := New(base, WithWALPath(walPath), WithLogf(t.Logf))
	st, err := second.OpenWAL()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 1 {
		t.Fatalf("replayed %d batches of a duplicated key, want 1", st.Replayed)
	}
	want := applyAll(t, base, [][]hin.Op{ops})
	if second.current().fingerprint != want.Fingerprint() {
		t.Fatal("duplicate replay double-applied the batch")
	}
}

// TestMutateAppendFailure injects a write failure into the WAL append: the
// client gets 500, nothing is acked, and — because the failed append rolls
// the log back — a retry with the same key succeeds cleanly and a restart
// sees exactly one application.
func TestMutateAppendFailure(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")
	base := reloadGraph(t, 0)
	cfs := chaos.NewFS()

	srv := New(base, WithWALPath(walPath), WithSnapshotFS(cfs), WithLogf(t.Logf))
	srv.MarkReady()
	if _, err := srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfs.FailWriteAt(10, errors.New("disk full")) // torn mid-record write
	resp, _ := postMutation(t, ts.URL, "k1", mutationBatches()[0])
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("append failure = %d, want 500", resp.StatusCode)
	}
	if e := decodeError(t, resp.Body); e.Code != "wal_append_failed" {
		t.Errorf("code = %q, want wal_append_failed", e.Code)
	}
	if srv.current().fingerprint != base.Fingerprint() {
		t.Fatal("failed append still mutated the graph")
	}

	cfs.DisarmAll()
	resp, mb := postMutation(t, ts.URL, "k1", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK || mb.Status != "applied" {
		t.Fatalf("retry after failed append = %d %+v", resp.StatusCode, mb)
	}

	// Restart: exactly one application of k1.
	second := New(base, WithWALPath(walPath), WithLogf(t.Logf))
	st, err := second.OpenWAL()
	if err != nil {
		t.Fatal(err)
	}
	want := applyAll(t, base, [][]hin.Op{mutationBatches()[0]})
	if st.Replayed != 1 || second.current().fingerprint != want.Fingerprint() {
		t.Fatalf("replay after torn append: %+v, fingerprint match=%v",
			st, second.current().fingerprint == want.Fingerprint())
	}
}

// TestMutateCompaction checks size-triggered compaction: the log folds into
// a freshly written base graph, the next boot replays nothing, and the
// idempotency table survives via the checkpoint record.
func TestMutateCompaction(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")
	graphPath := filepath.Join(dir, "graph.json")
	base := reloadGraph(t, 0)
	writeGraphFile(t, graphPath, base)

	srv := New(base, WithWALPath(walPath), WithReloadFrom(graphPath),
		WithWALCompactBytes(1), WithLogf(t.Logf)) // compact after every batch
	srv.MarkReady()
	if _, err := srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i, ops := range mutationBatches() {
		resp, mb := postMutation(t, ts.URL, fmt.Sprintf("batch-%d", i), ops)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d = %d %+v", i, resp.StatusCode, mb)
		}
		// Sequences stay monotonic across the compaction after each batch.
		if mb.Seq != uint64(i)+1 {
			t.Fatalf("batch %d acked with seq %d, want %d", i, mb.Seq, i+1)
		}
	}
	mutatedFP := srv.current().fingerprint

	// The on-disk base graph now IS the mutated graph.
	f, err := os.Open(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := hin.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.Fingerprint() != mutatedFP {
		t.Fatal("compaction did not fold mutations into the base graph")
	}

	// Boot from the compacted base: nothing to replay, keys checkpointed.
	second := New(onDisk, WithWALPath(walPath), WithLogf(t.Logf))
	st, err := second.OpenWAL()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 || st.Checkpointed != len(mutationBatches()) {
		t.Fatalf("post-compaction boot = %+v, want 0 replayed / %d checkpointed",
			st, len(mutationBatches()))
	}
	second.MarkReady()
	ts2 := httptest.NewServer(second.Handler())
	defer ts2.Close()
	resp, mb := postMutation(t, ts2.URL, "batch-0", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK || mb.Status != "duplicate" {
		t.Fatalf("checkpointed key not honored: %d %+v", resp.StatusCode, mb)
	}
	// The checkpoint carried the original ack sequence across the
	// compaction and the restart — not a placeholder.
	if mb.Seq != 1 {
		t.Fatalf("checkpointed duplicate reports seq %d, want original ack seq 1", mb.Seq)
	}
	// And a fresh batch continues the sequence past every checkpointed ack.
	resp, mb = postMutation(t, ts2.URL, "batch-new", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK || mb.Seq != uint64(len(mutationBatches()))+1 {
		t.Fatalf("post-checkpoint batch = %d seq %d, want seq %d",
			resp.StatusCode, mb.Seq, len(mutationBatches())+1)
	}
}

// TestReloadRebindsWAL is the lost-generation regression test: an operator
// replaces the graph file while the log is empty, reloads, and then
// mutates. The reload must rebind the open log to the new base
// fingerprint — otherwise the post-reload acks land in a log that the
// next boot sets aside, silently losing them.
func TestReloadRebindsWAL(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")
	graphPath := filepath.Join(dir, "graph.json")
	base := reloadGraph(t, 0)
	writeGraphFile(t, graphPath, base)

	first := New(base, WithWALPath(walPath), WithReloadFrom(graphPath), WithLogf(t.Logf))
	first.MarkReady()
	if _, err := first.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(first.Handler())
	// One acked batch before the swap, so the rebind must also carry the
	// idempotency table into the new generation.
	resp, mb := postMutation(t, ts.URL, "pre-swap", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-swap batch = %d %+v", resp.StatusCode, mb)
	}
	preSwapSeq := mb.Seq

	// Fold the pending batch into the base (a swap over pending batches is
	// refused — TestCompactionRefusesReplacedBase), then the operator swap:
	// a different generation lands at the graph path and a reload adopts it.
	if _, err := first.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	replacement := reloadGraph(t, 2)
	writeGraphFile(t, graphPath, replacement)
	if _, err := first.Reload(context.Background()); err != nil {
		t.Fatal(err)
	}
	if first.current().fingerprint != replacement.Fingerprint() {
		t.Fatal("reload did not adopt the replacement graph")
	}

	// Mutate the new generation, then crash without closing the WAL.
	resp, mb = postMutation(t, ts.URL, "post-swap", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-swap batch = %d %+v", resp.StatusCode, mb)
	}
	if mb.Seq <= preSwapSeq {
		t.Fatalf("post-swap seq %d did not advance past pre-swap seq %d", mb.Seq, preSwapSeq)
	}
	ts.Close() // crash

	// Boot from the replacement base: the log must replay, not be set aside.
	second := New(replacement, WithWALPath(walPath), WithLogf(t.Logf))
	st, err := second.OpenWAL()
	if err != nil {
		t.Fatal(err)
	}
	if st.SetAside != "" {
		t.Fatalf("post-reload log set aside (%s): acked batch lost", st.SetAside)
	}
	if st.Replayed != 1 {
		t.Fatalf("replayed %d batches, want 1", st.Replayed)
	}
	want := applyAll(t, replacement, [][]hin.Op{mutationBatches()[0]})
	if second.current().fingerprint != want.Fingerprint() {
		t.Fatal("replayed generation diverges from the mutated replacement")
	}
	// The pre-swap key crossed both the compaction and the rebind.
	second.MarkReady()
	ts2 := httptest.NewServer(second.Handler())
	defer ts2.Close()
	resp, mb = postMutation(t, ts2.URL, "pre-swap", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK || mb.Status != "duplicate" || mb.Seq != preSwapSeq {
		t.Fatalf("pre-swap retry after rebind = %d %+v, want duplicate seq %d", resp.StatusCode, mb, preSwapSeq)
	}
}

// TestCompactionRefusesReplacedBase: with batches pending in the log, an
// operator drops a replacement graph at the base path. Compaction (and
// the reload that triggers it) must refuse to overwrite the replacement
// with the in-memory graph rather than silently destroying it.
func TestCompactionRefusesReplacedBase(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")
	graphPath := filepath.Join(dir, "graph.json")
	base := reloadGraph(t, 0)
	writeGraphFile(t, graphPath, base)

	srv := New(base, WithWALPath(walPath), WithReloadFrom(graphPath), WithLogf(t.Logf))
	srv.MarkReady()
	if _, err := srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := postMutation(t, ts.URL, "pending", mutationBatches()[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	servingFP := srv.current().fingerprint

	replacement := reloadGraph(t, 2)
	writeGraphFile(t, graphPath, replacement)

	if _, err := srv.Reload(context.Background()); err == nil {
		t.Fatal("reload over a replaced base with pending batches succeeded")
	}
	// The replacement file is untouched and the serving graph unchanged.
	f, err := os.Open(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, err := hin.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if onDisk.Fingerprint() != replacement.Fingerprint() {
		t.Fatal("failed reload still overwrote the operator's replacement file")
	}
	if srv.current().fingerprint != servingFP {
		t.Fatal("failed reload changed the serving graph")
	}
	// The write path keeps working against the old generation.
	resp, _ = postMutation(t, ts.URL, "still-works", mutationBatches()[1])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation after refused compaction = %d", resp.StatusCode)
	}
}

// TestAppliedKeyTableBounded: the idempotency table evicts FIFO beyond
// maxAppliedKeys, so compaction checkpoints stay writable no matter how
// many keyed batches a client sends.
func TestAppliedKeyTableBounded(t *testing.T) {
	srv := New(reloadGraph(t, 0), WithLogf(t.Logf))
	srv.walMu.Lock()
	defer srv.walMu.Unlock()
	for i := 0; i < maxAppliedKeys+100; i++ {
		srv.rememberKeyLocked(fmt.Sprintf("key-%d", i), uint64(i)+1)
	}
	if len(srv.applied) != maxAppliedKeys || len(srv.appliedOrder) != maxAppliedKeys {
		t.Fatalf("table holds %d/%d keys, want bounded at %d",
			len(srv.applied), len(srv.appliedOrder), maxAppliedKeys)
	}
	if _, ok := srv.applied["key-0"]; ok {
		t.Fatal("oldest key survived eviction")
	}
	if seq, ok := srv.applied[fmt.Sprintf("key-%d", maxAppliedKeys+99)]; !ok || seq != maxAppliedKeys+100 {
		t.Fatalf("newest key = %d, %v", seq, ok)
	}
	entries := srv.checkpointEntriesLocked()
	if len(entries) != maxAppliedKeys {
		t.Fatalf("checkpoint snapshot holds %d entries", len(entries))
	}
	// Oldest-first, sequences monotone — the order replay restores.
	if entries[0].Seq != 101 || entries[len(entries)-1].Seq != maxAppliedKeys+100 {
		t.Fatalf("checkpoint order: first seq %d, last seq %d", entries[0].Seq, entries[len(entries)-1].Seq)
	}
}

// TestMutateCompactionCrashWindow simulates a crash between the two halves
// of a compaction — base graph renamed, log not yet reset. Boot from the
// new base must set the stale log aside (its batches are already folded
// in), losing nothing.
func TestMutateCompactionCrashWindow(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "edges.wal")
	base := reloadGraph(t, 0)

	first := New(base, WithWALPath(walPath), WithLogf(t.Logf))
	first.MarkReady()
	if _, err := first.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(first.Handler())
	postMutation(t, ts.URL, "k", mutationBatches()[0])
	ts.Close()
	mutated := applyAll(t, base, [][]hin.Op{mutationBatches()[0]})

	// Crash window: the mutated graph became the base, the log still names
	// the old base fingerprint.
	second := New(mutated, WithWALPath(walPath), WithLogf(t.Logf))
	st, err := second.OpenWAL()
	if err != nil {
		t.Fatal(err)
	}
	if st.Replayed != 0 || st.SetAside == "" {
		t.Fatalf("stale-log boot = %+v, want set-aside and no replay", st)
	}
	if second.current().fingerprint != mutated.Fingerprint() {
		t.Fatal("stale log replayed into the wrong generation")
	}
	if _, err := os.Stat(st.SetAside); err != nil {
		t.Fatalf("set-aside log not preserved on disk: %v", err)
	}
}

// TestMutateDrainConflict is the shutdown-drain regression test: once
// BeginDrain is called, mutations and reloads answer 409/draining while
// queries keep being served.
func TestMutateDrainConflict(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.json")
	writeGraphFile(t, graphPath, reloadGraph(t, 0))
	srv := New(reloadGraph(t, 0), WithWALPath(filepath.Join(dir, "edges.wal")),
		WithReloadFrom(graphPath), WithLogf(t.Logf))
	srv.MarkReady()
	if _, err := srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.BeginDrain()
	resp, _ := postMutation(t, ts.URL, "k", mutationBatches()[0])
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("mutation during drain = %d, want 409", resp.StatusCode)
	}
	if e := decodeError(t, resp.Body); e.Code != "draining" {
		t.Errorf("mutation drain code = %q, want draining", e.Code)
	}
	resp2, err := http.Post(ts.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("reload during drain = %d, want 409", resp2.StatusCode)
	}
	if e := decodeError(t, resp2.Body); e.Code != "draining" {
		t.Errorf("reload drain code = %q, want draining", e.Code)
	}
	resp2.Body.Close()

	// Queries drain normally.
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
	if pair.Score != 1 {
		t.Errorf("query during drain = %v, want 1", pair.Score)
	}
}

// TestMutateBackpressure503 holds the writer lock and checks a concurrent
// batch is shed with 503 + Retry-After instead of queueing.
func TestMutateBackpressure503(t *testing.T) {
	dir := t.TempDir()
	srv := New(reloadGraph(t, 0), WithWALPath(filepath.Join(dir, "edges.wal")), WithLogf(t.Logf))
	srv.MarkReady()
	if _, err := srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.walMu.Lock()
	resp, _ := postMutation(t, ts.URL, "k", mutationBatches()[0])
	srv.walMu.Unlock()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("concurrent mutation = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if e := decodeError(t, resp.Body); e.Code != "mutation_in_flight" {
		t.Errorf("code = %q, want mutation_in_flight", e.Code)
	}
}

// TestHotReloadUnderLoadWithMutations is the mixed-version guarantee under
// concurrency: GET workers assert an invariant score while a mutation
// worker rewrites unrelated edges and reloads swap generations — all under
// -race. HS(Tom, KDD | APC) is exactly 1 in every generation and under
// every mutation this test issues, so any mixed-version row or dropped
// normalization would surface as a wrong score.
func TestHotReloadUnderLoadWithMutations(t *testing.T) {
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "graph.json")
	writeGraphFile(t, graphPath, reloadGraph(t, 0))

	srv := New(reloadGraph(t, 0), WithReloadFrom(graphPath),
		WithWALPath(filepath.Join(dir, "edges.wal")), WithLogf(t.Logf))
	srv.MarkReady()
	if _, err := srv.OpenWAL(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Precompute("APC"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var (
		stop     atomic.Bool
		failures atomic.Int64
		served   atomic.Int64
		applied  atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				resp, err := http.Get(ts.URL + "/v1/pair?path=APC&source=Tom&target=KDD")
				if err != nil {
					failures.Add(1)
					continue
				}
				var pair pairBody
				decodeErr := json.NewDecoder(resp.Body).Decode(&pair)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decodeErr != nil {
					t.Errorf("pair under mutation = %d (%v)", resp.StatusCode, decodeErr)
					failures.Add(1)
					continue
				}
				if pair.Score != 1 {
					t.Errorf("HS(Tom,KDD|APC) = %v mid-mutation, want exactly 1", pair.Score)
					failures.Add(1)
				}
				served.Add(1)
			}
		}()
	}

	// The mutation worker touches only p2's author set — Tom's row of the
	// writes transition and KDD's column of published_in never change.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			ops := []hin.Op{upsert("writes", fmt.Sprintf("mut%d", i%7), "p2", float64(i%5+1))}
			body, _ := json.Marshal(mutateRequest{Key: fmt.Sprintf("load-%d", i), Ops: ops})
			resp, err := http.Post(ts.URL+"/v1/admin/edges", "application/json", bytes.NewReader(body))
			if err != nil {
				failures.Add(1)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				applied.Add(1)
			case http.StatusServiceUnavailable:
				// legitimate backpressure against the reload's compaction
			default:
				t.Errorf("mutation under load = %d", resp.StatusCode)
				failures.Add(1)
			}
		}
	}()

	// Reload cycles while both workers run; each reload first compacts the
	// log into the graph file, so the re-read picks up the mutations.
	for gen := 0; gen < 3; gen++ {
		time.Sleep(30 * time.Millisecond)
		if _, err := srv.Reload(context.Background()); err != nil {
			t.Fatalf("reload %d under mutation load: %v", gen, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d requests failed across mutating reloads", n, served.Load())
	}
	if served.Load() == 0 || applied.Load() == 0 {
		t.Fatalf("load proves nothing: served=%d applied=%d", served.Load(), applied.Load())
	}

	// Post-chaos sanity: the serving graph answers the invariant exactly.
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
	if pair.Score != 1 {
		t.Fatalf("final HS(Tom,KDD|APC) = %v, want 1", pair.Score)
	}
}
