package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"hetesim/internal/hin"
	"hetesim/internal/obs"
)

// scrapeMetrics fetches GET /metrics, validates every line against the
// Prometheus text exposition grammar, and returns the sample values keyed
// by "name{labels}" (or bare name for unlabeled metrics).
func scrapeMetrics(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type = %q, want text/plain", ct)
	}
	helpRe := regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe := regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*(?:\{[^}]*\})?) ([0-9eE.+-]+|NaN|\+Inf|-Inf)$`)
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP") {
			if !helpRe.MatchString(line) {
				t.Errorf("malformed HELP line: %q", line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE") {
			if !typeRe.MatchString(line) {
				t.Errorf("malformed TYPE line: %q", line)
			}
			continue
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			t.Errorf("unparseable sample value in %q: %v", line, err)
			continue
		}
		out[m[1]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("metrics scrape returned no samples")
	}
	return out
}

// TestMetricsEndToEnd drives pair, top-k, shed, and degraded queries
// against live httptest servers and asserts a /metrics scrape is valid
// exposition text whose counters moved accordingly. The registry is
// process-wide, so all assertions are on before/after deltas.
func TestMetricsEndToEnd(t *testing.T) {
	srv, ts := lifecycleServer(t, WithMaxInflight(1))
	before := scrapeMetrics(t, ts.URL)

	// One successful pair and one successful top-k query.
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
	var topk topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APC&source=Tom", http.StatusOK, &topk)

	// Fill the single in-flight slot, then shed a query with 429.
	started := make(chan struct{})
	release := make(chan struct{})
	srv.mux.HandleFunc("GET /v1/obsblock", func(w http.ResponseWriter, _ *http.Request) {
		close(started)
		<-release
		writeJSON(w, http.StatusOK, map[string]string{"status": "unblocked"})
	})
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		resp, err := http.Get(ts.URL + "/v1/obsblock")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	resp, err := http.Get(ts.URL + "/v1/pair?path=APC&source=Tom&target=KDD")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed query status = %d, want 429", resp.StatusCode)
	}
	close(release)
	<-blocked

	// A degraded query on a server whose exact-plan budget is already
	// spent when the handler runs.
	_, dts := lifecycleServer(t, WithQueryTimeout(time.Nanosecond), WithDegradedTopK(2000))
	var degraded topKBody
	getJSON(t, dts.URL+"/v1/topk?path=APC&source=Tom", http.StatusOK, &degraded)
	if !degraded.Approximate {
		t.Fatal("degraded query not marked approximate")
	}

	after := scrapeMetrics(t, ts.URL)
	delta := func(key string) float64 { return after[key] - before[key] }

	checks := []struct {
		key string
		min float64
	}{
		{`hetesim_http_requests_total{route="/v1/pair",status="200"}`, 1},
		{`hetesim_http_requests_total{route="/v1/topk",status="200"}`, 2},
		{`hetesim_http_requests_total{route="/v1/pair",status="429"}`, 1},
		{`hetesim_http_shed_total`, 1},
		{`hetesim_http_degraded_total`, 1},
		{`hetesim_http_request_duration_seconds_count`, 4},
		{`hetesim_engine_queries_total{kind="pair"}`, 1},
		{`hetesim_engine_queries_total{kind="topk"}`, 1},
		{`hetesim_engine_queries_total{kind="mc_single_source"}`, 1},
		{`hetesim_engine_cache_misses_total`, 1},
		{`hetesim_engine_mc_walks_total`, 2000},
		{`hetesim_sparse_vecmul_total`, 1},
		{`hetesim_sparse_vecmul_flops_total`, 1},
	}
	for _, c := range checks {
		if d := delta(c.key); d < c.min {
			t.Errorf("%s moved by %v, want >= %v", c.key, d, c.min)
		}
	}
	if _, ok := after["hetesim_http_inflight_queries"]; !ok {
		t.Error("inflight gauge missing from scrape")
	}
	// Histogram sum/count coherence for the request latency series.
	if after["hetesim_http_request_duration_seconds_count"] <
		before["hetesim_http_request_duration_seconds_count"] {
		t.Error("latency histogram count went backwards")
	}
	if after[`hetesim_http_request_duration_seconds_bucket{le="+Inf"}`] !=
		after["hetesim_http_request_duration_seconds_count"] {
		t.Error("latency histogram +Inf bucket disagrees with _count")
	}
}

// obsHeavyServer builds a dense bipartite graph whose chain multiplies
// take real wall time, so engine spans dominate a traced query.
func obsHeavyServer(t *testing.T, n int, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("a", 'A')
	s.MustAddType("b", 'B')
	s.MustAddRelation("r", "a", "b")
	b := hin.NewBuilder(s)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.AddWeightedEdge("r", fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j), float64(1+(i+j)%7))
		}
	}
	srv := New(b.MustBuild(), opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// zigzagSpec returns the (AB)^k A path over the bipartite schema.
func zigzagSpec(k int) string {
	return strings.Repeat("AB", k) + "A"
}

// TestTraceInlinePair asserts ?trace=1 returns a span breakdown covering
// at least 90% of the wall time of a multi-step pair query — the tracer
// acceptance bar: a slow query's time must be attributable to stages.
func TestTraceInlinePair(t *testing.T) {
	_, ts := obsHeavyServer(t, 150)
	path := zigzagSpec(20)
	url := ts.URL + "/v1/pair?path=" + path + "&source=a0&target=a1"
	// Warm the transition cache so the traced run measures chain
	// propagation rather than one-time matrix construction.
	getJSON(t, url, http.StatusOK, &pairBody{})

	var body pairBody
	getJSON(t, url+"&trace=1", http.StatusOK, &body)
	if body.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if body.Trace.TotalUS <= 0 {
		t.Fatalf("trace total = %v", body.Trace.TotalUS)
	}
	names := make(map[string]int)
	for _, sp := range body.Trace.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"decode", "plan_select", "chain_multiply", "normalize"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}
	// (AB)^20A splits into 20 steps per half-path.
	if names["chain_multiply"] < 40 {
		t.Errorf("trace has %d chain_multiply spans, want >= 40", names["chain_multiply"])
	}
	// Every chain_multiply span carries the matrix dims and output nnz.
	for _, sp := range body.Trace.Spans {
		if sp.Name != "chain_multiply" {
			continue
		}
		if sp.Attrs["nnz"] == "" || sp.Attrs["side"] == "" {
			t.Fatalf("chain_multiply span missing attrs: %+v", sp.Attrs)
		}
	}
	if body.Trace.Coverage < 0.9 {
		t.Errorf("trace coverage = %v, want >= 0.9 (spans: %v)", body.Trace.Coverage, names)
	}

	// Without ?trace=1 the response stays clean.
	var plain pairBody
	getJSON(t, url, http.StatusOK, &plain)
	if plain.Trace != nil {
		t.Error("untraced query returned a trace")
	}
}

// TestTraceInlineTopK asserts the top-k handler also reports its stages,
// including the cache_hit event once the right-half matrix is warm.
func TestTraceInlineTopK(t *testing.T) {
	_, ts := obsHeavyServer(t, 60)
	path := zigzagSpec(6)
	url := ts.URL + "/v1/topk?path=" + path + "&source=a0&k=3"
	getJSON(t, url, http.StatusOK, &topKBody{})

	var body topKBody
	getJSON(t, url+"&trace=1", http.StatusOK, &body)
	if body.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	names := make(map[string]int)
	for _, sp := range body.Trace.Spans {
		names[sp.Name]++
	}
	for _, want := range []string{"decode", "plan_select", "combine", "normalize", "rank"} {
		if names[want] == 0 {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}
	// The warm-up query materialized the right-half chain; the traced run
	// must observe the cache hit.
	if names["cache_hit"] == 0 {
		t.Errorf("warm top-k trace has no cache_hit event; got %v", names)
	}
}

// TestSlowLogCapturesSlowQuery runs queries against a server whose slow
// bar is effectively zero and checks /v1/slowlog retains them, newest
// first, with their stage traces attached.
func TestSlowLogCapturesSlowQuery(t *testing.T) {
	_, ts := obsHeavyServer(t, 60, WithSlowLog(time.Microsecond, 4))
	path := zigzagSpec(6)
	getJSON(t, ts.URL+"/v1/pair?path="+path+"&source=a0&target=a1", http.StatusOK, &pairBody{})
	getJSON(t, ts.URL+"/v1/topk?path="+path+"&source=a0&k=3", http.StatusOK, &topKBody{})

	var log struct {
		Enabled     bool            `json:"enabled"`
		ThresholdMS float64         `json:"threshold_ms"`
		Total       int             `json:"total"`
		Entries     []obs.SlowEntry `json:"entries"`
	}
	getJSON(t, ts.URL+"/v1/slowlog", http.StatusOK, &log)
	if !log.Enabled {
		t.Fatal("slowlog reports disabled")
	}
	if log.Total < 2 || len(log.Entries) < 2 {
		t.Fatalf("slowlog total = %d, entries = %d, want >= 2", log.Total, len(log.Entries))
	}
	// Newest first: the topk query landed after the pair query.
	if !strings.Contains(log.Entries[0].Query, "/v1/topk") {
		t.Errorf("newest entry = %q, want the /v1/topk query", log.Entries[0].Query)
	}
	for _, e := range log.Entries {
		if e.Status != http.StatusOK {
			t.Errorf("entry %q status = %d", e.Query, e.Status)
		}
		if e.DurationMS <= 0 {
			t.Errorf("entry %q duration = %v", e.Query, e.DurationMS)
		}
		if e.Trace == nil || len(e.Trace.Spans) == 0 {
			t.Errorf("entry %q has no trace spans", e.Query)
		}
	}
	// The ring is bounded at its configured capacity.
	for i := 0; i < 8; i++ {
		getJSON(t, ts.URL+"/v1/pair?path="+path+"&source=a0&target=a1", http.StatusOK, &pairBody{})
	}
	getJSON(t, ts.URL+"/v1/slowlog", http.StatusOK, &log)
	if len(log.Entries) > 4 {
		t.Errorf("slowlog holds %d entries, capacity is 4", len(log.Entries))
	}
	if log.Total < 10 {
		t.Errorf("slowlog total = %d, want >= 10 admitted", log.Total)
	}
}

// TestSlowLogDisabled checks threshold 0 turns the log off and the
// endpoint still answers.
func TestSlowLogDisabled(t *testing.T) {
	_, ts := lifecycleServer(t, WithSlowLog(0, 0))
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pairBody{})
	var log map[string]json.RawMessage
	getJSON(t, ts.URL+"/v1/slowlog", http.StatusOK, &log)
	var enabled bool
	if err := json.Unmarshal(log["enabled"], &enabled); err != nil || enabled {
		t.Errorf("slowlog enabled = %v (err %v), want false", enabled, err)
	}
}
