package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hetesim/internal/hin"
)

// planTestServer is testServer plus a Monte Carlo degrade budget, so the
// monte-carlo plan is a legal forced choice.
func planTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	srv := New(b.MustBuild(), opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// Forcing each exact plan through ?plan= must return the same score the
// automatic plan picks, and the response must report what ran.
func TestPlanOverrideExactKindsAgree(t *testing.T) {
	_, ts := testServer(t)
	var auto pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &auto)
	if auto.Plan == nil {
		t.Fatal("auto pair response has no plan info")
	}
	if auto.Plan.Forced {
		t.Errorf("auto plan reported forced: %+v", auto.Plan)
	}
	for _, kind := range []string{"pair-vectors", "single-vs-matrix", "all-pairs"} {
		var body pairBody
		getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&plan="+kind, http.StatusOK, &body)
		if body.Score != auto.Score {
			t.Errorf("plan=%s score = %v, auto = %v (must be identical)", kind, body.Score, auto.Score)
		}
		if body.Plan == nil || body.Plan.Kind != kind || !body.Plan.Forced {
			t.Errorf("plan=%s response plan = %+v", kind, body.Plan)
		}
		if body.Approximate {
			t.Errorf("plan=%s reported approximate", kind)
		}
	}
}

func TestPlanOverrideTopK(t *testing.T) {
	_, ts := testServer(t)
	var auto topKBody
	getJSON(t, ts.URL+"/v1/topk?path=APC&source=Mary&k=2", http.StatusOK, &auto)
	if auto.Plan == nil {
		t.Fatal("auto topk response has no plan info")
	}
	for _, kind := range []string{"single-vs-matrix", "all-pairs"} {
		var body topKBody
		getJSON(t, ts.URL+"/v1/topk?path=APC&source=Mary&k=2&plan="+kind, http.StatusOK, &body)
		if body.Plan == nil || body.Plan.Kind != kind || !body.Plan.Forced {
			t.Fatalf("plan=%s topk plan = %+v", kind, body.Plan)
		}
		if len(body.Results) != len(auto.Results) {
			t.Fatalf("plan=%s results = %+v, auto = %+v", kind, body.Results, auto.Results)
		}
		for i := range body.Results {
			if body.Results[i] != auto.Results[i] {
				t.Errorf("plan=%s result[%d] = %+v, auto = %+v", kind, i, body.Results[i], auto.Results[i])
			}
		}
	}
}

func TestPlanOverrideErrors(t *testing.T) {
	_, ts := testServer(t)
	var e errorBody
	// Unknown plan name.
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&plan=nonsense", http.StatusBadRequest, &e)
	// Plan override only applies to hetesim.
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&measure=pcrw&plan=all-pairs", http.StatusBadRequest, &e)
	// pair-vectors produces a single score, not a ranking.
	getJSON(t, ts.URL+"/v1/topk?path=APC&source=Mary&k=2&plan=pair-vectors", http.StatusBadRequest, &e)
	// Monte Carlo needs a walk budget; the default server has none.
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&plan=monte-carlo", http.StatusBadRequest, &e)
}

func TestPlanForcedMonteCarlo(t *testing.T) {
	_, ts := planTestServer(t, WithDegradedTopK(4000))
	var body pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&plan=monte-carlo", http.StatusOK, &body)
	if body.Plan == nil || body.Plan.Kind != "monte-carlo" || !body.Plan.Forced {
		t.Fatalf("plan = %+v", body.Plan)
	}
	if !body.Approximate {
		t.Error("forced monte-carlo should report approximate")
	}
	// HeteSim(Tom, KDD | APC) = 1 exactly; sampling keeps it near 1.
	if body.Score < 0.8 || body.Score > 1.2 {
		t.Errorf("monte-carlo score = %v, want near 1", body.Score)
	}
}

func TestDefaultPlanOption(t *testing.T) {
	_, ts := planTestServer(t, WithDefaultPlan("all-pairs"))
	var body pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &body)
	if body.Plan == nil || body.Plan.Kind != "all-pairs" || !body.Plan.Forced {
		t.Fatalf("plan = %+v, want forced all-pairs via server default", body.Plan)
	}
	// An explicit ?plan= still wins over the server default.
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&plan=pair-vectors", http.StatusOK, &body)
	if body.Plan == nil || body.Plan.Kind != "pair-vectors" {
		t.Fatalf("plan = %+v, want pair-vectors override", body.Plan)
	}
}

func TestStatsReportsPlanSelections(t *testing.T) {
	_, ts := testServer(t)
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&plan=all-pairs", http.StatusOK, &pair)
	var stats struct {
		Plans map[string]uint64 `json:"plans"`
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Plans == nil {
		t.Fatal("stats has no plans map")
	}
	var total uint64
	for _, v := range stats.Plans {
		total += v
	}
	if total < 2 {
		t.Errorf("plan selections = %v, want at least 2 total", stats.Plans)
	}
	if stats.Plans["all-pairs"] < 1 {
		t.Errorf("plans[all-pairs] = %v, want >= 1 after forced query", stats.Plans)
	}
}

func TestTracePlanSelectAttrs(t *testing.T) {
	_, ts := testServer(t)
	var body pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD&plan=all-pairs&trace=1", http.StatusOK, &body)
	if body.Trace == nil {
		t.Fatal("no trace in response")
	}
	found := false
	for _, sp := range body.Trace.Spans {
		if sp.Name != "plan_select" {
			continue
		}
		found = true
		if sp.Attrs["kind"] != "all-pairs" {
			t.Errorf("plan_select kind = %q, want all-pairs", sp.Attrs["kind"])
		}
		if sp.Attrs["est_flops"] == "" {
			t.Errorf("plan_select span missing est_flops: %+v", sp.Attrs)
		}
		if sp.Attrs["forced"] != "true" {
			t.Errorf("plan_select forced = %q, want true", sp.Attrs["forced"])
		}
	}
	if !found {
		t.Fatalf("no plan_select span in trace: %+v", body.Trace.Spans)
	}
}

func TestBatchPlanUnaffected(t *testing.T) {
	// The batch endpoint schedules its own path groups; a sanity query
	// confirms the optimizer refactor did not change batch scoring.
	_, ts := testServer(t)
	var pair pairBody
	getJSON(t, ts.URL+"/v1/pair?path=APC&source=Tom&target=KDD", http.StatusOK, &pair)
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json",
		strings.NewReader(`{"queries":[{"kind":"pair","path":"APC","source":"Tom","target":"KDD"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var out struct {
		Results []struct {
			Score *float64 `json:"score"`
			Error string   `json:"error"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Score == nil || *out.Results[0].Score != pair.Score {
		t.Fatalf("batch = %+v, pair score = %v", out, pair.Score)
	}
}
