package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"hetesim/internal/obs"
	"hetesim/internal/relevance"
)

// POST /v1/relevance: relevance with no path given. The handler enumerates
// every schema-valid meta path between the endpoint types (bounded by the
// server's relevance limits), scores all of them through the batch
// scheduler — singleton per-path groups still share common half-chain
// prefixes — and combines the per-path scores into one weighted ensemble.
// With a target it answers a pair query; with only a target type it ranks
// the k most relevant nodes of that type. Failure is per path: a path that
// blows its deadline degrades to Monte Carlo (when enabled) or is excluded
// and flagged, never failing the whole answer.

type relevanceRequest struct {
	Source     string   `json:"source"`
	SourceType string   `json:"source_type"`
	Target     string   `json:"target,omitempty"`
	TargetType string   `json:"target_type,omitempty"`
	K          int      `json:"k,omitempty"`
	MaxLen     int      `json:"max_len,omitempty"`
	MaxPaths   int      `json:"max_paths,omitempty"`
	Weighting  string   `json:"weighting,omitempty"`
	Paths      []string `json:"paths,omitempty"`
	Raw        bool     `json:"raw,omitempty"`
}

type relevancePathBody struct {
	Path        string  `json:"path"`
	Weight      float64 `json:"weight"`
	Score       float64 `json:"score"`
	Plan        string  `json:"plan,omitempty"`
	Approximate bool    `json:"approximate,omitempty"`
	Error       string  `json:"error,omitempty"`
	Code        string  `json:"code,omitempty"`
}

type relevanceStatsBody struct {
	Paths         int     `json:"paths"`
	SharedQueries int     `json:"shared_queries"`
	ChainBuilds   int     `json:"chain_builds"`
	RowSteps      int     `json:"row_steps"`
	NaiveRowSteps int     `json:"naive_row_steps"`
	PrefixResumes int     `json:"prefix_resumes"`
	DurationMS    float64 `json:"duration_ms"`
}

type relevanceResponse struct {
	Mode        string              `json:"mode"` // "pair" or "topk"
	Source      string              `json:"source"`
	Target      string              `json:"target,omitempty"`
	Score       *float64            `json:"score,omitempty"` // pair mode
	Results     []hitBody           `json:"results,omitempty"`
	Paths       []relevancePathBody `json:"paths"`
	Weighting   string              `json:"weighting"`
	Partial     bool                `json:"partial,omitempty"`
	Approximate bool                `json:"approximate,omitempty"`
	Stats       relevanceStatsBody  `json:"stats"`
	Trace       *obs.Report         `json:"trace,omitempty"`
}

func (s *Server) handleRelevance(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	ctx := r.Context()
	es := s.current()
	tr := obs.FromContext(ctx)

	sp := tr.Start("decode")
	var req relevanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		sp.End()
		writeError(w, fmt.Errorf("%w: %v", errBadRequest, err))
		return
	}
	opts, src, mode, err := s.decodeRelevance(es, &req)
	sp.End()
	if err != nil {
		writeError(w, err)
		return
	}

	eng := es.engine
	if req.Raw {
		eng = es.raw
	}
	var (
		res    *relevance.Result
		ranked []relevance.Ranked
	)
	if mode == "pair" {
		dst, derr := es.g.NodeIndex(req.TargetType, req.Target)
		if derr != nil {
			writeError(w, derr)
			return
		}
		res, err = relevance.Pair(ctx, eng, req.SourceType, src, req.TargetType, dst, opts)
	} else {
		res, ranked, err = relevance.TopK(ctx, eng, req.SourceType, src, req.TargetType, req.K, opts)
	}
	if err != nil {
		writeError(w, err)
		return
	}

	body := relevanceResponse{
		Mode:        mode,
		Source:      req.Source,
		Target:      req.Target,
		Weighting:   opts.Weighting,
		Partial:     res.Partial,
		Approximate: res.Approximate,
		Paths:       make([]relevancePathBody, len(res.Paths)),
		Stats: relevanceStatsBody{
			Paths:         len(res.Paths),
			SharedQueries: res.Stats.SharedQueries,
			ChainBuilds:   res.Stats.ChainBuilds,
			RowSteps:      res.Stats.RowSteps,
			NaiveRowSteps: res.Stats.NaiveRowSteps,
			PrefixResumes: res.Stats.PrefixResumes,
			DurationMS:    float64(time.Since(start)) / float64(time.Millisecond),
		},
	}
	for i, ps := range res.Paths {
		body.Paths[i] = relevancePathBody{
			Path: ps.Path, Weight: ps.Weight, Score: ps.Score,
			Plan: ps.Plan, Approximate: ps.Approximate, Error: ps.Err,
		}
		if ps.Err != "" {
			body.Paths[i].Code = "path_failed"
		}
	}
	if mode == "pair" {
		score := res.Score
		body.Score = &score
	} else {
		body.Results = make([]hitBody, 0, len(ranked))
		for _, hit := range ranked {
			body.Results = append(body.Results, hitBody{ID: hit.ID, Score: hit.Score})
		}
	}
	if wantTrace(r) {
		body.Trace = tr.Report(tr.Elapsed())
	}
	writeJSON(w, http.StatusOK, body)
}

// decodeRelevance validates the request against the server's relevance
// limits and resolves the source node and query mode.
func (s *Server) decodeRelevance(es *engineSet, req *relevanceRequest) (relevance.Options, int, string, error) {
	var o relevance.Options
	if req.Source == "" || req.SourceType == "" {
		return o, 0, "", fmt.Errorf("%w: source and source_type are required", errBadRequest)
	}
	if req.TargetType == "" {
		return o, 0, "", fmt.Errorf("%w: target_type is required (with target for a pair query, alone for top-k)", errBadRequest)
	}
	if !es.g.Schema().HasType(req.SourceType) || !es.g.Schema().HasType(req.TargetType) {
		return o, 0, "", fmt.Errorf("%w: unknown node type", errBadRequest)
	}
	maxLen, maxPaths := s.relevanceMaxLen, s.relevanceMaxPaths
	if req.MaxLen > maxLen {
		return o, 0, "", fmt.Errorf("%w: max_len %d exceeds limit %d", errBadRequest, req.MaxLen, maxLen)
	}
	if req.MaxPaths > maxPaths {
		return o, 0, "", fmt.Errorf("%w: max_paths %d exceeds limit %d", errBadRequest, req.MaxPaths, maxPaths)
	}
	if req.MaxLen > 0 {
		maxLen = req.MaxLen
	}
	if req.MaxPaths > 0 {
		maxPaths = req.MaxPaths
	}
	if len(req.Paths) > maxPaths {
		return o, 0, "", fmt.Errorf("%w: %d explicit paths exceed limit %d", errBadRequest, len(req.Paths), maxPaths)
	}
	o = relevance.Options{
		MaxLen:         maxLen,
		MaxPaths:       maxPaths,
		Paths:          req.Paths,
		Weighting:      req.Weighting,
		Learned:        s.pathWeights,
		Workers:        s.batchWorkers,
		PerPathTimeout: s.queryTimeout,
		DegradeWalks:   s.degradeWalks,
		DegradeGrace:   s.degradeGrace,
	}
	if o.Weighting == "" {
		o.Weighting = relevance.WeightUniform
	}
	src, err := es.g.NodeIndex(req.SourceType, req.Source)
	if err != nil {
		return o, 0, "", err
	}
	mode := "topk"
	if req.Target != "" {
		mode = "pair"
	} else {
		if req.K == 0 {
			req.K = 10
		}
		if req.K < 0 {
			return o, 0, "", fmt.Errorf("%w: k=%d", errBadRequest, req.K)
		}
	}
	return o, src, mode, nil
}
