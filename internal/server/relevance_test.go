package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hetesim/internal/hin"
)

// relevanceTestServer is testServer with custom options and enough authors
// that the batch side planner propagates two-row subsets instead of
// materializing whole chains (a full build on a two-author graph costs
// exactly what independent preparation would, hiding the sharing).
func relevanceTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	s := hin.NewSchema()
	s.MustAddType("author", 'A')
	s.MustAddType("paper", 'P')
	s.MustAddType("conference", 'C')
	s.MustAddRelation("writes", "author", "paper")
	s.MustAddRelation("published_in", "paper", "conference")
	b := hin.NewBuilder(s)
	b.AddEdge("writes", "Tom", "p1")
	b.AddEdge("writes", "Tom", "p2")
	b.AddEdge("writes", "Mary", "p2")
	b.AddEdge("writes", "Mary", "p3")
	b.AddEdge("published_in", "p1", "KDD")
	b.AddEdge("published_in", "p2", "KDD")
	b.AddEdge("published_in", "p3", "SIGMOD")
	for i := 0; i < 4; i++ {
		a, p := "a"+string(rune('0'+i)), "q"+string(rune('0'+i))
		b.AddEdge("writes", a, p)
		b.AddEdge("published_in", p, "ICDE")
	}
	srv := New(b.MustBuild(), opts...)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestRelevanceAutoPair(t *testing.T) {
	_, ts := relevanceTestServer(t)
	var body relevanceResponse
	postJSON(t, ts.URL+"/v1/relevance", map[string]any{
		"source": "Tom", "source_type": "author",
		"target": "Mary", "target_type": "author",
	}, http.StatusOK, &body)
	if body.Mode != "pair" || body.Score == nil {
		t.Fatalf("response = %+v", body)
	}
	if body.Partial || body.Approximate {
		t.Fatalf("unexpected partial/approximate: %+v", body)
	}
	// author→author within length 4: APA and APCPA share the "writes"
	// prefix, so even singleton per-path groups must share chain work.
	specs := map[string]bool{}
	var sum float64
	for _, ps := range body.Paths {
		specs[ps.Path] = true
		sum += ps.Weight * ps.Score
	}
	if !specs["APA"] || !specs["APCPA"] {
		t.Fatalf("paths = %+v, want APA and APCPA enumerated", body.Paths)
	}
	if math.Abs(*body.Score-sum) > 1e-15 {
		t.Errorf("ensemble %v != weighted contribution sum %v", *body.Score, sum)
	}
	if *body.Score <= 0 {
		t.Errorf("HeteSim ensemble (Tom, Mary) = %v, want > 0 (they share p2)", *body.Score)
	}
	if body.Stats.SharedQueries == 0 {
		t.Error("no shared queries — cross-group half-chain sharing broken")
	}
	if body.Stats.RowSteps >= body.Stats.NaiveRowSteps {
		t.Errorf("row steps %d not below naive %d — no amortization across paths",
			body.Stats.RowSteps, body.Stats.NaiveRowSteps)
	}
	if body.Stats.PrefixResumes == 0 {
		t.Error("no prefix resumes — APCPA should resume from APA's half-chain")
	}
}

func TestRelevanceAutoTopK(t *testing.T) {
	_, ts := testServer(t)
	var body relevanceResponse
	postJSON(t, ts.URL+"/v1/relevance", map[string]any{
		"source": "Tom", "source_type": "author",
		"target_type": "conference", "k": 2,
	}, http.StatusOK, &body)
	if body.Mode != "topk" || body.Score != nil {
		t.Fatalf("response = %+v", body)
	}
	if len(body.Results) == 0 {
		t.Fatal("no ranked results")
	}
	// Tom wrote p1 and p2, both at KDD; KDD must rank first.
	if body.Results[0].ID != "KDD" {
		t.Errorf("top conference = %q, want KDD", body.Results[0].ID)
	}
	for i := 1; i < len(body.Results); i++ {
		if body.Results[i].Score > body.Results[i-1].Score {
			t.Errorf("results not sorted at %d", i)
		}
	}
}

func TestRelevanceExplicitPathsAndTrace(t *testing.T) {
	_, ts := testServer(t)
	var body relevanceResponse
	postJSON(t, ts.URL+"/v1/relevance?trace=1", map[string]any{
		"source": "Tom", "source_type": "author",
		"target": "Mary", "target_type": "author",
		"paths": []string{"APA", "APCPA"},
	}, http.StatusOK, &body)
	if len(body.Paths) != 2 {
		t.Fatalf("paths = %+v", body.Paths)
	}
	if body.Trace == nil {
		t.Fatal("no trace")
	}
	want := map[string]bool{
		"decode": false, "enumerate": false, "score_paths": false,
		"combine": false, "batch_plan": false, "batch_materialize": false,
	}
	for _, sp := range body.Trace.Spans {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("trace misses span %q", name)
		}
	}
}

func TestRelevanceValidation(t *testing.T) {
	_, ts := testServer(t)
	bad := []map[string]any{
		{"source_type": "author", "target_type": "author", "target": "Mary"}, // no source
		{"source": "Tom", "target_type": "author", "target": "Mary"},         // no source_type
		{"source": "Tom", "source_type": "author"},                           // no target_type
		{"source": "Tom", "source_type": "author", "target_type": "author", "max_len": 99},
		{"source": "Tom", "source_type": "author", "target_type": "author", "max_paths": 999},
		{"source": "Tom", "source_type": "author", "target_type": "author", "k": -1},
		{"source": "Tom", "source_type": "author", "target_type": "author", "weighting": "bogus"},
		{"source": "Tom", "source_type": "author", "target_type": "author", "weighting": "learned"}, // no weights configured
		{"source": "Tom", "source_type": "wizard", "target_type": "author"},
		{"source": "Tom", "source_type": "author", "target_type": "author",
			"paths": []string{"APC"}}, // wrong endpoints
	}
	for i, req := range bad {
		postJSON(t, ts.URL+"/v1/relevance", req, http.StatusBadRequest, nil)
		_ = i
	}
	// Unknown source node is 404, not 400.
	postJSON(t, ts.URL+"/v1/relevance", map[string]any{
		"source": "Nobody", "source_type": "author", "target_type": "author", "target": "Mary",
	}, http.StatusNotFound, nil)
	// No path between the types within the cap: paper→paper needs length 2,
	// which exists (PAP/PCP), but term-less schema has no author→author path
	// of length 1 — force it with max_len 1.
	postJSON(t, ts.URL+"/v1/relevance", map[string]any{
		"source": "Tom", "source_type": "author", "target_type": "author", "target": "Mary", "max_len": 1,
	}, http.StatusBadRequest, nil)
}

func TestRelevanceLearnedWeights(t *testing.T) {
	_, ts := relevanceTestServer(t, WithPathWeights(map[string]float64{"APA": 0.75, "APCPA": 0.25}))
	var body relevanceResponse
	postJSON(t, ts.URL+"/v1/relevance", map[string]any{
		"source": "Tom", "source_type": "author",
		"target": "Mary", "target_type": "author",
		"weighting": "learned",
	}, http.StatusOK, &body)
	if body.Weighting != "learned" {
		t.Fatalf("weighting = %q", body.Weighting)
	}
	for _, ps := range body.Paths {
		switch ps.Path {
		case "APA":
			if ps.Weight != 0.75 {
				t.Errorf("APA weight = %v", ps.Weight)
			}
		case "APCPA":
			if ps.Weight != 0.25 {
				t.Errorf("APCPA weight = %v", ps.Weight)
			}
		default:
			t.Errorf("unexpected path %s in learned ensemble", ps.Path)
		}
	}
}

// TestRelevancePartialPathFailure: per-path deadlines small enough to kill
// exact scoring produce a 200 partial answer (every path flagged), and with
// Monte Carlo degradation enabled the same request answers approximately.
func TestRelevancePartialPathFailure(t *testing.T) {
	_, ts := relevanceTestServer(t, WithQueryTimeout(time.Nanosecond))
	var body relevanceResponse
	postJSON(t, ts.URL+"/v1/relevance", map[string]any{
		"source": "Tom", "source_type": "author",
		"target": "Mary", "target_type": "author",
	}, http.StatusOK, &body)
	if !body.Partial {
		t.Fatalf("response = %+v, want partial", body)
	}
	for _, ps := range body.Paths {
		if ps.Error == "" || ps.Code != "path_failed" {
			t.Errorf("path %s = %+v, want flagged failure", ps.Path, ps)
		}
	}

	_, ts2 := relevanceTestServer(t, WithQueryTimeout(time.Nanosecond), WithDegradedTopK(64))
	var deg relevanceResponse
	postJSON(t, ts2.URL+"/v1/relevance", map[string]any{
		"source": "Tom", "source_type": "author",
		"target": "Mary", "target_type": "author",
	}, http.StatusOK, &deg)
	if !deg.Approximate || deg.Partial {
		t.Fatalf("degraded response = %+v, want approximate and complete", deg)
	}
	for _, ps := range deg.Paths {
		if ps.Plan != "monte_carlo" || !ps.Approximate {
			t.Errorf("path %s = %+v, want monte_carlo plan", ps.Path, ps)
		}
	}
}

func TestRelevanceStatsOptions(t *testing.T) {
	_, ts := relevanceTestServer(t, WithRelevanceLimits(6, 32))
	var stats struct {
		Options map[string]any `json:"options"`
	}
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &stats)
	if stats.Options["relevance_max_len"] != 6.0 || stats.Options["relevance_max_paths"] != 32.0 {
		t.Errorf("options = %v", stats.Options)
	}
}
