package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"time"

	"hetesim/internal/baseline"
	"hetesim/internal/core"
	"hetesim/internal/hin"
	"hetesim/internal/obs"
	"hetesim/internal/snapshot"
)

// Durability and reload observability: the snapshot lifecycle (loads,
// saves, rejected files) and the hot-reload lifecycle (swaps, failures,
// whether the current process warm-started) in the process-wide registry.
var (
	metSnapshotLoads = obs.Default().Counter("hetesim_snapshot_load_total",
		"Snapshots loaded and admitted at boot or reload.")
	metSnapshotSaves = obs.Default().Counter("hetesim_snapshot_save_total",
		"Snapshots written crash-safely to disk.")
	metSnapshotCorrupt = obs.Default().Counter("hetesim_snapshot_corrupt_total",
		"Snapshots rejected by checksum, version, or fingerprint validation.")
	metReloads = obs.Default().Counter("hetesim_reload_total",
		"Successful atomic graph hot-reloads.")
	metReloadErrors = obs.Default().Counter("hetesim_reload_errors_total",
		"Hot-reloads that failed validation and left the old graph serving.")
	metWarmStart = obs.Default().Gauge("hetesim_warm_start",
		"1 when the serving engine was warm-started from a snapshot, else 0.")
)

// ReadyState is the server's readiness lifecycle, exposed at /readyz.
type ReadyState int32

const (
	// StateCold: constructed, no warmup started; not ready for traffic.
	StateCold ReadyState = iota
	// StateWarming: background materialization running; not ready.
	StateWarming
	// StateReady: serving normally.
	StateReady
	// StateReloading: serving from the old graph while a replacement is
	// validated off to the side; still ready for traffic.
	StateReloading
	// StateReplaying: boot-time write-ahead-log replay running; the graph
	// is still catching up to its last acked mutation, so not ready.
	StateReplaying
)

func (s ReadyState) String() string {
	switch s {
	case StateCold:
		return "cold"
	case StateWarming:
		return "warming"
	case StateReady:
		return "ready"
	case StateReloading:
		return "reloading"
	case StateReplaying:
		return "replaying"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// engineSet bundles everything derived from one graph: the graph itself,
// its fingerprint, and every query engine over it. A request resolves the
// current set once and uses it throughout, so an atomic swap of the set
// pointer hot-reloads the graph while in-flight queries drain against the
// set they started with.
type engineSet struct {
	g           *hin.Graph
	fingerprint uint64
	engine      *core.Engine // normalized HeteSim (Definition 10)
	raw         *core.Engine // unnormalized (Definition 3), for ?raw=1
	pcrw        *baseline.PCRW
	pathsim     *baseline.PathSim
}

func (s *Server) newEngineSet(g *hin.Graph) *engineSet {
	e := core.NewEngine(g, s.engineOpts...)
	return &engineSet{
		g:           g,
		fingerprint: g.Fingerprint(),
		engine:      e,
		raw:         core.NewEngine(g, append(append([]core.Option(nil), s.engineOpts...), core.WithNormalization(false))...),
		pcrw:        baseline.NewPCRWFromEngine(e),
		pathsim:     baseline.NewPathSim(g),
	}
}

// hetesim picks the engine matching a query's normalization.
func (es *engineSet) hetesim(raw bool) *core.Engine {
	if raw {
		return es.raw
	}
	return es.engine
}

// current returns the engine set serving new requests. Handlers call it
// once per request and thread the result, never re-resolving mid-query.
func (s *Server) current() *engineSet { return s.cur.Load() }

// Graph returns the currently served graph (primarily for tests and the
// daemon's logging).
func (s *Server) Graph() *hin.Graph { return s.current().g }

// State returns the server's readiness lifecycle state.
func (s *Server) State() ReadyState { return ReadyState(s.state.Load()) }

func (s *Server) setState(st ReadyState) { s.state.Store(int32(st)) }

// MarkReady flips the server to StateReady. The daemon calls it (directly
// or via PrecomputeBackground) once boot-time warmup is complete.
func (s *Server) MarkReady() { s.setState(StateReady) }

// Ready reports whether the server should receive traffic: ready, or
// reloading (the old graph keeps serving during a reload).
func (s *Server) Ready() bool {
	st := s.State()
	return st == StateReady || st == StateReloading
}

// WarmStart loads the configured snapshot into the current engine set. It
// returns true when the engines were warmed; a missing snapshot file is a
// normal cold start (false, nil). A snapshot that fails checksum, version,
// fingerprint, or option validation is rejected with a reason, counted in
// hetesim_snapshot_corrupt_total, and never served (false, error).
func (s *Server) WarmStart() (bool, error) {
	if s.snapshotPath == "" {
		return false, nil
	}
	n, err := s.warmInto(s.current())
	if err != nil {
		return false, err
	}
	if n > 0 {
		metWarmStart.Set(1)
	}
	return n > 0, nil
}

// warmInto validates the snapshot against es's graph and imports its chain
// matrices into both engines, returning how many chains were admitted.
func (s *Server) warmInto(es *engineSet) (int, error) {
	snap, err := snapshot.Load(s.fsys, s.snapshotPath)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil // cold start, not a failure
		}
		metSnapshotCorrupt.Inc()
		return 0, err
	}
	if err := snap.CheckCompat(es.fingerprint, es.engine.PruneEps()); err != nil {
		metSnapshotCorrupt.Inc()
		return 0, err
	}
	chains, err := snapshot.DecodeChains(snap)
	if err != nil {
		metSnapshotCorrupt.Inc()
		return 0, err
	}
	n := es.engine.ImportChains(chains)
	es.raw.ImportChains(chains)
	// Embeddings ride along when present (format version 2+); a corrupt
	// embedding section rejects the snapshot like a corrupt chain would,
	// but an old snapshot without any simply warms no embeddings — they
	// are a cache and rebuild lazily.
	embeds, err := snapshot.DecodeEmbeddings(snap)
	if err != nil {
		metSnapshotCorrupt.Inc()
		return 0, err
	}
	es.engine.ImportEmbeddings(embeds)
	es.raw.ImportEmbeddings(embeds)
	metSnapshotLoads.Inc()
	if n > 0 {
		s.snapSavedAt.Store(time.Now().UnixNano())
	}
	return n, nil
}

// SaveSnapshot writes the current engines' materialized chain matrices
// crash-safely to the configured snapshot path. Concurrent calls (periodic
// saver, shutdown, post-precompute) serialize; the previous snapshot
// survives any failure.
func (s *Server) SaveSnapshot() error {
	if s.snapshotPath == "" {
		return errors.New("server: no snapshot path configured")
	}
	s.saveMu.Lock()
	defer s.saveMu.Unlock()
	es := s.current()
	chains := es.engine.ExportChains()
	for k, m := range es.raw.ExportChains() {
		if _, ok := chains[k]; !ok {
			chains[k] = m
		}
	}
	snap := &snapshot.Snapshot{
		Fingerprint: es.fingerprint,
		PruneEps:    es.engine.PruneEps(),
	}
	if err := snapshot.EncodeChains(snap, chains); err != nil {
		return err
	}
	embeds := es.engine.ExportEmbeddings()
	for k, em := range es.raw.ExportEmbeddings() {
		if _, ok := embeds[k]; !ok {
			embeds[k] = em
		}
	}
	if err := snapshot.EncodeEmbeddings(snap, embeds); err != nil {
		return err
	}
	if err := snapshot.Save(s.fsys, s.snapshotPath, snap); err != nil {
		return err
	}
	metSnapshotSaves.Inc()
	s.snapSavedAt.Store(time.Now().UnixNano())
	return nil
}

// RunSnapshotSaver persists the chain cache every interval until ctx is
// canceled, so a crash costs at most one interval of materialization work.
// Each tick's save gets a few bounded, jitter-backed retries (counted in
// hetesim_snapshot_save_retries_total); a tick that still fails is logged
// and retried next tick — the previous snapshot stays intact throughout.
func (s *Server) RunSnapshotSaver(ctx context.Context, interval time.Duration, logf func(string, ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !s.Ready() {
				continue
			}
			if err := s.saveSnapshotRetry(ctx, 3, 100*time.Millisecond, logf); err != nil {
				logf("server: periodic snapshot save: %v", err)
			}
		}
	}
}

// ReloadResult summarizes a successful hot-reload.
type ReloadResult struct {
	Nodes       int           `json:"nodes"`
	Edges       int           `json:"edges"`
	WarmChains  int           `json:"warm_chains"` // chains restored from the snapshot
	Fingerprint string        `json:"fingerprint"`
	Duration    time.Duration `json:"-"`
	DurationMS  float64       `json:"duration_ms"`
}

// errReloadBusy reports a reload attempted while another is in flight.
var errReloadBusy = errors.New("server: reload already in progress")

// Reload atomically replaces the served graph: it re-reads the configured
// graph file, builds and fully validates a fresh engine set off to the
// side (including a snapshot warm start when the snapshot still matches),
// then swaps the engine-set pointer. In-flight queries finish against the
// set they started with; new requests see the new graph. Any failure
// leaves the old set serving untouched.
func (s *Server) Reload(ctx context.Context) (*ReloadResult, error) {
	if s.graphPath == "" {
		return nil, errors.New("server: no reload graph source configured")
	}
	if s.Draining() {
		return nil, errDraining
	}
	if !s.reloadMu.TryLock() {
		return nil, errReloadBusy
	}
	defer s.reloadMu.Unlock()

	prev := s.State()
	if prev == StateReady {
		s.setState(StateReloading)
		defer func() { s.setState(StateReady) }()
	}

	start := time.Now()
	res, err := s.reloadLocked(ctx)
	if err != nil {
		metReloadErrors.Inc()
		return nil, err
	}
	res.Duration = time.Since(start)
	res.DurationMS = float64(res.Duration) / float64(time.Millisecond)
	metReloads.Inc()
	return res, nil
}

func (s *Server) reloadLocked(ctx context.Context) (*ReloadResult, error) {
	// Mutations append to the log and swap s.cur under walMu; the reload
	// holds the same lock across its whole read-build-swap window so a
	// batch acked mid-reload can neither be clobbered from the serving
	// graph nor silently undo the reload. Concurrent mutation batches are
	// shed with 503 + Retry-After for the duration. With mutations
	// enabled, the graph file on disk may trail the served graph by the
	// log's batches: fold the log into a fresh base first, so the re-read
	// below starts from the acked state instead of dropping logged
	// mutations.
	if s.walPath != "" {
		s.walMu.Lock()
		defer s.walMu.Unlock()
		if err := s.compactLocked(); err != nil {
			return nil, err
		}
	}
	f, err := os.Open(s.graphPath)
	if err != nil {
		return nil, fmt.Errorf("server: reload: %w", err)
	}
	g, err := hin.Read(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("server: reload: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	next := s.newEngineSet(g)
	warm := 0
	if s.snapshotPath != "" {
		// A snapshot for a different graph generation simply fails the
		// fingerprint check: the reload proceeds cold rather than failing.
		if n, werr := s.warmInto(next); werr == nil {
			warm = n
		}
	}
	if warm > 0 {
		metWarmStart.Set(1)
	} else {
		metWarmStart.Set(0)
	}

	// Rebind the open log before serving the new generation: a reload that
	// adopts a different graph (an operator-placed replacement) would
	// otherwise leave the log's header naming the old base, and every
	// batch acked afterwards would be set aside — never replayed — at the
	// next boot. Reset rebinding fails the reload whole, leaving old
	// graph and old log consistent; the idempotency table rides along as
	// checkpoint records.
	if s.wal != nil && next.fingerprint != s.wal.Fingerprint() {
		if err := s.wal.Reset(next.fingerprint, s.checkpointEntriesLocked()); err != nil {
			return nil, fmt.Errorf("server: rebinding wal to reloaded graph: %w", err)
		}
		s.walBatches = 0
		metWALBytes.Set(float64(s.wal.Size()))
	}

	s.cur.Store(next)

	// Re-materialize the boot-time paths against the new graph in the
	// background (instant when the snapshot warmed them), then persist so
	// the next boot warm-starts from the new generation.
	s.specMu.Lock()
	specs := append([]string(nil), s.precomputeSpecs...)
	s.specMu.Unlock()
	go func() {
		for _, spec := range specs {
			if err := s.precomputeOn(next, spec); err != nil {
				s.logf("server: reload precompute %s: %v", spec, err)
			}
		}
		if s.snapshotPath != "" {
			if err := s.SaveSnapshot(); err != nil {
				s.logf("server: post-reload snapshot save: %v", err)
			}
		}
	}()

	return &ReloadResult{
		Nodes:       g.TotalNodes(),
		Edges:       g.TotalEdges(),
		WarmChains:  warm,
		Fingerprint: fmt.Sprintf("%016x", next.fingerprint),
	}, nil
}

// handleReload is POST /v1/admin/reload: trigger a hot-reload and report
// the outcome. 409 when a reload is already running, 500 when the new
// graph fails validation (the old graph keeps serving).
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	res, err := s.Reload(r.Context())
	if err != nil {
		if errors.Is(err, errReloadBusy) {
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Code: "reload_in_progress"})
			return
		}
		if errors.Is(err, errDraining) {
			writeJSON(w, http.StatusConflict, errorBody{Error: err.Error(), Code: "draining"})
			return
		}
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(), Code: "reload_failed"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "reload": res})
}
